package gpummu

// One testing.B benchmark per table/figure of the paper. Each benchmark
// runs the figure's configuration matrix at tiny scale (so `go test
// -bench=.` stays tractable) and reports the figure's headline metric as a
// custom benchmark unit. The full-scale regeneration lives in
// cmd/experiments; these benches exercise the identical code paths.

import (
	"fmt"
	"testing"

	"gpummu/internal/config"
	"gpummu/internal/experiments"
	"gpummu/internal/gpu"
	"gpummu/internal/stats"
	"gpummu/internal/workloads"
)

// benchWorkloads is the subset used per bench iteration: one divergent and
// one regular workload keeps each figure's shape visible at bench cost.
var benchWorkloads = []string{"bfs", "kmeans"}

func benchRun(b *testing.B, w string, cfg config.Hardware) *Report {
	b.Helper()
	rep, err := RunWorkload(w, SizeTiny, cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

func benchBaseline(b *testing.B, w string) *Report {
	return benchRun(b, w, BaselineConfig())
}

// BenchmarkFig02NaiveTLB reproduces figure 2: naive 3-ported TLBs under
// LRR, CCWS, and TBC, normalised to the no-TLB baseline.
func BenchmarkFig02NaiveTLB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, w := range benchWorkloads {
			base := benchBaseline(b, w)

			naive := BaselineConfig()
			naive.MMU = NaiveMMU(3)
			rep := benchRun(b, w, naive)
			b.ReportMetric(rep.Speedup(base), w+"_naive_speedup")

			ccws := BaselineConfig()
			ccws.MMU = NaiveMMU(3)
			ccws.Sched.Policy = SchedCCWS
			rep = benchRun(b, w, ccws)
			b.ReportMetric(rep.Speedup(base), w+"_ccws+tlb_speedup")

			tbc := BaselineConfig()
			tbc.MMU = NaiveMMU(3)
			tbc.TBC.Mode = DivTBC
			rep = benchRun(b, w, tbc)
			b.ReportMetric(rep.Speedup(base), w+"_tbc+tlb_speedup")
		}
	}
}

// BenchmarkFig03Characterization reproduces figure 3: memory instruction
// fraction, TLB miss rate, and page divergence.
func BenchmarkFig03Characterization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, w := range []string{"bfs", "mummergpu", "kmeans"} {
			cfg := BaselineConfig()
			cfg.MMU = NaiveMMU(3)
			rep := benchRun(b, w, cfg)
			b.ReportMetric(100*rep.MemFraction(), w+"_mem_pct")
			b.ReportMetric(100*rep.TLBMissRate(), w+"_tlbmiss_pct")
			b.ReportMetric(rep.PageDivergence.Mean(), w+"_pagediv_avg")
			b.ReportMetric(float64(rep.PageDivergence.Max()), w+"_pagediv_max")
		}
	}
}

// BenchmarkFig04MissLatency reproduces figure 4: TLB vs L1 miss latency.
func BenchmarkFig04MissLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, w := range benchWorkloads {
			cfg := BaselineConfig()
			cfg.MMU = NaiveMMU(3)
			rep := benchRun(b, w, cfg)
			b.ReportMetric(rep.TLBMissLat.Mean(), w+"_tlbmiss_cy")
			b.ReportMetric(rep.L1MissLat.Mean(), w+"_l1miss_cy")
		}
	}
}

// BenchmarkFig06SizePorts reproduces figure 6: the TLB size/port sweep.
func BenchmarkFig06SizePorts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := "bfs"
		base := benchBaseline(b, w)
		for _, entries := range []int{64, 128, 512} {
			for _, ports := range []int{3, 4, 32} {
				cfg := BaselineConfig()
				cfg.MMU = NaiveMMU(ports)
				cfg.MMU.Entries = entries
				rep := benchRun(b, w, cfg)
				b.ReportMetric(rep.Speedup(base), fmt.Sprintf("%de_%dp_speedup", entries, ports))
			}
		}
	}
}

// BenchmarkFig07NonBlocking reproduces figure 7: non-blocking TLB steps.
func BenchmarkFig07NonBlocking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, w := range benchWorkloads {
			base := benchBaseline(b, w)
			blocking := NaiveMMU(4)
			hum := blocking
			hum.HitsUnderMiss = true
			ovl := hum
			ovl.CacheOverlap = true
			for name, m := range map[string]MMUConfig{
				"blocking": blocking, "hum": hum, "overlap": ovl, "ideal": IdealMMU(),
			} {
				cfg := BaselineConfig()
				cfg.MMU = m
				rep := benchRun(b, w, cfg)
				b.ReportMetric(rep.Speedup(base), w+"_"+name+"_speedup")
			}
		}
	}
}

// BenchmarkFig10PTWSched reproduces figure 10: PTW scheduling.
func BenchmarkFig10PTWSched(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, w := range benchWorkloads {
			base := benchBaseline(b, w)
			cfg := BaselineConfig()
			cfg.MMU = AugmentedMMU()
			rep := benchRun(b, w, cfg)
			b.ReportMetric(rep.Speedup(base), w+"_augmented_speedup")
			b.ReportMetric(100*rep.WalkRefsEliminated(), w+"_refs_elim_pct")
		}
	}
}

// BenchmarkFig11MultiPTW reproduces figure 11: augmented single walker vs
// naive multi-walker designs.
func BenchmarkFig11MultiPTW(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := "bfs"
		base := benchBaseline(b, w)
		aug := BaselineConfig()
		aug.MMU = AugmentedMMU()
		rep := benchRun(b, w, aug)
		b.ReportMetric(rep.Speedup(base), "augmented_1ptw_speedup")
		for _, n := range []int{2, 8} {
			cfg := BaselineConfig()
			cfg.MMU = NaiveMMU(4)
			cfg.MMU.NumPTWs = n
			rep := benchRun(b, w, cfg)
			b.ReportMetric(rep.Speedup(base), fmt.Sprintf("naive_%dptw_speedup", n))
		}
	}
}

// BenchmarkFig13CCWS reproduces figure 13: CCWS with and without TLBs.
func BenchmarkFig13CCWS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, w := range benchWorkloads {
			base := benchBaseline(b, w)
			for name, mut := range map[string]func(*Config){
				"ccws_no_tlb": func(c *Config) { c.Sched.Policy = SchedCCWS },
				"ccws_naive":  func(c *Config) { c.Sched.Policy = SchedCCWS; c.MMU = NaiveMMU(4) },
				"ccws_aug":    func(c *Config) { c.Sched.Policy = SchedCCWS; c.MMU = AugmentedMMU() },
			} {
				cfg := BaselineConfig()
				mut(&cfg)
				rep := benchRun(b, w, cfg)
				b.ReportMetric(rep.Speedup(base), w+"_"+name+"_speedup")
			}
		}
	}
}

// BenchmarkFig16TACCWS reproduces figure 16: TA-CCWS weight sweep.
func BenchmarkFig16TACCWS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := "bfs"
		base := benchBaseline(b, w)
		for _, wt := range []int{2, 4, 8} {
			cfg := BaselineConfig()
			cfg.MMU = AugmentedMMU()
			cfg.Sched.Policy = SchedTACCWS
			cfg.Sched.TLBMissWeight = wt
			rep := benchRun(b, w, cfg)
			b.ReportMetric(rep.Speedup(base), fmt.Sprintf("ta%d_speedup", wt))
		}
	}
}

// BenchmarkFig17TCWS reproduces figure 17: TCWS entries-per-warp sweep.
func BenchmarkFig17TCWS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := "bfs"
		base := benchBaseline(b, w)
		for _, epw := range []int{2, 8, 16} {
			cfg := BaselineConfig()
			cfg.MMU = AugmentedMMU()
			cfg.Sched.Policy = SchedTCWS
			cfg.Sched.TLBMissWeight = 4
			cfg.Sched.VTAEntriesPerWarp = epw
			rep := benchRun(b, w, cfg)
			b.ReportMetric(rep.Speedup(base), fmt.Sprintf("epw%d_speedup", epw))
		}
	}
}

// BenchmarkFig18TCWSLRU reproduces figure 18: TCWS LRU-depth weights.
func BenchmarkFig18TCWSLRU(b *testing.B) {
	schemes := map[string][]int{
		"lru1234": {1, 2, 3, 4},
		"lru1248": {1, 2, 4, 8},
		"lru1369": {1, 3, 6, 9},
	}
	for i := 0; i < b.N; i++ {
		w := "bfs"
		base := benchBaseline(b, w)
		for name, ws := range schemes {
			cfg := BaselineConfig()
			cfg.MMU = AugmentedMMU()
			cfg.Sched.Policy = SchedTCWS
			cfg.Sched.TLBMissWeight = 4
			cfg.Sched.VTAEntriesPerWarp = 8
			cfg.Sched.LRUDepthWeights = ws
			rep := benchRun(b, w, cfg)
			b.ReportMetric(rep.Speedup(base), name+"_speedup")
		}
	}
}

// BenchmarkFig20TBC reproduces figure 20: TBC with and without TLBs.
func BenchmarkFig20TBC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, w := range []string{"bfs", "mummergpu"} {
			base := benchBaseline(b, w)
			for name, mut := range map[string]func(*Config){
				"tbc_no_tlb": func(c *Config) { c.TBC.Mode = DivTBC },
				"tbc_naive":  func(c *Config) { c.TBC.Mode = DivTBC; c.MMU = NaiveMMU(4) },
				"tbc_aug":    func(c *Config) { c.TBC.Mode = DivTBC; c.MMU = AugmentedMMU() },
			} {
				cfg := BaselineConfig()
				mut(&cfg)
				rep := benchRun(b, w, cfg)
				b.ReportMetric(rep.Speedup(base), w+"_"+name+"_speedup")
			}
		}
	}
}

// BenchmarkFig22TLBTBC reproduces figure 22: TLB-aware TBC CPM bit sweep.
func BenchmarkFig22TLBTBC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := "bfs"
		base := benchBaseline(b, w)
		for _, bits := range []int{1, 2, 3} {
			cfg := BaselineConfig()
			cfg.MMU = AugmentedMMU()
			cfg.TBC.Mode = DivTLBTBC
			cfg.TBC.CPMBits = bits
			rep := benchRun(b, w, cfg)
			b.ReportMetric(rep.Speedup(base), fmt.Sprintf("cpm%dbit_speedup", bits))
		}
	}
}

// BenchmarkLargePages reproduces the section 9 large-page study.
func BenchmarkLargePages(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, w := range []string{"kmeans", "mummergpu"} {
			cfg := BaselineConfig()
			cfg.PageShift = 21
			cfg.MMU = AugmentedMMU()
			rep := benchRun(b, w, cfg)
			b.ReportMetric(rep.PageDivergence.Mean(), w+"_2m_pagediv")
			b.ReportMetric(100*rep.TLBMissRate(), w+"_2m_miss_pct")
		}
	}
}

// BenchmarkAblationPTWBatchWindow measures the design choice DESIGN.md
// calls out: PTW scheduling vs serial walks vs extra hardware walkers.
func BenchmarkAblationPTWBatchWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := "mummergpu"
		serial := NaiveMMU(4)
		serial.HitsUnderMiss = true
		serial.CacheOverlap = true
		sched := serial
		sched.PTWSched = true
		multi := serial
		multi.NumPTWs = 4
		for name, m := range map[string]MMUConfig{
			"serial": serial, "ptwsched": sched, "4walkers": multi,
		} {
			cfg := BaselineConfig()
			cfg.MMU = m
			rep := benchRun(b, w, cfg)
			b.ReportMetric(float64(rep.Cycles), name+"_cycles")
		}
	}
}

// BenchmarkAblationCPMFlush sweeps the CPM flush period (paper: 500).
func BenchmarkAblationCPMFlush(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, period := range []int{100, 500, 5000} {
			cfg := BaselineConfig()
			cfg.MMU = AugmentedMMU()
			cfg.TBC.Mode = DivTLBTBC
			cfg.TBC.CPMFlushPeriod = period
			rep := benchRun(b, "bfs", cfg)
			b.ReportMetric(float64(rep.Cycles), fmt.Sprintf("flush%d_cycles", period))
		}
	}
}

// BenchmarkAblationTLBMSHRs sweeps the TLB miss-status register count
// (paper default: 32, one per warp thread).
func BenchmarkAblationTLBMSHRs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, mshrs := range []int{4, 16, 32} {
			cfg := BaselineConfig()
			cfg.MMU = AugmentedMMU()
			cfg.MMU.MSHRs = mshrs
			rep := benchRun(b, "mummergpu", cfg)
			b.ReportMetric(float64(rep.Cycles), fmt.Sprintf("mshr%d_cycles", mshrs))
		}
	}
}

// BenchmarkAblationWalkConcurrency sweeps the walker's walk-state register
// count (the calibration choice DESIGN.md section 2 documents).
func BenchmarkAblationWalkConcurrency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, wc := range []int{1, 4, 8} {
			cfg := BaselineConfig()
			cfg.MMU = NaiveMMU(4)
			cfg.MMU.WalkConcurrency = wc
			rep := benchRun(b, "mummergpu", cfg)
			b.ReportMetric(float64(rep.Cycles), fmt.Sprintf("wc%d_cycles", wc))
		}
	}
}

// BenchmarkExtensionSharedL2TLB measures the chip-level shared TLB
// extension (a section 10 follow-up direction, not a paper figure).
func BenchmarkExtensionSharedL2TLB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, entries := range []int{0, 1024, 4096} {
			cfg := BaselineConfig()
			cfg.MMU = AugmentedMMU()
			cfg.MMU.SharedTLBEntries = entries
			rep := benchRun(b, "mummergpu", cfg)
			name := fmt.Sprintf("shared%d_cycles", entries)
			b.ReportMetric(float64(rep.Cycles), name)
			if entries > 0 {
				b.ReportMetric(float64(rep.SharedTLBHits), fmt.Sprintf("shared%d_hits", entries))
			}
		}
	}
}

// BenchmarkExtensionSoftwareWalks measures OS-handler miss servicing (the
// section 6.1 option the paper rejects) against hardware walkers.
func BenchmarkExtensionSoftwareWalks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hw := BaselineConfig()
		hw.MMU = NaiveMMU(4)
		rep := benchRun(b, "bfs", hw)
		b.ReportMetric(float64(rep.Cycles), "hardware_cycles")

		sw := BaselineConfig()
		sw.MMU = NaiveMMU(4)
		sw.MMU.SoftwareWalks = true
		sw.MMU.SoftwareWalkOverhead = 300
		rep = benchRun(b, "bfs", sw)
		b.ReportMetric(float64(rep.Cycles), "software_cycles")
	}
}

// BenchmarkExtensionPWC measures the page-walk-cache extension against
// the paper's augmented design (translation caching, Barr et al.).
func BenchmarkExtensionPWC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, entries := range []int{0, 16, 64} {
			cfg := BaselineConfig()
			cfg.MMU = AugmentedMMU()
			cfg.MMU.PWCEntries = entries
			rep := benchRun(b, "bfs", cfg)
			b.ReportMetric(float64(rep.Cycles), fmt.Sprintf("pwc%d_cycles", entries))
			if entries > 0 {
				b.ReportMetric(float64(rep.PWCHits), fmt.Sprintf("pwc%d_hits", entries))
			}
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (warp
// instructions per second) — the engineering metric for the simulator
// itself rather than a paper figure.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := BaselineConfig()
		cfg.MMU = AugmentedMMU()
		rep := benchRun(b, "kmeans", cfg)
		b.ReportMetric(float64(rep.Instructions.Value()), "warp_instrs")
		b.ReportMetric(float64(rep.Cycles), "sim_cycles")
	}
}

// BenchmarkExperimentHarness smoke-runs one harness figure end to end so
// the figure plumbing itself is covered by `go test -bench`.
func BenchmarkExperimentHarness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := experiments.New(discard{}, experiments.Options{
			Size:     workloads.SizeTiny,
			Seed:     1,
			Workload: []string{"bfs"},
		})
		fig, err := experiments.ByID("fig4")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := fig.Run(h); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecutorWorkers measures the plan/execute pipeline's scaling:
// the same deduped figure-2 matrix executed serially and on a GOMAXPROCS
// worker pool. The runs-per-second metrics expose the parallel speedup on
// the host; sub-benchmark names carry the worker count.
func BenchmarkExecutorWorkers(b *testing.B) {
	for _, workers := range []int{1, 0} { // 0 = GOMAXPROCS
		name := fmt.Sprintf("j%d", workers)
		if workers == 0 {
			name = "jmax"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h := experiments.New(discard{}, experiments.Options{
					Size:     workloads.SizeTiny,
					Seed:     1,
					Workload: benchWorkloads,
					Workers:  workers,
				})
				fig2, err := experiments.ByID("fig2")
				if err != nil {
					b.Fatal(err)
				}
				plan := h.PlanFigures([]experiments.Figure{fig2})
				ran := h.Execute(plan)
				if ran != plan.Len() {
					b.Fatalf("executed %d of %d runs", ran, plan.Len())
				}
				if _, err := fig2.Run(h); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(ran), "sims")
			}
		})
	}
}

// BenchmarkParCoreWorkers measures intra-simulation scaling: one run of
// the paper's recommended design with cores ticked by 1 vs 8 goroutines
// (the -par flag). The sim_cycles metric must be identical across
// sub-benchmarks — -par never changes simulated time, only wall time.
// tools/bench.sh records the par1/par8 ratio into BENCH_parcore.json;
// the speedup is only meaningful on multi-core hosts.
func BenchmarkParCoreWorkers(b *testing.B) {
	for _, par := range []int{1, 8} {
		b.Run(fmt.Sprintf("par%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := config.Baseline()
				cfg.MMU = config.AugmentedMMU()
				w, err := workloads.Build("kmeans", workloads.SizeSmall, cfg.PageShift, 1)
				if err != nil {
					b.Fatal(err)
				}
				st := &stats.Sim{}
				g, err := gpu.New(cfg, w.AS, st)
				if err != nil {
					b.Fatal(err)
				}
				g.Workers = par
				b.StartTimer()
				cycles, err := g.Run(w.Launch)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(cycles), "sim_cycles")
			}
		})
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
