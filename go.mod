module gpummu

go 1.22
