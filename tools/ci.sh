#!/usr/bin/env bash
# Tier-1 verification plus the race detector.
#
# The experiment pipeline executes simulations on a parallel worker pool
# (internal/experiments/runner.go), so plain `go test` is not enough: the
# executor tests deliberately hammer the result store and harness from many
# goroutines, and only `-race` proves those paths are clean. Run this
# before merging anything that touches internal/experiments, internal/stats,
# or the CLIs.
#
# Usage: tools/ci.sh [package...]   (defaults to ./...)
set -euo pipefail
cd "$(dirname "$0")/.."

pkgs=("${@:-./...}")

echo "== go vet ${pkgs[*]}"
go vet "${pkgs[@]}"

echo "== go build ${pkgs[*]}"
go build "${pkgs[@]}"

echo "== go test ${pkgs[*]}"
go test "${pkgs[@]}"

echo "== go test -race ${pkgs[*]}"
go test -race "${pkgs[@]}"

# Bench smoke: one iteration of the figure-2 benchmark proves the hot path
# still runs end to end under the benchmark harness (no timing asserted here;
# tools/bench.sh records real numbers into BENCH_hotpath.json).
echo "== bench smoke (BenchmarkFig02 x1)"
go test -bench BenchmarkFig02 -benchtime 1x -run '^$' .

echo "ci: ok"
