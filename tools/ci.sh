#!/usr/bin/env bash
# Tier-1 verification plus the race detector.
#
# The experiment pipeline executes simulations on a parallel worker pool
# (internal/experiments/runner.go), so plain `go test` is not enough: the
# executor tests deliberately hammer the result store and harness from many
# goroutines, and only `-race` proves those paths are clean. Run this
# before merging anything that touches internal/experiments, internal/stats,
# or the CLIs.
#
# Usage: tools/ci.sh [package...]   (defaults to ./...)
set -euo pipefail
cd "$(dirname "$0")/.."

pkgs=("${@:-./...}")

echo "== go vet ${pkgs[*]}"
go vet "${pkgs[@]}"

echo "== go build ${pkgs[*]}"
go build "${pkgs[@]}"

echo "== go test ${pkgs[*]}"
go test "${pkgs[@]}"

echo "== go test -race ${pkgs[*]}"
go test -race "${pkgs[@]}"

# Parallel-tick equivalence under the race detector, run explicitly even
# when a package subset was requested: TestParallelTickEquivalence replays
# every golden configuration at -par 1, 2, and 8 and requires byte-identical
# stats and memory images, and TestReportIdenticalAcrossCoreWorkers does the
# same for a rendered figure report. -race is what proves the compute phase
# shares nothing it shouldn't (DESIGN.md section 10.3).
echo "== go test -race par equivalence (par=1,2,8)"
go test -race -run 'TestParallelTickEquivalence' ./internal/gpu
go test -race -run 'TestReportIdenticalAcrossCoreWorkers' ./internal/experiments

# Observability gates. First: a traced+sampled tiny run must emit
# schema-valid Chrome trace JSON (tools/tracecheck checks every event) and
# a CSV series with the expected header. Second: with observability OFF the
# warm simulation path must still allocate nothing — the AllocsPerRun tests
# are the contract that the nil-gated obs hooks cost zero when unused.
echo "== trace schema (gpusim -trace -sample 100 | tracecheck)"
obs_tmp="$(mktemp -d)"
svc_pid=""
trap '[[ -n "$svc_pid" ]] && kill "$svc_pid" 2>/dev/null; rm -rf "$obs_tmp"' EXIT
go run ./cmd/gpusim -workload bfs -size tiny -mmu augmented \
	-trace "$obs_tmp/trace.json" -sample 100 -samplefile "$obs_tmp/series.csv" >/dev/null
go run ./tools/tracecheck "$obs_tmp/trace.json"
if ! head -1 "$obs_tmp/series.csv" | grep -q '^cycle,instructions,'; then
	echo "ci: FAIL sampler CSV missing header" >&2
	exit 1
fi

echo "== zero-alloc warm path with observability off"
go test -run 'TestExecMemSteadyStateAllocFree' ./internal/gpu
go test -run 'TestWalkAllocFree|TestTranslatorHitAllocFree' ./internal/vm

# Campaign gates (DESIGN.md section 13). Every committed example campaign
# must validate; the campaign-driven figure-2 report must be byte-identical
# to the flag-driven invocation it replaces (for any -j/-par); and the
# committed sample request trace must replay end to end with its
# functional check passing.
echo "== campaign gates (validate examples; campaign == flags; trace replay)"
go build -o "$obs_tmp/experiments" ./cmd/experiments
go build -o "$obs_tmp/gpusim" ./cmd/gpusim
for f in examples/campaigns/*; do
	"$obs_tmp/experiments" -campaign "$f" -validate >/dev/null
done
# -par must not exceed GOMAXPROCS (the CLIs fail fast on oversubscription),
# so pick the widest in-budget value for the equivalence runs below.
host_par="$(nproc 2>/dev/null || echo 1)"
((host_par > 2)) && host_par=2
"$obs_tmp/experiments" -fig 2 -size tiny -machine small >"$obs_tmp/fig2.flags.txt"
"$obs_tmp/experiments" -campaign examples/campaigns/fig2-tiny.yaml -j 3 -par "$host_par" >"$obs_tmp/fig2.campaign.txt"
if ! cmp -s "$obs_tmp/fig2.flags.txt" "$obs_tmp/fig2.campaign.txt"; then
	echo "ci: FAIL campaign-driven fig2 report differs from the flag-driven report" >&2
	exit 1
fi
if ! "$obs_tmp/gpusim" -campaign examples/campaigns/trace-replay.yaml | grep -q '^functional check: ok'; then
	echo "ci: FAIL trace-replay campaign functional check" >&2
	exit 1
fi

# Checkpoint equivalence gate (DESIGN.md section 14): the same campaign run
# with -checkpoint (runs restored from per-workload post-build snapshots)
# must render a byte-identical report to the cold run above. This is the
# end-to-end proof that snapshot restore leaves no trace in the output.
echo "== checkpoint equivalence (fig2-tiny campaign, cold == -checkpoint)"
"$obs_tmp/experiments" -campaign examples/campaigns/fig2-tiny.yaml -j 3 -par "$host_par" -checkpoint >"$obs_tmp/fig2.ckpt.txt"
if ! cmp -s "$obs_tmp/fig2.campaign.txt" "$obs_tmp/fig2.ckpt.txt"; then
	echo "ci: FAIL checkpointed fig2 report differs from the cold report" >&2
	exit 1
fi

# Service gates (DESIGN.md section 16). First: a campaign submitted to a
# gpusimd job server must render a report byte-identical to the direct
# -campaign invocation above — the HTTP/store path adds nothing to the
# output. Second: after killing and restarting the server on the same
# store directory, resubmitting the identical campaign must be served
# entirely from the durable store (the job's dedup counter proves zero
# re-simulation) and still render byte-identically.
echo "== service gates (server report == direct report; restart serves from store)"
go build -o "$obs_tmp/gpusimd" ./cmd/gpusimd
start_gpusimd() {
	rm -f "$obs_tmp/addr"
	"$obs_tmp/gpusimd" -addr 127.0.0.1:0 -addrfile "$obs_tmp/addr" \
		-j 3 -par "$host_par" "$@" >/dev/null 2>&1 &
	svc_pid=$!
	for _ in $(seq 1 100); do
		[[ -s "$obs_tmp/addr" ]] && break
		sleep 0.1
	done
	if [[ ! -s "$obs_tmp/addr" ]]; then
		echo "ci: FAIL gpusimd never wrote its address file" >&2
		exit 1
	fi
	svc_url="$(cat "$obs_tmp/addr")"
}
stop_gpusimd() {
	kill "$svc_pid" 2>/dev/null || true
	wait "$svc_pid" 2>/dev/null || true
	svc_pid=""
}
start_gpusimd -store "$obs_tmp/svcstore"
"$obs_tmp/gpusim" submit -server "$svc_url" -campaign examples/campaigns/fig2-tiny.yaml \
	-report 2>"$obs_tmp/job1.json" >"$obs_tmp/fig2.server.txt"
if ! cmp -s "$obs_tmp/fig2.campaign.txt" "$obs_tmp/fig2.server.txt"; then
	echo "ci: FAIL server-rendered fig2 report differs from the direct -campaign report" >&2
	exit 1
fi
stop_gpusimd
start_gpusimd -store "$obs_tmp/svcstore"
"$obs_tmp/gpusim" submit -server "$svc_url" -campaign examples/campaigns/fig2-tiny.yaml \
	-report 2>"$obs_tmp/job2.json" >"$obs_tmp/fig2.server2.txt"
if ! grep -q '"simulated": 0' "$obs_tmp/job2.json"; then
	echo "ci: FAIL restarted server re-simulated a stored campaign:" >&2
	cat "$obs_tmp/job2.json" >&2
	exit 1
fi
if ! cmp -s "$obs_tmp/fig2.campaign.txt" "$obs_tmp/fig2.server2.txt"; then
	echo "ci: FAIL store-rehydrated fig2 report differs from the direct report" >&2
	exit 1
fi
stop_gpusimd

# Concurrent-scheduler gate (DESIGN.md section 16.5). A -jobs 4 server on
# a fresh store takes the same campaign from three clients at once. Every
# report must be byte-identical to the direct run; across the three jobs
# each unique spec must have simulated exactly once (sum of "simulated"
# equals one job's "total"), with the overlap visible as coalesced
# flights; and a restart must serve a fourth submission entirely from the
# store.
echo "== concurrency gate (-jobs 4, 3 simultaneous clients, singleflight dedup)"
start_gpusimd -store "$obs_tmp/concstore" -jobs 4
for i in 1 2 3; do
	"$obs_tmp/gpusim" submit -server "$svc_url" -campaign examples/campaigns/fig2-tiny.yaml \
		-report 2>"$obs_tmp/cjob$i.json" >"$obs_tmp/fig2.conc$i.txt" &
	eval "client$i=$!"
done
wait "$client1" "$client2" "$client3"
for i in 1 2 3; do
	if ! cmp -s "$obs_tmp/fig2.campaign.txt" "$obs_tmp/fig2.conc$i.txt"; then
		echo "ci: FAIL concurrent client $i report differs from the direct report" >&2
		exit 1
	fi
done
conc_total="$(grep -ho '"total": [0-9]*' "$obs_tmp/cjob1.json" | awk '{print $2}')"
conc_sim="$(grep -ho '"simulated": [0-9]*' "$obs_tmp"/cjob[123].json | awk '{ s += $2 } END { print s }')"
conc_coal="$(grep -ho '"coalesced": [0-9]*' "$obs_tmp"/cjob[123].json | awk '{ s += $2 } END { print s }')"
echo "ci: concurrent jobs: total ${conc_total}, simulated ${conc_sim}, coalesced ${conc_coal}"
if [[ -z "$conc_total" || "$conc_sim" -ne "$conc_total" ]]; then
	echo "ci: FAIL three concurrent jobs simulated ${conc_sim} specs, want exactly ${conc_total}:" >&2
	cat "$obs_tmp"/cjob[123].json >&2
	exit 1
fi
if [[ "$conc_coal" -eq 0 ]]; then
	echo "ci: FAIL no coalesced flights across three simultaneous identical jobs:" >&2
	cat "$obs_tmp"/cjob[123].json >&2
	exit 1
fi
stop_gpusimd
start_gpusimd -store "$obs_tmp/concstore" -jobs 4
"$obs_tmp/gpusim" submit -server "$svc_url" -campaign examples/campaigns/fig2-tiny.yaml \
	-report 2>"$obs_tmp/cjob4.json" >"$obs_tmp/fig2.conc4.txt"
if ! grep -q '"simulated": 0' "$obs_tmp/cjob4.json"; then
	echo "ci: FAIL restarted -jobs 4 server re-simulated a stored campaign:" >&2
	cat "$obs_tmp/cjob4.json" >&2
	exit 1
fi
if ! cmp -s "$obs_tmp/fig2.campaign.txt" "$obs_tmp/fig2.conc4.txt"; then
	echo "ci: FAIL post-restart concurrent-store report differs from the direct report" >&2
	exit 1
fi
stop_gpusimd

# Sampling gates (DESIGN.md section 15). TestSampledAccuracyGate: sampled
# estimates of the sim_cycles-derived metrics (IPC, TLB miss rate) must
# agree with the exact run within 2% and the end-of-run memory/page-table
# digests must be identical. TestSampledReportGolden: the sampled report is
# byte-identical for -par 1/2/8 and matches its committed golden. Then the
# committed run.sampling campaign must render byte-identically for any
# -j/-par — interval sampling must not leak host parallelism into reports.
echo "== sampling gates (accuracy <= 2%, report golden, campaign determinism)"
go test -run 'TestSampledAccuracyGate|TestSampledReportGolden' ./internal/experiments
"$obs_tmp/experiments" -campaign examples/campaigns/sampled-sweep.yaml -j 1 -par 1 >"$obs_tmp/sampled.a.txt"
"$obs_tmp/experiments" -campaign examples/campaigns/sampled-sweep.yaml -j 3 -par "$host_par" >"$obs_tmp/sampled.b.txt"
if ! cmp -s "$obs_tmp/sampled.a.txt" "$obs_tmp/sampled.b.txt"; then
	echo "ci: FAIL sampled campaign report differs across -j/-par" >&2
	exit 1
fi

# Snapshot round-trip under the race detector: restore-then-run must be
# byte-identical to a cold run (stats, memory image, Chrome trace) for
# -par 1/2/8, and the snapshot pool must be clean under concurrent Acquire.
echo "== go test -race snapshot round-trip"
go test -race ./internal/snapshot

# Differential fuzzing smoke (DESIGN.md section 12): each target explores
# beyond the committed seed corpus for a short budget. Failures minimise to
# a replayable snippet — see cmd/difftest for longer soaks.
echo "== differential fuzz smoke (15s per target)"
go test -run '^$' -fuzz '^FuzzDiffKernel$' -fuzztime 15s ./internal/difftest
go test -run '^$' -fuzz '^FuzzPageTable$' -fuzztime 15s ./internal/difftest
go test -run '^$' -fuzz '^FuzzTLBVsWalk$' -fuzztime 15s ./internal/difftest

# Coverage floor for the packages the invariant checker and differential
# harness lean on hardest — translation hardware and the VM layer — plus
# the two the sampled/checkpointed paths rest on: snapshot restore and the
# interval-sampling estimators — plus the job server, whose scheduler and
# durability guarantees are test-enforced. All must stay above 80%
# statement coverage.
echo "== coverage floor (internal/core, internal/vm, internal/snapshot, internal/stats, internal/service >= 80%)"
for pkg in ./internal/core ./internal/vm ./internal/snapshot ./internal/stats ./internal/service; do
	pct="$(go test -cover "$pkg" | awk -F'coverage: ' '/coverage:/ { split($2, a, "%"); print a[1] }')"
	if [[ -z "$pct" ]]; then
		echo "ci: FAIL could not parse coverage for $pkg" >&2
		exit 1
	fi
	echo "ci: $pkg coverage ${pct}%"
	if awk -v p="$pct" 'BEGIN { exit !(p < 80.0) }'; then
		echo "ci: FAIL $pkg coverage ${pct}% below 80% floor" >&2
		exit 1
	fi
done

# Bench gate: one iteration of the figure-2 benchmark proves the hot path
# still runs end to end, and its wall time must stay within 25% of the
# recorded baseline (tools/bench_fig02_baseline.txt, ns/op). If no baseline
# is recorded yet, this run records one instead of gating. Regenerate the
# baseline deliberately — on the reference machine — after intentional
# hot-path changes: tools/ci.sh prints the measured value to copy in.
echo "== bench gate (BenchmarkFig02 x1, <= 1.25x baseline)"
fig02_raw="$(go test -bench BenchmarkFig02 -benchtime 1x -run '^$' .)"
echo "$fig02_raw"
fig02_ns="$(echo "$fig02_raw" | awk '/^BenchmarkFig02/ { for (i = 1; i <= NF; i++) if ($i == "ns/op") print $(i-1) }')"
baseline_file="tools/bench_fig02_baseline.txt"
if [[ -z "$fig02_ns" ]]; then
	echo "ci: FAIL could not parse BenchmarkFig02 ns/op" >&2
	exit 1
fi
if [[ ! -s "$baseline_file" ]]; then
	echo "$fig02_ns" >"$baseline_file"
	echo "ci: recorded new BenchmarkFig02 baseline ${fig02_ns} ns/op in $baseline_file"
else
	baseline_ns="$(cat "$baseline_file")"
	limit_ns=$((baseline_ns + baseline_ns / 4))
	echo "ci: BenchmarkFig02 ${fig02_ns} ns/op (baseline ${baseline_ns}, limit ${limit_ns})"
	if ((fig02_ns > limit_ns)); then
		echo "ci: FAIL BenchmarkFig02 regressed >25% vs $baseline_file" >&2
		exit 1
	fi
fi

echo "ci: ok"
