// Command tracecheck validates a Chrome trace-event JSON file against the
// subset of the trace-event format the simulator emits (and Perfetto /
// chrome://tracing require). It is the CI gate behind the -trace flag:
// tools/ci.sh runs a traced simulation and feeds the artefact through here.
//
// Usage:
//
//	tracecheck trace.json        # validate a file
//	tracecheck -                 # validate stdin
//
// Checks, per event: a non-empty name; a known phase (M metadata, i
// instant, X complete, C counter); pid and tid present; a non-negative ts
// on every non-metadata event; a non-negative dur on X events; an "s"
// scope on instant events; a non-empty args object on metadata and counter
// events. On success it prints a one-line summary with per-phase counts.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

type event struct {
	Name string                     `json:"name"`
	Ph   string                     `json:"ph"`
	TS   *float64                   `json:"ts"`
	Dur  *float64                   `json:"dur"`
	Pid  *int                       `json:"pid"`
	Tid  *int                       `json:"tid"`
	S    string                     `json:"s"`
	Args map[string]json.RawMessage `json:"args"`
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json|->")
		os.Exit(2)
	}
	var in io.Reader = os.Stdin
	name := "stdin"
	if os.Args[1] != "-" {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		in, name = f, os.Args[1]
	}
	data, err := io.ReadAll(in)
	if err != nil {
		fatal("%s: %v", name, err)
	}

	var doc struct {
		TraceEvents []event `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		fatal("%s: not valid JSON: %v", name, err)
	}
	if doc.TraceEvents == nil {
		fatal("%s: no traceEvents array", name)
	}
	if len(doc.TraceEvents) == 0 {
		fatal("%s: traceEvents is empty", name)
	}

	counts := map[string]int{}
	for i, e := range doc.TraceEvents {
		bad := func(format string, args ...interface{}) {
			fatal("%s: event %d (%q): "+format, append([]interface{}{name, i, e.Name}, args...)...)
		}
		if e.Name == "" {
			bad("empty name")
		}
		switch e.Ph {
		case "M":
			if len(e.Args) == 0 {
				bad("metadata event without args")
			}
		case "i":
			if e.S == "" {
				bad("instant event without scope")
			}
		case "X":
			if e.Dur == nil || *e.Dur < 0 {
				bad("complete event without non-negative dur")
			}
		case "C":
			if len(e.Args) == 0 {
				bad("counter event without args")
			}
		default:
			bad("unknown phase %q", e.Ph)
		}
		if e.Pid == nil || e.Tid == nil {
			bad("missing pid/tid")
		}
		if e.Ph != "M" && (e.TS == nil || *e.TS < 0) {
			bad("missing or negative ts")
		}
		counts[e.Ph]++
	}

	phases := make([]string, 0, len(counts))
	for ph := range counts {
		phases = append(phases, ph)
	}
	sort.Strings(phases)
	fmt.Printf("tracecheck: %s ok, %d events (", name, len(doc.TraceEvents))
	for i, ph := range phases {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%s=%d", ph, counts[ph])
	}
	fmt.Println(")")
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "tracecheck: "+format+"\n", args...)
	os.Exit(1)
}
