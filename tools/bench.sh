#!/usr/bin/env bash
# Measures simulator throughput on the tiny figure matrix and appends an
# entry to BENCH_hotpath.json so the performance trajectory is visible
# across PRs.
#
# Usage: tools/bench.sh [label]     (label defaults to the short git HEAD)
#
# Metrics recorded per BENCH_hotpath.json entry:
#   total_fig_seconds      wall time summed over every BenchmarkFig* figure
#                          benchmark at -benchtime 1x (the tiny figure matrix)
#   sim_cycles_per_second  simulated cycles per wall-second, from
#                          BenchmarkSimulatorThroughput's sim_cycles metric
#
# A second entry goes to BENCH_parcore.json from BenchmarkParCoreWorkers
# (one small run ticked by 1 vs 8 core goroutines, the -par flag):
#   par1_seconds / par8_seconds   wall time of the same simulation
#   par8_speedup                  par1_seconds / par8_seconds
#   sim_cycles                    identical across par by construction
#   host_cpus                     interpret the speedup against this —
#                                 a 1-CPU host cannot show one
#
# Entries are append-only: compare the newest "after" entry against the
# older "before" entries to see the speedup a hot-path PR delivered.
set -euo pipefail
cd "$(dirname "$0")/.."

label="${1:-$(git rev-parse --short HEAD 2>/dev/null || echo unlabeled)}"
out_json="BENCH_hotpath.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "bench: running tiny figure matrix (go test -bench ...)" >&2
go test -run '^$' -bench 'BenchmarkFig|BenchmarkSimulatorThroughput' \
	-benchtime 1x -timeout 60m . | tee "$raw" >&2

entry="$(awk -v label="$label" -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^BenchmarkFig/ {
	# Format: BenchmarkFigNN...-P  N  <ns> ns/op  [<val> <metric>]...
	for (i = 1; i <= NF; i++) if ($i == "ns/op") fig_ns += $(i-1)
}
/^BenchmarkSimulatorThroughput/ {
	for (i = 1; i <= NF; i++) {
		if ($i == "ns/op") tp_ns = $(i-1)
		if ($i == "sim_cycles") tp_cycles = $(i-1)
	}
}
END {
	cps = (tp_ns > 0) ? tp_cycles / (tp_ns / 1e9) : 0
	printf "  {\n"
	printf "    \"label\": \"%s\",\n", label
	printf "    \"date\": \"%s\",\n", date
	printf "    \"total_fig_seconds\": %.3f,\n", fig_ns / 1e9
	printf "    \"sim_cycles_per_second\": %.0f\n", cps
	printf "  }"
}' "$raw")"

if [[ -s "$out_json" ]]; then
	# Append to the existing JSON array: strip the trailing "]" line.
	sed '$d' "$out_json" >"$out_json.tmp"
	printf ',\n%s\n]\n' "$entry" >>"$out_json.tmp"
	mv "$out_json.tmp" "$out_json"
else
	printf '[\n%s\n]\n' "$entry" >"$out_json"
fi

echo "bench: recorded entry '$label' in $out_json" >&2
tail -n 8 "$out_json" >&2

par_json="BENCH_parcore.json"
echo "bench: running par-core scaling (BenchmarkParCoreWorkers)" >&2
go test -run '^$' -bench 'BenchmarkParCoreWorkers' \
	-benchtime 1x -timeout 60m . | tee "$raw" >&2

par_entry="$(awk -v label="$label" -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
	-v cpus="$(nproc 2>/dev/null || echo 1)" '
/^BenchmarkParCoreWorkers\/par1/ {
	for (i = 1; i <= NF; i++) {
		if ($i == "ns/op") p1_ns = $(i-1)
		if ($i == "sim_cycles") cycles = $(i-1)
	}
}
/^BenchmarkParCoreWorkers\/par8/ {
	for (i = 1; i <= NF; i++) if ($i == "ns/op") p8_ns = $(i-1)
}
END {
	speedup = (p8_ns > 0) ? p1_ns / p8_ns : 0
	printf "  {\n"
	printf "    \"label\": \"%s\",\n", label
	printf "    \"date\": \"%s\",\n", date
	printf "    \"host_cpus\": %d,\n", cpus
	printf "    \"par1_seconds\": %.3f,\n", p1_ns / 1e9
	printf "    \"par8_seconds\": %.3f,\n", p8_ns / 1e9
	printf "    \"par8_speedup\": %.2f,\n", speedup
	printf "    \"sim_cycles\": %.0f\n", cycles
	printf "  }"
}' "$raw")"

if [[ -s "$par_json" ]]; then
	sed '$d' "$par_json" >"$par_json.tmp"
	printf ',\n%s\n]\n' "$par_entry" >>"$par_json.tmp"
	mv "$par_json.tmp" "$par_json"
else
	printf '[\n%s\n]\n' "$par_entry" >"$par_json"
fi

echo "bench: recorded entry '$label' in $par_json" >&2
tail -n 10 "$par_json" >&2
