#!/usr/bin/env bash
# Measures simulator throughput and appends entries to the BENCH_*.json
# trajectory files so performance is visible across PRs.
#
# Usage: tools/bench.sh [label]     (label defaults to the short git HEAD)
#
# Every appended record is stamped with host_cpus, gomaxprocs, and git_sha
# so an entry is attributable to a machine and commit — a "speedup" from a
# 1-CPU container and one from a 16-CPU box are not comparable otherwise.
#
# Sections (each appends one entry per invocation):
#   BENCH_hotpath.json     tiny figure matrix wall time + simulated
#                          cycles/second (BenchmarkFig*, BenchmarkSimulatorThroughput)
#   BENCH_parcore.json     same simulation ticked by -par 1 vs 8 goroutines
#                          (BenchmarkParCoreWorkers)
#   BENCH_scaling.json     full -par scaling curve (1,2,4,8) from
#                          `gpusim -benchscaling`; points beyond GOMAXPROCS
#                          are flagged oversubscribed
#   BENCH_checkpoint.json  checkpoint warm-start vs cold rebuild over an
#                          8-config sweep sharing one workload, from
#                          `gpusim -benchcheckpoint` (the >=1.3x gate reads
#                          this record's "speedup")
#   BENCH_sampling.json    sampled-vs-exact wall clock and accuracy per
#                          workload, from `gpusim -benchsampling` (the >=5x
#                          / <=2% gate reads aggregate_speedup, max_ipc_err
#                          and max_missrate_err; schema in EXPERIMENTS.md)
#
# Entries are append-only, with one exception: re-running bench at the same
# commit replaces that commit's previous record instead of piling up
# duplicates (consecutive identical-sha entries collapse to the newest).
# A dirty working tree or an unknown SHA is refused — an unattributable
# record poisons the trajectory — unless BENCH_ALLOW_DIRTY=1, which stamps
# the record "<sha>-dirty" so the provenance stays honest.
set -euo pipefail
cd "$(dirname "$0")/.."

label="${1:-$(git rev-parse --short HEAD 2>/dev/null || echo unlabeled)}"
git_sha="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
cpus="$(nproc 2>/dev/null || echo 1)"
gomaxprocs="${GOMAXPROCS:-$cpus}"
raw="$(mktemp)"
gpusim_bin="$(mktemp)"
trap 'rm -f "$raw" "$gpusim_bin"' EXIT

# Refuse unattributable records: a record stamped with a SHA whose tree had
# uncommitted changes (or no SHA at all) cannot be reproduced or compared.
if [[ "$git_sha" == unknown || -n "$(git status --porcelain 2>/dev/null)" ]]; then
	if [[ "${BENCH_ALLOW_DIRTY:-0}" == 1 ]]; then
		git_sha="${git_sha}-dirty"
		echo "bench: working tree dirty; stamping records '$git_sha' (BENCH_ALLOW_DIRTY=1)" >&2
	else
		echo "bench: refusing to append records: git SHA is unknown or the working tree is dirty." >&2
		echo "bench: commit first, or set BENCH_ALLOW_DIRTY=1 to record anyway (stamped '-dirty')." >&2
		exit 1
	fi
fi

# append_json FILE ENTRY — append one JSON object to the array in FILE
# (created if absent), then collapse consecutive entries with the same
# git_sha so a re-run at one commit replaces its previous record.
append_json() {
	local file="$1" entry="$2"
	BENCH_ENTRY="$entry" python3 - "$file" <<-'PYEOF'
	import json, os, sys

	path = sys.argv[1]
	entry = json.loads(os.environ["BENCH_ENTRY"])
	try:
	    with open(path) as f:
	        arr = json.load(f)
	except (FileNotFoundError, ValueError):
	    arr = []
	arr.append(entry)
	out = []
	for e in arr:
	    if out and out[-1].get("git_sha") == e.get("git_sha"):
	        out[-1] = e  # same commit: newest record wins
	    else:
	        out.append(e)
	with open(path, "w") as f:
	    json.dump(out, f, indent=2)
	    f.write("\n")
	PYEOF
	echo "bench: recorded entry '$label' in $file" >&2
}

out_json="BENCH_hotpath.json"
echo "bench: running tiny figure matrix (go test -bench ...)" >&2
go test -run '^$' -bench 'BenchmarkFig|BenchmarkSimulatorThroughput' \
	-benchtime 1x -timeout 60m . | tee "$raw" >&2

entry="$(awk -v label="$label" -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
	-v cpus="$cpus" -v gmp="$gomaxprocs" -v sha="$git_sha" '
/^BenchmarkFig/ {
	# Format: BenchmarkFigNN...-P  N  <ns> ns/op  [<val> <metric>]...
	for (i = 1; i <= NF; i++) if ($i == "ns/op") fig_ns += $(i-1)
}
/^BenchmarkSimulatorThroughput/ {
	for (i = 1; i <= NF; i++) {
		if ($i == "ns/op") tp_ns = $(i-1)
		if ($i == "sim_cycles") tp_cycles = $(i-1)
	}
}
END {
	cps = (tp_ns > 0) ? tp_cycles / (tp_ns / 1e9) : 0
	printf "  {\n"
	printf "    \"label\": \"%s\",\n", label
	printf "    \"date\": \"%s\",\n", date
	printf "    \"host_cpus\": %d,\n", cpus
	printf "    \"gomaxprocs\": %d,\n", gmp
	printf "    \"git_sha\": \"%s\",\n", sha
	printf "    \"total_fig_seconds\": %.3f,\n", fig_ns / 1e9
	printf "    \"sim_cycles_per_second\": %.0f\n", cps
	printf "  }"
}' "$raw")"
append_json "$out_json" "$entry"
tail -n 8 "$out_json" >&2

par_json="BENCH_parcore.json"
echo "bench: running par-core scaling (BenchmarkParCoreWorkers)" >&2
go test -run '^$' -bench 'BenchmarkParCoreWorkers' \
	-benchtime 1x -timeout 60m . | tee "$raw" >&2

par_entry="$(awk -v label="$label" -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
	-v cpus="$cpus" -v gmp="$gomaxprocs" -v sha="$git_sha" '
/^BenchmarkParCoreWorkers\/par1/ {
	for (i = 1; i <= NF; i++) {
		if ($i == "ns/op") p1_ns = $(i-1)
		if ($i == "sim_cycles") cycles = $(i-1)
	}
}
/^BenchmarkParCoreWorkers\/par8/ {
	for (i = 1; i <= NF; i++) if ($i == "ns/op") p8_ns = $(i-1)
}
END {
	speedup = (p8_ns > 0) ? p1_ns / p8_ns : 0
	printf "  {\n"
	printf "    \"label\": \"%s\",\n", label
	printf "    \"date\": \"%s\",\n", date
	printf "    \"host_cpus\": %d,\n", cpus
	printf "    \"gomaxprocs\": %d,\n", gmp
	printf "    \"git_sha\": \"%s\",\n", sha
	printf "    \"par1_seconds\": %.3f,\n", p1_ns / 1e9
	printf "    \"par8_seconds\": %.3f,\n", p8_ns / 1e9
	printf "    \"par8_speedup\": %.2f,\n", speedup
	printf "    \"sim_cycles\": %.0f\n", cycles
	printf "  }"
}' "$raw")"
append_json "$par_json" "$par_entry"
tail -n 10 "$par_json" >&2

# The gpusim bench modes stamp host_cpus/gomaxprocs themselves from the Go
# runtime; bench.sh only hands them the commit SHA via -benchlabel.
go build -o "$gpusim_bin" ./cmd/gpusim

# -allowoversub: interactive -benchscaling skips points beyond GOMAXPROCS
# by default (they only measure barrier overhead), but the recorded
# trajectory keeps the full flagged curve so entries stay comparable
# across hosts.
echo "bench: running -par scaling curve (gpusim -benchscaling)" >&2
"$gpusim_bin" -workload mummergpu -size tiny -cores 4 \
	-benchscaling -benchpars 1,2,4,8 -allowoversub -benchlabel "$git_sha" >"$raw"
append_json "BENCH_scaling.json" "$(cat "$raw")"

# mummergpu/tiny on a 4-core machine has the highest build-time fraction
# (suffix-tree construction dominates), so the checkpoint delta is a
# signal, not noise — see EXPERIMENTS.md for the methodology.
echo "bench: running checkpoint warm-start delta (gpusim -benchcheckpoint)" >&2
"$gpusim_bin" -workload mummergpu -size tiny -cores 4 \
	-benchcheckpoint 8 -benchlabel "$git_sha" >"$raw"
append_json "BENCH_checkpoint.json" "$(cat "$raw")"
tail -n 16 "BENCH_checkpoint.json" >&2

# Sampled-vs-exact: large datasets on the paper's augmented MMU (forced by
# -benchsampling), under the validated default plan 20000,20000,1000000 —
# warmup windows long enough that the TLBs re-warm organically (DESIGN.md
# section 15). Each workload runs twice (exact, then sampled), so this is
# the slowest section.
echo "bench: running sampled-vs-exact speedup/accuracy (gpusim -benchsampling)" >&2
"$gpusim_bin" -workload bfs,memcached,mummergpu -size large -cores 4 \
	-benchsampling -benchlabel "$git_sha" >"$raw"
append_json "BENCH_sampling.json" "$(cat "$raw")"
tail -n 8 "BENCH_sampling.json" >&2
