#!/usr/bin/env bash
# Measures simulator throughput on the tiny figure matrix and appends an
# entry to BENCH_hotpath.json so the performance trajectory is visible
# across PRs.
#
# Usage: tools/bench.sh [label]     (label defaults to the short git HEAD)
#
# Metrics recorded per entry:
#   total_fig_seconds      wall time summed over every BenchmarkFig* figure
#                          benchmark at -benchtime 1x (the tiny figure matrix)
#   sim_cycles_per_second  simulated cycles per wall-second, from
#                          BenchmarkSimulatorThroughput's sim_cycles metric
#
# Entries are append-only: compare the newest "after" entry against the
# older "before" entries to see the speedup a hot-path PR delivered.
set -euo pipefail
cd "$(dirname "$0")/.."

label="${1:-$(git rev-parse --short HEAD 2>/dev/null || echo unlabeled)}"
out_json="BENCH_hotpath.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "bench: running tiny figure matrix (go test -bench ...)" >&2
go test -run '^$' -bench 'BenchmarkFig|BenchmarkSimulatorThroughput' \
	-benchtime 1x -timeout 60m . | tee "$raw" >&2

entry="$(awk -v label="$label" -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^BenchmarkFig/ {
	# Format: BenchmarkFigNN...-P  N  <ns> ns/op  [<val> <metric>]...
	for (i = 1; i <= NF; i++) if ($i == "ns/op") fig_ns += $(i-1)
}
/^BenchmarkSimulatorThroughput/ {
	for (i = 1; i <= NF; i++) {
		if ($i == "ns/op") tp_ns = $(i-1)
		if ($i == "sim_cycles") tp_cycles = $(i-1)
	}
}
END {
	cps = (tp_ns > 0) ? tp_cycles / (tp_ns / 1e9) : 0
	printf "  {\n"
	printf "    \"label\": \"%s\",\n", label
	printf "    \"date\": \"%s\",\n", date
	printf "    \"total_fig_seconds\": %.3f,\n", fig_ns / 1e9
	printf "    \"sim_cycles_per_second\": %.0f\n", cps
	printf "  }"
}' "$raw")"

if [[ -s "$out_json" ]]; then
	# Append to the existing JSON array: strip the trailing "]" line.
	sed '$d' "$out_json" >"$out_json.tmp"
	printf ',\n%s\n]\n' "$entry" >>"$out_json.tmp"
	mv "$out_json.tmp" "$out_json"
else
	printf '[\n%s\n]\n' "$entry" >"$out_json"
fi

echo "bench: recorded entry '$label' in $out_json" >&2
tail -n 8 "$out_json" >&2
