# Assembles EXPERIMENTS.md from the harness output plus per-figure
# paper-vs-measured verdicts. Usage:
#   python3 tools/assemble_experiments.py [raw-harness-output] >> EXPERIMENTS.md
# With no argument it reads the committed raw report,
# tools/data/experiments_small.raw.txt (regenerate with
# `experiments -fig all -size small -v > tools/data/experiments_small.raw.txt`
# or `experiments -campaign examples/campaigns/paper-sweep.yaml`).
import os
import re
import sys

VERDICTS = {
    "fig2": """**Verdict: shape reproduced.** Naive TLBs degrade every workload
(0.18-0.81x; paper: 0.5-0.8x), with the ordering the paper implies —
streaming workloads lose least, divergent gather workloads (mummergpu,
memcached) lose most, overshooting the paper's band as DESIGN.md
anticipates. CCWS and TBC without TLBs sit at or above 1.0x, and adding
naive TLBs erases their advantage entirely (ccws+tlb tracks naive-tlb;
tbc+tlb can fall *below* plain naive-tlb, the paper's figure 20 point
that compaction amplifies TLB pain). Our CCWS gains without TLBs (0-1%)
are smaller than the paper's 20%+ because the synthetic workloads carry
less recoverable inter-warp cache locality.""",
    "fig3": """**Verdict: reproduced.** Memory instructions are 14-18% of the mix
(paper: under 25%). TLB miss rates span 14-58% (paper: 22-70%). Page
divergence averages 3.3 for bfs and 6.7 for mummergpu (paper: above 4 and
8) with maxima of 26-32 (paper: consistently high, up to the warp width);
kmeans/streamcluster/pathfinder sit at ~1, as their coalesced accesses
should.""",
    "fig4": """**Verdict: partially reproduced.** For the divergent workloads TLB
misses cost ~4.7x an L1 miss (paper: ~2x) — queueing on the per-core
walker, the paper's own explanation, is stronger here. For coalesced
workloads the ratio is 0.7-0.8x rather than ~2x: their isolated walks hit
the warm shared L2 while their L1 misses frequently pay DRAM. The paper's
qualitative point — misses whose walks serialise are multiplicatively
more expensive — reproduces; the uniform 2x does not.""",
    "fig6": """**Verdict: partially reproduced.** 64-entry TLBs are far worse than
128 everywhere (reach dominates), and the port-count effect matches the
paper precisely: only the high-divergence workloads (bfs, mummergpu) care
about ports, and 3->4 ports recovers most of what is recoverable with
diminishing returns beyond. Deviation: in our calibration larger TLBs keep
paying because miss rates remain high at 128 entries, so the paper's
128-entry optimum appears as diminishing returns rather than a reversal —
our CACTI-style penalty (latency plus pipeline occupancy) does not
outweigh the residual miss benefit.""",
    "fig7": """**Verdict: reproduced.** Hits-under-miss recovers a large share of
the blocking loss on every workload (e.g. kmeans 0.74->0.98,
streamcluster 0.57->0.96, mummergpu 0.28->0.41); the ideal TLB bounds
everything at ~1.0. Cache-overlap's incremental gain is within noise here
(the paper reports up to +8%) because hits-under-miss already unblocks the
dominant serialisation in our calibration.""",
    "fig10": """**Verdict: reproduced — the paper's headline.** Adding PTW
scheduling brings every workload to within 1-3% of the impractical
512-entry/32-port ideal (paper: within ~1%), including mummergpu
(0.40->0.99) and memcached (0.26->0.97). Walk-reference elimination is
40-79% (paper: 10-20%) — our densely allocated synthetic address spaces
share upper-level PTEs more than the paper's fragmented ones, as noted in
EXPERIMENTS' reading guide.""",
    "fig11": """**Verdict: reproduced.** The augmented single walker beats naive
designs with 2, 4, and 8 walkers on all six workloads (paper: ~10% gap
to 8 walkers). Extra naive walkers barely help the coalesced workloads
(their pain is the blocking TLB, not walk throughput) and help the
divergent ones only marginally — exactly why the paper prefers one
smarter walker.""",
    "fig13": """**Verdict: reproduced.** CCWS with naive TLBs collapses to the
naive-TLB level (paper: far below CCWS without TLBs), and the augmented
MMU restores CCWS to within 0.5-3% of its no-TLB performance. The
residual gap the paper highlights is smaller here because our augmented
design already sits near ideal (figure 10).""",
    "fig16": """**Verdict: direction reproduced, magnitude muted.** Weighting
TLB-carrying cache misses more heavily never hurts and nudges several
workloads toward CCWS-without-TLBs; because our CCWS baseline gains are
small, the 4:1 weighting's recovery is correspondingly small. The paper's
ordering (heavier weights help the TLB-bound workloads most) holds.""",
    "fig17": """**Verdict: direction reproduced.** TCWS tracks TA-CCWS within
noise across the EPW sweep, achieving the same performance with
page-granular VTAs (half the hardware, the paper's point). The paper's
8-EPW sweet spot appears as a shallow optimum here.""",
    "fig18": """**Verdict: direction reproduced.** LRU-depth-weighted score
updates leave TCWS within a few percent of CCWS-without-TLBs on all
workloads (paper: within 1-15%); the three weight schemes are nearly
indistinguishable in our calibration, with LRU(1,2,4,8) never worse.""",
    "fig20": """**Verdict: largely reproduced.** TBC without TLBs beats the
baseline on all six workloads (up to 1.11x); adding naive TLBs destroys
it (0.22-0.75x), costing 25-75% versus TBC-without-TLBs (paper: 20-25%)
and erasing TBC's advantage over plain naive TLBs. Deviation: with the
*augmented* MMU our TBC loses only 1-4% (paper: ~20%), because our
augmented design already sits within a few percent of ideal (figure 10),
leaving TBC little TLB pain to expose.""",
    "fig22": """**Verdict: mechanism reproduced; headroom smaller.** TLB-aware
TBC lands within 0-4% of TBC-without-TLBs on every workload (paper: 3-12%)
and improves on TLB-agnostic TBC for the divergent workloads (memcached
1.069 -> 1.105 at 2 bits). Because our augmented MMU leaves TBC little
TLB pain (see fig20), the CPM's gain is a few percent rather than the
paper's 15-20%; the mechanism itself — gating lowers compacted warps'
page divergence while forming more warps — is verified directly by unit
test (internal/gpu/tbc_test.go).""",
    "figLP": """**Verdict: largely reproduced.** 2 MB pages collapse divergence
to ~1 and cut miss rates to 0.5-2.6% everywhere, bringing overheads to
within ~3% of the no-TLB baseline. The two workloads the paper singles
out as retaining divergence are the same two that retain the most here
(memcached 1.37, mummergpu 1.16) — though far below the paper's 6 and 3,
because our scaled footprints span fewer 2 MB pages per warp than the
authors' 12 MB-reach access patterns.""",
    "figEXT": """**Verdict (no paper reference - extensions).** A 64-entry page
walk cache and a 4096-entry shared L2 TLB each buy a further slice of the
remaining overhead on walk-heavy workloads; software-managed walks are
uniformly disastrous, confirming the paper's section 6.1 rejection.""",
}

DEFAULT_RAW = os.path.join(os.path.dirname(__file__), "data", "experiments_small.raw.txt")

text = open(sys.argv[1] if len(sys.argv) > 1 else DEFAULT_RAW).read()
# Drop verbose per-run lines.
text = re.sub(r"(?m)^# ran .*\n", "", text)
# Insert verdicts after each figure's table (before the next ## or EOF).
parts = re.split(r"(?m)^## ", text)
out = []
for part in parts:
    if not part.strip():
        continue
    fig_id = part.split(" ", 1)[0].strip()
    verdict = VERDICTS.get(fig_id, "")
    body = "## " + part.rstrip() + "\n"
    if verdict:
        body += "\n" + verdict + "\n"
    out.append(body)
print("\n".join(out))
