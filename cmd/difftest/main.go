// Command difftest soak-runs the differential fuzzing harness: seeded
// random kernels and hardware configurations are executed on both the
// timing simulator and the reference functional model, and any divergence
// is minimised to a replayable Go test snippet.
//
// Usage:
//
//	difftest [-n samples] [-seed start] [-minimize] [-timeout per-sample] [-v]
//
// Exit status is 0 when every sample agrees, 1 on the first divergence
// (after printing the minimised repro), 2 on usage errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"gpummu/internal/difftest"
)

func main() {
	var (
		n        = flag.Int("n", 256, "number of seeded samples to run")
		seed     = flag.Uint64("seed", 1, "first seed; samples use seed..seed+n-1")
		minimize = flag.Bool("minimize", true, "shrink a failing sample before reporting it")
		timeout  = flag.Duration("timeout", 60*time.Second, "wall-clock budget per sample")
		verbose  = flag.Bool("v", false, "describe every sample as it runs")
	)
	flag.Parse()
	if *n < 1 {
		fmt.Fprintln(os.Stderr, "difftest: -n must be >= 1")
		os.Exit(2)
	}

	run := func(s *difftest.Sample) error {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		return s.Diff(ctx)
	}

	start := time.Now()
	for i := 0; i < *n; i++ {
		sd := *seed + uint64(i)
		s := difftest.Generate(sd)
		if *verbose {
			fmt.Printf("%4d/%d %s\n", i+1, *n, s.Describe())
		} else if i%16 == 0 {
			fmt.Printf("%4d/%d samples, %d ok, %s elapsed\n", i, *n, i, time.Since(start).Round(time.Millisecond))
		}
		err := run(s)
		if err == nil {
			continue
		}
		fmt.Fprintf(os.Stderr, "\nDIVERGENCE %s\n  %v\n", s.Describe(), err)
		if *minimize {
			fmt.Fprintln(os.Stderr, "minimising...")
			min := difftest.Minimise(s, func(c *difftest.Sample) bool { return run(c) != nil })
			fmt.Fprintf(os.Stderr, "minimised to %s\n  %v\n", min.Describe(), run(min))
			s = min
		}
		fmt.Fprintf(os.Stderr, "\nreproduce with (in package difftest_test):\n\n%s\n", s.ReproSnippet())
		os.Exit(1)
	}
	fmt.Printf("%d/%d samples agree with the reference model (%s)\n",
		*n, *n, time.Since(start).Round(time.Millisecond))
}
