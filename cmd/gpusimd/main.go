// Command gpusimd is the simulation job server: it accepts campaign and
// workload submissions over the versioned /v1 HTTP API, executes them
// through the experiment pipeline, and persists every result in a durable
// store so no client ever pays for the same simulation twice. The run
// manifest survives restarts — interrupted jobs resume with their
// completed simulations served from the store.
//
// Usage:
//
//	gpusimd -addr 127.0.0.1:8080 -store /var/lib/gpusimd
//	gpusimd -addr 127.0.0.1:0 -addrfile /tmp/gpusimd.addr   # scripts
//	gpusim submit -server http://127.0.0.1:8080 -campaign sweep.yaml -wait
//
// -store "" runs fully in memory (nothing survives exit). -addrfile
// writes the server's reachable base URL after the listener binds, so
// scripts using -addr :0 can discover the port. See DESIGN.md section 16.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"gpummu/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free one)")
		store    = flag.String("store", "", "state directory for the durable store, manifest and reports; empty = in-memory")
		addrFile = flag.String("addrfile", "", "write the server's base URL to this file once the listener is bound")
		workers  = flag.Int("j", runtime.GOMAXPROCS(0), "default simulation workers for campaigns that don't set run.workers")
		par      = flag.Int("par", 1, "default goroutines ticking cores inside one simulation (output is identical for any value)")
		timeout  = flag.Duration("jobtimeout", 0, "wall-clock budget per job when the campaign sets no obs.deadline (0 = unbounded); enforced even while a job waits for simulation slots")
		jobs     = flag.Int("jobs", 0, "jobs executing concurrently (0 = GOMAXPROCS-aware default); reports are byte-identical for any value")
		slots    = flag.Int("slots", 0, "global simulation-slot budget shared by all in-flight jobs (0 = the -j value), so jobs x workers never oversubscribes the host")
	)
	flag.Parse()

	srv, err := service.NewServer(service.Options{
		Dir:         *store,
		Workers:     *workers,
		CoreWorkers: *par,
		JobTimeout:  *timeout,
		Jobs:        *jobs,
		Slots:       *slots,
	})
	if err != nil {
		fatal("%v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("%v", err)
	}
	base := fmt.Sprintf("http://%s", ln.Addr())
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(base+"\n"), 0o644); err != nil {
			fatal("-addrfile: %v", err)
		}
	}
	fmt.Fprintf(os.Stderr, "gpusimd: listening on %s (store %q)\n", base, *store)

	hs := &http.Server{Handler: srv}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "gpusimd: %v, shutting down\n", s)
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			fatal("%v", err)
		}
	}
	// Stop accepting requests, then let the current job finish journalling
	// before the store closes. Interrupted pending jobs resume on restart.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	hs.Shutdown(shutdownCtx)
	if err := srv.Close(); err != nil {
		fatal("%v", err)
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "gpusimd: "+format+"\n", args...)
	os.Exit(1)
}
