// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -fig all  -size small          # everything
//	experiments -fig 2    -size medium         # one figure
//	experiments -fig 2,4,13                    # a subset, one report
//	experiments -fig 3 -workloads bfs,mummergpu
//	experiments -fig all -j 8 -v               # 8 workers, progress on stderr
//	experiments -list
//
// Output is a markdown-ish report: one table per figure, shaped like the
// paper's plots (rows = workloads, columns = configurations, values =
// speedup over the no-TLB baseline unless stated otherwise).
//
// The run matrix of every requested figure is planned up front, deduped,
// and executed on -j parallel workers (default: GOMAXPROCS); tables are
// rendered afterwards from the completed results, so the report bytes are
// identical for any -j. A spec that fails (e.g. a simulated deadlock) is
// reported on stderr with its workload and configuration and fails only
// the figures that need it; the rest of the report still renders.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"gpummu/internal/config"
	"gpummu/internal/experiments"
	"gpummu/internal/workloads"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure id (2,3,4,6,7,10,11,13,16,17,18,20,22,LP,EXT), a comma list, or 'all'")
		size     = flag.String("size", "small", "dataset scale: tiny|small|medium|large")
		seed     = flag.Uint64("seed", 1, "workload generation seed")
		wl       = flag.String("workloads", "", "comma-separated workload subset (default: paper's six)")
		list     = flag.Bool("list", false, "list figures and exit")
		verbose  = flag.Bool("v", false, "log every simulation run to stderr")
		workers  = flag.Int("j", runtime.GOMAXPROCS(0), "parallel simulation workers")
		par      = flag.Int("par", 1, "goroutines ticking cores inside each simulation (output is identical for any value)")
		machine  = flag.String("machine", "baseline", "machine preset: baseline|small")
		coresOvr = flag.Int("cores", 0, "override shader core count (0 = preset)")
		sample   = flag.Uint64("sample", 0, "record a time-series sample every N cycles in every run")
		smplDir  = flag.String("sampledir", "", "write each run's sampled series as CSV into this directory (requires -sample)")
		watchdog = flag.Uint64("watchdog", 0, "abort a run when no thread block retires for N cycles (0 = off)")
		maxCyc   = flag.Uint64("maxcycles", 0, "per-run simulated cycle budget (0 = unbounded)")
		deadline = flag.Duration("deadline", 0, "wall-clock budget for the whole report, e.g. 10m (0 = none)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProfiles := startProfiles(*cpuProf, *memProf)
	defer stopProfiles()

	if *list {
		fmt.Print(experiments.Summary())
		return
	}

	var sz workloads.Size
	switch *size {
	case "tiny":
		sz = workloads.SizeTiny
	case "small":
		sz = workloads.SizeSmall
	case "medium":
		sz = workloads.SizeMedium
	case "large":
		sz = workloads.SizeLarge
	default:
		fatal("unknown -size %q", *size)
	}

	mk := config.Baseline
	if *machine == "small" {
		mk = config.SmallTest
	}
	machineFn := mk
	if *coresOvr > 0 {
		machineFn = func() config.Hardware {
			c := mk()
			c.NumCores = *coresOvr
			return c
		}
	}

	if *smplDir != "" && *sample == 0 {
		fatal("-sampledir requires -sample")
	}
	ob := experiments.ObsOptions{
		SampleEvery: *sample,
		SampleDir:   *smplDir,
		Watchdog:    *watchdog,
		MaxCycles:   *maxCyc,
	}
	if *deadline > 0 {
		ob.Deadline = time.Now().Add(*deadline)
	}

	opt := experiments.Options{
		Size:        sz,
		Seed:        *seed,
		Machine:     machineFn,
		Workers:     *workers,
		Verbose:     *verbose,
		CoreWorkers: *par,
		Obs:         ob,
	}
	if *wl != "" {
		opt.Workload = strings.Split(*wl, ",")
	}
	h := experiments.New(os.Stdout, opt)

	var figs []experiments.Figure
	if *fig == "all" {
		figs = experiments.All()
	} else {
		for _, id := range strings.Split(*fig, ",") {
			id = strings.TrimSpace(id)
			if !strings.HasPrefix(id, "fig") {
				id = "fig" + id
			}
			f, err := experiments.ByID(id)
			if err != nil {
				fatal("%v", err)
			}
			figs = append(figs, f)
		}
	}

	// RunFigures keeps going past failed specs: broken runs are logged by
	// the executor and surface here after the full report has rendered.
	if err := experiments.RunFigures(h, figs); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: some figures failed:\n%v\n", err)
		stopProfiles()
		os.Exit(1)
	}
}

// startProfiles starts the requested pprof collection and returns an
// idempotent stop function that flushes the profiles. Call it both on the
// normal return path (via defer) and before any explicit os.Exit.
func startProfiles(cpu, heap string) func() {
	var cpuFile *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			fatal("-cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal("-cpuprofile: %v", err)
		}
		cpuFile = f
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if heap != "" {
			f, err := os.Create(heap)
			if err != nil {
				fatal("-memprofile: %v", err)
			}
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal("-memprofile: %v", err)
			}
			f.Close()
		}
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
	os.Exit(1)
}
