// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -fig all  -size small          # everything
//	experiments -fig 2    -size medium         # one figure
//	experiments -fig 2,4,13                    # a subset, one report
//	experiments -fig 3 -workloads bfs,mummergpu
//	experiments -fig all -j 8 -v               # 8 workers, progress on stderr
//	experiments -campaign sweep.yaml           # a declarative campaign file
//	experiments -campaign sweep.yaml -validate # check + print canonical form
//	experiments -list
//
// Output is a markdown-ish report: one table per figure, shaped like the
// paper's plots (rows = workloads, columns = configurations, values =
// speedup over the no-TLB baseline unless stated otherwise).
//
// The run matrix of every requested figure is planned up front, deduped,
// and executed on -j parallel workers (default: GOMAXPROCS); tables are
// rendered afterwards from the completed results, so the report bytes are
// identical for any -j. A spec that fails (e.g. a simulated deadlock) is
// reported on stderr with its workload and configuration and fails only
// the figures that need it; the rest of the report still renders.
//
// With -campaign, the file supplies every setting a flag would; flags the
// command line sets explicitly override the campaign (flags > campaign >
// defaults, see DESIGN.md section 13). -machine replaces the campaign's
// whole machine block; -fig replaces its figure list (and drops its sweep).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"gpummu/internal/campaign"
	"gpummu/internal/config"
	"gpummu/internal/experiments"
	"gpummu/internal/gpu"
	"gpummu/internal/workloads"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure id (2,3,4,6,7,10,11,13,16,17,18,20,22,LP,EXT), a comma list, or 'all'")
		size     = flag.String("size", "small", "dataset scale: tiny|small|medium|large")
		seed     = flag.Uint64("seed", 1, "workload generation seed")
		wl       = flag.String("workloads", "", "comma-separated workload subset (default: paper's six)")
		list     = flag.Bool("list", false, "list figures and exit")
		verbose  = flag.Bool("v", false, "log every simulation run to stderr")
		workers  = flag.Int("j", runtime.GOMAXPROCS(0), "parallel simulation workers")
		par      = flag.Int("par", 1, "goroutines ticking cores inside each simulation (output is identical for any value)")
		checkpt  = flag.Bool("checkpoint", false, "warm-start runs from per-workload post-build snapshots (output is identical either way)")
		plan     = flag.String("sampleplan", "", "run every simulation under interval sampling warmup,detail,fastforward[,warm] (cycles); empty = exact")
		smpRep   = flag.Bool("samplereport", false, "append the exact-vs-sampled validation table for -sampleplan (runs each workload twice)")
		machine  = flag.String("machine", "baseline", "machine preset: baseline|small")
		coresOvr = flag.Int("cores", 0, "override shader core count (0 = preset)")
		sample   = flag.Uint64("sample", 0, "record a time-series sample every N cycles in every run")
		smplDir  = flag.String("sampledir", "", "write each run's sampled series as CSV into this directory (requires -sample)")
		watchdog = flag.Uint64("watchdog", 0, "abort a run when no thread block retires for N cycles (0 = off)")
		maxCyc   = flag.Uint64("maxcycles", 0, "per-run simulated cycle budget (0 = unbounded)")
		deadline = flag.Duration("deadline", 0, "wall-clock budget for the whole report, e.g. 10m (0 = none)")
		campFile = flag.String("campaign", "", "campaign file (YAML or JSON); explicitly-set flags override it")
		validate = flag.Bool("validate", false, "validate -campaign, print its canonical form, and exit")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	// isSet records which flags the command line touched: an explicitly-set
	// flag beats the campaign, an untouched one defers to it.
	isSet := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { isSet[f.Name] = true })

	stopProfiles := startProfiles(*cpuProf, *memProf)
	defer stopProfiles()

	if *list {
		fmt.Print(experiments.Summary())
		return
	}

	var camp *campaign.Campaign
	if *campFile != "" {
		c, err := campaign.Load(*campFile)
		if err != nil {
			fatal("%v", err)
		}
		camp = c
	}
	if *validate {
		if camp == nil {
			fatal("-validate requires -campaign")
		}
		os.Stdout.Write(camp.Emit())
		return
	}

	sizeName := *size
	if camp != nil && !isSet["size"] {
		sizeName = camp.Workloads.Size
	}
	sz, err := workloads.ParseSize(sizeName)
	if err != nil {
		fatal("-size: %v", err)
	}

	seedV := *seed
	if camp != nil && !isSet["seed"] {
		seedV = camp.Workloads.Seed
	}
	workersV := *workers
	if camp != nil && !isSet["j"] && camp.Run.Workers > 0 {
		workersV = camp.Run.Workers
	}
	parV := *par
	if camp != nil && !isSet["par"] {
		parV = camp.Run.Par
	}
	if maxp := runtime.GOMAXPROCS(0); parV > maxp {
		fatal("-par %d exceeds GOMAXPROCS(0)=%d: extra core-ticking workers cannot run in parallel and the phase barriers make the run slower, not faster (README %q); use -par <= %d or raise GOMAXPROCS", parV, maxp, "Parallel core ticking", maxp)
	}
	checkptV := *checkpt
	if camp != nil && !isSet["checkpoint"] {
		checkptV = camp.Run.Checkpoint
	}
	samplePlan := gpu.SamplePlan{}
	if camp != nil && !isSet["sampleplan"] {
		samplePlan = camp.Run.Sampling
	} else if *plan != "" {
		p, err := gpu.ParseSamplePlan(*plan)
		if err != nil {
			fatal("-sampleplan: %v", err)
		}
		samplePlan = p
	}
	if *smpRep && !samplePlan.Enabled() {
		fatal("-samplereport needs -sampleplan (or a campaign with run.sampling)")
	}

	// -machine replaces the campaign's whole machine block (preset and
	// overrides); otherwise the campaign machine is used as-is. -cores
	// applies last either way.
	var machineFn func() config.Hardware
	if camp != nil && !isSet["machine"] {
		machineFn = camp.MachineFunc()
	} else {
		switch *machine {
		case "baseline":
			machineFn = config.Baseline
		case "small":
			machineFn = config.SmallTest
		default:
			fatal("unknown -machine %q (have baseline, small)", *machine)
		}
	}
	if *coresOvr > 0 {
		base := machineFn
		machineFn = func() config.Hardware {
			c := base()
			c.NumCores = *coresOvr
			return c
		}
	}

	ob := experiments.ObsOptions{
		SampleEvery: *sample,
		SampleDir:   *smplDir,
		Watchdog:    *watchdog,
		MaxCycles:   *maxCyc,
	}
	deadlineV := *deadline
	if camp != nil {
		if !isSet["sample"] {
			ob.SampleEvery = camp.Obs.SampleEvery
		}
		if !isSet["sampledir"] {
			ob.SampleDir = camp.Obs.SampleDir
		}
		if !isSet["watchdog"] {
			ob.Watchdog = camp.Obs.Watchdog
		}
		if !isSet["maxcycles"] {
			ob.MaxCycles = camp.Obs.MaxCycles
		}
		if !isSet["deadline"] {
			deadlineV = camp.Obs.Deadline
		}
	}
	if ob.SampleDir != "" && ob.SampleEvery == 0 {
		fatal("-sampledir requires -sample")
	}
	if deadlineV > 0 {
		ob.Deadline = time.Now().Add(deadlineV)
	}

	var names []string
	if camp != nil && !isSet["workloads"] {
		names = camp.Workloads.Names
	} else if *wl != "" {
		for _, n := range strings.Split(*wl, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	// Fail fast on names the registry (or the trace resolver) rejects,
	// listing what would have worked, instead of erroring mid-report.
	for _, n := range names {
		if err := workloads.Resolve(n); err != nil {
			fatal("-workloads: %v", err)
		}
	}

	opt := experiments.Options{
		Size:        sz,
		Seed:        seedV,
		Machine:     machineFn,
		Workload:    names,
		Workers:     workersV,
		Verbose:     *verbose,
		CoreWorkers: parV,
		Obs:         ob,
		Checkpoint:  checkptV,
		Sampling:    samplePlan,
	}

	var figs []experiments.Figure
	if camp != nil && !isSet["fig"] {
		figs, err = camp.ExpandFigures()
		if err != nil {
			fatal("%v", err)
		}
	} else if *fig == "all" {
		figs = experiments.All()
	} else {
		for _, id := range strings.Split(*fig, ",") {
			id = strings.TrimSpace(id)
			if !strings.HasPrefix(id, "fig") {
				id = "fig" + id
			}
			f, err := experiments.ByID(id)
			if err != nil {
				fatal("%v", err)
			}
			figs = append(figs, f)
		}
	}

	// The campaign's output.report redirects the report into a file; flag
	// invocations keep writing to stdout.
	out := io.Writer(os.Stdout)
	var reportFile *os.File
	if camp != nil && camp.Output.Report != "" {
		if dir := filepath.Dir(camp.Output.Report); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fatal("output.report: %v", err)
			}
		}
		f, err := os.Create(camp.Output.Report)
		if err != nil {
			fatal("output.report: %v", err)
		}
		reportFile = f
		out = f
	}
	closeReport := func() {
		if reportFile == nil {
			return
		}
		if err := reportFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: output.report: %v\n", err)
		}
		reportFile = nil
	}

	h := experiments.New(out, opt)

	// RunFigures keeps going past failed specs: broken runs are logged by
	// the executor and surface here after the full report has rendered.
	if err := experiments.RunFigures(h, figs); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: some figures failed:\n%v\n", err)
		closeReport()
		stopProfiles()
		os.Exit(1)
	}
	if *smpRep {
		body, err := experiments.SampledReport(h, samplePlan)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: sampled report: %v\n", err)
			closeReport()
			stopProfiles()
			os.Exit(1)
		}
		fmt.Fprintf(out, "\n## sampled-vs-exact — interval sampling validation (plan %s)\n\n%s\n", samplePlan, body)
	}
	closeReport()
}

// startProfiles starts the requested pprof collection and returns an
// idempotent stop function that flushes the profiles. Call it both on the
// normal return path (via defer) and before any explicit os.Exit.
func startProfiles(cpu, heap string) func() {
	var cpuFile *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			fatal("-cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal("-cpuprofile: %v", err)
		}
		cpuFile = f
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if heap != "" {
			f, err := os.Create(heap)
			if err != nil {
				fatal("-memprofile: %v", err)
			}
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal("-memprofile: %v", err)
			}
			f.Close()
		}
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
	os.Exit(1)
}
