// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -fig all  -size small          # everything (slow)
//	experiments -fig 2    -size medium         # one figure
//	experiments -fig 3 -workloads bfs,mummergpu
//	experiments -list
//
// Output is a markdown-ish report: one table per figure, shaped like the
// paper's plots (rows = workloads, columns = configurations, values =
// speedup over the no-TLB baseline unless stated otherwise).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gpummu/internal/config"
	"gpummu/internal/experiments"
	"gpummu/internal/workloads"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure id (2,3,4,6,7,10,11,13,16,17,18,20,22,LP,EXT) or 'all'")
		size     = flag.String("size", "small", "dataset scale: tiny|small|medium|large")
		seed     = flag.Uint64("seed", 1, "workload generation seed")
		wl       = flag.String("workloads", "", "comma-separated workload subset (default: paper's six)")
		list     = flag.Bool("list", false, "list figures and exit")
		verbose  = flag.Bool("v", false, "log every simulation run")
		machine  = flag.String("machine", "baseline", "machine preset: baseline|small")
		coresOvr = flag.Int("cores", 0, "override shader core count (0 = preset)")
	)
	flag.Parse()

	if *list {
		fmt.Print(experiments.Summary())
		return
	}

	var sz workloads.Size
	switch *size {
	case "tiny":
		sz = workloads.SizeTiny
	case "small":
		sz = workloads.SizeSmall
	case "medium":
		sz = workloads.SizeMedium
	case "large":
		sz = workloads.SizeLarge
	default:
		fatal("unknown -size %q", *size)
	}

	mk := config.Baseline
	if *machine == "small" {
		mk = config.SmallTest
	}
	machineFn := mk
	if *coresOvr > 0 {
		machineFn = func() config.Hardware {
			c := mk()
			c.NumCores = *coresOvr
			return c
		}
	}

	opt := experiments.Options{
		Size:    sz,
		Seed:    *seed,
		Machine: machineFn,
		Verbose: *verbose,
	}
	if *wl != "" {
		opt.Workload = strings.Split(*wl, ",")
	}
	h := experiments.New(os.Stdout, opt)

	if *fig == "all" {
		if err := experiments.RunAll(h); err != nil {
			fatal("%v", err)
		}
		return
	}
	id := *fig
	if !strings.HasPrefix(id, "fig") {
		id = "fig" + id
	}
	f, err := experiments.ByID(id)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("\n## %s — %s\n\nPaper: %s\n\n", f.ID, f.Title, f.Paper)
	body, err := f.Run(h)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Println(body)
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
	os.Exit(1)
}
