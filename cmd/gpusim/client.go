// The gpusimd client subcommands. gpusim keeps its classic flag interface
// for local runs; when the first argument is one of the verbs below, the
// run goes to a shared gpusimd server instead:
//
//	gpusim submit    -server URL -campaign file.yaml -wait -report
//	gpusim submit    -server URL -workload bfs,kmeans -machine small -wait
//	gpusim status    -server URL [jobID]
//	gpusim results   -server URL [-workload bfs] [-key KEY]
//	gpusim compare   -server URL KEY1 KEY2 [KEY...]
//	gpusim recommend -server URL -workload bfs [-metric cycles|ipc|tlbmissrate]
//
// submit prints job state as JSON on stderr (watchable with 2>status.json)
// and, with -report, streams the finished report to stdout — so a
// server-side campaign run plugs into the same shell pipelines as a local
// one. Everything here rides on service.Client (re-exported as
// gpummu.Client for programs embedding the simulator).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gpummu/internal/service"
)

// clientVerbs names the subcommands dispatched before classic flag
// parsing.
var clientVerbs = map[string]func(args []string) error{
	"submit":    runSubmit,
	"status":    runStatus,
	"results":   runResults,
	"compare":   runCompare,
	"recommend": runRecommend,
}

// runClientVerb dispatches gpusim's server subcommands. It returns false
// when os.Args names no verb and the classic flag path should run.
func runClientVerb() bool {
	if len(os.Args) < 2 {
		return false
	}
	verb, ok := clientVerbs[os.Args[1]]
	if !ok {
		return false
	}
	if err := verb(os.Args[2:]); err != nil {
		fmt.Fprintf(os.Stderr, "gpusim %s: %v\n", os.Args[1], err)
		os.Exit(1)
	}
	return true
}

// serverFlag installs the shared -server flag on a subcommand FlagSet.
func serverFlag(fs *flag.FlagSet) *string {
	return fs.String("server", "http://127.0.0.1:8080", "gpusimd base URL")
}

// printJSON writes v as indented JSON to the given stream.
func printJSON(w *os.File, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// runSubmit posts a job and optionally waits for it and fetches its
// report.
func runSubmit(args []string) error {
	fs := flag.NewFlagSet("gpusim submit", flag.ExitOnError)
	server := serverFlag(fs)
	campFile := fs.String("campaign", "", "campaign file (YAML or JSON) to submit")
	workload := fs.String("workload", "", "comma-separated workloads for an ad-hoc run")
	size := fs.String("size", "", "tiny|small|medium|large (ad-hoc; default small)")
	seed := fs.Uint64("seed", 0, "workload seed (ad-hoc; default 1)")
	machine := fs.String("machine", "", "machine preset: baseline|small (ad-hoc)")
	name := fs.String("name", "", "job name (ad-hoc; default adhoc)")
	workers := fs.Int("j", 0, "simulation workers (0 = server default)")
	par := fs.Int("par", 0, "core-ticking goroutines per simulation (0 = server default)")
	checkpoint := fs.Bool("checkpoint", false, "warm-start runs from post-build snapshots")
	plan := fs.String("sampleplan", "", "interval sampling plan warmup,detail,fastforward[,warm]")
	wait := fs.Bool("wait", false, "poll until the job finishes")
	report := fs.Bool("report", false, "print the finished report to stdout (implies -wait)")
	poll := fs.Duration("poll", 200*time.Millisecond, "poll interval for -wait")
	fs.Parse(args)

	req := service.SubmitRequest{
		Name:       *name,
		Size:       *size,
		Seed:       *seed,
		Machine:    *machine,
		Workers:    *workers,
		Par:        *par,
		Checkpoint: *checkpoint,
		Sampling:   *plan,
	}
	if *workload != "" {
		for _, w := range strings.Split(*workload, ",") {
			if w = strings.TrimSpace(w); w != "" {
				req.Workloads = append(req.Workloads, w)
			}
		}
	}
	if *campFile != "" {
		doc, err := os.ReadFile(*campFile)
		if err != nil {
			return err
		}
		req.Campaign = string(doc)
	} else if len(req.Workloads) == 0 {
		return fmt.Errorf("nothing to submit: give -campaign or -workload")
	}

	c := service.NewClient(*server)
	// A full queue is a transient condition with an explicit server hint:
	// back off for exactly the advertised Retry-After a few times before
	// giving up.
	var job *service.Job
	var err error
	for attempt := 0; ; attempt++ {
		job, err = c.Submit(req)
		var qf *service.QueueFullError
		if err == nil || !errors.As(err, &qf) || attempt >= 4 {
			break
		}
		fmt.Fprintf(os.Stderr, "gpusim submit: %v, retrying\n", qf)
		time.Sleep(qf.RetryAfter)
	}
	if err != nil {
		return err
	}
	if !*wait && !*report {
		return printJSON(os.Stderr, job)
	}
	if job, err = c.Wait(context.Background(), job.ID, *poll); err != nil {
		return err
	}
	if err := printJSON(os.Stderr, job); err != nil {
		return err
	}
	if job.State != service.StateDone {
		return fmt.Errorf("job %s finished %s: %s", job.ID, job.State, job.Error)
	}
	if *report {
		body, err := c.Report(job.ID)
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(body)
		return err
	}
	return nil
}

// runStatus prints one job (by ID) or the whole manifest.
func runStatus(args []string) error {
	fs := flag.NewFlagSet("gpusim status", flag.ExitOnError)
	server := serverFlag(fs)
	fs.Parse(args)
	c := service.NewClient(*server)
	if fs.NArg() > 0 {
		job, err := c.Job(fs.Arg(0))
		if err != nil {
			return err
		}
		return printJSON(os.Stdout, job)
	}
	jobs, err := c.Jobs()
	if err != nil {
		return err
	}
	return printJSON(os.Stdout, jobs)
}

// runResults lists stored result envelopes.
func runResults(args []string) error {
	fs := flag.NewFlagSet("gpusim results", flag.ExitOnError)
	server := serverFlag(fs)
	workload := fs.String("workload", "", "filter to one workload")
	key := fs.String("key", "", "fetch one exact result key")
	fs.Parse(args)
	c := service.NewClient(*server)
	if *key != "" {
		res, err := c.Result(*key)
		if err != nil {
			return err
		}
		return printJSON(os.Stdout, res)
	}
	list, err := c.Results(*workload)
	if err != nil {
		return err
	}
	return printJSON(os.Stdout, list)
}

// runCompare fetches the named keys side by side.
func runCompare(args []string) error {
	fs := flag.NewFlagSet("gpusim compare", flag.ExitOnError)
	server := serverFlag(fs)
	fs.Parse(args)
	if fs.NArg() < 2 {
		return fmt.Errorf("compare needs at least two result keys")
	}
	c := service.NewClient(*server)
	list, err := c.Compare(fs.Args()...)
	if err != nil {
		return err
	}
	return printJSON(os.Stdout, list)
}

// runRecommend asks the server for the best stored configuration for a
// workload.
func runRecommend(args []string) error {
	fs := flag.NewFlagSet("gpusim recommend", flag.ExitOnError)
	server := serverFlag(fs)
	workload := fs.String("workload", "", "workload to optimise for (required)")
	metric := fs.String("metric", "cycles", "cycles|ipc|tlbmissrate")
	fs.Parse(args)
	if *workload == "" {
		return fmt.Errorf("recommend needs -workload")
	}
	c := service.NewClient(*server)
	res, val, err := c.Best(*workload, *metric)
	if err != nil {
		return err
	}
	return printJSON(os.Stdout, map[string]any{"metric": *metric, "value": val, "result": res})
}
