// Benchmark modes: -benchscaling records a per-worker (-par) scaling
// curve for one workload, and -benchcheckpoint records the wall-clock
// delta of checkpointed warm starts versus cold rebuilds over a
// multi-config sweep sharing one workload. Both emit a single JSON object
// on stdout, stamped with host CPU count, GOMAXPROCS, and the git SHA
// handed in via -benchlabel, so appended BENCH records are attributable
// to a machine and commit (tools/bench.sh does the appending; schemas in
// EXPERIMENTS.md).
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"gpummu/internal/config"
	"gpummu/internal/experiments"
	"gpummu/internal/gpu"
	"gpummu/internal/snapshot"
	"gpummu/internal/stats"
	"gpummu/internal/workloads"
)

// benchSchema versions the bench record envelope, mirroring the service
// package's result schema discipline: consumers match on it instead of
// sniffing fields.
const benchSchema = "gpummu.bench/v1"

// benchMeta is the host/commit attribution common to both bench records.
type benchMeta struct {
	Schema     string `json:"schema"`
	Kind       string `json:"kind"`
	Workload   string `json:"workload"`
	Size       string `json:"size"`
	Date       string `json:"date"`
	HostCPUs   int    `json:"host_cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GitSHA     string `json:"git_sha"`
}

func newBenchMeta(kind, workload, size, label string) benchMeta {
	if label == "" {
		label = "unknown"
	}
	return benchMeta{
		Schema:     benchSchema,
		Kind:       kind,
		Workload:   workload,
		Size:       size,
		Date:       time.Now().UTC().Format(time.RFC3339),
		HostCPUs:   runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GitSHA:     label,
	}
}

// scalingPoint is one -par measurement of the scaling curve.
type scalingPoint struct {
	Par            int     `json:"par"`
	Seconds        float64 `json:"seconds"`
	SimCycles      uint64  `json:"sim_cycles"`
	CyclesPerSec   float64 `json:"cycles_per_sec"`
	SpeedupVsPar1  float64 `json:"speedup_vs_par1"`
	Oversubscribed bool    `json:"oversubscribed"` // par > GOMAXPROCS: expect a slowdown, not a speedup
}

type scalingRecord struct {
	benchMeta
	Points  []scalingPoint `json:"points"`
	Skipped []int          `json:"skipped_oversubscribed,omitempty"` // -par points skipped (beyond GOMAXPROCS, no -allowoversub)
}

// runBenchScaling measures one workload under the same configuration at
// each -par worker count and emits the curve as JSON. The workload is
// built once and checkpoint-restored between points (the restore is part
// of what this PR ships; byte-identical cycles across points double as
// the production equivalence check). Points beyond GOMAXPROCS are skipped
// by default — on a 1-CPU host they only measure barrier overhead, which
// wastes bench time and pollutes the trajectory; -allowoversub restores
// them (flagged oversubscribed in the record).
func runBenchScaling(cfg config.Hardware, name, sizeName string, sz workloads.Size, seed uint64, pars []int, allowOversub bool, label string) error {
	w, err := workloads.Build(name, sz, cfg.PageShift, seed)
	if err != nil {
		return err
	}
	img := snapshot.Capture(w.AS)

	rec := scalingRecord{benchMeta: newBenchMeta("scaling", name, sizeName, label)}
	var baseCycles uint64
	var baseSecs float64
	for _, par := range pars {
		if par > runtime.GOMAXPROCS(0) && !allowOversub {
			rec.Skipped = append(rec.Skipped, par)
			fmt.Fprintf(os.Stderr, "# benchscaling par=%d: skipped (exceeds GOMAXPROCS=%d; -allowoversub measures it anyway)\n",
				par, runtime.GOMAXPROCS(0))
			continue
		}
		img.Restore(w.AS)
		st := &stats.Sim{}
		g, err := gpu.New(cfg, w.AS, st)
		if err != nil {
			return err
		}
		g.Workers = par
		start := time.Now()
		cycles, err := g.Run(w.Launch)
		secs := time.Since(start).Seconds()
		if err != nil {
			return fmt.Errorf("par=%d: %w", par, err)
		}
		if w.Check != nil {
			if err := w.Check(); err != nil {
				return fmt.Errorf("par=%d: functional check: %w", par, err)
			}
		}
		if len(rec.Points) == 0 {
			baseCycles, baseSecs = cycles, secs
		} else if cycles != baseCycles {
			return fmt.Errorf("par=%d simulated %d cycles, par=%d simulated %d: parallel ticking must be byte-identical", par, cycles, rec.Points[0].Par, baseCycles)
		}
		rec.Points = append(rec.Points, scalingPoint{
			Par:            par,
			Seconds:        secs,
			SimCycles:      cycles,
			CyclesPerSec:   float64(cycles) / secs,
			SpeedupVsPar1:  baseSecs / secs,
			Oversubscribed: par > runtime.GOMAXPROCS(0),
		})
		fmt.Fprintf(os.Stderr, "# benchscaling par=%d: %.3fs, %d cycles\n", par, secs, cycles)
	}
	if len(rec.Points) == 0 {
		return fmt.Errorf("-benchscaling: every -benchpars point exceeds GOMAXPROCS(0)=%d; pass -allowoversub to measure them anyway", runtime.GOMAXPROCS(0))
	}
	return writeBenchJSON(rec)
}

type checkpointRecord struct {
	benchMeta
	Configs      int     `json:"configs"` // sweep points sharing the workload
	ColdSeconds  float64 `json:"cold_seconds"`
	WarmSeconds  float64 `json:"warm_seconds"`
	Speedup      float64 `json:"speedup"`
	WarmBuilds   int     `json:"warm_builds"`   // cold builds the pool still had to do (first acquisition)
	WarmRestores int     `json:"warm_restores"` // acquisitions served by snapshot restore
}

// sweepConfigs derives n hardware points that share the workload build
// (PageShift untouched) while varying the MMU design point — the shape of
// the paper's figure sweeps. Entries double per point from 16 and the
// augmented features toggle, so no two points dedupe to one key.
func sweepConfigs(base config.Hardware, n int) []config.Hardware {
	out := make([]config.Hardware, 0, n)
	for i := 0; i < n; i++ {
		c := base
		c.MMU = config.AugmentedMMU()
		c.MMU.Entries = 16 << (i % 6)
		c.MMU.CacheOverlap = i%2 == 0
		c.MMU.PTWSched = i%3 != 0
		out = append(out, c)
	}
	return out
}

// runBenchCheckpoint measures a multi-config sweep sharing one workload
// twice — cold (every run rebuilds the workload from scratch) and warm
// (runs restore from one checkpoint via snapshot.Pool) — verifies the two
// phases simulate identical cycle counts per config, and emits the delta
// as JSON. This is the record the >= 1.3x acceptance gate reads.
func runBenchCheckpoint(cfg config.Hardware, name, sizeName string, sz workloads.Size, seed uint64, nConfigs int, label string) error {
	cfgs := sweepConfigs(cfg, nConfigs)

	runOne := func(c config.Hardware, w *workloads.Workload) (uint64, error) {
		st := &stats.Sim{}
		g, err := gpu.New(c, w.AS, st)
		if err != nil {
			return 0, err
		}
		cycles, err := g.Run(w.Launch)
		if err != nil {
			return 0, err
		}
		if w.Check != nil {
			if err := w.Check(); err != nil {
				return 0, fmt.Errorf("functional check: %w", err)
			}
		}
		return cycles, nil
	}

	coldCycles := make([]uint64, len(cfgs))
	coldStart := time.Now()
	for i, c := range cfgs {
		w, err := workloads.Build(name, sz, c.PageShift, seed)
		if err != nil {
			return err
		}
		if coldCycles[i], err = runOne(c, w); err != nil {
			return fmt.Errorf("cold config %d: %w", i, err)
		}
	}
	coldSecs := time.Since(coldStart).Seconds()

	pool := snapshot.NewPool()
	warmStart := time.Now()
	for i, c := range cfgs {
		w, release, err := pool.Acquire(name, sz, c.PageShift, seed)
		if err != nil {
			return err
		}
		cycles, err := runOne(c, w)
		release()
		if err != nil {
			return fmt.Errorf("warm config %d: %w", i, err)
		}
		if cycles != coldCycles[i] {
			return fmt.Errorf("config %d: warm run simulated %d cycles, cold %d: checkpoint restore must be byte-identical", i, cycles, coldCycles[i])
		}
	}
	warmSecs := time.Since(warmStart).Seconds()

	ps := pool.Stats()
	rec := checkpointRecord{
		benchMeta:    newBenchMeta("checkpoint", name, sizeName, label),
		Configs:      len(cfgs),
		ColdSeconds:  coldSecs,
		WarmSeconds:  warmSecs,
		Speedup:      coldSecs / warmSecs,
		WarmBuilds:   ps.Builds,
		WarmRestores: ps.Restores,
	}
	fmt.Fprintf(os.Stderr, "# benchcheckpoint %d configs: cold %.3fs, warm %.3fs (%.2fx, %d builds + %d restores)\n",
		rec.Configs, coldSecs, warmSecs, rec.Speedup, ps.Builds, ps.Restores)
	return writeBenchJSON(rec)
}

// samplingWorkload is one workload's row in the sampling bench record.
type samplingWorkload struct {
	Workload       string  `json:"workload"`
	ExactSeconds   float64 `json:"exact_seconds"`
	SampledSeconds float64 `json:"sampled_seconds"`
	Speedup        float64 `json:"speedup"`
	ExactCycles    uint64  `json:"exact_cycles"`
	EstCycles      float64 `json:"est_cycles"`
	EstCyclesCI    float64 `json:"est_cycles_ci"`
	CyclesErr      float64 `json:"cycles_err"` // |est-exact|/exact
	IPCErr         float64 `json:"ipc_err"`
	MissRateErr    float64 `json:"missrate_err"`
	DetailFraction float64 `json:"detail_fraction"`
	DigestsMatch   bool    `json:"digests_identical"` // end-of-run MemDigest + PageTableDigest vs the exact run
}

type samplingRecord struct {
	benchMeta
	Plan             string             `json:"plan"` // warmup,detail,fastforward[,warm]
	Workloads        []samplingWorkload `json:"workloads"`
	AggregateSpeedup float64            `json:"aggregate_speedup"` // sum(exact)/sum(sampled) wall clock
	MaxIPCErr        float64            `json:"max_ipc_err"`
	MaxMissRateErr   float64            `json:"max_missrate_err"`
}

// runBenchSampling measures sampled-vs-exact wall clock and accuracy per
// workload on the paper's augmented MMU (the configuration the sampled
// validation story standardises on, matching experiments.SampledReport) and
// emits one JSON record. The >=5x wall-clock / <=2% IPC-and-miss-rate
// acceptance gate reads aggregate_speedup, max_ipc_err and max_missrate_err;
// digests_identical pins that fast-forward advanced architectural state
// exactly.
func runBenchSampling(cfg config.Hardware, names []string, sizeName string, sz workloads.Size, seed uint64, coreWorkers int, plan gpu.SamplePlan, label string) error {
	cfg.MMU = config.AugmentedMMU()
	rec := samplingRecord{
		benchMeta: newBenchMeta("sampling", strings.Join(names, ","), sizeName, label),
		Plan:      plan.String(),
	}
	var exactSum, sampledSum float64
	for _, name := range names {
		r, err := experiments.CompareSampled(name, sz, cfg, seed, coreWorkers, plan)
		if err != nil {
			return fmt.Errorf("-benchsampling %s: %w", name, err)
		}
		row := samplingWorkload{
			Workload:       name,
			ExactSeconds:   r.ExactWall.Seconds(),
			SampledSeconds: r.SampledWall.Seconds(),
			Speedup:        r.Speedup,
			ExactCycles:    r.ExactCycles,
			EstCycles:      r.EstCycles.Value,
			EstCyclesCI:    r.EstCycles.CI,
			CyclesErr:      r.CyclesErr,
			IPCErr:         r.IPCErr,
			MissRateErr:    r.MissErr,
			DetailFraction: r.Sampled.DetailFraction(),
			DigestsMatch:   r.DigestMatch,
		}
		rec.Workloads = append(rec.Workloads, row)
		exactSum += row.ExactSeconds
		sampledSum += row.SampledSeconds
		if row.IPCErr > rec.MaxIPCErr {
			rec.MaxIPCErr = row.IPCErr
		}
		if row.MissRateErr > rec.MaxMissRateErr {
			rec.MaxMissRateErr = row.MissRateErr
		}
		fmt.Fprintf(os.Stderr, "# benchsampling %s: exact %.3fs, sampled %.3fs (%.2fx), ipc_err %.2f%%, miss_err %.2f%%, digests %v\n",
			name, row.ExactSeconds, row.SampledSeconds, row.Speedup, 100*row.IPCErr, 100*row.MissRateErr, row.DigestsMatch)
	}
	if sampledSum > 0 {
		rec.AggregateSpeedup = exactSum / sampledSum
	}
	fmt.Fprintf(os.Stderr, "# benchsampling aggregate: %.2fx (exact %.3fs / sampled %.3fs)\n",
		rec.AggregateSpeedup, exactSum, sampledSum)
	return writeBenchJSON(rec)
}

// parseParList parses the -benchpars comma list into worker counts.
func parseParList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("%q: must be a positive integer", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func writeBenchJSON(rec interface{}) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rec)
}
