// Benchmark modes: -benchscaling records a per-worker (-par) scaling
// curve for one workload, and -benchcheckpoint records the wall-clock
// delta of checkpointed warm starts versus cold rebuilds over a
// multi-config sweep sharing one workload. Both emit a single JSON object
// on stdout, stamped with host CPU count, GOMAXPROCS, and the git SHA
// handed in via -benchlabel, so appended BENCH records are attributable
// to a machine and commit (tools/bench.sh does the appending; schemas in
// EXPERIMENTS.md).
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"gpummu/internal/config"
	"gpummu/internal/gpu"
	"gpummu/internal/snapshot"
	"gpummu/internal/stats"
	"gpummu/internal/workloads"
)

// benchMeta is the host/commit attribution common to both bench records.
type benchMeta struct {
	Kind       string `json:"kind"`
	Workload   string `json:"workload"`
	Size       string `json:"size"`
	Date       string `json:"date"`
	HostCPUs   int    `json:"host_cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GitSHA     string `json:"git_sha"`
}

func newBenchMeta(kind, workload, size, label string) benchMeta {
	if label == "" {
		label = "unknown"
	}
	return benchMeta{
		Kind:       kind,
		Workload:   workload,
		Size:       size,
		Date:       time.Now().UTC().Format(time.RFC3339),
		HostCPUs:   runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GitSHA:     label,
	}
}

// scalingPoint is one -par measurement of the scaling curve.
type scalingPoint struct {
	Par            int     `json:"par"`
	Seconds        float64 `json:"seconds"`
	SimCycles      uint64  `json:"sim_cycles"`
	CyclesPerSec   float64 `json:"cycles_per_sec"`
	SpeedupVsPar1  float64 `json:"speedup_vs_par1"`
	Oversubscribed bool    `json:"oversubscribed"` // par > GOMAXPROCS: expect a slowdown, not a speedup
}

type scalingRecord struct {
	benchMeta
	Points []scalingPoint `json:"points"`
}

// runBenchScaling measures one workload under the same configuration at
// each -par worker count and emits the curve as JSON. The workload is
// built once and checkpoint-restored between points (the restore is part
// of what this PR ships; byte-identical cycles across points double as
// the production equivalence check). Points beyond GOMAXPROCS are still
// measured — on a 1-CPU host the curve honestly records the slowdown the
// -par fail-fast otherwise prevents — but are flagged oversubscribed.
func runBenchScaling(cfg config.Hardware, name, sizeName string, sz workloads.Size, seed uint64, pars []int, label string) error {
	w, err := workloads.Build(name, sz, cfg.PageShift, seed)
	if err != nil {
		return err
	}
	img := snapshot.Capture(w.AS)

	rec := scalingRecord{benchMeta: newBenchMeta("scaling", name, sizeName, label)}
	var baseCycles uint64
	var baseSecs float64
	for i, par := range pars {
		img.Restore(w.AS)
		st := &stats.Sim{}
		g, err := gpu.New(cfg, w.AS, st)
		if err != nil {
			return err
		}
		g.Workers = par
		start := time.Now()
		cycles, err := g.Run(w.Launch)
		secs := time.Since(start).Seconds()
		if err != nil {
			return fmt.Errorf("par=%d: %w", par, err)
		}
		if w.Check != nil {
			if err := w.Check(); err != nil {
				return fmt.Errorf("par=%d: functional check: %w", par, err)
			}
		}
		if i == 0 {
			baseCycles, baseSecs = cycles, secs
		} else if cycles != baseCycles {
			return fmt.Errorf("par=%d simulated %d cycles, par=%d simulated %d: parallel ticking must be byte-identical", par, cycles, pars[0], baseCycles)
		}
		rec.Points = append(rec.Points, scalingPoint{
			Par:            par,
			Seconds:        secs,
			SimCycles:      cycles,
			CyclesPerSec:   float64(cycles) / secs,
			SpeedupVsPar1:  baseSecs / secs,
			Oversubscribed: par > runtime.GOMAXPROCS(0),
		})
		fmt.Fprintf(os.Stderr, "# benchscaling par=%d: %.3fs, %d cycles\n", par, secs, cycles)
	}
	return writeBenchJSON(rec)
}

type checkpointRecord struct {
	benchMeta
	Configs      int     `json:"configs"` // sweep points sharing the workload
	ColdSeconds  float64 `json:"cold_seconds"`
	WarmSeconds  float64 `json:"warm_seconds"`
	Speedup      float64 `json:"speedup"`
	WarmBuilds   int     `json:"warm_builds"`   // cold builds the pool still had to do (first acquisition)
	WarmRestores int     `json:"warm_restores"` // acquisitions served by snapshot restore
}

// sweepConfigs derives n hardware points that share the workload build
// (PageShift untouched) while varying the MMU design point — the shape of
// the paper's figure sweeps. Entries double per point from 16 and the
// augmented features toggle, so no two points dedupe to one key.
func sweepConfigs(base config.Hardware, n int) []config.Hardware {
	out := make([]config.Hardware, 0, n)
	for i := 0; i < n; i++ {
		c := base
		c.MMU = config.AugmentedMMU()
		c.MMU.Entries = 16 << (i % 6)
		c.MMU.CacheOverlap = i%2 == 0
		c.MMU.PTWSched = i%3 != 0
		out = append(out, c)
	}
	return out
}

// runBenchCheckpoint measures a multi-config sweep sharing one workload
// twice — cold (every run rebuilds the workload from scratch) and warm
// (runs restore from one checkpoint via snapshot.Pool) — verifies the two
// phases simulate identical cycle counts per config, and emits the delta
// as JSON. This is the record the >= 1.3x acceptance gate reads.
func runBenchCheckpoint(cfg config.Hardware, name, sizeName string, sz workloads.Size, seed uint64, nConfigs int, label string) error {
	cfgs := sweepConfigs(cfg, nConfigs)

	runOne := func(c config.Hardware, w *workloads.Workload) (uint64, error) {
		st := &stats.Sim{}
		g, err := gpu.New(c, w.AS, st)
		if err != nil {
			return 0, err
		}
		cycles, err := g.Run(w.Launch)
		if err != nil {
			return 0, err
		}
		if w.Check != nil {
			if err := w.Check(); err != nil {
				return 0, fmt.Errorf("functional check: %w", err)
			}
		}
		return cycles, nil
	}

	coldCycles := make([]uint64, len(cfgs))
	coldStart := time.Now()
	for i, c := range cfgs {
		w, err := workloads.Build(name, sz, c.PageShift, seed)
		if err != nil {
			return err
		}
		if coldCycles[i], err = runOne(c, w); err != nil {
			return fmt.Errorf("cold config %d: %w", i, err)
		}
	}
	coldSecs := time.Since(coldStart).Seconds()

	pool := snapshot.NewPool()
	warmStart := time.Now()
	for i, c := range cfgs {
		w, release, err := pool.Acquire(name, sz, c.PageShift, seed)
		if err != nil {
			return err
		}
		cycles, err := runOne(c, w)
		release()
		if err != nil {
			return fmt.Errorf("warm config %d: %w", i, err)
		}
		if cycles != coldCycles[i] {
			return fmt.Errorf("config %d: warm run simulated %d cycles, cold %d: checkpoint restore must be byte-identical", i, cycles, coldCycles[i])
		}
	}
	warmSecs := time.Since(warmStart).Seconds()

	ps := pool.Stats()
	rec := checkpointRecord{
		benchMeta:    newBenchMeta("checkpoint", name, sizeName, label),
		Configs:      len(cfgs),
		ColdSeconds:  coldSecs,
		WarmSeconds:  warmSecs,
		Speedup:      coldSecs / warmSecs,
		WarmBuilds:   ps.Builds,
		WarmRestores: ps.Restores,
	}
	fmt.Fprintf(os.Stderr, "# benchcheckpoint %d configs: cold %.3fs, warm %.3fs (%.2fx, %d builds + %d restores)\n",
		rec.Configs, coldSecs, warmSecs, rec.Speedup, ps.Builds, ps.Restores)
	return writeBenchJSON(rec)
}

// parseParList parses the -benchpars comma list into worker counts.
func parseParList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("%q: must be a positive integer", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func writeBenchJSON(rec interface{}) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rec)
}
