// Command gpusim runs one workload under one MMU/scheduler configuration
// and prints the full statistics — the quickest way to poke at the design
// space.
//
// Usage:
//
//	gpusim -workload bfs -size small -mmu augmented
//	gpusim -workload mummergpu -mmu naive -ports 3 -sched ccws
//	gpusim -workload memcached -mmu ideal -tbc tlb-aware -pages 2m
package main

import (
	"flag"
	"fmt"
	"os"

	"gpummu/internal/config"
	"gpummu/internal/gpu"
	"gpummu/internal/stats"
	"gpummu/internal/workloads"

	"encoding/json"
)

func main() {
	var (
		workload = flag.String("workload", "bfs", "workload name (see -list)")
		size     = flag.String("size", "small", "tiny|small|medium|large")
		seed     = flag.Uint64("seed", 1, "workload seed")
		mmu      = flag.String("mmu", "none", "none|naive|nonblocking|augmented|ideal")
		ports    = flag.Int("ports", 4, "TLB ports (naive/nonblocking/augmented)")
		entries  = flag.Int("entries", 128, "TLB entries")
		ptws     = flag.Int("ptws", 1, "hardware page table walkers per core")
		sched    = flag.String("sched", "lrr", "lrr|gto|ccws|ta-ccws|tcws")
		tbc      = flag.String("tbc", "off", "off|tbc|tlb-aware")
		pages    = flag.String("pages", "4k", "4k|2m")
		shared   = flag.Int("sharedtlb", 0, "shared L2 TLB entries (0 = off; extension)")
		software = flag.Bool("software-walks", false, "service misses with OS handlers (extension)")
		pwc      = flag.Int("pwc", 0, "page walk cache entries per core (0 = off; extension)")
		cores    = flag.Int("cores", 0, "override core count (0 = 30)")
		list     = flag.Bool("list", false, "list workloads and exit")
		asJSON   = flag.Bool("json", false, "emit statistics as JSON")
		trace    = flag.Int("trace", 0, "dump the last N simulation events to stderr")
	)
	flag.Parse()

	if *list {
		for _, n := range workloads.Names() {
			fmt.Println(n)
		}
		return
	}

	cfg := config.Baseline()
	if *cores > 0 {
		cfg.NumCores = *cores
	}

	switch *mmu {
	case "none":
	case "naive":
		cfg.MMU = config.NaiveMMU(*ports)
	case "nonblocking":
		cfg.MMU = config.NaiveMMU(*ports)
		cfg.MMU.HitsUnderMiss = true
		cfg.MMU.CacheOverlap = true
	case "augmented":
		cfg.MMU = config.AugmentedMMU()
		cfg.MMU.Ports = *ports
	case "ideal":
		cfg.MMU = config.MMU{}.Ideal()
	default:
		fatal("unknown -mmu %q", *mmu)
	}
	if cfg.MMU.Enabled {
		cfg.MMU.Entries = *entries
		cfg.MMU.NumPTWs = *ptws
		cfg.MMU.SharedTLBEntries = *shared
		cfg.MMU.PWCEntries = *pwc
		if *software {
			cfg.MMU.SoftwareWalks = true
			cfg.MMU.SoftwareWalkOverhead = 300
		}
	}

	switch *sched {
	case "lrr":
	case "gto":
		cfg.Sched.Policy = config.SchedGTO
	case "ccws":
		cfg.Sched.Policy = config.SchedCCWS
	case "ta-ccws":
		cfg.Sched.Policy = config.SchedTACCWS
		cfg.Sched.TLBMissWeight = 4
	case "tcws":
		cfg.Sched.Policy = config.SchedTCWS
		cfg.Sched.TLBMissWeight = 4
		cfg.Sched.VTAEntriesPerWarp = 8
		cfg.Sched.LRUDepthWeights = []int{1, 2, 4, 8}
	default:
		fatal("unknown -sched %q", *sched)
	}

	switch *tbc {
	case "off":
	case "tbc":
		cfg.TBC.Mode = config.DivTBC
	case "tlb-aware":
		cfg.TBC.Mode = config.DivTLBTBC
	default:
		fatal("unknown -tbc %q", *tbc)
	}

	if *pages == "2m" {
		cfg.PageShift = 21
	}

	var sz workloads.Size
	switch *size {
	case "tiny":
		sz = workloads.SizeTiny
	case "small":
		sz = workloads.SizeSmall
	case "medium":
		sz = workloads.SizeMedium
	case "large":
		sz = workloads.SizeLarge
	default:
		fatal("unknown -size %q", *size)
	}

	w, err := workloads.Build(*workload, sz, cfg.PageShift, *seed)
	if err != nil {
		fatal("%v", err)
	}
	st := &stats.Sim{}
	g, err := gpu.New(cfg, w.AS, st)
	if err != nil {
		fatal("%v", err)
	}
	var ring *gpu.RingTracer
	if *trace > 0 {
		ring = gpu.NewRingTracer(*trace)
		g.SetTracer(ring)
	}
	cycles, err := g.Run(w.Launch)
	if err != nil {
		fatal("%v", err)
	}
	if w.Check != nil {
		if err := w.Check(); err != nil {
			fatal("functional check: %v", err)
		}
	}
	if *asJSON {
		out := map[string]interface{}{
			"workload":      *workload,
			"size":          *size,
			"cycles":        cycles,
			"instructions":  st.Instructions.Value(),
			"memFraction":   st.MemFraction(),
			"idleFraction":  st.IdleFraction(),
			"tlbAccesses":   st.TLBAccesses.Value(),
			"tlbMissRate":   st.TLBMissRate(),
			"tlbMissLat":    st.TLBMissLat.Mean(),
			"l1MissRate":    st.L1MissRate(),
			"l1MissLat":     st.L1MissLat.Mean(),
			"l2MissRate":    st.L2MissRate(),
			"pageDivAvg":    st.PageDivergence.Mean(),
			"pageDivMax":    st.PageDivergence.Max(),
			"walks":         st.Walks.Value(),
			"walkRefs":      st.WalkRefs.Value(),
			"walkRefsElim":  st.WalkRefsEliminated(),
			"pwcHits":       st.PWCHits.Value(),
			"sharedTLBHits": st.SharedTLBHits.Value(),
			"compacted":     st.CompactedWarps.Value(),
			"simdUtil":      st.SIMDUtilisation(cfg.WarpWidth),
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal("%v", err)
		}
		return
	}
	fmt.Println("functional check: ok")
	inv := w.AS.PT.Inventory()
	fmt.Printf("workload=%s size=%s cycles=%d\n", *workload, *size, cycles)
	fmt.Printf("vm: mapped=%dMB pagetables=%dKB (%d pages) simd-util=%.1f%%\n",
		inv.MappedBytes()>>20, inv.TableBytes()>>10, inv.TotalTablePages(),
		100*st.SIMDUtilisation(cfg.WarpWidth))
	fmt.Print(st.String())
	fmt.Printf("l1: hits=%d misses=%d (%.1f%%)  l2: hits=%d misses=%d (%.1f%%)\n",
		st.L1Hits, st.L1Misses, 100*st.L1MissRate(), st.L2Hits, st.L2Misses, 100*st.L2MissRate())
	if cfg.MMU.Enabled {
		fmt.Printf("tlb: hits=%d misses=%d hitsundermiss=%d walklat=%.0f\n",
			st.TLBHits, st.TLBMisses, st.TLBHitUnder, st.WalkLat.Mean())
		if st.SharedTLBAccesses > 0 {
			fmt.Printf("shared-tlb: acc=%d hits=%d misses=%d\n",
				st.SharedTLBAccesses, st.SharedTLBHits, st.SharedTLBMisses)
		}
	}
	if cfg.TBC.Mode != config.DivStack {
		fmt.Printf("tbc: compacted=%d cpm-rejects=%d\n", st.CompactedWarps, st.CPMRejects)
	}
	if ring != nil {
		fmt.Fprintf(os.Stderr, "--- last %d of %d events ---\n", len(ring.Events()), ring.Total())
		if err := ring.Dump(os.Stderr); err != nil {
			fatal("%v", err)
		}
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "gpusim: "+format+"\n", args...)
	os.Exit(1)
}
