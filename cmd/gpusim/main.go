// Command gpusim runs workloads under one MMU/scheduler configuration and
// prints the full statistics — the quickest way to poke at the design
// space.
//
// Usage:
//
//	gpusim -workload bfs -size small -mmu augmented
//	gpusim -workload mummergpu -mmu naive -ports 3 -sched ccws
//	gpusim -workload memcached -mmu ideal -tbc tlb-aware -pages 2m
//	gpusim -workload all -j 8 -mmu augmented   # every workload, in parallel
//	gpusim -workload bfs,kmeans -json          # machine-readable array
//	gpusim -campaign replay.yaml               # machine + workloads from a file
//
// -campaign takes the machine, workload set, and run options from a
// campaign file (see DESIGN.md section 13); explicitly-set flags override
// it (flags > campaign > defaults). Campaigns that declare sweep axes or
// figures belong to cmd/experiments — gpusim runs only the workload set.
//
// -workload accepts a single name, a comma-separated list, or "all"; with
// more than one workload the simulations run on -j parallel goroutines
// (each with its own address space and GPU) and the reports print in
// workload order, so the output is identical for any -j.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"gpummu/internal/campaign"
	"gpummu/internal/config"
	"gpummu/internal/gpu"
	"gpummu/internal/obs"
	"gpummu/internal/service"
	"gpummu/internal/stats"
	"gpummu/internal/workloads"

	"encoding/json"
)

func main() {
	// Server verbs (submit/status/results/compare/recommend) dispatch
	// before classic flag parsing: `gpusim submit ...` talks to gpusimd,
	// plain `gpusim -workload ...` simulates locally as always.
	if runClientVerb() {
		return
	}
	var (
		workload = flag.String("workload", "bfs", "workload name, comma list, or 'all' (see -list)")
		size     = flag.String("size", "small", "tiny|small|medium|large")
		seed     = flag.Uint64("seed", 1, "workload seed")
		mmu      = flag.String("mmu", "none", "none|naive|nonblocking|augmented|ideal")
		ports    = flag.Int("ports", 4, "TLB ports (naive/nonblocking/augmented)")
		entries  = flag.Int("entries", 128, "TLB entries")
		ptws     = flag.Int("ptws", 1, "hardware page table walkers per core")
		sched    = flag.String("sched", "lrr", "lrr|gto|ccws|ta-ccws|tcws")
		tbc      = flag.String("tbc", "off", "off|tbc|tlb-aware")
		pages    = flag.String("pages", "4k", "4k|2m")
		shared   = flag.Int("sharedtlb", 0, "shared L2 TLB entries (0 = off; extension)")
		software = flag.Bool("software-walks", false, "service misses with OS handlers (extension)")
		pwc      = flag.Int("pwc", 0, "page walk cache entries per core (0 = off; extension)")
		cores    = flag.Int("cores", 0, "override core count (0 = 30)")
		workers  = flag.Int("j", runtime.GOMAXPROCS(0), "parallel workers when running several workloads")
		par      = flag.Int("par", 1, "goroutines ticking cores inside one simulation (output is identical for any value)")
		benchSc  = flag.Bool("benchscaling", false, "measure the -par scaling curve for one workload; emits a JSON record on stdout")
		benchCk  = flag.Int("benchcheckpoint", 0, "measure checkpoint warm-start vs cold rebuild over N sweep configs sharing one workload; emits a JSON record on stdout")
		benchSmp = flag.Bool("benchsampling", false, "measure sampled-vs-exact wall clock and accuracy per workload on the augmented MMU; emits a JSON record on stdout")
		benchPar = flag.String("benchpars", "1,2,4,8", "comma list of -par points measured by -benchscaling")
		oversub  = flag.Bool("allowoversub", false, "let -benchscaling measure -par points beyond GOMAXPROCS instead of skipping them")
		benchLbl = flag.String("benchlabel", "", "commit label stamped into bench records (tools/bench.sh passes the git SHA)")
		plan     = flag.String("sampleplan", "", "interval sampling plan warmup,detail,fastforward[,warm] in cycles; empty = exact runs")
		list     = flag.Bool("list", false, "list workloads and exit")
		asJSON   = flag.Bool("json", false, "emit statistics as JSON")
		events   = flag.Int("events", 0, "dump the last N simulation events to stderr (single workload only)")
		trace    = flag.String("trace", "", "write a Chrome trace-event JSON file, loadable in Perfetto (single workload only)")
		sample   = flag.Uint64("sample", 0, "record a time-series sample every N cycles (single workload only)")
		sampleTo = flag.String("samplefile", "", "CSV destination for -sample (default <workload>.samples.csv)")
		metrics  = flag.String("metrics", "", "write the labelled metrics registry to this file; '-' means stderr (single workload only)")
		watchdog = flag.Uint64("watchdog", 0, "abort when no thread block retires for N cycles (0 = off)")
		maxCyc   = flag.Uint64("maxcycles", 0, "abort after N simulated cycles (0 = unbounded)")
		deadline = flag.Duration("deadline", 0, "wall-clock budget for the run, e.g. 30s (0 = none)")
		progress = flag.Bool("v", false, "log per-run completion to stderr")
		campFile = flag.String("campaign", "", "campaign file (YAML or JSON); explicitly-set flags override it")
		validate = flag.Bool("validate", false, "validate -campaign, print its canonical form, and exit")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	// isSet records which flags the command line touched: an explicitly-set
	// flag beats the campaign, an untouched one defers to it.
	isSet := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { isSet[f.Name] = true })

	stopProfiles := startProfiles(*cpuProf, *memProf)
	defer stopProfiles()

	if *list {
		for _, n := range workloads.Names() {
			fmt.Println(n)
		}
		return
	}

	var camp *campaign.Campaign
	if *campFile != "" {
		c, err := campaign.Load(*campFile)
		if err != nil {
			fatal("%v", err)
		}
		camp = c
	}
	// -validate checks and canonicalises any campaign — including sweep
	// campaigns gpusim itself won't run — matching cmd/experiments.
	if *validate {
		if camp == nil {
			fatal("-validate requires -campaign")
		}
		os.Stdout.Write(camp.Emit())
		return
	}
	if camp != nil && len(camp.Sweep.Axes) > 0 {
		fatal("campaign %q declares sweep axes; run it with cmd/experiments", camp.Name)
	}

	var cfg config.Hardware
	if camp != nil {
		c, err := camp.MachineConfig()
		if err != nil {
			fatal("%v", err)
		}
		cfg = c
	} else {
		cfg = config.Baseline()
	}
	if *cores > 0 {
		cfg.NumCores = *cores
	}

	// Without a campaign the -mmu/-sched/-tbc/-pages blocks apply as they
	// always have (flag defaults included). With one, the campaign machine
	// is authoritative and only explicitly-set flags override it.
	if camp == nil || isSet["mmu"] {
		switch *mmu {
		case "none":
			if isSet["mmu"] {
				cfg.MMU = config.MMU{Enabled: false}
			}
		case "naive":
			cfg.MMU = config.NaiveMMU(*ports)
		case "nonblocking":
			cfg.MMU = config.NaiveMMU(*ports)
			cfg.MMU.HitsUnderMiss = true
			cfg.MMU.CacheOverlap = true
		case "augmented":
			cfg.MMU = config.AugmentedMMU()
			cfg.MMU.Ports = *ports
		case "ideal":
			cfg.MMU = config.MMU{}.Ideal()
		default:
			fatal("unknown -mmu %q", *mmu)
		}
		if cfg.MMU.Enabled {
			cfg.MMU.Entries = *entries
			cfg.MMU.NumPTWs = *ptws
			cfg.MMU.SharedTLBEntries = *shared
			cfg.MMU.PWCEntries = *pwc
			if *software {
				cfg.MMU.SoftwareWalks = true
				cfg.MMU.SoftwareWalkOverhead = 300
			}
		}
	} else if cfg.MMU.Enabled {
		if isSet["entries"] {
			cfg.MMU.Entries = *entries
		}
		if isSet["ports"] {
			cfg.MMU.Ports = *ports
		}
		if isSet["ptws"] {
			cfg.MMU.NumPTWs = *ptws
		}
		if isSet["sharedtlb"] {
			cfg.MMU.SharedTLBEntries = *shared
		}
		if isSet["pwc"] {
			cfg.MMU.PWCEntries = *pwc
		}
		if isSet["software-walks"] && *software {
			cfg.MMU.SoftwareWalks = true
			cfg.MMU.SoftwareWalkOverhead = 300
		}
	}

	if camp == nil || isSet["sched"] {
		switch *sched {
		case "lrr":
			if isSet["sched"] {
				cfg.Sched.Policy = config.SchedLRR
			}
		case "gto":
			cfg.Sched.Policy = config.SchedGTO
		case "ccws":
			cfg.Sched.Policy = config.SchedCCWS
		case "ta-ccws":
			cfg.Sched.Policy = config.SchedTACCWS
			cfg.Sched.TLBMissWeight = 4
		case "tcws":
			cfg.Sched.Policy = config.SchedTCWS
			cfg.Sched.TLBMissWeight = 4
			cfg.Sched.VTAEntriesPerWarp = 8
			cfg.Sched.LRUDepthWeights = []int{1, 2, 4, 8}
		default:
			fatal("unknown -sched %q", *sched)
		}
	}

	if camp == nil || isSet["tbc"] {
		switch *tbc {
		case "off":
			if isSet["tbc"] {
				cfg.TBC.Mode = config.DivStack
			}
		case "tbc":
			cfg.TBC.Mode = config.DivTBC
		case "tlb-aware":
			cfg.TBC.Mode = config.DivTLBTBC
		default:
			fatal("unknown -tbc %q", *tbc)
		}
	}

	if camp == nil || isSet["pages"] {
		switch *pages {
		case "4k":
			if isSet["pages"] {
				cfg.PageShift = 12
			}
		case "2m":
			cfg.PageShift = 21
		default:
			fatal("unknown -pages %q", *pages)
		}
	}

	if camp != nil && !isSet["size"] {
		*size = camp.Workloads.Size
	}
	sz, err := workloads.ParseSize(*size)
	if err != nil {
		fatal("-size: %v", err)
	}
	if camp != nil && !isSet["seed"] {
		*seed = camp.Workloads.Seed
	}
	if camp != nil && !isSet["par"] {
		*par = camp.Run.Par
	}
	samplePlan := gpu.SamplePlan{}
	if camp != nil && !isSet["sampleplan"] {
		samplePlan = camp.Run.Sampling
	} else if *plan != "" {
		p, err := gpu.ParseSamplePlan(*plan)
		if err != nil {
			fatal("-sampleplan: %v", err)
		}
		samplePlan = p
	}
	// Extra -par workers beyond GOMAXPROCS cannot run in parallel, and the
	// two-phase barriers make the run strictly slower, so reject the silent
	// slowdown up front. -benchscaling is exempt: measuring the oversubscribed
	// points (with -allowoversub, flagged in the record) is the point of the
	// mode.
	benchMode := *benchSc || *benchCk > 0 || *benchSmp
	if maxp := runtime.GOMAXPROCS(0); !benchMode && *par > maxp {
		fatal("-par %d exceeds GOMAXPROCS(0)=%d: extra core-ticking workers cannot run in parallel and the phase barriers make the run slower, not faster (README %q); use -par <= %d or raise GOMAXPROCS", *par, maxp, "Parallel core ticking", maxp)
	}
	if camp != nil && !isSet["j"] && camp.Run.Workers > 0 {
		*workers = camp.Run.Workers
	}
	if camp != nil && !isSet["watchdog"] {
		*watchdog = camp.Obs.Watchdog
	}
	if camp != nil && !isSet["maxcycles"] {
		*maxCyc = camp.Obs.MaxCycles
	}
	if camp != nil && !isSet["deadline"] {
		*deadline = camp.Obs.Deadline
	}

	var names []string
	if camp != nil && !isSet["workload"] {
		names = camp.Workloads.Names
	} else if *workload == "all" {
		names = workloads.Names()
	} else {
		for _, n := range strings.Split(*workload, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	if len(names) == 0 {
		fatal("no workloads given")
	}
	// Fail fast on names the registry (or the trace resolver) rejects,
	// listing what would have worked.
	for _, n := range names {
		if err := workloads.Resolve(n); err != nil {
			fatal("%v", err)
		}
	}
	if len(names) > 1 {
		for _, f := range []struct {
			name string
			on   bool
		}{
			{"-events", *events > 0}, {"-trace", *trace != ""},
			{"-sample", *sample > 0}, {"-metrics", *metrics != ""},
		} {
			if f.on {
				fatal("%s needs a single workload", f.name)
			}
		}
	}
	if *events > 0 && *trace != "" {
		fatal("-events and -trace both claim the tracer; choose one")
	}

	if benchMode {
		modes := 0
		for _, on := range []bool{*benchSc, *benchCk > 0, *benchSmp} {
			if on {
				modes++
			}
		}
		if modes > 1 {
			fatal("-benchscaling, -benchcheckpoint and -benchsampling are separate modes; choose one")
		}
		if !*benchSmp && len(names) != 1 {
			fatal("bench modes need a single workload (got %d)", len(names))
		}
		var err error
		switch {
		case *benchSc:
			pars, perr := parseParList(*benchPar)
			if perr != nil {
				fatal("-benchpars: %v", perr)
			}
			err = runBenchScaling(cfg, names[0], *size, sz, *seed, pars, *oversub, *benchLbl)
		case *benchSmp:
			if !samplePlan.Enabled() {
				// The validated default: windows long enough that the TLBs
				// re-warm organically inside each warmup (DESIGN.md §15).
				samplePlan = gpu.SamplePlan{Warmup: 20000, Detail: 20000, FastForward: 1000000}
			}
			err = runBenchSampling(cfg, names, *size, sz, *seed, *par, samplePlan, *benchLbl)
		default:
			err = runBenchCheckpoint(cfg, names[0], *size, sz, *seed, *benchCk, *benchLbl)
		}
		if err != nil {
			fatal("%v", err)
		}
		return
	}

	// The deadline covers the whole command, so anchor it before fan-out.
	var deadlineAt time.Time
	if *deadline > 0 {
		deadlineAt = time.Now().Add(*deadline)
	}

	type outcome struct {
		text string // rendered report (or JSON object)
		err  error
	}
	results := make([]outcome, len(names))

	run := func(i int) outcome {
		name := names[i]
		start := time.Now()
		w, err := workloads.Build(name, sz, cfg.PageShift, *seed)
		if err != nil {
			return outcome{err: err}
		}
		st := &stats.Sim{}
		g, err := gpu.New(cfg, w.AS, st)
		if err != nil {
			return outcome{err: err}
		}
		g.Workers = *par
		g.WatchdogWindow = *watchdog
		g.MaxCycles = *maxCyc
		g.Deadline = deadlineAt
		var ring *gpu.RingTracer
		if *events > 0 {
			ring = gpu.NewRingTracer(*events)
			g.SetTracer(ring)
		}
		var ct *gpu.ChromeTracer
		var traceFile *os.File
		if *trace != "" {
			f, err := os.Create(*trace)
			if err != nil {
				return outcome{err: fmt.Errorf("-trace: %w", err)}
			}
			traceFile = f
			ct = gpu.NewChromeTracer(f, cfg.NumCores)
			g.SetTracer(ct)
		}
		if *sample > 0 {
			g.Sampler = obs.NewSampler(*sample, 0)
		}
		if *metrics != "" {
			g.Metrics = obs.NewRegistry()
		}
		var cycles uint64
		var smp *stats.Sampled
		if samplePlan.Enabled() {
			cycles, smp, err = g.RunSampled(w.Launch, samplePlan)
		} else {
			cycles, err = g.Run(w.Launch)
		}
		if ct != nil {
			// Close the trace document even on abort: a partial but
			// well-formed trace is exactly what livelock debugging needs.
			if cerr := ct.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("-trace: %w", cerr)
			}
			if cerr := traceFile.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("-trace: %w", cerr)
			}
		}
		if err != nil {
			return outcome{err: fmt.Errorf("%s: %w", name, err)}
		}
		if g.Sampler != nil {
			dst := *sampleTo
			if dst == "" {
				dst = name + ".samples.csv"
			}
			if err := writeSamples(g.Sampler, dst); err != nil {
				return outcome{err: err}
			}
		}
		if g.Metrics != nil {
			if err := writeMetrics(g.Metrics, *metrics); err != nil {
				return outcome{err: err}
			}
		}
		if w.Check != nil {
			if err := w.Check(); err != nil {
				return outcome{err: fmt.Errorf("%s: functional check: %w", name, err)}
			}
		}
		if *progress {
			fmt.Fprintf(os.Stderr, "# ran %s in %v: %d cycles\n",
				name, time.Since(start).Round(time.Millisecond), cycles)
		}
		var b strings.Builder
		if *asJSON {
			if err := writeJSON(&b, name, sz, *seed, cfg, samplePlan, cycles, st, smp, time.Since(start)); err != nil {
				return outcome{err: err}
			}
		} else {
			writeText(&b, name, *size, cycles, st, cfg, w, smp)
		}
		if ring != nil {
			fmt.Fprintf(os.Stderr, "--- last %d of %d events ---\n", len(ring.Events()), ring.Total())
			if err := ring.Dump(os.Stderr); err != nil {
				return outcome{err: err}
			}
		}
		return outcome{text: b.String()}
	}

	// Fan the runs across -j workers; each builds its own workload and GPU
	// so nothing is shared. Reports print in workload order afterwards.
	nw := *workers
	if nw < 1 {
		nw = 1
	}
	if nw > len(names) {
		nw = len(names)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < nw; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = run(i)
			}
		}()
	}
	for i := range names {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	failed := false
	if *asJSON && len(names) > 1 {
		fmt.Println("[")
	}
	for i, res := range results {
		if res.err != nil {
			fmt.Fprintf(os.Stderr, "gpusim: %v\n", res.err)
			failed = true
			continue
		}
		text := res.text
		if *asJSON && len(names) > 1 {
			text = strings.TrimRight(text, "\n")
			if i < len(results)-1 {
				text += ","
			}
		}
		fmt.Println(strings.TrimRight(text, "\n"))
	}
	if *asJSON && len(names) > 1 {
		fmt.Println("]")
	}
	if failed {
		stopProfiles()
		os.Exit(1)
	}
}

// startProfiles starts the requested pprof collection and returns an
// idempotent stop function that flushes the profiles. Call it both on the
// normal return path (via defer) and before any explicit os.Exit.
func startProfiles(cpu, heap string) func() {
	var cpuFile *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			fatal("-cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal("-cpuprofile: %v", err)
		}
		cpuFile = f
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if heap != "" {
			f, err := os.Create(heap)
			if err != nil {
				fatal("-memprofile: %v", err)
			}
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal("-memprofile: %v", err)
			}
			f.Close()
		}
	}
}

// writeSamples persists the run's cycle-sampled time series as CSV.
func writeSamples(smp *obs.Sampler, dst string) error {
	f, err := os.Create(dst)
	if err != nil {
		return fmt.Errorf("-sample: %w", err)
	}
	if err := smp.WriteCSV(f); err != nil {
		f.Close()
		return fmt.Errorf("-sample: %w", err)
	}
	return f.Close()
}

// writeMetrics dumps the labelled metrics registry; dst "-" means stderr.
func writeMetrics(reg *obs.Registry, dst string) error {
	if dst == "-" {
		return reg.WriteText(os.Stderr)
	}
	f, err := os.Create(dst)
	if err != nil {
		return fmt.Errorf("-metrics: %w", err)
	}
	if err := reg.WriteText(f); err != nil {
		f.Close()
		return fmt.Errorf("-metrics: %w", err)
	}
	return f.Close()
}

// writeText renders the classic human-readable per-run report. Under a
// sample plan, cycles is the detailed cycle count and smp carries the
// extrapolated whole-run estimates appended at the end.
func writeText(out io.Writer, name, size string, cycles uint64, st *stats.Sim, cfg config.Hardware, w *workloads.Workload, smp *stats.Sampled) {
	fmt.Fprintln(out, "functional check: ok")
	inv := w.AS.PT.Inventory()
	fmt.Fprintf(out, "workload=%s size=%s cycles=%d\n", name, size, cycles)
	fmt.Fprintf(out, "vm: mapped=%dMB pagetables=%dKB (%d pages) simd-util=%.1f%%\n",
		inv.MappedBytes()>>20, inv.TableBytes()>>10, inv.TotalTablePages(),
		100*st.SIMDUtilisation(cfg.WarpWidth))
	fmt.Fprint(out, st.String())
	fmt.Fprintf(out, "l1: hits=%d misses=%d (%.1f%%)  l2: hits=%d misses=%d (%.1f%%)\n",
		st.L1Hits, st.L1Misses, 100*st.L1MissRate(), st.L2Hits, st.L2Misses, 100*st.L2MissRate())
	if cfg.MMU.Enabled {
		fmt.Fprintf(out, "tlb: hits=%d misses=%d hitsundermiss=%d walklat=%.0f\n",
			st.TLBHits, st.TLBMisses, st.TLBHitUnder, st.WalkLat.Mean())
		if st.SharedTLBAccesses > 0 {
			fmt.Fprintf(out, "shared-tlb: acc=%d hits=%d misses=%d\n",
				st.SharedTLBAccesses, st.SharedTLBHits, st.SharedTLBMisses)
		}
	}
	if cfg.TBC.Mode != config.DivStack {
		fmt.Fprintf(out, "tbc: compacted=%d cpm-rejects=%d\n", st.CompactedWarps, st.CPMRejects)
	}
	if smp != nil {
		fmt.Fprint(out, smp.Summary())
	}
}

// writeJSON renders one run as the versioned service.Result envelope —
// the same JSON object the job server stores and serves, so `gpusim
// -json` output, /v1/results responses, and durable store lines all share
// one schema ("gpummu.result/v1").
func writeJSON(out io.Writer, name string, sz workloads.Size, seed uint64, cfg config.Hardware,
	plan gpu.SamplePlan, cycles uint64, st *stats.Sim, smp *stats.Sampled, wall time.Duration) error {
	env := service.New(name, sz, seed, cfg, plan, cycles, st, smp, wall, nil)
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(env)
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "gpusim: "+format+"\n", args...)
	os.Exit(1)
}
