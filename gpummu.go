// Package gpummu reproduces Pichai, Hsu & Bhattacharjee, "Architectural
// Support for Address Translation on GPUs: Designing Memory Management
// Units for CPU/GPUs with Unified Address Spaces" (ASPLOS 2014), as a
// self-contained GPU timing simulator in pure Go.
//
// The public API wraps the internal simulator: pick a hardware
// configuration (Config), a workload (one of the paper's six, or your own
// kernel via the lower-level Launch path), run a Simulation, and read the
// Report. The MMU design space of the paper — TLB size/ports, blocking vs
// non-blocking miss handling, cache-overlapped translation, page table walk
// scheduling, CCWS/TA-CCWS/TCWS warp scheduling, and (TLB-aware) thread
// block compaction — is exposed through Config knobs.
//
// Quickstart:
//
//	cfg := gpummu.BaselineConfig()
//	cfg.MMU = gpummu.AugmentedMMU()
//	rep, err := gpummu.RunWorkload("bfs", gpummu.SizeSmall, cfg, 1)
//	fmt.Println(rep.Cycles, rep.TLBMissRate())
//
// The context-aware Run entry point adds observability on top: cycle-sampled
// time series, Chrome trace output, labelled metric breakdowns, watchdog and
// deadline guards:
//
//	rep, err := gpummu.Run(ctx,
//	    gpummu.WithConfig(cfg),
//	    gpummu.WithWorkload("bfs", gpummu.SizeSmall),
//	    gpummu.WithSampler(gpummu.NewSampler(1000, 0)),
//	    gpummu.WithTrace(traceFile),
//	    gpummu.WithWatchdog(5_000_000))
package gpummu

import (
	"context"
	"fmt"
	"io"
	"time"

	"gpummu/internal/config"
	"gpummu/internal/gpu"
	"gpummu/internal/kernels"
	"gpummu/internal/obs"
	"gpummu/internal/stats"
	"gpummu/internal/vm"
	"gpummu/internal/workloads"
)

// Config is the full machine configuration (hardware + policies).
type Config = config.Hardware

// MMUConfig configures the per-core TLB and page table walkers.
type MMUConfig = config.MMU

// SchedulerConfig configures warp scheduling and the CCWS family.
type SchedulerConfig = config.Scheduler

// TBCConfig configures thread block compaction.
type TBCConfig = config.TBC

// Size selects a workload dataset scale.
type Size = workloads.Size

// Dataset scales, re-exported from internal/workloads.
const (
	SizeTiny   = workloads.SizeTiny
	SizeSmall  = workloads.SizeSmall
	SizeMedium = workloads.SizeMedium
	SizeLarge  = workloads.SizeLarge
)

// Scheduler policies, re-exported from internal/config.
const (
	SchedLRR    = config.SchedLRR
	SchedGTO    = config.SchedGTO
	SchedCCWS   = config.SchedCCWS
	SchedTACCWS = config.SchedTACCWS
	SchedTCWS   = config.SchedTCWS
)

// Divergence handling modes, re-exported from internal/config.
const (
	DivStack  = config.DivStack
	DivTBC    = config.DivTBC
	DivTLBTBC = config.DivTLBTBC
)

// BaselineConfig returns the paper's section 5.2 machine with no TLB (the
// normalisation baseline for every figure).
func BaselineConfig() Config { return config.Baseline() }

// SmallConfig returns a scaled-down machine for tests and quick sweeps.
func SmallConfig() Config { return config.SmallTest() }

// NaiveMMU returns the strawman CPU-style MMU: 128-entry 4-way blocking
// TLB with the given port count and one serial walker per core.
func NaiveMMU(ports int) MMUConfig { return config.NaiveMMU(ports) }

// AugmentedMMU returns the paper's recommended MMU: 128-entry 4-port TLB
// with hits-under-miss, cache-overlapped translation, and PTW scheduling.
func AugmentedMMU() MMUConfig { return config.AugmentedMMU() }

// IdealMMU returns the impractical reference design: 512 entries, 32
// ports, no access-latency penalty, fully augmented.
func IdealMMU() MMUConfig { return config.MMU{}.Ideal() }

// WorkloadNames returns all registered workloads.
func WorkloadNames() []string { return workloads.Names() }

// PaperWorkloads returns the paper's six workloads in figure order.
func PaperWorkloads() []string { return workloads.PaperSet() }

// Observability types, re-exported from internal/obs so callers never
// import internal packages.
type (
	// Sampler records an interval time series into a bounded ring buffer;
	// attach one with WithSampler.
	Sampler = obs.Sampler
	// Sample is one time-series row: cumulative counters plus occupancy.
	Sample = obs.Sample
	// Registry holds hierarchically labelled metric breakdowns (per-core,
	// per-walker, per-L2-slice); attach one with WithMetrics.
	Registry = obs.Registry
	// Progress is the snapshot passed to a WithProgress callback.
	Progress = obs.Progress
	// AbortError is the typed error an aborted run returns, carrying the
	// sentinel cause, the cycle, and a diagnostic state dump.
	AbortError = obs.AbortError
)

// Typed abort causes, matched with errors.Is against a failed Run's error.
var (
	ErrLivelock  = obs.ErrLivelock  // watchdog saw no thread block retire
	ErrDeadlock  = obs.ErrDeadlock  // no core has a runnable event
	ErrMaxCycles = obs.ErrMaxCycles // cycle budget exceeded
	ErrDeadline  = obs.ErrDeadline  // wall-clock deadline passed
	ErrInvariant = obs.ErrInvariant // WithInvariants checker found corrupted state
)

// NewSampler creates a sampler recording every `every` cycles, retaining
// the most recent capacity samples (capacity <= 0 selects the default).
func NewSampler(every uint64, capacity int) *Sampler { return obs.NewSampler(every, capacity) }

// NewRegistry creates an empty metrics registry for WithMetrics.
func NewRegistry() *Registry { return obs.NewRegistry() }

// SamplePlan configures SMARTS-style interval sampling for WithSampling:
// per interval, Warmup detailed-but-unmeasured cycles, Detail measured
// cycles, and a fast-forward window worth FastForward cycles of work
// executed functionally. See internal/gpu.SamplePlan.
type SamplePlan = gpu.SamplePlan

// ParseSamplePlan parses the CLI form "warmup,detail,fastforward[,warm]".
func ParseSamplePlan(s string) (SamplePlan, error) { return gpu.ParseSamplePlan(s) }

// SampledStats holds the per-interval measurements and extrapolated totals
// of a sampled run, with 95% confidence intervals on the headline metrics.
type SampledStats = stats.Sampled

// Report is the outcome of one simulation: every statistic the paper's
// figures draw from. It embeds the raw statistics and records the
// workload/config identity.
type Report struct {
	stats.Sim
	Workload string
	Verified bool // functional check ran and passed

	// Series is the sampled time series when a WithSampler option was
	// given (nil otherwise). The final row's cumulative columns equal the
	// embedded end-of-run statistics.
	Series []Sample
	// Metrics is the labelled registry when a WithMetrics option was given
	// (nil otherwise).
	Metrics *Registry
	// Sampled holds the interval-sampling estimates when a WithSampling
	// option was given (nil otherwise). The embedded Sim statistics then
	// cover only the detailed windows; whole-run estimates with error bars
	// live here.
	Sampled *SampledStats
}

// Speedup returns this run's speedup relative to a baseline run of the
// same workload (baseline cycles / our cycles), the normalisation used by
// every figure in the paper.
func (r *Report) Speedup(baseline *Report) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(baseline.Cycles) / float64(r.Cycles)
}

// runSpec is the resolved description of one simulation, assembled by
// RunOptions and executed by runSim.
type runSpec struct {
	cfg    Config
	cfgSet bool

	workload string // build this named workload...
	size     Size
	seed     uint64
	built    *workloads.Workload // ...or run this pre-built one...
	as       *vm.AddressSpace    // ...or this custom kernel launch
	launch   *kernels.Launch

	check func() error // functional verification after the run

	workers       int
	sampling      SamplePlan
	invariants    bool
	maxCycles     uint64
	watchdog      uint64
	deadline      time.Time
	sampler       *Sampler
	traceW        io.Writer
	metrics       *Registry
	progress      func(Progress)
	progressEvery uint64
}

// RunOption configures one simulation passed to Run.
type RunOption func(*runSpec)

// WithConfig sets the machine configuration. Without it, Run uses
// BaselineConfig.
func WithConfig(cfg Config) RunOption {
	return func(s *runSpec) { s.cfg = cfg; s.cfgSet = true }
}

// WithWorkload selects one of the registered workloads at the given scale,
// built fresh for this run (with the seed from WithSeed, default 1).
func WithWorkload(name string, size Size) RunOption {
	return func(s *runSpec) { s.workload = name; s.size = size }
}

// WithSeed sets the dataset construction seed for WithWorkload.
func WithSeed(seed uint64) RunOption {
	return func(s *runSpec) { s.seed = seed }
}

// WithBuilt runs an already-constructed workload (from BuildWorkload). The
// same built workload must not be reused across runs because kernels mutate
// their data.
func WithBuilt(w *workloads.Workload) RunOption {
	return func(s *runSpec) { s.built = w }
}

// WithKernel runs a custom kernel launch over the given address space. Pair
// with WithCheck to get a Verified report.
func WithKernel(as *vm.AddressSpace, l *kernels.Launch) RunOption {
	return func(s *runSpec) { s.as = as; s.launch = l }
}

// WithCheck sets (or, for workload runs, replaces) the functional
// verification run after the kernel completes; its failure fails the run.
func WithCheck(fn func() error) RunOption {
	return func(s *runSpec) { s.check = fn }
}

// WithWorkers sets how many host goroutines tick cores (the -par knob).
// Simulation output is byte-identical for any value.
func WithWorkers(n int) RunOption {
	return func(s *runSpec) { s.workers = n }
}

// WithSampling enables SMARTS-style interval sampling under the given plan:
// the run alternates detailed timing windows with fast-forward windows that
// execute whole thread blocks functionally. Architectural state (memory,
// page tables) stays exact; timing statistics cover only the detailed
// windows, and the report's Sampled field carries whole-run estimates with
// 95% confidence intervals. Grids too small for the retire rate to be
// measured degrade to exact execution. A zero plan disables sampling.
func WithSampling(plan SamplePlan) RunOption {
	return func(s *runSpec) { s.sampling = plan }
}

// WithInvariants enables the debug-build invariant checker: the simulator
// audits SIMT-stack well-formedness, TLB-vs-page-table coherence, MSHR and
// walker bookkeeping, and L2 slice homing every ~16k cycles and at kernel
// completion. A violation aborts the run with an *AbortError matching
// ErrInvariant whose message names the broken invariant. Checking is
// moderately expensive; leave it off for performance runs (when off, the
// hot path stays allocation-free and pays only a bool test per audit
// cadence).
func WithInvariants() RunOption {
	return func(s *runSpec) { s.invariants = true }
}

// WithMaxCycles aborts the run with ErrMaxCycles past this simulated cycle
// (0 means no limit).
func WithMaxCycles(n uint64) RunOption {
	return func(s *runSpec) { s.maxCycles = n }
}

// WithWatchdog aborts the run with ErrLivelock when no thread block retires
// for the given number of cycles — the forward-progress signal a spinning
// kernel cannot fake (0 disables).
func WithWatchdog(cycles uint64) RunOption {
	return func(s *runSpec) { s.watchdog = cycles }
}

// WithDeadline aborts the run with ErrDeadline once the wall clock passes t.
func WithDeadline(t time.Time) RunOption {
	return func(s *runSpec) { s.deadline = t }
}

// WithSampler records an interval time series into smp during the run; the
// report's Series holds the retained rows.
func WithSampler(smp *Sampler) RunOption {
	return func(s *runSpec) { s.sampler = smp }
}

// WithTrace streams a Chrome trace-event JSON document (Perfetto-loadable)
// to w: per-core execution and walker tracks, plus counter tracks at every
// sampler boundary when WithSampler is also given. Tracing is the only
// observability option with a per-event cost; with it absent the hot path
// stays allocation-free.
func WithTrace(w io.Writer) RunOption {
	return func(s *runSpec) { s.traceW = w }
}

// WithMetrics collects labelled per-core/per-walker/per-L2-slice breakdowns
// into r at the end of the run; the report's Metrics points at it.
func WithMetrics(r *Registry) RunOption {
	return func(s *runSpec) { s.metrics = r }
}

// WithProgress calls fn roughly every `every` cycles (0 picks a default)
// with a cheap snapshot of the run.
func WithProgress(fn func(Progress), every uint64) RunOption {
	return func(s *runSpec) { s.progress = fn; s.progressEvery = every }
}

// Run executes one simulation described by opts under ctx and returns its
// report. Exactly one workload source must be given: WithWorkload, WithBuilt,
// or WithKernel. A cancelled context, a passed WithDeadline, a tripped
// WithWatchdog, or an exceeded WithMaxCycles aborts the run with an
// *AbortError whose cause matches the corresponding sentinel via errors.Is.
func Run(ctx context.Context, opts ...RunOption) (*Report, error) {
	spec := runSpec{seed: 1}
	for _, o := range opts {
		o(&spec)
	}
	return runSim(ctx, &spec)
}

// runSim is the single execution path behind Run and the deprecated
// wrappers: it resolves the workload source, wires the observability
// options, runs the kernel, and applies the functional check. Keeping one
// helper keeps error formatting and the Verified gate uniform (RunKernel
// historically skipped both).
func runSim(ctx context.Context, spec *runSpec) (*Report, error) {
	cfg := spec.cfg
	if !spec.cfgSet {
		cfg = BaselineConfig()
	}

	sources := 0
	for _, set := range []bool{spec.workload != "", spec.built != nil, spec.launch != nil} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return nil, fmt.Errorf("gpummu: exactly one of WithWorkload, WithBuilt, WithKernel must be given (got %d)", sources)
	}

	name := spec.workload
	as := spec.as
	launch := spec.launch
	check := spec.check
	switch {
	case spec.workload != "":
		w, err := workloads.Build(spec.workload, spec.size, cfg.PageShift, spec.seed)
		if err != nil {
			return nil, fmt.Errorf("gpummu: building %s: %w", spec.workload, err)
		}
		as, launch = w.AS, w.Launch
		if check == nil {
			check = w.Check
		}
	case spec.built != nil:
		name = spec.built.Name
		as, launch = spec.built.AS, spec.built.Launch
		if check == nil {
			check = spec.built.Check
		}
	default:
		name = launch.Program.Name
		if as == nil {
			return nil, fmt.Errorf("gpummu: WithKernel needs a non-nil address space")
		}
	}

	st := &stats.Sim{}
	g, err := gpu.New(cfg, as, st)
	if err != nil {
		return nil, fmt.Errorf("gpummu: configuring %s: %w", name, err)
	}
	g.Workers = spec.workers
	g.Invariants = spec.invariants
	g.MaxCycles = spec.maxCycles
	g.WatchdogWindow = spec.watchdog
	g.Deadline = spec.deadline
	g.Sampler = spec.sampler
	g.Metrics = spec.metrics
	g.Progress = spec.progress
	g.ProgressEvery = spec.progressEvery
	if ctx != nil && ctx != context.Background() {
		g.Ctx = ctx
	}
	var tracer *gpu.ChromeTracer
	if spec.traceW != nil {
		tracer = gpu.NewChromeTracer(spec.traceW, cfg.NumCores)
		g.SetTracer(tracer)
	}

	var smp *stats.Sampled
	var runErr error
	if spec.sampling.Enabled() {
		_, smp, runErr = g.RunSampled(launch, spec.sampling)
	} else {
		_, runErr = g.Run(launch)
	}
	if tracer != nil {
		// Close even on failure so a partial trace is still valid JSON.
		if cerr := tracer.Close(); cerr != nil && runErr == nil {
			runErr = fmt.Errorf("writing trace: %w", cerr)
		}
	}
	if runErr != nil {
		return nil, fmt.Errorf("gpummu: running %s: %w", name, runErr)
	}

	rep := &Report{Sim: *st, Workload: name, Metrics: spec.metrics, Sampled: smp}
	if spec.sampler != nil {
		rep.Series = spec.sampler.Samples()
	}
	if check != nil {
		if err := check(); err != nil {
			return nil, fmt.Errorf("gpummu: functional check for %s: %w", name, err)
		}
		rep.Verified = true
	}
	return rep, nil
}

// RunWorkload builds the named workload at the given scale and runs it on
// a machine with cfg, returning the report. The workload's functional
// check runs afterwards; a check failure is an error (the simulator must
// compute real results, not just traffic). It is a thin wrapper over Run
// with a background context and gains none of the option API's controls
// (cancellation, observability, sampling).
//
// Deprecated: use Run with WithConfig, WithWorkload, and WithSeed.
func RunWorkload(name string, size Size, cfg Config, seed uint64) (*Report, error) {
	return Run(context.Background(), WithConfig(cfg), WithWorkload(name, size), WithSeed(seed))
}

// RunBuilt runs an already-constructed workload (from BuildWorkload) on a
// machine with cfg. The same built workload must not be reused across runs
// because kernels mutate their data. It is a thin wrapper over Run with a
// background context.
//
// Deprecated: use Run with WithConfig and WithBuilt.
func RunBuilt(w *workloads.Workload, cfg Config) (*Report, error) {
	return Run(context.Background(), WithConfig(cfg), WithBuilt(w))
}

// BuildWorkload constructs a workload without running it, for callers that
// want to inspect or reuse the construction path.
func BuildWorkload(name string, size Size, pageShift uint, seed uint64) (*workloads.Workload, error) {
	return workloads.Build(name, size, pageShift, seed)
}

// RunKernel executes a custom kernel launch over the given address space
// with cfg, for users building their own workloads against the public ISA
// in internal/kernels (re-exported by examples). It is a thin wrapper over
// Run with a background context.
//
// Deprecated: use Run with WithConfig and WithKernel (and WithCheck to get
// a Verified report).
func RunKernel(cfg Config, as *vm.AddressSpace, l *kernels.Launch) (*Report, error) {
	return Run(context.Background(), WithConfig(cfg), WithKernel(as, l))
}

// NewAddressSpace creates a fresh simulated address space for custom
// kernels: sparse physical memory, a scrambled frame allocator, and an
// x86-64 page table. pageShift is 12 (4 KB) or 21 (2 MB).
func NewAddressSpace(pageShift uint) *vm.AddressSpace {
	return vm.NewAddressSpace(vm.NewPhysMem(), vm.NewFrameAllocator(1<<23), pageShift)
}
