// Package gpummu reproduces Pichai, Hsu & Bhattacharjee, "Architectural
// Support for Address Translation on GPUs: Designing Memory Management
// Units for CPU/GPUs with Unified Address Spaces" (ASPLOS 2014), as a
// self-contained GPU timing simulator in pure Go.
//
// The public API wraps the internal simulator: pick a hardware
// configuration (Config), a workload (one of the paper's six, or your own
// kernel via the lower-level Launch path), run a Simulation, and read the
// Report. The MMU design space of the paper — TLB size/ports, blocking vs
// non-blocking miss handling, cache-overlapped translation, page table walk
// scheduling, CCWS/TA-CCWS/TCWS warp scheduling, and (TLB-aware) thread
// block compaction — is exposed through Config knobs.
//
// Quickstart:
//
//	cfg := gpummu.BaselineConfig()
//	cfg.MMU = gpummu.AugmentedMMU()
//	rep, err := gpummu.RunWorkload("bfs", gpummu.SizeSmall, cfg, 1)
//	fmt.Println(rep.Cycles, rep.TLBMissRate())
package gpummu

import (
	"fmt"

	"gpummu/internal/config"
	"gpummu/internal/gpu"
	"gpummu/internal/kernels"
	"gpummu/internal/stats"
	"gpummu/internal/vm"
	"gpummu/internal/workloads"
)

// Config is the full machine configuration (hardware + policies).
type Config = config.Hardware

// MMUConfig configures the per-core TLB and page table walkers.
type MMUConfig = config.MMU

// SchedulerConfig configures warp scheduling and the CCWS family.
type SchedulerConfig = config.Scheduler

// TBCConfig configures thread block compaction.
type TBCConfig = config.TBC

// Size selects a workload dataset scale.
type Size = workloads.Size

// Dataset scales, re-exported from internal/workloads.
const (
	SizeTiny   = workloads.SizeTiny
	SizeSmall  = workloads.SizeSmall
	SizeMedium = workloads.SizeMedium
	SizeLarge  = workloads.SizeLarge
)

// Scheduler policies, re-exported from internal/config.
const (
	SchedLRR    = config.SchedLRR
	SchedGTO    = config.SchedGTO
	SchedCCWS   = config.SchedCCWS
	SchedTACCWS = config.SchedTACCWS
	SchedTCWS   = config.SchedTCWS
)

// Divergence handling modes, re-exported from internal/config.
const (
	DivStack  = config.DivStack
	DivTBC    = config.DivTBC
	DivTLBTBC = config.DivTLBTBC
)

// BaselineConfig returns the paper's section 5.2 machine with no TLB (the
// normalisation baseline for every figure).
func BaselineConfig() Config { return config.Baseline() }

// SmallConfig returns a scaled-down machine for tests and quick sweeps.
func SmallConfig() Config { return config.SmallTest() }

// NaiveMMU returns the strawman CPU-style MMU: 128-entry 4-way blocking
// TLB with the given port count and one serial walker per core.
func NaiveMMU(ports int) MMUConfig { return config.NaiveMMU(ports) }

// AugmentedMMU returns the paper's recommended MMU: 128-entry 4-port TLB
// with hits-under-miss, cache-overlapped translation, and PTW scheduling.
func AugmentedMMU() MMUConfig { return config.AugmentedMMU() }

// IdealMMU returns the impractical reference design: 512 entries, 32
// ports, no access-latency penalty, fully augmented.
func IdealMMU() MMUConfig { return config.MMU{}.Ideal() }

// WorkloadNames returns all registered workloads.
func WorkloadNames() []string { return workloads.Names() }

// PaperWorkloads returns the paper's six workloads in figure order.
func PaperWorkloads() []string { return workloads.PaperSet() }

// Report is the outcome of one simulation: every statistic the paper's
// figures draw from. It embeds the raw statistics and records the
// workload/config identity.
type Report struct {
	stats.Sim
	Workload string
	Verified bool // functional check ran and passed
}

// Speedup returns this run's speedup relative to a baseline run of the
// same workload (baseline cycles / our cycles), the normalisation used by
// every figure in the paper.
func (r *Report) Speedup(baseline *Report) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(baseline.Cycles) / float64(r.Cycles)
}

// RunWorkload builds the named workload at the given scale and runs it on
// a machine with cfg, returning the report. The workload's functional
// check runs afterwards; a check failure is an error (the simulator must
// compute real results, not just traffic).
func RunWorkload(name string, size Size, cfg Config, seed uint64) (*Report, error) {
	w, err := workloads.Build(name, size, cfg.PageShift, seed)
	if err != nil {
		return nil, err
	}
	return RunBuilt(w, cfg)
}

// RunBuilt runs an already-constructed workload (from BuildWorkload) on a
// machine with cfg. The same built workload must not be reused across runs
// because kernels mutate their data.
func RunBuilt(w *workloads.Workload, cfg Config) (*Report, error) {
	st := &stats.Sim{}
	g, err := gpu.New(cfg, w.AS, st)
	if err != nil {
		return nil, err
	}
	if _, err := g.Run(w.Launch); err != nil {
		return nil, fmt.Errorf("gpummu: running %s: %w", w.Name, err)
	}
	rep := &Report{Sim: *st, Workload: w.Name}
	if w.Check != nil {
		if err := w.Check(); err != nil {
			return nil, fmt.Errorf("gpummu: functional check failed: %w", err)
		}
		rep.Verified = true
	}
	return rep, nil
}

// BuildWorkload constructs a workload without running it, for callers that
// want to inspect or reuse the construction path.
func BuildWorkload(name string, size Size, pageShift uint, seed uint64) (*workloads.Workload, error) {
	return workloads.Build(name, size, pageShift, seed)
}

// RunKernel executes a custom kernel launch over the given address space
// with cfg, for users building their own workloads against the public ISA
// in internal/kernels (re-exported by examples).
func RunKernel(cfg Config, as *vm.AddressSpace, l *kernels.Launch) (*Report, error) {
	st := &stats.Sim{}
	g, err := gpu.New(cfg, as, st)
	if err != nil {
		return nil, err
	}
	if _, err := g.Run(l); err != nil {
		return nil, err
	}
	return &Report{Sim: *st, Workload: l.Program.Name}, nil
}

// NewAddressSpace creates a fresh simulated address space for custom
// kernels: sparse physical memory, a scrambled frame allocator, and an
// x86-64 page table. pageShift is 12 (4 KB) or 21 (2 MB).
func NewAddressSpace(pageShift uint) *vm.AddressSpace {
	return vm.NewAddressSpace(vm.NewPhysMem(), vm.NewFrameAllocator(1<<23), pageShift)
}
