package gpummu_test

import (
	"fmt"

	"gpummu"
)

// ExampleRunWorkload runs the paper's strawman MMU on a small BFS and
// prints whether the functional check passed — the simulator computes real
// results, not just traffic.
func ExampleRunWorkload() {
	cfg := gpummu.SmallConfig()
	cfg.MMU = gpummu.NaiveMMU(3)
	rep, err := gpummu.RunWorkload("bfs", gpummu.SizeTiny, cfg, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("verified:", rep.Verified)
	fmt.Println("tlb accessed:", rep.TLBAccesses > 0)
	// Output:
	// verified: true
	// tlb accessed: true
}

// ExampleReport_Speedup shows the normalisation every figure uses.
func ExampleReport_Speedup() {
	base := &gpummu.Report{}
	base.Cycles = 1000
	faster := &gpummu.Report{}
	faster.Cycles = 800
	fmt.Printf("%.2fx\n", faster.Speedup(base))
	// Output:
	// 1.25x
}
