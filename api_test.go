package gpummu

import (
	"testing"

	"gpummu/internal/kernels"
)

func TestPresetsValidate(t *testing.T) {
	for name, cfg := range map[string]Config{
		"baseline": BaselineConfig(),
		"small":    SmallConfig(),
	} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	for name, m := range map[string]MMUConfig{
		"naive":     NaiveMMU(3),
		"augmented": AugmentedMMU(),
		"ideal":     IdealMMU(),
	} {
		cfg := BaselineConfig()
		cfg.MMU = m
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestWorkloadNamesStable(t *testing.T) {
	names := WorkloadNames()
	if len(names) < 7 {
		t.Fatalf("only %d workloads registered", len(names))
	}
	if len(PaperWorkloads()) != 6 {
		t.Fatalf("paper set = %v", PaperWorkloads())
	}
}

func TestSpeedupMath(t *testing.T) {
	a := &Report{}
	a.Cycles = 200
	b := &Report{}
	b.Cycles = 100
	if got := b.Speedup(a); got != 2.0 {
		t.Fatalf("speedup = %f", got)
	}
	zero := &Report{}
	if got := zero.Speedup(a); got != 0 {
		t.Fatalf("zero-cycle speedup = %f", got)
	}
}

func TestRunWorkloadUnknown(t *testing.T) {
	if _, err := RunWorkload("nonsense", SizeTiny, SmallConfig(), 1); err == nil {
		t.Fatal("unknown workload ran")
	}
}

func TestRunWorkloadPageShiftMismatchCaught(t *testing.T) {
	w, err := BuildWorkload("kmeans", SizeTiny, 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SmallConfig()
	cfg.PageShift = 21
	if _, err := RunBuilt(w, cfg); err == nil {
		t.Fatal("page-shift mismatch not caught")
	}
}

func TestRunKernelCustom(t *testing.T) {
	as := NewAddressSpace(12)
	out := as.Malloc(32 * 8)

	b := kernels.NewBuilder("store-tid")
	const rTid, rAddr, rBase kernels.Reg = 0, 1, 2
	b.Special(rTid, kernels.SpecGlobalTID)
	b.ShlImm(rAddr, rTid, 3)
	b.Special(rBase, kernels.SpecParam0)
	b.Add(rAddr, rAddr, rBase)
	b.St(rAddr, 0, rTid, 8)
	b.Exit()
	l := &kernels.Launch{Program: b.MustBuild(), Grid: 1, BlockDim: 32}
	l.Params[0] = out

	cfg := SmallConfig()
	cfg.MMU = AugmentedMMU()
	rep, err := RunKernel(cfg, as, l)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles == 0 {
		t.Fatal("no cycles simulated")
	}
	for tid := uint64(0); tid < 32; tid++ {
		if got := as.Read64(out + tid*8); got != tid {
			t.Fatalf("out[%d] = %d", tid, got)
		}
	}
}

// TestRunBuiltVerifiesFunctionally confirms the functional check gate: a
// verified run reports Verified.
func TestRunBuiltVerifiesFunctionally(t *testing.T) {
	rep, err := RunWorkload("pointerchase", SizeTiny, SmallConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified {
		t.Fatal("check did not run")
	}
}
