package gpummu

import "testing"

// TestSmokeAllWorkloads runs every workload at tiny scale on the small
// machine, with and without the augmented MMU, verifying functional
// results and basic statistic sanity.
func TestSmokeAllWorkloads(t *testing.T) {
	for _, name := range WorkloadNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			base := SmallConfig()
			rep, err := RunWorkload(name, SizeTiny, base, 1)
			if err != nil {
				t.Fatalf("no-TLB run: %v", err)
			}
			if !rep.Verified {
				t.Fatalf("no functional check ran")
			}
			if rep.Cycles == 0 || rep.Instructions == 0 || rep.MemInstrs == 0 {
				t.Fatalf("degenerate stats: %+v", rep.Sim)
			}

			cfg := SmallConfig()
			cfg.MMU = AugmentedMMU()
			rep2, err := RunWorkload(name, SizeTiny, cfg, 1)
			if err != nil {
				t.Fatalf("augmented run: %v", err)
			}
			if rep2.TLBAccesses == 0 {
				t.Fatalf("TLB never accessed")
			}
			if rep2.Cycles < rep.Cycles {
				t.Logf("note: TLB run faster than baseline (%d < %d)", rep2.Cycles, rep.Cycles)
			}
			t.Logf("%s: base=%d cyc, tlb=%d cyc, missrate=%.1f%%, pagediv=%.2f/%d",
				name, rep.Cycles, rep2.Cycles, 100*rep2.TLBMissRate(),
				rep2.PageDivergence.Mean(), rep2.PageDivergence.Max())
		})
	}
}
