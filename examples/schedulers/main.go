// Scheduler comparison: run one cache-hostile workload under every warp
// scheduling policy of the paper's section 7, with the augmented MMU, and
// report how much of the no-TLB CCWS performance each recovers.
//
//	go run ./examples/schedulers
package main

import (
	"fmt"
	"log"

	"gpummu"
)

func main() {
	const workload = "memcached"

	type entry struct {
		name string
		cfg  gpummu.Config
	}
	base := func() gpummu.Config {
		c := gpummu.BaselineConfig()
		c.NumCores = 8 // keep the example quick
		return c
	}

	noTLB := base()
	withMMU := func(mut func(*gpummu.Config)) gpummu.Config {
		c := base()
		c.MMU = gpummu.AugmentedMMU()
		mut(&c)
		return c
	}

	entries := []entry{
		{"lrr, no TLB (baseline)", noTLB},
		{"lrr + augmented MMU", withMMU(func(c *gpummu.Config) {})},
		{"ccws + augmented MMU", withMMU(func(c *gpummu.Config) {
			c.Sched.Policy = gpummu.SchedCCWS
		})},
		{"ta-ccws 4:1 + augmented MMU", withMMU(func(c *gpummu.Config) {
			c.Sched.Policy = gpummu.SchedTACCWS
			c.Sched.TLBMissWeight = 4
		})},
		{"tcws lru(1,2,4,8) + augmented", withMMU(func(c *gpummu.Config) {
			c.Sched.Policy = gpummu.SchedTCWS
			c.Sched.TLBMissWeight = 4
			c.Sched.VTAEntriesPerWarp = 8
			c.Sched.LRUDepthWeights = []int{1, 2, 4, 8}
		})},
	}

	var baseline *gpummu.Report
	fmt.Printf("%-32s %12s %10s %10s\n", "configuration", "cycles", "speedup", "tlb-miss")
	for i, e := range entries {
		rep, err := gpummu.RunWorkload(workload, gpummu.SizeTiny, e.cfg, 1)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			baseline = rep
		}
		miss := "-"
		if rep.TLBAccesses > 0 {
			miss = fmt.Sprintf("%.1f%%", 100*rep.TLBMissRate())
		}
		fmt.Printf("%-32s %12d %9.3fx %10s\n", e.name, rep.Cycles, rep.Speedup(baseline), miss)
	}
	fmt.Println("\nTCWS needs half the victim-tag hardware of CCWS yet tracks TLB")
	fmt.Println("locality directly — the paper's section 7.2 punchline.")
}
