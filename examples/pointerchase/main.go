// Pointer-chase example: build a custom kernel against the public API —
// an adversarial pointer-chasing workload that defeats every TLB — and
// sweep TLB sizes to watch reach, not latency, dominate.
//
// This demonstrates the lower-level API surface: constructing an address
// space, laying out data, assembling a kernel, and launching it.
//
//	go run ./examples/pointerchase
package main

import (
	"fmt"
	"log"

	"gpummu"
	"gpummu/internal/kernels"
)

func main() {
	// One simulated process; data shared by every configuration is
	// rebuilt per run because kernels mutate their output buffers.
	const (
		nodes   = 64 << 10
		threads = 4 << 10
		hops    = 12
	)

	run := func(entries int) (*gpummu.Report, error) {
		as := gpummu.NewAddressSpace(12)
		ringVA := as.Malloc(nodes * 8)
		outVA := as.Malloc(threads * 8)
		// ring[i] = (i * 9973) % nodes gives a full-cycle permutation
		// with page-sized jumps.
		for i := uint64(0); i < nodes; i++ {
			as.Write64(ringVA+i*8, (i*9973)%nodes)
		}

		prog := chaseKernel(threads, hops, nodes)
		l := &kernels.Launch{Program: prog, Grid: threads / 256, BlockDim: 256}
		l.Params[0] = ringVA
		l.Params[1] = outVA

		cfg := gpummu.BaselineConfig()
		cfg.NumCores = 8 // keep the example quick
		if entries > 0 {
			cfg.MMU = gpummu.AugmentedMMU()
			cfg.MMU.Entries = entries
		}
		return gpummu.RunKernel(cfg, as, l)
	}

	base, err := run(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s %12s %10s %12s\n", "tlb", "cycles", "speedup", "miss-rate")
	fmt.Printf("%-10s %12d %9.3fx %11s\n", "none", base.Cycles, 1.0, "-")
	for _, entries := range []int{64, 128, 256, 512} {
		rep, err := run(entries)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %12d %9.3fx %10.1f%%\n",
			entries, rep.Cycles, rep.Speedup(base), 100*rep.TLBMissRate())
	}
	fmt.Println("\npointer chasing defeats TLB reach: larger TLBs pay access latency")
	fmt.Println("without earning hits, exactly the trade-off in the paper's figure 6.")
}

// chaseKernel: out[tid] = ring^hops(tid % nodes).
func chaseKernel(threads, hops, nodes int) *kernels.Program {
	const (
		rTid, rCur, rH, rTmp, rBase, rCond kernels.Reg = 0, 1, 2, 3, 4, 5
	)
	b := kernels.NewBuilder("chase")
	b.Special(rTid, kernels.SpecGlobalTID)
	b.MulImm(rCur, rTid, 2497)
	b.AndImm(rCur, rCur, int64(nodes-1))
	b.MovImm(rH, 0)
	b.Label("loop")
	b.ShlImm(rTmp, rCur, 3)
	b.Special(rBase, kernels.SpecParam0)
	b.Add(rTmp, rTmp, rBase)
	b.Ld(rCur, rTmp, 0, 8)
	b.AddImm(rH, rH, 1)
	b.SltuImm(rCond, rH, int64(hops))
	b.Bnz(rCond, "loop", "end")
	b.Label("end")
	b.ShlImm(rTmp, rTid, 3)
	b.Special(rBase, kernels.SpecParam1)
	b.Add(rTmp, rTmp, rBase)
	b.St(rTmp, 0, rCur, 8)
	b.Exit()
	return b.MustBuild()
}
