// Quickstart: run one workload on the paper's machine in three MMU
// configurations — no TLB, the naive strawman, and the paper's augmented
// design — and print the overhead each adds, reproducing the paper's core
// result in miniature.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gpummu"
)

func main() {
	const workload = "bfs"

	base := gpummu.BaselineConfig() // no TLB: the normalisation baseline
	baseRep, err := gpummu.RunWorkload(workload, gpummu.SizeTiny, base, 1)
	if err != nil {
		log.Fatal(err)
	}

	naive := gpummu.BaselineConfig()
	naive.MMU = gpummu.NaiveMMU(3) // CPU-style blocking TLB (section 6.2)
	naiveRep, err := gpummu.RunWorkload(workload, gpummu.SizeTiny, naive, 1)
	if err != nil {
		log.Fatal(err)
	}

	aug := gpummu.BaselineConfig()
	aug.MMU = gpummu.AugmentedMMU() // the paper's design (section 6.3)
	augRep, err := gpummu.RunWorkload(workload, gpummu.SizeTiny, aug, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s (functionally verified: %v)\n\n", workload, augRep.Verified)
	fmt.Printf("%-28s %12s %10s\n", "configuration", "cycles", "speedup")
	for _, r := range []struct {
		name string
		rep  *gpummu.Report
	}{
		{"no TLB (baseline)", baseRep},
		{"naive 128e/3p blocking TLB", naiveRep},
		{"augmented MMU (paper)", augRep},
	} {
		fmt.Printf("%-28s %12d %9.3fx\n", r.name, r.rep.Cycles, r.rep.Speedup(baseRep))
	}
	fmt.Printf("\nnaive TLB miss rate: %.1f%%, page divergence avg %.2f (max %d)\n",
		100*naiveRep.TLBMissRate(), naiveRep.PageDivergence.Mean(), naiveRep.PageDivergence.Max())
	fmt.Printf("augmented design: walk refs eliminated %.1f%%, TLB miss latency %.0f cycles\n",
		100*augRep.WalkRefsEliminated(), augRep.TLBMissLat.Mean())
}
