// Large pages study (paper section 9): run scattered workloads with 4 KB
// and 2 MB translation granularity and compare page divergence, miss
// rates, and overheads. The paper's observation: large pages usually
// collapse divergence, but far-flung access patterns (mummergpu, bfs)
// still diverge because warp footprints span many megabytes.
//
//	go run ./examples/largepages
package main

import (
	"fmt"
	"log"

	"gpummu"
)

func main() {
	workloads := []string{"kmeans", "bfs", "mummergpu"}
	fmt.Printf("%-12s %10s %12s %12s %12s\n",
		"workload", "pages", "pagediv", "tlb-miss", "overhead")
	for _, w := range workloads {
		for _, shift := range []uint{12, 21} {
			cfg := gpummu.BaselineConfig()
			cfg.NumCores = 8 // keep the example quick
			cfg.PageShift = shift
			cfg.MMU = gpummu.AugmentedMMU()
			rep, err := gpummu.RunWorkload(w, gpummu.SizeTiny, cfg, 1)
			if err != nil {
				log.Fatal(err)
			}

			base := cfg
			base.MMU = gpummu.MMUConfig{Enabled: false}
			baseRep, err := gpummu.RunWorkload(w, gpummu.SizeTiny, base, 1)
			if err != nil {
				log.Fatal(err)
			}

			name := "4K"
			if shift == 21 {
				name = "2M"
			}
			overhead := float64(rep.Cycles)/float64(baseRep.Cycles) - 1
			fmt.Printf("%-12s %10s %12.2f %11.1f%% %11.1f%%\n",
				w, name, rep.PageDivergence.Mean(), 100*rep.TLBMissRate(), 100*overhead)
		}
	}
	fmt.Println("\n2 MB pages shrink the translation working set, but pointer-chasing")
	fmt.Println("workloads keep nonzero divergence — the paper's section 9 caveat.")
}
