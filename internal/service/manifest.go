// The run manifest: a journalled record of every job the server has
// accepted, durable across restarts. Each state change appends one JSON
// line to manifest.jsonl; opening a manifest replays the journal with
// last-record-per-ID wins, so the file needs no rewriting and a crash
// mid-append loses at most the final transition. Jobs found in
// pending/running state at open are the interrupted ones — the server
// requeues them, and their completed simulations are already in the
// durable store, so a resume only pays for what never finished.
package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Job states. The lifecycle is pending → running → (done | failed |
// timeout); a restart moves interrupted running jobs back to pending.
const (
	StatePending = "pending"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
	StateTimeout = "timeout"
)

// Job is one manifest entry: a submitted campaign and its execution state.
type Job struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Kind records how the job arrived: "campaign" (a submitted document)
	// or "run" (an ad-hoc workload+config submission the server wrapped in
	// a campaign).
	Kind string `json:"kind"`
	// Name is the campaign name (display, not identity).
	Name string `json:"name"`
	// Campaign is the canonical campaign document (campaign.Emit output):
	// everything needed to re-expand and resume the job after a restart.
	Campaign string `json:"campaign"`

	Created  string `json:"created,omitempty"`
	Started  string `json:"started,omitempty"`
	Finished string `json:"finished,omitempty"`

	// Total counts the unique simulations the job needs; Simulated the ones
	// this execution actually ran; FromStore the ones served from the
	// durable store; Coalesced the ones adopted from another job's
	// concurrent in-flight simulation (singleflight, scheduler.go). Total =
	// Simulated + FromStore + Coalesced when the job is done — a
	// resubmitted identical job reports Simulated == 0, and two identical
	// jobs in flight together report Simulated + Coalesced split across
	// them instead of simulating twice.
	Total     int `json:"total"`
	Simulated int `json:"simulated"`
	FromStore int `json:"fromStore"`
	Coalesced int `json:"coalesced"`
	// Failures counts runs that completed with an error.
	Failures int `json:"failures,omitempty"`

	// Error is the job-level failure message (failed/timeout states).
	Error string `json:"error,omitempty"`
	// ReportPath locates the rendered report under the server directory.
	ReportPath string `json:"reportPath,omitempty"`
}

// Clone returns a copy safe to hand to other goroutines.
func (j *Job) Clone() *Job {
	c := *j
	return &c
}

// Manifest tracks jobs, optionally journalling every update to
// manifest.jsonl in its directory. A Manifest with no directory is
// memory-only (tests, ephemeral servers).
type Manifest struct {
	mu   sync.RWMutex
	jobs map[string]*Job
	next int
	f    *os.File
}

// OpenManifest opens the manifest journal in dir, replaying any existing
// journal. dir == "" creates a memory-only manifest.
func OpenManifest(dir string) (*Manifest, error) {
	m := &Manifest{jobs: make(map[string]*Job), next: 1}
	if dir == "" {
		return m, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: manifest dir: %w", err)
	}
	path := filepath.Join(dir, "manifest.jsonl")
	if err := m.replay(path); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: manifest journal: %w", err)
	}
	m.f = f
	// A job interrupted mid-run is requeued: its results live in the
	// durable store, so re-execution skips everything that completed.
	for _, j := range m.jobs {
		if j.State == StateRunning {
			j.State = StatePending
			j.Started = ""
		}
	}
	return m, nil
}

// replay loads the journal, last record per ID winning. A torn final line
// (crash mid-append) is dropped.
func (m *Manifest) replay(path string) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("service: manifest journal: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var j Job
		if err := json.Unmarshal(line, &j); err != nil || j.ID == "" {
			continue // torn tail or foreign line: skip, the previous record stands
		}
		m.jobs[j.ID] = &j
		var n int
		if _, err := fmt.Sscanf(j.ID, "j%d", &n); err == nil && n >= m.next {
			m.next = n + 1
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("service: manifest journal: %w", err)
	}
	return nil
}

// NewJob registers a pending job for the given canonical campaign document
// and returns its snapshot.
func (m *Manifest) NewJob(kind, name, campaignDoc string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j := &Job{
		ID:       fmt.Sprintf("j%d", m.next),
		State:    StatePending,
		Kind:     kind,
		Name:     name,
		Campaign: campaignDoc,
		Created:  time.Now().UTC().Format(time.RFC3339),
	}
	m.next++
	if err := m.append(j); err != nil {
		return nil, err
	}
	m.jobs[j.ID] = j
	return j.Clone(), nil
}

// Update applies fn to the job and journals the new state. It returns the
// updated snapshot.
func (m *Manifest) Update(id string, fn func(*Job)) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, fmt.Errorf("service: unknown job %q", id)
	}
	fn(j)
	if err := m.append(j); err != nil {
		return nil, err
	}
	return j.Clone(), nil
}

// append journals one record; callers hold the lock.
func (m *Manifest) append(j *Job) error {
	if m.f == nil {
		return nil
	}
	line, err := json.Marshal(j)
	if err != nil {
		return fmt.Errorf("service: encoding job: %w", err)
	}
	line = append(line, '\n')
	if _, err := m.f.Write(line); err != nil {
		return fmt.Errorf("service: journalling job: %w", err)
	}
	if err := m.f.Sync(); err != nil {
		return fmt.Errorf("service: syncing journal: %w", err)
	}
	return nil
}

// Job returns a snapshot of the job with the given ID.
func (m *Manifest) Job(id string) (*Job, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, false
	}
	return j.Clone(), true
}

// Jobs returns snapshots of every job, oldest first.
func (m *Manifest) Jobs() []*Job {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, j.Clone())
	}
	sort.Slice(out, func(i, k int) bool {
		var a, b int
		fmt.Sscanf(out[i].ID, "j%d", &a)
		fmt.Sscanf(out[k].ID, "j%d", &b)
		return a < b
	})
	return out
}

// Resumable returns the IDs of pending jobs in their original submission
// order (Jobs sorts by the numeric job ID, which NewJob assigns
// monotonically and replay never reuses) — the order a restarted server
// re-enqueues them in, regardless of how the journal's records were
// interleaved on disk.
func (m *Manifest) Resumable() []string {
	var ids []string
	for _, j := range m.Jobs() {
		if j.State == StatePending {
			ids = append(ids, j.ID)
		}
	}
	return ids
}

// Close closes the journal.
func (m *Manifest) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.f == nil {
		return nil
	}
	err := m.f.Close()
	m.f = nil
	return err
}
