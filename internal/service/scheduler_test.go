package service

// Deterministic unit tests for the concurrent job scheduler: the slot
// budget, the cross-job singleflight table, and the fake clock that lets
// job timeouts fire without sleeping. Every blocking point is pinned via
// scheduler.stats() polling, so the tests drive exact interleavings
// instead of racing timers.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"gpummu/internal/experiments"
	"gpummu/internal/obs"
)

// fakeClock is a manually-advanced clock: After timers fire only when the
// test calls Advance past their deadline.
type fakeClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*fakeTimer
}

type fakeTimer struct {
	at    time.Time
	ch    chan time.Time
	fired bool
}

func newFakeClock(start time.Time) *fakeClock { return &fakeClock{now: start} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) After(d time.Duration) (<-chan time.Time, func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &fakeTimer{at: c.now.Add(d), ch: make(chan time.Time, 1)}
	c.timers = append(c.timers, t)
	return t.ch, func() {}
}

// Advance moves the clock forward and fires every timer whose deadline
// has passed.
func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	for _, t := range c.timers {
		if !t.fired && !t.at.After(c.now) {
			t.fired = true
			t.ch <- c.now
		}
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// okResult builds a distinguishable successful RunResult for scheduler
// tests (no simulation involved).
func okResult(tag string) *experiments.RunResult {
	return &experiments.RunResult{Spec: experiments.RunSpec{Workload: tag}}
}

// TestSchedulerSlotBudget: the budget admits exactly its capacity; an
// over-budget acquire blocks until a release or its context ends.
func TestSchedulerSlotBudget(t *testing.T) {
	s := newScheduler(2)
	ctx := context.Background()
	if err := s.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.acquire(ctx); err != nil {
		t.Fatal(err)
	}

	blocked, cancel := context.WithCancel(ctx)
	errc := make(chan error, 1)
	go func() { errc <- s.acquire(blocked) }()
	waitFor(t, "third acquire to block", func() bool {
		_, _, busy, waiters := s.stats()
		return busy == 2 && waiters == 1
	})
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire returned %v, want context.Canceled", err)
	}

	s.release()
	if err := s.acquire(ctx); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	s.release()
	s.release()
	if _, _, busy, waiters := s.stats(); busy != 0 || waiters != 0 {
		t.Fatalf("slots not drained: busy=%d waiters=%d", busy, waiters)
	}
}

// TestSchedulerSingleflight: concurrent do calls for one key run the
// function exactly once; waiters adopt the winner's result and report
// coalesced.
func TestSchedulerSingleflight(t *testing.T) {
	s := newScheduler(1)
	ctx := context.Background()
	gate := make(chan struct{})
	want := okResult("winner")

	type out struct {
		res       *experiments.RunResult
		coalesced bool
		err       error
	}
	results := make(chan out, 3)
	go func() {
		res, co, err := s.do(ctx, "k", func() *experiments.RunResult {
			<-gate
			return want
		})
		results <- out{res, co, err}
	}()
	waitFor(t, "winner flight", func() bool {
		flights, _, _, _ := s.stats()
		return flights == 1
	})
	for i := 0; i < 2; i++ {
		go func() {
			res, co, err := s.do(ctx, "k", func() *experiments.RunResult {
				t.Error("waiter executed the flight function")
				return okResult("waiter")
			})
			results <- out{res, co, err}
		}()
	}
	waitFor(t, "two flight waiters", func() bool {
		_, waiters, _, _ := s.stats()
		return waiters == 2
	})
	close(gate)

	var coalesced, winners int
	for i := 0; i < 3; i++ {
		o := <-results
		if o.err != nil {
			t.Fatal(o.err)
		}
		if o.res != want {
			t.Fatalf("result not shared: got %p want %p", o.res, want)
		}
		if o.coalesced {
			coalesced++
		} else {
			winners++
		}
	}
	if winners != 1 || coalesced != 2 {
		t.Fatalf("winners=%d coalesced=%d, want 1/2", winners, coalesced)
	}
	if flights, waiters, _, _ := s.stats(); flights != 0 || waiters != 0 {
		t.Fatalf("flight table not empty: flights=%d waiters=%d", flights, waiters)
	}
}

// TestSchedulerAbortedWinnerNotAdopted: a flight whose winner was
// cancelled (job timeout) must not poison waiters — the waiter retries
// and becomes the new winner. Deterministic failures ARE adopted.
func TestSchedulerAbortedWinnerNotAdopted(t *testing.T) {
	s := newScheduler(1)
	ctx := context.Background()
	gate := make(chan struct{})
	abortRes := &experiments.RunResult{Err: fmt.Errorf("%w: killed", obs.ErrDeadline)}

	go s.do(ctx, "k", func() *experiments.RunResult {
		<-gate
		return abortRes
	})
	waitFor(t, "aborting winner's flight", func() bool {
		flights, _, _, _ := s.stats()
		return flights == 1
	})

	retried := make(chan *experiments.RunResult, 1)
	good := okResult("retry")
	go func() {
		res, co, err := s.do(ctx, "k", func() *experiments.RunResult { return good })
		if err != nil {
			t.Error(err)
		}
		if co {
			t.Error("retry after aborted winner reported coalesced")
		}
		retried <- res
	}()
	waitFor(t, "retrier waiting on the doomed flight", func() bool {
		_, waiters, _, _ := s.stats()
		return waiters == 1
	})
	close(gate)
	if res := <-retried; res != good {
		t.Fatalf("waiter adopted aborted result %v", res.Err)
	}

	// A deterministic failure, by contrast, is shared.
	detErr := &experiments.RunResult{Err: errors.New("functional check: wrong sum")}
	gate2 := make(chan struct{})
	go s.do(ctx, "k2", func() *experiments.RunResult { <-gate2; return detErr })
	waitFor(t, "failing winner's flight", func() bool {
		flights, _, _, _ := s.stats()
		return flights == 1
	})
	adopted := make(chan *experiments.RunResult, 1)
	go func() {
		res, co, err := s.do(ctx, "k2", func() *experiments.RunResult {
			t.Error("deterministic failure re-simulated")
			return nil
		})
		if err != nil || !co {
			t.Errorf("adoption err=%v coalesced=%v", err, co)
		}
		adopted <- res
	}()
	waitFor(t, "adopter waiting", func() bool {
		_, waiters, _, _ := s.stats()
		return waiters == 1
	})
	close(gate2)
	if res := <-adopted; res != detErr {
		t.Fatal("deterministic failure not adopted")
	}
}

// TestSchedulerDoRespectsContext: a cancelled context aborts both a
// fresh do and a waiter mid-flight without running anything.
func TestSchedulerDoRespectsContext(t *testing.T) {
	s := newScheduler(1)
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.do(dead, "k", func() *experiments.RunResult {
		t.Error("fn ran under a dead context")
		return nil
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("dead-context do returned %v", err)
	}

	gate := make(chan struct{})
	go s.do(context.Background(), "k", func() *experiments.RunResult {
		<-gate
		return okResult("w")
	})
	waitFor(t, "flight", func() bool { flights, _, _, _ := s.stats(); return flights == 1 })

	wctx, wcancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := s.do(wctx, "k", func() *experiments.RunResult { return nil })
		errc <- err
	}()
	waitFor(t, "waiter", func() bool { _, waiters, _, _ := s.stats(); return waiters == 1 })
	wcancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter returned %v", err)
	}
	close(gate)
	waitFor(t, "flight table drained", func() bool {
		flights, waiters, _, _ := s.stats()
		return flights == 0 && waiters == 0
	})
}
