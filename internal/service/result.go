// Package service is the simulation-as-a-service layer: a job server
// (cmd/gpusimd) that accepts campaign or (workload, config) submissions
// over a versioned HTTP/JSON API, executes them through the existing
// campaign → experiments pipeline, and persists every result in a durable
// store keyed by canonical simulation identity — so no client of the same
// store ever pays for the same simulation twice.
//
// The package exports four pieces:
//
//   - Result, the schema-versioned JSON envelope every stored result, /v1
//     response, and `gpusim -json` object shares (result.go);
//   - Store, the durable result store interface, with an in-memory and an
//     append-only JSONL segment implementation (store.go);
//   - Manifest, the journalled run manifest whose pending/running/done/
//     failed/timeout job states survive restart (manifest.go);
//   - Server and Client, the /v1 HTTP surface and its Go consumer
//     (server.go, client.go).
//
// DESIGN.md section 16 is the architecture reference.
package service

import (
	"fmt"
	"time"

	"gpummu/internal/config"
	"gpummu/internal/experiments"
	"gpummu/internal/gpu"
	"gpummu/internal/stats"
	"gpummu/internal/workloads"
)

// ResultSchema is the envelope schema version this package reads and
// writes. Incompatible revisions bump the suffix; readers reject unknown
// versions instead of guessing.
const ResultSchema = "gpummu.result/v1"

// Result is the versioned envelope for one simulation outcome. It is the
// single result currency of the system: the durable store persists it, the
// /v1 endpoints serve it, and `gpusim -json` prints it.
//
// Identity: Key canonically names the simulation (workload, size, seed,
// sampling plan, and the full config.Hardware.Key), so two Results with
// equal Keys describe byte-identical simulations and the store never needs
// to run one of them twice. Stats and Sampled round-trip losslessly
// through JSON (stats.Hist marshals its full bucket state), which is what
// lets a report rendered from rehydrated results match a fresh run byte
// for byte.
type Result struct {
	Schema    string `json:"schema"`
	Key       string `json:"key"`
	Workload  string `json:"workload"`
	Size      string `json:"size"`
	Seed      uint64 `json:"seed"`
	ConfigKey string `json:"configKey"`
	// Plan is the sampling plan ("warmup,detail,fastforward[,warm]") or
	// "exact" for full-detail runs.
	Plan string `json:"plan"`

	// Cycles is the simulated cycle count (detailed cycles under a
	// sampling plan; Sampled then carries the extrapolated estimates).
	Cycles uint64 `json:"cycles"`

	// Stats is the complete end-of-run statistics record; nil only on a
	// failed run.
	Stats *stats.Sim `json:"stats,omitempty"`
	// Sampled is the interval-sampling record for sampled runs.
	Sampled *stats.Sampled `json:"sampled,omitempty"`
	// Summary holds the derived headline metrics (miss rates, fractions),
	// precomputed so jq-style consumers need no simulator arithmetic.
	Summary *Summary `json:"summary,omitempty"`

	// WallMS is host wall time in milliseconds — attribution, not
	// identity: it records what the result cost whoever computed it.
	WallMS float64 `json:"wallMs,omitempty"`
	// Created stamps when the result was computed (RFC3339, UTC).
	Created string `json:"created,omitempty"`
	// Error is the failure message of an unsuccessful run (Stats nil).
	// Failed results are returned to clients but never persisted.
	Error string `json:"error,omitempty"`
}

// Summary is the derived-metric block of a Result: every rate and mean the
// classic `gpusim -json` object reported, computed once at envelope
// construction.
type Summary struct {
	Instructions  uint64  `json:"instructions"`
	MemFraction   float64 `json:"memFraction"`
	IdleFraction  float64 `json:"idleFraction"`
	TLBAccesses   uint64  `json:"tlbAccesses"`
	TLBMissRate   float64 `json:"tlbMissRate"`
	TLBMissLat    float64 `json:"tlbMissLat"`
	L1MissRate    float64 `json:"l1MissRate"`
	L1MissLat     float64 `json:"l1MissLat"`
	L2MissRate    float64 `json:"l2MissRate"`
	PageDivAvg    float64 `json:"pageDivAvg"`
	PageDivMax    int     `json:"pageDivMax"`
	Walks         uint64  `json:"walks"`
	WalkRefs      uint64  `json:"walkRefs"`
	WalkRefsElim  float64 `json:"walkRefsElim"`
	WalkLat       float64 `json:"walkLat"`
	PWCHits       uint64  `json:"pwcHits"`
	SharedTLBHits uint64  `json:"sharedTlbHits"`
	Compacted     uint64  `json:"compacted"`
	SIMDUtil      float64 `json:"simdUtil"`

	// Sampled estimates with 95% confidence half-widths, present only for
	// sampled runs.
	EstCycles      float64 `json:"estCycles,omitempty"`
	EstCyclesCI    float64 `json:"estCyclesCI,omitempty"`
	EstIPC         float64 `json:"estIPC,omitempty"`
	EstIPCCI       float64 `json:"estIPCCI,omitempty"`
	DetailFraction float64 `json:"detailFraction,omitempty"`
}

// NewSummary derives the headline metrics from a completed run.
func NewSummary(st *stats.Sim, smp *stats.Sampled, warpWidth int) *Summary {
	if st == nil {
		return nil
	}
	s := &Summary{
		Instructions:  st.Instructions.Value(),
		MemFraction:   st.MemFraction(),
		IdleFraction:  st.IdleFraction(),
		TLBAccesses:   st.TLBAccesses.Value(),
		TLBMissRate:   st.TLBMissRate(),
		TLBMissLat:    st.TLBMissLat.Mean(),
		L1MissRate:    st.L1MissRate(),
		L1MissLat:     st.L1MissLat.Mean(),
		L2MissRate:    st.L2MissRate(),
		PageDivAvg:    st.PageDivergence.Mean(),
		PageDivMax:    st.PageDivergence.Max(),
		Walks:         st.Walks.Value(),
		WalkRefs:      st.WalkRefs.Value(),
		WalkRefsElim:  st.WalkRefsEliminated(),
		WalkLat:       st.WalkLat.Mean(),
		PWCHits:       st.PWCHits.Value(),
		SharedTLBHits: st.SharedTLBHits.Value(),
		Compacted:     st.CompactedWarps.Value(),
		SIMDUtil:      st.SIMDUtilisation(warpWidth),
	}
	if smp != nil {
		ec, ipc := smp.EstimatedCycles(), smp.IPC()
		s.EstCycles, s.EstCyclesCI = ec.Value, ec.CI
		s.EstIPC, s.EstIPCCI = ipc.Value, ipc.CI
		s.DetailFraction = smp.DetailFraction()
	}
	return s
}

// planLabel renders a sampling plan for keys and envelopes.
func planLabel(plan gpu.SamplePlan) string {
	if !plan.Enabled() {
		return "exact"
	}
	return plan.String()
}

// Key canonically identifies one simulation for dedup and store lookup:
// everything that determines its output — workload, dataset scale, seed,
// sampling plan, and every hardware field via config.Hardware.Key — and
// nothing that does not (worker counts, checkpointing, observability).
func Key(workload string, size workloads.Size, seed uint64, cfg config.Hardware, plan gpu.SamplePlan) string {
	return fmt.Sprintf("%s|size=%s|seed=%d|plan=%s|%s", workload, size, seed, planLabel(plan), cfg.Key())
}

// New builds the envelope for one completed (or failed) run.
func New(workload string, size workloads.Size, seed uint64, cfg config.Hardware, plan gpu.SamplePlan,
	cycles uint64, st *stats.Sim, smp *stats.Sampled, wall time.Duration, runErr error) *Result {
	r := &Result{
		Schema:    ResultSchema,
		Key:       Key(workload, size, seed, cfg, plan),
		Workload:  workload,
		Size:      size.String(),
		Seed:      seed,
		ConfigKey: cfg.Key(),
		Plan:      planLabel(plan),
		Cycles:    cycles,
		Stats:     st,
		Sampled:   smp,
		Summary:   NewSummary(st, smp, cfg.WarpWidth),
		WallMS:    float64(wall.Microseconds()) / 1000,
		Created:   time.Now().UTC().Format(time.RFC3339),
	}
	if runErr != nil {
		r.Error = runErr.Error()
		r.Stats, r.Sampled, r.Summary = nil, nil, nil
	}
	return r
}

// FromRun wraps one executor result in the envelope.
func FromRun(res *experiments.RunResult, size workloads.Size, seed uint64, plan gpu.SamplePlan) *Result {
	var cycles uint64
	if res.Stats != nil {
		cycles = res.Stats.Cycles
	}
	return New(res.Spec.Workload, size, seed, res.Spec.Config, plan, cycles, res.Stats, res.Sampled, res.Wall, res.Err)
}

// RunResult rehydrates the envelope into the executor's result type for
// the given spec, so renderers read stored results exactly as they read
// fresh ones. The returned statistics are deep clones: callers can never
// mutate the stored envelope through them.
func (r *Result) RunResult(spec experiments.RunSpec) *experiments.RunResult {
	rr := &experiments.RunResult{
		Spec: spec,
		Wall: time.Duration(r.WallMS * float64(time.Millisecond)),
	}
	if r.Error != "" {
		rr.Err = fmt.Errorf("%s", r.Error)
		return rr
	}
	if r.Stats != nil {
		rr.Stats = r.Stats.Clone()
	}
	if r.Sampled != nil {
		smp := *r.Sampled
		smp.Intervals = append([]stats.Interval(nil), r.Sampled.Intervals...)
		rr.Sampled = &smp
	}
	return rr
}
