package service

// Tests for the concurrent job server: many clients hammering one server
// under -race, byte-identity of every report against serial execution,
// cross-job singleflight proven by the coalesced counters, fake-clock job
// timeouts that other in-flight jobs cannot stretch, queue-full backoff,
// and restart requeue ordering. Interleavings are pinned by polling
// scheduler.stats(), never by sleeping and hoping.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gpummu/internal/campaign"
	"gpummu/internal/experiments"
)

// waitForJob polls the manifest until the job reaches a terminal state.
func waitForJob(t *testing.T, srv *Server, id string) *Job {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		j, ok := srv.Manifest().Job(id)
		if ok {
			switch j.State {
			case StateDone, StateFailed, StateTimeout:
				return j
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished: %+v", id, j)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerConcurrentClientsByteIdentity is the hammer test: three
// clients submit the same campaign to a server running three jobs over a
// two-slot budget. Every report must be byte-identical to a direct serial
// harness run, the three jobs together must simulate each unique spec
// exactly once, and the overlap must be visible as coalesced flights.
func TestServerConcurrentClientsByteIdentity(t *testing.T) {
	doc := `apiVersion: gpummu/v1
name: fig2-tiny-test
machine: small
workloads:
  names: [pointerchase, kmeans]
  size: tiny
figures: [fig2]
`
	camp, err := campaign.Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	opt, err := camp.HarnessOptions()
	if err != nil {
		t.Fatal(err)
	}
	figs, err := camp.ExpandFigures()
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	if err := experiments.RunFigures(experiments.New(&want, opt), figs); err != nil {
		t.Fatal(err)
	}

	srv, err := NewServer(Options{Jobs: 3, Workers: 2, Slots: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Hold both simulation slots so every job parks at a known point: the
	// first job's two workers become flight winners blocked on a slot, the
	// other two jobs' workers pile onto those flights as waiters.
	ctx := context.Background()
	if err := srv.sched.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := srv.sched.acquire(ctx); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	ids := make([]string, 3)
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			job, err := NewClient(ts.URL).SubmitCampaign([]byte(doc))
			if err != nil {
				t.Error(err)
				return
			}
			ids[i] = job.ID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	waitFor(t, "all three jobs parked on two flights", func() bool {
		flights, flightWaiters, _, slotWaiters := srv.sched.stats()
		return flights == 2 && flightWaiters == 4 && slotWaiters == 2
	})

	// The pinned state must be visible to operators through /v1/healthz.
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		OK        bool `json:"ok"`
		Runners   int  `json:"runners"`
		Scheduler struct {
			Slots         int `json:"slots"`
			BusySlots     int `json:"busySlots"`
			SlotWaiters   int `json:"slotWaiters"`
			Flights       int `json:"flights"`
			FlightWaiters int `json:"flightWaiters"`
		} `json:"scheduler"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !health.OK || health.Runners != 3 || health.Scheduler.Slots != 2 ||
		health.Scheduler.BusySlots != 2 || health.Scheduler.SlotWaiters != 2 ||
		health.Scheduler.Flights != 2 || health.Scheduler.FlightWaiters != 4 {
		t.Fatalf("healthz under load: %+v", health)
	}

	srv.sched.release()
	srv.sched.release()

	var simulated, fromStore, coalesced int
	var total int
	for _, id := range ids {
		j := waitForJob(t, srv, id)
		if j.State != StateDone {
			t.Fatalf("job %s finished %s: %s", id, j.State, j.Error)
		}
		if total == 0 {
			total = j.Total
		}
		if j.Total != total {
			t.Fatalf("job %s total %d, others %d", id, j.Total, total)
		}
		if got := j.Simulated + j.FromStore + j.Coalesced; got != j.Total {
			t.Fatalf("job %s counters don't add up: %d+%d+%d != %d",
				id, j.Simulated, j.FromStore, j.Coalesced, j.Total)
		}
		simulated += j.Simulated
		fromStore += j.FromStore
		coalesced += j.Coalesced
		report, err := NewClient(ts.URL).Report(id)
		if err != nil {
			t.Fatal(err)
		}
		if string(report) != want.String() {
			t.Fatalf("job %s report differs from serial harness run", id)
		}
	}
	// Three identical jobs, one simulation per unique spec — globally.
	if simulated != total {
		t.Fatalf("unique specs simulated %d times, want %d (fromStore %d coalesced %d)",
			simulated, total, fromStore, coalesced)
	}
	// The four pinned flight waiters all adopted a winner's run.
	if coalesced < 4 {
		t.Fatalf("coalesced = %d, want >= 4", coalesced)
	}
}

// TestJobTimeoutUnderConcurrency: a job's -jobtimeout budget keeps
// running while other jobs hold every simulation slot — a starved job
// times out on its own clock instead of borrowing everyone else's, lands
// in state timeout with nothing simulated, and its aborted flight is not
// adopted by a later identical job.
func TestJobTimeoutUnderConcurrency(t *testing.T) {
	fc := newFakeClock(time.Now())
	srv, err := NewServer(Options{Jobs: 2, Workers: 1, Slots: 1, JobTimeout: time.Minute, clk: fc})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL)

	// Another job owns the only slot for the duration.
	if err := srv.sched.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	req := SubmitRequest{Workloads: []string{"pointerchase"}, Size: "tiny", Seed: 1, Machine: "small"}
	job, err := c.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "starved job to wait for a slot", func() bool {
		_, _, _, slotWaiters := srv.sched.stats()
		return slotWaiters >= 1
	})

	fc.Advance(2 * time.Minute)
	got := waitForJob(t, srv, job.ID)
	if got.State != StateTimeout {
		t.Fatalf("starved job finished %s (%s), want timeout", got.State, got.Error)
	}
	if got.Simulated != 0 || got.FromStore != 0 || got.Coalesced != 0 {
		t.Fatalf("timed-out job counted work: %d/%d/%d", got.Simulated, got.FromStore, got.Coalesced)
	}

	// Free the slot: the same submission must now run fresh — the aborted
	// flight left no debris in the store or the flight table.
	srv.sched.release()
	job2, err := c.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	got2 := waitForJob(t, srv, job2.ID)
	if got2.State != StateDone {
		t.Fatalf("resubmission finished %s: %s", got2.State, got2.Error)
	}
	if got2.Simulated != 1 || got2.FromStore != 0 {
		t.Fatalf("resubmission counters %d/%d, want 1/0 (aborted run must not be cached)",
			got2.Simulated, got2.FromStore)
	}
}

// TestServerQueueFullRetryAfter: a full job queue rejects the submission
// with 503 plus a Retry-After hint the client surfaces as a typed
// QueueFullError, while already-queued jobs are unaffected.
func TestServerQueueFullRetryAfter(t *testing.T) {
	srv, err := NewServer(Options{Jobs: 1, Workers: 1, Slots: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL)

	// Park job A on the held slot so the single runner stays busy.
	if err := srv.sched.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	req := SubmitRequest{Workloads: []string{"pointerchase"}, Size: "tiny", Seed: 1, Machine: "small"}
	a, err := c.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job A to occupy the runner", func() bool {
		_, _, _, slotWaiters := srv.sched.stats()
		return slotWaiters >= 1
	})
	b, err := c.Submit(req) // fills the depth-1 queue
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Submit(req) // overflows it
	var qf *QueueFullError
	if !errors.As(err, &qf) {
		t.Fatalf("overflow submission returned %v, want *QueueFullError", err)
	}
	if qf.RetryAfter != time.Second {
		t.Fatalf("RetryAfter = %v, want 1s", qf.RetryAfter)
	}

	srv.sched.release()
	if j := waitForJob(t, srv, a.ID); j.State != StateDone {
		t.Fatalf("job A finished %s: %s", j.State, j.Error)
	}
	if j := waitForJob(t, srv, b.ID); j.State != StateDone {
		t.Fatalf("queued job B finished %s: %s", j.State, j.Error)
	}
}

// TestServerRestartRequeueOrder: pending jobs left by a dead server are
// re-executed in their original submission order. Three identical jobs
// prove it through the dedup counters — only the first may simulate, the
// rest must be served from the store the first one filled.
func TestServerRestartRequeueOrder(t *testing.T) {
	dir := t.TempDir()
	man, err := OpenManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	doc := adhocDoc(t, "pointerchase")
	for i := 0; i < 3; i++ {
		if _, err := man.NewJob("run", "order-test", doc); err != nil {
			t.Fatal(err)
		}
	}
	man.Close()

	srv, err := NewServer(Options{Dir: dir, Jobs: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for i, id := range []string{"j1", "j2", "j3"} {
		j := waitForJob(t, srv, id)
		if j.State != StateDone {
			t.Fatalf("%s finished %s: %s", id, j.State, j.Error)
		}
		if i == 0 {
			if j.Simulated != 1 || j.FromStore != 0 {
				t.Fatalf("first requeued job counters %d/%d, want 1/0 — it did not run first",
					j.Simulated, j.FromStore)
			}
			continue
		}
		if j.Simulated != 0 || j.FromStore != 1 {
			t.Fatalf("%s counters %d/%d, want 0/1 — submission order not preserved",
				id, j.Simulated, j.FromStore)
		}
	}
}

// TestManifestInterleavedReplay: a journal whose records interleave many
// jobs — with a foreign line, a blank line, and a crash-torn tail mixed
// in — replays to last-record-per-job state, requeues in submission
// order, and never reuses an ID.
func TestManifestInterleavedReplay(t *testing.T) {
	dir := t.TempDir()
	journal := strings.Join([]string{
		`{"id":"j1","state":"pending","kind":"run","name":"a"}`,
		`{"id":"j2","state":"pending","kind":"run","name":"b"}`,
		`{"id":"j1","state":"running"}`,
		`{"id":"j3","state":"pending","kind":"run","name":"c"}`,
		``, // blank line: skipped
		`{"id":"j2","state":"running"}`,
		`{"id":"j4","state":"pending","kind":"run","name":"d"}`,
		`{"id":"j1","state":"done","simulated":3}`,
		`{"not":"a job record"}`, // foreign line: skipped
		`{"id":"j4","state":"running"}`,
		`{"id":"j2","state":"done","simulated":1,"fromStore":2}`,
		`{"id":"j5","state":"pen`, // torn tail: dropped
	}, "\n") + "\n"
	if err := os.WriteFile(filepath.Join(dir, "manifest.jsonl"), []byte(journal), 0o644); err != nil {
		t.Fatal(err)
	}

	m, err := OpenManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for id, want := range map[string]string{
		"j1": StateDone,
		"j2": StateDone,
		"j3": StatePending,
		"j4": StatePending, // interrupted mid-run: requeued
	} {
		j, ok := m.Job(id)
		if !ok || j.State != want {
			t.Fatalf("%s replayed to %+v, want state %s", id, j, want)
		}
	}
	if j, _ := m.Job("j2"); j.Simulated != 1 || j.FromStore != 2 {
		t.Fatalf("j2 lost its final counters: %+v", j)
	}
	if _, ok := m.Job("j5"); ok {
		t.Fatal("torn tail record replayed")
	}
	// Requeue order follows submission (ID) order even though j4's records
	// landed in the journal before j3 went back to pending.
	if ids := m.Resumable(); len(ids) != 2 || ids[0] != "j3" || ids[1] != "j4" {
		t.Fatalf("resumable = %v, want [j3 j4]", ids)
	}
	// The torn j5 line must not burn its ID slot deterministically either
	// way — what matters is no collision with replayed jobs.
	j, err := m.NewJob("run", "e", "doc")
	if err != nil {
		t.Fatal(err)
	}
	for _, used := range []string{"j1", "j2", "j3", "j4"} {
		if j.ID == used {
			t.Fatalf("new job reused replayed ID %s", used)
		}
	}
}

// TestFileStoreTornTailConcurrentWriter: a store that recovered from a
// crash-torn tail keeps its invariants under concurrent writers and
// readers, and the next open sees a clean journal — the tear was
// truncated away, not left to rot mid-file.
func TestFileStoreTornTailConcurrentWriter(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Put(&Result{Schema: ResultSchema, Key: fmt.Sprintf("seed%d", i), Workload: "w"}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	seg := filepath.Join(dir, "results-000001.jsonl")
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"schema":"gpummu.result/v1","key":"torn","cyc`)
	f.Close()

	s2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Skipped() != 1 || s2.Len() != 3 {
		t.Fatalf("recovery: skipped=%d len=%d, want 1/3", s2.Skipped(), s2.Len())
	}

	// Hammer the recovered store: 8 writers appending disjoint keys while
	// 4 readers Get/List/Len concurrently (the -race payoff).
	const writers, perWriter, readers = 8, 25, 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r := &Result{Schema: ResultSchema, Key: fmt.Sprintf("w%d-%d", w, i), Workload: "w"}
				if err := s2.Put(r); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := s2.Get("seed1"); err != nil {
					t.Error(err)
					return
				}
				if _, err := s2.List(); err != nil {
					t.Error(err)
					return
				}
				s2.Len()
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// Writers finish fast; give readers their stop once writes are in.
	waitFor(t, "all writes indexed", func() bool { return s2.Len() == 3+writers*perWriter })
	close(stop)
	<-done
	if t.Failed() {
		t.FailNow()
	}
	s2.Close()

	// Third open: the torn line was truncated at recovery, so this journal
	// replays clean — nothing skipped, nothing lost.
	s3, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Skipped() != 0 {
		t.Fatalf("torn tail survived recovery: skipped=%d", s3.Skipped())
	}
	if s3.Len() != 3+writers*perWriter {
		t.Fatalf("len after reopen = %d, want %d", s3.Len(), 3+writers*perWriter)
	}
	if _, ok, _ := s3.Get("torn"); ok {
		t.Fatal("torn record resurrected")
	}
	if _, ok, _ := s3.Get(fmt.Sprintf("w%d-%d", writers-1, perWriter-1)); !ok {
		t.Fatal("concurrent write lost across reopen")
	}
}

// TestServerEndpointsAndEvents walks the read-side API a finished job
// leaves behind: job listing, result queries by key and workload,
// compare, best, and the SSE event stream (which must emit the terminal
// state immediately and close).
func TestServerEndpointsAndEvents(t *testing.T) {
	srv, err := NewServer(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL)

	job, err := c.Submit(SubmitRequest{Workloads: []string{"pointerchase", "kmeans"}, Size: "tiny", Seed: 1, Machine: "small"})
	if err != nil {
		t.Fatal(err)
	}
	if j := waitForJob(t, srv, job.ID); j.State != StateDone {
		t.Fatalf("job finished %s: %s", j.State, j.Error)
	}

	jobs, err := c.Jobs()
	if err != nil || len(jobs) != 1 || jobs[0].ID != job.ID {
		t.Fatalf("Jobs() = %v, %v", jobs, err)
	}
	all, err := c.Results("")
	if err != nil || len(all) != 2 {
		t.Fatalf("Results(\"\") = %d results, %v", len(all), err)
	}
	pc, err := c.Results("pointerchase")
	if err != nil || len(pc) != 1 || pc[0].Workload != "pointerchase" {
		t.Fatalf("Results(pointerchase) = %v, %v", pc, err)
	}
	one, err := c.Result(all[0].Key)
	if err != nil || one.Key != all[0].Key {
		t.Fatalf("Result(%q) = %v, %v", all[0].Key, one, err)
	}
	cmp, err := c.Compare(all[1].Key, all[0].Key)
	if err != nil || len(cmp) != 2 || cmp[0].Key != all[1].Key || cmp[1].Key != all[0].Key {
		t.Fatalf("Compare out of order: %v, %v", cmp, err)
	}
	best, val, err := c.Best("pointerchase", "cycles")
	if err != nil || best == nil || val <= 0 {
		t.Fatalf("Best(cycles) = %v, %v, %v", best, val, err)
	}
	if _, _, err := c.Best("pointerchase", "ipc"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Result("no-such-key"); err == nil {
		t.Error("missing key fetched")
	}
	if _, _, err := c.Best("pointerchase", "bogus"); err == nil {
		t.Error("bogus metric accepted")
	}

	// SSE on a finished job: one terminal state event, then EOF.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "event: state") ||
		!strings.Contains(string(body), `"state":"done"`) {
		t.Fatalf("event stream missing terminal state:\n%s", body)
	}
	resp2, err := http.Get(ts.URL + "/v1/jobs/nope/events")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("events for unknown job: HTTP %d", resp2.StatusCode)
	}
}
