// The Go consumer of the /v1 API: everything the gpusim
// submit/status/results/compare/recommend subcommands do goes through
// Client, so scripts embedding the simulator talk to a shared gpusimd the
// same way the CLI does.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Client talks to a gpusimd server.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP overrides the transport; nil uses http.DefaultClient.
	HTTP *http.Client
}

// NewClient returns a client for the server at base.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// QueueFullError is the typed rejection a full job queue returns:
// RetryAfter carries the server's Retry-After hint, so clients can back
// off for exactly as long as the server suggests instead of guessing.
// Detect it with errors.As.
type QueueFullError struct {
	Message    string
	RetryAfter time.Duration
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("service: %s (retry after %v)", e.Message, e.RetryAfter)
}

// do issues one request and decodes the JSON response into out (skipped
// when out is nil). Non-2xx responses return the server's error message;
// a 503 with a Retry-After header becomes a *QueueFullError.
func (c *Client) do(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("service: encoding request: %w", err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.Base+path, rd)
	if err != nil {
		return fmt.Errorf("service: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return fmt.Errorf("service: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("service: reading response: %w", err)
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		msg := fmt.Sprintf("HTTP %d", resp.StatusCode)
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				if secs, err := strconv.Atoi(ra); err == nil {
					return &QueueFullError{Message: msg, RetryAfter: time.Duration(secs) * time.Second}
				}
			}
		}
		return fmt.Errorf("service: %s %s: %s", method, path, msg)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("service: decoding response: %w", err)
	}
	return nil
}

// Submit posts one job submission.
func (c *Client) Submit(req SubmitRequest) (*Job, error) {
	var j Job
	if err := c.do(http.MethodPost, "/v1/jobs", req, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// SubmitCampaign posts a campaign document (YAML or JSON).
func (c *Client) SubmitCampaign(doc []byte) (*Job, error) {
	return c.Submit(SubmitRequest{Campaign: string(doc)})
}

// Job fetches one job's current state.
func (c *Client) Job(id string) (*Job, error) {
	var j Job
	if err := c.do(http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Jobs lists every job the server knows, oldest first.
func (c *Client) Jobs() ([]*Job, error) {
	var out struct {
		Jobs []*Job `json:"jobs"`
	}
	if err := c.do(http.MethodGet, "/v1/jobs", nil, &out); err != nil {
		return nil, err
	}
	return out.Jobs, nil
}

// Wait polls until the job reaches a terminal state (done, failed,
// timeout) and returns its final snapshot. poll <= 0 defaults to 200ms.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*Job, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		j, err := c.Job(id)
		if err != nil {
			return nil, err
		}
		switch j.State {
		case StateDone, StateFailed, StateTimeout:
			return j, nil
		}
		select {
		case <-ctx.Done():
			return j, ctx.Err()
		case <-t.C:
		}
	}
}

// Report fetches a finished job's rendered report.
func (c *Client) Report(id string) ([]byte, error) {
	resp, err := c.http().Get(c.Base + "/v1/jobs/" + url.PathEscape(id) + "/report")
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("service: reading report: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return nil, fmt.Errorf("service: report: %s", e.Error)
		}
		return nil, fmt.Errorf("service: report: HTTP %d", resp.StatusCode)
	}
	return data, nil
}

// Result fetches the stored envelope for one exact key.
func (c *Client) Result(key string) (*Result, error) {
	var r Result
	if err := c.do(http.MethodGet, "/v1/results?key="+url.QueryEscape(key), nil, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// Results lists stored envelopes, optionally filtered to one workload.
func (c *Client) Results(workload string) ([]*Result, error) {
	path := "/v1/results"
	if workload != "" {
		path += "?workload=" + url.QueryEscape(workload)
	}
	var out struct {
		Results []*Result `json:"results"`
	}
	if err := c.do(http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return out.Results, nil
}

// Compare fetches the envelopes for the given keys, in order, failing if
// any is missing.
func (c *Client) Compare(keys ...string) ([]*Result, error) {
	q := url.Values{}
	for _, k := range keys {
		q.Add("key", k)
	}
	var out struct {
		Results []*Result `json:"results"`
	}
	if err := c.do(http.MethodGet, "/v1/compare?"+q.Encode(), nil, &out); err != nil {
		return nil, err
	}
	return out.Results, nil
}

// Best asks the server for the stored configuration optimising metric
// ("cycles", "ipc", "tlbmissrate") for one workload.
func (c *Client) Best(workload, metric string) (*Result, float64, error) {
	q := url.Values{"workload": {workload}}
	if metric != "" {
		q.Set("metric", metric)
	}
	var out struct {
		Metric string  `json:"metric"`
		Value  float64 `json:"value"`
		Result *Result `json:"result"`
	}
	if err := c.do(http.MethodGet, "/v1/best?"+q.Encode(), nil, &out); err != nil {
		return nil, 0, err
	}
	return out.Result, out.Value, nil
}
