// The concurrent job scheduler's shared machinery: a global
// simulation-slot budget and a singleflight table for identical in-flight
// runs. The server runs -jobs runner goroutines, each executing one job's
// campaign through the experiments pipeline; every individual simulation
// any of them starts must first pass through here, so
//
//   - at most `slots` simulations ever run at once, no matter how many
//     jobs are in flight or how wide each job's own -j pool is
//     (jobs × run.workers never oversubscribes the host), and
//   - two jobs needing the same Result Key while neither has finished it
//     share one simulation: the first becomes the flight's winner and
//     simulates, the rest wait and adopt the winner's result (counted as
//     `coalesced` in their manifests). The durable store only dedups
//     *completed* work; the flight table dedups work *in progress*.
//
// A flight whose winner was aborted (job timeout or cancellation) is not
// adopted: the winner's deadline is not the waiter's, so the waiter
// retries and becomes the new winner. Deterministic simulation failures
// are adopted — rerunning the same spec would fail identically.
package service

import (
	"context"
	"errors"
	"sync"
	"time"

	"gpummu/internal/experiments"
	"gpummu/internal/obs"
)

// clock abstracts the scheduler's time source so tests drive job timeouts
// deterministically with a fake clock instead of sleeping.
type clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that receives once d has elapsed, plus a stop
	// function releasing the timer early.
	After(d time.Duration) (<-chan time.Time, func())
}

// realClock is the production clock.
type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) After(d time.Duration) (<-chan time.Time, func()) {
	t := time.NewTimer(d)
	return t.C, func() { t.Stop() }
}

// flight is one in-progress simulation other jobs can coalesce onto.
type flight struct {
	done    chan struct{}
	res     *experiments.RunResult
	waiters int
}

// scheduler owns the global slot budget and the flight table. One
// scheduler is shared by every runner goroutine of a server.
type scheduler struct {
	slots chan struct{}

	mu          sync.Mutex
	flights     map[string]*flight
	slotWaiters int
}

// newScheduler returns a scheduler with the given simulation-slot budget
// (minimum 1).
func newScheduler(slots int) *scheduler {
	if slots < 1 {
		slots = 1
	}
	return &scheduler{
		slots:   make(chan struct{}, slots),
		flights: make(map[string]*flight),
	}
}

// acquire blocks until a simulation slot is free or ctx is done.
func (s *scheduler) acquire(ctx context.Context) error {
	select {
	case s.slots <- struct{}{}: // fast path: a slot is free right now
		return nil
	default:
	}
	s.mu.Lock()
	s.slotWaiters++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.slotWaiters--
		s.mu.Unlock()
	}()
	select {
	case s.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns a slot taken by acquire.
func (s *scheduler) release() { <-s.slots }

// aborted reports whether res is the debris of a cancelled or timed-out
// run rather than a deterministic outcome: such results must not be
// adopted by other jobs (the winner's budget is not theirs).
func aborted(res *experiments.RunResult) bool {
	if res == nil {
		return true
	}
	return errors.Is(res.Err, obs.ErrDeadline) ||
		errors.Is(res.Err, context.Canceled) ||
		errors.Is(res.Err, context.DeadlineExceeded)
}

// do runs fn under singleflight for key. The first caller for a key is
// the winner and executes fn; concurrent callers with the same key block
// until the winner finishes and adopt its result with coalesced=true.
// If the winner's result was aborted (see aborted), a waiter retries and
// becomes the new winner instead of adopting the debris. A non-nil error
// means ctx expired while waiting and nothing was adopted.
func (s *scheduler) do(ctx context.Context, key string, fn func() *experiments.RunResult) (res *experiments.RunResult, coalesced bool, err error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		s.mu.Lock()
		if f, ok := s.flights[key]; ok {
			f.waiters++
			s.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				s.mu.Lock()
				f.waiters--
				s.mu.Unlock()
				return nil, false, ctx.Err()
			}
			s.mu.Lock()
			f.waiters--
			s.mu.Unlock()
			if aborted(f.res) {
				continue // the winner was cancelled, not the simulation: retry
			}
			return f.res, true, nil
		}
		f := &flight{done: make(chan struct{})}
		s.flights[key] = f
		s.mu.Unlock()

		f.res = fn()
		s.mu.Lock()
		delete(s.flights, key)
		s.mu.Unlock()
		close(f.done)
		return f.res, false, nil
	}
}

// stats reports the scheduler's instantaneous occupancy: flights in
// progress, jobs waiting on those flights, busy simulation slots, and
// jobs waiting for a slot. Tests use it to pin deterministic interleaving
// points; /v1/healthz reports it for operators.
func (s *scheduler) stats() (flights, flightWaiters, busySlots, slotWaiters int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, f := range s.flights {
		flightWaiters += f.waiters
	}
	return len(s.flights), flightWaiters, len(s.slots), s.slotWaiters
}
