// The durable result store: an interface (so a SQLite backend can slot in
// if a pure-Go driver ever lands in the build image) over two
// implementations — an in-memory map for ephemeral servers and tests, and
// a dependency-free append-only JSONL segment store with an in-memory
// index, modelled on log-structured stores: every Put appends one
// envelope line to the active segment, segments rotate at a size
// threshold, and opening a store replays the segments in order to rebuild
// the index. Keys are write-once (the envelope is a pure function of its
// Key), so replay order only matters for crash-truncated tails, which are
// skipped.
package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Store is the durable result store. Implementations are safe for
// concurrent use; Put is write-once per Key (later writes are dropped), so
// a stored Result never changes and readers need no copies.
type Store interface {
	// Get returns the stored result for key, if present.
	Get(key string) (*Result, bool, error)
	// Put persists a result. The first write for a key wins; results
	// carrying an Error are rejected (failures are manifest state, not
	// results).
	Put(r *Result) error
	// List returns every stored result sorted by Key.
	List() ([]*Result, error)
	// Len returns the number of stored results.
	Len() int
	// Close releases the store's resources.
	Close() error
}

// errFailedResult guards the store invariant that only successful runs are
// persisted: a failure must be retried, not cached forever.
var errFailedResult = fmt.Errorf("service: refusing to store a failed result")

// MemStore is the in-memory Store: results die with the process. It backs
// tests and `gpusimd -store ""` (an explicitly ephemeral server).
type MemStore struct {
	mu sync.RWMutex
	m  map[string]*Result
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{m: make(map[string]*Result)} }

// Get implements Store.
func (s *MemStore) Get(key string) (*Result, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.m[key]
	return r, ok, nil
}

// Put implements Store.
func (s *MemStore) Put(r *Result) error {
	if r.Error != "" {
		return errFailedResult
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.m[r.Key]; dup {
		return nil
	}
	s.m[r.Key] = r
	return nil
}

// List implements Store.
func (s *MemStore) List() ([]*Result, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Result, 0, len(s.m))
	for _, r := range s.m {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// Len implements Store.
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// Close implements Store.
func (s *MemStore) Close() error { return nil }

// segmentMaxBytes is the rotation threshold for FileStore segments: big
// enough that a full design-space sweep fits in a handful of files, small
// enough that replaying one truncated tail costs little.
const segmentMaxBytes = 8 << 20

// FileStore is the durable JSONL segment store. Layout under its
// directory:
//
//	results-000001.jsonl    one envelope per line, append-only
//	results-000002.jsonl    ...rotated at segmentMaxBytes...
//
// The in-memory index maps Key → envelope; opening a store replays every
// segment in sequence order. A line that fails to parse is tolerated only
// at the tail of the final segment (a crash mid-append); anywhere else it
// is corruption and opening fails loudly.
type FileStore struct {
	mu      sync.RWMutex
	dir     string
	idx     map[string]*Result
	active  *os.File
	size    int64
	seq     int
	skipped int   // crash-truncated tail lines dropped at open
	truncTo int64 // byte offset the final segment is cut back to (-1: intact)
}

// OpenFileStore opens (creating if needed) the segment store in dir.
func OpenFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: store dir: %w", err)
	}
	s := &FileStore{dir: dir, idx: make(map[string]*Result), truncTo: -1}
	names, err := s.segmentNames()
	if err != nil {
		return nil, err
	}
	for i, name := range names {
		last := i == len(names)-1
		if err := s.replaySegment(name, last); err != nil {
			return nil, err
		}
	}
	if len(names) > 0 {
		fmt.Sscanf(names[len(names)-1], "results-%06d.jsonl", &s.seq)
		if s.truncTo >= 0 {
			// Cut the crash-torn tail off before appending: left in
			// place it would merge with (or sit as garbage before) the
			// next record and turn into mid-file corruption on the
			// following open.
			p := filepath.Join(s.dir, names[len(names)-1])
			if err := os.Truncate(p, s.truncTo); err != nil {
				return nil, fmt.Errorf("service: truncating torn tail of %s: %w", names[len(names)-1], err)
			}
		}
	} else {
		s.seq = 1
	}
	if err := s.openActive(); err != nil {
		return nil, err
	}
	return s, nil
}

// segmentNames lists the store's segment files in sequence order.
func (s *FileStore) segmentNames() ([]string, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("service: store dir: %w", err)
	}
	var names []string
	for _, e := range ents {
		var n int
		if !e.IsDir() && len(e.Name()) == len("results-000000.jsonl") {
			if _, err := fmt.Sscanf(e.Name(), "results-%06d.jsonl", &n); err == nil {
				names = append(names, e.Name())
			}
		}
	}
	sort.Strings(names)
	return names, nil
}

// replaySegment loads one segment into the index. tolerateTail permits a
// single unparseable final line (crash truncation) on the last segment;
// the torn line's start offset is recorded so openActive can cut it off
// before new records append.
func (s *FileStore) replaySegment(name string, tolerateTail bool) error {
	f, err := os.Open(filepath.Join(s.dir, name))
	if err != nil {
		return fmt.Errorf("service: segment %s: %w", name, err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	lineNo := 0
	var off, pendingOff int64
	var pendingErr error
	for sc.Scan() {
		lineNo++
		if pendingErr != nil {
			// The bad line was not the tail after all.
			return pendingErr
		}
		line := sc.Bytes()
		lineStart := off
		off += int64(len(line)) + 1
		if len(line) == 0 {
			continue
		}
		var r Result
		if err := json.Unmarshal(line, &r); err != nil || r.Schema != ResultSchema || r.Key == "" {
			if err == nil {
				err = fmt.Errorf("schema %q", r.Schema)
			}
			pendingErr = fmt.Errorf("service: segment %s line %d: %w", name, lineNo, err)
			pendingOff = lineStart
			continue
		}
		if _, dup := s.idx[r.Key]; !dup {
			rr := r
			s.idx[r.Key] = &rr
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("service: segment %s: %w", name, err)
	}
	if pendingErr != nil {
		if !tolerateTail {
			return pendingErr
		}
		s.skipped++
		s.truncTo = pendingOff
	}
	return nil
}

// openActive opens the current sequence's segment for appending. A
// segment whose last byte is not a newline (a crash mid-append) is sealed
// with one first, so the torn line stays torn instead of merging with the
// next record.
func (s *FileStore) openActive() error {
	name := fmt.Sprintf("results-%06d.jsonl", s.seq)
	f, err := os.OpenFile(filepath.Join(s.dir, name), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("service: segment %s: %w", name, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("service: segment %s: %w", name, err)
	}
	size := st.Size()
	if size > 0 {
		var last [1]byte
		if _, err := f.ReadAt(last[:], size-1); err != nil {
			f.Close()
			return fmt.Errorf("service: segment %s: %w", name, err)
		}
		if last[0] != '\n' {
			if _, err := f.Write([]byte{'\n'}); err != nil {
				f.Close()
				return fmt.Errorf("service: sealing segment %s: %w", name, err)
			}
			size++
		}
	}
	s.active, s.size = f, size
	return nil
}

// Get implements Store.
func (s *FileStore) Get(key string) (*Result, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.idx[key]
	return r, ok, nil
}

// Put implements Store: marshal, append, sync, index. Sync per result is
// cheap next to the simulation that produced it and makes a completed
// result durable before the manifest can reference it.
func (s *FileStore) Put(r *Result) error {
	if r.Error != "" {
		return errFailedResult
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.idx[r.Key]; dup {
		return nil
	}
	line, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("service: encoding result: %w", err)
	}
	line = append(line, '\n')
	if s.size+int64(len(line)) > segmentMaxBytes && s.size > 0 {
		if err := s.active.Close(); err != nil {
			return fmt.Errorf("service: rotating segment: %w", err)
		}
		s.seq++
		if err := s.openActive(); err != nil {
			return err
		}
	}
	if _, err := s.active.Write(line); err != nil {
		return fmt.Errorf("service: appending result: %w", err)
	}
	if err := s.active.Sync(); err != nil {
		return fmt.Errorf("service: syncing segment: %w", err)
	}
	s.size += int64(len(line))
	s.idx[r.Key] = r
	return nil
}

// List implements Store.
func (s *FileStore) List() ([]*Result, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Result, 0, len(s.idx))
	for _, r := range s.idx {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// Len implements Store.
func (s *FileStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.idx)
}

// Skipped reports crash-truncated tail lines dropped when the store was
// opened (diagnostics; the results they held re-simulate on demand).
func (s *FileStore) Skipped() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.skipped
}

// Close implements Store.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active == nil {
		return nil
	}
	err := s.active.Close()
	s.active = nil
	return err
}
