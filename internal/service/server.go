// The /v1 HTTP surface and the job runners behind it. A Server owns a
// durable Store, a journalled Manifest, a shared scheduler, and -jobs
// runner goroutines: POST /v1/jobs validates the submission into a
// canonical campaign document and enqueues it; a runner expands the
// campaign through the existing campaign → experiments pipeline with a
// store-backed Results implementation, so every simulation the store
// already holds is served instead of recomputed — across jobs, across
// clients, and across server restarts. Jobs run concurrently, but every
// simulation they start is gated on one global slot budget and identical
// in-flight specs are coalesced across jobs (scheduler.go), so reports
// stay byte-identical to serial execution. Progress ticks fan out to SSE
// subscribers through obs.Funnel without ever blocking a simulation.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"gpummu/internal/campaign"
	"gpummu/internal/experiments"
	"gpummu/internal/gpu"
	"gpummu/internal/obs"
	"gpummu/internal/workloads"
)

// Options configures a Server.
type Options struct {
	// Dir is the server's state directory (durable store segments, the
	// manifest journal, rendered reports). "" runs fully in memory.
	Dir string
	// Workers is the default -j worker pool for campaigns that leave
	// run.workers unset; 0 defers to GOMAXPROCS.
	Workers int
	// CoreWorkers is the default -par for campaigns that leave run.par at
	// its default; 0/1 tick cores serially. Output is identical either way.
	CoreWorkers int
	// JobTimeout bounds each job's wall clock when the campaign declares no
	// obs.deadline of its own; an overrun fails the job with state
	// "timeout". The budget is enforced even while the job is starved of
	// simulation slots by other in-flight jobs. 0 leaves jobs unbounded.
	JobTimeout time.Duration
	// QueueDepth bounds the pending-job queue (default 256). A full queue
	// rejects submissions with 503 plus a Retry-After header instead of
	// blocking the handler.
	QueueDepth int
	// Jobs is how many jobs execute concurrently (the -jobs flag); 0 picks
	// a GOMAXPROCS-aware default (capped at 4). Whatever the value, total
	// concurrent simulations never exceed the slot budget below.
	Jobs int
	// Slots is the global simulation-slot budget shared by every in-flight
	// job, so jobs × run.workers never oversubscribes the host; 0 defers
	// to the resolved Workers value. Reports stay byte-identical for any
	// Jobs/Slots combination.
	Slots int

	// clk substitutes the scheduler's time source (tests); nil uses the
	// real clock.
	clk clock
}

// jobs resolves the concurrent-job count.
func (o Options) jobs() int {
	if o.Jobs > 0 {
		return o.Jobs
	}
	n := runtime.GOMAXPROCS(0)
	if n > 4 {
		n = 4
	}
	if n < 1 {
		n = 1
	}
	return n
}

// slots resolves the global simulation-slot budget.
func (o Options) slots() int {
	if o.Slots > 0 {
		return o.Slots
	}
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Server is the gpusimd job server: an http.Handler plus -jobs runner
// goroutines executing queued jobs concurrently. Each job parallelises
// internally across its campaign's -j workers, but every simulation any
// job starts is gated on one shared slot budget, and identical in-flight
// specs are coalesced across jobs (scheduler.go).
type Server struct {
	opt      Options
	store    Store
	manifest *Manifest
	funnel   *obs.Funnel
	sched    *scheduler
	clock    clock
	mux      *http.ServeMux
	queue    chan string
	done     chan struct{}
	wg       sync.WaitGroup

	mu      sync.Mutex
	reports map[string][]byte // memory-mode reports (Dir == "")
}

// NewServer opens the server state in opt.Dir (creating it if needed),
// requeues any jobs a previous process left unfinished — in their
// original submission order — and starts the runner pool. Close drains
// everything.
func NewServer(opt Options) (*Server, error) {
	if opt.QueueDepth <= 0 {
		opt.QueueDepth = 256
	}
	var store Store
	var err error
	if opt.Dir == "" {
		store = NewMemStore()
	} else if store, err = OpenFileStore(filepath.Join(opt.Dir, "store")); err != nil {
		return nil, err
	}
	manifest, err := OpenManifest(opt.Dir)
	if err != nil {
		store.Close()
		return nil, err
	}
	clk := opt.clk
	if clk == nil {
		clk = realClock{}
	}
	// The queue must hold every interrupted job a previous process left
	// behind: dropping one on requeue would strand it pending forever.
	resumable := manifest.Resumable()
	depth := opt.QueueDepth
	if len(resumable) > depth {
		depth = len(resumable)
	}
	s := &Server{
		opt:      opt,
		store:    store,
		manifest: manifest,
		funnel:   obs.NewFunnel(),
		sched:    newScheduler(opt.slots()),
		clock:    clk,
		queue:    make(chan string, depth),
		done:     make(chan struct{}),
		reports:  make(map[string][]byte),
	}
	s.routes()
	// Requeue what the previous process never finished, oldest submission
	// first (Resumable is ordered by job ID): the durable store already
	// holds every simulation those jobs completed, so the re-run only pays
	// for the remainder.
	for _, id := range resumable {
		s.queue <- id
	}
	for i := 0; i < opt.jobs(); i++ {
		s.wg.Add(1)
		go s.runLoop()
	}
	return s, nil
}

// Close gracefully drains the runner pool — each runner finishes the job
// it is executing, queued jobs stay pending for the next process — and
// releases the store and manifest.
func (s *Server) Close() error {
	close(s.done)
	s.wg.Wait()
	err := s.store.Close()
	if merr := s.manifest.Close(); err == nil {
		err = merr
	}
	return err
}

// Store exposes the server's durable result store (tests, tools).
func (s *Server) Store() Store { return s.store }

// Manifest exposes the server's run manifest (tests, tools).
func (s *Server) Manifest() *Manifest { return s.manifest }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// SubmitRequest is the POST /v1/jobs body: either a full campaign document
// (Campaign, YAML or JSON) or job-shaped fields the server wraps into an
// ad-hoc campaign. The two forms are mutually exclusive.
type SubmitRequest struct {
	// Campaign is a complete campaign document (the same text a -campaign
	// file holds).
	Campaign string `json:"campaign,omitempty"`

	// The ad-hoc form: workloads plus machine, mirroring gpusim flags.
	Name      string         `json:"name,omitempty"`
	Workloads []string       `json:"workloads,omitempty"`
	Size      string         `json:"size,omitempty"`
	Seed      uint64         `json:"seed,omitempty"`
	Machine   string         `json:"machine,omitempty"` // preset: baseline|small
	Set       map[string]any `json:"set,omitempty"`     // dotted config.Hardware overrides

	// Run options (both forms; the ad-hoc form's run block).
	Workers    int    `json:"workers,omitempty"`
	Par        int    `json:"par,omitempty"`
	Checkpoint bool   `json:"checkpoint,omitempty"`
	Sampling   string `json:"sampling,omitempty"` // warmup,detail,fastforward[,warm]
}

// campaign builds the canonical campaign a submission describes.
func (r *SubmitRequest) campaign() (*campaign.Campaign, string, error) {
	adhoc := len(r.Workloads) > 0 || r.Machine != "" || len(r.Set) > 0 ||
		r.Size != "" || r.Seed != 0 || r.Name != ""
	if r.Campaign != "" {
		if adhoc {
			return nil, "", fmt.Errorf("campaign and workload/machine fields are mutually exclusive")
		}
		c, err := campaign.Parse([]byte(r.Campaign))
		if err != nil {
			return nil, "", err
		}
		return c, "campaign", nil
	}
	// The ad-hoc form must name its workloads: defaulting an empty
	// submission to the paper's six would run a large job by accident.
	if len(r.Workloads) == 0 {
		return nil, "", fmt.Errorf("nothing to run: give a campaign document or a workloads list")
	}
	run := campaign.RunOptions{Workers: r.Workers, Par: r.Par, Checkpoint: r.Checkpoint}
	if r.Sampling != "" {
		p, err := gpu.ParseSamplePlan(r.Sampling)
		if err != nil {
			return nil, "", fmt.Errorf("sampling: %w", err)
		}
		run.Sampling = p
	}
	c, err := campaign.NewAdhoc(r.Name, r.Workloads, r.Size, r.Seed, r.Machine, r.Set, run)
	if err != nil {
		return nil, "", err
	}
	return c, "run", nil
}

// routes installs the /v1 endpoints.
func (s *Server) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		flights, flightWaiters, busy, slotWaiters := s.sched.stats()
		writeObj(w, http.StatusOK, map[string]any{
			"ok":      true,
			"jobs":    len(s.manifest.Jobs()),
			"results": s.store.Len(),
			"runners": s.opt.jobs(),
			"queued":  len(s.queue),
			"scheduler": map[string]int{
				"slots":         s.opt.slots(),
				"busySlots":     busy,
				"slotWaiters":   slotWaiters,
				"flights":       flights,
				"flightWaiters": flightWaiters,
			},
		})
	})
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeObj(w, http.StatusOK, map[string]any{"jobs": s.manifest.Jobs()})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.manifest.Job(r.PathValue("id"))
		if !ok {
			writeErr(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
			return
		}
		writeObj(w, http.StatusOK, j)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/results", s.handleResults)
	mux.HandleFunc("GET /v1/compare", s.handleCompare)
	mux.HandleFunc("GET /v1/best", s.handleBest)
	s.mux = mux
}

// handleSubmit validates a submission, journals it as a pending job, and
// enqueues it for the runner.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding submission: %v", err)
		return
	}
	camp, kind, err := req.campaign()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Reports belong to the server's report space, never the campaign's
	// declared path: a client must not steer server-side file writes.
	camp.Output.Report = ""
	job, err := s.manifest.NewJob(kind, camp.Name, string(camp.Emit()))
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	select {
	case s.queue <- job.ID:
	default:
		job, _ = s.manifest.Update(job.ID, func(j *Job) {
			j.State = StateFailed
			j.Error = "job queue full"
		})
		// Retry-After tells well-behaved clients when resubmitting is worth
		// trying: one slot turnover is the soonest the queue can drain.
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		writeErr(w, http.StatusServiceUnavailable, "job queue full")
		return
	}
	writeObj(w, http.StatusCreated, job)
}

// retryAfterSeconds is the Retry-After hint on queue-full 503 responses.
const retryAfterSeconds = 1

// handleReport streams a finished job's rendered report.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.manifest.Job(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	if j.State != StateDone {
		writeErr(w, http.StatusConflict, "job %s is %s, not done", id, j.State)
		return
	}
	body, err := s.report(j)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(body)
}

// report loads a job's rendered report bytes.
func (s *Server) report(j *Job) ([]byte, error) {
	if s.opt.Dir == "" {
		s.mu.Lock()
		defer s.mu.Unlock()
		body, ok := s.reports[j.ID]
		if !ok {
			return nil, fmt.Errorf("report for %s not found", j.ID)
		}
		return body, nil
	}
	return os.ReadFile(filepath.Join(s.opt.Dir, j.ReportPath))
}

// handleEvents streams a job's lifecycle over SSE: a "state" event per
// manifest transition (including one immediately on subscribe) and a
// "progress" event per simulation tick. The stream ends when the job
// reaches a terminal state.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.manifest.Job(id); !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	ticks, cancel := s.funnel.Subscribe(256)
	defer cancel()
	// Poll manifest state on a timer rather than wiring another notifier:
	// state changes are rare (a handful per job) and 100ms staleness is
	// invisible next to simulation time.
	poll := time.NewTicker(100 * time.Millisecond)
	defer poll.Stop()

	emit := func(event string, v any) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	last := ""
	state := func() (terminal bool) {
		j, ok := s.manifest.Job(id)
		if !ok {
			return true
		}
		if j.State != last {
			last = j.State
			if !emit("state", j) {
				return true
			}
		}
		return j.State == StateDone || j.State == StateFailed || j.State == StateTimeout
	}
	if state() {
		return
	}
	prefix := id + "|"
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.done:
			return
		case t := <-ticks:
			if !strings.HasPrefix(t.Source, prefix) {
				continue
			}
			t.Source = strings.TrimPrefix(t.Source, prefix)
			if !emit("progress", t) {
				return
			}
		case <-poll.C:
			if state() {
				return
			}
		}
	}
}

// handleResults serves stored result envelopes: all of them, one by exact
// ?key, or the subset for one ?workload.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	if key := r.URL.Query().Get("key"); key != "" {
		res, ok, err := s.store.Get(key)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "%v", err)
			return
		}
		if !ok {
			writeErr(w, http.StatusNotFound, "no result for key %q", key)
			return
		}
		writeObj(w, http.StatusOK, res)
		return
	}
	all, err := s.store.List()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if wl := r.URL.Query().Get("workload"); wl != "" {
		kept := all[:0]
		for _, res := range all {
			if res.Workload == wl {
				kept = append(kept, res)
			}
		}
		all = kept
	}
	writeObj(w, http.StatusOK, map[string]any{"results": all})
}

// handleCompare returns the envelopes for the given ?key=... parameters,
// in request order, failing if any is missing — the side-by-side a
// config-A-vs-config-B comparison needs.
func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	keys := r.URL.Query()["key"]
	if len(keys) < 2 {
		writeErr(w, http.StatusBadRequest, "compare needs at least two key parameters")
		return
	}
	out := make([]*Result, 0, len(keys))
	var missing []string
	for _, k := range keys {
		res, ok, err := s.store.Get(k)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "%v", err)
			return
		}
		if !ok {
			missing = append(missing, k)
			continue
		}
		out = append(out, res)
	}
	if len(missing) > 0 {
		writeErr(w, http.StatusNotFound, "no result for keys: %s", strings.Join(missing, ", "))
		return
	}
	writeObj(w, http.StatusOK, map[string]any{"results": out})
}

// bestMetrics maps a /v1/best metric name to its ordering: value extracts
// the figure of merit, lower says which direction wins.
var bestMetrics = map[string]struct {
	value func(*Result) float64
	lower bool
}{
	"cycles": {func(r *Result) float64 { return float64(r.Cycles) }, true},
	"ipc": {func(r *Result) float64 {
		if r.Summary == nil || r.Cycles == 0 {
			return 0
		}
		if r.Summary.EstIPC > 0 {
			return r.Summary.EstIPC
		}
		return float64(r.Summary.Instructions) / float64(r.Cycles)
	}, false},
	"tlbmissrate": {func(r *Result) float64 {
		if r.Summary == nil {
			return 1
		}
		return r.Summary.TLBMissRate
	}, true},
}

// handleBest recommends the stored configuration that optimises a metric
// for one workload — the "which design point should I run" query.
func (s *Server) handleBest(w http.ResponseWriter, r *http.Request) {
	wl := r.URL.Query().Get("workload")
	if wl == "" {
		writeErr(w, http.StatusBadRequest, "best needs a workload parameter")
		return
	}
	metric := r.URL.Query().Get("metric")
	if metric == "" {
		metric = "cycles"
	}
	m, ok := bestMetrics[metric]
	if !ok {
		names := make([]string, 0, len(bestMetrics))
		for n := range bestMetrics {
			names = append(names, n)
		}
		sort.Strings(names)
		writeErr(w, http.StatusBadRequest, "unknown metric %q (have %s)", metric, strings.Join(names, ", "))
		return
	}
	all, err := s.store.List()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	var best *Result
	var bestVal float64
	for _, res := range all {
		if res.Workload != wl {
			continue
		}
		v := m.value(res)
		// List is Key-sorted, so strict comparison makes ties deterministic:
		// the lexically-first key wins.
		if best == nil || (m.lower && v < bestVal) || (!m.lower && v > bestVal) {
			best, bestVal = res, v
		}
	}
	if best == nil {
		writeErr(w, http.StatusNotFound, "no stored results for workload %q", wl)
		return
	}
	writeObj(w, http.StatusOK, map[string]any{"metric": metric, "value": bestVal, "result": best})
}

// runLoop is one job runner: it executes queued jobs until Close. The
// server starts opt.jobs() of these; jobs dequeue in submission order and
// run concurrently, sharing the scheduler's slot budget and flight table.
func (s *Server) runLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case id := <-s.queue:
			s.runJob(id)
		}
	}
}

// runCache adapts the durable store to the executor's Results interface
// for one job: Get falls through to the durable store (rehydrating hits
// into the in-memory run store and counting them as FromStore), Put
// publishes to both. The Simulated/Coalesced counters are fed by the
// server's scheduler wrapper — Simulated counts runs this job's flights
// won, Coalesced counts specs adopted from another job's concurrent
// flight. Total = Simulated + FromStore + Coalesced when the job is done,
// which is how the manifest proves no simulation ever ran twice.
type runCache struct {
	mem     *experiments.ResultStore
	durable Store
	size    workloads.Size
	seed    uint64
	plan    gpu.SamplePlan

	mu        sync.Mutex
	simulated int
	fromStore int
	coalesced int
}

func (c *runCache) addSimulated() {
	c.mu.Lock()
	c.simulated++
	c.mu.Unlock()
}

func (c *runCache) addCoalesced() {
	c.mu.Lock()
	c.coalesced++
	c.mu.Unlock()
}

func (c *runCache) Get(spec experiments.RunSpec) (*experiments.RunResult, bool) {
	if r, ok := c.mem.Get(spec); ok {
		return r, true
	}
	key := Key(spec.Workload, c.size, c.seed, spec.Config, c.plan)
	env, ok, err := c.durable.Get(key)
	if err != nil || !ok {
		return nil, false
	}
	c.mem.Put(env.RunResult(spec))
	c.mu.Lock()
	c.fromStore++
	c.mu.Unlock()
	return c.mem.Get(spec)
}

func (c *runCache) Put(res *experiments.RunResult) {
	c.mem.Put(res)
	if res.Err == nil {
		// Persistence failures must not fail the run: the result is still
		// served from memory, it just won't survive a restart. Writes are
		// once-per-key, so a coalesced result arriving from two jobs is
		// persisted exactly once.
		c.durable.Put(FromRun(res, c.size, c.seed, c.plan))
	}
}

func (c *runCache) Len() int                         { return c.mem.Len() }
func (c *runCache) Failed() []*experiments.RunResult { return c.mem.Failed() }
func (c *runCache) counts() (simulated, fromStore, coalesced int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.simulated, c.fromStore, c.coalesced
}

// runJob executes one manifest job end to end: expand the canonical
// campaign, run it through the figure pipeline (or the plain workload-set
// path when it declares no figures), persist the report, and journal the
// final state with its dedup counters.
func (s *Server) runJob(id string) {
	job, ok := s.manifest.Job(id)
	if !ok || job.State != StatePending {
		return
	}
	s.manifest.Update(id, func(j *Job) {
		j.State = StateRunning
		j.Started = time.Now().UTC().Format(time.RFC3339)
	})
	report, cache, total, err := s.execute(job)
	s.manifest.Update(id, func(j *Job) {
		j.Finished = time.Now().UTC().Format(time.RFC3339)
		j.Total = total
		if cache != nil {
			j.Simulated, j.FromStore, j.Coalesced = cache.counts()
			j.Failures = len(cache.Failed())
		}
		if err != nil {
			j.State = StateFailed
			if errors.Is(err, obs.ErrDeadline) || errors.Is(err, context.Canceled) ||
				errors.Is(err, context.DeadlineExceeded) {
				j.State = StateTimeout
			}
			j.Error = err.Error()
			return
		}
		path, werr := s.saveReport(j.ID, report)
		if werr != nil {
			j.State = StateFailed
			j.Error = werr.Error()
			return
		}
		j.State = StateDone
		j.ReportPath = path
	})
}

// execute runs the job's campaign and returns the rendered report.
func (s *Server) execute(job *Job) (report []byte, cache *runCache, total int, err error) {
	camp, err := campaign.Parse([]byte(job.Campaign))
	if err != nil {
		return nil, nil, 0, err
	}
	opt, err := camp.HarnessOptions()
	if err != nil {
		return nil, nil, 0, err
	}
	if opt.Workers == 0 && s.opt.Workers > 0 {
		opt.Workers = s.opt.Workers
	}
	if opt.CoreWorkers <= 1 && s.opt.CoreWorkers > 1 {
		opt.CoreWorkers = s.opt.CoreWorkers
	}
	if opt.Obs.Deadline.IsZero() && s.opt.JobTimeout > 0 {
		opt.Obs.Deadline = s.clock.Now().Add(s.opt.JobTimeout)
	}
	// The job context enforces the wall-clock budget even while the job
	// waits for simulation slots or another job's flight: obs.Deadline only
	// fires inside a ticking simulation, so without the context a starved
	// job's timeout would stretch with every other job in flight.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if d := opt.Obs.Deadline; !d.IsZero() {
		if wait := d.Sub(s.clock.Now()); wait <= 0 {
			cancel()
		} else {
			ch, stop := s.clock.After(wait)
			defer stop()
			go func() {
				select {
				case <-ch:
					cancel()
				case <-ctx.Done():
				}
			}()
		}
	}
	jobID := job.ID
	opt.Obs.Progress = func(spec experiments.RunSpec, p obs.Progress) {
		s.funnel.Publish(jobID+"|"+spec.String(), p)
	}
	cache = &runCache{
		mem:     experiments.NewResultStore(),
		durable: s.store,
		size:    opt.Size,
		seed:    opt.Seed,
		plan:    opt.Sampling,
	}
	opt.Results = cache
	opt.Simulate = s.scheduled(ctx, cache)

	figs, figErr := camp.ExpandFigures()
	if figErr == nil {
		var buf bytes.Buffer
		h := experiments.New(&buf, opt)
		total = h.PlanFigures(figs).Len()
		err = experiments.RunFigures(h, figs)
		return buf.Bytes(), cache, total, err
	}

	// No figures and no sweep: run the workload set like gpusim would and
	// report the result envelopes as a JSON array (deterministic workload
	// order; envelopes from the store keep their original timestamps).
	cfg, err := camp.MachineConfig()
	if err != nil {
		return nil, cache, 0, err
	}
	exec := &experiments.Executor{
		Workers:     opt.Workers,
		Size:        opt.Size,
		Seed:        opt.Seed,
		Store:       cache,
		CoreWorkers: opt.CoreWorkers,
		Obs:         opt.Obs,
		Checkpoint:  opt.Checkpoint,
		Sampling:    opt.Sampling,
		Simulate:    opt.Simulate,
	}
	plan := experiments.NewPlan()
	for _, w := range opt.Workload {
		plan.Add(experiments.RunSpec{Workload: w, Config: cfg})
	}
	exec.Execute(plan)

	envs := make([]*Result, 0, plan.Len())
	var failures []error
	for _, spec := range plan.Specs() {
		key := Key(spec.Workload, opt.Size, opt.Seed, spec.Config, opt.Sampling)
		if env, ok, gerr := s.store.Get(key); gerr == nil && ok {
			envs = append(envs, env)
			continue
		}
		res, ok := cache.mem.Get(spec)
		if !ok {
			failures = append(failures, fmt.Errorf("%s: no result", spec))
			continue
		}
		env := FromRun(res, opt.Size, opt.Seed, opt.Sampling)
		envs = append(envs, env)
		if res.Err != nil {
			failures = append(failures, fmt.Errorf("%s: %w", spec, res.Err))
		}
	}
	body, merr := json.MarshalIndent(envs, "", "  ")
	if merr != nil {
		return nil, cache, plan.Len(), merr
	}
	return append(body, '\n'), cache, plan.Len(), errors.Join(failures...)
}

// scheduled builds the Executor.Simulate wrapper for one job: every
// simulation the job's executor wants first goes through the shared
// scheduler — singleflight on the canonical Result Key (so two jobs
// needing the same spec while neither has finished it run it once), then
// a slot acquisition (so concurrent jobs never oversubscribe the host).
// The wrapper also feeds the job's dedup counters: flights this job won
// count as simulated, flights it adopted count as coalesced.
func (s *Server) scheduled(ctx context.Context, cache *runCache) func(experiments.RunSpec, func(experiments.RunSpec) *experiments.RunResult) *experiments.RunResult {
	return func(spec experiments.RunSpec, run func(experiments.RunSpec) *experiments.RunResult) *experiments.RunResult {
		// Another job may have finished this spec after this one planned it:
		// the durable store is the tiebreak (counted as fromStore).
		if res, ok := cache.Get(spec); ok {
			return res
		}
		key := Key(spec.Workload, cache.size, cache.seed, spec.Config, cache.plan)
		res, coalesced, err := s.sched.do(ctx, key, func() *experiments.RunResult {
			if err := s.sched.acquire(ctx); err != nil {
				return abortedResult(spec, err)
			}
			defer s.sched.release()
			cache.addSimulated()
			res := run(spec)
			if res.Err == nil {
				// Persist while the flight is still open: any job that
				// misses the flight must find the envelope in the durable
				// store, otherwise there would be a window in which the
				// same spec simulates twice.
				cache.durable.Put(FromRun(res, cache.size, cache.seed, cache.plan))
			}
			return res
		})
		if err != nil {
			return abortedResult(spec, err)
		}
		if coalesced {
			cache.addCoalesced()
		}
		return res
	}
}

// abortedResult wraps a job-budget abort (context cancellation while
// waiting for a slot or a flight) as a RunResult carrying obs.ErrDeadline,
// so runJob classifies the job as timed out through the same path an
// in-simulation deadline uses.
func abortedResult(spec experiments.RunSpec, cause error) *experiments.RunResult {
	return &experiments.RunResult{
		Spec: spec,
		Err:  fmt.Errorf("%w: job budget exhausted while awaiting a simulation slot (%v)", obs.ErrDeadline, cause),
	}
}

// saveReport persists a finished job's report and returns its
// manifest-recorded path ("" in memory mode).
func (s *Server) saveReport(id string, body []byte) (string, error) {
	if s.opt.Dir == "" {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.reports[id] = body
		return "", nil
	}
	rel := filepath.Join("reports", id+".report")
	abs := filepath.Join(s.opt.Dir, rel)
	if err := os.MkdirAll(filepath.Dir(abs), 0o755); err != nil {
		return "", fmt.Errorf("service: report dir: %w", err)
	}
	if err := os.WriteFile(abs, body, 0o644); err != nil {
		return "", fmt.Errorf("service: writing report: %w", err)
	}
	return rel, nil
}

// writeObj writes one JSON response.
func writeObj(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeErr writes the JSON error envelope every failure path shares.
func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeObj(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
