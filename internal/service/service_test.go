package service

// Store, manifest, and server tests: the durable pieces the job server's
// restart-resume and dedup guarantees rest on. Simulation-heavy paths use
// the tiny pointerchase workload so the suite stays fast.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gpummu/internal/campaign"
	"gpummu/internal/config"
	"gpummu/internal/experiments"
	"gpummu/internal/gpu"
	"gpummu/internal/workloads"
)

// run executes one tiny simulation and wraps it in the envelope, giving
// store tests a real Result (with histograms) to round-trip.
func runEnvelope(t *testing.T, workload string, cfg config.Hardware) *Result {
	t.Helper()
	spec := experiments.RunSpec{Workload: workload, Config: cfg}
	res := experiments.ExecuteOne(spec, workloads.SizeTiny, 1, 0)
	if res.Err != nil {
		t.Fatalf("%s: %v", workload, res.Err)
	}
	return FromRun(res, workloads.SizeTiny, 1, gpu.SamplePlan{})
}

// TestFileStoreRoundTrip: a persisted envelope must reload byte-equal
// after reopening the store, and rehydrate into a RunResult whose stats
// render identically.
func TestFileStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := config.SmallTest()
	env := runEnvelope(t, "pointerchase", cfg)

	s, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(env); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, ok, err := s2.Get(env.Key)
	if err != nil || !ok {
		t.Fatalf("Get after reopen: ok=%v err=%v", ok, err)
	}
	a, _ := json.Marshal(env)
	b, _ := json.Marshal(got)
	if string(a) != string(b) {
		t.Fatalf("envelope changed across reopen:\n%s\n%s", a, b)
	}
	// Rehydrated stats must carry the full histogram state (the byte-
	// identity of store-served reports depends on it).
	spec := experiments.RunSpec{Workload: env.Workload, Config: cfg}
	rr := got.RunResult(spec)
	if rr.Stats == nil || rr.Stats.String() != env.Stats.String() {
		t.Fatal("rehydrated stats do not render identically")
	}
}

// TestFileStoreWriteOnce: the first Put for a key wins; failed results
// are rejected outright.
func TestFileStoreWriteOnce(t *testing.T) {
	s, err := OpenFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	a := &Result{Schema: ResultSchema, Key: "k", Workload: "w", Cycles: 1}
	b := &Result{Schema: ResultSchema, Key: "k", Workload: "w", Cycles: 2}
	if err := s.Put(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(b); err != nil {
		t.Fatal(err)
	}
	got, _, _ := s.Get("k")
	if got.Cycles != 1 {
		t.Fatalf("second Put overwrote: cycles=%d", got.Cycles)
	}
	if err := s.Put(&Result{Schema: ResultSchema, Key: "fail", Error: "boom"}); err == nil {
		t.Fatal("failed result stored")
	}
}

// TestFileStoreTolerantTail: a crash-truncated final line is skipped on
// open; the intact lines before it survive.
func TestFileStoreTolerantTail(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		r := &Result{Schema: ResultSchema, Key: fmt.Sprintf("k%d", i), Workload: "w", Cycles: uint64(i)}
		if err := s.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	// Simulate a crash mid-append: a torn half-line at the tail.
	seg := filepath.Join(dir, "results-000001.jsonl")
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"schema":"gpummu.result/v1","key":"torn","cyc`)
	f.Close()

	s2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 3 || s2.Skipped() != 1 {
		t.Fatalf("len=%d skipped=%d, want 3/1", s2.Len(), s2.Skipped())
	}
	// The store must keep appending cleanly after the torn line.
	if err := s2.Put(&Result{Schema: ResultSchema, Key: "k3", Workload: "w"}); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if _, ok, _ := s3.Get("k3"); !ok {
		t.Fatal("post-tear append lost")
	}
}

// TestManifestReplay: the journal survives reopen, last record per job
// wins, and interrupted running jobs come back pending.
func TestManifestReplay(t *testing.T) {
	dir := t.TempDir()
	m, err := OpenManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	j1, err := m.NewJob("campaign", "a", "doc-a")
	if err != nil {
		t.Fatal(err)
	}
	j2, err := m.NewJob("run", "b", "doc-b")
	if err != nil {
		t.Fatal(err)
	}
	m.Update(j1.ID, func(j *Job) { j.State = StateDone; j.Simulated = 5 })
	m.Update(j2.ID, func(j *Job) { j.State = StateRunning })
	m.Close()

	m2, err := OpenManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	g1, ok := m2.Job(j1.ID)
	if !ok || g1.State != StateDone || g1.Simulated != 5 {
		t.Fatalf("j1 after replay: %+v", g1)
	}
	g2, ok := m2.Job(j2.ID)
	if !ok || g2.State != StatePending {
		t.Fatalf("interrupted job not requeued: %+v", g2)
	}
	if ids := m2.Resumable(); len(ids) != 1 || ids[0] != j2.ID {
		t.Fatalf("resumable = %v", ids)
	}
	// New IDs must continue past replayed ones.
	j3, err := m2.NewJob("run", "c", "doc-c")
	if err != nil {
		t.Fatal(err)
	}
	if j3.ID == j1.ID || j3.ID == j2.ID {
		t.Fatalf("ID collision: %s", j3.ID)
	}
}

// adhocDoc builds the canonical campaign document the restart test
// pre-seeds the manifest with.
func adhocDoc(t *testing.T, names ...string) string {
	t.Helper()
	c, err := campaign.NewAdhoc("resume-test", names, "tiny", 1, "small", nil, campaign.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return string(c.Emit())
}

// TestServerResumesInterruptedJob: a job left pending by a dead server,
// with part of its work already in the durable store, must complete on
// restart simulating only the remainder.
func TestServerResumesInterruptedJob(t *testing.T) {
	dir := t.TempDir()

	// Process one: journal a pending two-workload job and persist one of
	// its two results, then "crash" (close without running).
	store, err := OpenFileStore(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	small := config.SmallTest()
	if err := store.Put(runEnvelope(t, "pointerchase", small)); err != nil {
		t.Fatal(err)
	}
	store.Close()
	man, err := OpenManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := man.NewJob("run", "resume-test", adhocDoc(t, "pointerchase", "kmeans")); err != nil {
		t.Fatal(err)
	}
	man.Close()

	// Process two: the server must requeue the pending job and finish it
	// with exactly one fresh simulation.
	srv, err := NewServer(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	deadline := time.Now().Add(2 * time.Minute)
	var job *Job
	for {
		j, ok := srv.Manifest().Job("j1")
		if ok && (j.State == StateDone || j.State == StateFailed || j.State == StateTimeout) {
			job = j
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %+v", j)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if job.State != StateDone {
		t.Fatalf("resumed job finished %s: %s", job.State, job.Error)
	}
	if job.Total != 2 || job.Simulated != 1 || job.FromStore != 1 {
		t.Fatalf("resume counters = total %d simulated %d fromStore %d, want 2/1/1",
			job.Total, job.Simulated, job.FromStore)
	}
}

// TestServerCampaignByteIdentity: a campaign job's report must be
// byte-identical to the same campaign run directly through the harness,
// both when simulated fresh and when served entirely from the store.
func TestServerCampaignByteIdentity(t *testing.T) {
	doc := `apiVersion: gpummu/v1
name: fig2-tiny-test
machine: small
workloads:
  names: [pointerchase, kmeans]
  size: tiny
figures: [fig2]
`
	camp, err := campaign.Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	opt, err := camp.HarnessOptions()
	if err != nil {
		t.Fatal(err)
	}
	figs, err := camp.ExpandFigures()
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	if err := experiments.RunFigures(experiments.New(&want, opt), figs); err != nil {
		t.Fatal(err)
	}

	srv, err := NewServer(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL)

	for round, wantSim := range map[string]bool{"fresh": true, "stored": false} {
		job, err := c.SubmitCampaign([]byte(doc))
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		job, err = c.Wait(ctx, job.ID, 20*time.Millisecond)
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if job.State != StateDone {
			t.Fatalf("%s: job finished %s: %s", round, job.State, job.Error)
		}
		if wantSim && job.Simulated == 0 {
			t.Fatalf("%s: nothing simulated", round)
		}
		if !wantSim && job.Simulated != 0 {
			t.Fatalf("%s: resubmission simulated %d runs", round, job.Simulated)
		}
		got, err := c.Report(job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != want.String() {
			t.Fatalf("%s: server report differs from direct harness run", round)
		}
	}
}

// TestServerRejectsBadSubmissions: validation failures must come back as
// HTTP errors with the campaign's field diagnostics, not run.
func TestServerRejectsBadSubmissions(t *testing.T) {
	srv, err := NewServer(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL)

	cases := []SubmitRequest{
		{},                                       // nothing to run
		{Workloads: []string{"no-such"}},         // unknown workload
		{Workloads: []string{"bfs"}, Size: "xl"}, // bad size
		{Campaign: "apiVersion: gpummu/v1\nname: x\n", Workloads: []string{"bfs"}}, // both forms
		{Workloads: []string{"bfs"}, Sampling: "nonsense"},                         // bad plan
	}
	for i, req := range cases {
		if _, err := c.Submit(req); err == nil {
			t.Errorf("case %d accepted: %+v", i, req)
		}
	}
	if _, err := c.Job("j999"); err == nil {
		t.Error("unknown job fetched")
	}
	if _, err := c.Compare("only-one"); err == nil {
		t.Error("one-key compare accepted")
	}
	if _, _, err := c.Best("", ""); err == nil {
		t.Error("workload-less best accepted")
	}
}
