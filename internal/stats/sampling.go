package stats

import (
	"fmt"
	"math"
	"strings"
)

// This file holds the statistics side of SMARTS-style interval sampling
// (internal/gpu.RunSampled): per-interval measurement snapshots, the
// extrapolated run totals, and CLT-based 95% confidence intervals on the
// headline metrics. The sampling design — which cycles run detailed and
// which fast-forward functionally — lives in internal/gpu; this package
// only turns the recorded intervals into estimates with error bars.

// Interval is the measurement of one detailed window, recorded after the
// warmup portion of the window has drained transient state. All counter
// fields are deltas over the measured portion only. FFBlocks/FFInstructions
// describe the fast-forward that followed this window (zero for the final
// interval, which runs detailed to completion).
type Interval struct {
	Start          uint64 // detailed cycle at which measurement began
	Cycles         uint64 // detailed cycles measured
	Instructions   uint64
	TLBAccesses    uint64
	TLBMisses      uint64
	Walks          uint64
	WalkLatEvents  uint64
	WalkLatTotal   uint64
	Blocks         uint64 // thread blocks retired during the window
	FFBlocks       uint64 // blocks fast-forwarded after the window
	FFInstructions uint64 // instructions executed functionally in that fast-forward
}

// Metric is a sampled estimate with a 95% confidence half-width, rendered
// as "value ± ci". A zero CI with fewer than two intervals means "no
// variance estimate", not "exact".
type Metric struct {
	Value float64
	CI    float64
}

// String renders the estimate as "value ± ci".
func (m Metric) String() string {
	return fmt.Sprintf("%.4g ± %.2g", m.Value, m.CI)
}

// RelErr returns |Value-exact|/exact, or 0 when exact is 0 — the
// sampled-vs-exact accuracy number the bench harness and CI gate report.
func (m Metric) RelErr(exact float64) float64 {
	if exact == 0 {
		return 0
	}
	return math.Abs(m.Value-exact) / math.Abs(exact)
}

// Sampled aggregates one sampled run: the plan that produced it, the
// per-interval measurements, and the split between detailed and
// fast-forwarded work. Architectural state is exact; timing totals (cycle
// and warp-instruction counts) are extrapolated from the measured windows'
// per-retired-block rates, with CLT confidence intervals. FFInstructions
// counts functionally executed thread-level steps — an exact work count,
// but a different unit from the timing model's warp-level Instructions.
type Sampled struct {
	Warmup      uint64 // plan: unmeasured detailed cycles per interval
	Detail      uint64 // plan: measured detailed cycles per interval
	FastForward uint64 // plan: cycles-worth of work skipped per interval

	Intervals []Interval

	DetailCycles       uint64 // cycles the timing model actually simulated (== Sim.Cycles)
	DetailInstructions uint64 // instructions executed by the timing model
	FFInstructions     uint64 // instructions executed functionally
	FFBlocks           uint64 // thread blocks fast-forwarded
	TotalBlocks        uint64 // grid size

	// RetireSpanCycles/RetireSpanBlocks describe the marginal steady-state
	// retire rate of the detailed portion: the cycles between the first and
	// last block retirement, and the blocks retired in that span excluding
	// the first wave (blocks retiring at the first retire cycle). Their
	// ratio is the per-block cycle cost with pipeline ramp-up and drain
	// cancelled — both appear once in DetailCycles and once in an exact run,
	// so the skipped blocks must be charged only their marginal cost.
	RetireSpanCycles uint64
	RetireSpanBlocks uint64
}

// chunkRates collapses the measured intervals into per-block rates robust
// to bursty retirement: blocks launched together retire in waves, so a
// single detail window usually sees either zero retires or a whole wave,
// and its raw counter/Blocks ratio is meaningless. Consecutive intervals
// are accumulated until one retires a block, then the chunk's pooled ratio
// is emitted. The first chunk is dropped — it absorbs pipeline ramp-up and
// would bias the spread. The result feeds the CLT confidence interval; the
// point estimates come from the exact retire span instead.
func (s *Sampled) chunkRates(counter func(*Interval) uint64) []float64 {
	var rates []float64
	var csum, bsum uint64
	first := true
	for i := range s.Intervals {
		iv := &s.Intervals[i]
		csum += counter(iv)
		bsum += iv.Blocks
		if iv.Blocks > 0 {
			if !first {
				rates = append(rates, float64(csum)/float64(bsum))
			}
			first = false
			csum, bsum = 0, 0
		}
	}
	return rates
}

// ffCI returns the 95% half-width on the extrapolated fast-forward cost in
// some counter: FFBlocks times the CLT half-width of the chunked per-block
// rates.
func (s *Sampled) ffCI(counter func(*Interval) uint64) float64 {
	_, ci := meanCI95(s.chunkRates(counter))
	return float64(s.FFBlocks) * ci
}

// ratioMetric builds a Metric whose point estimate is the ratio of summed
// numerators to summed denominators over the measured intervals (weighting
// each interval by its denominator), with the CI taken from the spread of
// the per-interval ratios under the CLT.
func (s *Sampled) ratioMetric(num, den func(*Interval) uint64) Metric {
	var nsum, dsum uint64
	var ratios []float64
	for i := range s.Intervals {
		iv := &s.Intervals[i]
		n, d := num(iv), den(iv)
		nsum += n
		dsum += d
		if d > 0 {
			ratios = append(ratios, float64(n)/float64(d))
		}
	}
	if dsum == 0 {
		return Metric{}
	}
	_, ci := meanCI95(ratios)
	return Metric{Value: float64(nsum) / float64(dsum), CI: ci}
}

// EstimatedCycles extrapolates the whole-run cycle count: the cycles the
// timing model actually simulated, plus FFBlocks times the marginal
// per-block cycle cost from the retire span — the cycles the skipped
// blocks would have cost at the machine's steady-state throughput. Ramp-up
// and drain are already paid once inside DetailCycles, exactly as an exact
// run pays them. With nothing fast-forwarded the estimate is the exact
// cycle count with a zero half-width.
func (s *Sampled) EstimatedCycles() Metric {
	if s.FFBlocks == 0 || s.RetireSpanBlocks == 0 {
		return Metric{Value: float64(s.DetailCycles)}
	}
	cpb := float64(s.RetireSpanCycles) / float64(s.RetireSpanBlocks)
	return Metric{
		Value: float64(s.DetailCycles) + float64(s.FFBlocks)*cpb,
		CI:    s.ffCI(func(iv *Interval) uint64 { return iv.Cycles }),
	}
}

// EstimatedInstructions extrapolates the whole-run warp-level instruction
// count. Every warp instruction the timing model executes belongs to a
// block that retires in the detailed portion, so DetailInstructions divided
// by the detailed block count is an unbiased per-block cost with no
// ramp/drain term; the skipped blocks are charged that average.
// (FFInstructions counts functional thread-level steps — a different unit —
// so it cannot be used directly.)
func (s *Sampled) EstimatedInstructions() Metric {
	detailBlocks := s.TotalBlocks - s.FFBlocks
	if s.FFBlocks == 0 || detailBlocks == 0 {
		return Metric{Value: float64(s.DetailInstructions)}
	}
	ipb := float64(s.DetailInstructions) / float64(detailBlocks)
	return Metric{
		Value: float64(s.DetailInstructions) + float64(s.FFBlocks)*ipb,
		CI:    s.ffCI(func(iv *Interval) uint64 { return iv.Instructions }),
	}
}

// IPC estimates whole-run instructions per cycle as the ratio of the two
// extrapolated totals, the same sim_cycles-derived definition an exact run
// reports (Instructions/Cycles). The half-width is first-order and
// conservative: the relative errors of numerator and denominator add.
func (s *Sampled) IPC() Metric {
	c := s.EstimatedCycles()
	i := s.EstimatedInstructions()
	if c.Value == 0 {
		return Metric{}
	}
	v := i.Value / c.Value
	var rel float64
	if i.Value > 0 {
		rel += i.CI / i.Value
	}
	rel += c.CI / c.Value
	return Metric{Value: v, CI: v * rel}
}

// TLBMissRate estimates the TLB miss rate with a 95% CI.
func (s *Sampled) TLBMissRate() Metric {
	return s.ratioMetric(
		func(iv *Interval) uint64 { return iv.TLBMisses },
		func(iv *Interval) uint64 { return iv.TLBAccesses })
}

// WalkLatency estimates the mean page-table-walk latency (cycles) with a
// 95% CI.
func (s *Sampled) WalkLatency() Metric {
	return s.ratioMetric(
		func(iv *Interval) uint64 { return iv.WalkLatTotal },
		func(iv *Interval) uint64 { return iv.WalkLatEvents })
}

// DetailFraction returns the fraction of the grid's thread blocks that ran
// through the timing model — the knob that trades accuracy for speed.
func (s *Sampled) DetailFraction() float64 {
	if s.TotalBlocks == 0 {
		return 0
	}
	return float64(s.TotalBlocks-s.FFBlocks) / float64(s.TotalBlocks)
}

// Summary renders the sampled estimates as a compact multi-line report.
// Everything here is a pure function of the recorded intervals, so the
// output is byte-identical for any host parallelism.
func (s *Sampled) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sampled: plan warmup=%d detail=%d fastforward=%d intervals=%d\n",
		s.Warmup, s.Detail, s.FastForward, len(s.Intervals))
	fmt.Fprintf(&b, "sampled: detailed %d cycles / %d warp instrs, fast-forwarded %d/%d blocks (%d thread instrs, detail fraction %.3f)\n",
		s.DetailCycles, s.DetailInstructions, s.FFBlocks, s.TotalBlocks, s.FFInstructions, s.DetailFraction())
	fmt.Fprintf(&b, "sampled: est_cycles=%s ipc=%s tlb_missrate=%s walk_lat=%s\n",
		s.EstimatedCycles(), s.IPC(), s.TLBMissRate(), s.WalkLatency())
	return b.String()
}

// meanCI95 returns the mean of xs and its 95% confidence half-width under
// the CLT, using the Student-t quantile for the small interval counts
// sampling produces. Fewer than two values have no variance estimate and
// report a zero half-width.
func meanCI95(xs []float64) (mean, ci float64) {
	n := len(xs)
	if n == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	if n < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	return mean, tCrit95(n-1) * sd / math.Sqrt(float64(n))
}

// t975 holds the two-sided 95% Student-t critical values for 1..30 degrees
// of freedom; larger samples use the normal quantile 1.96.
var t975 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

func tCrit95(df int) float64 {
	if df < 1 {
		return 0
	}
	if df <= len(t975) {
		return t975[df-1]
	}
	return 1.96
}
