package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
}

func TestLatencyAccum(t *testing.T) {
	var l LatencyAccum
	if l.Mean() != 0 {
		t.Fatal("empty mean not zero")
	}
	l.Observe(10)
	l.Observe(30)
	if l.Mean() != 20 || l.Max != 30 || l.Events != 2 {
		t.Fatalf("accum = %+v", l)
	}
}

func TestHistBasics(t *testing.T) {
	var h Hist
	for _, v := range []int{1, 1, 2, 4, 8} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Max() != 8 {
		t.Fatalf("count=%d max=%d", h.Count(), h.Max())
	}
	if h.Mean() != 16.0/5 {
		t.Fatalf("mean = %f", h.Mean())
	}
	if h.Bucket(1) != 2 || h.Bucket(3) != 0 || h.Bucket(99) != 0 {
		t.Fatal("bucket counts wrong")
	}
	if h.Percentile(0.5) != 2 {
		t.Fatalf("p50 = %d", h.Percentile(0.5))
	}
	if h.Percentile(1.0) != 8 {
		t.Fatalf("p100 = %d", h.Percentile(1.0))
	}
}

func TestHistNegativePanics(t *testing.T) {
	var h Hist
	defer func() {
		if recover() == nil {
			t.Fatal("negative sample accepted")
		}
	}()
	h.Observe(-1)
}

// TestHistSumMatchesQuick: the histogram's internal sum and count track
// exactly for any sample sequence, and buckets total the count.
func TestHistSumMatchesQuick(t *testing.T) {
	f := func(samples []uint8) bool {
		var h Hist
		var sum uint64
		for _, s := range samples {
			h.Observe(int(s))
			sum += uint64(s)
		}
		var bucketTotal uint64
		for v := 0; v <= h.Max(); v++ {
			bucketTotal += h.Bucket(v)
		}
		return h.sum == sum && h.Count() == uint64(len(samples)) && bucketTotal == h.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSimDerivedRates(t *testing.T) {
	s := &Sim{}
	if s.TLBMissRate() != 0 || s.L1MissRate() != 0 || s.MemFraction() != 0 {
		t.Fatal("empty rates not zero")
	}
	s.TLBAccesses = 100
	s.TLBMisses = 25
	s.Instructions = 200
	s.MemInstrs = 50
	s.L1Accesses = 80
	s.L1Misses = 40
	s.WalkRefs = 90
	s.WalkRefsCoalesced = 10
	if s.TLBMissRate() != 0.25 || s.L1MissRate() != 0.5 || s.MemFraction() != 0.25 {
		t.Fatalf("rates = %f %f %f", s.TLBMissRate(), s.L1MissRate(), s.MemFraction())
	}
	if s.WalkRefsEliminated() != 0.1 {
		t.Fatalf("eliminated = %f", s.WalkRefsEliminated())
	}
	if !strings.Contains(s.String(), "missrate") {
		t.Fatal("summary missing fields")
	}
}

func TestSimCloneIsIndependent(t *testing.T) {
	var s Sim
	s.Cycles = 100
	s.Instructions.Add(7)
	s.PageDivergence.Observe(3)
	s.ActiveLanes.Observe(8)
	c := s.Clone()
	if c.Cycles != 100 || c.Instructions.Value() != 7 || c.PageDivergence.Mean() != 3 {
		t.Fatalf("clone lost data: %+v", c)
	}
	// Mutating the original must not leak into the clone (shared buckets
	// would), and vice versa.
	s.PageDivergence.Observe(1)
	s.Cycles = 999
	if c.PageDivergence.Count() != 1 || c.PageDivergence.Mean() != 3 || c.Cycles != 100 {
		t.Fatalf("clone shares state with original: %+v", c.PageDivergence)
	}
	c.ActiveLanes.Observe(2)
	if s.ActiveLanes.Count() != 1 {
		t.Fatal("original shares state with clone")
	}
}

func TestHistClone(t *testing.T) {
	var h Hist
	for _, v := range []int{1, 4, 4, 9} {
		h.Observe(v)
	}
	c := h.Clone()
	if c.Count() != 4 || c.Max() != 9 || c.Bucket(4) != 2 {
		t.Fatalf("clone = %+v", c)
	}
	h.Observe(20)
	if c.Max() != 9 || c.Count() != 4 {
		t.Fatal("clone tracks original")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("name", "value")
	tbl.AddRow("aa", 1.5)
	tbl.AddRow("b", 10)
	out := tbl.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[2], "1.500") {
		t.Fatalf("bad render:\n%s", out)
	}
	tbl.SortByColumn(0)
	if !strings.HasPrefix(strings.TrimSpace(strings.Split(tbl.String(), "\n")[2]), "aa") {
		t.Fatal("sort broke ordering")
	}
}
