package stats

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g (±%g)", name, got, want, tol)
	}
}

func TestMetricString(t *testing.T) {
	m := Metric{Value: 1.23456, CI: 0.042}
	if got := m.String(); got != "1.235 ± 0.042" {
		t.Errorf("String() = %q", got)
	}
}

func TestMetricRelErr(t *testing.T) {
	m := Metric{Value: 110}
	approx(t, "RelErr(100)", m.RelErr(100), 0.10, 1e-12)
	approx(t, "RelErr(-100)", m.RelErr(-100), 2.10, 1e-12)
	if got := m.RelErr(0); got != 0 {
		t.Errorf("RelErr(0) = %g, want 0", got)
	}
}

// sampledFixture is a hand-checkable sampled run: five measured intervals,
// bursty retirement (one interval retires nothing), 10 of 20 blocks
// fast-forwarded, and a retire span giving a marginal cost of 50
// cycles/block.
func sampledFixture() *Sampled {
	return &Sampled{
		Warmup:      10,
		Detail:      100,
		FastForward: 1000,
		Intervals: []Interval{
			// First retiring chunk — dropped by chunkRates (ramp-up).
			{Cycles: 100, Instructions: 300, Blocks: 2,
				TLBAccesses: 100, TLBMisses: 10, WalkLatEvents: 10, WalkLatTotal: 500},
			// Zero-retire interval pools into the next chunk.
			{Cycles: 110, Instructions: 310, Blocks: 0,
				TLBAccesses: 200, TLBMisses: 40, WalkLatEvents: 30, WalkLatTotal: 1200},
			{Cycles: 90, Instructions: 290, Blocks: 2},
			{Cycles: 120, Instructions: 360, Blocks: 2},
			{Cycles: 80, Instructions: 240, Blocks: 2},
		},
		DetailCycles:       1000,
		DetailInstructions: 2000,
		FFInstructions:     5000,
		FFBlocks:           10,
		TotalBlocks:        20,
		RetireSpanCycles:   400,
		RetireSpanBlocks:   8,
	}
}

func TestEstimatedCycles(t *testing.T) {
	s := sampledFixture()
	m := s.EstimatedCycles()
	// 1000 detailed + 10 skipped blocks * (400/8) marginal cycles each.
	approx(t, "EstimatedCycles.Value", m.Value, 1500, 1e-9)

	// CI from the chunked per-block cycle rates. The first chunk (ramp-up)
	// is dropped; the remaining chunks are (110+90)/2=100, 120/2=60, 80/2=40.
	rates := []float64{100, 60, 40}
	mean := (rates[0] + rates[1] + rates[2]) / 3
	var ss float64
	for _, r := range rates {
		ss += (r - mean) * (r - mean)
	}
	sd := math.Sqrt(ss / 2)
	wantCI := float64(s.FFBlocks) * t975[1] * sd / math.Sqrt(3)
	approx(t, "EstimatedCycles.CI", m.CI, wantCI, 1e-9)
}

func TestEstimatedCyclesDegenerate(t *testing.T) {
	s := sampledFixture()
	s.FFBlocks = 0
	if m := s.EstimatedCycles(); m.Value != 1000 || m.CI != 0 {
		t.Errorf("FFBlocks=0: %+v, want exact {1000 0}", m)
	}
	s = sampledFixture()
	s.RetireSpanBlocks = 0
	if m := s.EstimatedCycles(); m.Value != 1000 || m.CI != 0 {
		t.Errorf("RetireSpanBlocks=0: %+v, want exact {1000 0}", m)
	}
}

func TestEstimatedInstructions(t *testing.T) {
	s := sampledFixture()
	m := s.EstimatedInstructions()
	// 2000 detailed + 10 skipped blocks * (2000/10) per detailed block.
	approx(t, "EstimatedInstructions.Value", m.Value, 4000, 1e-9)
	if m.CI <= 0 {
		t.Errorf("EstimatedInstructions.CI = %g, want > 0", m.CI)
	}

	s.FFBlocks = 0
	if m := s.EstimatedInstructions(); m.Value != 2000 || m.CI != 0 {
		t.Errorf("FFBlocks=0: %+v, want exact {2000 0}", m)
	}
	s = sampledFixture()
	s.FFBlocks = s.TotalBlocks // no detailed blocks at all
	if m := s.EstimatedInstructions(); m.Value != 2000 || m.CI != 0 {
		t.Errorf("detailBlocks=0: %+v, want fallback {2000 0}", m)
	}
}

func TestIPC(t *testing.T) {
	s := sampledFixture()
	c, i := s.EstimatedCycles(), s.EstimatedInstructions()
	m := s.IPC()
	approx(t, "IPC.Value", m.Value, i.Value/c.Value, 1e-12)
	wantCI := m.Value * (i.CI/i.Value + c.CI/c.Value)
	approx(t, "IPC.CI", m.CI, wantCI, 1e-9)

	if m := (&Sampled{}).IPC(); m != (Metric{}) {
		t.Errorf("empty IPC = %+v, want zero", m)
	}
}

func TestTLBMissRate(t *testing.T) {
	s := sampledFixture()
	m := s.TLBMissRate()
	// Pooled: (10+40)/(100+200); per-interval ratios 0.1 and 0.2.
	approx(t, "TLBMissRate.Value", m.Value, 50.0/300.0, 1e-12)
	sd := math.Sqrt(2 * 0.05 * 0.05)
	approx(t, "TLBMissRate.CI", m.CI, t975[0]*sd/math.Sqrt(2), 1e-9)

	if m := (&Sampled{}).TLBMissRate(); m != (Metric{}) {
		t.Errorf("no accesses: %+v, want zero Metric", m)
	}
}

func TestWalkLatency(t *testing.T) {
	s := sampledFixture()
	m := s.WalkLatency()
	approx(t, "WalkLatency.Value", m.Value, 1700.0/40.0, 1e-12)
	if m.CI <= 0 {
		t.Errorf("WalkLatency.CI = %g, want > 0", m.CI)
	}
}

func TestDetailFraction(t *testing.T) {
	s := sampledFixture()
	approx(t, "DetailFraction", s.DetailFraction(), 0.5, 1e-12)
	if got := (&Sampled{}).DetailFraction(); got != 0 {
		t.Errorf("empty DetailFraction = %g, want 0", got)
	}
}

func TestSampledSummary(t *testing.T) {
	s := sampledFixture()
	sum := s.Summary()
	for _, want := range []string{
		"plan warmup=10 detail=100 fastforward=1000 intervals=5",
		"detailed 1000 cycles / 2000 warp instrs",
		"fast-forwarded 10/20 blocks (5000 thread instrs, detail fraction 0.500)",
		"est_cycles=1500",
		"tlb_missrate=0.1667",
	} {
		if !strings.Contains(sum, want) {
			t.Errorf("Summary missing %q:\n%s", want, sum)
		}
	}
}

func TestMeanCI95(t *testing.T) {
	if m, ci := meanCI95(nil); m != 0 || ci != 0 {
		t.Errorf("empty: %g ± %g, want 0 ± 0", m, ci)
	}
	if m, ci := meanCI95([]float64{7}); m != 7 || ci != 0 {
		t.Errorf("n=1: %g ± %g, want 7 ± 0 (no variance estimate)", m, ci)
	}
	// n=2: mean 10, sd sqrt(2*4)= 2.828, t(1)=12.706.
	m, ci := meanCI95([]float64{8, 12})
	approx(t, "n=2 mean", m, 10, 1e-12)
	approx(t, "n=2 ci", ci, 12.706*math.Sqrt(8)/math.Sqrt(2), 1e-9)

	// Large n switches to the normal quantile: 40 identical values ±1.
	xs := make([]float64, 40)
	for i := range xs {
		xs[i] = 5
		if i%2 == 0 {
			xs[i] = 3
		}
	}
	m, ci = meanCI95(xs)
	approx(t, "n=40 mean", m, 4, 1e-12)
	sd := math.Sqrt(40.0 / 39.0)
	approx(t, "n=40 ci", ci, 1.96*sd/math.Sqrt(40), 1e-9)
}

func TestTCrit95(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{{0, 0}, {1, 12.706}, {2, 4.303}, {30, 2.042}, {31, 1.96}, {1000, 1.96}}
	for _, c := range cases {
		if got := tCrit95(c.df); got != c.want {
			t.Errorf("tCrit95(%d) = %g, want %g", c.df, got, c.want)
		}
	}
}

// --- coverage for the aggregate Sim helpers used by the sampled path ---

func TestSimMerge(t *testing.T) {
	a := &Sim{Cycles: 100, CoreCycles: 400}
	a.Instructions.Add(10)
	a.IdleCycles.Add(40)
	a.TLBAccesses.Add(5)
	a.TLBMissLat.Observe(10)
	a.PageDivergence.Observe(1)
	a.ActiveLanes.Observe(16)

	b := &Sim{Cycles: 50, CoreCycles: 200}
	b.Instructions.Add(4)
	b.TLBAccesses.Add(3)
	b.TLBMisses.Add(2)
	b.TLBMissLat.Observe(30)
	b.PageDivergence.Observe(3)
	b.ActiveLanes.Observe(32)
	b.L2Accesses.Add(8)
	b.L2Misses.Add(2)

	a.Merge(b)
	if a.Cycles != 150 || a.CoreCycles != 600 {
		t.Errorf("cycles merged to %d/%d", a.Cycles, a.CoreCycles)
	}
	if a.Instructions.Value() != 14 || a.TLBAccesses.Value() != 8 {
		t.Errorf("counters merged to instrs=%d tlbacc=%d", a.Instructions, a.TLBAccesses)
	}
	if a.TLBMissLat.Events != 2 || a.TLBMissLat.Total != 40 || a.TLBMissLat.Max != 30 {
		t.Errorf("latency merged to %+v", a.TLBMissLat)
	}
	if a.PageDivergence.Count() != 2 || a.PageDivergence.Max() != 3 {
		t.Errorf("hist merged to count=%d max=%d", a.PageDivergence.Count(), a.PageDivergence.Max())
	}
	approx(t, "L2MissRate", a.L2MissRate(), 0.25, 1e-12)
	approx(t, "SIMDUtilisation(32)", a.SIMDUtilisation(32), 0.75, 1e-12)
	if got := a.SIMDUtilisation(0); got != 0 {
		t.Errorf("SIMDUtilisation(0) = %g, want 0", got)
	}
	if got := (&Sim{}).L2MissRate(); got != 0 {
		t.Errorf("empty L2MissRate = %g, want 0", got)
	}
	if got := (&Sim{}).IdleFraction(); got != 0 {
		t.Errorf("empty IdleFraction = %g, want 0", got)
	}
	approx(t, "IdleFraction", a.IdleFraction(), 40.0/600.0, 1e-12)
	if got := (&Sim{}).WalkRefsEliminated(); got != 0 {
		t.Errorf("empty WalkRefsEliminated = %g, want 0", got)
	}
}

func TestHistJSONRoundTrip(t *testing.T) {
	var h Hist
	for _, v := range []int{0, 2, 2, 5} {
		h.Observe(v)
	}
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back Hist
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count() != 4 || back.Max() != 5 || back.Mean() != h.Mean() || back.Bucket(2) != 2 {
		t.Errorf("round trip lost state: %+v vs %+v", back, h)
	}
	if err := back.UnmarshalJSON([]byte("{bad")); err == nil {
		t.Error("UnmarshalJSON accepted malformed input")
	}
}

func TestHistPercentileEdges(t *testing.T) {
	var h Hist
	if got := h.Percentile(0.5); got != 0 {
		t.Errorf("empty Percentile = %d, want 0", got)
	}
	for _, v := range []int{1, 2, 3, 4} {
		h.Observe(v)
	}
	// p=0 clamps to "at least one sample".
	if got := h.Percentile(0); got != 1 {
		t.Errorf("Percentile(0) = %d, want 1", got)
	}
	if got := h.Percentile(0.5); got != 2 {
		t.Errorf("Percentile(0.5) = %d, want 2", got)
	}
	if got := h.Percentile(1); got != 4 {
		t.Errorf("Percentile(1) = %d, want 4", got)
	}
}
