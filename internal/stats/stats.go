// Package stats collects the counters, latency accumulators, and histograms
// that every experiment in the reproduction reports. A single Stats value is
// threaded through a simulation; reporters in cmd/experiments turn it into
// the rows of the paper's figures.
package stats

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Counter is a simple monotonically increasing event count.
type Counter uint64

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { *c += Counter(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { *c++ }

// Value returns the current count.
func (c Counter) Value() uint64 { return uint64(c) }

// Merge folds another counter into c.
func (c *Counter) Merge(o Counter) { *c += o }

// LatencyAccum accumulates per-event latencies so averages can be reported.
type LatencyAccum struct {
	Events uint64
	Total  uint64
	Max    uint64
}

// Observe records one event with the given latency in cycles.
func (l *LatencyAccum) Observe(cycles uint64) {
	l.Events++
	l.Total += cycles
	if cycles > l.Max {
		l.Max = cycles
	}
}

// Merge folds another accumulator into l. Events, Total, and Max are each
// commutative aggregates, so merging per-core shards in any order yields the
// same value a single shared accumulator would have held.
func (l *LatencyAccum) Merge(o LatencyAccum) {
	l.Events += o.Events
	l.Total += o.Total
	if o.Max > l.Max {
		l.Max = o.Max
	}
}

// Mean returns the average latency, or 0 when no events were observed.
func (l *LatencyAccum) Mean() float64 {
	if l.Events == 0 {
		return 0
	}
	return float64(l.Total) / float64(l.Events)
}

// Hist is a dense histogram over small non-negative integers (e.g. page
// divergence per warp, which is at most the warp width).
type Hist struct {
	buckets []uint64
	count   uint64
	sum     uint64
	max     int
}

// Observe records one sample of value v (v >= 0).
func (h *Hist) Observe(v int) {
	if v < 0 {
		panic("stats: negative histogram sample")
	}
	for v >= len(h.buckets) {
		h.buckets = append(h.buckets, 0)
	}
	h.buckets[v]++
	h.count++
	h.sum += uint64(v)
	if v > h.max {
		h.max = v
	}
}

// Clone returns an independent deep copy of the histogram.
func (h *Hist) Clone() Hist {
	c := *h
	c.buckets = append([]uint64(nil), h.buckets...)
	return c
}

// Merge folds another histogram into h bucket-wise. The merged bucket slice
// grows to the longer of the two, i.e. exactly max-observed-value+1 — the same
// length a single shared histogram would have (Observe grows on demand and
// never pads), so marshalled golden snapshots stay byte-identical after a
// shard merge.
func (h *Hist) Merge(o *Hist) {
	for len(h.buckets) < len(o.buckets) {
		h.buckets = append(h.buckets, 0)
	}
	for v, n := range o.buckets {
		h.buckets[v] += n
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Count returns the number of samples observed.
func (h *Hist) Count() uint64 { return h.count }

// Mean returns the average sample, or 0 when empty.
func (h *Hist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Max returns the largest sample observed, or 0 when empty.
func (h *Hist) Max() int { return h.max }

// Bucket returns the number of samples equal to v.
func (h *Hist) Bucket(v int) uint64 {
	if v < 0 || v >= len(h.buckets) {
		return 0
	}
	return h.buckets[v]
}

// histJSON is the wire form of a Hist: every internal field is exported so
// a marshalled histogram pins the complete distribution, not just summary
// moments. The golden-snapshot tests in internal/gpu rely on this to detect
// any behavioural drift a hot-path rewrite might introduce.
type histJSON struct {
	Buckets []uint64 `json:"buckets"`
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Max     int      `json:"max"`
}

// MarshalJSON encodes the full histogram state.
func (h Hist) MarshalJSON() ([]byte, error) {
	return json.Marshal(histJSON{Buckets: h.buckets, Count: h.count, Sum: h.sum, Max: h.max})
}

// UnmarshalJSON restores histogram state written by MarshalJSON.
func (h *Hist) UnmarshalJSON(data []byte) error {
	var w histJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	h.buckets = w.Buckets
	h.count = w.Count
	h.sum = w.Sum
	h.max = w.Max
	return nil
}

// Percentile returns the smallest value v such that at least p (0..1) of
// samples are <= v. Empty histograms report 0.
func (h *Hist) Percentile(p float64) int {
	if h.count == 0 {
		return 0
	}
	exact := p * float64(h.count)
	need := uint64(exact)
	if float64(need) < exact {
		need++ // ceiling: "at least p of samples"
	}
	if need == 0 {
		need = 1
	}
	var seen uint64
	for v, n := range h.buckets {
		seen += n
		if seen >= need {
			return v
		}
	}
	return h.max
}

// Sim aggregates every statistic one simulation produces. Fields are grouped
// by the subsystem that writes them.
type Sim struct {
	// Core execution.
	Cycles       uint64 // total cycles until all thread blocks drained
	Instructions Counter
	MemInstrs    Counter // warp-level memory instructions issued
	IdleCycles   Counter // cycles in which a core could issue nothing
	CoreCycles   uint64  // Cycles summed over every core (for idle fraction)

	// Warp-level memory behaviour.
	PageDivergence Hist // distinct 4 KB (or 2 MB) translations per warp mem op
	LineDivergence Hist // distinct cache lines per warp mem op

	// ActiveLanes records active lanes per issued warp instruction; its
	// mean over the warp width is SIMD utilisation (what TBC improves).
	ActiveLanes Hist

	// TLB.
	TLBAccesses Counter // one per distinct translation looked up
	TLBHits     Counter
	TLBMisses   Counter
	TLBHitUnder Counter // hits serviced while a miss was outstanding
	TLBMissLat  LatencyAccum

	// L1 data cache.
	L1Accesses Counter
	L1Hits     Counter
	L1Misses   Counter
	L1MissLat  LatencyAccum

	// L2.
	L2Accesses Counter
	L2Hits     Counter
	L2Misses   Counter

	// Page table walker.
	Walks             Counter // completed page table walks
	WalkRefs          Counter // memory references issued by walkers
	WalkRefsCoalesced Counter // references eliminated by PTW scheduling
	WalkCacheHits     Counter // walk references that hit in the shared L2
	PWCHits           Counter // upper-level PTEs served by the page walk cache
	WalkLat           LatencyAccum

	// Shared second-tier TLB (extension; zero when not configured).
	SharedTLBAccesses Counter
	SharedTLBHits     Counter
	SharedTLBMisses   Counter

	// Scheduler-specific.
	VTAHits        Counter // victim-tag-array hits (CCWS family)
	SchedThrottles Counter // cycles the scheduling pool was restricted
	CompactedWarps Counter // dynamic warps formed by TBC
	CPMRejects     Counter // compaction candidates deferred by the CPM
}

// Merge folds another Sim into s field by field. Every field is either a
// plain sum (uint64, Counter) or a commutative aggregate (LatencyAccum,
// Hist), so merging the per-core shards a parallel run accumulates — in any
// order — reproduces exactly the values a single shared Sim would have held
// under serial ticking. GPU.Run merges core shards into the global sink once
// at the end of a run.
func (s *Sim) Merge(o *Sim) {
	s.Cycles += o.Cycles
	s.Instructions.Merge(o.Instructions)
	s.MemInstrs.Merge(o.MemInstrs)
	s.IdleCycles.Merge(o.IdleCycles)
	s.CoreCycles += o.CoreCycles

	s.PageDivergence.Merge(&o.PageDivergence)
	s.LineDivergence.Merge(&o.LineDivergence)
	s.ActiveLanes.Merge(&o.ActiveLanes)

	s.TLBAccesses.Merge(o.TLBAccesses)
	s.TLBHits.Merge(o.TLBHits)
	s.TLBMisses.Merge(o.TLBMisses)
	s.TLBHitUnder.Merge(o.TLBHitUnder)
	s.TLBMissLat.Merge(o.TLBMissLat)

	s.L1Accesses.Merge(o.L1Accesses)
	s.L1Hits.Merge(o.L1Hits)
	s.L1Misses.Merge(o.L1Misses)
	s.L1MissLat.Merge(o.L1MissLat)

	s.L2Accesses.Merge(o.L2Accesses)
	s.L2Hits.Merge(o.L2Hits)
	s.L2Misses.Merge(o.L2Misses)

	s.Walks.Merge(o.Walks)
	s.WalkRefs.Merge(o.WalkRefs)
	s.WalkRefsCoalesced.Merge(o.WalkRefsCoalesced)
	s.WalkCacheHits.Merge(o.WalkCacheHits)
	s.PWCHits.Merge(o.PWCHits)
	s.WalkLat.Merge(o.WalkLat)

	s.SharedTLBAccesses.Merge(o.SharedTLBAccesses)
	s.SharedTLBHits.Merge(o.SharedTLBHits)
	s.SharedTLBMisses.Merge(o.SharedTLBMisses)

	s.VTAHits.Merge(o.VTAHits)
	s.SchedThrottles.Merge(o.SchedThrottles)
	s.CompactedWarps.Merge(o.CompactedWarps)
	s.CPMRejects.Merge(o.CPMRejects)
}

// Clone returns an independent deep copy of the statistics. The experiment
// pipeline finalises each completed simulation by handing renderers clones,
// so a renderer can never mutate the shared result another figure (or a
// concurrent worker) is reading — the executor's store stays effectively
// read-only after a run completes.
func (s *Sim) Clone() *Sim {
	c := *s
	c.PageDivergence = s.PageDivergence.Clone()
	c.LineDivergence = s.LineDivergence.Clone()
	c.ActiveLanes = s.ActiveLanes.Clone()
	return &c
}

// TLBMissRate returns misses / accesses (0 when no accesses).
func (s *Sim) TLBMissRate() float64 {
	if s.TLBAccesses == 0 {
		return 0
	}
	return float64(s.TLBMisses) / float64(s.TLBAccesses)
}

// L1MissRate returns misses / accesses (0 when no accesses).
func (s *Sim) L1MissRate() float64 {
	if s.L1Accesses == 0 {
		return 0
	}
	return float64(s.L1Misses) / float64(s.L1Accesses)
}

// L2MissRate returns misses / accesses (0 when no accesses).
func (s *Sim) L2MissRate() float64 {
	if s.L2Accesses == 0 {
		return 0
	}
	return float64(s.L2Misses) / float64(s.L2Accesses)
}

// MemFraction returns memory instructions as a fraction of all instructions.
func (s *Sim) MemFraction() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.MemInstrs) / float64(s.Instructions)
}

// IdleFraction returns the fraction of core-cycles with no issue.
func (s *Sim) IdleFraction() float64 {
	if s.CoreCycles == 0 {
		return 0
	}
	return float64(s.IdleCycles) / float64(s.CoreCycles)
}

// SIMDUtilisation returns mean active lanes divided by width.
func (s *Sim) SIMDUtilisation(width int) float64 {
	if width <= 0 {
		return 0
	}
	return s.ActiveLanes.Mean() / float64(width)
}

// WalkRefsEliminated returns the fraction of walker references removed by
// PTW scheduling (paper reports 10-20%).
func (s *Sim) WalkRefsEliminated() float64 {
	total := uint64(s.WalkRefs) + uint64(s.WalkRefsCoalesced)
	if total == 0 {
		return 0
	}
	return float64(s.WalkRefsCoalesced) / float64(total)
}

// String renders a compact human-readable summary.
func (s *Sim) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d instrs=%d mem=%.1f%% idle=%.1f%%\n",
		s.Cycles, s.Instructions, 100*s.MemFraction(), 100*s.IdleFraction())
	fmt.Fprintf(&b, "tlb: acc=%d missrate=%.1f%% misslat=%.0f  l1: acc=%d missrate=%.1f%% misslat=%.0f\n",
		s.TLBAccesses, 100*s.TLBMissRate(), s.TLBMissLat.Mean(),
		s.L1Accesses, 100*s.L1MissRate(), s.L1MissLat.Mean())
	fmt.Fprintf(&b, "pagediv: avg=%.2f max=%d  walks=%d refs=%d elim=%.1f%% walk$hit=%d\n",
		s.PageDivergence.Mean(), s.PageDivergence.Max(),
		s.Walks, s.WalkRefs, 100*s.WalkRefsEliminated(), s.WalkCacheHits)
	return b.String()
}

// Table is a minimal fixed-width text table used by the experiment harness
// to print figure rows the way the paper's plots are organised.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// SortByColumn orders rows by the given column's string value.
func (t *Table) SortByColumn(col int) {
	sort.SliceStable(t.rows, func(i, j int) bool { return t.rows[i][col] < t.rows[j][col] })
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for pad := len(c); pad < width[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
