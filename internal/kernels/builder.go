package kernels

import "fmt"

// Builder assembles a Program with symbolic labels. Methods append
// instructions; Build resolves labels and validates. Branch instructions
// name both their target and their reconvergence label, making the
// structured control flow explicit for the divergence hardware.
type Builder struct {
	name   string
	code   []Instr
	labels map[string]int32
	fixups []fixup
	errs   []error
}

type fixup struct {
	instr  int
	label  string
	reconv bool // patch Reconv instead of Target
}

// NewBuilder starts a program called name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, labels: make(map[string]int32)}
}

// Label defines label name at the current position.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("kernels: %s: duplicate label %q", b.name, name))
		return
	}
	b.labels[name] = int32(len(b.code))
}

func (b *Builder) emit(in Instr) { b.code = append(b.code, in) }

func (b *Builder) ref(label string, reconv bool) {
	b.fixups = append(b.fixups, fixup{instr: len(b.code) - 1, label: label, reconv: reconv})
}

// Mov emits Dst = A.
func (b *Builder) Mov(d, a Reg) { b.emit(Instr{Kind: KindALU, Op: OpMov, Dst: d, A: a}) }

// MovImm emits Dst = imm.
func (b *Builder) MovImm(d Reg, imm int64) {
	b.emit(Instr{Kind: KindALU, Op: OpMovImm, Dst: d, Imm: imm})
}

// Add emits Dst = A + B.
func (b *Builder) Add(d, a, r Reg) { b.emit(Instr{Kind: KindALU, Op: OpAdd, Dst: d, A: a, B: r}) }

// AddImm emits Dst = A + imm.
func (b *Builder) AddImm(d, a Reg, imm int64) {
	b.emit(Instr{Kind: KindALU, Op: OpAddImm, Dst: d, A: a, Imm: imm})
}

// Sub emits Dst = A - B.
func (b *Builder) Sub(d, a, r Reg) { b.emit(Instr{Kind: KindALU, Op: OpSub, Dst: d, A: a, B: r}) }

// Mul emits Dst = A * B.
func (b *Builder) Mul(d, a, r Reg) { b.emit(Instr{Kind: KindALU, Op: OpMul, Dst: d, A: a, B: r}) }

// MulImm emits Dst = A * imm.
func (b *Builder) MulImm(d, a Reg, imm int64) {
	b.emit(Instr{Kind: KindALU, Op: OpMulImm, Dst: d, A: a, Imm: imm})
}

// Div emits Dst = A / B (unsigned; 0 when B is 0).
func (b *Builder) Div(d, a, r Reg) { b.emit(Instr{Kind: KindALU, Op: OpDiv, Dst: d, A: a, B: r}) }

// Rem emits Dst = A % B (unsigned; 0 when B is 0).
func (b *Builder) Rem(d, a, r Reg) { b.emit(Instr{Kind: KindALU, Op: OpRem, Dst: d, A: a, B: r}) }

// And emits Dst = A & B.
func (b *Builder) And(d, a, r Reg) { b.emit(Instr{Kind: KindALU, Op: OpAnd, Dst: d, A: a, B: r}) }

// AndImm emits Dst = A & imm.
func (b *Builder) AndImm(d, a Reg, imm int64) {
	b.emit(Instr{Kind: KindALU, Op: OpAndImm, Dst: d, A: a, Imm: imm})
}

// Or emits Dst = A | B.
func (b *Builder) Or(d, a, r Reg) { b.emit(Instr{Kind: KindALU, Op: OpOr, Dst: d, A: a, B: r}) }

// Xor emits Dst = A ^ B.
func (b *Builder) Xor(d, a, r Reg) { b.emit(Instr{Kind: KindALU, Op: OpXor, Dst: d, A: a, B: r}) }

// ShlImm emits Dst = A << imm.
func (b *Builder) ShlImm(d, a Reg, imm int64) {
	b.emit(Instr{Kind: KindALU, Op: OpShlImm, Dst: d, A: a, Imm: imm})
}

// ShrImm emits Dst = A >> imm.
func (b *Builder) ShrImm(d, a Reg, imm int64) {
	b.emit(Instr{Kind: KindALU, Op: OpShrImm, Dst: d, A: a, Imm: imm})
}

// Min emits Dst = min(A, B).
func (b *Builder) Min(d, a, r Reg) { b.emit(Instr{Kind: KindALU, Op: OpMin, Dst: d, A: a, B: r}) }

// Sltu emits Dst = (A < B) unsigned.
func (b *Builder) Sltu(d, a, r Reg) { b.emit(Instr{Kind: KindALU, Op: OpSltu, Dst: d, A: a, B: r}) }

// SltuImm emits Dst = (A < imm) unsigned.
func (b *Builder) SltuImm(d, a Reg, imm int64) {
	b.emit(Instr{Kind: KindALU, Op: OpSltuImm, Dst: d, A: a, Imm: imm})
}

// Seq emits Dst = (A == B).
func (b *Builder) Seq(d, a, r Reg) { b.emit(Instr{Kind: KindALU, Op: OpSeq, Dst: d, A: a, B: r}) }

// SeqImm emits Dst = (A == imm).
func (b *Builder) SeqImm(d, a Reg, imm int64) {
	b.emit(Instr{Kind: KindALU, Op: OpSeqImm, Dst: d, A: a, Imm: imm})
}

// Special emits Dst = special register s.
func (b *Builder) Special(d Reg, s Special) {
	b.emit(Instr{Kind: KindALU, Op: OpSpecial, Dst: d, Imm: int64(s)})
}

// Ld emits Dst = mem[A + off] with the given access size (1, 4, or 8).
func (b *Builder) Ld(d, addr Reg, off int64, size uint8) {
	b.emit(Instr{Kind: KindLoad, Dst: d, A: addr, Imm: off, Size: size})
}

// St emits mem[A + off] = B with the given access size.
func (b *Builder) St(addr Reg, off int64, val Reg, size uint8) {
	b.emit(Instr{Kind: KindStore, A: addr, B: val, Imm: off, Size: size})
}

// Bz emits a branch to target when A == 0, reconverging at reconv.
func (b *Builder) Bz(a Reg, target, reconv string) {
	b.emit(Instr{Kind: KindBranch, Cond: CondZ, A: a})
	b.ref(target, false)
	b.ref(reconv, true)
}

// Bnz emits a branch to target when A != 0, reconverging at reconv.
func (b *Builder) Bnz(a Reg, target, reconv string) {
	b.emit(Instr{Kind: KindBranch, Cond: CondNZ, A: a})
	b.ref(target, false)
	b.ref(reconv, true)
}

// Jmp emits an unconditional jump (never divergent).
func (b *Builder) Jmp(target string) {
	b.emit(Instr{Kind: KindJump})
	b.ref(target, false)
}

// Bar emits a block-wide barrier.
func (b *Builder) Bar() { b.emit(Instr{Kind: KindBarrier}) }

// Exit emits thread termination.
func (b *Builder) Exit() { b.emit(Instr{Kind: KindExit}) }

// Build resolves labels and validates the program.
func (b *Builder) Build() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	for _, f := range b.fixups {
		pos, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("kernels: %s: undefined label %q", b.name, f.label)
		}
		if f.reconv {
			b.code[f.instr].Reconv = pos
		} else {
			b.code[f.instr].Target = pos
		}
	}
	p := &Program{Name: b.name, Code: b.code}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error; workload constructors use it
// because their programs are compiled in.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
