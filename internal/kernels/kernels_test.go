package kernels

import (
	"strings"
	"testing"
)

func TestBuilderResolvesLabels(t *testing.T) {
	b := NewBuilder("t")
	b.MovImm(0, 1)
	b.Label("loop")
	b.AddImm(0, 0, -1)
	b.Bnz(0, "loop", "end")
	b.Label("end")
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	br := p.Code[2]
	if br.Target != 1 || br.Reconv != 3 {
		t.Fatalf("branch resolved to target %d reconv %d", br.Target, br.Reconv)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder("t")
	b.Jmp("nowhere")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Fatalf("err = %v", err)
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder("t")
	b.Label("x")
	b.Exit()
	b.Label("x")
	b.Exit()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateRejectsBadPrograms(t *testing.T) {
	cases := []struct {
		name string
		prog Program
	}{
		{"empty", Program{Name: "e"}},
		{"bad-reg", Program{Name: "r", Code: []Instr{{Kind: KindALU, Dst: NumRegs}, {Kind: KindExit}}}},
		{"bad-size", Program{Name: "s", Code: []Instr{{Kind: KindLoad, Size: 3}, {Kind: KindExit}}}},
		{"bad-target", Program{Name: "t", Code: []Instr{{Kind: KindBranch, Target: 99}, {Kind: KindExit}}}},
		{"falls-off", Program{Name: "f", Code: []Instr{{Kind: KindALU}}}},
		{"branch-at-end", Program{Name: "b", Code: []Instr{{Kind: KindBranch, Target: 0}}}},
	}
	for _, c := range cases {
		if err := c.prog.Validate(); err == nil {
			t.Errorf("%s: validated", c.name)
		}
	}
}

func TestValidateAcceptsGoodProgram(t *testing.T) {
	p := Program{Name: "g", Code: []Instr{
		{Kind: KindALU, Op: OpMovImm, Dst: 1, Imm: 5},
		{Kind: KindLoad, Dst: 2, A: 1, Size: 8},
		{Kind: KindBranch, A: 2, Target: 4, Reconv: 4},
		{Kind: KindStore, A: 1, B: 2, Size: 8},
		{Kind: KindExit},
	}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLaunchValidate(t *testing.T) {
	b := NewBuilder("k")
	b.Exit()
	p := b.MustBuild()
	bad := []Launch{
		{},
		{Program: p, Grid: 0, BlockDim: 32},
		{Program: p, Grid: 1, BlockDim: 0},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("case %d validated", i)
		}
	}
	good := Launch{Program: p, Grid: 2, BlockDim: 64}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMustBuildPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild did not panic")
		}
	}()
	b := NewBuilder("bad")
	b.Jmp("missing")
	b.MustBuild()
}
