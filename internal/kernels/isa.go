// Package kernels defines the small SIMT instruction set the simulated GPU
// executes, plus a builder (assembler) for writing kernels in Go. The ISA
// is deliberately minimal — registers, ALU ops, loads/stores, structured
// branches with explicit reconvergence points, barriers — but expressive
// enough to implement the paper's six workloads with realistic
// data-dependent address streams.
package kernels

import "fmt"

// Reg names one of a thread's general-purpose 64-bit registers.
type Reg uint8

// NumRegs is the per-thread register file size.
const NumRegs = 32

// Kind classifies an instruction.
type Kind uint8

// Instruction kinds.
const (
	KindALU Kind = iota
	KindLoad
	KindStore
	KindBranch
	KindJump
	KindBarrier
	KindExit
)

// ALUOp selects the arithmetic/logic operation of a KindALU instruction.
type ALUOp uint8

// ALU operations. Imm variants use the instruction immediate as the second
// operand. All arithmetic is unsigned 64-bit with wraparound.
const (
	OpMov     ALUOp = iota // Dst = A
	OpMovImm               // Dst = Imm
	OpAdd                  // Dst = A + B
	OpAddImm               // Dst = A + Imm
	OpSub                  // Dst = A - B
	OpMul                  // Dst = A * B
	OpMulImm               // Dst = A * Imm
	OpDiv                  // Dst = A / B (0 when B == 0)
	OpRem                  // Dst = A % B (0 when B == 0)
	OpAnd                  // Dst = A & B
	OpAndImm               // Dst = A & Imm
	OpOr                   // Dst = A | B
	OpXor                  // Dst = A ^ B
	OpShlImm               // Dst = A << Imm
	OpShrImm               // Dst = A >> Imm
	OpMin                  // Dst = min(A, B)
	OpSltu                 // Dst = A < B ? 1 : 0
	OpSltuImm              // Dst = A < Imm ? 1 : 0
	OpSeq                  // Dst = A == B ? 1 : 0
	OpSeqImm               // Dst = A == Imm ? 1 : 0
	OpSpecial              // Dst = special register selected by Imm
)

// Cond selects the branch condition applied to register A.
type Cond uint8

// Branch conditions.
const (
	CondZ  Cond = iota // branch when A == 0
	CondNZ             // branch when A != 0
)

// Special identifies a read-only per-thread special value.
type Special uint8

// Special registers available through OpSpecial.
const (
	SpecGlobalTID Special = iota // global thread id across the grid
	SpecBlockTID                 // thread id within the block
	SpecBlockID                  // thread block id
	SpecBlockDim                 // threads per block
	SpecGridDim                  // blocks in the grid
	SpecLane                     // lane within the warp
	SpecWarp                     // warp id within the block
	SpecParam0                   // kernel parameter 0
	SpecParam1
	SpecParam2
	SpecParam3
	SpecParam4
	SpecParam5
	SpecParam6
	SpecParam7
)

// NumParams is how many kernel parameters a launch may carry.
const NumParams = 8

// Instr is one instruction. Target and Reconv are instruction indices;
// Reconv is the branch's immediate post-dominator, which divergence
// hardware (per-warp stacks or TBC) uses as the reconvergence point.
type Instr struct {
	Kind   Kind
	Op     ALUOp
	Cond   Cond
	Dst    Reg
	A      Reg
	B      Reg
	Imm    int64
	Size   uint8 // load/store access size: 1, 4, or 8 bytes
	Target int32
	Reconv int32
}

// Program is a validated kernel.
type Program struct {
	Name string
	Code []Instr
}

// Validate checks structural well-formedness: register indices in range,
// branch targets and reconvergence points inside the program, sensible
// access sizes, and that execution cannot run off the end (the last
// reachable fall-through instruction must be an exit or jump).
func (p *Program) Validate() error {
	n := int32(len(p.Code))
	if n == 0 {
		return fmt.Errorf("kernels: %s: empty program", p.Name)
	}
	for i, in := range p.Code {
		if in.Dst >= NumRegs || in.A >= NumRegs || in.B >= NumRegs {
			return fmt.Errorf("kernels: %s[%d]: register out of range", p.Name, i)
		}
		switch in.Kind {
		case KindLoad, KindStore:
			if in.Size != 1 && in.Size != 4 && in.Size != 8 {
				return fmt.Errorf("kernels: %s[%d]: bad access size %d", p.Name, i, in.Size)
			}
		case KindBranch:
			if in.Target < 0 || in.Target >= n {
				return fmt.Errorf("kernels: %s[%d]: branch target %d out of range", p.Name, i, in.Target)
			}
			if in.Reconv < 0 || in.Reconv > n {
				return fmt.Errorf("kernels: %s[%d]: reconvergence %d out of range", p.Name, i, in.Reconv)
			}
			if int32(i+1) >= n {
				return fmt.Errorf("kernels: %s[%d]: branch falls off program end", p.Name, i)
			}
		case KindJump:
			if in.Target < 0 || in.Target >= n {
				return fmt.Errorf("kernels: %s[%d]: jump target %d out of range", p.Name, i, in.Target)
			}
		case KindALU:
			if in.Op == OpSpecial && (in.Imm < 0 || in.Imm >= int64(SpecParam0)+NumParams) {
				return fmt.Errorf("kernels: %s[%d]: bad special %d", p.Name, i, in.Imm)
			}
		}
	}
	last := p.Code[n-1]
	if last.Kind != KindExit && last.Kind != KindJump && last.Kind != KindBranch {
		return fmt.Errorf("kernels: %s: program does not end in exit/jump", p.Name)
	}
	return nil
}

// Launch describes one kernel grid launch.
type Launch struct {
	Program  *Program
	Grid     int // number of thread blocks
	BlockDim int // threads per block
	Params   [NumParams]uint64
}

// Validate checks launch geometry.
func (l *Launch) Validate() error {
	if l.Program == nil {
		return fmt.Errorf("kernels: launch has no program")
	}
	if err := l.Program.Validate(); err != nil {
		return err
	}
	if l.Grid < 1 {
		return fmt.Errorf("kernels: grid size %d < 1", l.Grid)
	}
	if l.BlockDim < 1 {
		return fmt.Errorf("kernels: block dim %d < 1", l.BlockDim)
	}
	return nil
}
