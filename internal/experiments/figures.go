package experiments

import (
	"fmt"
	"strings"

	"gpummu/internal/config"
	"gpummu/internal/stats"
)

// cfgNoTLB returns the machine with translation disabled.
func (h *Harness) cfgNoTLB() config.Hardware {
	cfg := h.opt.Machine()
	cfg.MMU = config.MMU{Enabled: false}
	return cfg
}

func (h *Harness) cfgWith(m config.MMU) config.Hardware {
	cfg := h.opt.Machine()
	cfg.MMU = m
	return cfg
}

// variant is one column of a speedup table: a header and the hardware
// configuration that produces it. Declaring a figure as a variant list
// gives both pipeline phases for free: the planner turns it into RunSpecs
// and the renderer into a table, so the matrix is stated exactly once.
type variant struct {
	col string
	cfg config.Hardware
}

// variantSpecs declares the runs a variant table needs: for every
// workload, each variant's configuration, plus (when normalise is set)
// the no-TLB baseline every speedup divides by.
func variantSpecs(h *Harness, vs []variant, normalise bool) []RunSpec {
	var specs []RunSpec
	for _, w := range h.opt.Workload {
		if normalise {
			specs = append(specs, h.Spec(w, h.cfgNoTLB()))
		}
		for _, v := range vs {
			specs = append(specs, h.Spec(w, v.cfg))
		}
	}
	return specs
}

// speedupTable renders one row per workload and one column per variant,
// each cell the variant's speedup over the no-TLB baseline.
func speedupTable(h *Harness, vs []variant) (string, error) {
	cols := []string{"workload"}
	for _, v := range vs {
		cols = append(cols, v.col)
	}
	tbl := stats.NewTable(cols...)
	for _, w := range h.opt.Workload {
		row := []interface{}{w}
		for _, v := range vs {
			st, err := h.Run(w, v.cfg)
			if err != nil {
				return "", err
			}
			s, err := h.speedup(w, st)
			if err != nil {
				return "", err
			}
			row = append(row, s)
		}
		tbl.AddRow(row...)
	}
	return tbl.String(), nil
}

// variantFigure wires a variant list into a Figure's Plan and Run phases.
func variantFigure(id, title, paper string, vs func(h *Harness) []variant) Figure {
	return Figure{
		ID: id, Title: title, Paper: paper,
		Plan: func(h *Harness) []RunSpec { return variantSpecs(h, vs(h), true) },
		Run:  func(h *Harness) (string, error) { return speedupTable(h, vs(h)) },
	}
}

// fig2Variants: naive 128-entry 3-port TLBs under plain LRR, CCWS, and
// TBC, all normalised to the no-TLB LRR baseline (the motivation figure).
func fig2Variants(h *Harness) []variant {
	ccwsBase := h.cfgNoTLB()
	ccwsBase.Sched.Policy = config.SchedCCWS
	ccwsTLB := h.cfgWith(config.NaiveMMU(3))
	ccwsTLB.Sched.Policy = config.SchedCCWS
	tbcBase := h.cfgNoTLB()
	tbcBase.TBC.Mode = config.DivTBC
	tbcTLB := h.cfgWith(config.NaiveMMU(3))
	tbcTLB.TBC.Mode = config.DivTBC
	return []variant{
		{"naive-tlb", h.cfgWith(config.NaiveMMU(3))},
		{"ccws-no-tlb", ccwsBase},
		{"ccws+tlb", ccwsTLB},
		{"tbc-no-tlb", tbcBase},
		{"tbc+tlb", tbcTLB},
	}
}

// Figure2 reproduces the motivation figure.
func Figure2(h *Harness) (string, error) { return speedupTable(h, fig2Variants(h)) }

// fig3Specs: the characterisation needs only the naive 3-port TLB run.
func fig3Specs(h *Harness) []RunSpec {
	return variantSpecs(h, []variant{{"naive", h.cfgWith(config.NaiveMMU(3))}}, false)
}

// Figure3 reproduces the characterisation: memory instruction fraction,
// TLB miss rate on 128-entry TLBs, and page divergence (average and max).
func Figure3(h *Harness) (string, error) {
	tbl := stats.NewTable("workload", "mem-instr-%", "tlb-miss-%", "pagediv-avg", "pagediv-max")
	for _, w := range h.opt.Workload {
		st, err := h.Run(w, h.cfgWith(config.NaiveMMU(3)))
		if err != nil {
			return "", err
		}
		tbl.AddRow(w, 100*st.MemFraction(), 100*st.TLBMissRate(),
			st.PageDivergence.Mean(), st.PageDivergence.Max())
	}
	return tbl.String(), nil
}

// Figure4 compares average TLB miss latency with average L1 miss latency.
func Figure4(h *Harness) (string, error) {
	tbl := stats.NewTable("workload", "l1-miss-cycles", "tlb-miss-cycles", "ratio")
	for _, w := range h.opt.Workload {
		st, err := h.Run(w, h.cfgWith(config.NaiveMMU(3)))
		if err != nil {
			return "", err
		}
		l1 := st.L1MissLat.Mean()
		tlb := st.TLBMissLat.Mean()
		ratio := 0.0
		if l1 > 0 {
			ratio = tlb / l1
		}
		tbl.AddRow(w, l1, tlb, ratio)
	}
	return tbl.String(), nil
}

// fig6Matrix enumerates the size/port sweep's configurations.
var fig6Sizes = []int{64, 128, 256, 512}
var fig6Ports = []int{3, 4, 8, 16, 32}

func fig6Cfg(h *Harness, entries, ports int) config.Hardware {
	m := config.NaiveMMU(ports)
	m.Entries = entries
	return h.cfgWith(m)
}

func fig6Specs(h *Harness) []RunSpec {
	var specs []RunSpec
	for _, w := range h.opt.Workload {
		specs = append(specs, h.Spec(w, h.cfgNoTLB()))
		for _, p := range fig6Ports {
			for _, z := range fig6Sizes {
				specs = append(specs, h.Spec(w, fig6Cfg(h, z, p)))
			}
		}
	}
	return specs
}

// Figure6 sweeps TLB sizes (with realistic access-latency penalties) and
// port counts, reporting speedup vs the no-TLB baseline.
func Figure6(h *Harness) (string, error) {
	cols := []string{"workload", "ports"}
	for _, z := range fig6Sizes {
		cols = append(cols, fmt.Sprintf("%de", z))
	}
	tbl := stats.NewTable(cols...)
	for _, w := range h.opt.Workload {
		for _, p := range fig6Ports {
			row := []interface{}{w, p}
			for _, z := range fig6Sizes {
				st, err := h.Run(w, fig6Cfg(h, z, p))
				if err != nil {
					return "", err
				}
				s, err := h.speedup(w, st)
				if err != nil {
					return "", err
				}
				row = append(row, s)
			}
			tbl.AddRow(row...)
		}
	}
	return tbl.String(), nil
}

// fig7Variants: non-blocking facilities added stepwise vs the ideal TLB.
func fig7Variants(h *Harness) []variant {
	blocking := config.NaiveMMU(4)
	hum := blocking
	hum.HitsUnderMiss = true
	ovl := hum
	ovl.CacheOverlap = true
	return []variant{
		{"blocking", h.cfgWith(blocking)},
		{"+hits-under-miss", h.cfgWith(hum)},
		{"+cache-overlap", h.cfgWith(ovl)},
		{"ideal-512e-32p", h.cfgWith(config.MMU{}.Ideal())},
	}
}

// Figure7 adds non-blocking facilities stepwise and compares against the
// impractical ideal TLB.
func Figure7(h *Harness) (string, error) { return speedupTable(h, fig7Variants(h)) }

// fig10MMUs returns the nonblocking, +ptw-sched, and ideal designs.
func fig10MMUs() (nb, sched, ideal config.MMU) {
	nb = config.NaiveMMU(4)
	nb.HitsUnderMiss = true
	nb.CacheOverlap = true
	sched = nb
	sched.PTWSched = true
	return nb, sched, config.MMU{}.Ideal()
}

func fig10Specs(h *Harness) []RunSpec {
	nb, sched, ideal := fig10MMUs()
	return variantSpecs(h, []variant{
		{"nonblocking", h.cfgWith(nb)},
		{"+ptw-sched", h.cfgWith(sched)},
		{"ideal", h.cfgWith(ideal)},
	}, true)
}

// Figure10 adds PTW scheduling on top of the non-blocking TLB and reports
// the walk-reference savings the paper quotes in the text.
func Figure10(h *Harness) (string, error) {
	tbl := stats.NewTable("workload", "nonblocking", "+ptw-sched", "ideal", "refs-elim-%", "walk$hit-%")
	nb, sched, ideal := fig10MMUs()
	for _, w := range h.opt.Workload {
		row := []interface{}{w}
		var schedSt *stats.Sim
		for _, m := range []config.MMU{nb, sched, ideal} {
			st, err := h.Run(w, h.cfgWith(m))
			if err != nil {
				return "", err
			}
			if m.PTWSched && !m.IdealLatency {
				schedSt = st
			}
			s, err := h.speedup(w, st)
			if err != nil {
				return "", err
			}
			row = append(row, s)
		}
		walkHit := 0.0
		if schedSt.WalkRefs > 0 {
			walkHit = 100 * float64(schedSt.WalkCacheHits) / float64(schedSt.WalkRefs)
		}
		row = append(row, 100*schedSt.WalkRefsEliminated(), walkHit)
		tbl.AddRow(row...)
	}
	return tbl.String(), nil
}

// fig11Variants: the augmented single walker against naive multi-walker
// designs.
func fig11Variants(h *Harness) []variant {
	vs := []variant{{"augmented-1ptw", h.cfgWith(config.AugmentedMMU())}}
	for _, n := range []int{2, 4, 8} {
		m := config.NaiveMMU(4)
		m.NumPTWs = n
		vs = append(vs, variant{fmt.Sprintf("naive-%dptw", n), h.cfgWith(m)})
	}
	return vs
}

// Figure11 compares the augmented single-walker design against naive TLBs
// with 2, 4, and 8 walkers.
func Figure11(h *Harness) (string, error) { return speedupTable(h, fig11Variants(h)) }

// fig13Variants: CCWS with and without naive/augmented TLBs.
func fig13Variants(h *Harness) []variant {
	mk := func(m config.MMU, pol config.SchedulerPolicy) config.Hardware {
		cfg := h.cfgWith(m)
		cfg.Sched.Policy = pol
		return cfg
	}
	return []variant{
		{"naive-tlb", mk(config.NaiveMMU(4), config.SchedLRR)},
		{"augmented", mk(config.AugmentedMMU(), config.SchedLRR)},
		{"ccws-no-tlb", mk(config.MMU{Enabled: false}, config.SchedCCWS)},
		{"ccws+naive", mk(config.NaiveMMU(4), config.SchedCCWS)},
		{"ccws+augmented", mk(config.AugmentedMMU(), config.SchedCCWS)},
	}
}

// Figure13 shows CCWS with and without naive/augmented TLBs.
func Figure13(h *Harness) (string, error) { return speedupTable(h, fig13Variants(h)) }

// fig16Variants: the TA-CCWS TLB-miss weight sweep.
func fig16Variants(h *Harness) []variant {
	ccwsBase := h.cfgNoTLB()
	ccwsBase.Sched.Policy = config.SchedCCWS
	plain := h.cfgWith(config.AugmentedMMU())
	plain.Sched.Policy = config.SchedCCWS
	vs := []variant{
		{"ccws-no-tlb", ccwsBase},
		{"ccws+aug", plain},
	}
	for _, wt := range []int{2, 4, 8} {
		cfg := h.cfgWith(config.AugmentedMMU())
		cfg.Sched.Policy = config.SchedTACCWS
		cfg.Sched.TLBMissWeight = wt
		vs = append(vs, variant{fmt.Sprintf("ta-ccws-%d:1", wt), cfg})
	}
	return vs
}

// Figure16 sweeps TA-CCWS TLB-miss weights.
func Figure16(h *Harness) (string, error) { return speedupTable(h, fig16Variants(h)) }

// fig17Variants: the TCWS victim-tag-array entries-per-warp sweep.
func fig17Variants(h *Harness) []variant {
	ccwsBase := h.cfgNoTLB()
	ccwsBase.Sched.Policy = config.SchedCCWS
	ta := h.cfgWith(config.AugmentedMMU())
	ta.Sched.Policy = config.SchedTACCWS
	ta.Sched.TLBMissWeight = 4
	vs := []variant{
		{"ccws-no-tlb", ccwsBase},
		{"ta-ccws-4:1", ta},
	}
	for _, epw := range []int{2, 4, 8, 16} {
		cfg := h.cfgWith(config.AugmentedMMU())
		cfg.Sched.Policy = config.SchedTCWS
		cfg.Sched.TLBMissWeight = 4
		cfg.Sched.VTAEntriesPerWarp = epw
		vs = append(vs, variant{fmt.Sprintf("tcws-%depw", epw), cfg})
	}
	return vs
}

// Figure17 sweeps TCWS victim-tag-array entries per warp.
func Figure17(h *Harness) (string, error) { return speedupTable(h, fig17Variants(h)) }

// fig18Variants: the TCWS LRU-depth weight schemes.
func fig18Variants(h *Harness) []variant {
	ccwsBase := h.cfgNoTLB()
	ccwsBase.Sched.Policy = config.SchedCCWS
	tcws := func(ws []int) config.Hardware {
		cfg := h.cfgWith(config.AugmentedMMU())
		cfg.Sched.Policy = config.SchedTCWS
		cfg.Sched.TLBMissWeight = 4
		cfg.Sched.VTAEntriesPerWarp = 8
		cfg.Sched.LRUDepthWeights = ws
		return cfg
	}
	return []variant{
		{"ccws-no-tlb", ccwsBase},
		{"tcws-8epw", tcws(nil)},
		{"lru(1,2,3,4)", tcws([]int{1, 2, 3, 4})},
		{"lru(1,2,4,8)", tcws([]int{1, 2, 4, 8})},
		{"lru(1,3,6,9)", tcws([]int{1, 3, 6, 9})},
	}
}

// Figure18 sweeps TCWS LRU-depth weight schemes.
func Figure18(h *Harness) (string, error) { return speedupTable(h, fig18Variants(h)) }

// fig20Variants: TBC with and without naive/augmented TLBs.
func fig20Variants(h *Harness) []variant {
	mk := func(m config.MMU, mode config.DivergenceMode) config.Hardware {
		cfg := h.cfgWith(m)
		cfg.TBC.Mode = mode
		return cfg
	}
	return []variant{
		{"tbc-no-tlb", mk(config.MMU{Enabled: false}, config.DivTBC)},
		{"tbc+naive", mk(config.NaiveMMU(4), config.DivTBC)},
		{"tbc+augmented", mk(config.AugmentedMMU(), config.DivTBC)},
		{"naive-no-tbc", mk(config.NaiveMMU(4), config.DivStack)},
		{"augmented-no-tbc", mk(config.AugmentedMMU(), config.DivStack)},
	}
}

// Figure20 shows TBC with and without naive/augmented TLBs.
func Figure20(h *Harness) (string, error) { return speedupTable(h, fig20Variants(h)) }

// fig22Variants: the CPM counter-width sweep for TLB-aware TBC.
func fig22Variants(h *Harness) []variant {
	base := h.cfgNoTLB()
	base.TBC.Mode = config.DivTBC
	agn := h.cfgWith(config.AugmentedMMU())
	agn.TBC.Mode = config.DivTBC
	vs := []variant{
		{"tbc-no-tlb", base},
		{"tbc+augmented", agn},
	}
	for _, bits := range []int{1, 2, 3} {
		cfg := h.cfgWith(config.AugmentedMMU())
		cfg.TBC.Mode = config.DivTLBTBC
		cfg.TBC.CPMBits = bits
		vs = append(vs, variant{fmt.Sprintf("tlb-tbc-%dbit", bits), cfg})
	}
	return vs
}

// Figure22 sweeps CPM counter widths for TLB-aware TBC.
func Figure22(h *Harness) (string, error) { return speedupTable(h, fig22Variants(h)) }

// figLPCfgs returns the three large-page study configurations.
func figLPCfgs(h *Harness) (small, big, base2m config.Hardware) {
	small = h.cfgWith(config.AugmentedMMU())
	big = h.cfgWith(config.AugmentedMMU())
	big.PageShift = 21
	base2m = h.cfgNoTLB()
	base2m.PageShift = 21
	return
}

func figLPSpecs(h *Harness) []RunSpec {
	small, big, base2m := figLPCfgs(h)
	return variantSpecs(h, []variant{
		{"4k", small}, {"2m", big}, {"2m-base", base2m},
	}, false)
}

// FigureLargePages reports 2 MB-page divergence and overheads (section 9).
func FigureLargePages(h *Harness) (string, error) {
	tbl := stats.NewTable("workload", "4k-pagediv", "2m-pagediv", "4k-missrate-%", "2m-missrate-%", "2m-speedup-vs-no-tlb")
	smallCfg, bigCfg, baseCfg := figLPCfgs(h)
	for _, w := range h.opt.Workload {
		small, err := h.Run(w, smallCfg)
		if err != nil {
			return "", err
		}
		big, err := h.Run(w, bigCfg)
		if err != nil {
			return "", err
		}
		base2m, err := h.Run(w, baseCfg)
		if err != nil {
			return "", err
		}
		sp := 0.0
		if big.Cycles > 0 {
			sp = float64(base2m.Cycles) / float64(big.Cycles)
		}
		tbl.AddRow(w, small.PageDivergence.Mean(), big.PageDivergence.Mean(),
			100*small.TLBMissRate(), 100*big.TLBMissRate(), sp)
	}
	return tbl.String(), nil
}

// figEXTVariants: this repository's beyond-the-paper designs (section 10
// "low-hanging fruit"): a page walk cache, a chip-level shared L2 TLB, and
// software-managed walks, all against the augmented MMU.
func figEXTVariants(h *Harness) []variant {
	aug := config.AugmentedMMU()
	pwc := aug
	pwc.PWCEntries = 64
	sh := aug
	sh.SharedTLBEntries = 4096
	sw := config.NaiveMMU(4)
	sw.SoftwareWalks = true
	sw.SoftwareWalkOverhead = 300
	return []variant{
		{"augmented", h.cfgWith(aug)},
		{"+pwc64", h.cfgWith(pwc)},
		{"+shared-l2-tlb", h.cfgWith(sh)},
		{"software-walks", h.cfgWith(sw)},
	}
}

// FigureExtensions evaluates the beyond-the-paper designs.
func FigureExtensions(h *Harness) (string, error) { return speedupTable(h, figEXTVariants(h)) }

// All returns every figure reproduction, in paper order.
func All() []Figure {
	fig2 := variantFigure("fig2", "Naive TLBs under LRR, CCWS and TBC",
		"naive 128e/3p TLBs degrade performance in every case; 30-50% below CCWS/TBC without TLBs", fig2Variants)
	fig7 := variantFigure("fig7", "Non-blocking TLBs",
		"hits-under-miss helps; overlapping cache access helps more (e.g. +8% streamcluster)", fig7Variants)
	fig11 := variantFigure("fig11", "Augmented 1 PTW vs naive multi-PTW",
		"augmented single walker outperforms 8 naive walkers by ~10%", fig11Variants)
	fig13 := variantFigure("fig13", "CCWS with TLBs",
		"CCWS+naive TLBs far below CCWS without TLBs; augmented MMU narrows but does not close the gap", fig13Variants)
	fig16 := variantFigure("fig16", "TA-CCWS weight sweep",
		"weighting TLB misses 4x cache misses recovers most CCWS loss on 4 of 6 workloads", fig16Variants)
	fig17 := variantFigure("fig17", "TCWS entries-per-warp sweep",
		"8 entries per warp VTA performs best, beating TA-CCWS with half the hardware", fig17Variants)
	fig18 := variantFigure("fig18", "TCWS LRU-depth weights",
		"LRU(1,2,4,8) best; within 1-15% of CCWS-without-TLBs", fig18Variants)
	fig20 := variantFigure("fig20", "TBC with TLBs",
		"TBC+TLBs loses ~20% vs TBC without TLBs; augmented TLBs alone beat TBC+augmented TLBs", fig20Variants)
	fig22 := variantFigure("fig22", "TLB-aware TBC CPM bits",
		"even 1-bit CPM counters help; 3 bits land within 3-12% of TBC without TLBs", fig22Variants)
	figEXT := variantFigure("figEXT", "Extensions beyond the paper",
		"no paper reference — page walk cache, shared L2 TLB, and software-managed walks vs the augmented MMU", figEXTVariants)
	return []Figure{
		fig2,
		{ID: "fig3", Title: "Workload characterisation",
			Paper: "mem instrs <25% of total; TLB miss rates 22-70%; page divergence avg >4 (bfs) and >8 (mummer), max consistently high",
			Plan:  fig3Specs, Run: Figure3},
		{ID: "fig4", Title: "TLB vs L1 miss latency",
			Paper: "TLB misses cost about twice an L1 miss",
			Plan:  fig3Specs, Run: Figure4}, // same single naive-TLB run as fig3
		{ID: "fig6", Title: "TLB size and port sweep",
			Paper: "128 entries best once real access latencies included; 3->4 ports recovers most port-starved loss",
			Plan:  fig6Specs, Run: Figure6},
		fig7,
		{ID: "fig10", Title: "PTW scheduling",
			Paper: "within ~1% of the impractical ideal TLB; walk refs cut 10-20%; walk cache hit rate up 5-8%",
			Plan:  fig10Specs, Run: Figure10},
		fig11,
		fig13,
		fig16,
		fig17,
		fig18,
		fig20,
		fig22,
		{ID: "figLP", Title: "2MB large pages",
			Paper: "large pages collapse page divergence except bfs/mummer, which keep divergence ~3 and ~6",
			Plan:  figLPSpecs, Run: FigureLargePages},
		figEXT,
	}
}

// Summary renders a short all-figures index.
func Summary() string {
	var b strings.Builder
	for _, f := range All() {
		fmt.Fprintf(&b, "%-6s %s\n", f.ID, f.Title)
	}
	return b.String()
}
