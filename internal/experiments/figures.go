package experiments

import (
	"fmt"
	"strings"

	"gpummu/internal/config"
	"gpummu/internal/stats"
)

// cfgNoTLB returns the machine with translation disabled.
func (h *Harness) cfgNoTLB() config.Hardware {
	cfg := h.opt.Machine()
	cfg.MMU = config.MMU{Enabled: false}
	return cfg
}

func (h *Harness) cfgWith(m config.MMU) config.Hardware {
	cfg := h.opt.Machine()
	cfg.MMU = m
	return cfg
}

// Figure2 reproduces the motivation figure: naive 128-entry 3-port TLBs
// under plain LRR, CCWS, and TBC, all normalised to the no-TLB LRR
// baseline.
func Figure2(h *Harness) (string, error) {
	tbl := stats.NewTable("workload", "naive-tlb", "ccws-no-tlb", "ccws+tlb", "tbc-no-tlb", "tbc+tlb")
	for _, w := range h.opt.Workload {
		naive, err := h.Run(w, h.cfgWith(config.NaiveMMU(3)))
		if err != nil {
			return "", err
		}
		ccwsBase := h.cfgNoTLB()
		ccwsBase.Sched.Policy = config.SchedCCWS
		cb, err := h.Run(w, ccwsBase)
		if err != nil {
			return "", err
		}
		ccwsTLB := h.cfgWith(config.NaiveMMU(3))
		ccwsTLB.Sched.Policy = config.SchedCCWS
		ct, err := h.Run(w, ccwsTLB)
		if err != nil {
			return "", err
		}
		tbcBase := h.cfgNoTLB()
		tbcBase.TBC.Mode = config.DivTBC
		tb, err := h.Run(w, tbcBase)
		if err != nil {
			return "", err
		}
		tbcTLB := h.cfgWith(config.NaiveMMU(3))
		tbcTLB.TBC.Mode = config.DivTBC
		tt, err := h.Run(w, tbcTLB)
		if err != nil {
			return "", err
		}
		row := []interface{}{w}
		for _, st := range []*stats.Sim{naive, cb, ct, tb, tt} {
			s, err := h.speedup(w, st)
			if err != nil {
				return "", err
			}
			row = append(row, s)
		}
		tbl.AddRow(row...)
	}
	return tbl.String(), nil
}

// Figure3 reproduces the characterisation: memory instruction fraction,
// TLB miss rate on 128-entry TLBs, and page divergence (average and max).
func Figure3(h *Harness) (string, error) {
	tbl := stats.NewTable("workload", "mem-instr-%", "tlb-miss-%", "pagediv-avg", "pagediv-max")
	for _, w := range h.opt.Workload {
		st, err := h.Run(w, h.cfgWith(config.NaiveMMU(3)))
		if err != nil {
			return "", err
		}
		tbl.AddRow(w, 100*st.MemFraction(), 100*st.TLBMissRate(),
			st.PageDivergence.Mean(), st.PageDivergence.Max())
	}
	return tbl.String(), nil
}

// Figure4 compares average TLB miss latency with average L1 miss latency.
func Figure4(h *Harness) (string, error) {
	tbl := stats.NewTable("workload", "l1-miss-cycles", "tlb-miss-cycles", "ratio")
	for _, w := range h.opt.Workload {
		st, err := h.Run(w, h.cfgWith(config.NaiveMMU(3)))
		if err != nil {
			return "", err
		}
		l1 := st.L1MissLat.Mean()
		tlb := st.TLBMissLat.Mean()
		ratio := 0.0
		if l1 > 0 {
			ratio = tlb / l1
		}
		tbl.AddRow(w, l1, tlb, ratio)
	}
	return tbl.String(), nil
}

// Figure6 sweeps TLB sizes (with realistic access-latency penalties) and
// port counts, reporting speedup vs the no-TLB baseline.
func Figure6(h *Harness) (string, error) {
	sizes := []int{64, 128, 256, 512}
	ports := []int{3, 4, 8, 16, 32}
	tbl := stats.NewTable(append([]string{"workload", "ports"}, func() []string {
		var s []string
		for _, z := range sizes {
			s = append(s, fmt.Sprintf("%de", z))
		}
		return s
	}()...)...)
	for _, w := range h.opt.Workload {
		for _, p := range ports {
			row := []interface{}{w, p}
			for _, z := range sizes {
				m := config.NaiveMMU(p)
				m.Entries = z
				st, err := h.Run(w, h.cfgWith(m))
				if err != nil {
					return "", err
				}
				s, err := h.speedup(w, st)
				if err != nil {
					return "", err
				}
				row = append(row, s)
			}
			tbl.AddRow(row...)
		}
	}
	return tbl.String(), nil
}

// Figure7 adds non-blocking facilities stepwise and compares against the
// impractical ideal TLB.
func Figure7(h *Harness) (string, error) {
	tbl := stats.NewTable("workload", "blocking", "+hits-under-miss", "+cache-overlap", "ideal-512e-32p")
	for _, w := range h.opt.Workload {
		blocking := config.NaiveMMU(4)
		hum := blocking
		hum.HitsUnderMiss = true
		ovl := hum
		ovl.CacheOverlap = true
		ideal := config.MMU{}.Ideal()
		row := []interface{}{w}
		for _, m := range []config.MMU{blocking, hum, ovl, ideal} {
			st, err := h.Run(w, h.cfgWith(m))
			if err != nil {
				return "", err
			}
			s, err := h.speedup(w, st)
			if err != nil {
				return "", err
			}
			row = append(row, s)
		}
		tbl.AddRow(row...)
	}
	return tbl.String(), nil
}

// Figure10 adds PTW scheduling on top of the non-blocking TLB and reports
// the walk-reference savings the paper quotes in the text.
func Figure10(h *Harness) (string, error) {
	tbl := stats.NewTable("workload", "nonblocking", "+ptw-sched", "ideal", "refs-elim-%", "walk$hit-%")
	for _, w := range h.opt.Workload {
		nb := config.NaiveMMU(4)
		nb.HitsUnderMiss = true
		nb.CacheOverlap = true
		sched := nb
		sched.PTWSched = true
		ideal := config.MMU{}.Ideal()

		row := []interface{}{w}
		var schedSt *stats.Sim
		for _, m := range []config.MMU{nb, sched, ideal} {
			st, err := h.Run(w, h.cfgWith(m))
			if err != nil {
				return "", err
			}
			if m.PTWSched && !m.IdealLatency {
				schedSt = st
			}
			s, err := h.speedup(w, st)
			if err != nil {
				return "", err
			}
			row = append(row, s)
		}
		walkHit := 0.0
		if schedSt.WalkRefs > 0 {
			walkHit = 100 * float64(schedSt.WalkCacheHits) / float64(schedSt.WalkRefs)
		}
		row = append(row, 100*schedSt.WalkRefsEliminated(), walkHit)
		tbl.AddRow(row...)
	}
	return tbl.String(), nil
}

// Figure11 compares the augmented single-walker design against naive TLBs
// with 2, 4, and 8 walkers.
func Figure11(h *Harness) (string, error) {
	tbl := stats.NewTable("workload", "augmented-1ptw", "naive-2ptw", "naive-4ptw", "naive-8ptw")
	for _, w := range h.opt.Workload {
		row := []interface{}{w}
		aug, err := h.Run(w, h.cfgWith(config.AugmentedMMU()))
		if err != nil {
			return "", err
		}
		s, err := h.speedup(w, aug)
		if err != nil {
			return "", err
		}
		row = append(row, s)
		for _, n := range []int{2, 4, 8} {
			m := config.NaiveMMU(4)
			m.NumPTWs = n
			st, err := h.Run(w, h.cfgWith(m))
			if err != nil {
				return "", err
			}
			s, err := h.speedup(w, st)
			if err != nil {
				return "", err
			}
			row = append(row, s)
		}
		tbl.AddRow(row...)
	}
	return tbl.String(), nil
}

// Figure13 shows CCWS with and without naive/augmented TLBs.
func Figure13(h *Harness) (string, error) {
	tbl := stats.NewTable("workload", "naive-tlb", "augmented", "ccws-no-tlb", "ccws+naive", "ccws+augmented")
	for _, w := range h.opt.Workload {
		mk := func(m config.MMU, pol config.SchedulerPolicy) (float64, error) {
			cfg := h.cfgWith(m)
			cfg.Sched.Policy = pol
			st, err := h.Run(w, cfg)
			if err != nil {
				return 0, err
			}
			return h.speedup(w, st)
		}
		row := []interface{}{w}
		for _, c := range []struct {
			m   config.MMU
			pol config.SchedulerPolicy
		}{
			{config.NaiveMMU(4), config.SchedLRR},
			{config.AugmentedMMU(), config.SchedLRR},
			{config.MMU{Enabled: false}, config.SchedCCWS},
			{config.NaiveMMU(4), config.SchedCCWS},
			{config.AugmentedMMU(), config.SchedCCWS},
		} {
			s, err := mk(c.m, c.pol)
			if err != nil {
				return "", err
			}
			row = append(row, s)
		}
		tbl.AddRow(row...)
	}
	return tbl.String(), nil
}

// Figure16 sweeps TA-CCWS TLB-miss weights.
func Figure16(h *Harness) (string, error) {
	tbl := stats.NewTable("workload", "ccws-no-tlb", "ccws+aug", "ta-ccws-2:1", "ta-ccws-4:1", "ta-ccws-8:1")
	for _, w := range h.opt.Workload {
		row := []interface{}{w}
		base := h.cfgNoTLB()
		base.Sched.Policy = config.SchedCCWS
		st, err := h.Run(w, base)
		if err != nil {
			return "", err
		}
		s, err := h.speedup(w, st)
		if err != nil {
			return "", err
		}
		row = append(row, s)

		plain := h.cfgWith(config.AugmentedMMU())
		plain.Sched.Policy = config.SchedCCWS
		st, err = h.Run(w, plain)
		if err != nil {
			return "", err
		}
		if s, err = h.speedup(w, st); err != nil {
			return "", err
		}
		row = append(row, s)

		for _, wt := range []int{2, 4, 8} {
			cfg := h.cfgWith(config.AugmentedMMU())
			cfg.Sched.Policy = config.SchedTACCWS
			cfg.Sched.TLBMissWeight = wt
			st, err := h.Run(w, cfg)
			if err != nil {
				return "", err
			}
			if s, err = h.speedup(w, st); err != nil {
				return "", err
			}
			row = append(row, s)
		}
		tbl.AddRow(row...)
	}
	return tbl.String(), nil
}

// Figure17 sweeps TCWS victim-tag-array entries per warp.
func Figure17(h *Harness) (string, error) {
	tbl := stats.NewTable("workload", "ccws-no-tlb", "ta-ccws-4:1", "tcws-2epw", "tcws-4epw", "tcws-8epw", "tcws-16epw")
	for _, w := range h.opt.Workload {
		row := []interface{}{w}
		base := h.cfgNoTLB()
		base.Sched.Policy = config.SchedCCWS
		st, err := h.Run(w, base)
		if err != nil {
			return "", err
		}
		s, err := h.speedup(w, st)
		if err != nil {
			return "", err
		}
		row = append(row, s)

		ta := h.cfgWith(config.AugmentedMMU())
		ta.Sched.Policy = config.SchedTACCWS
		ta.Sched.TLBMissWeight = 4
		st, err = h.Run(w, ta)
		if err != nil {
			return "", err
		}
		if s, err = h.speedup(w, st); err != nil {
			return "", err
		}
		row = append(row, s)

		for _, epw := range []int{2, 4, 8, 16} {
			cfg := h.cfgWith(config.AugmentedMMU())
			cfg.Sched.Policy = config.SchedTCWS
			cfg.Sched.TLBMissWeight = 4
			cfg.Sched.VTAEntriesPerWarp = epw
			st, err := h.Run(w, cfg)
			if err != nil {
				return "", err
			}
			if s, err = h.speedup(w, st); err != nil {
				return "", err
			}
			row = append(row, s)
		}
		tbl.AddRow(row...)
	}
	return tbl.String(), nil
}

// Figure18 sweeps TCWS LRU-depth weight schemes.
func Figure18(h *Harness) (string, error) {
	schemes := []struct {
		name string
		ws   []int
	}{
		{"lru1234", []int{1, 2, 3, 4}},
		{"lru1248", []int{1, 2, 4, 8}},
		{"lru1369", []int{1, 3, 6, 9}},
	}
	tbl := stats.NewTable("workload", "ccws-no-tlb", "tcws-8epw", "lru(1,2,3,4)", "lru(1,2,4,8)", "lru(1,3,6,9)")
	for _, w := range h.opt.Workload {
		row := []interface{}{w}
		base := h.cfgNoTLB()
		base.Sched.Policy = config.SchedCCWS
		st, err := h.Run(w, base)
		if err != nil {
			return "", err
		}
		s, err := h.speedup(w, st)
		if err != nil {
			return "", err
		}
		row = append(row, s)

		plain := h.cfgWith(config.AugmentedMMU())
		plain.Sched.Policy = config.SchedTCWS
		plain.Sched.TLBMissWeight = 4
		plain.Sched.VTAEntriesPerWarp = 8
		st, err = h.Run(w, plain)
		if err != nil {
			return "", err
		}
		if s, err = h.speedup(w, st); err != nil {
			return "", err
		}
		row = append(row, s)

		for _, sc := range schemes {
			cfg := h.cfgWith(config.AugmentedMMU())
			cfg.Sched.Policy = config.SchedTCWS
			cfg.Sched.TLBMissWeight = 4
			cfg.Sched.VTAEntriesPerWarp = 8
			cfg.Sched.LRUDepthWeights = sc.ws
			st, err := h.Run(w, cfg)
			if err != nil {
				return "", err
			}
			if s, err = h.speedup(w, st); err != nil {
				return "", err
			}
			row = append(row, s)
		}
		tbl.AddRow(row...)
	}
	return tbl.String(), nil
}

// Figure20 shows TBC with and without naive/augmented TLBs.
func Figure20(h *Harness) (string, error) {
	tbl := stats.NewTable("workload", "tbc-no-tlb", "tbc+naive", "tbc+augmented", "naive-no-tbc", "augmented-no-tbc")
	for _, w := range h.opt.Workload {
		mk := func(m config.MMU, mode config.DivergenceMode) (float64, error) {
			cfg := h.cfgWith(m)
			cfg.TBC.Mode = mode
			st, err := h.Run(w, cfg)
			if err != nil {
				return 0, err
			}
			return h.speedup(w, st)
		}
		row := []interface{}{w}
		for _, c := range []struct {
			m    config.MMU
			mode config.DivergenceMode
		}{
			{config.MMU{Enabled: false}, config.DivTBC},
			{config.NaiveMMU(4), config.DivTBC},
			{config.AugmentedMMU(), config.DivTBC},
			{config.NaiveMMU(4), config.DivStack},
			{config.AugmentedMMU(), config.DivStack},
		} {
			s, err := mk(c.m, c.mode)
			if err != nil {
				return "", err
			}
			row = append(row, s)
		}
		tbl.AddRow(row...)
	}
	return tbl.String(), nil
}

// Figure22 sweeps CPM counter widths for TLB-aware TBC.
func Figure22(h *Harness) (string, error) {
	tbl := stats.NewTable("workload", "tbc-no-tlb", "tbc+augmented", "tlb-tbc-1bit", "tlb-tbc-2bit", "tlb-tbc-3bit")
	for _, w := range h.opt.Workload {
		row := []interface{}{w}
		base := h.cfgNoTLB()
		base.TBC.Mode = config.DivTBC
		st, err := h.Run(w, base)
		if err != nil {
			return "", err
		}
		s, err := h.speedup(w, st)
		if err != nil {
			return "", err
		}
		row = append(row, s)

		agn := h.cfgWith(config.AugmentedMMU())
		agn.TBC.Mode = config.DivTBC
		st, err = h.Run(w, agn)
		if err != nil {
			return "", err
		}
		if s, err = h.speedup(w, st); err != nil {
			return "", err
		}
		row = append(row, s)

		for _, bits := range []int{1, 2, 3} {
			cfg := h.cfgWith(config.AugmentedMMU())
			cfg.TBC.Mode = config.DivTLBTBC
			cfg.TBC.CPMBits = bits
			st, err := h.Run(w, cfg)
			if err != nil {
				return "", err
			}
			if s, err = h.speedup(w, st); err != nil {
				return "", err
			}
			row = append(row, s)
		}
		tbl.AddRow(row...)
	}
	return tbl.String(), nil
}

// FigureLargePages reports 2 MB-page divergence and overheads (section 9).
func FigureLargePages(h *Harness) (string, error) {
	tbl := stats.NewTable("workload", "4k-pagediv", "2m-pagediv", "4k-missrate-%", "2m-missrate-%", "2m-speedup-vs-no-tlb")
	for _, w := range h.opt.Workload {
		small, err := h.Run(w, h.cfgWith(config.AugmentedMMU()))
		if err != nil {
			return "", err
		}
		cfg := h.cfgWith(config.AugmentedMMU())
		cfg.PageShift = 21
		big, err := h.Run(w, cfg)
		if err != nil {
			return "", err
		}
		baseCfg := h.cfgNoTLB()
		baseCfg.PageShift = 21
		base2m, err := h.Run(w, baseCfg)
		if err != nil {
			return "", err
		}
		sp := 0.0
		if big.Cycles > 0 {
			sp = float64(base2m.Cycles) / float64(big.Cycles)
		}
		tbl.AddRow(w, small.PageDivergence.Mean(), big.PageDivergence.Mean(),
			100*small.TLBMissRate(), 100*big.TLBMissRate(), sp)
	}
	return tbl.String(), nil
}

// FigureExtensions evaluates this repository's beyond-the-paper designs
// (section 10 "low-hanging fruit"): a page walk cache, a chip-level shared
// L2 TLB, and software-managed walks, all against the augmented MMU.
func FigureExtensions(h *Harness) (string, error) {
	tbl := stats.NewTable("workload", "augmented", "+pwc64", "+shared-l2-tlb", "software-walks")
	for _, w := range h.opt.Workload {
		aug := config.AugmentedMMU()
		pwc := aug
		pwc.PWCEntries = 64
		sh := aug
		sh.SharedTLBEntries = 4096
		sw := config.NaiveMMU(4)
		sw.SoftwareWalks = true
		sw.SoftwareWalkOverhead = 300

		row := []interface{}{w}
		for _, m := range []config.MMU{aug, pwc, sh, sw} {
			st, err := h.Run(w, h.cfgWith(m))
			if err != nil {
				return "", err
			}
			s, err := h.speedup(w, st)
			if err != nil {
				return "", err
			}
			row = append(row, s)
		}
		tbl.AddRow(row...)
	}
	return tbl.String(), nil
}

// Summary renders a short all-figures index.
func Summary() string {
	var b strings.Builder
	for _, f := range All() {
		fmt.Fprintf(&b, "%-6s %s\n", f.ID, f.Title)
	}
	return b.String()
}
