package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"gpummu/internal/config"
	"gpummu/internal/gpu"
	"gpummu/internal/workloads"
)

var update = flag.Bool("update", false, "rewrite golden files")

// samplePlanSmall is the validated plan for SizeSmall grids: long enough
// fast-forward windows to engage (small grids with shorter plans degrade to
// exact runs), short enough that the test stays quick.
var samplePlanSmall = gpu.SamplePlan{Warmup: 1000, Detail: 4000, FastForward: 40000}

// TestSampledAccuracyGate is the CI accuracy gate for interval sampling:
// on the paper's augmented MMU the sampled estimates of the sim_cycles
// -derived metrics (IPC and TLB miss rate) must agree with the exact run
// within 2%, and the end-of-run memory and page-table digests must be
// identical (fast-forward advanced architectural state exactly). Raw cycle
// counts are deliberately not gated — correlated ramp/drain bias partially
// cancels in the IPC ratio but not in the raw extrapolation (DESIGN.md
// section 15). The simulator is deterministic, so the observed errors are
// reproducible, not a statistical draw.
func TestSampledAccuracyGate(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four small-size simulations")
	}
	cfg := config.Baseline()
	cfg.NumCores = 4
	cfg.MMU = config.AugmentedMMU()

	for _, w := range []string{"bfs", "memcached"} {
		r, err := CompareSampled(w, workloads.SizeSmall, cfg, 1, 1, samplePlanSmall)
		if err != nil {
			t.Fatal(err)
		}
		// Guard against a vacuous pass: if nothing fast-forwards the
		// "sampled" run is the exact run and the gate tests nothing.
		if df := r.Sampled.DetailFraction(); df >= 1 {
			t.Errorf("%s: detail fraction %.3f — fast-forward never engaged", w, df)
		}
		if r.IPCErr > 0.02 {
			t.Errorf("%s: IPC error %.2f%% exceeds 2%% (exact %.4f, est %s)",
				w, 100*r.IPCErr, r.ExactIPC, r.EstIPC)
		}
		if r.MissErr > 0.02 {
			t.Errorf("%s: TLB miss-rate error %.2f%% exceeds 2%% (exact %.4f, est %s)",
				w, 100*r.MissErr, r.ExactMissRate, r.EstMissRate)
		}
		if !r.DigestMatch {
			t.Errorf("%s: end-of-run memory/page-table digests differ from the exact run", w)
		}
	}
}

// TestSampledReportGolden pins two properties of the sampled report: it is
// byte-identical for any -par core-ticking worker count, and it matches the
// committed golden (refresh with `go test ./internal/experiments -run
// SampledReportGolden -update`). The report excludes wall clock by design,
// so its bytes are a pure function of the simulated runs.
func TestSampledReportGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs six small-size simulations")
	}
	var want []byte
	for _, par := range []int{1, 2, 8} {
		var buf bytes.Buffer
		h := New(&buf, Options{
			Size:        workloads.SizeSmall,
			Seed:        1,
			Machine:     config.SmallTest,
			Workload:    []string{"bfs"},
			CoreWorkers: par,
		})
		body, err := SampledReport(h, samplePlanSmall)
		if err != nil {
			t.Fatal(err)
		}
		if par == 1 {
			want = []byte(body)
			continue
		}
		if !bytes.Equal([]byte(body), want) {
			t.Fatalf("par=%d report diverged from par=1:\n%s\nvs\n%s", par, body, want)
		}
	}

	golden := filepath.Join("testdata", "sampled_report.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, want, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	wantGolden, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(want, wantGolden) {
		t.Errorf("sampled report drifted from golden (regenerate with -update if intended):\ngot:\n%s\nwant:\n%s", want, wantGolden)
	}
}
