package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"gpummu/internal/config"
	"gpummu/internal/workloads"
)

func workerHarness(workers int, ws ...string) (*Harness, *bytes.Buffer) {
	var buf bytes.Buffer
	h := New(&buf, Options{
		Size:     workloads.SizeTiny,
		Seed:     1,
		Machine:  config.SmallTest,
		Workload: ws,
		Workers:  workers,
	})
	return h, &buf
}

func TestPlanDedupesByCanonicalKey(t *testing.T) {
	h, _ := tinyHarness("bfs", "kmeans")
	p := NewPlan()
	naive := h.cfgWith(config.NaiveMMU(3))
	p.Add(h.Spec("bfs", naive))
	p.Add(h.Spec("bfs", naive)) // same spec again
	p.Add(h.Spec("kmeans", naive))
	p.Add(h.Spec("bfs", h.cfgNoTLB()))
	if p.Len() != 3 {
		t.Fatalf("plan has %d specs, want 3: %v", p.Len(), p.Specs())
	}
	// Two figures declaring overlapping matrices share the duplicates.
	p.Add(variantSpecs(h, []variant{{"naive", naive}}, true)...)
	if p.Len() != 4 { // only the kmeans baseline is new
		t.Fatalf("plan has %d specs after overlap, want 4", p.Len())
	}
}

func TestPlanDistinguishesConfigs(t *testing.T) {
	h, _ := tinyHarness("bfs")
	p := NewPlan()
	a := h.cfgWith(config.NaiveMMU(3))
	b := h.cfgWith(config.NaiveMMU(4))
	c := a
	c.MMU.Entries = 256
	p.Add(h.Spec("bfs", a), h.Spec("bfs", b), h.Spec("bfs", c))
	if p.Len() != 3 {
		t.Fatalf("distinct configs deduped: %d specs", p.Len())
	}
}

// TestDeterministicAcrossWorkers is the pipeline's core contract: a report
// rendered from a serial (-j 1) execution and from a parallel (-j 8) one
// must be byte-identical. It covers two full figures (fig2 spans the
// scheduler/TBC space, fig4 the latency stats) over two workloads, and
// also pins the fixed-seed reproducibility promise of internal/engine's
// RNG: same seed, same machine, same cycle counts on every run.
func TestDeterministicAcrossWorkers(t *testing.T) {
	figs := make([]Figure, 0, 2)
	for _, id := range []string{"fig2", "fig4"} {
		f, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		figs = append(figs, f)
	}
	render := func(workers int) string {
		h, buf := workerHarness(workers, "bfs", "kmeans")
		if err := RunFigures(h, figs); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return buf.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Fatalf("report differs between -j 1 and -j 8:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
	if !strings.Contains(serial, "bfs") || !strings.Contains(serial, "kmeans") {
		t.Fatal("report missing workload rows")
	}
}

// TestReportIdenticalAcrossCoreWorkers extends the determinism contract to
// intra-simulation parallelism: a report produced with CoreWorkers=4 (four
// goroutines ticking cores inside every run, the -par flag) must be
// byte-identical to the serial one.
func TestReportIdenticalAcrossCoreWorkers(t *testing.T) {
	f, err := ByID("fig2")
	if err != nil {
		t.Fatal(err)
	}
	render := func(par int) string {
		var buf bytes.Buffer
		h := New(&buf, Options{
			Size:        workloads.SizeTiny,
			Seed:        1,
			Machine:     config.SmallTest,
			Workload:    []string{"bfs", "kmeans"},
			Workers:     2,
			CoreWorkers: par,
		})
		if err := RunFigures(h, []Figure{f}); err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		return buf.String()
	}
	serial := render(1)
	parallel := render(4)
	if serial != parallel {
		t.Fatalf("report differs between -par 1 and -par 4:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

// TestExecutorParallelMatchesInline cross-checks the worker pool against
// the inline path: the same spec executed by an 8-worker pool and by a
// direct ExecuteOne must produce identical cycle counts.
func TestExecutorParallelMatchesInline(t *testing.T) {
	h, _ := workerHarness(8, "bfs")
	p := NewPlan()
	specs := []RunSpec{
		h.Spec("bfs", h.cfgNoTLB()),
		h.Spec("bfs", h.cfgWith(config.NaiveMMU(3))),
		h.Spec("bfs", h.cfgWith(config.AugmentedMMU())),
	}
	p.Add(specs...)
	if n := h.Execute(p); n != len(specs) {
		t.Fatalf("executed %d runs, want %d", n, len(specs))
	}
	for _, s := range specs {
		res, ok := h.Store().Get(s)
		if !ok || res.Err != nil {
			t.Fatalf("%s: missing or failed: %+v", s, res)
		}
		if res.Wall <= 0 {
			t.Errorf("%s: no wall time recorded", s)
		}
		inline := ExecuteOne(s, workloads.SizeTiny, 1, 1)
		if inline.Err != nil {
			t.Fatal(inline.Err)
		}
		if inline.Stats.Cycles != res.Stats.Cycles {
			t.Errorf("%s: pool %d cycles, inline %d", s, res.Stats.Cycles, inline.Stats.Cycles)
		}
	}
	// Re-executing a satisfied plan is a no-op.
	if n := h.Execute(p); n != 0 {
		t.Fatalf("re-execute ran %d simulations", n)
	}
}

// TestExecuteObsSamplesAndPersists checks the executor's observability
// path: sampled series are returned on the result, the final row matches
// the run's statistics, the CSV artefact lands in the sample directory,
// and the observed run's cycle count is identical to an unobserved one.
func TestExecuteObsSamplesAndPersists(t *testing.T) {
	dir := t.TempDir()
	h, _ := workerHarness(1, "bfs")
	spec := h.Spec("bfs", h.cfgWith(config.AugmentedMMU()))
	ob := ObsOptions{SampleEvery: 200, SampleDir: dir, Watchdog: 10_000_000, MaxCycles: 50_000_000}
	res := ExecuteObs(spec, workloads.SizeTiny, 1, 1, ob)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Series) == 0 {
		t.Fatal("no series recorded")
	}
	last := res.Series[len(res.Series)-1]
	if last.Cycle != res.Stats.Cycles || last.Instructions != res.Stats.Instructions.Value() {
		t.Errorf("final sample (%d cyc, %d instr) != stats (%d cyc, %d instr)",
			last.Cycle, last.Instructions, res.Stats.Cycles, res.Stats.Instructions.Value())
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || !strings.HasPrefix(ents[0].Name(), "bfs-") || !strings.HasSuffix(ents[0].Name(), ".csv") {
		t.Fatalf("unexpected sample artefacts: %v", ents)
	}
	body, err := os.ReadFile(filepath.Join(dir, ents[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(body), "cycle,") {
		t.Fatalf("CSV missing header:\n%.120s", body)
	}

	plain := ExecuteOne(spec, workloads.SizeTiny, 1, 1)
	if plain.Err != nil {
		t.Fatal(plain.Err)
	}
	if plain.Stats.Cycles != res.Stats.Cycles {
		t.Errorf("observability perturbed timing: %d vs %d cycles", res.Stats.Cycles, plain.Stats.Cycles)
	}
	if plain.Series != nil {
		t.Error("unobserved run grew a series")
	}
}

// TestConcurrentHarnessRuns hammers Harness.Run from many goroutines over
// overlapping specs so `go test -race` has real sharing to bite on.
func TestConcurrentHarnessRuns(t *testing.T) {
	h, _ := workerHarness(4, "bfs", "kmeans")
	cfgs := []config.Hardware{
		h.cfgNoTLB(),
		h.cfgWith(config.NaiveMMU(3)),
		h.cfgWith(config.AugmentedMMU()),
	}
	var wg sync.WaitGroup
	errs := make(chan error, 24)
	cycles := make([][]uint64, 24)
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for _, w := range []string{"bfs", "kmeans"} {
				for _, cfg := range cfgs {
					st, err := h.Run(w, cfg)
					if err != nil {
						errs <- err
						return
					}
					cycles[i] = append(cycles[i], st.Cycles)
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i := 1; i < len(cycles); i++ {
		for j := range cycles[0] {
			if cycles[i][j] != cycles[0][j] {
				t.Fatalf("goroutine %d saw different cycles for run %d: %d vs %d",
					i, j, cycles[i][j], cycles[0][j])
			}
		}
	}
	if h.Store().Len() != len(cfgs)*2 {
		t.Fatalf("store holds %d results, want %d", h.Store().Len(), len(cfgs)*2)
	}
}

// TestFailedSpecDoesNotAbortReport checks the error-isolation contract: a
// spec that cannot run (unknown workload here, a gpu deadlock in the wild)
// fails only the figures that need it, while every other figure still
// renders and the failure names the spec.
func TestFailedSpecDoesNotAbortReport(t *testing.T) {
	h, buf := workerHarness(2, "bfs")
	naive := h.cfgWith(config.NaiveMMU(3))
	bad := Figure{
		ID: "figBAD", Title: "doomed", Paper: "n/a",
		Plan: func(h *Harness) []RunSpec {
			return []RunSpec{h.Spec("no-such-workload", naive)}
		},
		Run: func(h *Harness) (string, error) {
			_, err := h.Run("no-such-workload", naive)
			return "", err
		},
	}
	good, err := ByID("fig4")
	if err != nil {
		t.Fatal(err)
	}
	runErr := RunFigures(h, []Figure{bad, good})
	if runErr == nil {
		t.Fatal("failed spec reported no error")
	}
	if !strings.Contains(runErr.Error(), "no-such-workload") {
		t.Fatalf("error does not name the failing spec: %v", runErr)
	}
	out := buf.String()
	if !strings.Contains(out, "## fig4") || !strings.Contains(out, "ratio") {
		t.Fatalf("healthy figure missing from report:\n%s", out)
	}
	if !strings.Contains(out, "ERROR:") {
		t.Fatalf("failed figure not marked in report:\n%s", out)
	}
	res, ok := h.Store().Get(h.Spec("no-such-workload", naive))
	if !ok || res.Err == nil {
		t.Fatal("failure not captured in the result store")
	}
}

// TestProgressSerialised checks verbose progress goes to the progress
// writer (never into the report) and counts every planned run.
func TestProgressSerialised(t *testing.T) {
	var progress bytes.Buffer
	var report bytes.Buffer
	h := New(&report, Options{
		Size:     workloads.SizeTiny,
		Seed:     1,
		Machine:  config.SmallTest,
		Workload: []string{"bfs"},
		Workers:  4,
		Verbose:  true,
		Progress: &progress,
	})
	f, err := ByID("fig7")
	if err != nil {
		t.Fatal(err)
	}
	if err := RunFigures(h, []Figure{f}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(report.String(), "# [") || strings.Contains(report.String(), "# plan:") {
		t.Fatal("progress lines leaked into the report")
	}
	lines := strings.Split(strings.TrimSpace(progress.String()), "\n")
	ran := 0
	for _, l := range lines {
		if strings.Contains(l, "] ran ") {
			ran++
			if !strings.HasPrefix(l, "# [") {
				t.Fatalf("malformed progress line %q", l)
			}
		}
	}
	if want := h.Store().Len(); ran != want {
		t.Fatalf("progress reported %d runs, store holds %d", ran, want)
	}
}
