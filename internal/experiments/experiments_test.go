package experiments

import (
	"bytes"
	"strings"
	"testing"

	"gpummu/internal/config"
	"gpummu/internal/workloads"
)

func tinyHarness(ws ...string) (*Harness, *bytes.Buffer) {
	var buf bytes.Buffer
	h := New(&buf, Options{
		Size:     workloads.SizeTiny,
		Seed:     1,
		Machine:  config.SmallTest,
		Workload: ws,
	})
	return h, &buf
}

func TestFigureIndexComplete(t *testing.T) {
	figs := All()
	// The paper's evaluation: figures 2,3,4,6,7,10,11,13,16,17,18,20,22
	// plus the section-9 large-page study.
	want := []string{"fig2", "fig3", "fig4", "fig6", "fig7", "fig10", "fig11",
		"fig13", "fig16", "fig17", "fig18", "fig20", "fig22", "figLP", "figEXT"}
	if len(figs) != len(want) {
		t.Fatalf("%d figures, want %d", len(figs), len(want))
	}
	for i, id := range want {
		if figs[i].ID != id {
			t.Errorf("figure %d = %s, want %s", i, figs[i].ID, id)
		}
		if figs[i].Paper == "" || figs[i].Title == "" || figs[i].Run == nil || figs[i].Plan == nil {
			t.Errorf("figure %s incomplete", figs[i].ID)
		}
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("fig2"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("unknown figure found")
	}
}

func TestHarnessCachesRuns(t *testing.T) {
	h, _ := tinyHarness("kmeans")
	cfg := h.cfgNoTLB()
	a, err := h.Run("kmeans", cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Run("kmeans", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h.Store().Len() != 1 {
		t.Fatalf("identical run simulated twice: %d stored results", h.Store().Len())
	}
	if a.Cycles != b.Cycles || a.Instructions != b.Instructions {
		t.Fatal("cached run returned different statistics")
	}
	// Runs hand out private clones, so a renderer mutating its copy can
	// never corrupt the shared stored result.
	if a == b {
		t.Fatal("Run returned a shared pointer, not a clone")
	}
	a.Cycles = 0
	a.PageDivergence.Observe(31)
	c, err := h.Run("kmeans", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Cycles != b.Cycles || c.PageDivergence.Count() != b.PageDivergence.Count() {
		t.Fatal("mutating a returned Sim corrupted the stored result")
	}
}

func TestFigure3Table(t *testing.T) {
	h, _ := tinyHarness("kmeans")
	out, err := Figure3(h)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "kmeans") || !strings.Contains(out, "tlb-miss-%") {
		t.Fatalf("unexpected table:\n%s", out)
	}
}

func TestFigure4Table(t *testing.T) {
	h, _ := tinyHarness("bfs")
	out, err := Figure4(h)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ratio") {
		t.Fatalf("unexpected table:\n%s", out)
	}
}

func TestFigureLargePages(t *testing.T) {
	h, _ := tinyHarness("pointerchase")
	out, err := FigureLargePages(h)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "2m-pagediv") {
		t.Fatalf("unexpected table:\n%s", out)
	}
}

func TestSummaryListsAll(t *testing.T) {
	s := Summary()
	for _, f := range All() {
		if !strings.Contains(s, f.ID) {
			t.Errorf("summary missing %s", f.ID)
		}
	}
}

// TestRunAllTiny exercises every figure end to end on one tiny workload —
// the full harness integration path that cmd/experiments drives.
func TestRunAllTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness pass is slow")
	}
	h, buf := tinyHarness("bfs")
	plan := h.PlanFigures(All())
	if err := RunAll(h); err != nil {
		t.Fatal(err)
	}
	// Every run a renderer read must have been declared in its plan: an
	// inline fallback during rendering would grow the store past the plan.
	if h.Store().Len() != plan.Len() {
		t.Errorf("renderers executed %d runs beyond the %d planned — a figure's Plan is incomplete",
			h.Store().Len()-plan.Len(), plan.Len())
	}
	out := buf.String()
	for _, f := range All() {
		if !strings.Contains(out, "## "+f.ID+" ") {
			t.Errorf("report missing %s", f.ID)
		}
	}
	if !strings.Contains(out, "bfs") {
		t.Fatal("report contains no workload rows")
	}
}
