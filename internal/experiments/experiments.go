// Package experiments regenerates every table and figure of the paper's
// evaluation through a three-phase plan → execute → render pipeline. Each
// figure declares its (workload, config) run matrix as RunSpec values;
// RunAll collects the specs of every requested figure, dedupes them by the
// canonical config key, executes the unique runs on a parallel worker pool
// (see runner.go), and only then renders the tables from the completed
// results — so reports are byte-identical regardless of worker count.
package experiments

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"

	"gpummu/internal/config"
	"gpummu/internal/gpu"
	"gpummu/internal/stats"
	"gpummu/internal/workloads"
)

// Options configures a harness run.
type Options struct {
	Size     workloads.Size
	Seed     uint64
	Machine  func() config.Hardware // base machine; default config.Baseline
	Workload []string               // defaults to the paper's six
	Workers  int                    // executor goroutines; <= 0 = GOMAXPROCS
	Verbose  bool                   // log per-run progress to Progress
	Progress io.Writer              // progress destination; default os.Stderr

	// CoreWorkers sets how many goroutines tick cores inside each single
	// simulation (gpu.GPU.Workers, the -par flag); <= 1 means serial.
	// Reports are byte-identical for any value.
	CoreWorkers int

	// Obs attaches per-run observability (sampling, watchdog, cycle
	// budget, deadline) to every simulation the harness executes. The
	// zero value keeps runs unobserved.
	Obs ObsOptions

	// Checkpoint enables checkpointed warm starts (Executor.Checkpoint):
	// all runs sharing a workload restore from one post-build snapshot
	// instead of rebuilding. Reports are byte-identical either way.
	Checkpoint bool

	// Sampling executes every figure run under SMARTS-style interval
	// sampling (Executor.Sampling): absolute Cycles/Instructions totals in
	// the rendered tables become extrapolated estimates, ratios come from
	// the measured windows. The zero plan keeps runs exact.
	Sampling gpu.SamplePlan

	// Results substitutes the harness's result store. The default (nil) is
	// a fresh in-memory ResultStore; the job server passes a store-backed
	// implementation so completed runs persist across processes and dedup
	// reaches results other clients already paid for.
	Results Results

	// Simulate substitutes the executor's simulation step
	// (Executor.Simulate): the job server installs a slot-budgeted,
	// singleflight-coalescing wrapper here so concurrent jobs share the
	// host fairly and never simulate the same spec twice at once.
	Simulate func(RunSpec, func(RunSpec) *RunResult) *RunResult
}

func (o *Options) fill() {
	if o.Machine == nil {
		o.Machine = config.Baseline
	}
	if len(o.Workload) == 0 {
		o.Workload = workloads.PaperSet()
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Verbose && o.Progress == nil {
		o.Progress = os.Stderr
	}
	if !o.Verbose {
		o.Progress = nil
	}
}

// Harness ties the three pipeline phases together: it plans figure
// matrices, drives the executor, and serves completed results to the
// renderers. All figures share one ResultStore so the no-TLB baseline
// every speedup normalises against is simulated exactly once.
type Harness struct {
	opt  Options
	out  io.Writer
	exec *Executor
}

// New creates a harness writing its tables to out.
func New(out io.Writer, opt Options) *Harness {
	opt.fill()
	store := opt.Results
	if store == nil {
		store = NewResultStore()
	}
	return &Harness{
		opt: opt,
		out: out,
		exec: &Executor{
			Workers:     opt.Workers,
			Size:        opt.Size,
			Seed:        opt.Seed,
			Progress:    opt.Progress,
			Store:       store,
			CoreWorkers: opt.CoreWorkers,
			Obs:         opt.Obs,
			Checkpoint:  opt.Checkpoint,
			Sampling:    opt.Sampling,
			Simulate:    opt.Simulate,
		},
	}
}

// Store exposes the harness's result store (tests and tools).
func (h *Harness) Store() Results { return h.exec.Store }

// Spec builds the RunSpec for workload w under cfg with this harness's
// size and seed baked into the executor.
func (h *Harness) Spec(w string, cfg config.Hardware) RunSpec {
	return RunSpec{Workload: w, Config: cfg}
}

// Run returns the statistics for workload w under cfg. If the executor
// already completed the run, the stored result is served; otherwise the
// simulation runs inline in the calling goroutine (the sequential fallback
// that keeps single-figure and test paths working without a plan). The
// returned Sim is a private clone: renderers can never mutate the shared
// stored result. Run is safe for concurrent use.
func (h *Harness) Run(w string, cfg config.Hardware) (*stats.Sim, error) {
	spec := h.Spec(w, cfg)
	res, ok := h.exec.store().Get(spec)
	if !ok {
		h.exec.store().Put(h.exec.simulate(spec))
		// Re-read so concurrent callers converge on the canonical
		// first-published result.
		res, _ = h.exec.store().Get(spec)
	}
	if res.Err != nil {
		return nil, fmt.Errorf("%s: %w", spec, res.Err)
	}
	return res.Stats.Clone(), nil
}

// baseline returns the no-TLB run for w with the harness machine.
func (h *Harness) baseline(w string) (*stats.Sim, error) {
	return h.Run(w, h.cfgNoTLB())
}

// speedup computes st's speedup over the no-TLB baseline for w.
func (h *Harness) speedup(w string, st *stats.Sim) (float64, error) {
	base, err := h.baseline(w)
	if err != nil {
		return 0, err
	}
	if st.Cycles == 0 {
		return 0, fmt.Errorf("%s: zero cycles", w)
	}
	return float64(base.Cycles) / float64(st.Cycles), nil
}

func describe(cfg config.Hardware) string {
	if !cfg.MMU.Enabled {
		s := "no-tlb"
		if cfg.Sched.Policy != config.SchedLRR {
			s += "+" + cfg.Sched.Policy.String()
		}
		if cfg.TBC.Mode != config.DivStack {
			s += "+" + cfg.TBC.Mode.String()
		}
		return s
	}
	s := fmt.Sprintf("tlb%de/%dp", cfg.MMU.Entries, cfg.MMU.Ports)
	if cfg.MMU.HitsUnderMiss {
		s += "+hum"
	}
	if cfg.MMU.CacheOverlap {
		s += "+ovl"
	}
	if cfg.MMU.PTWSched {
		s += "+ptws"
	}
	if cfg.MMU.NumPTWs > 1 {
		s += fmt.Sprintf("+%dptw", cfg.MMU.NumPTWs)
	}
	if cfg.MMU.IdealLatency {
		s += "+ideal"
	}
	if cfg.Sched.Policy != config.SchedLRR {
		s += "+" + cfg.Sched.Policy.String()
	}
	if cfg.TBC.Mode != config.DivStack {
		s += "+" + cfg.TBC.Mode.String()
	}
	return s
}

// Figure describes one reproducible experiment: the run matrix it needs
// (Plan) and a renderer that formats completed results (Run).
type Figure struct {
	ID    string
	Title string
	Paper string // the paper's qualitative claim, for EXPERIMENTS.md

	// Plan declares every (workload, config) run the renderer will read.
	// It must not simulate anything.
	Plan func(h *Harness) []RunSpec

	// Run renders the figure's table. When the harness has executed the
	// figure's plan the renderer only reads completed results; specs it
	// asks for beyond its plan fall back to inline execution.
	Run func(h *Harness) (string, error)
}

// ByID returns the figure with the given ID.
func ByID(id string) (Figure, error) {
	for _, f := range All() {
		if f.ID == id {
			return f, nil
		}
	}
	ids := make([]string, 0)
	for _, f := range All() {
		ids = append(ids, f.ID)
	}
	sort.Strings(ids)
	return Figure{}, fmt.Errorf("experiments: unknown figure %q (have %v)", id, ids)
}

// PlanFigures collects and dedupes the run matrices of the given figures,
// in figure order (phase 1 of the pipeline).
func (h *Harness) PlanFigures(figs []Figure) *Plan {
	p := NewPlan()
	for _, f := range figs {
		if f.Plan != nil {
			p.Add(f.Plan(h)...)
		}
	}
	return p
}

// Execute runs the plan's outstanding specs on the worker pool (phase 2)
// and returns how many simulations ran. Failures are recorded in the
// store, surfacing later as render errors for the figures that need them.
func (h *Harness) Execute(p *Plan) int { return h.exec.Execute(p) }

// RunFigures executes the full pipeline for the given figures: plan,
// execute in parallel, then render each figure into the report in order.
// A figure whose runs failed renders an error note and the remaining
// figures still run; the joined failures are returned after the whole
// report is written.
func RunFigures(h *Harness, figs []Figure) error {
	plan := h.PlanFigures(figs)
	if h.opt.Progress != nil {
		fmt.Fprintf(h.opt.Progress, "# plan: %d unique runs across %d figures (workers=%d)\n",
			plan.Len(), len(figs), h.exec.workers())
	}
	h.Execute(plan)

	var failures []error
	for _, f := range figs {
		fmt.Fprintf(h.out, "\n## %s — %s\n\nPaper: %s\n\n", f.ID, f.Title, f.Paper)
		body, err := f.Run(h)
		if err != nil {
			failures = append(failures, fmt.Errorf("%s: %w", f.ID, err))
			fmt.Fprintf(h.out, "ERROR: %v\n", err)
			continue
		}
		fmt.Fprintln(h.out, body)
	}
	return errors.Join(failures...)
}

// RunAll executes every figure and writes a combined report.
func RunAll(h *Harness) error { return RunFigures(h, All()) }
