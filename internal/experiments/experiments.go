// Package experiments regenerates every table and figure of the paper's
// evaluation. Each FigureN function runs the required (workload, config)
// matrix and renders rows shaped like the paper's plots; RunAll drives them
// and collates an EXPERIMENTS.md-style report with the paper's expected
// ranges alongside measured values.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"gpummu/internal/config"
	"gpummu/internal/gpu"
	"gpummu/internal/stats"
	"gpummu/internal/workloads"
)

// Options configures a harness run.
type Options struct {
	Size     workloads.Size
	Seed     uint64
	Machine  func() config.Hardware // base machine; default config.Baseline
	Workload []string               // defaults to the paper's six
	Verbose  bool
}

func (o *Options) fill() {
	if o.Machine == nil {
		o.Machine = config.Baseline
	}
	if len(o.Workload) == 0 {
		o.Workload = workloads.PaperSet()
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Harness caches baseline runs so every figure shares normalisation.
type Harness struct {
	opt   Options
	out   io.Writer
	cache map[string]*stats.Sim
}

// New creates a harness writing its tables to out.
func New(out io.Writer, opt Options) *Harness {
	opt.fill()
	return &Harness{opt: opt, out: out, cache: make(map[string]*stats.Sim)}
}

// key identifies a (workload, config) pair for caching.
func key(w string, cfg config.Hardware) string {
	return fmt.Sprintf("%s|%+v|%+v|%+v|%d|%d", w, cfg.MMU, cfg.Sched, cfg.TBC, cfg.PageShift, cfg.NumCores)
}

// Run executes workload w under cfg (cached) and returns its statistics.
func (h *Harness) Run(w string, cfg config.Hardware) (*stats.Sim, error) {
	k := key(w, cfg)
	if st, ok := h.cache[k]; ok {
		return st, nil
	}
	start := time.Now()
	wl, err := workloads.Build(w, h.opt.Size, cfg.PageShift, h.opt.Seed)
	if err != nil {
		return nil, err
	}
	st := &stats.Sim{}
	g, err := gpu.New(cfg, wl.AS, st)
	if err != nil {
		return nil, err
	}
	if _, err := g.Run(wl.Launch); err != nil {
		return nil, fmt.Errorf("%s: %w", w, err)
	}
	if wl.Check != nil {
		if err := wl.Check(); err != nil {
			return nil, fmt.Errorf("%s: %w", w, err)
		}
	}
	if h.opt.Verbose {
		fmt.Fprintf(h.out, "# ran %s [%s] in %v: %d cycles\n", w, describe(cfg), time.Since(start).Round(time.Millisecond), st.Cycles)
	}
	h.cache[k] = st
	return st, nil
}

// baseline returns the no-TLB run for w with the harness machine.
func (h *Harness) baseline(w string) (*stats.Sim, error) {
	cfg := h.opt.Machine()
	cfg.MMU = config.MMU{Enabled: false}
	return h.Run(w, cfg)
}

// speedup computes st's speedup over the no-TLB baseline for w.
func (h *Harness) speedup(w string, st *stats.Sim) (float64, error) {
	base, err := h.baseline(w)
	if err != nil {
		return 0, err
	}
	if st.Cycles == 0 {
		return 0, fmt.Errorf("%s: zero cycles", w)
	}
	return float64(base.Cycles) / float64(st.Cycles), nil
}

func describe(cfg config.Hardware) string {
	if !cfg.MMU.Enabled {
		s := "no-tlb"
		if cfg.Sched.Policy != config.SchedLRR {
			s += "+" + cfg.Sched.Policy.String()
		}
		if cfg.TBC.Mode != config.DivStack {
			s += "+" + cfg.TBC.Mode.String()
		}
		return s
	}
	s := fmt.Sprintf("tlb%de/%dp", cfg.MMU.Entries, cfg.MMU.Ports)
	if cfg.MMU.HitsUnderMiss {
		s += "+hum"
	}
	if cfg.MMU.CacheOverlap {
		s += "+ovl"
	}
	if cfg.MMU.PTWSched {
		s += "+ptws"
	}
	if cfg.MMU.NumPTWs > 1 {
		s += fmt.Sprintf("+%dptw", cfg.MMU.NumPTWs)
	}
	if cfg.MMU.IdealLatency {
		s += "+ideal"
	}
	if cfg.Sched.Policy != config.SchedLRR {
		s += "+" + cfg.Sched.Policy.String()
	}
	if cfg.TBC.Mode != config.DivStack {
		s += "+" + cfg.TBC.Mode.String()
	}
	return s
}

// Figure describes one reproducible experiment.
type Figure struct {
	ID    string
	Title string
	Paper string // the paper's qualitative claim, for EXPERIMENTS.md
	Run   func(h *Harness) (string, error)
}

// All returns every figure reproduction, in paper order.
func All() []Figure {
	return []Figure{
		{"fig2", "Naive TLBs under LRR, CCWS and TBC", "naive 128e/3p TLBs degrade performance in every case; 30-50% below CCWS/TBC without TLBs", Figure2},
		{"fig3", "Workload characterisation", "mem instrs <25% of total; TLB miss rates 22-70%; page divergence avg >4 (bfs) and >8 (mummer), max consistently high", Figure3},
		{"fig4", "TLB vs L1 miss latency", "TLB misses cost about twice an L1 miss", Figure4},
		{"fig6", "TLB size and port sweep", "128 entries best once real access latencies included; 3->4 ports recovers most port-starved loss", Figure6},
		{"fig7", "Non-blocking TLBs", "hits-under-miss helps; overlapping cache access helps more (e.g. +8% streamcluster)", Figure7},
		{"fig10", "PTW scheduling", "within ~1% of the impractical ideal TLB; walk refs cut 10-20%; walk cache hit rate up 5-8%", Figure10},
		{"fig11", "Augmented 1 PTW vs naive multi-PTW", "augmented single walker outperforms 8 naive walkers by ~10%", Figure11},
		{"fig13", "CCWS with TLBs", "CCWS+naive TLBs far below CCWS without TLBs; augmented MMU narrows but does not close the gap", Figure13},
		{"fig16", "TA-CCWS weight sweep", "weighting TLB misses 4x cache misses recovers most CCWS loss on 4 of 6 workloads", Figure16},
		{"fig17", "TCWS entries-per-warp sweep", "8 entries per warp VTA performs best, beating TA-CCWS with half the hardware", Figure17},
		{"fig18", "TCWS LRU-depth weights", "LRU(1,2,4,8) best; within 1-15% of CCWS-without-TLBs", Figure18},
		{"fig20", "TBC with TLBs", "TBC+TLBs loses ~20% vs TBC without TLBs; augmented TLBs alone beat TBC+augmented TLBs", Figure20},
		{"fig22", "TLB-aware TBC CPM bits", "even 1-bit CPM counters help; 3 bits land within 3-12% of TBC without TLBs", Figure22},
		{"figLP", "2MB large pages", "large pages collapse page divergence except bfs/mummer, which keep divergence ~3 and ~6", FigureLargePages},
		{"figEXT", "Extensions beyond the paper", "no paper reference — page walk cache, shared L2 TLB, and software-managed walks vs the augmented MMU", FigureExtensions},
	}
}

// ByID returns the figure with the given ID.
func ByID(id string) (Figure, error) {
	for _, f := range All() {
		if f.ID == id {
			return f, nil
		}
	}
	ids := make([]string, 0)
	for _, f := range All() {
		ids = append(ids, f.ID)
	}
	sort.Strings(ids)
	return Figure{}, fmt.Errorf("experiments: unknown figure %q (have %v)", id, ids)
}

// RunAll executes every figure and writes a combined report.
func RunAll(h *Harness) error {
	for _, f := range All() {
		fmt.Fprintf(h.out, "\n## %s — %s\n\nPaper: %s\n\n", f.ID, f.Title, f.Paper)
		body, err := f.Run(h)
		if err != nil {
			return fmt.Errorf("%s: %w", f.ID, err)
		}
		fmt.Fprintln(h.out, body)
	}
	return nil
}
