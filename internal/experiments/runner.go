// Run planning and parallel execution for the experiment pipeline.
//
// The pipeline has three phases:
//
//  1. Plan: each figure declares its (workload, config) matrix as RunSpec
//     values; specs from all requested figures are collected into a Plan,
//     which dedupes them by the canonical config.Hardware.Key.
//  2. Execute: an Executor runs the unique specs on a pool of -j worker
//     goroutines. Every worker builds its own workload and GPU, so no
//     simulator state is shared; results (statistics, wall time, errors)
//     are published into a concurrency-safe ResultStore. Progress lines
//     are serialised through one mutex so verbose output never interleaves.
//  3. Render: figures format their tables purely from completed results.
//     Because each simulation is deterministic (fixed-seed RNG, see
//     internal/engine) and rendering happens after the barrier in plan
//     order, the report is byte-identical regardless of worker count or
//     completion order.
package experiments

import (
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"gpummu/internal/config"
	"gpummu/internal/gpu"
	"gpummu/internal/obs"
	"gpummu/internal/snapshot"
	"gpummu/internal/stats"
	"gpummu/internal/workloads"
)

// RunSpec names one simulation: a workload under a hardware configuration.
// Specs are value types; two specs are the same run iff their Keys match.
type RunSpec struct {
	Workload string
	Config   config.Hardware
}

// Key canonically identifies the run for dedup and result lookup.
func (s RunSpec) Key() string { return s.Workload + "|" + s.Config.Key() }

// String renders the spec the way progress and error messages show runs.
func (s RunSpec) String() string {
	return fmt.Sprintf("%s [%s]", s.Workload, describe(s.Config))
}

// Plan is an ordered, deduplicated collection of runs to execute. Adding a
// spec whose key is already present is a no-op, so figures can declare
// overlapping matrices (e.g. the shared no-TLB baseline) freely.
type Plan struct {
	specs []RunSpec
	seen  map[string]bool
}

// NewPlan returns an empty plan.
func NewPlan() *Plan { return &Plan{seen: make(map[string]bool)} }

// Add appends the specs not already planned, in order.
func (p *Plan) Add(specs ...RunSpec) {
	for _, s := range specs {
		k := s.Key()
		if p.seen[k] {
			continue
		}
		p.seen[k] = true
		p.specs = append(p.specs, s)
	}
}

// Specs returns the planned runs in insertion order.
func (p *Plan) Specs() []RunSpec { return append([]RunSpec(nil), p.specs...) }

// Len returns the number of unique planned runs.
func (p *Plan) Len() int { return len(p.specs) }

// RunResult is the outcome of executing one RunSpec.
type RunResult struct {
	Spec   RunSpec
	Stats  *stats.Sim    // nil when Err != nil
	Series []obs.Sample  // cycle-sampled time series; nil unless sampling was on
	Wall   time.Duration // host wall time the simulation took
	Err    error         // simulation or functional-check failure

	// Sampled holds the interval-sampling record when the run executed
	// under a sample plan (nil for exact runs). Stats.Cycles and
	// Stats.Instructions are then the rounded whole-run estimates — so
	// speedup columns extrapolate — while the remaining counters cover the
	// measured windows only (their ratios are the sampled estimators).
	Sampled *stats.Sampled
}

// Results is the executor's result source and sink: where completed runs
// are published and where dedup lookups go before anything simulates. The
// in-process implementation is ResultStore; the job server substitutes a
// store-backed implementation whose Get also consults a durable result
// store, so results computed by an earlier process (or another client) are
// never recomputed. Implementations must be safe for concurrent use and
// write-once per key: the first Put for a spec wins.
type Results interface {
	// Get returns the completed result for spec, if present.
	Get(spec RunSpec) (*RunResult, bool)
	// Put publishes a completed result; the first write for a key wins.
	Put(res *RunResult)
	// Len returns the number of stored results.
	Len() int
	// Failed returns the failed results in no particular order.
	Failed() []*RunResult
}

// ResultStore is a concurrency-safe map from spec key to result. Results
// are write-once: the first publication wins and later ones are dropped,
// so a stored result never changes underneath a reader.
type ResultStore struct {
	mu sync.RWMutex
	m  map[string]*RunResult
}

// NewResultStore returns an empty store.
func NewResultStore() *ResultStore {
	return &ResultStore{m: make(map[string]*RunResult)}
}

// Get returns the completed result for spec, if present.
func (r *ResultStore) Get(spec RunSpec) (*RunResult, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	res, ok := r.m[spec.Key()]
	return res, ok
}

// Put publishes a completed result; the first write for a key wins.
func (r *ResultStore) Put(res *RunResult) {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := res.Spec.Key()
	if _, dup := r.m[k]; dup {
		return
	}
	r.m[k] = res
}

// Len returns the number of stored results.
func (r *ResultStore) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.m)
}

// Failed returns the failed results in no particular order.
func (r *ResultStore) Failed() []*RunResult {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []*RunResult
	for _, res := range r.m {
		if res.Err != nil {
			out = append(out, res)
		}
	}
	return out
}

// ObsOptions configures optional per-run observability for executor runs.
// The zero value disables everything, keeping the classic behaviour (and
// the simulator's zero-allocation warm path) untouched.
type ObsOptions struct {
	SampleEvery uint64 // cycles between time-series rows; 0 disables sampling
	SampleDir   string // when set, each run's series is written there as CSV
	Watchdog    uint64 // cycles without block retirement before abort; 0 disables
	MaxCycles   uint64 // per-run cycle budget; 0 means unbounded
	// Deadline aborts any run still simulating past this wall-clock
	// instant with a typed obs.ErrDeadline. The zero time disables it.
	Deadline time.Time

	// Progress, when non-nil, receives periodic heartbeats from every run,
	// labelled with the spec being simulated (concurrent runs call it from
	// their own goroutines — fan it out safely with obs.Funnel). The job
	// server bridges these callbacks onto its SSE event streams.
	Progress func(spec RunSpec, p obs.Progress)
	// ProgressEvery is the Progress cadence in cycles (0 picks the
	// simulator default; when SampleEvery is also set, matching it makes
	// the heartbeats line up with the sampler rows).
	ProgressEvery uint64
}

// enabled reports whether any observability feature is requested.
func (o ObsOptions) enabled() bool {
	return o.SampleEvery > 0 || o.Watchdog > 0 || o.MaxCycles > 0 || !o.Deadline.IsZero() || o.Progress != nil
}

// Executor runs plans on a pool of worker goroutines.
type Executor struct {
	Workers  int            // goroutines; <= 0 means runtime.GOMAXPROCS(0)
	Size     workloads.Size // dataset scale for workload construction
	Seed     uint64         // workload generation seed
	Progress io.Writer      // per-run progress lines; nil for silent
	Store    Results        // destination; a fresh ResultStore when nil

	// CoreWorkers sets gpu.GPU.Workers for every simulation: how many
	// goroutines tick cores inside one run (the -par flag). Simulation
	// output is byte-identical for any value; <= 1 keeps runs serial.
	CoreWorkers int

	// Obs attaches samplers, watchdogs and cycle budgets to every run.
	Obs ObsOptions

	// Sampling, when enabled, executes every run under SMARTS-style
	// interval sampling (gpu.RunSampled) instead of exact simulation.
	// Results then carry the per-interval record in RunResult.Sampled and
	// extrapolated Cycles/Instructions totals in RunResult.Stats.
	Sampling gpu.SamplePlan

	// Checkpoint enables checkpointed warm starts: runs acquire their
	// workload from a snapshot.Pool keyed by build identity (workload,
	// size, page shift, seed) — the axes a hardware sweep holds fixed
	// while Hardware.Key() varies — so the N configs sharing one workload
	// restore a pristine image instead of rebuilding it N times. Output is
	// byte-identical to cold builds (DESIGN.md §14); the toggle exists so
	// sweeps can verify that cheaply (tools/ci.sh checkpoint gate).
	Checkpoint bool

	// Simulate, when non-nil, wraps the execution of every outstanding
	// spec: it receives the spec plus the executor's default runner and
	// returns the completed result. The job server installs a wrapper that
	// gates each simulation on a global slot budget shared by all
	// concurrently running jobs and coalesces identical in-flight specs
	// across them (DESIGN.md §16.5). nil runs the default directly. The
	// wrapper must be safe for concurrent calls from the worker pool.
	Simulate func(spec RunSpec, run func(RunSpec) *RunResult) *RunResult

	mu   sync.Mutex // serialises Progress so lines never interleave
	done int        // completed runs, for progress numbering
	pool *snapshot.Pool
}

// checkpointPool returns the executor's snapshot pool, creating it on
// first use. Safe for concurrent callers (Harness.Run's inline fallback).
func (e *Executor) checkpointPool() *snapshot.Pool {
	if !e.Checkpoint {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.pool == nil {
		e.pool = snapshot.NewPool()
	}
	return e.pool
}

// CheckpointStats reports snapshot-pool activity (builds vs warm
// restores); zero when checkpointing is off or nothing ran yet.
func (e *Executor) CheckpointStats() snapshot.Stats {
	if e.pool == nil {
		return snapshot.Stats{}
	}
	return e.pool.Stats()
}

// workers resolves the effective pool size.
func (e *Executor) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// store resolves the destination store.
func (e *Executor) store() Results {
	if e.Store == nil {
		e.Store = NewResultStore()
	}
	return e.Store
}

// simulate executes one spec through the Simulate wrapper when one is
// installed, or the default runner otherwise. Both the worker pool and
// the harness's inline fallback come through here, so a scheduler-aware
// wrapper sees every simulation the executor ever starts.
func (e *Executor) simulate(spec RunSpec) *RunResult {
	run := func(s RunSpec) *RunResult {
		return ExecuteSampled(s, e.Size, e.Seed, e.CoreWorkers, e.Obs, e.checkpointPool(), e.Sampling)
	}
	if e.Simulate != nil {
		return e.Simulate(spec, run)
	}
	return run(spec)
}

// Execute runs every spec in the plan that the store has no result for
// yet, fanning the work across the executor's goroutine pool, and blocks
// until all of them have completed. Per-run failures are captured in the
// store (and logged to Progress), not returned: the caller decides whether
// a missing result is fatal, so one deadlocked spec cannot abort a whole
// report. The returned count is how many simulations actually ran.
func (e *Executor) Execute(p *Plan) int {
	st := e.store()
	var todo []RunSpec
	for _, s := range p.specs {
		if _, ok := st.Get(s); !ok {
			todo = append(todo, s)
		}
	}
	if len(todo) == 0 {
		return 0
	}
	nw := e.workers()
	if nw > len(todo) {
		nw = len(todo)
	}
	jobs := make(chan RunSpec)
	var wg sync.WaitGroup
	for i := 0; i < nw; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for spec := range jobs {
				res := e.simulate(spec)
				st.Put(res)
				e.logProgress(res, len(todo))
			}
		}()
	}
	for _, s := range todo {
		jobs <- s
	}
	close(jobs)
	wg.Wait()
	return len(todo)
}

// logProgress emits one serialised progress line for a completed run.
func (e *Executor) logProgress(res *RunResult, total int) {
	if e.Progress == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.done++
	if res.Err != nil {
		fmt.Fprintf(e.Progress, "# [%d/%d] FAILED %s: %v\n", e.done, total, res.Spec, res.Err)
		return
	}
	fmt.Fprintf(e.Progress, "# [%d/%d] ran %s in %v: %d cycles\n",
		e.done, total, res.Spec, res.Wall.Round(time.Millisecond), res.Stats.Cycles)
}

// ExecuteOne runs a single spec to completion in the calling goroutine.
// It builds a private workload and GPU so concurrent calls share no
// simulator state; the result's statistics are final and never mutated
// again (renderers receive clones). coreWorkers sets gpu.GPU.Workers for
// the run (<= 1 means serial ticking; output is identical either way).
func ExecuteOne(spec RunSpec, size workloads.Size, seed uint64, coreWorkers int) *RunResult {
	return ExecuteObs(spec, size, seed, coreWorkers, ObsOptions{})
}

// ExecuteObs is ExecuteOne with per-run observability attached: a cycle
// sampler (optionally persisted as CSV), a forward-progress watchdog, a
// cycle budget, and a wall-clock deadline. With the zero ObsOptions it is
// identical to ExecuteOne.
func ExecuteObs(spec RunSpec, size workloads.Size, seed uint64, coreWorkers int, ob ObsOptions) *RunResult {
	return ExecuteCk(spec, size, seed, coreWorkers, ob, nil)
}

// ExecuteCk is ExecuteObs with checkpointed warm starts: when pool is
// non-nil the workload is acquired from it — restored from a pristine
// post-build snapshot when an instance exists, built cold (and
// checkpointed) otherwise — and returned to the pool once the run and its
// functional check finish. A nil pool builds cold, exactly as before.
func ExecuteCk(spec RunSpec, size workloads.Size, seed uint64, coreWorkers int, ob ObsOptions, pool *snapshot.Pool) *RunResult {
	return ExecuteSampled(spec, size, seed, coreWorkers, ob, pool, gpu.SamplePlan{})
}

// ExecuteSampled is ExecuteCk with optional SMARTS-style interval sampling:
// a non-zero plan runs the simulation through gpu.RunSampled, attaches the
// per-interval record to the result, and replaces Stats.Cycles and
// Stats.Instructions with the rounded whole-run estimates (the remaining
// counters stay as measured-window totals, whose ratios are the sampled
// estimators). Architectural state — and therefore the functional check —
// is exact either way. A zero plan is exactly ExecuteCk.
func ExecuteSampled(spec RunSpec, size workloads.Size, seed uint64, coreWorkers int, ob ObsOptions, pool *snapshot.Pool, plan gpu.SamplePlan) *RunResult {
	res := &RunResult{Spec: spec}
	start := time.Now()
	defer func() { res.Wall = time.Since(start) }()

	var wl *workloads.Workload
	var err error
	if pool != nil {
		var release func()
		wl, release, err = pool.Acquire(spec.Workload, size, spec.Config.PageShift, seed)
		if release != nil {
			defer release()
		}
	} else {
		wl, err = workloads.Build(spec.Workload, size, spec.Config.PageShift, seed)
	}
	if err != nil {
		res.Err = err
		return res
	}
	st := &stats.Sim{}
	g, err := gpu.New(spec.Config, wl.AS, st)
	if err != nil {
		res.Err = err
		return res
	}
	g.Workers = coreWorkers
	if ob.enabled() {
		g.MaxCycles = ob.MaxCycles
		g.WatchdogWindow = ob.Watchdog
		g.Deadline = ob.Deadline
		if ob.SampleEvery > 0 {
			g.Sampler = obs.NewSampler(ob.SampleEvery, 0)
		}
		if ob.Progress != nil {
			g.Progress = func(p obs.Progress) { ob.Progress(spec, p) }
			g.ProgressEvery = ob.ProgressEvery
		}
	}
	var runErr error
	if plan.Enabled() {
		var smp *stats.Sampled
		_, smp, runErr = g.RunSampled(wl.Launch, plan)
		if runErr == nil {
			res.Sampled = smp
			st.Cycles = uint64(smp.EstimatedCycles().Value + 0.5)
			st.Instructions = stats.Counter(smp.EstimatedInstructions().Value + 0.5)
		}
	} else {
		_, runErr = g.Run(wl.Launch)
	}
	if g.Sampler != nil {
		res.Series = g.Sampler.Samples()
		if ob.SampleDir != "" {
			if err := writeSeriesCSV(ob.SampleDir, spec, g.Sampler); err != nil && runErr == nil {
				runErr = err
			}
		}
	}
	if runErr != nil {
		res.Err = runErr
		return res
	}
	if wl.Check != nil {
		if err := wl.Check(); err != nil {
			res.Err = fmt.Errorf("functional check: %w", err)
			return res
		}
	}
	res.Stats = st
	return res
}

// writeSeriesCSV persists one run's sampled series under dir. The filename
// combines the workload name with a short hash of the spec's canonical key,
// so concurrent runs of the same workload under different configs never
// collide and reruns of the same spec overwrite their own artefact.
func writeSeriesCSV(dir string, spec RunSpec, smp *obs.Sampler) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("sample dir: %w", err)
	}
	h := fnv.New64a()
	h.Write([]byte(spec.Key()))
	name := fmt.Sprintf("%s-%016x.csv", spec.Workload, h.Sum64())
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return fmt.Errorf("sample series: %w", err)
	}
	if err := smp.WriteCSV(f); err != nil {
		f.Close()
		return fmt.Errorf("sample series %s: %w", name, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("sample series %s: %w", name, err)
	}
	return nil
}
