// Exact-vs-sampled comparison: the validation harness behind the
// `-sampleplan` report and `gpusim -benchsampling`. Each workload is run
// twice on the same machine — once exact, once under the sample plan — and
// the headline metrics are compared, with the end-of-run memory and
// page-table digests pinning that fast-forward advanced architectural
// state exactly.
package experiments

import (
	"fmt"
	"time"

	"gpummu/internal/config"
	"gpummu/internal/gpu"
	"gpummu/internal/ref"
	"gpummu/internal/stats"
	"gpummu/internal/workloads"
)

// SampledRun is one workload's exact-vs-sampled comparison.
type SampledRun struct {
	Workload string

	ExactCycles   uint64
	ExactIPC      float64
	ExactMissRate float64
	ExactWall     time.Duration

	Sampled     *stats.Sampled
	EstCycles   stats.Metric
	EstIPC      stats.Metric
	EstMissRate stats.Metric
	SampledWall time.Duration

	CyclesErr float64 // |est-exact|/exact
	IPCErr    float64
	MissErr   float64

	Speedup     float64 // exact wall / sampled wall
	DigestMatch bool    // end-of-run MemDigest and PageTableDigest identical
}

// CompareSampled runs workload w at the given size twice on cfg — exact,
// then under plan — and returns the comparison. Both runs build the
// workload fresh with the same seed, so the exact run's end-of-run digests
// are the oracle for the sampled run's architectural state.
func CompareSampled(w string, size workloads.Size, cfg config.Hardware, seed uint64, coreWorkers int, plan gpu.SamplePlan) (*SampledRun, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if !plan.Enabled() {
		return nil, fmt.Errorf("experiments: CompareSampled needs an enabled sample plan")
	}
	r := &SampledRun{Workload: w}

	wl, err := workloads.Build(w, size, cfg.PageShift, seed)
	if err != nil {
		return nil, err
	}
	st := &stats.Sim{}
	g, err := gpu.New(cfg, wl.AS, st)
	if err != nil {
		return nil, err
	}
	g.Workers = coreWorkers
	start := time.Now()
	cycles, err := g.Run(wl.Launch)
	if err != nil {
		return nil, fmt.Errorf("%s exact: %w", w, err)
	}
	r.ExactWall = time.Since(start)
	if wl.Check != nil {
		if err := wl.Check(); err != nil {
			return nil, fmt.Errorf("%s exact functional check: %w", w, err)
		}
	}
	r.ExactCycles = cycles
	r.ExactIPC = float64(st.Instructions.Value()) / float64(cycles)
	r.ExactMissRate = st.TLBMissRate()
	exactMem := ref.MemDigest(wl.AS)
	exactPT := ref.PageTableDigest(wl.AS.Mem, wl.AS.PT.CR3())

	wl2, err := workloads.Build(w, size, cfg.PageShift, seed)
	if err != nil {
		return nil, err
	}
	st2 := &stats.Sim{}
	g2, err := gpu.New(cfg, wl2.AS, st2)
	if err != nil {
		return nil, err
	}
	g2.Workers = coreWorkers
	start = time.Now()
	_, smp, err := g2.RunSampled(wl2.Launch, plan)
	if err != nil {
		return nil, fmt.Errorf("%s sampled: %w", w, err)
	}
	r.SampledWall = time.Since(start)
	if wl2.Check != nil {
		if err := wl2.Check(); err != nil {
			return nil, fmt.Errorf("%s sampled functional check: %w", w, err)
		}
	}
	r.Sampled = smp
	r.EstCycles = smp.EstimatedCycles()
	r.EstIPC = smp.IPC()
	r.EstMissRate = smp.TLBMissRate()
	r.CyclesErr = r.EstCycles.RelErr(float64(r.ExactCycles))
	r.IPCErr = r.EstIPC.RelErr(r.ExactIPC)
	r.MissErr = r.EstMissRate.RelErr(r.ExactMissRate)
	if r.SampledWall > 0 {
		r.Speedup = float64(r.ExactWall) / float64(r.SampledWall)
	}
	r.DigestMatch = ref.MemDigest(wl2.AS) == exactMem &&
		ref.PageTableDigest(wl2.AS.Mem, wl2.AS.PT.CR3()) == exactPT

	return r, nil
}

// SampledReport renders the exact-vs-sampled validation table for the
// harness's workloads on its machine with the paper's augmented MMU: per
// workload, the exact value, the sampled estimate with its 95% CI, and the
// relative error, for cycles, IPC, and TLB miss rate — plus the detail
// fraction and the architectural-state digest check. Wall-clock speedup is
// intentionally absent: it depends on the host; `gpusim -benchsampling`
// records it.
func SampledReport(h *Harness, plan gpu.SamplePlan) (string, error) {
	cfg := h.cfgWith(config.AugmentedMMU())
	tbl := stats.NewTable("workload", "exact_cycles", "est_cycles", "cyc_err%",
		"exact_ipc", "est_ipc", "ipc_err%", "exact_miss", "est_miss", "miss_err%",
		"detail_frac", "digests")
	for _, w := range h.opt.Workload {
		r, err := CompareSampled(w, h.opt.Size, cfg, h.opt.Seed, h.opt.CoreWorkers, plan)
		if err != nil {
			return "", err
		}
		digests := "identical"
		if !r.DigestMatch {
			digests = "DIFFER"
		}
		tbl.AddRow(w, r.ExactCycles, r.EstCycles.String(), 100*r.CyclesErr,
			r.ExactIPC, r.EstIPC.String(), 100*r.IPCErr,
			r.ExactMissRate, r.EstMissRate.String(), 100*r.MissErr,
			r.Sampled.DetailFraction(), digests)
	}
	return tbl.String(), nil
}
