package engine

// SlottedResource models a contended structure by bucketing time into
// fixed-width windows, each with a budget of busy-cycles (ports × window).
// Unlike Resource, it admits out-of-order reservations: a request that must
// start far in the future reserves capacity in *its* windows without
// blocking earlier windows — essential in this simulator because memory
// accesses are issued analytically at their (possibly future) start times,
// not in global time order.
type SlottedResource struct {
	window   uint64
	capacity int // busy-cycles available per window
	used     map[uint64]int
	floor    uint64 // windows below this have been pruned (treated as full history)
}

// NewSlottedResource builds a resource able to sustain ports busy-cycles
// per cycle, tracked at the given window granularity (power of two
// recommended; 16-64 is a good trade-off between accuracy and memory).
func NewSlottedResource(ports int, window uint64) *SlottedResource {
	if ports < 1 || window < 1 {
		panic("engine: SlottedResource needs ports >= 1 and window >= 1")
	}
	return &SlottedResource{
		window:   window,
		capacity: ports * int(window),
		used:     make(map[uint64]int),
	}
}

// Acquire reserves busy busy-cycles starting no earlier than start,
// returning the cycle at which service begins. Capacity is consumed from
// the first window at or after start with room, spilling into subsequent
// windows for large requests.
func (s *SlottedResource) Acquire(start Cycle, busy int) Cycle {
	if busy <= 0 {
		return start
	}
	w := uint64(start) / s.window
	if w < s.floor {
		w = s.floor
	}
	// Find the first window with any room.
	for s.used[w] >= s.capacity {
		w++
	}
	begin := Cycle(w * s.window)
	if begin < start {
		begin = start
	}
	// Consume, spilling forward as needed.
	remaining := busy
	for remaining > 0 {
		room := s.capacity - s.used[w]
		if room > remaining {
			room = remaining
		}
		if room > 0 {
			s.used[w] += room
			remaining -= room
		}
		if remaining > 0 {
			w++
		}
	}
	return begin
}

// PruneBefore drops bookkeeping for windows wholly before cycle c. Callers
// guarantee no future Acquire will target a pruned window (the simulator's
// clock is monotonic and requests never start in the past).
func (s *SlottedResource) PruneBefore(c Cycle) {
	limit := uint64(c) / s.window
	if limit <= s.floor {
		return
	}
	for w := range s.used {
		if w < limit {
			delete(s.used, w)
		}
	}
	s.floor = limit
}

// Utilization reports used/capacity over windows in [from, to) —
// diagnostics only.
func (s *SlottedResource) Utilization(from, to Cycle) float64 {
	lo, hi := uint64(from)/s.window, uint64(to)/s.window
	if hi <= lo {
		return 0
	}
	var used int
	for w := lo; w < hi; w++ {
		used += s.used[w]
	}
	return float64(used) / float64(int(hi-lo)*s.capacity)
}
