package engine

// SlottedResource models a contended structure by bucketing time into
// fixed-width windows, each with a budget of busy-cycles (ports × window).
// Unlike Resource, it admits out-of-order reservations: a request that must
// start far in the future reserves capacity in *its* windows without
// blocking earlier windows — essential in this simulator because memory
// accesses are issued analytically at their (possibly future) start times,
// not in global time order.
//
// Bookkeeping is a dense slice indexed from a sliding base window rather
// than a map: Acquire sits on the per-memory-instruction hot path, and the
// window population between prunes is small (the ~16k-cycle prune cadence
// in GPU.Run bounds it to a few hundred windows), so the slice is both
// faster and allocation-free in steady state.
type SlottedResource struct {
	window   uint64
	capacity int    // busy-cycles available per window
	base     uint64 // window index of used[0]
	used     []int
	floor    uint64 // windows below this have been pruned (treated as full history)
}

// NewSlottedResource builds a resource able to sustain ports busy-cycles
// per cycle, tracked at the given window granularity (power of two
// recommended; 16-64 is a good trade-off between accuracy and memory).
func NewSlottedResource(ports int, window uint64) *SlottedResource {
	if ports < 1 || window < 1 {
		panic("engine: SlottedResource needs ports >= 1 and window >= 1")
	}
	return &SlottedResource{
		window:   window,
		capacity: ports * int(window),
	}
}

// Acquire reserves busy busy-cycles starting no earlier than start,
// returning the cycle at which service begins. Capacity is consumed from
// the first window at or after start with room, spilling into subsequent
// windows for large requests.
func (s *SlottedResource) Acquire(start Cycle, busy int) Cycle {
	if busy <= 0 {
		return start
	}
	w := uint64(start) / s.window
	if w < s.floor {
		w = s.floor
	}
	// Find the first window with any room. Windows past the tracked range
	// are untouched and therefore free.
	i := int(w - s.base)
	for i < len(s.used) && s.used[i] >= s.capacity {
		i++
	}
	begin := Cycle((s.base + uint64(i)) * s.window)
	if begin < start {
		begin = start
	}
	// Consume, spilling forward as needed.
	remaining := busy
	for remaining > 0 {
		for i >= len(s.used) {
			s.used = append(s.used, 0)
		}
		room := s.capacity - s.used[i]
		if room > remaining {
			room = remaining
		}
		if room > 0 {
			s.used[i] += room
			remaining -= room
		}
		if remaining > 0 {
			i++
		}
	}
	return begin
}

// Reset clears all reservations and the prune floor, returning the
// resource to its freshly constructed state. Warm-start paths that rerun a
// kernel from cycle 0 on an already-built structure must call this: after
// PruneBefore the floor clamps every Acquire at or above it, so a stale
// floor from a previous run would silently push early requests into the
// future instead of reproducing the cold run's timeline.
func (s *SlottedResource) Reset() {
	s.used = s.used[:0]
	s.base = 0
	s.floor = 0
}

// PruneBefore drops bookkeeping for windows wholly before cycle c. Callers
// guarantee no future Acquire will target a pruned window (the simulator's
// clock is monotonic and requests never start in the past).
func (s *SlottedResource) PruneBefore(c Cycle) {
	limit := uint64(c) / s.window
	if limit <= s.floor {
		return
	}
	if drop := limit - s.base; drop >= uint64(len(s.used)) {
		s.used = s.used[:0]
	} else {
		n := copy(s.used, s.used[drop:])
		s.used = s.used[:n]
	}
	s.base = limit
	s.floor = limit
}

// Utilization reports used/capacity over windows in [from, to) —
// diagnostics only.
func (s *SlottedResource) Utilization(from, to Cycle) float64 {
	lo, hi := uint64(from)/s.window, uint64(to)/s.window
	if hi <= lo {
		return 0
	}
	var used int
	for w := lo; w < hi; w++ {
		if w >= s.base && w-s.base < uint64(len(s.used)) {
			used += s.used[w-s.base]
		}
	}
	return float64(used) / float64(int(hi-lo)*s.capacity)
}
