package engine

import (
	"testing"
	"testing/quick"
)

func TestSlottedBasicAdmission(t *testing.T) {
	r := NewSlottedResource(1, 16) // 16 busy-cycles per 16-cycle window
	if got := r.Acquire(0, 8); got != 0 {
		t.Fatalf("first acquire at %d", got)
	}
	if got := r.Acquire(0, 8); got != 0 {
		t.Fatalf("second acquire at %d (window had room)", got)
	}
	// Window [0,16) is full now; next goes to window 1.
	if got := r.Acquire(0, 1); got < 16 {
		t.Fatalf("third acquire at %d, want >= 16", got)
	}
}

func TestSlottedOutOfOrderNoStarvation(t *testing.T) {
	r := NewSlottedResource(1, 16)
	// A far-future reservation must not delay a near-term one.
	far := r.Acquire(10_000, 8)
	if far < 10_000 {
		t.Fatalf("future acquire at %d", far)
	}
	near := r.Acquire(0, 8)
	if near >= 16 {
		t.Fatalf("near-term acquire pushed to %d by future reservation", near)
	}
}

func TestSlottedSpill(t *testing.T) {
	r := NewSlottedResource(1, 8)
	// 20 busy-cycles spill across 3 windows but service starts immediately.
	if got := r.Acquire(0, 20); got != 0 {
		t.Fatalf("spilling acquire at %d", got)
	}
	// All of window 0 and 1 plus half of 2 are used.
	if got := r.Acquire(0, 8); got < 16 {
		t.Fatalf("follow-up acquire at %d, want >= 16", got)
	}
}

func TestSlottedPrune(t *testing.T) {
	r := NewSlottedResource(1, 16)
	for i := 0; i < 100; i++ {
		r.Acquire(Cycle(i*16), 16)
	}
	r.PruneBefore(50 * 16)
	// Pruned windows are treated as history; new acquires at/after the
	// floor still work.
	if got := r.Acquire(100*16, 1); got < 100*16 {
		t.Fatalf("post-prune acquire at %d", got)
	}
}

func TestSlottedUtilization(t *testing.T) {
	r := NewSlottedResource(1, 16)
	r.Acquire(0, 16)
	if u := r.Utilization(0, 16); u != 1.0 {
		t.Fatalf("utilization = %f", u)
	}
	if u := r.Utilization(16, 32); u != 0 {
		t.Fatalf("empty utilization = %f", u)
	}
}

// TestSlottedConservationQuick: total capacity granted can never exceed
// ports x elapsed window span, for any request pattern.
func TestSlottedConservationQuick(t *testing.T) {
	const ports, window = 2, 16
	r := NewSlottedResource(ports, window)
	granted := 0
	maxEnd := Cycle(0)
	f := func(start uint16, busy uint8) bool {
		b := int(busy%32) + 1
		at := r.Acquire(Cycle(start), b)
		if at < Cycle(start) {
			return false
		}
		granted += b
		end := at + Cycle(b)
		if end > maxEnd {
			maxEnd = end
		}
		// Capacity over [0, maxEnd+window) bounds everything granted.
		capacity := (int(maxEnd)/window + 1) * ports * window
		return granted <= capacity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestSlottedResetReturnsToFreshState: after arbitrary traffic and a
// PruneBefore (which installs a floor that clamps all later Acquires),
// Reset must make the resource grant exactly what a new one would.
func TestSlottedResetReturnsToFreshState(t *testing.T) {
	r := NewSlottedResource(2, 16)
	for i := 0; i < 50; i++ {
		r.Acquire(Cycle(i*3), 5)
	}
	r.PruneBefore(1000)
	// The floor is tracked at window granularity: 1000/16 = window 62,
	// whose first cycle is 992.
	if got := r.Acquire(0, 1); got < 992 {
		t.Fatalf("floor not installed: Acquire(0) began at %d", got)
	}

	r.Reset()
	fresh := NewSlottedResource(2, 16)
	for i := 0; i < 50; i++ {
		if got, want := r.Acquire(Cycle(i), 3), fresh.Acquire(Cycle(i), 3); got != want {
			t.Fatalf("req %d: reset resource granted %d, fresh granted %d", i, got, want)
		}
	}
}
