package engine

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestResourceSinglePortSerialises(t *testing.T) {
	r := NewResource(1)
	if got := r.Acquire(10, 5); got != 10 {
		t.Fatalf("first acquire starts at %d", got)
	}
	if got := r.Acquire(10, 5); got != 15 {
		t.Fatalf("second acquire starts at %d, want 15", got)
	}
	if got := r.Acquire(100, 5); got != 100 {
		t.Fatalf("late acquire starts at %d, want 100", got)
	}
}

func TestResourceMultiPortParallel(t *testing.T) {
	r := NewResource(3)
	for i := 0; i < 3; i++ {
		if got := r.Acquire(0, 10); got != 0 {
			t.Fatalf("port %d starts at %d", i, got)
		}
	}
	if got := r.Acquire(0, 10); got != 10 {
		t.Fatalf("fourth request starts at %d, want 10", got)
	}
}

func TestResourceFreeAtAndReset(t *testing.T) {
	r := NewResource(2)
	r.Acquire(0, 4)
	if got := r.FreeAt(); got != 0 {
		t.Fatalf("FreeAt = %d, want 0 (second port idle)", got)
	}
	r.Acquire(0, 6)
	if got := r.FreeAt(); got != 4 {
		t.Fatalf("FreeAt = %d, want 4", got)
	}
	r.Reset()
	if got := r.FreeAt(); got != 0 {
		t.Fatalf("FreeAt after reset = %d", got)
	}
}

// TestResourceMonotonicQuick: service never starts before the request, and
// with one port, consecutive service intervals never overlap.
func TestResourceMonotonicQuick(t *testing.T) {
	r := NewResource(1)
	var lastEnd Cycle
	f := func(delta uint16, busy uint8) bool {
		now := lastEnd - Cycle(uint64(delta)%7) // sometimes before free
		if lastEnd < Cycle(delta) {
			now = Cycle(delta)
		}
		start := r.Acquire(now, Cycle(busy))
		ok := start >= now && start >= lastEnd
		lastEnd = start + Cycle(busy)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminismAndSpread(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed streams diverge")
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide %d/100", same)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(17); v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d", v)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 = %f", f)
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := NewRNG(5)
	xs := make([]int, 100)
	for i := range xs {
		xs[i] = i
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, 100)
	for _, x := range xs {
		if seen[x] {
			t.Fatalf("duplicate %d after shuffle", x)
		}
		seen[x] = true
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(11)
	z := NewZipf(r, 1000, 0.99)
	counts := make([]int, 1000)
	for i := 0; i < 100000; i++ {
		v := z.Draw()
		if v < 0 || v >= 1000 {
			t.Fatalf("Zipf draw %d out of range", v)
		}
		counts[v]++
	}
	// Rank 0 must dominate rank 500 heavily.
	if counts[0] < 10*counts[500]+1 {
		t.Fatalf("distribution not skewed: rank0=%d rank500=%d", counts[0], counts[500])
	}
	// The head must not be everything either.
	if counts[0] > 50000 {
		t.Fatalf("rank0 hoards %d draws", counts[0])
	}
}

// TestAcquireSinglePortMatchesScan pins the single-port fast path to the
// generic scan: both must serialise back-to-back requests identically.
func TestAcquireSinglePortMatchesScan(t *testing.T) {
	one := NewResource(1)
	two := NewResource(2)
	// Drive the 2-port resource so only port 0 is ever chosen, mirroring
	// the 1-port case: pre-busy port 1 far into the future.
	two.ports[1] = 1 << 40
	times := []Cycle{0, 0, 3, 3, 10, 11, 11, 100}
	for _, now := range times {
		a := one.Acquire(now, 2)
		b := two.Acquire(now, 2)
		if a != b {
			t.Fatalf("Acquire(%d): 1-port=%d generic=%d", now, a, b)
		}
	}
}

// BenchmarkResourceAcquire measures the Acquire hot path; the 1-port case
// is the one every TLB lookup takes (config.MMU.Ports is 1 in the paper's
// configurations).
func BenchmarkResourceAcquire(b *testing.B) {
	for _, ports := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("ports=%d", ports), func(b *testing.B) {
			r := NewResource(ports)
			for i := 0; i < b.N; i++ {
				r.Acquire(Cycle(i), 1)
			}
		})
	}
}
