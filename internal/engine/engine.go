// Package engine provides the low-level building blocks shared by every
// timing model in the simulator: the cycle type, contended-resource
// bookkeeping, and a deterministic pseudo-random source.
//
// The simulator is cycle-driven but avoids modelling every pipeline buffer.
// Instead, each contended structure (a TLB port group, a cache bank, a DRAM
// channel, a page table walker) is a Resource: a small ring of
// next-free-cycle counters. Asking a Resource for service at cycle c returns
// the cycle at which service actually starts, pushing the port's next-free
// marker forward by the occupancy. This "analytic queue" style is the
// standard trick used by trace-driven architecture simulators to model
// contention at a fraction of the cost of event queues.
package engine

import "math"

// Cycle is a point in simulated time, measured in GPU core clock cycles.
type Cycle uint64

// Resource models a structure with a fixed number of service ports, each of
// which can start one request per BusyFor cycles. The zero value is not
// usable; construct with NewResource.
type Resource struct {
	ports []Cycle // next cycle at which each port is free
}

// NewResource returns a Resource with the given port count. ports must be
// at least 1.
func NewResource(ports int) *Resource {
	if ports < 1 {
		panic("engine: Resource needs at least one port")
	}
	return &Resource{ports: make([]Cycle, ports)}
}

// Ports reports the number of service ports.
func (r *Resource) Ports() int { return len(r.ports) }

// Acquire reserves the earliest-available port at or after cycle now for
// busy cycles, returning the cycle at which service starts. Single-port
// resources — TLB port groups and walker issue ports in the common
// configurations — skip the port scan entirely.
func (r *Resource) Acquire(now Cycle, busy Cycle) Cycle {
	if len(r.ports) == 1 {
		start := r.ports[0]
		if start < now {
			start = now
		}
		r.ports[0] = start + busy
		return start
	}
	best := 0
	for i := 1; i < len(r.ports); i++ {
		if r.ports[i] < r.ports[best] {
			best = i
		}
	}
	start := r.ports[best]
	if start < now {
		start = now
	}
	r.ports[best] = start + busy
	return start
}

// FreeAt reports the earliest cycle at which some port could begin service,
// ignoring requests that might arrive in the meantime.
func (r *Resource) FreeAt() Cycle {
	best := r.ports[0]
	for _, p := range r.ports[1:] {
		if p < best {
			best = p
		}
	}
	return best
}

// Reset makes all ports free immediately.
func (r *Resource) Reset() {
	for i := range r.ports {
		r.ports[i] = 0
	}
}

// RNG is a deterministic 64-bit pseudo-random generator (xorshift*). Every
// stochastic choice in the simulator draws from an RNG seeded from the
// workload configuration so runs are exactly reproducible.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped to a
// fixed non-zero constant because the xorshift state must never be zero.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next value in the sequence.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("engine: Intn needs positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform value in [0, n). n must be positive.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("engine: Uint64n needs positive n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Zipf draws Zipf-distributed ranks in [0, n) with exponent s. It uses a
// precomputed inverse-CDF table so draws are O(log n). Zipf is used by the
// memcached workload to mimic the skew of the Wikipedia request trace.
type Zipf struct {
	rng *RNG
	cdf []float64
}

// NewZipf builds a Zipf sampler over n items with skew s (s > 0; the paper's
// key-value workload is well modelled by s around 0.99).
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("engine: Zipf needs positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{rng: rng, cdf: cdf}
}

// Draw returns the next rank.
func (z *Zipf) Draw() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func pow(base, exp float64) float64 { return math.Pow(base, exp) }
