package gpu

import (
	"testing"

	"gpummu/internal/config"
)

// TestTLBAwareTBCReducesPageDivergence verifies the paper's figure 19
// mechanism end to end: CPM-gated compaction forms more dynamic warps
// whose threads share pages, so per-warp page divergence drops relative to
// TLB-agnostic TBC.
func TestTLBAwareTBCReducesPageDivergence(t *testing.T) {
	run := func(mode config.DivergenceMode) *statsProbe {
		cfg := config.SmallTest()
		cfg.MMU = config.AugmentedMMU()
		cfg.TBC.Mode = mode
		st := runWith(t, "mummergpu", cfg)
		return &statsProbe{
			pagediv:   st.PageDivergence.Mean(),
			compacted: st.CompactedWarps.Value(),
			rejects:   st.CPMRejects.Value(),
		}
	}
	agnostic := run(config.DivTBC)
	aware := run(config.DivTLBTBC)

	if aware.rejects == 0 {
		t.Fatal("CPM never gated a compaction candidate")
	}
	if agnostic.rejects != 0 {
		t.Fatal("TLB-agnostic TBC consulted the CPM")
	}
	if aware.compacted < agnostic.compacted {
		t.Fatalf("TLB-aware TBC formed fewer warps (%d < %d); gating should split them",
			aware.compacted, agnostic.compacted)
	}
	if aware.pagediv >= agnostic.pagediv {
		t.Fatalf("TLB-aware TBC page divergence %.3f not below agnostic %.3f",
			aware.pagediv, agnostic.pagediv)
	}
}

type statsProbe struct {
	pagediv   float64
	compacted uint64
	rejects   uint64
}

// TestTBCImprovesSIMDUtilisation: compaction's whole purpose — dynamic
// warps pack divergent threads, raising active lanes per issued
// instruction versus per-warp stacks.
func TestTBCImprovesSIMDUtilisation(t *testing.T) {
	util := func(mode config.DivergenceMode) float64 {
		cfg := config.SmallTest()
		cfg.TBC.Mode = mode
		st := runWith(t, "bfs", cfg)
		return st.SIMDUtilisation(cfg.WarpWidth)
	}
	stack := util(config.DivStack)
	tbc := util(config.DivTBC)
	if tbc <= stack {
		t.Fatalf("TBC SIMD utilisation %.3f not above stack %.3f", tbc, stack)
	}
}

// TestCPMFlushPeriodMatters: an effectively never-flushed CPM saturates
// everywhere and gates nothing extra over time; the paper's 500-cycle
// flush keeps it adaptive. We just check the knob changes behaviour.
func TestCPMFlushPeriodMatters(t *testing.T) {
	rejects := func(period int) uint64 {
		cfg := config.SmallTest()
		cfg.MMU = config.AugmentedMMU()
		cfg.TBC.Mode = config.DivTLBTBC
		cfg.TBC.CPMFlushPeriod = period
		st := runWith(t, "mummergpu", cfg)
		return st.CPMRejects.Value()
	}
	fast, slow := rejects(100), rejects(1_000_000)
	if fast == slow {
		t.Fatalf("flush period has no effect (rejects %d == %d)", fast, slow)
	}
	// Frequent flushes keep counters unsaturated, so gating rejects more.
	if fast < slow {
		t.Fatalf("frequent flushes rejected less (%d) than rare flushes (%d)", fast, slow)
	}
}
