// Package gpu implements the SIMT machine: shader cores, warps, the warp
// schedulers (round-robin, GTO, and the CCWS family), per-warp SIMT
// reconvergence stacks, thread block compaction, and the load-store path
// that drives the MMU in internal/core. The machine is cycle-driven with
// event fast-forwarding: when no core can issue, the clock jumps to the
// next completion.
package gpu

import (
	"fmt"
	"math"

	"gpummu/internal/config"
	"gpummu/internal/core"
	"gpummu/internal/engine"
	"gpummu/internal/kernels"
	"gpummu/internal/mem"
	"gpummu/internal/stats"
	"gpummu/internal/vm"
)

// noEvent marks "no future event" from a core tick.
const noEvent = engine.Cycle(math.MaxUint64)

// GPU is the whole simulated device: shader cores plus the shared memory
// system, executing kernels over a unified address space.
type GPU struct {
	cfg    config.Hardware
	sys    *mem.System
	tr     *vm.Translator
	as     *vm.AddressSpace
	st     *stats.Sim
	cores  []*Core
	launch *kernels.Launch

	nextBlock  int // next block id to dispatch
	liveBlocks int
	tracer     Tracer

	// MaxCycles, when non-zero, aborts Run past this cycle with a
	// diagnostic — a guard against malformed kernels that never finish.
	MaxCycles uint64
}

// dumpState summarises warp states for deadlock/runaway diagnostics.
func (g *GPU) dumpState() string {
	s := ""
	for _, c := range g.cores {
		for _, b := range c.blocks {
			s += fmt.Sprintf("core %d block %d live=%d:", c.id, b.id, b.liveThreads)
			for _, w := range b.warps {
				s += fmt.Sprintf(" [slot%d st%d pc%d rdy%d lanes%d]", w.slot, w.state, w.curPC(), w.readyAt, countLanes(w.curLanes()))
			}
			if b.tbc != nil {
				s += fmt.Sprintf(" tbcstack=%d", len(b.tbc.stack))
			}
			s += "\n"
		}
	}
	return s
}

// New builds a GPU with the given hardware configuration over the address
// space as, recording statistics into st.
func New(cfg config.Hardware, as *vm.AddressSpace, st *stats.Sim) (*GPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if uint(cfg.PageShift) != as.PageShift() {
		return nil, fmt.Errorf("gpu: config page shift %d != address space %d", cfg.PageShift, as.PageShift())
	}
	g := &GPU{
		cfg: cfg,
		as:  as,
		st:  st,
		tr:  vm.NewTranslator(as.PT, as.PageShift()),
	}
	g.sys = mem.NewSystem(cfg, st)
	var shared *core.SharedTLB
	if cfg.MMU.Enabled && cfg.MMU.SharedTLBEntries > 0 {
		lat := cfg.MMU.SharedTLBLatency
		if lat <= 0 {
			lat = 2 * cfg.ICNTLatency
		}
		shared = core.NewSharedTLB(cfg.MMU.SharedTLBEntries, 4, cfg.NumCores/2+1, lat, st)
	}
	g.cores = make([]*Core, cfg.NumCores)
	for i := range g.cores {
		g.cores[i] = newCore(i, g)
		if shared != nil {
			g.cores[i].mmu.AttachSharedTLB(shared)
		}
	}
	return g, nil
}

// Stats returns the statistics sink.
func (g *GPU) Stats() *stats.Sim { return g.st }

// Translator returns the functional translator (tests and tools).
func (g *GPU) Translator() *vm.Translator { return g.tr }

// Run executes one kernel launch to completion and returns the total cycle
// count. It errs on invalid launches and on deadlock (which indicates a
// malformed kernel, e.g. a barrier inside divergent control flow).
func (g *GPU) Run(l *kernels.Launch) (uint64, error) {
	if err := l.Validate(); err != nil {
		return 0, err
	}
	g.launch = l
	g.nextBlock = 0
	g.liveBlocks = 0
	for _, c := range g.cores {
		c.reset()
	}
	// Initial block dispatch.
	for _, c := range g.cores {
		c.fillBlocks()
	}

	now := engine.Cycle(0)
	for g.liveBlocks > 0 || g.nextBlock < l.Grid {
		if g.MaxCycles != 0 && uint64(now) > g.MaxCycles {
			return uint64(now), fmt.Errorf("gpu: exceeded MaxCycles=%d\n%s", g.MaxCycles, g.dumpState())
		}
		next := noEvent
		anyLive := false
		for _, c := range g.cores {
			if len(c.blocks) == 0 {
				// A blockless core can only regain blocks through its own
				// retireBlock, so it has nothing to do until the launch ends.
				c.pendingIdle = false
				continue
			}
			if c.skippable && now < c.wakeAt {
				// The core's warp set is frozen until wakeAt, so a real
				// tick would be a pure no-op; emulate its return value
				// with a bounded warp scan (the "hint" the pristine loop
				// produced) instead of running maintain/order/step. See
				// DESIGN.md "Performance model" for the exactness argument.
				ev := c.sleepCap
				anyWarp := false
				for _, b := range c.blocks {
					for _, w := range b.warps {
						if w.state == WDone {
							continue
						}
						anyWarp = true
						if w.state == WReady && w.readyAt > now && w.readyAt < ev {
							ev = w.readyAt
						}
					}
				}
				if anyWarp {
					anyLive = true
					c.pendingIdle = true
					if ev < next {
						next = ev
					}
					continue
				}
				// All warps drained with blocks still live: TBC bookkeeping
				// is pending, which only a real tick's maintain can run.
			}
			issued, ev := c.tick(now)
			// Re-check blocks: the tick may have retired the core's last one.
			if len(c.blocks) > 0 {
				anyLive = true
				c.pendingIdle = !issued
			} else {
				c.pendingIdle = false
			}
			if ev < next {
				next = ev
			}
		}
		if !anyLive && g.nextBlock >= l.Grid && g.liveBlocks == 0 {
			break
		}
		if next == noEvent {
			return uint64(now), fmt.Errorf("gpu: deadlock at cycle %d (%d live blocks)", now, g.liveBlocks)
		}
		if next <= now {
			next = now + 1
		}
		delta := uint64(next - now)
		for _, c := range g.cores {
			if len(c.blocks) > 0 {
				g.st.CoreCycles += delta
				if c.pendingIdle {
					g.st.IdleCycles.Add(delta)
				}
			}
		}
		if next>>14 != now>>14 {
			// Every ~16k cycles, drop contention bookkeeping for the past.
			g.sys.Prune(next)
			for _, c := range g.cores {
				c.l1Port.PruneBefore(next)
			}
		}
		now = next
	}
	g.st.Cycles = uint64(now)
	return uint64(now), nil
}
