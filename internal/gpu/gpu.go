// Package gpu implements the SIMT machine: shader cores, warps, the warp
// schedulers (round-robin, GTO, and the CCWS family), per-warp SIMT
// reconvergence stacks, thread block compaction, and the load-store path
// that drives the MMU in internal/core. The machine is cycle-driven with
// event fast-forwarding: when no core can issue, the clock jumps to the
// next completion.
package gpu

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"gpummu/internal/config"
	"gpummu/internal/core"
	"gpummu/internal/engine"
	"gpummu/internal/kernels"
	"gpummu/internal/mem"
	"gpummu/internal/obs"
	"gpummu/internal/stats"
	"gpummu/internal/vm"
)

// noEvent marks "no future event" from a core tick.
const noEvent = engine.Cycle(math.MaxUint64)

// GPU is the whole simulated device: shader cores plus the shared memory
// system, executing kernels over a unified address space.
type GPU struct {
	cfg    config.Hardware
	sys    *mem.System
	tr     *vm.Translator
	as     *vm.AddressSpace
	st     *stats.Sim
	cores  []*Core
	launch *kernels.Launch

	nextBlock  int // next block id to dispatch
	liveBlocks int
	// ffSkip marks blocks RunSampled executed functionally; the dispatch
	// cursor steps over them (advanceCursor). Nil outside sampled runs.
	// Skipped ids are chosen evenly across the undispatched pool, not from
	// its front, so the blocks that do run detailed remain an unbiased
	// sample of the grid even when per-block cost drifts with block id.
	ffSkip []bool
	tracer     Tracer
	shared     *core.SharedTLB // non-nil only with the shared-L2-TLB extension

	// Invariants enables the debug-build invariant checker: Run audits SIMT
	// stacks, TLB-vs-page-table coherence, MSHR bookkeeping, and L2 slice
	// homing on the prune cadence and at kernel completion, aborting with
	// obs.ErrInvariant on a violation. Off by default; when off the only cost
	// is a bool check per prune.
	Invariants bool

	// MaxCycles, when non-zero, aborts Run past this cycle with a
	// diagnostic — a guard against malformed kernels that never finish.
	MaxCycles uint64

	// Workers sets how many host goroutines tick cores inside a single run
	// (the -par flag). Values <= 1 keep the run on one goroutine. Any value
	// produces byte-identical simulation output: the per-cycle compute
	// phase is core-private, and all shared-state work commits serially in
	// core-id order (see DESIGN.md "Two-phase parallel core ticking"). This
	// is a host-side knob, deliberately not part of config.Hardware.
	Workers int

	// Observability hooks (DESIGN.md §11). All are optional; their zero
	// values cost the hot path nothing beyond a nil/zero check, keeping the
	// warm path allocation-free when observability is off.

	// Sampler, when non-nil, records an obs.Sample time-series row at every
	// sampling-interval boundary the clock reaches (plus a forced final row,
	// so the last row's cumulative columns equal the end-of-run report).
	Sampler *obs.Sampler
	// Metrics, when non-nil, receives the hierarchically labelled breakdowns
	// (per-core, per-walker, per-L2-slice) at the end of every Run. Values
	// come from the same per-core shards the global sink merges, so they are
	// exact for any Workers count.
	Metrics *obs.Registry
	// WatchdogWindow aborts a run with obs.ErrLivelock when no thread block
	// retires for this many cycles (0 disables). Block retirement — not
	// instruction issue — is the progress signal: a spin loop issues
	// instructions forever, and only a finishing block shows the kernel is
	// actually getting anywhere.
	WatchdogWindow uint64
	// Deadline aborts the run with obs.ErrDeadline once the wall clock
	// passes it (zero disables). Checked on the prune cadence (~16k cycles).
	Deadline time.Time
	// Ctx, when non-nil, cancels the run cooperatively: a done context
	// aborts with its error as the obs.AbortError cause. Checked on the
	// prune cadence alongside Deadline.
	Ctx context.Context
	// Progress, when non-nil, is called roughly every ProgressEvery cycles
	// (default 1<<20) with a cheap run snapshot.
	Progress      func(obs.Progress)
	ProgressEvery uint64

	// retired counts thread blocks retired since construction — the
	// watchdog's monotonic forward-progress signal.
	retired uint64
	// commitCycle is the clock value of the in-flight commit phase; block
	// retirement reads it so EvBlockEnd events carry real timestamps.
	commitCycle engine.Cycle

	// Retire-span instrumentation for sampled runs (RunSampled). Blocks
	// co-scheduled onto the cores retire in bursts (whole waves finish
	// together), so the only reliable steady-state quantum is a full
	// residency turnover: the interval between retire number cap+1 and
	// retire number k·cap+1 spans exactly k-1 wave periods at matching wave
	// phase, whatever the burst structure looks like inside a wave.
	// retireSteadyAt is the cycle of retire cap+1, retireWaveAt the cycle
	// of the latest retire j·cap+1 after it, and retireWaves counts those
	// turnovers; (retireWaveAt-retireSteadyAt)/(retireWaves·cap) is the
	// marginal cycles-per-block with ramp-up and first-wave burst cancelled.
	// Updated in the serial commit phase, so all of it is deterministic for
	// any Workers count.
	retireFirstAt  engine.Cycle
	retireSteadyAt engine.Cycle
	retireWaveAt   engine.Cycle
	retireLastAt   engine.Cycle
	retireWaves    uint64
	retireCap      uint64 // total resident block capacity for this launch
	retireBase     uint64 // value of retired at reset (retired is monotonic across runs)
}

// dumpState summarises core and warp states for deadlock/runaway
// diagnostics.
func (g *GPU) dumpState(now engine.Cycle) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cycle %d\n", now)
	for _, c := range g.cores {
		fmt.Fprintf(&sb, "core %d wakeAt=%d skippable=%v blocks=%d\n",
			c.id, c.wakeAt, c.skippable, len(c.blocks))
		for _, b := range c.blocks {
			fmt.Fprintf(&sb, "core %d block %d live=%d:", c.id, b.id, b.liveThreads)
			for _, w := range b.warps {
				fmt.Fprintf(&sb, " [slot%d st%d pc%d rdy%d lanes%d]", w.slot, w.state, w.curPC(), w.readyAt, countLanes(w.curLanes()))
			}
			if b.tbc != nil {
				fmt.Fprintf(&sb, " tbcstack=%d", len(b.tbc.stack))
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// New builds a GPU with the given hardware configuration over the address
// space as, recording statistics into st.
func New(cfg config.Hardware, as *vm.AddressSpace, st *stats.Sim) (*GPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if uint(cfg.PageShift) != as.PageShift() {
		return nil, fmt.Errorf("gpu: config page shift %d != address space %d", cfg.PageShift, as.PageShift())
	}
	g := &GPU{
		cfg: cfg,
		as:  as,
		st:  st,
		tr:  vm.NewTranslator(as.PT, as.PageShift()),
	}
	g.sys = mem.NewSystem(cfg, st)
	var shared *core.SharedTLB
	if cfg.MMU.Enabled && cfg.MMU.SharedTLBEntries > 0 {
		lat := cfg.MMU.SharedTLBLatency
		if lat <= 0 {
			lat = 2 * cfg.ICNTLatency
		}
		shared = core.NewSharedTLB(cfg.MMU.SharedTLBEntries, 4, cfg.NumCores/2+1, lat, st)
	}
	g.shared = shared
	g.cores = make([]*Core, cfg.NumCores)
	for i := range g.cores {
		g.cores[i] = newCore(i, g)
		if shared != nil {
			g.cores[i].mmu.AttachSharedTLB(shared)
		}
	}
	return g, nil
}

// Stats returns the statistics sink.
func (g *GPU) Stats() *stats.Sim { return g.st }

// Translator returns the functional translator (tests and tools).
func (g *GPU) Translator() *vm.Translator { return g.tr }

// mergeShards folds every core's statistics shard into the run's global
// sink and clears the shards (so repeated Runs never double-count). Every
// stats type merges commutatively and exactly, so the totals are
// byte-identical to what a single shared sink would have accumulated under
// serial ticking.
func (g *GPU) mergeShards() {
	for i, c := range g.cores {
		if g.Metrics != nil {
			g.collectCoreMetrics(i, c)
		}
		g.st.Merge(c.st)
		*c.st = stats.Sim{}
	}
	if g.Metrics != nil {
		g.collectSystemMetrics()
	}
}

// runState carries one launch's loop state between detailed segments, so
// Run can execute the whole launch in one runLoop call while RunSampled
// alternates bounded runLoop segments with functional fast-forward windows.
type runState struct {
	pool *corePool
	now  engine.Cycle
	done bool // all blocks dispatched and drained

	// Watchdog state: progressAt is the last cycle a thread block retired.
	watchRetired uint64
	progressAt   engine.Cycle
	nextProgress engine.Cycle
}

// advanceCursor steps the dispatch cursor over blocks fast-forward already
// executed, maintaining the invariant that nextBlock < Grid implies
// nextBlock is dispatchable. Called wherever the cursor moves; a no-op
// outside sampled runs.
func (g *GPU) advanceCursor() {
	if g.ffSkip == nil {
		return
	}
	for g.nextBlock < g.launch.Grid && g.ffSkip[g.nextBlock] {
		g.nextBlock++
	}
}

// beginRun validates the launch, resets and fills the cores, and starts the
// parallel tick pool. Every successful beginRun must be paired with a
// deferred endRun.
func (g *GPU) beginRun(l *kernels.Launch) (*runState, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	g.launch = l
	g.nextBlock = 0
	g.liveBlocks = 0
	g.retireBase = g.retired
	g.retireFirstAt, g.retireSteadyAt, g.retireWaveAt, g.retireLastAt = 0, 0, 0, 0
	g.retireWaves = 0
	g.retireCap = 0
	for _, c := range g.cores {
		c.reset()
		g.retireCap += uint64(c.capacityBlocks())
	}
	// Initial block dispatch.
	for _, c := range g.cores {
		c.fillBlocks()
	}

	rs := &runState{}
	if w := g.Workers; w > 1 {
		if w > len(g.cores) {
			w = len(g.cores)
		}
		if w > 1 {
			// The functional translator memoises walks in a shared map that
			// parallel compute phases read; walking the whole page table now
			// makes that cache read-only for the rest of the run.
			g.tr.Prewarm()
			rs.pool = newCorePool(g, w)
		}
	}

	if g.Sampler != nil {
		g.Sampler.Reset()
	}
	rs.watchRetired = g.retired
	rs.nextProgress = engine.Cycle(noEvent)
	if g.Progress != nil {
		rs.nextProgress = engine.Cycle(g.progressEvery())
	}
	return rs, nil
}

// endRun releases the tick pool and folds the per-core statistics shards
// into the global sink. Deferred by Run and RunSampled so shards merge even
// on aborted runs, exactly as the pre-refactor defers did.
func (g *GPU) endRun(rs *runState) {
	if rs.pool != nil {
		rs.pool.stop()
	}
	g.mergeShards()
}

// Run executes one kernel launch to completion and returns the total cycle
// count. It errs on invalid launches and on deadlock (which indicates a
// malformed kernel, e.g. a barrier inside divergent control flow).
//
// Each cycle runs in two phases: a compute phase in which every core with
// work does everything that touches only its private state (parallel across
// Workers goroutines when Workers > 1), and a serial commit phase applying
// each core's buffered shared-state work in ascending core-id order — the
// same order the shared structures observed under single-phase ticking, so
// simulation output is byte-identical for any Workers value.
func (g *GPU) Run(l *kernels.Launch) (uint64, error) {
	rs, err := g.beginRun(l)
	if err != nil {
		return 0, err
	}
	defer g.endRun(rs)
	if err := g.runLoop(rs, noEvent); err != nil {
		return uint64(rs.now), err
	}
	return uint64(rs.now), g.finishRun(rs)
}

// runLoop advances the detailed timing model until the launch drains or the
// clock reaches `until` (noEvent means run to completion). It is resumable:
// RunSampled calls it with successive bounds, fast-forwarding between calls.
// The stopping cycle is a pure function of simulation state, so segmented
// execution stays byte-identical for any Workers count.
func (g *GPU) runLoop(rs *runState, until engine.Cycle) error {
	l := g.launch
	pool := rs.pool
	watchRetired := rs.watchRetired
	progressAt := rs.progressAt
	nextProgress := rs.nextProgress
	now := rs.now
	defer func() {
		rs.watchRetired = watchRetired
		rs.progressAt = progressAt
		rs.nextProgress = nextProgress
		rs.now = now
	}()
	for g.liveBlocks > 0 || g.nextBlock < l.Grid {
		if now >= until {
			return nil
		}
		if g.MaxCycles != 0 && uint64(now) > g.MaxCycles {
			return g.abort(obs.ErrMaxCycles, now, fmt.Sprintf("MaxCycles=%d", g.MaxCycles))
		}
		// Compute phase: core-private work only.
		if pool != nil {
			pool.cycle(now)
		} else {
			for _, c := range g.cores {
				c.phaseCompute(now)
			}
		}
		// Commit phase: buffered shared-state work replayed in grouped
		// batches per subsystem — functional memory, translation (shared
		// TLB + walkers), the data path (icnt/L2/DRAM), block retirement,
		// trace flush — each batch in ascending core-id order. Grouping
		// keeps one subsystem's working set hot across all cores instead of
		// cycling every subsystem per core; the commit order is a pure
		// function of core ids, so output stays byte-identical for any
		// Workers count (ordering argument in DESIGN.md §14).
		g.commitCycle = now
		for _, c := range g.cores {
			if c.tkKind == tkTicked {
				c.commitFunc()
			}
		}
		for _, c := range g.cores {
			if c.tkKind == tkTicked {
				c.commitTranslate()
			}
		}
		for _, c := range g.cores {
			if c.tkKind == tkTicked {
				c.commitData()
			}
		}
		for _, c := range g.cores {
			if c.tkKind == tkTicked {
				c.commitRetire()
			}
		}
		if g.tracer != nil {
			for _, c := range g.cores {
				if c.tkKind == tkTicked {
					c.flushEvents()
				}
			}
		}
		// Sampling happens after commits: every core's cycle-now state is
		// settled, and nothing below mutates simulation state, so the row is
		// identical for any Workers count.
		if g.Sampler != nil && uint64(now) >= g.Sampler.NextAt() {
			g.sample(now)
		}
		// Aggregation: commits can retire blocks, so liveness and the next
		// event fold after them.
		next := noEvent
		anyLive := false
		for _, c := range g.cores {
			switch c.tkKind {
			case tkBlockless:
				c.pendingIdle = false
			case tkSkipped:
				anyLive = true
				c.pendingIdle = true
				if c.tkEv < next {
					next = c.tkEv
				}
			default: // tkTicked; the tick may have retired the core's last block.
				if len(c.blocks) > 0 {
					anyLive = true
					c.pendingIdle = !c.tkIssued
				} else {
					c.pendingIdle = false
				}
				if c.tkEv < next {
					next = c.tkEv
				}
			}
		}
		if !anyLive && g.nextBlock >= l.Grid && g.liveBlocks == 0 {
			break
		}
		if next == noEvent {
			return g.abort(obs.ErrDeadlock, now, fmt.Sprintf("%d live blocks", g.liveBlocks))
		}
		if g.WatchdogWindow != 0 {
			if g.retired != watchRetired {
				watchRetired = g.retired
				progressAt = now
			} else if uint64(now-progressAt) > g.WatchdogWindow {
				return g.abort(obs.ErrLivelock, now, fmt.Sprintf("window=%d last-progress=%d", g.WatchdogWindow, progressAt))
			}
		}
		if next <= now {
			next = now + 1
		}
		delta := uint64(next - now)
		for _, c := range g.cores {
			if len(c.blocks) > 0 {
				g.st.CoreCycles += delta
				if c.pendingIdle {
					g.st.IdleCycles.Add(delta)
				}
			}
		}
		if next>>14 != now>>14 {
			// Every ~16k cycles, drop contention bookkeeping for the past.
			g.sys.Prune(next)
			for _, c := range g.cores {
				c.l1Port.PruneBefore(next)
			}
			// The wall-clock guards piggyback on the same cadence so the hot
			// loop never touches the host clock or the context directly.
			if !g.Deadline.IsZero() && time.Now().After(g.Deadline) {
				return g.abort(obs.ErrDeadline, now, g.Deadline.Format(time.RFC3339))
			}
			if g.Ctx != nil {
				if err := g.Ctx.Err(); err != nil {
					return g.abort(err, now, "context cancelled")
				}
			}
			// The invariant checker shares the cadence too: commits have
			// settled, so it sees a consistent cycle-now snapshot.
			if g.Invariants {
				if err := g.checkInvariants(now); err != nil {
					return g.abort(obs.ErrInvariant, now, err.Error())
				}
			}
		}
		if g.Progress != nil && next >= nextProgress {
			g.Progress(obs.Progress{Cycle: uint64(now), Instructions: g.foldInstructions(), LiveBlocks: g.liveBlocks})
			nextProgress = next + engine.Cycle(g.progressEvery())
		}
		now = next
	}
	rs.done = true
	return nil
}

// finishRun runs the end-of-launch audits once the loop has drained: the
// final invariant check (short kernels may never reach a prune boundary,
// and end-of-run state — all blocks retired, TLBs still populated — must
// also be well-formed), the forced final sampler row (its cumulative
// columns equal the run's report), and the cycle total.
func (g *GPU) finishRun(rs *runState) error {
	now := rs.now
	if g.Invariants {
		if err := g.checkInvariants(now); err != nil {
			return g.abort(obs.ErrInvariant, now, err.Error())
		}
	}
	if g.Sampler != nil {
		g.sample(now)
	}
	g.st.Cycles = uint64(now)
	return nil
}
