package gpu

import (
	"fmt"

	"gpummu/internal/config"
	"gpummu/internal/engine"
)

// This file is the machine half of the debug-build invariant checker
// (DESIGN.md §12). When GPU.Invariants is set, Run audits the whole device on
// the prune cadence (~16k cycles) and once more at kernel completion; a
// violation aborts the run with obs.ErrInvariant. The checks run in the
// serial section after commits, so they see settled cycle-now state and are
// identical for any Workers count. They may allocate — correctness tooling is
// exempt from the zero-alloc budget, which only binds when the checker is off.

// checkInvariants audits every core (SIMT state + MMU), the shared TLB, and
// the sliced L2 at cycle now.
func (g *GPU) checkInvariants(now engine.Cycle) error {
	for _, c := range g.cores {
		if err := c.checkInvariants(now); err != nil {
			return fmt.Errorf("core %d: %w", c.id, err)
		}
	}
	if g.shared != nil {
		if err := g.shared.CheckInvariants(g.tr); err != nil {
			return err
		}
	}
	return g.sys.CheckInvariants()
}

// checkInvariants audits one core: per-block thread accounting, barrier
// bookkeeping, SIMT stack / TBC warp well-formedness, exclusive thread
// ownership, and the MMU's TLB-vs-page-table and MSHR consistency.
func (c *Core) checkInvariants(now engine.Cycle) error {
	progLen := int32(len(c.g.launch.Program.Code))
	for _, b := range c.blocks {
		if err := c.checkBlock(b, progLen); err != nil {
			return fmt.Errorf("block %d: %w", b.id, err)
		}
	}
	// MSHR exhaustion delays a walk's start rather than stalling its warp, so
	// one batch of misses from every translating warp can be in flight beyond
	// the configured registers; that batch is structurally capped by the
	// core's warp slots times the pages a warp instruction can touch.
	slack := c.g.cfg.WarpsPerCore * c.g.cfg.WarpWidth
	return c.mmu.CheckInvariants(now, slack)
}

func (c *Core) checkBlock(b *Block, progLen int32) error {
	live := 0
	for i := range b.threads {
		if !b.threads[i].exited {
			live++
		}
	}
	if live != b.liveThreads {
		return fmt.Errorf("liveThreads=%d but %d threads have not exited", b.liveThreads, live)
	}

	stackMode := c.g.cfg.TBC.Mode == config.DivStack
	barrierWarps := 0
	// owner[tid] is the index of the live warp whose lanes hold the thread;
	// a thread appearing in two live warps would execute twice.
	owner := make(map[int32]int)
	for wi, w := range b.warps {
		if w.state == WBarrier {
			barrierWarps++
		}
		if err := checkWarpShape(b, w, progLen, stackMode); err != nil {
			return fmt.Errorf("warp %d (slot %d): %w", wi, w.slot, err)
		}
		if w.state == WDone {
			continue
		}
		for _, lanes := range warpLaneSets(w, stackMode) {
			for _, tid := range lanes {
				if tid == noLane {
					continue
				}
				if prev, dup := owner[tid]; dup && prev != wi {
					return fmt.Errorf("thread %d active in warps %d and %d", tid, prev, wi)
				}
				owner[tid] = wi
			}
		}
	}
	if stackMode {
		if barrierWarps != b.barrierCount {
			return fmt.Errorf("barrierCount=%d but %d warps are in WBarrier", b.barrierCount, barrierWarps)
		}
	} else if b.barrierCount < 0 || b.barrierCount > b.liveWarpCount() {
		return fmt.Errorf("barrierCount=%d outside [0, %d live warps]", b.barrierCount, b.liveWarpCount())
	}
	return nil
}

// warpLaneSets returns every lane set the warp still references: all stack
// entries in stack mode (a thread parked in a deeper entry is still owned by
// this warp), the flat assignment under TBC.
func warpLaneSets(w *Warp, stackMode bool) [][]int32 {
	if !stackMode || w.stack == nil {
		return [][]int32{w.lanes}
	}
	sets := make([][]int32, len(w.stack))
	for i := range w.stack {
		sets[i] = w.stack[i].lanes
	}
	return sets
}

// checkWarpShape verifies one warp's structural well-formedness: state vs
// stack emptiness, pc/rpc ranges, and lane contents (valid thread ids, no
// duplicates within an execution context, no exited threads).
func checkWarpShape(b *Block, w *Warp, progLen int32, stackMode bool) error {
	if stackMode {
		if (w.state == WDone) != (len(w.stack) == 0) {
			return fmt.Errorf("state %d with %d stack entries", w.state, len(w.stack))
		}
		for ei := range w.stack {
			e := &w.stack[ei]
			if e.pc < 0 || e.pc > progLen {
				return fmt.Errorf("stack[%d] pc %d outside [0, %d]", ei, e.pc, progLen)
			}
			if e.rpc < -1 || e.rpc > progLen {
				return fmt.Errorf("stack[%d] rpc %d outside [-1, %d]", ei, e.rpc, progLen)
			}
			if err := checkLanes(b, e.lanes); err != nil {
				return fmt.Errorf("stack[%d]: %w", ei, err)
			}
		}
	} else {
		if w.pc < 0 || w.pc > progLen {
			return fmt.Errorf("pc %d outside [0, %d]", w.pc, progLen)
		}
		if err := checkLanes(b, w.lanes); err != nil {
			return err
		}
	}
	if w.state == WReady && w.curPC() >= progLen {
		return fmt.Errorf("ready at pc %d past program end %d", w.curPC(), progLen)
	}
	return nil
}

func checkLanes(b *Block, lanes []int32) error {
	seen := make(map[int32]bool, len(lanes))
	for li, tid := range lanes {
		if tid == noLane {
			continue
		}
		if tid < 0 || int(tid) >= len(b.threads) {
			return fmt.Errorf("lane %d holds invalid thread id %d", li, tid)
		}
		if b.threads[tid].exited {
			return fmt.Errorf("lane %d holds exited thread %d", li, tid)
		}
		if seen[tid] {
			return fmt.Errorf("thread %d appears twice in one lane set", tid)
		}
		seen[tid] = true
	}
	return nil
}
