package gpu

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"gpummu/internal/config"
	"gpummu/internal/kernels"
	"gpummu/internal/obs"
	"gpummu/internal/stats"
	"gpummu/internal/workloads"
)

// traceRun runs the tiny bfs workload with a Chrome tracer and sampler
// attached under the given worker count, returning the raw trace bytes and
// the run's statistics.
func traceRun(t *testing.T, workers int) ([]byte, *stats.Sim) {
	t.Helper()
	cfg := config.SmallTest()
	cfg.MMU = config.AugmentedMMU()
	w, err := workloads.Build("bfs", workloads.SizeTiny, cfg.PageShift, 7)
	if err != nil {
		t.Fatal(err)
	}
	st := &stats.Sim{}
	g, err := New(cfg, w.AS, st)
	if err != nil {
		t.Fatal(err)
	}
	g.MaxCycles = 50_000_000
	g.Workers = workers
	g.Sampler = obs.NewSampler(100, 0)
	var buf bytes.Buffer
	ct := NewChromeTracer(&buf, cfg.NumCores)
	g.SetTracer(ct)
	if _, err := g.Run(w.Launch); err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	if err := ct.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Check(); err != nil {
		t.Fatalf("workers=%d functional check: %v", workers, err)
	}
	return buf.Bytes(), st
}

// TestChromeTraceGoldenAcrossPar pins the determinism contract of the
// tracing path: the same workload produces byte-identical, schema-valid
// Chrome trace JSON for any -par worker count.
func TestChromeTraceGoldenAcrossPar(t *testing.T) {
	golden, _ := traceRun(t, 1)

	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Pid  *int    `json:"pid"`
			Tid  *int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(golden, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	kinds := map[string]int{}
	for i, e := range doc.TraceEvents {
		if e.Name == "" || e.Ph == "" || e.Pid == nil || e.Tid == nil {
			t.Fatalf("event %d missing required fields: %+v", i, e)
		}
		kinds[e.Ph]++
	}
	for _, ph := range []string{"M", "i", "X", "C"} {
		if kinds[ph] == 0 {
			t.Fatalf("trace has no %q events (got %v)", ph, kinds)
		}
	}

	for _, workers := range []int{2, 8} {
		got, _ := traceRun(t, workers)
		if !bytes.Equal(golden, got) {
			t.Fatalf("trace bytes differ between workers=1 (%d bytes) and workers=%d (%d bytes)",
				len(golden), workers, len(got))
		}
	}
}

// TestSamplerFinalRowMatchesReport checks the forced end-of-run sample:
// its cumulative columns must equal the merged end-of-run statistics.
func TestSamplerFinalRowMatchesReport(t *testing.T) {
	_, st := func() (*obs.Sampler, *stats.Sim) {
		cfg := config.SmallTest()
		cfg.MMU = config.AugmentedMMU()
		w, err := workloads.Build("bfs", workloads.SizeTiny, cfg.PageShift, 7)
		if err != nil {
			t.Fatal(err)
		}
		st := &stats.Sim{}
		g, err := New(cfg, w.AS, st)
		if err != nil {
			t.Fatal(err)
		}
		g.MaxCycles = 50_000_000
		g.Sampler = obs.NewSampler(100, 0)
		if _, err := g.Run(w.Launch); err != nil {
			t.Fatal(err)
		}
		last, ok := g.Sampler.Last()
		if !ok {
			t.Fatal("sampler recorded nothing")
		}
		for _, c := range [...]struct {
			name string
			got  uint64
			want uint64
		}{
			{"cycle", last.Cycle, st.Cycles},
			{"instructions", last.Instructions, st.Instructions.Value()},
			{"memInstrs", last.MemInstrs, st.MemInstrs.Value()},
			{"tlbAccesses", last.TLBAccesses, st.TLBAccesses.Value()},
			{"tlbMisses", last.TLBMisses, st.TLBMisses.Value()},
			{"l1Accesses", last.L1Accesses, st.L1Accesses.Value()},
			{"l2Accesses", last.L2Accesses, st.L2Accesses.Value()},
			{"walks", last.Walks, st.Walks.Value()},
		} {
			if c.got != c.want {
				t.Errorf("final sample %s = %d, report says %d", c.name, c.got, c.want)
			}
		}
		if last.LiveBlocks != 0 || last.ActiveWarps != 0 {
			t.Errorf("final sample still has live work: %+v", last)
		}
		if g.Sampler.Total() < 2 {
			t.Errorf("expected multiple samples, got %d", g.Sampler.Total())
		}
		return g.Sampler, st
	}()
	_ = st
}

// TestMetricsRegistryExactAcrossPar checks that the labelled registry's
// per-core breakdown sums to the flat report and is identical for serial
// and parallel runs.
func TestMetricsRegistryExactAcrossPar(t *testing.T) {
	run := func(workers int) (*obs.Registry, *stats.Sim) {
		cfg := config.SmallTest()
		cfg.MMU = config.AugmentedMMU()
		w, err := workloads.Build("kmeans", workloads.SizeTiny, cfg.PageShift, 7)
		if err != nil {
			t.Fatal(err)
		}
		st := &stats.Sim{}
		g, err := New(cfg, w.AS, st)
		if err != nil {
			t.Fatal(err)
		}
		g.MaxCycles = 50_000_000
		g.Workers = workers
		g.Metrics = obs.NewRegistry()
		if _, err := g.Run(w.Launch); err != nil {
			t.Fatal(err)
		}
		return g.Metrics, st
	}
	reg, st := run(1)
	cfg := config.SmallTest()
	var perCore, perWalker uint64
	for i := 0; i < cfg.NumCores; i++ {
		if m, ok := reg.Lookup(obs.Name("core.instructions", obs.LabelInt("core", i))); ok {
			perCore += m.Value()
		}
		for wi := 0; ; wi++ {
			m, ok := reg.Lookup(obs.Name("walker.walks", obs.LabelInt("core", i), obs.LabelInt("walker", wi)))
			if !ok {
				break
			}
			perWalker += m.Value()
		}
	}
	if perCore != st.Instructions.Value() {
		t.Errorf("per-core instructions sum %d != report %d", perCore, st.Instructions.Value())
	}
	if perWalker != st.Walks.Value() {
		t.Errorf("per-walker walks sum %d != report %d", perWalker, st.Walks.Value())
	}

	regPar, _ := run(4)
	var a, b strings.Builder
	if err := reg.WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := regPar.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("registry dump differs between workers=1 and workers=4:\n%s---\n%s", a.String(), b.String())
	}
}

// spinLaunch builds a kernel that loops forever — runnable every cycle, so
// it is a livelock (not a deadlock) and only the watchdog can catch it.
func spinLaunch(t *testing.T) *kernels.Launch {
	t.Helper()
	b := kernels.NewBuilder("spin")
	b.Label("top")
	b.Jmp("top")
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return &kernels.Launch{Program: prog, Grid: 1, BlockDim: 32}
}

// TestWatchdogCatchesLivelock runs a deliberately livelocked kernel and
// asserts the typed abort with its diagnostic dump.
func TestWatchdogCatchesLivelock(t *testing.T) {
	g, _, _ := buildGPU(t, config.SmallTest())
	g.WatchdogWindow = 50_000
	_, err := g.Run(spinLaunch(t))
	if err == nil {
		t.Fatal("livelocked kernel finished?!")
	}
	if !errors.Is(err, obs.ErrLivelock) {
		t.Fatalf("error is not ErrLivelock: %v", err)
	}
	var ae *obs.AbortError
	if !errors.As(err, &ae) {
		t.Fatalf("error is not an AbortError: %v", err)
	}
	if ae.Cycle < 50_000 {
		t.Errorf("aborted before the window elapsed: cycle %d", ae.Cycle)
	}
	if !strings.Contains(ae.Dump, "core 0") || !strings.Contains(ae.Dump, "block 0") {
		t.Errorf("dump missing core/warp state:\n%s", ae.Dump)
	}
	if !strings.Contains(err.Error(), "window=50000") {
		t.Errorf("message missing watchdog context: %v", err)
	}
}

// TestMaxCyclesTypedError checks the cycle-budget guard produces the typed
// sentinel instead of a bare formatted error.
func TestMaxCyclesTypedError(t *testing.T) {
	g, _, _ := buildGPU(t, config.SmallTest())
	g.MaxCycles = 10_000
	_, err := g.Run(spinLaunch(t))
	if !errors.Is(err, obs.ErrMaxCycles) {
		t.Fatalf("error is not ErrMaxCycles: %v", err)
	}
}

// TestDeadlineAborts checks the wall-clock deadline fires on the prune
// cadence with the typed sentinel.
func TestDeadlineAborts(t *testing.T) {
	g, _, _ := buildGPU(t, config.SmallTest())
	g.Deadline = time.Now().Add(-time.Second)
	_, err := g.Run(spinLaunch(t))
	if !errors.Is(err, obs.ErrDeadline) {
		t.Fatalf("error is not ErrDeadline: %v", err)
	}
}

// TestContextCancelAborts checks a cancelled context stops the run with the
// context's error as the abort cause.
func TestContextCancelAborts(t *testing.T) {
	g, _, _ := buildGPU(t, config.SmallTest())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g.Ctx = ctx
	_, err := g.Run(spinLaunch(t))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error is not context.Canceled: %v", err)
	}
	var ae *obs.AbortError
	if !errors.As(err, &ae) || ae.Dump == "" {
		t.Fatalf("cancellation lost its diagnostic dump: %v", err)
	}
}

// TestProgressCallback checks the periodic progress hook fires with
// monotonic cycles.
func TestProgressCallback(t *testing.T) {
	g, _, _ := buildGPU(t, config.SmallTest())
	g.MaxCycles = 300_000
	g.ProgressEvery = 1 << 14
	var calls []obs.Progress
	g.Progress = func(p obs.Progress) { calls = append(calls, p) }
	_, err := g.Run(spinLaunch(t))
	if !errors.Is(err, obs.ErrMaxCycles) {
		t.Fatalf("unexpected end: %v", err)
	}
	if len(calls) < 2 {
		t.Fatalf("progress fired %d times over 300k cycles at 16k cadence", len(calls))
	}
	for i := 1; i < len(calls); i++ {
		if calls[i].Cycle <= calls[i-1].Cycle {
			t.Fatalf("progress cycles not monotonic: %v", calls)
		}
		if calls[i].Instructions < calls[i-1].Instructions {
			t.Fatalf("progress instructions regressed: %v", calls)
		}
	}
}
