package gpu

import (
	"sort"

	"gpummu/internal/config"
	"gpummu/internal/core"
	"gpummu/internal/engine"
	"gpummu/internal/mem"
)

// sched holds per-core warp scheduling state for every policy. The CCWS
// family (paper section 7) keeps per-warp-slot victim tag arrays and
// lost-locality scores; the scheduler restricts the issue pool to the
// top-scoring warps whenever the score sum exceeds the cutoff.
type sched struct {
	c   *Core
	cfg config.Scheduler

	scores []int
	vtas   []*core.VTA
	sum    int

	lastDecay  engine.Cycle
	orderBuf   []*Warp
	rankBuf    []int
	restricted bool
	allowed    []bool
	dirty      bool
}

func newSched(c *Core) *sched {
	s := &sched{c: c, cfg: c.g.cfg.Sched}
	n := c.g.cfg.WarpsPerCore
	s.scores = make([]int, n)
	s.allowed = make([]bool, n)
	if s.ccwsFamily() {
		s.vtas = make([]*core.VTA, n)
		for i := range s.vtas {
			s.vtas[i] = core.NewVTA(s.cfg.VTAEntriesPerWarp, s.cfg.VTAAssoc)
		}
	}
	if s.cfg.Policy == config.SchedTCWS && c.mmu.TLB() != nil {
		// TCWS replaces cache-line VTAs with page-granular ones filled
		// from TLB evictions (paper figure 15).
		c.mmu.TLB().SetOnEvict(func(vpn uint64, allocWarp int) {
			if allocWarp >= 0 && allocWarp < len(s.vtas) {
				s.vtas[allocWarp].Insert(vpn)
			}
		})
	}
	return s
}

func (s *sched) ccwsFamily() bool {
	switch s.cfg.Policy {
	case config.SchedCCWS, config.SchedTACCWS, config.SchedTCWS:
		return true
	}
	return false
}

func (s *sched) reset() {
	for i := range s.scores {
		s.scores[i] = 0
	}
	s.sum = 0
	s.restricted = false
	s.dirty = true
	for _, v := range s.vtas {
		v.Clear()
	}
}

func (s *sched) bump(slot, w int) {
	if slot < 0 || slot >= len(s.scores) || w == 0 {
		return
	}
	s.scores[slot] += w
	s.sum += w
	s.dirty = true
}

// onL1Miss is called for every L1 data miss; under CCWS and TA-CCWS it
// probes the warp's victim tag array and scores lost locality, weighting
// misses accompanied by TLB misses by TLBMissWeight under TA-CCWS.
func (s *sched) onL1Miss(slot int, lineTag uint64, withTLBMiss bool) {
	switch s.cfg.Policy {
	case config.SchedCCWS, config.SchedTACCWS:
	default:
		return
	}
	if slot < 0 || slot >= len(s.vtas) {
		return
	}
	if !s.vtas[slot].Probe(lineTag) {
		return
	}
	s.c.st.VTAHits.Inc()
	w := 1
	if s.cfg.Policy == config.SchedTACCWS && withTLBMiss && s.cfg.TLBMissWeight > 1 {
		w = s.cfg.TLBMissWeight
	}
	s.bump(slot, w)
}

// onL1Evict records a displaced line into the allocating warp's VTA.
func (s *sched) onL1Evict(ev mem.Eviction) {
	switch s.cfg.Policy {
	case config.SchedCCWS, config.SchedTACCWS:
	default:
		return
	}
	if ev.AllocWarp >= 0 && ev.AllocWarp < len(s.vtas) {
		s.vtas[ev.AllocWarp].Insert(ev.Tag)
	}
}

// onTLBMiss probes the page-granular VTA under TCWS.
func (s *sched) onTLBMiss(slot int, vpn uint64) {
	if s.cfg.Policy != config.SchedTCWS {
		return
	}
	if slot < 0 || slot >= len(s.vtas) {
		return
	}
	if !s.vtas[slot].Probe(vpn) {
		return
	}
	s.c.st.VTAHits.Inc()
	w := s.cfg.TLBMissWeight
	if w < 1 {
		w = 1
	}
	s.bump(slot, w)
}

// onTLBHit updates TCWS scores by the LRU depth of the hit: deeper hits
// mean the PTE was close to eviction, so the warp's locality is at risk
// (paper section 7.2).
func (s *sched) onTLBHit(slot, lruDepth int) {
	if s.cfg.Policy != config.SchedTCWS || len(s.cfg.LRUDepthWeights) == 0 {
		return
	}
	if lruDepth >= len(s.cfg.LRUDepthWeights) {
		lruDepth = len(s.cfg.LRUDepthWeights) - 1
	}
	if lruDepth < 0 {
		return
	}
	s.bump(slot, s.cfg.LRUDepthWeights[lruDepth])
}

// decay halves all scores periodically so throttling releases when
// locality recovers.
func (s *sched) decay(now engine.Cycle) {
	if s.cfg.DecayPeriod <= 0 || now-s.lastDecay < engine.Cycle(s.cfg.DecayPeriod) {
		return
	}
	s.lastDecay = now
	s.sum = 0
	for i := range s.scores {
		s.scores[i] /= 2
		s.sum += s.scores[i]
	}
	s.dirty = true
}

// recompute refreshes the restricted issue pool.
func (s *sched) recompute() {
	if !s.dirty {
		return
	}
	s.dirty = false
	s.restricted = s.sum > s.cfg.LLSCutoff
	if !s.restricted {
		return
	}
	// Allow only the ActivePool highest-scoring warps.
	if cap(s.rankBuf) < len(s.scores) {
		s.rankBuf = make([]int, len(s.scores))
	}
	rank := s.rankBuf[:len(s.scores)]
	for i := range rank {
		rank[i] = i
	}
	sort.SliceStable(rank, func(a, b int) bool { return s.scores[rank[a]] > s.scores[rank[b]] })
	for i := range s.allowed {
		s.allowed[i] = false
	}
	pool := s.cfg.ActivePool
	if pool < 1 {
		pool = 1
	}
	for i := 0; i < pool && i < len(rank); i++ {
		s.allowed[rank[i]] = true
	}
	s.c.st.SchedThrottles.Inc()
}

// order returns the candidate warps in issue order for this cycle.
func (s *sched) order(now engine.Cycle, warps []*Warp) []*Warp {
	if s.ccwsFamily() {
		s.decay(now)
		s.recompute()
	}
	out := s.orderBuf[:0]

	if s.ccwsFamily() && s.restricted {
		any := false
		for _, w := range warps {
			if w.slot < len(s.allowed) && s.allowed[w.slot] && w.state == WReady && w.readyAt <= now {
				any = true
				break
			}
		}
		if any {
			for _, w := range warps {
				if w.slot < len(s.allowed) && s.allowed[w.slot] {
					out = append(out, w)
				}
			}
			s.orderBuf = out
			return out
		}
		// No allowed warp can issue: fall through to the full pool so the
		// core is never idled by stale scores.
	}

	switch s.cfg.Policy {
	case config.SchedGTO:
		if li := s.c.lastIssued; li != nil && li.state == WReady {
			out = append(out, li)
		}
		for _, w := range warps {
			if w != s.c.lastIssued {
				out = append(out, w)
			}
		}
	default: // LRR and the CCWS family's underlying rotation
		start := s.c.rrPtr % max(len(warps), 1)
		out = append(out, warps[start:]...)
		out = append(out, warps[:start]...)
	}
	s.orderBuf = out
	return out
}

// afterIssue advances the round-robin pointer.
func (s *sched) afterIssue() { s.c.rrPtr++ }
