package gpu

import (
	"fmt"
	"strconv"
	"strings"

	"gpummu/internal/engine"
	"gpummu/internal/kernels"
	"gpummu/internal/ref"
	"gpummu/internal/stats"
)

// This file implements SMARTS-style interval sampling: RunSampled
// alternates detailed timing windows (the ordinary two-phase tick loop,
// including -par) with fast-forward windows that execute not-yet-dispatched
// thread blocks functionally through internal/ref's block interpreter.
//
// Fast-forward operates at thread-block granularity, which is what makes it
// exact for architectural state: block dispatch is a clean functional
// boundary (a block that has not been dispatched has no timing state at
// all), and the workload kernels are communication-free (loads from
// read-only data, stores to thread-exclusive slots — DESIGN.md §12), so
// executing whole blocks out of order yields the same final memory image
// and identical MemDigest/PageTableDigest as a full detailed run. Blocks
// already resident on cores always finish detailed; fast-forward only
// consumes from the undispatched tail of the grid.

// ffMaxStepsPerThread bounds each functionally executed thread so a
// malformed kernel errors out instead of spinning (mirrors the detailed
// machine's MaxCycles guard).
const ffMaxStepsPerThread = 1 << 31

// SamplePlan configures interval sampling for RunSampled. Each interval is
// Warmup detailed-but-unmeasured cycles (draining cold-start transients out
// of the TLBs, caches, and in-flight machine state), then Detail measured
// cycles, then a fast-forward window that functionally executes the number
// of thread blocks the timing model would have retired in FastForward
// cycles at the measured retire rate. The zero value disables sampling.
//
// WarmTLB additionally replays the pages each fast-forward window touched
// into the TLB hierarchy. It is off by default because plans with adequate
// Warmup re-warm the TLBs organically, and the injected fills measurably
// hurt accuracy on shared-read-heavy workloads (see DESIGN.md §15): bulk
// fills pre-install shared pages the resident blocks are about to touch,
// leaking free hits into the measured windows.
type SamplePlan struct {
	Warmup      uint64
	Detail      uint64
	FastForward uint64
	WarmTLB     bool
}

// Enabled reports whether the plan requests sampling at all.
func (p SamplePlan) Enabled() bool {
	return p.Warmup != 0 || p.Detail != 0 || p.FastForward != 0
}

// Validate checks an enabled plan: measurement and fast-forward must both
// be non-empty (a plan with no detail cycles has nothing to extrapolate
// from; one with no fast-forward is just a slower exact run).
func (p SamplePlan) Validate() error {
	if !p.Enabled() {
		return nil
	}
	if p.Detail == 0 {
		return fmt.Errorf("gpu: sample plan needs detail > 0 (got %s)", p)
	}
	if p.FastForward == 0 {
		return fmt.Errorf("gpu: sample plan needs fastforward > 0 (got %s)", p)
	}
	return nil
}

// String renders the plan in the CLI flag form "warmup,detail,fastforward"
// with an optional ",warm" suffix.
func (p SamplePlan) String() string {
	s := fmt.Sprintf("%d,%d,%d", p.Warmup, p.Detail, p.FastForward)
	if p.WarmTLB {
		s += ",warm"
	}
	return s
}

// ParseSamplePlan parses "warmup,detail,fastforward[,warm]" (the
// -sampleplan flag).
func ParseSamplePlan(s string) (SamplePlan, error) {
	parts := strings.Split(s, ",")
	var p SamplePlan
	if len(parts) == 4 && strings.TrimSpace(parts[3]) == "warm" {
		p.WarmTLB = true
		parts = parts[:3]
	}
	if len(parts) != 3 {
		return SamplePlan{}, fmt.Errorf("gpu: sample plan %q: want warmup,detail,fastforward[,warm]", s)
	}
	var vals [3]uint64
	for i, part := range parts {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return SamplePlan{}, fmt.Errorf("gpu: sample plan %q: %w", s, err)
		}
		vals[i] = v
	}
	p.Warmup, p.Detail, p.FastForward = vals[0], vals[1], vals[2]
	if err := p.Validate(); err != nil {
		return SamplePlan{}, err
	}
	return p, nil
}

// windowCounters is a snapshot of the counters the sampled metrics need,
// folded across the global sink and every core shard (shards merge only at
// run end, so mid-run totals need both). Reads happen between detailed
// segments, when no compute phase is in flight, so the fold is exact.
type windowCounters struct {
	instructions  uint64
	tlbAccesses   uint64
	tlbMisses     uint64
	walks         uint64
	walkLatEvents uint64
	walkLatTotal  uint64
	blocksRetired uint64
}

func (g *GPU) foldWindow() windowCounters {
	w := windowCounters{
		instructions:  g.st.Instructions.Value(),
		tlbAccesses:   g.st.TLBAccesses.Value(),
		tlbMisses:     g.st.TLBMisses.Value(),
		walks:         g.st.Walks.Value(),
		walkLatEvents: g.st.WalkLat.Events,
		walkLatTotal:  g.st.WalkLat.Total,
		blocksRetired: g.retired,
	}
	for _, c := range g.cores {
		w.instructions += c.st.Instructions.Value()
		w.tlbAccesses += c.st.TLBAccesses.Value()
		w.tlbMisses += c.st.TLBMisses.Value()
		w.walks += c.st.Walks.Value()
		w.walkLatEvents += c.st.WalkLat.Events
		w.walkLatTotal += c.st.WalkLat.Total
	}
	return w
}

// delta turns two snapshots into one measured Interval.
func intervalDelta(start engine.Cycle, cycles uint64, before, after windowCounters) stats.Interval {
	return stats.Interval{
		Start:         uint64(start),
		Cycles:        cycles,
		Instructions:  after.instructions - before.instructions,
		TLBAccesses:   after.tlbAccesses - before.tlbAccesses,
		TLBMisses:     after.tlbMisses - before.tlbMisses,
		Walks:         after.walks - before.walks,
		WalkLatEvents: after.walkLatEvents - before.walkLatEvents,
		WalkLatTotal:  after.walkLatTotal - before.walkLatTotal,
		Blocks:        after.blocksRetired - before.blocksRetired,
	}
}

// warmTranslations models the TLB residency a fast-forward window leaves
// behind: every distinct page the skipped blocks touched is installed,
// stat-free and port-free, into the shared second-tier TLB (when present)
// and into one per-core TLB round-robin by touch order — approximating how
// the skipped blocks would have spread across cores. Touch order is a pure
// function of block ids and thread order, so the fills (and the evictions
// they cause) are deterministic for any host parallelism.
func (g *GPU) warmTranslations(now engine.Cycle, touched []ref.Touch) {
	for i, t := range touched {
		if g.shared != nil {
			g.shared.Fill(now, t.VPN, t.PBase)
		}
		g.cores[i%len(g.cores)].mmu.WarmFill(now, t.VPN, t.PBase)
	}
}

// RunSampled executes one kernel launch under the given sampling plan and
// returns the detailed cycle count plus the per-interval measurements with
// extrapolated totals. Architectural state at completion — memory image,
// page tables — is identical to a full Run of the same launch; timing
// statistics (the Sim sink) cover only the detailed windows, with whole-run
// estimates and 95% confidence intervals in the returned stats.Sampled.
//
// The fast-forward block budget per window is round(rate·FastForward),
// where rate is the steady-state retire slope: blocks per cycle measured
// from the first retire after a full residency turnover (the co-scheduled
// first wave retires in a burst that says nothing about throughput).
// Until that slope exists the budget is zero, so a plan too fine to
// observe progress degrades to an exact (slow but correct) run rather
// than guessing.
func (g *GPU) RunSampled(l *kernels.Launch, plan SamplePlan) (uint64, *stats.Sampled, error) {
	if !plan.Enabled() {
		return 0, nil, fmt.Errorf("gpu: RunSampled needs a non-zero plan")
	}
	if err := plan.Validate(); err != nil {
		return 0, nil, err
	}
	rs, err := g.beginRun(l)
	if err != nil {
		return 0, nil, err
	}
	defer g.endRun(rs)
	g.ffSkip = make([]bool, l.Grid)
	defer func() { g.ffSkip = nil }()

	bi, err := ref.NewBlockInterp(g.as, l, g.cfg.WarpWidth, g.as.PageShift())
	if err != nil {
		return 0, nil, err
	}
	if !plan.WarmTLB {
		bi.DisableTouch()
	}
	smp := &stats.Sampled{
		Warmup:      plan.Warmup,
		Detail:      plan.Detail,
		FastForward: plan.FastForward,
		TotalBlocks: uint64(l.Grid),
	}
	// steadySpan reports the steady-state retire slope observed so far:
	// whole residency turnovers between wave-phase-aligned retire
	// boundaries (see the retire-span fields on GPU). Zero until at least
	// one full turnover beyond the first wave has completed — co-scheduled
	// blocks retire in bursts, so any sub-turnover rate is meaningless.
	steadySpan := func() (cycles, blocks uint64) {
		if g.retireWaves == 0 || g.retireWaveAt <= g.retireSteadyAt {
			return 0, 0
		}
		return uint64(g.retireWaveAt - g.retireSteadyAt), g.retireWaves * g.retireCap
	}
	for !rs.done {
		if plan.Warmup > 0 {
			if err := g.runLoop(rs, rs.now+engine.Cycle(plan.Warmup)); err != nil {
				return uint64(rs.now), nil, err
			}
			if rs.done {
				break
			}
		}
		start := rs.now
		before := g.foldWindow()
		if err := g.runLoop(rs, rs.now+engine.Cycle(plan.Detail)); err != nil {
			return uint64(rs.now), nil, err
		}
		after := g.foldWindow()
		iv := intervalDelta(start, uint64(rs.now-start), before, after)

		spanC, spanB := steadySpan()
		if !rs.done && g.nextBlock < l.Grid && spanB > 0 {
			k := int((spanB*plan.FastForward + spanC/2) / spanC)
			// Collect the undispatched pool and skip a centred systematic
			// sample of it — every (n/k)-th block, not the front of the
			// tail — so the blocks left to run detailed stay an unbiased
			// sample of the grid when per-block cost varies with block id.
			var pool []int
			for id := g.nextBlock; id < l.Grid; id++ {
				if !g.ffSkip[id] {
					pool = append(pool, id)
				}
			}
			if g.retireWaves < 3 {
				// Until a few turnovers have been measured, hold back two
				// turnovers' worth of blocks so refills keep the machine at
				// full occupancy and the marginal-rate measurement keeps
				// accumulating waves.
				if reserve := 2 * int(g.retireCap); k > len(pool)-reserve {
					k = len(pool) - reserve
				}
			}
			if k > len(pool) {
				k = len(pool)
			}
			for i := 0; i < k; i++ {
				id := pool[(2*i+1)*len(pool)/(2*k)]
				steps, err := bi.ExecuteBlock(id, ffMaxStepsPerThread)
				if err != nil {
					return uint64(rs.now), nil, fmt.Errorf("gpu: fast-forward block %d: %w", id, err)
				}
				g.ffSkip[id] = true
				iv.FFBlocks++
				iv.FFInstructions += steps
			}
			g.advanceCursor()
			if plan.WarmTLB {
				g.warmTranslations(rs.now, bi.DrainTouched())
			}
			smp.FFBlocks += iv.FFBlocks
			smp.FFInstructions += iv.FFInstructions
		}
		smp.Intervals = append(smp.Intervals, iv)
		if smp.RetireSpanBlocks == 0 && g.nextBlock >= l.Grid {
			// The dispatch pool just went dry: from here occupancy only
			// declines, blocks finish with less contention, and the retire
			// rate stops being representative of the full machine. Freeze
			// the marginal-rate measurement at this full-occupancy sub-span;
			// the drain that follows is paid once in DetailCycles, exactly
			// as an exact run pays its own drain once.
			smp.RetireSpanCycles, smp.RetireSpanBlocks = steadySpan()
		}
	}
	if err := g.finishRun(rs); err != nil {
		return uint64(rs.now), nil, err
	}
	smp.DetailCycles = uint64(rs.now)
	smp.DetailInstructions = g.foldWindow().instructions
	if smp.RetireSpanBlocks == 0 {
		// The steady slope never matured before the pool went dry (tiny
		// grids, or a run that never fast-forwarded): take whatever
		// post-first-wave slope exists now, drain included.
		smp.RetireSpanCycles, smp.RetireSpanBlocks = steadySpan()
	}
	return uint64(rs.now), smp, nil
}
