package gpu

import (
	"testing"

	"gpummu/internal/config"
	"gpummu/internal/stats"
	"gpummu/internal/workloads"
)

// runWith builds the workload fresh and runs it under cfg, failing the test
// on any error. It returns the statistics.
func runWith(t *testing.T, name string, cfg config.Hardware) *stats.Sim {
	t.Helper()
	w, err := workloads.Build(name, workloads.SizeTiny, cfg.PageShift, 7)
	if err != nil {
		t.Fatal(err)
	}
	st := &stats.Sim{}
	g, err := New(cfg, w.AS, st)
	if err != nil {
		t.Fatal(err)
	}
	g.MaxCycles = 50_000_000
	if _, err := g.Run(w.Launch); err != nil {
		t.Fatalf("%s under %v/%v/%v: %v", name, cfg.Sched.Policy, cfg.TBC.Mode, cfg.MMU.Enabled, err)
	}
	if w.Check != nil {
		if err := w.Check(); err != nil {
			t.Fatalf("%s functional check: %v", name, err)
		}
	}
	return st
}

// TestSchedulerPolicyMatrix runs a divergent and a regular workload under
// every scheduler policy with the augmented MMU, verifying functional
// correctness is independent of scheduling.
func TestSchedulerPolicyMatrix(t *testing.T) {
	policies := []config.SchedulerPolicy{
		config.SchedLRR, config.SchedGTO, config.SchedCCWS, config.SchedTACCWS, config.SchedTCWS,
	}
	for _, name := range []string{"bfs", "kmeans"} {
		for _, p := range policies {
			cfg := config.SmallTest()
			cfg.MMU = config.AugmentedMMU()
			cfg.Sched.Policy = p
			if p == config.SchedTACCWS {
				cfg.Sched.TLBMissWeight = 4
			}
			if p == config.SchedTCWS {
				cfg.Sched.TLBMissWeight = 4
				cfg.Sched.LRUDepthWeights = []int{1, 2, 4, 8}
			}
			st := runWith(t, name, cfg)
			if st.Cycles == 0 {
				t.Fatalf("%s/%v: zero cycles", name, p)
			}
		}
	}
}

// TestTBCModes runs divergent workloads under classic stacks, TBC, and
// TLB-aware TBC; results must stay functionally correct and TBC must
// actually compact warps.
func TestTBCModes(t *testing.T) {
	for _, name := range []string{"bfs", "mummergpu", "pathfinder", "memcached"} {
		for _, mode := range []config.DivergenceMode{config.DivStack, config.DivTBC, config.DivTLBTBC} {
			cfg := config.SmallTest()
			cfg.MMU = config.AugmentedMMU()
			cfg.TBC.Mode = mode
			st := runWith(t, name, cfg)
			if mode != config.DivStack && st.CompactedWarps == 0 {
				t.Errorf("%s/%v: no dynamic warps formed", name, mode)
			}
		}
	}
}

// TestNoTLBvsTLBOrdering: for a TLB-hostile workload, the naive blocking
// TLB must cost cycles relative to the no-TLB baseline, and the augmented
// MMU must recover some of that loss (the paper's core claim, figure 10).
func TestNoTLBvsTLBOrdering(t *testing.T) {
	base := config.SmallTest()
	baseSt := runWith(t, "pointerchase", base)

	naive := config.SmallTest()
	naive.MMU = config.NaiveMMU(4)
	naiveSt := runWith(t, "pointerchase", naive)

	aug := config.SmallTest()
	aug.MMU = config.AugmentedMMU()
	augSt := runWith(t, "pointerchase", aug)

	if naiveSt.Cycles <= baseSt.Cycles {
		t.Errorf("naive TLB (%d) not slower than no TLB (%d)", naiveSt.Cycles, baseSt.Cycles)
	}
	if augSt.Cycles > naiveSt.Cycles {
		t.Errorf("augmented MMU (%d) slower than naive (%d)", augSt.Cycles, naiveSt.Cycles)
	}
}

// TestLargePages: 2 MB pages must reduce TLB misses and page divergence on
// a scattered workload (paper section 9).
func TestLargePages(t *testing.T) {
	small := config.SmallTest()
	small.MMU = config.AugmentedMMU()
	st4k := runWith(t, "pointerchase", small)

	big := config.SmallTest()
	big.MMU = config.AugmentedMMU()
	big.PageShift = 21
	st2m := runWith(t, "pointerchase", big)

	if st2m.PageDivergence.Mean() >= st4k.PageDivergence.Mean() {
		t.Errorf("2M page divergence %.2f not below 4K %.2f",
			st2m.PageDivergence.Mean(), st4k.PageDivergence.Mean())
	}
	// Fewer distinct pages mean fewer page table walks (merged misses can
	// inflate the miss *rate* at tiny scale, so compare walk counts).
	if st2m.Walks >= st4k.Walks {
		t.Errorf("2M walks %d not below 4K walks %d", st2m.Walks, st4k.Walks)
	}
}

// TestIdleAccountingBounded sanity-checks idle-fraction accounting.
func TestIdleAccountingBounded(t *testing.T) {
	cfg := config.SmallTest()
	st := runWith(t, "kmeans", cfg)
	if f := st.IdleFraction(); f < 0 || f > 1 {
		t.Fatalf("idle fraction %f out of range", f)
	}
	if st.CoreCycles == 0 {
		t.Fatal("no core cycles accounted")
	}
}
