package gpu

import (
	"testing"

	"gpummu/internal/config"
	"gpummu/internal/engine"
	"gpummu/internal/kernels"
	"gpummu/internal/mem"
	"gpummu/internal/stats"
	"gpummu/internal/vm"
)

// newSchedCore builds a core with the given scheduler policy for direct
// scheduler-state testing.
func newSchedCore(t *testing.T, pol config.SchedulerPolicy) *Core {
	t.Helper()
	cfg := config.SmallTest()
	cfg.MMU = config.AugmentedMMU()
	cfg.Sched.Policy = pol
	cfg.Sched.LLSCutoff = 8
	cfg.Sched.ActivePool = 2
	cfg.Sched.TLBMissWeight = 4
	cfg.Sched.LRUDepthWeights = []int{1, 2, 4, 8}
	as := vm.NewAddressSpace(vm.NewPhysMem(), vm.NewFrameAllocator(1<<20), vm.PageShift4K)
	st := &stats.Sim{}
	g, err := New(cfg, as, st)
	if err != nil {
		t.Fatal(err)
	}
	// A dummy launch so cores have context; not executed.
	b := kernels.NewBuilder("noop")
	b.Exit()
	g.launch = &kernels.Launch{Program: b.MustBuild(), Grid: 1, BlockDim: 32}
	return g.cores[0]
}

func TestCCWSThrottleActivates(t *testing.T) {
	c := newSchedCore(t, config.SchedCCWS)
	s := c.sched
	// Feed VTA hits for warp 3 until the cutoff trips.
	for i := 0; i < 12; i++ {
		s.onL1Evict(mem.Eviction{Tag: uint64(i), AllocWarp: 3})
		s.onL1Miss(3, uint64(i), false)
	}
	s.recompute()
	if !s.restricted {
		t.Fatalf("cutoff did not trip (sum=%d)", s.sum)
	}
	if !s.allowed[3] {
		t.Fatal("top-scoring warp excluded from pool")
	}
	allowedCount := 0
	for _, a := range s.allowed {
		if a {
			allowedCount++
		}
	}
	if allowedCount != 2 {
		t.Fatalf("pool size %d, want ActivePool=2", allowedCount)
	}
}

func TestCCWSIgnoresMissWithoutVTAHit(t *testing.T) {
	c := newSchedCore(t, config.SchedCCWS)
	s := c.sched
	// Misses with no prior eviction into the VTA score nothing.
	for i := 0; i < 20; i++ {
		s.onL1Miss(1, uint64(1000+i), false)
	}
	if s.sum != 0 {
		t.Fatalf("scored %d without lost locality", s.sum)
	}
}

func TestTACCWSWeightsTLBMisses(t *testing.T) {
	c := newSchedCore(t, config.SchedTACCWS)
	s := c.sched
	s.onL1Evict(mem.Eviction{Tag: 7, AllocWarp: 1})
	s.onL1Miss(1, 7, false) // weight 1
	plain := s.scores[1]
	s.onL1Evict(mem.Eviction{Tag: 8, AllocWarp: 1})
	s.onL1Miss(1, 8, true) // weight 4
	if s.scores[1]-plain != 4*plain {
		t.Fatalf("TLB-miss weighting: %d then %d", plain, s.scores[1])
	}
}

func TestTCWSUsesPageVTAsAndLRUDepth(t *testing.T) {
	c := newSchedCore(t, config.SchedTCWS)
	s := c.sched
	// TLB miss against an empty VTA: nothing.
	s.onTLBMiss(2, 0x100)
	if s.sum != 0 {
		t.Fatal("scored a cold TLB miss")
	}
	// Simulate a TLB eviction of warp 2's page, then a miss on it.
	c.mmu.TLB().Fill(0, 0x100, 0x1000, 2)
	// Force eviction by filling the set (4-way; same set = same low bits).
	setStride := uint64(128 / 4) // entries/assoc sets
	for i := uint64(1); i <= 4; i++ {
		c.mmu.TLB().Fill(0, 0x100+i*setStride, 0x2000, 5)
	}
	s.onTLBMiss(2, 0x100)
	if s.scores[2] == 0 {
		t.Fatal("VTA-backed TLB miss scored nothing")
	}
	// LRU-depth-weighted hits.
	base := s.scores[4]
	s.onTLBHit(4, 0)
	if s.scores[4]-base != 1 {
		t.Fatalf("MRU hit weight = %d", s.scores[4]-base)
	}
	s.onTLBHit(4, 3)
	if s.scores[4]-base != 1+8 {
		t.Fatalf("LRU-depth-3 weight = %d", s.scores[4]-base-1)
	}
}

func TestSchedDecayReleasesThrottle(t *testing.T) {
	c := newSchedCore(t, config.SchedCCWS)
	s := c.sched
	for i := 0; i < 12; i++ {
		s.onL1Evict(mem.Eviction{Tag: uint64(i), AllocWarp: 0})
		s.onL1Miss(0, uint64(i), false)
	}
	s.recompute()
	if !s.restricted {
		t.Fatal("setup: not restricted")
	}
	// Several decay periods halve scores to zero.
	period := engine.Cycle(c.g.cfg.Sched.DecayPeriod)
	for i := 1; i <= 8; i++ {
		s.decay(period * engine.Cycle(i))
	}
	s.recompute()
	if s.restricted {
		t.Fatalf("throttle not released after decay (sum=%d)", s.sum)
	}
}

func TestLRROrderRotates(t *testing.T) {
	c := newSchedCore(t, config.SchedLRR)
	b := &Block{core: c}
	w1 := &Warp{block: b, slot: 0, state: WReady}
	w2 := &Warp{block: b, slot: 1, state: WReady}
	w3 := &Warp{block: b, slot: 2, state: WReady}
	warps := []*Warp{w1, w2, w3}

	first := c.sched.order(0, warps)[0]
	c.sched.afterIssue()
	second := c.sched.order(0, warps)[0]
	if first == second {
		t.Fatal("round-robin did not rotate")
	}
}

func TestGTOPrefersLastIssued(t *testing.T) {
	c := newSchedCore(t, config.SchedGTO)
	b := &Block{core: c}
	w1 := &Warp{block: b, slot: 0, state: WReady}
	w2 := &Warp{block: b, slot: 1, state: WReady}
	warps := []*Warp{w1, w2}
	c.lastIssued = w2
	if got := c.sched.order(0, warps)[0]; got != w2 {
		t.Fatal("GTO did not stick with the running warp")
	}
}
