package gpu

import (
	"testing"

	"gpummu/internal/config"
	"gpummu/internal/kernels"
	"gpummu/internal/stats"
	"gpummu/internal/vm"
)

// buildGPU wires a small machine over a fresh address space.
func buildGPU(t *testing.T, cfg config.Hardware) (*GPU, *vm.AddressSpace, *stats.Sim) {
	t.Helper()
	as := vm.NewAddressSpace(vm.NewPhysMem(), vm.NewFrameAllocator(1<<20), vm.PageShift4K)
	st := &stats.Sim{}
	g, err := New(cfg, as, st)
	if err != nil {
		t.Fatal(err)
	}
	g.MaxCycles = 10_000_000
	return g, as, st
}

// runKernel runs l and fails the test on error.
func runKernel(t *testing.T, g *GPU, l *kernels.Launch) {
	t.Helper()
	if _, err := g.Run(l); err != nil {
		t.Fatal(err)
	}
}

// TestNestedDivergence executes a kernel with a divergent branch inside a
// divergent branch and checks each thread's result.
//
//	if lane%2: x = 10; if lane%4==1 { x += 5 } else { x += 7 }
//	else:      x = 1
//	out[tid] = x + 100 (after reconvergence)
func TestNestedDivergence(t *testing.T) {
	for _, mode := range []config.DivergenceMode{config.DivStack, config.DivTBC, config.DivTLBTBC} {
		cfg := config.SmallTest()
		cfg.TBC.Mode = mode
		g, as, _ := buildGPU(t, cfg)
		out := as.Malloc(64 * 8)

		const (
			rTid, rX, rC, rAddr, rBase, rT kernels.Reg = 0, 1, 2, 3, 4, 5
		)
		b := kernels.NewBuilder("nested")
		b.Special(rTid, kernels.SpecGlobalTID)
		b.AndImm(rC, rTid, 1)
		b.Bnz(rC, "odd", "join")
		b.MovImm(rX, 1)
		b.Jmp("join")
		b.Label("odd")
		b.MovImm(rX, 10)
		b.AndImm(rC, rTid, 3)
		b.SeqImm(rC, rC, 1)
		b.Bnz(rC, "plus5", "innerjoin")
		b.AddImm(rX, rX, 7)
		b.Jmp("innerjoin")
		b.Label("plus5")
		b.AddImm(rX, rX, 5)
		b.Label("innerjoin")
		b.Jmp("join")
		b.Label("join")
		b.AddImm(rX, rX, 100)
		b.ShlImm(rAddr, rTid, 3)
		b.Special(rBase, kernels.SpecParam0)
		b.Add(rAddr, rAddr, rBase)
		b.St(rAddr, 0, rX, 8)
		b.Exit()
		prog := b.MustBuild()

		l := &kernels.Launch{Program: prog, Grid: 1, BlockDim: 64}
		l.Params[0] = out
		runKernel(t, g, l)

		for tid := 0; tid < 64; tid++ {
			want := uint64(101)
			if tid%2 == 1 {
				if tid%4 == 1 {
					want = 115
				} else {
					want = 117
				}
			}
			if got := as.Read64(out + uint64(tid)*8); got != want {
				t.Fatalf("mode %v: thread %d = %d, want %d", mode, tid, got, want)
			}
		}
	}
}

// TestDivergentLoopTripCounts runs a loop with per-thread trip counts
// (tid%8 iterations) under all divergence modes.
func TestDivergentLoopTripCounts(t *testing.T) {
	for _, mode := range []config.DivergenceMode{config.DivStack, config.DivTBC, config.DivTLBTBC} {
		cfg := config.SmallTest()
		cfg.TBC.Mode = mode
		g, as, _ := buildGPU(t, cfg)
		out := as.Malloc(96 * 8)

		const (
			rTid, rN, rI, rAcc, rC, rAddr, rBase kernels.Reg = 0, 1, 2, 3, 4, 5, 6
		)
		b := kernels.NewBuilder("trips")
		b.Special(rTid, kernels.SpecGlobalTID)
		b.AndImm(rN, rTid, 7)
		b.MovImm(rI, 0)
		b.MovImm(rAcc, 0)
		b.Label("head")
		b.Sltu(rC, rI, rN)
		b.Bz(rC, "exitloop", "exitloop")
		b.AddImm(rAcc, rAcc, 3)
		b.AddImm(rI, rI, 1)
		b.Jmp("head")
		b.Label("exitloop")
		b.ShlImm(rAddr, rTid, 3)
		b.Special(rBase, kernels.SpecParam0)
		b.Add(rAddr, rAddr, rBase)
		b.St(rAddr, 0, rAcc, 8)
		b.Exit()

		l := &kernels.Launch{Program: b.MustBuild(), Grid: 1, BlockDim: 96}
		l.Params[0] = out
		runKernel(t, g, l)

		for tid := 0; tid < 96; tid++ {
			want := uint64(tid%8) * 3
			if got := as.Read64(out + uint64(tid)*8); got != want {
				t.Fatalf("mode %v: thread %d = %d, want %d", mode, tid, got, want)
			}
		}
	}
}

// TestBarrierOrdering: producer warps write, all warps barrier, consumer
// warps read — results must observe the pre-barrier writes.
func TestBarrierOrdering(t *testing.T) {
	cfg := config.SmallTest()
	g, as, _ := buildGPU(t, cfg)
	buf := as.Malloc(256 * 8)
	out := as.Malloc(256 * 8)

	const (
		rTid, rV, rAddr, rBase, rPeer kernels.Reg = 0, 1, 2, 3, 4
	)
	b := kernels.NewBuilder("barrier")
	b.Special(rTid, kernels.SpecBlockTID)
	// buf[tid] = tid*7
	b.MulImm(rV, rTid, 7)
	b.ShlImm(rAddr, rTid, 3)
	b.Special(rBase, kernels.SpecParam0)
	b.Add(rAddr, rAddr, rBase)
	b.St(rAddr, 0, rV, 8)
	b.Bar()
	// out[tid] = buf[(tid+1) % 256]
	b.AddImm(rPeer, rTid, 1)
	b.AndImm(rPeer, rPeer, 255)
	b.ShlImm(rAddr, rPeer, 3)
	b.Add(rAddr, rAddr, rBase)
	b.Ld(rV, rAddr, 0, 8)
	b.ShlImm(rAddr, rTid, 3)
	b.Special(rBase, kernels.SpecParam1)
	b.Add(rAddr, rAddr, rBase)
	b.St(rAddr, 0, rV, 8)
	b.Exit()

	l := &kernels.Launch{Program: b.MustBuild(), Grid: 1, BlockDim: 256}
	l.Params[0] = buf
	l.Params[1] = out
	runKernel(t, g, l)

	for tid := 0; tid < 256; tid++ {
		want := uint64((tid+1)%256) * 7
		if got := as.Read64(out + uint64(tid)*8); got != want {
			t.Fatalf("thread %d read %d, want %d", tid, got, want)
		}
	}
}

// TestCoalescingStats: a fully coalesced access is one line and one page;
// a page-strided access is WarpWidth of each.
func TestCoalescingStats(t *testing.T) {
	cfg := config.SmallTest()
	cfg.MMU = config.AugmentedMMU()

	build := func(strideShift int64) (*GPU, *vm.AddressSpace, *stats.Sim, *kernels.Launch) {
		g, as, st := buildGPU(t, cfg)
		data := as.Malloc(64 << 12)
		const (
			rTid, rAddr, rBase, rV kernels.Reg = 0, 1, 2, 3
		)
		b := kernels.NewBuilder("stride")
		b.Special(rTid, kernels.SpecGlobalTID)
		b.ShlImm(rAddr, rTid, strideShift)
		b.Special(rBase, kernels.SpecParam0)
		b.Add(rAddr, rAddr, rBase)
		b.Ld(rV, rAddr, 0, 8)
		b.Exit()
		l := &kernels.Launch{Program: b.MustBuild(), Grid: 1, BlockDim: 32}
		l.Params[0] = data
		return g, as, st, l
	}

	g, _, st, l := build(3) // 8-byte stride: 32 lanes in 2 lines, 1 page
	runKernel(t, g, l)
	if st.PageDivergence.Max() != 1 {
		t.Fatalf("coalesced page divergence = %d", st.PageDivergence.Max())
	}
	if st.LineDivergence.Max() != 2 {
		t.Fatalf("coalesced line divergence = %d", st.LineDivergence.Max())
	}

	g, _, st, l = build(12) // page stride: every lane its own page
	runKernel(t, g, l)
	if st.PageDivergence.Max() != 32 {
		t.Fatalf("strided page divergence = %d", st.PageDivergence.Max())
	}
}

// TestIssuePeriodBound: a pure-ALU kernel cannot finish faster than
// instructions × IssuePeriod / cores.
func TestIssuePeriodBound(t *testing.T) {
	cfg := config.SmallTest()
	g, as, st := buildGPU(t, cfg)
	out := as.Malloc(8)

	const rA kernels.Reg = 1
	b := kernels.NewBuilder("alu")
	for i := 0; i < 50; i++ {
		b.AddImm(rA, rA, 1)
	}
	const rAddr, rBase kernels.Reg = 2, 3
	b.Special(rAddr, kernels.SpecGlobalTID)
	b.Special(rBase, kernels.SpecParam0)
	b.St(rBase, 0, rA, 8)
	b.Exit()

	l := &kernels.Launch{Program: b.MustBuild(), Grid: 1, BlockDim: 32}
	l.Params[0] = out
	runKernel(t, g, l)

	minCycles := uint64(st.Instructions.Value()) * uint64(cfg.IssuePeriod())
	if st.Cycles < minCycles {
		t.Fatalf("cycles %d below issue-stage bound %d", st.Cycles, minCycles)
	}
	if as.Read64(out) != 50 {
		t.Fatalf("ALU chain = %d", as.Read64(out))
	}
}

// TestDeterminism: identical runs produce identical cycle counts.
func TestDeterminism(t *testing.T) {
	run := func() uint64 {
		cfg := config.SmallTest()
		cfg.MMU = config.AugmentedMMU()
		st := runWith(t, "bfs", cfg)
		return st.Cycles
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %d vs %d", a, b)
	}
}
