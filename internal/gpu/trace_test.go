package gpu

import (
	"strings"
	"testing"

	"gpummu/internal/config"
	"gpummu/internal/engine"
	"gpummu/internal/stats"
	"gpummu/internal/workloads"
)

func TestRingTracerRetainsTail(t *testing.T) {
	r := NewRingTracer(3)
	for i := 0; i < 5; i++ {
		r.Trace(Event{Cycle: engine.Cycle(i), Kind: EvIssue})
	}
	if r.Total() != 5 {
		t.Fatalf("total = %d", r.Total())
	}
	ev := r.Events()
	if len(ev) != 3 {
		t.Fatalf("retained %d", len(ev))
	}
	for i, e := range ev {
		if int(e.Cycle) != i+2 {
			t.Fatalf("event %d has cycle %d", i, e.Cycle)
		}
	}
}

func TestTracerCapturesRun(t *testing.T) {
	cfg := config.SmallTest()
	cfg.MMU = config.AugmentedMMU()
	cfg.TBC.Mode = config.DivTBC
	w, err := workloads.Build("bfs", workloads.SizeTiny, cfg.PageShift, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := &stats.Sim{}
	g, err := New(cfg, w.AS, st)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewRingTracer(4096)
	g.SetTracer(tr)
	if _, err := g.Run(w.Launch); err != nil {
		t.Fatal(err)
	}
	kinds := map[EventKind]int{}
	for _, e := range tr.Events() {
		kinds[e.Kind]++
	}
	for _, k := range []EventKind{EvIssue, EvTLBMiss, EvCompact} {
		if kinds[k] == 0 {
			t.Errorf("no %v events traced", k)
		}
	}
	var sb strings.Builder
	if err := tr.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "issue") {
		t.Fatal("dump missing issue lines")
	}
}

func TestFilterTracer(t *testing.T) {
	ring := NewRingTracer(16)
	f := &FilterTracer{Next: ring, Keep: map[EventKind]bool{EvBarrier: true}}
	f.Trace(Event{Kind: EvIssue})
	f.Trace(Event{Kind: EvBarrier})
	if ring.Total() != 1 || ring.Events()[0].Kind != EvBarrier {
		t.Fatalf("filter passed %d events", ring.Total())
	}
}

func TestWriterTracer(t *testing.T) {
	var sb strings.Builder
	wt := &WriterTracer{W: &sb}
	wt.Trace(Event{Cycle: 42, Kind: EvWalkDone, Warp: 3, A: 0x99, B: 7})
	if wt.Err() != nil {
		t.Fatal(wt.Err())
	}
	if !strings.Contains(sb.String(), "walkdone") || !strings.Contains(sb.String(), "0x99") {
		t.Fatalf("bad render: %q", sb.String())
	}
}
