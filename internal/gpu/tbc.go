package gpu

import (
	"fmt"

	"gpummu/internal/config"
	"gpummu/internal/engine"
	"gpummu/internal/kernels"
)

// tbcEntry is one level of the block-wide reconvergence stack of thread
// block compaction (paper section 8). An entry owns a set of dynamic warps
// all executing the same control-flow region; warps that reach the entry's
// reconvergence point (rpc) park; warps that reach a divergent branch wait
// until every running warp of the entry arrives, at which point the
// compactor splits the entry's threads by branch outcome into child entries
// with freshly compacted dynamic warps.
type tbcEntry struct {
	rpc int32 // reconvergence pc; -1 for the root entry

	warps   []*Warp // running dynamic warps
	waiting []*Warp // warps parked at the synchronising branch
	waitPC  int32   // branch pc everyone is waiting at (-1 none)

	// When a branch is processed the entry suspends until its children
	// pop, then resumes its threads at resumeAt.
	hasResume     bool
	resumeAt      int32
	resumeThreads []int32
}

// tbcState is the per-block compaction state machine.
type tbcState struct {
	b     *Block
	stack []*tbcEntry
}

func newTBCState(b *Block) *tbcState {
	root := &tbcEntry{rpc: -1, waitPC: -1, warps: append([]*Warp(nil), b.warps...)}
	for _, w := range b.warps {
		w.entry = root
	}
	return &tbcState{b: b, stack: []*tbcEntry{root}}
}

func (t *tbcState) top() *tbcEntry { return t.stack[len(t.stack)-1] }

func removeWarp(ws []*Warp, w *Warp) []*Warp {
	for i, x := range ws {
		if x == w {
			return append(ws[:i], ws[i+1:]...)
		}
	}
	return ws
}

// warpAtBranch parks warp w at a (potentially divergent) branch: TBC
// synchronises all warps of a thread block region at branches so the
// compactor can reform warps from the whole region's threads.
func (t *tbcState) warpAtBranch(now engine.Cycle, w *Warp, in *kernels.Instr, pc int32) {
	e := w.entry
	if e.waitPC >= 0 && e.waitPC != pc {
		panic(fmt.Sprintf("gpu: tbc: unstructured branch sync (pc %d vs %d) in %s",
			pc, e.waitPC, t.b.core.g.launch.Program.Name))
	}
	e.waitPC = pc
	w.state = WTBCWait
	e.warps = removeWarp(e.warps, w)
	e.waiting = append(e.waiting, w)
	t.maintain(now)
}

// warpDrained handles a warp whose lanes all exited or that reached the
// entry's reconvergence point: it leaves the entry.
func (t *tbcState) warpDrained(now engine.Cycle, w *Warp) {
	e := w.entry
	if e == nil {
		return
	}
	w.state = WDone
	e.warps = removeWarp(e.warps, w)
	t.b.pruneWarps()
	t.maintain(now)
}

// checkReconverged is called after a warp moves its pc: a warp whose pc hit
// its entry's rpc parks its threads there.
func (t *tbcState) checkReconverged(now engine.Cycle, w *Warp) {
	e := w.entry
	if e == nil || e.rpc < 0 || w.pc != e.rpc {
		return
	}
	w.state = WDone
	e.warps = removeWarp(e.warps, w)
	t.b.pruneWarps()
	t.maintain(now)
}

// maintain drives the state machine: process branch syncs, resume suspended
// entries whose children finished, and pop completed entries.
func (t *tbcState) maintain(now engine.Cycle) {
	for {
		e := t.top()
		if len(e.warps) > 0 {
			return // entry still running
		}
		if len(e.waiting) > 0 {
			t.processBranch(now, e)
			continue
		}
		if e.hasResume {
			t.resume(now, e)
			if len(t.top().warps) > 0 {
				return
			}
			continue
		}
		if len(t.stack) == 1 {
			return // root drained; block retires via thread exits
		}
		t.stack = t.stack[:len(t.stack)-1]
	}
}

// processBranch splits the entry's synchronised threads by branch outcome
// and pushes compacted child entries (taken side on top, executed first).
func (t *tbcState) processBranch(now engine.Cycle, e *tbcEntry) {
	b := t.b
	in := &b.core.g.launch.Program.Code[e.waitPC]
	fallPC := e.waitPC + 1

	var takenT, fallT, all []int32
	for _, w := range e.waiting {
		for _, tid := range w.lanes {
			if tid == noLane {
				continue
			}
			th := &b.threads[tid]
			if th.exited {
				continue
			}
			all = append(all, tid)
			if branchTaken(th, in) {
				takenT = append(takenT, tid)
			} else {
				fallT = append(fallT, tid)
			}
		}
		w.state = WDone
		w.entry = nil
	}
	e.waiting = e.waiting[:0]
	e.waitPC = -1
	b.pruneWarps()

	e.hasResume = true
	e.resumeAt = in.Reconv
	e.resumeThreads = all

	// Children: fall-through pushed first so the taken side runs first,
	// as in the paper's figure 19 walk-through. Sides that start at the
	// reconvergence point contribute no child.
	if fallPC != in.Reconv && len(fallT) > 0 {
		t.pushEntry(now, fallT, fallPC, in.Reconv)
	}
	if in.Target != in.Reconv && len(takenT) > 0 {
		t.pushEntry(now, takenT, in.Target, in.Reconv)
	}
}

// resume recompacts an entry's surviving threads at its resume point.
func (t *tbcState) resume(now engine.Cycle, e *tbcEntry) {
	live := e.resumeThreads[:0]
	for _, tid := range e.resumeThreads {
		if !t.b.threads[tid].exited {
			live = append(live, tid)
		}
	}
	e.hasResume = false
	if len(live) == 0 || (e.rpc >= 0 && e.resumeAt == e.rpc) {
		// Nothing left to run, or the resume point IS this entry's own
		// reconvergence point (a loop-exit branch): the threads park here
		// and the parent's resume covers them.
		e.resumeThreads = nil
		return
	}
	warps := t.compact(now, live, e.resumeAt)
	for _, w := range warps {
		w.entry = e
	}
	e.warps = append(e.warps, warps...)
	t.b.warps = append(t.b.warps, warps...)
	t.b.core.liveDirty = true
	e.resumeThreads = nil
}

func (t *tbcState) pushEntry(now engine.Cycle, threads []int32, pc, rpc int32) {
	e := &tbcEntry{rpc: rpc, waitPC: -1}
	warps := t.compact(now, threads, pc)
	for _, w := range warps {
		w.entry = e
	}
	e.warps = warps
	t.b.warps = append(t.b.warps, warps...)
	t.b.core.liveDirty = true
	t.stack = append(t.stack, e)
}

// compact forms dynamic warps from threads, lane-preserving: a thread can
// only occupy its home lane (btid mod warp width), so each dynamic warp
// takes at most one candidate per lane. TLB-agnostic compaction packs
// densely (the priority-encoder result); TLB-aware compaction additionally
// requires the candidate's original warp to have saturated Common Page
// Matrix counters against every original warp already in the target warp
// (paper section 8.2), possibly forming more, lower-divergence warps.
func (t *tbcState) compact(now engine.Cycle, threads []int32, pc int32) []*Warp {
	b := t.b
	width := b.core.g.cfg.WarpWidth
	tlbAware := b.core.g.cfg.TBC.Mode == config.DivTLBTBC && b.core.cpm != nil

	var warps []*Warp
	newWarp := func() *Warp {
		lanes := make([]int32, width)
		for i := range lanes {
			lanes[i] = noLane
		}
		w := &Warp{block: b, state: WReady, readyAt: now + 1, pc: pc, lanes: lanes, slot: -1}
		warps = append(warps, w)
		return w
	}

	for _, tid := range threads {
		lane := int(tid) % width
		th := &b.threads[tid]
		placed := false
		for _, w := range warps {
			if w.lanes[lane] != noLane {
				continue
			}
			if tlbAware && !t.cpmAdmits(w, th) {
				b.core.st.CPMRejects.Inc()
				continue
			}
			w.lanes[lane] = tid
			placed = true
			break
		}
		if !placed {
			w := newWarp()
			w.lanes[lane] = tid
		}
	}
	for _, w := range warps {
		// Attribute the dynamic warp to its first thread's original warp
		// for cache-allocation bookkeeping.
		for _, tid := range w.lanes {
			if tid != noLane {
				w.slot = b.threads[tid].origWarp
				break
			}
		}
		b.core.st.CompactedWarps.Inc()
		b.core.emit(Event{Cycle: now, Kind: EvCompact, Core: int16(b.core.id),
			Block: int32(b.id), Warp: int16(w.slot), A: uint64(pc), B: uint64(countLanes(w.lanes))})
	}
	return warps
}

// cpmAdmits checks the Common Page Matrix admission rule: the candidate's
// original warp must be saturated against the original warp of every thread
// already compacted into w.
func (t *tbcState) cpmAdmits(w *Warp, cand *Thread) bool {
	cpm := t.b.core.cpm
	for _, tid := range w.lanes {
		if tid == noLane {
			continue
		}
		if !cpm.Saturated(cand.origWarp, t.b.threads[tid].origWarp) {
			return false
		}
	}
	return true
}

// pruneWarps drops Done warps from the block's warp list.
func (b *Block) pruneWarps() {
	live := b.warps[:0]
	for _, w := range b.warps {
		if w.state != WDone {
			live = append(live, w)
		}
	}
	b.warps = live
	b.core.liveDirty = true
}
