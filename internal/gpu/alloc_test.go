package gpu

import (
	"testing"

	"gpummu/internal/config"
	"gpummu/internal/engine"
	"gpummu/internal/kernels"
	"gpummu/internal/stats"
	"gpummu/internal/vm"
)

// benchCore builds a GPU around a manually dispatched single block so tests
// can drive Core internals (coalesceMem, execMem) directly.
func benchCore(t *testing.T, cfg config.Hardware, blockDim int) (*Core, *Block, uint64) {
	t.Helper()
	as := vm.NewAddressSpace(vm.NewPhysMem(), vm.NewFrameAllocator(1<<20), vm.PageShift4K)
	data := as.Malloc(64 << 12)
	st := &stats.Sim{}
	g, err := New(cfg, as, st)
	if err != nil {
		t.Fatal(err)
	}
	l := &kernels.Launch{Program: pageStrideKernel(), Grid: 1, BlockDim: blockDim}
	l.Params[0] = data
	g.launch = l
	c := g.cores[0]
	b := newBlock(c, 0, 0)
	c.blocks = append(c.blocks, b)
	return c, b, data
}

// TestCoalesceMultiWarpAttribution drives the page-warp attribution of a
// TBC-compacted warp whose lanes come from two original warps: each page's
// PageReq.Warps must list every distinct origWarp exactly once, in
// first-appearance order — the contract the Common Page Matrix and the TLB
// entry history rely on.
func TestCoalesceMultiWarpAttribution(t *testing.T) {
	cfg := config.SmallTest()
	cfg.MMU = config.AugmentedMMU()
	cfg.TBC.Mode = config.DivTBC
	c, b, data := benchCore(t, cfg, 64) // two original warps: 0 and 1
	in := &c.g.launch.Program.Code[4]   // the Ld of pageStrideKernel
	if in.Kind != kernels.KindLoad {
		t.Fatalf("expected Code[4] to be the load, got kind %d", in.Kind)
	}

	// A compacted warp mixing threads of original warps 0 and 1:
	//   lane 0: tid 0  (warp 0) -> page 0
	//   lane 1: tid 33 (warp 1) -> page 0   (same page, second warp)
	//   lane 2: tid 2  (warp 0) -> page 1
	//   lane 3: tid 35 (warp 1) -> page 1
	//   lane 4: tid 4  (warp 0) -> page 0   (duplicate attribution)
	w := b.warps[0]
	for i := range w.lanes {
		w.lanes[i] = noLane
	}
	set := func(lane int, tid int32, va uint64) {
		w.lanes[lane] = tid
		b.threads[tid].regs[in.A] = va
	}
	set(0, 0, data)
	set(1, 33, data+8)
	set(2, 2, data+(1<<12))
	set(3, 35, data+(1<<12)+16)
	set(4, 4, data+24)

	c.coalesceMem(w, in, false)
	sc := &c.scratch
	if len(sc.reqs) != 2 {
		t.Fatalf("distinct pages = %d, want 2", len(sc.reqs))
	}
	for i, wantVPN := range []uint64{data >> 12, (data + (1 << 12)) >> 12} {
		if sc.reqs[i].VPN != wantVPN {
			t.Fatalf("page %d VPN = %#x, want %#x", i, sc.reqs[i].VPN, wantVPN)
		}
		ws := sc.reqs[i].Warps
		if len(ws) != 2 || ws[0] != 0 || ws[1] != 1 {
			t.Fatalf("page %d Warps = %v, want [0 1]", i, ws)
		}
	}

	// Scratch reuse must fully reset attribution: re-coalesce with only
	// warp-1 threads touching page 0.
	for i := range w.lanes {
		w.lanes[i] = noLane
	}
	set(1, 33, data)
	set(3, 35, data+32)
	c.coalesceMem(w, in, false)
	if len(sc.reqs) != 1 {
		t.Fatalf("distinct pages after reuse = %d, want 1", len(sc.reqs))
	}
	if ws := sc.reqs[0].Warps; len(ws) != 1 || ws[0] != 1 {
		t.Fatalf("Warps after reuse = %v, want [1]", ws)
	}
}

// TestExecMemSteadyStateAllocFree pins the tentpole property: once the TLB
// and L1 are warm, a full warp memory instruction — coalescing, translation,
// and cache access — performs zero heap allocations.
func TestExecMemSteadyStateAllocFree(t *testing.T) {
	cfg := config.SmallTest()
	cfg.MMU = config.AugmentedMMU()
	c, b, data := benchCore(t, cfg, 32)
	in := &c.g.launch.Program.Code[4]
	w := b.warps[0]
	for i, tid := range w.stack[0].lanes {
		if tid == noLane {
			continue
		}
		// All lanes in one page, a few distinct lines: the steady-state hit
		// pattern of a regular workload.
		b.threads[tid].regs[in.A] = data + uint64(i)*8
	}

	now := engine.Cycle(0)
	runOnce := func() {
		w.stack[0].pc = 4 // rewind to the load; execMem advances past it
		w.state = WReady
		c.execMem(now, w, in)
		now = w.readyAt + 8
		// The slotted L1 port deletes as many window slots as it inserts
		// once pruned, keeping its map in steady state.
		c.l1Port.PruneBefore(now)
	}
	for i := 0; i < 32; i++ {
		runOnce() // warm TLB, L1, MSHRs, and scratch buffers
	}
	avg := testing.AllocsPerRun(200, runOnce)
	if avg != 0 {
		t.Fatalf("warm execMem allocates %.2f objects per instruction, want 0", avg)
	}
}
