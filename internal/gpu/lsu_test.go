package gpu

import (
	"testing"

	"gpummu/internal/config"
	"gpummu/internal/kernels"
	"gpummu/internal/stats"
	"gpummu/internal/vm"
)

// pageStrideKernel loads one value per lane, each lane a page apart —
// guaranteeing maximal page divergence and cold TLB misses.
func pageStrideKernel() *kernels.Program {
	const (
		rTid, rAddr, rBase, rV kernels.Reg = 0, 1, 2, 3
	)
	b := kernels.NewBuilder("pagestride")
	b.Special(rTid, kernels.SpecGlobalTID)
	b.ShlImm(rAddr, rTid, 12)
	b.Special(rBase, kernels.SpecParam0)
	b.Add(rAddr, rAddr, rBase)
	b.Ld(rV, rAddr, 0, 8)
	b.Exit()
	return b.MustBuild()
}

// runOneWarp executes a single warp of pageStrideKernel under m.
func runOneWarp(t *testing.T, m config.MMU) *stats.Sim {
	t.Helper()
	cfg := config.SmallTest()
	cfg.MMU = m
	as := vm.NewAddressSpace(vm.NewPhysMem(), vm.NewFrameAllocator(1<<20), vm.PageShift4K)
	data := as.Malloc(33 << 12)
	st := &stats.Sim{}
	g, err := New(cfg, as, st)
	if err != nil {
		t.Fatal(err)
	}
	g.MaxCycles = 1_000_000
	l := &kernels.Launch{Program: pageStrideKernel(), Grid: 1, BlockDim: 32}
	l.Params[0] = data
	if _, err := g.Run(l); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestCacheOverlapReducesStall: with 32 cold misses in one warp, the
// overlap configuration lets each line access start as its own walk
// finishes rather than after the slowest — the warp completes sooner.
func TestCacheOverlapReducesStall(t *testing.T) {
	plain := config.NaiveMMU(4)
	plain.HitsUnderMiss = true
	overlap := plain
	overlap.CacheOverlap = true

	a := runOneWarp(t, plain)
	b := runOneWarp(t, overlap)
	if b.Cycles >= a.Cycles {
		t.Fatalf("cache overlap (%d cycles) not faster than serialised (%d)", b.Cycles, a.Cycles)
	}
	if a.TLBMisses != 32 || b.TLBMisses != 32 {
		t.Fatalf("expected 32 cold misses, got %d / %d", a.TLBMisses, b.TLBMisses)
	}
}

// TestAccessPenaltyAppliesToL1Path: an oversized TLB slows every memory
// access even when it always hits.
func TestAccessPenaltyAppliesToL1Path(t *testing.T) {
	small := config.NaiveMMU(4) // 128 entries: no penalty
	small.HitsUnderMiss = true
	small.CacheOverlap = true
	big := small
	big.Entries = 512 // +4 cycles on every L1 access

	a := runOneWarp(t, small)
	b := runOneWarp(t, big)
	// 512 entries still cold-miss the same 32 pages; the penalty shows in
	// the L1 path. With one warp the difference is small but must exist.
	if b.Cycles <= a.Cycles {
		t.Fatalf("512-entry TLB (%d cycles) not slower than 128-entry (%d)", b.Cycles, a.Cycles)
	}
}

// TestNoTLBFunctionalTranslation: with the MMU disabled the kernel still
// reads the right physical data through real page tables.
func TestNoTLBFunctionalTranslation(t *testing.T) {
	cfg := config.SmallTest()
	as := vm.NewAddressSpace(vm.NewPhysMem(), vm.NewFrameAllocator(1<<20), vm.PageShift4K)
	data := as.Malloc(33 << 12)
	for i := uint64(0); i < 32; i++ {
		as.Write64(data+(i<<12), i*11)
	}
	out := as.Malloc(32 * 8)

	const (
		rTid, rAddr, rBase, rV kernels.Reg = 0, 1, 2, 3
	)
	b := kernels.NewBuilder("copy")
	b.Special(rTid, kernels.SpecGlobalTID)
	b.ShlImm(rAddr, rTid, 12)
	b.Special(rBase, kernels.SpecParam0)
	b.Add(rAddr, rAddr, rBase)
	b.Ld(rV, rAddr, 0, 8)
	b.ShlImm(rAddr, rTid, 3)
	b.Special(rBase, kernels.SpecParam1)
	b.Add(rAddr, rAddr, rBase)
	b.St(rAddr, 0, rV, 8)
	b.Exit()

	st := &stats.Sim{}
	g, err := New(cfg, as, st)
	if err != nil {
		t.Fatal(err)
	}
	l := &kernels.Launch{Program: b.MustBuild(), Grid: 1, BlockDim: 32}
	l.Params[0] = data
	l.Params[1] = out
	if _, err := g.Run(l); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 32; i++ {
		if got := as.Read64(out + i*8); got != i*11 {
			t.Fatalf("lane %d copied %d, want %d", i, got, i*11)
		}
	}
}

// TestStoreGoesThroughTLB: stores translate and count like loads.
func TestStoreGoesThroughTLB(t *testing.T) {
	cfg := config.SmallTest()
	cfg.MMU = config.AugmentedMMU()
	as := vm.NewAddressSpace(vm.NewPhysMem(), vm.NewFrameAllocator(1<<20), vm.PageShift4K)
	out := as.Malloc(33 << 12)

	const (
		rTid, rAddr, rBase kernels.Reg = 0, 1, 2
	)
	b := kernels.NewBuilder("scatterstore")
	b.Special(rTid, kernels.SpecGlobalTID)
	b.ShlImm(rAddr, rTid, 12)
	b.Special(rBase, kernels.SpecParam0)
	b.Add(rAddr, rAddr, rBase)
	b.St(rAddr, 0, rTid, 8)
	b.Exit()

	st := &stats.Sim{}
	g, err := New(cfg, as, st)
	if err != nil {
		t.Fatal(err)
	}
	l := &kernels.Launch{Program: b.MustBuild(), Grid: 1, BlockDim: 32}
	l.Params[0] = out
	if _, err := g.Run(l); err != nil {
		t.Fatal(err)
	}
	if st.TLBAccesses != 32 {
		t.Fatalf("store TLB accesses = %d, want 32", st.TLBAccesses)
	}
	for i := uint64(0); i < 32; i++ {
		if got := as.Read64(out + (i << 12)); got != i {
			t.Fatalf("page %d holds %d", i, got)
		}
	}
}
