package gpu

import (
	"gpummu/internal/config"
	"gpummu/internal/core"
	"gpummu/internal/engine"
	"gpummu/internal/kernels"
	"gpummu/internal/mem"
	"gpummu/internal/stats"
)

// Tick-outcome kinds recorded by phaseCompute for the post-commit
// aggregation pass of GPU.Run.
const (
	tkBlockless = int8(iota) // no resident blocks; nothing to do
	tkSkipped                // event fast-forward emulated the tick
	tkTicked                 // a real tick ran; commit must follow
)

// Core is one shader core: its warps, L1 data cache, MMU, scheduler state,
// and (under TBC) the Common Page Matrix.
type Core struct {
	id int
	g  *GPU

	// st is this core's private statistics shard. Everything the core (and
	// its MMU, scheduler, and TBC state machine) counts during a cycle's
	// compute phase lands here and is folded into the run's global sink when
	// the run finishes; mem.System and the shared TLB write the global sink
	// directly, from commit phases only. The two sinks cover disjoint fields,
	// and every stats type merges commutatively and exactly, so sharding
	// never changes reported totals (see stats.Sim.Merge).
	st *stats.Sim

	mmu     *core.MMU
	l1      *mem.Cache
	l1Port  *engine.SlottedResource
	l1MSHRs []engine.Cycle // next-free per miss-status register
	sched   *sched
	cpm     *core.CPM

	blocks      []*Block
	rrPtr       int
	lastIssued  *Warp
	pendingIdle bool
	nextIssue   engine.Cycle // issue stage free at this cycle

	// wakeAt is the earliest cycle at which a real tick can do anything the
	// last real tick could not: the issue stage freeing (after an issue) or
	// the earliest warp/walk event (after a no-issue tick). While
	// now < wakeAt the core's state is frozen — warps only change through
	// the core's own ticks — so Run skips the full tick and instead emulates
	// its return value with a cheap warp scan bounded by sleepCap (see
	// DESIGN.md "Performance model" for the exactness argument). A tick that
	// was blocked by the MMU memory gate sets wakeAt = now: gated issue
	// attempts observe per-candidate statistics every cycle the core is
	// polled, so those ticks must really run. CCWS-family schedulers decay
	// their locality scores on a wall-clock cadence, which makes their
	// behaviour tick-cadence sensitive — those cores set skippable=false
	// and are ticked every global step, exactly as before.
	wakeAt    engine.Cycle
	sleepCap  engine.Cycle
	skippable bool

	// Per-core scratch buffers, reused across instructions so steady-state
	// execution performs no heap allocation. Owned by this core only; never
	// shared across cores (see DESIGN.md "Performance model").
	scratch memScratch
	warpBuf []*Warp
	exitBuf []int32

	// liveDirty marks the cached warpBuf stale. The live-warp list only
	// changes when a warp dies (WDone), TBC compaction appends dynamic
	// warps, or a block is dispatched/retired — every such site sets this
	// flag, so the common tick reuses the previous scan.
	liveDirty bool

	// Two-phase tick state (see DESIGN.md "Two-phase parallel core
	// ticking"). The compute phase touches only core-private state and
	// records everything that must reach shared structures; commit applies
	// it in canonical core-id order.
	pend       pendMem // suspended remainder of this cycle's memory instruction
	pendRetire *Block  // block whose maybeRetire was deferred by execExit
	evBuf      []Event // trace events buffered until this core's commit

	// phaseCompute outcome, consumed by the commit + aggregation passes.
	tkKind   int8
	tkIssued bool
	tkEv     engine.Cycle
}

func newCore(id int, g *GPU) *Core {
	cfg := g.cfg
	c := &Core{id: id, g: g, st: &stats.Sim{}}
	histLen := 0
	if cfg.TBC.Mode == config.DivTLBTBC {
		histLen = cfg.TBC.CPMHistory
	}
	c.mmu = core.NewMMU(cfg.MMU, g.sys, g.tr, c.st, histLen)
	c.l1 = mem.NewCache(cfg.L1Bytes, cfg.L1LineSize, cfg.L1Assoc)
	c.l1Port = engine.NewSlottedResource(2, 32)
	nm := cfg.L1MSHRs
	if nm < 1 {
		nm = 32
	}
	c.l1MSHRs = make([]engine.Cycle, nm)
	c.sched = newSched(c)
	if cfg.TBC.Mode == config.DivTLBTBC {
		c.cpm = core.NewCPM(cfg.WarpsPerCore, cfg.TBC.CPMBits, cfg.TBC.CPMFlushPeriod)
		c.mmu.AttachCPM(c.cpm)
	}
	c.skippable = !(c.sched.ccwsFamily() && cfg.Sched.DecayPeriod > 0)
	c.scratch.words = (cfg.WarpsPerCore + 63) / 64
	c.warpBuf = make([]*Warp, 0, cfg.WarpsPerCore)
	return c
}

func (c *Core) reset() {
	c.blocks = nil
	c.rrPtr = 0
	c.lastIssued = nil
	c.nextIssue = 0
	c.wakeAt = 0
	c.sleepCap = 0
	c.liveDirty = true
	c.pend = pendMem{}
	c.pendRetire = nil
	c.evBuf = c.evBuf[:0]
	c.l1.Flush()
	c.mmu.Shootdown()
	for i := range c.l1MSHRs {
		c.l1MSHRs[i] = 0
	}
	c.sched.reset()
}

// warpsPerBlock returns warps needed by one thread block of the current
// launch.
func (c *Core) warpsPerBlock() int {
	w := c.g.cfg.WarpWidth
	return (c.g.launch.BlockDim + w - 1) / w
}

// capacityBlocks is how many blocks fit on this core concurrently.
func (c *Core) capacityBlocks() int {
	n := c.g.cfg.WarpsPerCore / c.warpsPerBlock()
	if n < 1 {
		n = 1
	}
	return n
}

// slotUsed reports whether a resident block occupies residency slot i.
func (c *Core) slotUsed(i int) bool {
	for _, b := range c.blocks {
		if b.slotIdx == i {
			return true
		}
	}
	return false
}

// fillBlocks dispatches pending grid blocks onto free block slots.
func (c *Core) fillBlocks() {
	capa := c.capacityBlocks()
	for len(c.blocks) < capa && c.g.nextBlock < c.g.launch.Grid {
		slot := -1
		for i := 0; i < capa; i++ {
			if !c.slotUsed(i) {
				slot = i
				break
			}
		}
		if slot < 0 {
			break
		}
		b := newBlock(c, c.g.nextBlock, slot)
		c.g.nextBlock++
		c.g.advanceCursor()
		c.g.liveBlocks++
		c.blocks = append(c.blocks, b)
		c.liveDirty = true
	}
}

// retireBlock removes a finished block and backfills from the grid.
func (c *Core) retireBlock(b *Block) {
	for i, x := range c.blocks {
		if x == b {
			c.blocks = append(c.blocks[:i], c.blocks[i+1:]...)
			break
		}
	}
	c.liveDirty = true
	c.g.liveBlocks--
	c.g.retired++
	// Retire-span bookkeeping for sampled runs: commit is serial, so this
	// needs no synchronisation and orders identically for any Workers count.
	n := c.g.retired - c.g.retireBase
	if n == 1 {
		c.g.retireFirstAt = c.g.commitCycle
	}
	if cap := c.g.retireCap; cap > 0 && n > cap && (n-1)%cap == 0 {
		// Retire number j·cap+1: a wave-phase-aligned turnover boundary.
		if c.g.retireSteadyAt == 0 {
			c.g.retireSteadyAt = c.g.commitCycle
		} else {
			c.g.retireWaveAt = c.g.commitCycle
			c.g.retireWaves++
		}
	}
	c.g.retireLastAt = c.g.commitCycle
	// Retirement always happens inside a commit phase, so commitCycle is the
	// current clock; earlier this event carried no timestamp at all, which
	// put every blockend at ts 0 in rendered traces.
	c.emit(Event{Cycle: c.g.commitCycle, Kind: EvBlockEnd, Core: int16(c.id),
		Block: int32(b.id), Warp: -1, A: uint64(b.id), B: uint64(c.g.commitCycle)})
	c.fillBlocks()
}

// liveWarps appends all not-Done warps across resident blocks to dst.
func (c *Core) liveWarps(dst []*Warp) []*Warp {
	for _, b := range c.blocks {
		for _, w := range b.warps {
			if w.state != WDone {
				dst = append(dst, w)
			}
		}
	}
	return dst
}

// emit buffers a trace event in the core's per-cycle event queue; the queue
// drains to the tracer when the core commits, so parallel compute phases
// reproduce the serial emission order exactly (all of core i's cycle-N
// events precede core i+1's).
func (c *Core) emit(e Event) {
	if c.g.tracer != nil {
		c.evBuf = append(c.evBuf, e)
	}
}

// flushEvents drains the buffered trace events in emission order.
func (c *Core) flushEvents() {
	if len(c.evBuf) == 0 {
		return
	}
	if t := c.g.tracer; t != nil {
		for i := range c.evBuf {
			t.Trace(c.evBuf[i])
		}
	}
	c.evBuf = c.evBuf[:0]
}

// tick advances the core one cycle serially: the compute phase immediately
// followed by the core's commit. The composition performs exactly the
// operation sequence of the pre-split single-phase tick; parallel runs call
// tickCompute and commit separately with a barrier in between.
func (c *Core) tick(now engine.Cycle) (issuedAny bool, next engine.Cycle) {
	issuedAny, next = c.tickCompute(now)
	c.commit(now)
	return issuedAny, next
}

// commit applies the core's buffered shared-state work for this cycle
// during its canonical serial turn: functional memory accesses, the
// suspended remainder of a memory instruction, block retirement, and trace
// flushing. Everything it touches is either shared (mem.System, shared TLB,
// functional memory, block dispatch counters, the tracer) or owned by this
// core; it never reads another core's private state.
//
// The composition runs the same per-subsystem batches GPU.Run's commit
// phase applies across all cores (DESIGN.md §14); for a single core the
// operation sequence is identical either way, which is what keeps the
// serial tick() path and unit tests equivalent to the run loop.
func (c *Core) commit(now engine.Cycle) {
	c.g.commitCycle = now
	c.commitFunc()
	c.commitTranslate()
	c.commitData()
	c.commitRetire()
	c.flushEvents()
}

// commitRetire runs the block retirement a compute-phase execExit deferred
// — the dispatch-counter batch of the commit phase. Retirement backfills
// fresh blocks from the grid, so it mutates the shared dispatch cursor
// (nextBlock/liveBlocks) and must stay in canonical core order.
func (c *Core) commitRetire() {
	if b := c.pendRetire; b != nil {
		c.pendRetire = nil
		b.maybeRetire()
	}
}

// phaseCompute runs one core's share of a simulation cycle up to the point
// where shared state would be touched, recording the outcome for the commit
// and aggregation passes. It reads and writes only core-private state plus
// immutable shared state (launch, config, the prewarmed translator), so any
// set of cores may run it concurrently.
func (c *Core) phaseCompute(now engine.Cycle) {
	if len(c.blocks) == 0 {
		// A blockless core can only regain blocks through its own
		// retireBlock, so it has nothing to do until the launch ends.
		c.tkKind = tkBlockless
		return
	}
	if c.skippable && now < c.wakeAt {
		// The core's warp set is frozen until wakeAt, so a real tick would
		// be a pure no-op; emulate its return value with a bounded warp
		// scan (the "hint" the pristine loop produced) instead of running
		// maintain/order/step. See DESIGN.md "Performance model" for the
		// exactness argument.
		ev := c.sleepCap
		anyWarp := false
		for _, b := range c.blocks {
			for _, w := range b.warps {
				if w.state == WDone {
					continue
				}
				anyWarp = true
				if w.state == WReady && w.readyAt > now && w.readyAt < ev {
					ev = w.readyAt
				}
			}
		}
		if anyWarp {
			c.tkKind = tkSkipped
			c.tkEv = ev
			return
		}
		// All warps drained with blocks still live: TBC bookkeeping is
		// pending, which only a real tick's maintain can run.
	}
	issued, ev := c.tickCompute(now)
	c.tkKind = tkTicked
	c.tkIssued = issued
	c.tkEv = ev
}

// tickCompute is the core-private half of a tick: issue up to IssueWidth
// ready warps in scheduler order, recording (not applying) any work that
// must reach shared structures. It reports whether anything issued and the
// next cycle at which this core has work to do.
func (c *Core) tickCompute(now engine.Cycle) (issuedAny bool, next engine.Cycle) {
	if len(c.blocks) == 0 {
		return false, noEvent
	}
	for _, b := range c.blocks {
		if b.tbc != nil {
			b.tbc.maintain(now)
		}
	}

	if c.liveDirty {
		c.warpBuf = c.liveWarps(c.warpBuf[:0])
		c.liveDirty = false
	}
	warps := c.warpBuf
	if len(warps) == 0 {
		// Blocks whose warps all finished retire in stepExit; reaching
		// here with live blocks but no warps means TBC bookkeeping has
		// pending work next maintain round.
		c.wakeAt = now + 1
		return false, now + 1
	}

	// The issue stage drains one warp instruction every IssuePeriod
	// cycles (WarpWidth lanes through an IssueWidth-wide pipeline).
	if c.nextIssue > now {
		next := c.nextIssue
		for _, w := range warps {
			if w.state == WReady && w.readyAt > now && w.readyAt < next {
				next = w.readyAt
			}
		}
		c.wakeAt, c.sleepCap = c.nextIssue, c.nextIssue
		return false, next
	}

	order := c.sched.order(now, warps)
	issued := 0
	memGated := false
	for _, w := range order {
		if issued >= 1 {
			break
		}
		if w.state != WReady || w.readyAt > now {
			continue
		}
		ok, gated := c.step(now, w)
		if gated {
			memGated = true
		}
		if ok {
			issued++
			c.lastIssued = w
		}
	}
	if issued > 0 {
		c.sched.afterIssue()
		c.nextIssue = now + engine.Cycle(c.g.cfg.IssuePeriod())
		c.wakeAt, c.sleepCap = c.nextIssue, c.nextIssue
		return true, c.nextIssue
	}

	// Nothing issued: find the next event.
	next = noEvent
	for _, w := range warps {
		if w.state == WReady && w.readyAt > now && w.readyAt < next {
			next = w.readyAt
		}
	}
	if memGated {
		if ev := c.mmu.NextEvent(now); ev != 0 && ev < next {
			next = ev
		}
		// Gated issue attempts observe per-candidate statistics, so the
		// core must really tick at every global step while blocked.
		c.wakeAt = now
	} else {
		c.wakeAt, c.sleepCap = next, noEvent
	}
	if next == noEvent {
		// All warps waiting on barriers/TBC with no timer: the releasing
		// event happens when another warp arrives, which requires some
		// warp to be runnable. If truly nothing is runnable the kernel
		// deadlocked; surface that via noEvent so Run can diagnose.
		for _, w := range warps {
			if w.state == WReady {
				c.wakeAt = now + 1
				return false, now + 1
			}
		}
	}
	return false, next
}

// step executes one instruction of warp w. It returns whether the warp
// issued and whether it was blocked by the MMU memory gate (blocking TLB
// semantics: memory instructions stall while walks are outstanding, but
// non-memory instructions from other warps proceed).
func (c *Core) step(now engine.Cycle, w *Warp) (issued, memGated bool) {
	in := &c.g.launch.Program.Code[w.curPC()]
	lanes := countLanes(w.curLanes())
	c.st.ActiveLanes.Observe(lanes)
	if c.g.tracer != nil {
		c.emit(Event{Cycle: now, Kind: EvIssue, Core: int16(c.id),
			Block: int32(w.block.id), Warp: int16(w.slot),
			A: uint64(w.curPC()), B: uint64(lanes)})
	}
	if in.Kind == kernels.KindLoad || in.Kind == kernels.KindStore {
		if !c.mmu.CanAcceptMemOp(now) {
			return false, true
		}
		c.execMemCompute(now, w, in)
		c.st.Instructions.Inc()
		return true, false
	}
	c.execCtrlOrALU(now, w, in)
	c.st.Instructions.Inc()
	return true, false
}
