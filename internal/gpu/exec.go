package gpu

import (
	"fmt"

	"gpummu/internal/engine"
	"gpummu/internal/kernels"
)

// special reads a special register value for thread t of block b.
func (c *Core) special(b *Block, t *Thread, s kernels.Special) uint64 {
	l := c.g.launch
	switch {
	case s == kernels.SpecGlobalTID:
		return uint64(b.id)*uint64(l.BlockDim) + uint64(t.btid)
	case s == kernels.SpecBlockTID:
		return uint64(t.btid)
	case s == kernels.SpecBlockID:
		return uint64(b.id)
	case s == kernels.SpecBlockDim:
		return uint64(l.BlockDim)
	case s == kernels.SpecGridDim:
		return uint64(l.Grid)
	case s == kernels.SpecLane:
		return uint64(int(t.btid) % c.g.cfg.WarpWidth)
	case s == kernels.SpecWarp:
		return uint64(int(t.btid) / c.g.cfg.WarpWidth)
	case s >= kernels.SpecParam0 && s < kernels.SpecParam0+kernels.NumParams:
		return l.Params[s-kernels.SpecParam0]
	}
	panic(fmt.Sprintf("gpu: unknown special %d", s))
}

// aluEval computes one ALU op for thread t.
func (c *Core) aluEval(b *Block, t *Thread, in *kernels.Instr) uint64 {
	a := t.regs[in.A]
	r := t.regs[in.B]
	imm := uint64(in.Imm)
	switch in.Op {
	case kernels.OpMov:
		return a
	case kernels.OpMovImm:
		return imm
	case kernels.OpAdd:
		return a + r
	case kernels.OpAddImm:
		return a + imm
	case kernels.OpSub:
		return a - r
	case kernels.OpMul:
		return a * r
	case kernels.OpMulImm:
		return a * imm
	case kernels.OpDiv:
		if r == 0 {
			return 0
		}
		return a / r
	case kernels.OpRem:
		if r == 0 {
			return 0
		}
		return a % r
	case kernels.OpAnd:
		return a & r
	case kernels.OpAndImm:
		return a & imm
	case kernels.OpOr:
		return a | r
	case kernels.OpXor:
		return a ^ r
	case kernels.OpShlImm:
		return a << (imm & 63)
	case kernels.OpShrImm:
		return a >> (imm & 63)
	case kernels.OpMin:
		if a < r {
			return a
		}
		return r
	case kernels.OpSltu:
		if a < r {
			return 1
		}
		return 0
	case kernels.OpSltuImm:
		if a < imm {
			return 1
		}
		return 0
	case kernels.OpSeq:
		if a == r {
			return 1
		}
		return 0
	case kernels.OpSeqImm:
		if a == imm {
			return 1
		}
		return 0
	case kernels.OpSpecial:
		return c.special(b, t, kernels.Special(in.Imm))
	}
	panic(fmt.Sprintf("gpu: unknown ALU op %d", in.Op))
}

// execCtrlOrALU executes one non-memory instruction for warp w at cycle now.
func (c *Core) execCtrlOrALU(now engine.Cycle, w *Warp, in *kernels.Instr) {
	b := w.block
	pc := w.curPC()
	switch in.Kind {
	case kernels.KindALU:
		for _, tid := range w.curLanes() {
			if tid == noLane {
				continue
			}
			t := &b.threads[tid]
			t.regs[in.Dst] = c.aluEval(b, t, in)
		}
		w.readyAt = now + 1
		c.advance(now, w, pc+1)

	case kernels.KindJump:
		w.readyAt = now + 1
		c.advance(now, w, in.Target)

	case kernels.KindBranch:
		c.execBranch(now, w, in)

	case kernels.KindBarrier:
		c.execBarrier(now, w)

	case kernels.KindExit:
		c.execExit(now, w)

	default:
		panic(fmt.Sprintf("gpu: unexpected instruction kind %d", in.Kind))
	}
}

// advance moves the warp to pc, then (under TBC) parks the warp if it
// reached its entry's reconvergence point.
func (c *Core) advance(now engine.Cycle, w *Warp, pc int32) {
	w.setPC(pc)
	if w.block.tbc != nil && w.state == WReady {
		w.block.tbc.checkReconverged(now, w)
	}
}

// branchTaken evaluates the branch condition for thread t.
func branchTaken(t *Thread, in *kernels.Instr) bool {
	v := t.regs[in.A]
	if in.Cond == kernels.CondZ {
		return v == 0
	}
	return v != 0
}

// execBranch handles a conditional branch: uniform branches just redirect;
// divergent ones go through the per-warp SIMT stack or block-wide TBC.
func (c *Core) execBranch(now engine.Cycle, w *Warp, in *kernels.Instr) {
	b := w.block
	pc := w.curPC()
	if b.tbc != nil {
		// Block-wide synchronisation: the warp parks until all running
		// warps of its TBC entry arrive at this branch.
		b.tbc.warpAtBranch(now, w, in, pc)
		return
	}

	lanes := w.curLanes()
	nT, nF := 0, 0
	for _, tid := range lanes {
		if tid == noLane {
			continue
		}
		if branchTaken(&b.threads[tid], in) {
			nT++
		} else {
			nF++
		}
	}
	w.readyAt = now + 1
	switch {
	case nF == 0:
		w.setPC(in.Target)
	case nT == 0:
		w.setPC(pc + 1)
	default:
		// Diverged: only now materialise the two lane sets — they are owned
		// by the pushed stack entries, so they must be freshly allocated,
		// but uniform branches (the common case) never pay for them.
		width := len(lanes)
		taken := make([]int32, width)
		fall := make([]int32, width)
		for i, tid := range lanes {
			taken[i], fall[i] = noLane, noLane
			if tid == noLane {
				continue
			}
			if branchTaken(&b.threads[tid], in) {
				taken[i] = tid
			} else {
				fall[i] = tid
			}
		}
		// The current context becomes the reconvergence continuation; push
		// the fall-through side, then the taken side (executed first).
		top := w.top()
		top.pc = in.Reconv
		if pc+1 != in.Reconv {
			w.stack = append(w.stack, simtEntry{pc: pc + 1, rpc: in.Reconv, lanes: fall})
		}
		if in.Target != in.Reconv {
			w.stack = append(w.stack, simtEntry{pc: in.Target, rpc: in.Reconv, lanes: taken})
		}
		w.reconverge()
	}
}

// execBarrier parks the warp until every live warp of the block arrives.
func (c *Core) execBarrier(now engine.Cycle, w *Warp) {
	b := w.block
	w.state = WBarrier
	b.barrierCount++
	c.emit(Event{Cycle: now, Kind: EvBarrier, Core: int16(c.id), Block: int32(b.id),
		Warp: int16(w.slot), A: uint64(w.curPC()), B: uint64(b.barrierCount)})
	if b.barrierCount < b.liveWarpCount() {
		return
	}
	// Everyone arrived: release.
	b.barrierCount = 0
	for _, o := range b.warps {
		if o.state == WBarrier {
			o.state = WReady
			o.readyAt = now + 1
			c.advance(now, o, o.curPC()+1)
		}
	}
}

// execExit terminates all active lanes of the warp. The lane list is
// snapshotted into the core's scratch buffer because removeThread mutates
// it in place.
func (c *Core) execExit(now engine.Cycle, w *Warp) {
	b := w.block
	c.exitBuf = append(c.exitBuf[:0], w.curLanes()...)
	for _, tid := range c.exitBuf {
		if tid == noLane {
			continue
		}
		t := &b.threads[tid]
		if !t.exited {
			t.exited = true
			b.liveThreads--
		}
		w.removeThread(tid)
	}
	w.readyAt = now + 1
	if b.tbc != nil {
		b.tbc.warpDrained(now, w)
	} else {
		w.reconverge()
	}
	// Retirement touches the GPU-wide dispatch state (liveBlocks, nextBlock)
	// and so waits for the core's commit turn.
	c.pendRetire = b
}
