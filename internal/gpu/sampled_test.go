package gpu

import (
	"reflect"
	"testing"

	"gpummu/internal/config"
	"gpummu/internal/ref"
	"gpummu/internal/stats"
	"gpummu/internal/workloads"
)

func TestSamplePlanParse(t *testing.T) {
	p, err := ParseSamplePlan("1000,5000,50000")
	if err != nil {
		t.Fatal(err)
	}
	want := SamplePlan{Warmup: 1000, Detail: 5000, FastForward: 50000}
	if p != want {
		t.Fatalf("got %+v want %+v", p, want)
	}
	if p.String() != "1000,5000,50000" {
		t.Fatalf("String: got %q", p.String())
	}
	if !p.Enabled() {
		t.Fatal("parsed plan should be enabled")
	}
	warm, err := ParseSamplePlan("1000,5000,50000,warm")
	if err != nil {
		t.Fatal(err)
	}
	if !warm.WarmTLB || warm.String() != "1000,5000,50000,warm" {
		t.Fatalf("warm plan: got %+v (%q)", warm, warm.String())
	}
	for _, bad := range []string{"", "1,2", "1,2,3,4", "1,2,3,cold", "a,b,c", "0,0,5", "0,5,0", "1,-2,3"} {
		if _, err := ParseSamplePlan(bad); err == nil {
			t.Fatalf("ParseSamplePlan(%q) should fail", bad)
		}
	}
	if (SamplePlan{}).Enabled() {
		t.Fatal("zero plan must be disabled")
	}
	if err := (SamplePlan{}).Validate(); err != nil {
		t.Fatalf("zero plan must validate: %v", err)
	}
}

// samplePlanSmall is sized for the small workloads under config.SmallTest
// (resident capacity 4 blocks, grids of a few hundred): windows long enough
// to observe full residency turnovers, fast-forward long enough to engage.
var samplePlanSmall = SamplePlan{Warmup: 1000, Detail: 4000, FastForward: 40000}

// runSampledOnce builds the workload fresh and runs it under the plan,
// returning the sampled stats, the end-of-run digests, and the sink.
func runSampledOnce(t *testing.T, name string, size workloads.Size, plan SamplePlan, workers int) (*stats.Sampled, *stats.Sim, uint64, uint64) {
	t.Helper()
	cfg := config.SmallTest()
	cfg.MMU = config.AugmentedMMU()
	w, err := workloads.Build(name, size, cfg.PageShift, 7)
	if err != nil {
		t.Fatal(err)
	}
	st := &stats.Sim{}
	g, err := New(cfg, w.AS, st)
	if err != nil {
		t.Fatal(err)
	}
	g.Workers = workers
	g.MaxCycles = 200_000_000
	_, smp, err := g.RunSampled(w.Launch, plan)
	if err != nil {
		t.Fatalf("%s sampled: %v", name, err)
	}
	if err := w.Check(); err != nil {
		t.Fatalf("%s sampled functional check: %v", name, err)
	}
	return smp, st, ref.MemDigest(w.AS), ref.PageTableDigest(w.AS.Mem, w.AS.PT.CR3())
}

// TestRunSampledExactArchitecturalState is the tentpole's correctness pin:
// a sampled run must leave memory and page tables byte-identical to a full
// detailed run of the same build, and the workload's functional check must
// pass — fast-forward advances architectural state exactly. Grids too small
// for the steady-state retire slope to mature (pathfinder/tiny fits on the
// cores whole; bfs/tiny retires fewer blocks than maturity needs) must
// degrade to exact execution, not guess.
func TestRunSampledExactArchitecturalState(t *testing.T) {
	cases := []struct {
		name string
		size workloads.Size
		ff   bool
	}{
		{"bfs", workloads.SizeSmall, true},
		{"memcached", workloads.SizeSmall, true},
		{"bfs", workloads.SizeTiny, false},
		{"pathfinder", workloads.SizeTiny, false},
	}
	for _, tc := range cases {
		cfg := config.SmallTest()
		cfg.MMU = config.AugmentedMMU()
		w, err := workloads.Build(tc.name, tc.size, cfg.PageShift, 7)
		if err != nil {
			t.Fatal(err)
		}
		st := &stats.Sim{}
		g, err := New(cfg, w.AS, st)
		if err != nil {
			t.Fatal(err)
		}
		g.MaxCycles = 200_000_000
		if _, err := g.Run(w.Launch); err != nil {
			t.Fatalf("%s exact: %v", tc.name, err)
		}
		exactMem := ref.MemDigest(w.AS)
		exactPT := ref.PageTableDigest(w.AS.Mem, w.AS.PT.CR3())

		smp, _, mem, pt := runSampledOnce(t, tc.name, tc.size, samplePlanSmall, 1)
		if mem != exactMem {
			t.Errorf("%s/%s: sampled MemDigest %#x != exact %#x", tc.name, tc.size, mem, exactMem)
		}
		if pt != exactPT {
			t.Errorf("%s/%s: sampled PageTableDigest %#x != exact %#x", tc.name, tc.size, pt, exactPT)
		}
		if (smp.FFBlocks > 0) != tc.ff {
			t.Errorf("%s/%s: FFBlocks=%d, expected fast-forward=%v", tc.name, tc.size, smp.FFBlocks, tc.ff)
		}
		if smp.FFBlocks > smp.TotalBlocks {
			t.Errorf("%s/%s: fast-forwarded %d of %d blocks", tc.name, tc.size, smp.FFBlocks, smp.TotalBlocks)
		}
	}
}

// TestRunSampledWarmTLBExactState pins that the opt-in TLB warming mode
// (touch replay into the TLB hierarchy) changes timing only: architectural
// state stays byte-identical to the exact run.
func TestRunSampledWarmTLBExactState(t *testing.T) {
	cfg := config.SmallTest()
	cfg.MMU = config.AugmentedMMU()
	w, err := workloads.Build("bfs", workloads.SizeSmall, cfg.PageShift, 7)
	if err != nil {
		t.Fatal(err)
	}
	st := &stats.Sim{}
	g, err := New(cfg, w.AS, st)
	if err != nil {
		t.Fatal(err)
	}
	g.MaxCycles = 200_000_000
	if _, err := g.Run(w.Launch); err != nil {
		t.Fatal(err)
	}
	exactMem := ref.MemDigest(w.AS)

	warm := samplePlanSmall
	warm.WarmTLB = true
	smp, _, mem, _ := runSampledOnce(t, "bfs", workloads.SizeSmall, warm, 1)
	if mem != exactMem {
		t.Errorf("warm sampled MemDigest %#x != exact %#x", mem, exactMem)
	}
	if smp.FFBlocks == 0 {
		t.Error("warm plan did not fast-forward")
	}
}

// TestRunSampledDeterministicAcrossWorkers pins that the sampled result —
// every interval, every estimate, and the end-of-run digests — is identical
// for -par 1, 2, and 8. Fast-forward runs on the coordinator goroutine
// between detailed segments whose boundaries are pure functions of sim
// state, so host parallelism must not leak in.
func TestRunSampledDeterministicAcrossWorkers(t *testing.T) {
	var first *stats.Sampled
	var firstMem, firstPT uint64
	var firstSummary string
	for _, workers := range []int{1, 2, 8} {
		smp, _, mem, pt := runSampledOnce(t, "bfs", workloads.SizeSmall, samplePlanSmall, workers)
		if first == nil {
			first, firstMem, firstPT = smp, mem, pt
			firstSummary = smp.Summary()
			continue
		}
		if !reflect.DeepEqual(smp, first) {
			t.Errorf("workers=%d: sampled stats differ from workers=1", workers)
		}
		if smp.Summary() != firstSummary {
			t.Errorf("workers=%d: summary differs:\n%s\nvs\n%s", workers, smp.Summary(), firstSummary)
		}
		if mem != firstMem || pt != firstPT {
			t.Errorf("workers=%d: digests differ", workers)
		}
	}
}

// TestRunSampledEstimates sanity-checks the extrapolation on a small run:
// instruction and cycle estimates within loose bounds of exact, detailed
// cycles strictly fewer than exact, and the zero plan rejected.
func TestRunSampledEstimates(t *testing.T) {
	cfg := config.SmallTest()
	cfg.MMU = config.AugmentedMMU()
	w, err := workloads.Build("bfs", workloads.SizeSmall, cfg.PageShift, 7)
	if err != nil {
		t.Fatal(err)
	}
	st := &stats.Sim{}
	g, err := New(cfg, w.AS, st)
	if err != nil {
		t.Fatal(err)
	}
	g.MaxCycles = 200_000_000
	exactCycles, err := g.Run(w.Launch)
	if err != nil {
		t.Fatal(err)
	}
	exactInstrs := st.Instructions.Value()

	smp, sst, _, _ := runSampledOnce(t, "bfs", workloads.SizeSmall, samplePlanSmall, 1)
	estInstr := smp.EstimatedInstructions()
	if rel := estInstr.RelErr(float64(exactInstrs)); rel > 0.25 {
		t.Errorf("estimated instructions %.0f vs exact %d: relative error %.1f%% > 25%%",
			estInstr.Value, exactInstrs, 100*rel)
	}
	if sst.Cycles != smp.DetailCycles {
		t.Errorf("Sim.Cycles %d != DetailCycles %d", sst.Cycles, smp.DetailCycles)
	}
	if smp.DetailCycles >= exactCycles {
		t.Errorf("sampled run simulated %d detailed cycles, not fewer than exact %d",
			smp.DetailCycles, exactCycles)
	}
	est := smp.EstimatedCycles()
	if est.Value <= 0 {
		t.Fatalf("estimated cycles %v", est)
	}
	rel := est.RelErr(float64(exactCycles))
	if rel > 0.25 {
		t.Errorf("estimated cycles %.0f vs exact %d: relative error %.1f%% > 25%%",
			est.Value, exactCycles, 100*rel)
	}
	if smp.DetailFraction() >= 1 {
		t.Errorf("detail fraction %.3f: nothing was fast-forwarded", smp.DetailFraction())
	}

	// RunSampled without a plan is an error; a disabled plan never validates
	// as runnable.
	if _, _, err := g.RunSampled(w.Launch, SamplePlan{}); err == nil {
		t.Fatal("RunSampled with zero plan should fail")
	}
}
