package gpu

import (
	"fmt"
	"io"

	"gpummu/internal/mem"
	"gpummu/internal/obs"
)

// ChromeTracer renders simulator events as Chrome trace-event JSON,
// loadable in Perfetto or chrome://tracing. Each core gets two tracks: an
// execution track (issues, barriers, compaction, block retirement) and a
// walker track (TLB misses rendered as walk spans). Counter tracks (IPC,
// TLB miss rate, occupancy, per-L2-slice traffic) are appended at every
// sampler boundary when a Sampler is attached.
//
// Events reach the tracer from the serial commit phase in canonical core
// order, and obs.TraceWriter writes fixed-order fields, so the bytes
// produced are identical for any -par worker count — the property
// TestChromeTraceGoldenAcrossPar pins.
type ChromeTracer struct {
	tw     *obs.TraceWriter
	prev   obs.Sample
	slices []mem.SliceStat // previous per-slice snapshot for counter deltas
}

// Track layout: tid 0 carries the counter tracks, then each core owns a
// pair of thread tracks.
func coreTID(core int16) int   { return 2*int(core) + 1 }
func walkerTID(core int16) int { return 2*int(core) + 2 }

// NewChromeTracer starts a Chrome trace on w for a machine with cores
// shader cores, emitting the process/thread naming metadata upfront.
// Attach it with SetTracer and Close it after the run.
func NewChromeTracer(w io.Writer, cores int) *ChromeTracer {
	ct := &ChromeTracer{tw: obs.NewTraceWriter(w)}
	ct.tw.Meta(0, 0, "process_name", "gpummu")
	ct.tw.Meta(0, 0, "thread_name", "counters")
	for i := 0; i < cores; i++ {
		ct.tw.Meta(0, coreTID(int16(i)), "thread_name", fmt.Sprintf("core %d", i))
		ct.tw.Meta(0, walkerTID(int16(i)), "thread_name", fmt.Sprintf("core %d walkers", i))
	}
	return ct
}

// Trace implements Tracer.
func (ct *ChromeTracer) Trace(e Event) {
	ts := uint64(e.Cycle)
	switch e.Kind {
	case EvIssue:
		ct.tw.Instant(0, coreTID(e.Core), ts, "issue",
			fmt.Sprintf(`"block":%d,"warp":%d,"pc":%d,"lanes":%d`, e.Block, e.Warp, e.A, e.B))
	case EvTLBMiss:
		// B is the walk completion cycle: render the whole outstanding walk
		// as a span on the core's walker track.
		dur := uint64(0)
		if e.B > ts {
			dur = e.B - ts
		}
		ct.tw.Complete(0, walkerTID(e.Core), ts, dur, "walk",
			fmt.Sprintf(`"block":%d,"warp":%d,"vpn":%d`, e.Block, e.Warp, e.A))
	case EvWalkDone:
		ct.tw.Instant(0, walkerTID(e.Core), ts, "walkdone",
			fmt.Sprintf(`"vpn":%d,"latency":%d`, e.A, e.B))
	case EvBarrier:
		ct.tw.Instant(0, coreTID(e.Core), ts, "barrier",
			fmt.Sprintf(`"block":%d,"warp":%d,"pc":%d,"arrived":%d`, e.Block, e.Warp, e.A, e.B))
	case EvCompact:
		ct.tw.Instant(0, coreTID(e.Core), ts, "compact",
			fmt.Sprintf(`"block":%d,"rpc":%d,"lanes":%d`, e.Block, e.A, e.B))
	case EvBlockEnd:
		ct.tw.Instant(0, coreTID(e.Core), ts, "blockend", fmt.Sprintf(`"block":%d`, e.A))
	default:
		ct.tw.Instant(0, coreTID(e.Core), ts, e.Kind.String(),
			fmt.Sprintf(`"a":%d,"b":%d`, e.A, e.B))
	}
}

// counterSample appends the counter tracks for one sampler row: rates from
// the row itself plus per-L2-slice traffic as deltas over the interval.
func (ct *ChromeTracer) counterSample(smp obs.Sample, slices []mem.SliceStat) {
	ts := smp.Cycle
	ct.tw.Counter(0, ts, "ipc", smp.IPCSince(ct.prev))
	ct.tw.Counter(0, ts, "tlb_missrate", smp.TLBMissRate())
	ct.tw.Counter(0, ts, "live_blocks", float64(smp.LiveBlocks))
	ct.tw.Counter(0, ts, "active_warps", float64(smp.ActiveWarps))
	ct.tw.Counter(0, ts, "walkers_busy", float64(smp.WalkersBusy))
	ct.tw.Counter(0, ts, "mshrs_used", float64(smp.MSHRsUsed))
	ct.tw.Counter(0, ts, "icnt_util", smp.IcntUtil)
	ct.tw.Counter(0, ts, "dram_util", smp.DRAMUtil)
	for i, s := range slices {
		var prev uint64
		if i < len(ct.slices) {
			prev = ct.slices[i].Accesses
		}
		ct.tw.Counter(0, ts, fmt.Sprintf("l2.slice%d", i), float64(s.Accesses-prev))
	}
	ct.slices = append(ct.slices[:0], slices...)
	ct.prev = smp
}

// Err reports the first underlying write error, if any.
func (ct *ChromeTracer) Err() error { return ct.tw.Err() }

// Close terminates the trace JSON and flushes it. Idempotent.
func (ct *ChromeTracer) Close() error { return ct.tw.Close() }
