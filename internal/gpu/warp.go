package gpu

import (
	"gpummu/internal/config"
	"gpummu/internal/engine"
	"gpummu/internal/kernels"
)

// wstate is a warp's scheduling state.
type wstate uint8

// Warp states.
const (
	WReady   wstate = iota // may issue when readyAt passes
	WBarrier               // waiting at a block-wide barrier
	WTBCWait               // waiting for block-wide branch synchronisation
	WDone                  // all lanes exited
)

// noLane marks an empty SIMD lane.
const noLane = int32(-1)

// simtEntry is one level of a per-warp reconvergence stack: an execution
// context (pc + active lanes) that resumes when control reaches rpc.
type simtEntry struct {
	pc    int32
	rpc   int32 // reconvergence pc; -1 for the root entry (never matches)
	lanes []int32
}

// Warp is the minimum scheduling unit: up to WarpWidth threads executing in
// lock-step. Under classic divergence handling the warp carries a SIMT
// stack; under TBC the warp is a flat lane assignment owned by a tbcEntry.
type Warp struct {
	block *Block
	slot  int // core-level scheduler slot (original warp id for static warps)

	state   wstate
	readyAt engine.Cycle

	// Stack mode: stack[len-1] is the executing context.
	stack []simtEntry

	// TBC mode: flat context plus owner entry.
	pc    int32
	lanes []int32
	entry *tbcEntry
}

// top returns the executing stack entry (stack mode only).
func (w *Warp) top() *simtEntry { return &w.stack[len(w.stack)-1] }

// curPC returns the warp's current program counter.
func (w *Warp) curPC() int32 {
	if w.entry != nil || w.stack == nil {
		return w.pc
	}
	return w.top().pc
}

// curLanes returns the active lane assignment.
func (w *Warp) curLanes() []int32 {
	if w.entry != nil || w.stack == nil {
		return w.lanes
	}
	return w.top().lanes
}

// setPC moves the warp to pc and, in stack mode, pops any entries whose
// reconvergence point has been reached.
func (w *Warp) setPC(pc int32) {
	if w.entry != nil || w.stack == nil {
		w.pc = pc
		return
	}
	w.top().pc = pc
	w.reconverge()
}

// reconverge pops completed stack entries: contexts that reached their rpc
// and contexts whose lanes have all exited.
func (w *Warp) reconverge() {
	for len(w.stack) > 0 {
		t := w.top()
		if t.rpc >= 0 && t.pc == t.rpc {
			w.stack = w.stack[:len(w.stack)-1]
			continue
		}
		if countLanes(t.lanes) == 0 {
			w.stack = w.stack[:len(w.stack)-1]
			continue
		}
		return
	}
	w.state = WDone
	w.block.core.liveDirty = true
}

// removeThread erases a thread from every context of the warp (thread
// exit). In stack mode it walks all entries; in TBC mode just the lanes.
func (w *Warp) removeThread(tid int32) {
	if w.entry != nil || w.stack == nil {
		clearLane(w.lanes, tid)
		return
	}
	for i := range w.stack {
		clearLane(w.stack[i].lanes, tid)
	}
}

func clearLane(lanes []int32, tid int32) {
	for i, t := range lanes {
		if t == tid {
			lanes[i] = noLane
		}
	}
}

func countLanes(lanes []int32) int {
	n := 0
	for _, t := range lanes {
		if t != noLane {
			n++
		}
	}
	return n
}

// Block is one resident thread block: its threads' architectural state and
// the warps currently executing them.
type Block struct {
	core    *Core
	id      int // grid-wide block id
	slotIdx int // residency slot on the core (warp slot base / warpsPerBlock)

	threads     []Thread
	warps       []*Warp
	liveThreads int

	barrierCount int
	tbc          *tbcState
}

// Thread is one thread's architectural state.
type Thread struct {
	regs     [kernels.NumRegs]uint64
	exited   bool
	btid     int32 // thread id within the block
	origWarp int   // core-level slot of the thread's original warp
}

func newBlock(c *Core, id, slotIdx int) *Block {
	l := c.g.launch
	width := c.g.cfg.WarpWidth
	nWarps := c.warpsPerBlock()
	b := &Block{
		core:        c,
		id:          id,
		slotIdx:     slotIdx,
		threads:     make([]Thread, l.BlockDim),
		liveThreads: l.BlockDim,
	}
	slotBase := slotIdx * nWarps
	for i := range b.threads {
		t := &b.threads[i]
		t.btid = int32(i)
		t.origWarp = slotBase + i/width
	}
	for wi := 0; wi < nWarps; wi++ {
		lanes := make([]int32, width)
		for l := range lanes {
			tid := wi*width + l
			if tid < len(b.threads) {
				lanes[l] = int32(tid)
			} else {
				lanes[l] = noLane
			}
		}
		w := &Warp{block: b, slot: slotBase + wi, state: WReady}
		if c.g.cfg.TBC.Mode == config.DivStack {
			w.stack = []simtEntry{{pc: 0, rpc: -1, lanes: lanes}}
		} else {
			w.pc = 0
			w.lanes = lanes
		}
		b.warps = append(b.warps, w)
	}
	if c.g.cfg.TBC.Mode != config.DivStack {
		b.tbc = newTBCState(b)
	}
	return b
}

// liveWarpCount counts warps that have not finished.
func (b *Block) liveWarpCount() int {
	n := 0
	for _, w := range b.warps {
		if w.state != WDone {
			n++
		}
	}
	return n
}

// maybeRetire retires the block once every thread exited.
func (b *Block) maybeRetire() {
	if b.liveThreads == 0 && b.liveWarpCount() == 0 {
		b.core.retireBlock(b)
	}
}
