package gpu

import (
	"gpummu/internal/engine"
	"gpummu/internal/obs"
	"gpummu/internal/stats"
)

// This file wires the observability layer (internal/obs) into the machine:
// abort classification, interval sampling, and end-of-run metrics
// collection. Everything here runs outside the per-cycle hot path — at
// sample boundaries, at run end, or when a run is already failing.

// abort wraps a run-stopping condition into the typed obs.AbortError,
// capturing the diagnostic state dump at the failing cycle.
func (g *GPU) abort(cause error, now engine.Cycle, msg string) error {
	return &obs.AbortError{Cause: cause, Cycle: uint64(now), Msg: msg, Dump: g.dumpState(now)}
}

// progressEvery returns the Progress callback cadence in cycles.
func (g *GPU) progressEvery() uint64 {
	if g.ProgressEvery != 0 {
		return g.ProgressEvery
	}
	return 1 << 20
}

// foldInstructions sums retired instructions across the global sink and
// every core shard (shards merge only at run end, so mid-run totals need
// both).
func (g *GPU) foldInstructions() uint64 {
	n := g.st.Instructions.Value()
	for _, c := range g.cores {
		n += c.st.Instructions.Value()
	}
	return n
}

// sample records one time-series row at cycle now. It runs between the
// commit and aggregation passes, reads simulation state strictly read-only
// (MMU occupancy deliberately avoids the pruning accessors), and therefore
// records identical rows for any Workers count.
func (g *GPU) sample(now engine.Cycle) {
	smp := obs.Sample{Cycle: uint64(now), LiveBlocks: g.liveBlocks}
	g.foldSample(&smp, g.st)
	for _, c := range g.cores {
		g.foldSample(&smp, c.st)
		for _, b := range c.blocks {
			smp.ActiveWarps += b.liveWarpCount()
		}
		wb, mu := c.mmu.Occupancy(now)
		smp.WalkersBusy += wb
		smp.MSHRsUsed += mu
	}
	var from engine.Cycle
	if last, ok := g.Sampler.Last(); ok {
		from = engine.Cycle(last.Cycle)
	}
	smp.IcntUtil = g.sys.IcntUtilization(from, now)
	smp.DRAMUtil = g.sys.DRAMUtilization(from, now)
	g.Sampler.Record(smp)
	if ct, ok := g.tracer.(*ChromeTracer); ok {
		ct.counterSample(smp, g.sys.SliceStats())
	}
}

// foldSample adds one statistics sink's cumulative counters into a sample
// row. The global sink and the per-core shards cover disjoint fields, so
// summing every sink yields the run totals at this cycle.
func (g *GPU) foldSample(smp *obs.Sample, st *stats.Sim) {
	smp.Instructions += st.Instructions.Value()
	smp.MemInstrs += st.MemInstrs.Value()
	smp.TLBAccesses += st.TLBAccesses.Value()
	smp.TLBHits += st.TLBHits.Value()
	smp.TLBMisses += st.TLBMisses.Value()
	smp.L1Accesses += st.L1Accesses.Value()
	smp.L1Misses += st.L1Misses.Value()
	smp.L2Accesses += st.L2Accesses.Value()
	smp.L2Misses += st.L2Misses.Value()
	smp.Walks += st.Walks.Value()
}

// collectCoreMetrics snapshots one core's per-run statistics shard into the
// labelled registry, called from mergeShards just before the shard folds
// into the global sink and clears. Per-core counters Add (accumulating over
// repeated Runs exactly like the global sink); per-walker counts are
// cumulative in the MMU, so they Set.
func (g *GPU) collectCoreMetrics(i int, c *Core) {
	r := g.Metrics
	cl := obs.LabelInt("core", i)
	r.Counter(obs.Name("core.instructions", cl)).Add(c.st.Instructions.Value())
	r.Counter(obs.Name("core.mem_instrs", cl)).Add(c.st.MemInstrs.Value())
	r.Counter(obs.Name("core.idle_cycles", cl)).Add(c.st.IdleCycles.Value())
	r.Counter(obs.Name("core.tlb.accesses", cl)).Add(c.st.TLBAccesses.Value())
	r.Counter(obs.Name("core.tlb.hits", cl)).Add(c.st.TLBHits.Value())
	r.Counter(obs.Name("core.tlb.misses", cl)).Add(c.st.TLBMisses.Value())
	r.Counter(obs.Name("core.l1.accesses", cl)).Add(c.st.L1Accesses.Value())
	r.Counter(obs.Name("core.l1.misses", cl)).Add(c.st.L1Misses.Value())
	r.Counter(obs.Name("core.walks", cl)).Add(c.st.Walks.Value())
	for wi, n := range c.mmu.WalkerWalks() {
		r.Counter(obs.Name("walker.walks", cl, obs.LabelInt("walker", wi))).Set(n)
	}
}

// collectSystemMetrics snapshots the shared memory system's per-L2-slice
// breakdown. Slice counters are cumulative over the System's lifetime, so
// they Set.
func (g *GPU) collectSystemMetrics() {
	r := g.Metrics
	for si, s := range g.sys.SliceStats() {
		sl := obs.LabelInt("slice", si)
		r.Counter(obs.Name("l2.accesses", sl)).Set(s.Accesses)
		r.Counter(obs.Name("l2.hits", sl)).Set(s.Hits)
		r.Counter(obs.Name("l2.misses", sl)).Set(s.Misses)
		r.Counter(obs.Name("l2.walk_refs", sl)).Set(s.Walks)
	}
}
