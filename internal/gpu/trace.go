package gpu

import (
	"fmt"
	"io"

	"gpummu/internal/engine"
)

// EventKind classifies a trace event.
type EventKind uint8

// Trace event kinds.
const (
	EvIssue    EventKind = iota // warp issued an instruction
	EvTLBMiss                   // a page request missed the TLB
	EvWalkDone                  // a page table walk completed
	EvBarrier                   // a warp arrived at a barrier
	EvCompact                   // TBC formed a dynamic warp
	EvBlockEnd                  // a thread block retired
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvIssue:
		return "issue"
	case EvTLBMiss:
		return "tlbmiss"
	case EvWalkDone:
		return "walkdone"
	case EvBarrier:
		return "barrier"
	case EvCompact:
		return "compact"
	case EvBlockEnd:
		return "blockend"
	}
	return fmt.Sprintf("ev(%d)", k)
}

// Event is one trace record. Meaning of A/B depends on the kind:
//
//	issue:    A = pc, B = active lanes
//	tlbmiss:  A = vpn, B = walk completion cycle
//	walkdone: A = vpn, B = latency
//	barrier:  A = pc, B = arrivals so far
//	compact:  A = entry rpc, B = lanes in the new warp
//	blockend: A = block id, B = cycles since launch
type Event struct {
	Cycle engine.Cycle
	Kind  EventKind
	Core  int16
	Block int32
	Warp  int16 // scheduler slot; -1 when not applicable
	A, B  uint64
}

// String renders one line per event, stable for tooling.
func (e Event) String() string {
	return fmt.Sprintf("%10d %-8s core=%d block=%d warp=%d a=%#x b=%d",
		e.Cycle, e.Kind, e.Core, e.Block, e.Warp, e.A, e.B)
}

// Tracer receives simulation events. Implementations must be cheap: the
// simulator calls them from the issue path.
type Tracer interface {
	Trace(Event)
}

// RingTracer keeps the most recent N events in a ring buffer — the default
// tracer for post-mortem inspection without unbounded memory.
type RingTracer struct {
	buf   []Event
	next  int
	total uint64
}

// NewRingTracer creates a tracer retaining the last capacity events.
func NewRingTracer(capacity int) *RingTracer {
	if capacity < 1 {
		panic("gpu: RingTracer capacity must be >= 1")
	}
	return &RingTracer{buf: make([]Event, 0, capacity)}
}

// Trace implements Tracer.
func (r *RingTracer) Trace(e Event) {
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % cap(r.buf)
}

// Total reports how many events were observed (including overwritten).
func (r *RingTracer) Total() uint64 { return r.total }

// Events returns the retained events in arrival order.
func (r *RingTracer) Events() []Event {
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Dump writes the retained events, one per line.
func (r *RingTracer) Dump(w io.Writer) error {
	for _, e := range r.Events() {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	return nil
}

// WriterTracer streams every event to an io.Writer (full traces; large).
type WriterTracer struct {
	W   io.Writer
	err error
}

// Trace implements Tracer.
func (t *WriterTracer) Trace(e Event) {
	if t.err != nil {
		return
	}
	_, t.err = fmt.Fprintln(t.W, e)
}

// Err reports the first write error, if any.
func (t *WriterTracer) Err() error { return t.err }

// FilterTracer forwards only selected kinds to another tracer.
type FilterTracer struct {
	Next Tracer
	Keep map[EventKind]bool
}

// Trace implements Tracer.
func (f *FilterTracer) Trace(e Event) {
	if f.Keep[e.Kind] {
		f.Next.Trace(e)
	}
}

// SetTracer attaches a tracer to the GPU (nil detaches). Tracing costs a
// few percent of simulation speed; attach only when inspecting runs.
func (g *GPU) SetTracer(t Tracer) { g.tracer = t }

// emit sends an event if a tracer is attached.
func (g *GPU) emit(e Event) {
	if g.tracer != nil {
		g.tracer.Trace(e)
	}
}
