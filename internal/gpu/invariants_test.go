package gpu

import (
	"errors"
	"testing"

	"gpummu/internal/config"
	"gpummu/internal/engine"
	"gpummu/internal/obs"
	"gpummu/internal/stats"
	"gpummu/internal/workloads"
)

// runInvariants builds a workload fresh and runs it with the invariant
// checker on — the "clean machine passes its own audit" half of the
// checker's contract.
func runInvariants(t *testing.T, name string, cfg config.Hardware, workers int) {
	t.Helper()
	w, err := workloads.Build(name, workloads.SizeTiny, cfg.PageShift, 7)
	if err != nil {
		t.Fatal(err)
	}
	st := &stats.Sim{}
	g, err := New(cfg, w.AS, st)
	if err != nil {
		t.Fatal(err)
	}
	g.MaxCycles = 100_000_000
	g.Invariants = true
	g.Workers = workers
	if _, err := g.Run(w.Launch); err != nil {
		t.Fatalf("%s with invariants: %v", name, err)
	}
}

// TestInvariantsCleanAcrossModes drives the checker over the design space:
// MMU variants, scheduler families, divergence modes, and serial vs parallel
// ticking must all pass the audit.
func TestInvariantsCleanAcrossModes(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*config.Hardware)
	}{
		{"no-mmu", func(c *config.Hardware) {}},
		{"naive", func(c *config.Hardware) { c.MMU = config.NaiveMMU(4) }},
		{"augmented", func(c *config.Hardware) { c.MMU = config.AugmentedMMU() }},
		{"shared-tlb", func(c *config.Hardware) {
			c.MMU = config.AugmentedMMU()
			c.MMU.SharedTLBEntries = 256
		}},
		{"gto", func(c *config.Hardware) { c.MMU = config.AugmentedMMU(); c.Sched.Policy = config.SchedGTO }},
		{"ccws", func(c *config.Hardware) { c.MMU = config.AugmentedMMU(); c.Sched.Policy = config.SchedCCWS }},
		{"tbc", func(c *config.Hardware) { c.MMU = config.AugmentedMMU(); c.TBC.Mode = config.DivTBC }},
		{"tlb-tbc", func(c *config.Hardware) { c.MMU = config.AugmentedMMU(); c.TBC.Mode = config.DivTLBTBC }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := config.SmallTest()
			tc.mutate(&cfg)
			runInvariants(t, "bfs", cfg, 1)
		})
	}
	t.Run("parallel", func(t *testing.T) {
		cfg := config.SmallTest()
		cfg.MMU = config.AugmentedMMU()
		runInvariants(t, "bfs", cfg, 8)
	})
}

// blockFixture builds a machine with one manually dispatched block so the
// corruption tests can mutate live SIMT state directly.
func blockFixture(t *testing.T, mode config.DivergenceMode) (*GPU, *Core, *Block) {
	t.Helper()
	cfg := config.SmallTest()
	cfg.MMU = config.AugmentedMMU()
	cfg.TBC.Mode = mode
	w, err := workloads.Build("bfs", workloads.SizeTiny, cfg.PageShift, 7)
	if err != nil {
		t.Fatal(err)
	}
	st := &stats.Sim{}
	g, err := New(cfg, w.AS, st)
	if err != nil {
		t.Fatal(err)
	}
	g.launch = w.Launch
	c := g.cores[0]
	b := newBlock(c, 0, 0)
	c.blocks = append(c.blocks, b)
	if err := g.checkInvariants(0); err != nil {
		t.Fatalf("fresh block fails audit: %v", err)
	}
	return g, c, b
}

// TestInvariantDetectsCorruption injects each class of corruption into live
// machine state and asserts the audit reports it.
func TestInvariantDetectsCorruption(t *testing.T) {
	t.Run("live-thread-count", func(t *testing.T) {
		g, _, b := blockFixture(t, config.DivStack)
		b.liveThreads++
		if err := g.checkInvariants(0); err == nil {
			t.Fatal("audit missed corrupted liveThreads")
		}
	})
	t.Run("stack-pc-out-of-range", func(t *testing.T) {
		g, _, b := blockFixture(t, config.DivStack)
		b.warps[0].top().pc = int32(len(g.launch.Program.Code)) + 5
		if err := g.checkInvariants(0); err == nil {
			t.Fatal("audit missed out-of-range pc")
		}
	})
	t.Run("duplicate-lane", func(t *testing.T) {
		g, _, b := blockFixture(t, config.DivStack)
		lanes := b.warps[0].top().lanes
		if len(lanes) < 2 {
			t.Skip("warp too narrow")
		}
		lanes[1] = lanes[0]
		if err := g.checkInvariants(0); err == nil {
			t.Fatal("audit missed duplicated thread in lane set")
		}
	})
	t.Run("exited-thread-in-lanes", func(t *testing.T) {
		g, _, b := blockFixture(t, config.DivStack)
		tid := b.warps[0].top().lanes[0]
		b.threads[tid].exited = true
		b.liveThreads--
		if err := g.checkInvariants(0); err == nil {
			t.Fatal("audit missed exited thread still in lanes")
		}
	})
	t.Run("barrier-count", func(t *testing.T) {
		g, _, b := blockFixture(t, config.DivStack)
		b.barrierCount = 3
		if err := g.checkInvariants(0); err == nil {
			t.Fatal("audit missed inconsistent barrierCount")
		}
	})
	t.Run("tbc-double-ownership", func(t *testing.T) {
		g, _, b := blockFixture(t, config.DivTBC)
		if len(b.warps) < 2 {
			t.Skip("need two warps")
		}
		b.warps[1].lanes[0] = b.warps[0].lanes[0]
		if err := g.checkInvariants(0); err == nil {
			t.Fatal("audit missed thread owned by two warps")
		}
	})
	t.Run("stale-tlb-entry", func(t *testing.T) {
		g, c, _ := blockFixture(t, config.DivStack)
		// Install a translation whose physical base disagrees with the page
		// table (the VA is mapped; the cached pbase is bogus).
		va := g.as.HeapBase()
		vpn := g.tr.VPN(va)
		wrong := g.tr.Lookup(va).PageBase() ^ (1 << 12)
		c.mmu.TLB().Fill(0, vpn, wrong, -1)
		if err := g.checkInvariants(0); err == nil {
			t.Fatal("audit missed TLB entry disagreeing with page table")
		}
	})
}

// TestInvariantAbortWiring verifies a violation surfaces through Run as a
// typed AbortError matching obs.ErrInvariant: a Progress hook poisons a TLB
// entry mid-run, and the audit must stop the simulation.
func TestInvariantAbortWiring(t *testing.T) {
	cfg := config.SmallTest()
	cfg.MMU = config.AugmentedMMU()
	w, err := workloads.Build("pointerchase", workloads.SizeTiny, cfg.PageShift, 7)
	if err != nil {
		t.Fatal(err)
	}
	st := &stats.Sim{}
	g, err := New(cfg, w.AS, st)
	if err != nil {
		t.Fatal(err)
	}
	g.MaxCycles = 100_000_000
	g.Invariants = true
	g.ProgressEvery = 1024
	poisoned := false
	g.Progress = func(obs.Progress) {
		// Poison the first valid TLB entry on every callback so an eviction
		// cannot wash the corruption out before an audit runs. The wrong base
		// derives from the page-table truth, so re-poisoning is idempotent.
		mmu := g.cores[0].mmu
		first := true
		mmu.TLB().ForEachValid(func(vpn, _ uint64, _ engine.Cycle) {
			if first {
				want := g.tr.Lookup(vpn << g.tr.PageShift()).PageBase()
				mmu.TLB().Fill(0, vpn, want^(1<<12), -1)
				poisoned = true
				first = false
			}
		})
	}
	_, runErr := g.Run(w.Launch)
	if !poisoned {
		t.Skip("run too short to poison a TLB entry")
	}
	if runErr == nil {
		t.Fatal("poisoned run completed without an invariant abort")
	}
	if !errors.Is(runErr, obs.ErrInvariant) {
		t.Fatalf("abort cause = %v, want obs.ErrInvariant", runErr)
	}
	var ae *obs.AbortError
	if !errors.As(runErr, &ae) {
		t.Fatalf("error %T is not an *obs.AbortError", runErr)
	}
}
