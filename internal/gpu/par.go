package gpu

import (
	"runtime"
	"sync/atomic"

	"gpummu/internal/engine"
)

// corePool runs the per-core compute phase of each simulation cycle on a
// set of persistent worker goroutines. Each worker owns a static contiguous
// range of cores, so a core's private state is only ever touched by one
// goroutine per phase and cache lines stay warm across cycles.
//
// Synchronisation is an epoch barrier over sync/atomic values, chosen over
// channels because the barrier fires every simulated cycle: the coordinator
// publishes the cycle and bumps epoch (release); each worker observes the
// bump (acquire), runs its range, and stores the epoch to its own padded
// done slot (release); the coordinator spins until every done slot matches
// (acquire). Atomic operations carry happens-before edges under the Go
// memory model, so the pool is race-detector-clean; runtime.Gosched in the
// spin loops keeps oversubscribed hosts making progress.
type corePool struct {
	g     *GPU
	now   engine.Cycle // published before each epoch bump
	quit  bool         // published before the final epoch bump
	epoch atomic.Uint64
	done  []poolSlot
}

// poolSlot pads each worker's done counter to its own cache line so the
// coordinator's polling never contends with another worker's store.
type poolSlot struct {
	v atomic.Uint64
	_ [56]byte
}

// newCorePool starts n workers over g's cores, split into n contiguous
// ranges. Callers guarantee 1 < n <= len(g.cores).
func newCorePool(g *GPU, n int) *corePool {
	p := &corePool{g: g, done: make([]poolSlot, n)}
	nc := len(g.cores)
	for i := 0; i < n; i++ {
		go p.worker(i, i*nc/n, (i+1)*nc/n)
	}
	return p
}

func (p *corePool) worker(id, lo, hi int) {
	seen := uint64(0)
	for {
		for p.epoch.Load() == seen {
			runtime.Gosched()
		}
		seen++ // the coordinator bumps by exactly one per barrier
		if p.quit {
			p.done[id].v.Store(seen)
			return
		}
		now := p.now
		for _, c := range p.g.cores[lo:hi] {
			c.phaseCompute(now)
		}
		p.done[id].v.Store(seen)
	}
}

// cycle runs one compute phase across all workers and returns once every
// core's phaseCompute has completed (and its effects are visible to the
// coordinator goroutine).
func (p *corePool) cycle(now engine.Cycle) {
	p.now = now
	e := p.epoch.Add(1)
	for i := range p.done {
		for p.done[i].v.Load() != e {
			runtime.Gosched()
		}
	}
}

// stop terminates the workers and waits for them to exit the barrier.
func (p *corePool) stop() {
	p.quit = true
	e := p.epoch.Add(1)
	for i := range p.done {
		for p.done[i].v.Load() != e {
			runtime.Gosched()
		}
	}
}
