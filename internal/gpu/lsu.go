package gpu

import (
	"gpummu/internal/core"
	"gpummu/internal/engine"
	"gpummu/internal/kernels"
	"gpummu/internal/mem"
)

// lineReq is one coalesced cache-line access of a warp memory instruction.
type lineReq struct {
	lineVA  uint64 // virtual address >> lineShift
	pageIdx int    // index into the instruction's PageReq/PageResult slices
}

// pendAccess snapshots one lane's functional access for commit-time replay.
// The snapshot is taken during coalescing because the warp's lane list can
// be compacted away before the commit runs; the thread's registers are
// core-private and stable between the two phases, so (thread, va) suffices.
type pendAccess struct {
	t  *Thread
	va uint64
}

// pendMiss is one L1 miss whose memory-system access was deferred: the
// compute phase resolved everything up to the MSHR gate (which depends on
// completion cycles only the shared memory system can provide).
type pendMiss struct {
	startBase engine.Cycle // port grant + L1 latency; MSHR wait applies on top
	pa        uint64
}

// memScratch holds execMem's per-instruction coalescing buffers. Each Core
// owns exactly one and reuses it across instructions, so the steady-state
// memory path performs no heap allocation. The buffers must never be shared
// across cores (see DESIGN.md "Performance model").
type memScratch struct {
	lines    []lineReq
	reqs     []core.PageReq
	results  []core.PageResult
	warpSets [][]int      // per-page Warps backing arrays, parallel to reqs
	warpBits []uint64     // per-page origWarp bitsets, words uint64s per page
	words    int          // bitset words per page: ceil(WarpsPerCore/64)
	accs     []pendAccess // functional accesses deferred to commit
	misses   []pendMiss   // L1 misses deferred to commit (all-TLB-hit path)
}

// pendMem is the suspended remainder of the memory instruction a core
// issued this cycle (at most one: cores issue a single instruction per
// tick). tlbDone distinguishes the two suspension points: either every page
// hit the TLB and only the deferred misses in scratch remain, or translation
// itself suspended at its first TLB miss and the whole downstream path —
// remaining lookups, result hooks, and the L1 line loop — runs at commit.
type pendMem struct {
	active  bool
	tlbDone bool
	w       *Warp
	in      *kernels.Instr
	at      engine.Cycle // issue cycle
	ls      core.LookupState
	done    engine.Cycle // all-hit path: max completion over compute-resolved lines
	// maxReady carries the slowest walk completion from the translate batch
	// to the data batch on the suspended path (commitTranslate computes it,
	// commitData's L1 line loop consumes it).
	maxReady engine.Cycle
}

// execMem executes one warp-level memory instruction start to finish: the
// core-private compute half immediately followed by the shared-state commit
// batches. Unit tests drive it directly; the run loop instead calls
// execMemCompute from the (possibly parallel) compute phase and the commit
// batches from the serial commit phase, grouped per subsystem across cores
// (DESIGN.md §14).
func (c *Core) execMem(now engine.Cycle, w *Warp, in *kernels.Instr) {
	c.execMemCompute(now, w, in)
	c.commitFunc()
	c.commitTranslate()
	c.commitData()
}

// execMemCompute is the core-private half of one warp-level memory
// instruction: coalescing, parallel TLB + L1 access, miss handling. This is
// where the paper's design space plays out:
//
//   - intra-warp requests to the same PTE coalesce into one TLB lookup;
//   - the TLB is accessed in parallel with the virtually indexed L1, so TLB
//     size only costs through the AccessPenalty;
//   - without CacheOverlap every line access waits for the warp's slowest
//     walk; with it, lanes that hit the TLB access the L1 immediately and
//     lanes that missed start as soon as their own walk completes.
//
// Functional data movement always waits for commit (the heap is shared, and
// same-cycle cross-core store→load ordering must follow core-id order). The
// timing path runs here as far as exactness allows: translation suspends at
// its first TLB miss (the miss path walks through the shared memory
// system), and when every page hits, the L1 loop runs with only the
// miss-path System.Access calls recorded for commit.
func (c *Core) execMemCompute(now engine.Cycle, w *Warp, in *kernels.Instr) {
	st := c.st
	lineShift := c.g.sys.LineShift()
	pageShift := c.g.cfg.PageShift
	isStore := in.Kind == kernels.KindStore

	c.coalesceMem(w, in, isStore)
	sc := &c.scratch
	st.MemInstrs.Inc()
	st.PageDivergence.Observe(len(sc.reqs))
	st.LineDivergence.Observe(len(sc.lines))
	p := &c.pend
	p.w, p.in, p.at = w, in, now
	if len(sc.lines) == 0 {
		// All lanes were inactive (can happen transiently around exits).
		w.readyAt = now + 1
		c.advance(now, w, w.curPC()+1)
		return
	}
	p.active = true

	// Address translation for each distinct page (TLB-side portion).
	sc.results, p.ls = c.mmu.LookupCompute(now, sc.reqs, sc.results)
	if !p.ls.Done(sc.reqs) {
		// Translation suspended at a TLB miss. Even the already-translated
		// prefix's scheduler hooks must wait: serially they run after the
		// whole lookup, whose miss-path TLB fills can evict into TCWS
		// victim tag arrays that those hooks then observe.
		p.tlbDone = false
		return
	}
	p.tlbDone = true

	results := sc.results
	maxReady := engine.Cycle(0)
	for i := range results {
		r := &results[i]
		if r.ReadyAt > maxReady {
			maxReady = r.ReadyAt
		}
		if c.mmu.Config().Enabled {
			c.sched.onTLBHit(w.slot, r.LRUDepth)
		}
	}

	overlap := c.mmu.Config().CacheOverlap || !c.mmu.Config().Enabled
	penalty := c.mmu.AccessPenalty()
	pageMask := (uint64(1) << pageShift) - 1

	// L1 for each distinct line; every start time is known (no page missed),
	// so only the miss-path memory-system accesses defer.
	sc.misses = sc.misses[:0]
	done := maxReady
	for _, lr := range sc.lines {
		r := &results[lr.pageIdx]
		start := maxReady
		if overlap {
			start = r.ReadyAt
		}
		start += penalty
		// An oversized TLB also gates the L1 access pipeline: every
		// access occupies it for the extra translation cycles, costing
		// bandwidth as well as latency (the paper's figure 6 effect).
		s := c.l1Port.Acquire(start, 1+int(penalty))
		pa := r.PBase | ((lr.lineVA << lineShift) & pageMask)

		st.L1Accesses.Inc()
		hit, ev, evicted := c.l1.Access(pa, w.slot)
		if evicted {
			c.sched.onL1Evict(ev)
		}
		if hit {
			st.L1Hits.Inc()
			fin := s + engine.Cycle(c.g.cfg.L1Latency)
			if fin > done {
				done = fin
			}
		} else {
			st.L1Misses.Inc()
			sc.misses = append(sc.misses, pendMiss{startBase: s + engine.Cycle(c.g.cfg.L1Latency), pa: pa})
			c.sched.onL1Miss(w.slot, pa>>lineShift, !r.Hit)
		}
	}
	p.done = done
}

// commitFunc replays the cycle's buffered functional accesses against the
// shared heap — the physical-memory batch of the commit phase. Replay order
// inside a core matches the lanes' serial position during coalescing;
// across cores the batch runs in ascending core-id order.
func (c *Core) commitFunc() {
	sc := &c.scratch
	if len(sc.accs) == 0 {
		return
	}
	in := c.pend.in
	isStore := in.Kind == kernels.KindStore
	for i := range sc.accs {
		a := &sc.accs[i]
		c.funcAccess(a.t, a.va, in, isStore)
	}
	sc.accs = sc.accs[:0]
}

// commitTranslate finishes a translation that suspended at its first TLB
// miss — the shared-TLB/walker batch of the commit phase. It runs the
// remaining lookups (whose miss paths walk through the shared memory
// system) and the per-result scheduler hooks, and records the slowest walk
// completion for commitData's L1 line loop. Cores whose translation fully
// resolved during compute (every page hit) have nothing to do here.
func (c *Core) commitTranslate() {
	p := &c.pend
	if !p.active || p.tlbDone {
		return
	}
	sc := &c.scratch
	w := p.w
	at := p.at
	b := w.block
	c.mmu.LookupCommit(at, sc.reqs, sc.results, p.ls)
	results := sc.results
	maxReady := engine.Cycle(0)
	for i := range results {
		r := &results[i]
		if r.ReadyAt > maxReady {
			maxReady = r.ReadyAt
		}
		if r.Hit {
			c.sched.onTLBHit(w.slot, r.LRUDepth)
		} else {
			c.sched.onTLBMiss(w.slot, r.VPN)
			if c.g.tracer != nil {
				c.emit(Event{Cycle: at, Kind: EvTLBMiss, Core: int16(c.id),
					Block: int32(b.id), Warp: int16(w.slot), A: r.VPN, B: uint64(r.ReadyAt)})
				c.emit(Event{Cycle: r.ReadyAt, Kind: EvWalkDone, Core: int16(c.id),
					Block: int32(b.id), Warp: int16(w.slot), A: r.VPN, B: uint64(r.ReadyAt - at)})
			}
		}
	}
	p.maxReady = maxReady
}

// commitData applies the data-path remainder of the cycle's memory
// instruction — the icnt/L2/DRAM batch of the commit phase — and retires
// the instruction (warp ready time, PC advance). On the all-TLB-hit path
// only the deferred L1 misses' memory-system accesses remain; on the
// suspended path the whole L1 line loop runs here, its start times coming
// from commitTranslate's maxReady.
func (c *Core) commitData() {
	p := &c.pend
	if !p.active {
		return
	}
	p.active = false
	w := p.w
	st := c.st
	sc := &c.scratch

	if p.tlbDone {
		// Only the L1 misses' memory-system accesses remain. A free
		// miss-status register gates entry into the memory system; this is
		// the flow control that keeps one core from flooding the
		// interconnect (GPGPU-Sim models the same limit).
		done := p.done
		for i := range sc.misses {
			ms := &sc.misses[i]
			mi := 0
			for j := 1; j < len(c.l1MSHRs); j++ {
				if c.l1MSHRs[j] < c.l1MSHRs[mi] {
					mi = j
				}
			}
			start := ms.startBase
			if c.l1MSHRs[mi] > start {
				start = c.l1MSHRs[mi]
			}
			fin, _ := c.g.sys.Access(start, ms.pa, mem.ClassData)
			c.l1MSHRs[mi] = fin
			st.L1MissLat.Observe(uint64(fin - start))
			if fin > done {
				done = fin
			}
		}
		sc.misses = sc.misses[:0]
		w.readyAt = done
		c.advance(p.at, w, w.curPC()+1)
		return
	}

	// Translation suspended: run the L1 line loop exactly as the serial
	// path would have, downstream of the walks commitTranslate finished.
	at := p.at
	lineShift := c.g.sys.LineShift()
	pageMask := (uint64(1) << c.g.cfg.PageShift) - 1
	results := sc.results
	maxReady := p.maxReady

	overlap := c.mmu.Config().CacheOverlap
	penalty := c.mmu.AccessPenalty()
	done := maxReady
	for _, lr := range sc.lines {
		r := &results[lr.pageIdx]
		start := maxReady
		if overlap {
			start = r.ReadyAt
		}
		start += penalty
		s := c.l1Port.Acquire(start, 1+int(penalty))
		pa := r.PBase | ((lr.lineVA << lineShift) & pageMask)

		st.L1Accesses.Inc()
		hit, ev, evicted := c.l1.Access(pa, w.slot)
		if evicted {
			c.sched.onL1Evict(ev)
		}
		var fin engine.Cycle
		if hit {
			st.L1Hits.Inc()
			fin = s + engine.Cycle(c.g.cfg.L1Latency)
		} else {
			st.L1Misses.Inc()
			mi := 0
			for j := 1; j < len(c.l1MSHRs); j++ {
				if c.l1MSHRs[j] < c.l1MSHRs[mi] {
					mi = j
				}
			}
			start := s + engine.Cycle(c.g.cfg.L1Latency)
			if c.l1MSHRs[mi] > start {
				start = c.l1MSHRs[mi]
			}
			fin, _ = c.g.sys.Access(start, pa, mem.ClassData)
			c.l1MSHRs[mi] = fin
			st.L1MissLat.Observe(uint64(fin - start))
			c.sched.onL1Miss(w.slot, pa>>lineShift, !r.Hit)
		}
		if fin > done {
			done = fin
		}
	}

	w.readyAt = done
	c.advance(at, w, w.curPC()+1)
}

// coalesceMem groups the warp's active lanes into distinct cache lines and
// distinct pages — both in first-appearance order, as the hardware
// coalescer's comparator tree produces them — attributes each page to the
// original warps of its requesting threads (one entry per origWarp, via a
// per-page bitset), and snapshots each lane's functional access for replay
// at commit (functional memory is shared across cores, so the accesses must
// land in canonical core order). Results land in c.scratch: lines, accs,
// and reqs whose Warps alias warpSets.
func (c *Core) coalesceMem(w *Warp, in *kernels.Instr, isStore bool) {
	b := w.block
	lineShift := c.g.sys.LineShift()
	pageShift := c.g.cfg.PageShift
	sc := &c.scratch
	sc.lines = sc.lines[:0]
	sc.reqs = sc.reqs[:0]
	sc.accs = sc.accs[:0]
	for _, tid := range w.curLanes() {
		if tid == noLane {
			continue
		}
		t := &b.threads[tid]
		va := t.regs[in.A] + uint64(in.Imm)
		sc.accs = append(sc.accs, pendAccess{t: t, va: va})

		vpn := va >> pageShift
		pi := -1
		for i := range sc.reqs {
			if sc.reqs[i].VPN == vpn {
				pi = i
				break
			}
		}
		if pi < 0 {
			pi = len(sc.reqs)
			sc.reqs = append(sc.reqs, core.PageReq{VPN: vpn})
			if pi < len(sc.warpSets) {
				sc.warpSets[pi] = sc.warpSets[pi][:0]
			} else {
				sc.warpSets = append(sc.warpSets, nil)
			}
			for len(sc.warpBits) < (pi+1)*sc.words {
				sc.warpBits = append(sc.warpBits, 0)
			}
			clear(sc.warpBits[pi*sc.words : (pi+1)*sc.words])
		}

		lv := va >> lineShift
		seen := false
		for i := range sc.lines {
			if sc.lines[i].lineVA == lv {
				seen = true
				break
			}
		}
		if !seen {
			sc.lines = append(sc.lines, lineReq{lineVA: lv, pageIdx: pi})
		}

		word := pi*sc.words + t.origWarp>>6
		mask := uint64(1) << (uint(t.origWarp) & 63)
		if sc.warpBits[word]&mask == 0 {
			sc.warpBits[word] |= mask
			sc.warpSets[pi] = append(sc.warpSets[pi], t.origWarp)
		}
	}
	// Wire the Warps views only after all appends: an append may move a
	// warpSet's backing array.
	for i := range sc.reqs {
		sc.reqs[i].Warps = sc.warpSets[i]
	}
}

// funcAccess performs the functional load/store for one lane.
func (c *Core) funcAccess(t *Thread, va uint64, in *kernels.Instr, isStore bool) {
	pa := c.g.tr.Translate(va)
	m := c.g.as.Mem
	if isStore {
		v := t.regs[in.B]
		switch in.Size {
		case 1:
			m.WriteU8(pa, byte(v))
		case 4:
			m.Write32(pa, uint32(v))
		default:
			m.Write64(pa, v)
		}
		return
	}
	var v uint64
	switch in.Size {
	case 1:
		v = uint64(m.ReadU8(pa))
	case 4:
		v = uint64(m.Read32(pa))
	default:
		v = m.Read64(pa)
	}
	t.regs[in.Dst] = v
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
