package gpu

import (
	"gpummu/internal/core"
	"gpummu/internal/engine"
	"gpummu/internal/kernels"
	"gpummu/internal/mem"
)

// lineReq is one coalesced cache-line access of a warp memory instruction.
type lineReq struct {
	lineVA  uint64 // virtual address >> lineShift
	pageIdx int    // index into the instruction's PageReq/PageResult slices
}

// memScratch holds execMem's per-instruction coalescing buffers. Each Core
// owns exactly one and reuses it across instructions, so the steady-state
// memory path performs no heap allocation. The buffers must never be shared
// across cores (see DESIGN.md "Performance model").
type memScratch struct {
	lines    []lineReq
	reqs     []core.PageReq
	results  []core.PageResult
	warpSets [][]int  // per-page Warps backing arrays, parallel to reqs
	warpBits []uint64 // per-page origWarp bitsets, words uint64s per page
	words    int      // bitset words per page: ceil(WarpsPerCore/64)
}

// execMem executes one warp-level memory instruction: coalescing, parallel
// TLB + L1 access, miss handling, and functional data movement. This is
// where the paper's design space plays out:
//
//   - intra-warp requests to the same PTE coalesce into one TLB lookup;
//   - the TLB is accessed in parallel with the virtually indexed L1, so TLB
//     size only costs through the AccessPenalty;
//   - without CacheOverlap every line access waits for the warp's slowest
//     walk; with it, lanes that hit the TLB access the L1 immediately and
//     lanes that missed start as soon as their own walk completes.
func (c *Core) execMem(now engine.Cycle, w *Warp, in *kernels.Instr) {
	b := w.block
	st := c.g.st
	lineShift := c.g.sys.LineShift()
	pageShift := c.g.cfg.PageShift
	isStore := in.Kind == kernels.KindStore

	c.coalesceMem(w, in, isStore)
	sc := &c.scratch
	st.MemInstrs.Inc()
	st.PageDivergence.Observe(len(sc.reqs))
	st.LineDivergence.Observe(len(sc.lines))
	if len(sc.lines) == 0 {
		// All lanes were inactive (can happen transiently around exits).
		w.readyAt = now + 1
		c.advance(now, w, w.curPC()+1)
		return
	}

	// Address translation for each distinct page.
	sc.results = c.mmu.LookupInto(now, sc.reqs, sc.results)
	results := sc.results
	maxReady := engine.Cycle(0)
	for i := range results {
		r := &results[i]
		if r.ReadyAt > maxReady {
			maxReady = r.ReadyAt
		}
		if c.mmu.Config().Enabled {
			if r.Hit {
				c.sched.onTLBHit(w.slot, r.LRUDepth)
			} else {
				c.sched.onTLBMiss(w.slot, r.VPN)
				if c.g.tracer != nil {
					c.g.emit(Event{Cycle: now, Kind: EvTLBMiss, Core: int16(c.id),
						Block: int32(b.id), Warp: int16(w.slot), A: r.VPN, B: uint64(r.ReadyAt)})
					c.g.emit(Event{Cycle: r.ReadyAt, Kind: EvWalkDone, Core: int16(c.id),
						Block: int32(b.id), Warp: int16(w.slot), A: r.VPN, B: uint64(r.ReadyAt - now)})
				}
			}
		}
	}

	overlap := c.mmu.Config().CacheOverlap || !c.mmu.Config().Enabled
	penalty := c.mmu.AccessPenalty()
	pageMask := (uint64(1) << pageShift) - 1

	// L1 (and beyond) for each distinct line.
	done := maxReady
	for _, lr := range sc.lines {
		r := &results[lr.pageIdx]
		start := maxReady
		if overlap {
			start = r.ReadyAt
		}
		start += penalty
		// An oversized TLB also gates the L1 access pipeline: every
		// access occupies it for the extra translation cycles, costing
		// bandwidth as well as latency (the paper's figure 6 effect).
		s := c.l1Port.Acquire(start, 1+int(penalty))
		pa := r.PBase | ((lr.lineVA << lineShift) & pageMask)

		st.L1Accesses.Inc()
		hit, ev, evicted := c.l1.Access(pa, w.slot)
		if evicted {
			c.sched.onL1Evict(ev)
		}
		var fin engine.Cycle
		if hit {
			st.L1Hits.Inc()
			fin = s + engine.Cycle(c.g.cfg.L1Latency)
		} else {
			st.L1Misses.Inc()
			// A free miss-status register gates entry into the memory
			// system; this is the flow control that keeps one core from
			// flooding the interconnect (GPGPU-Sim models the same limit).
			mi := 0
			for i := 1; i < len(c.l1MSHRs); i++ {
				if c.l1MSHRs[i] < c.l1MSHRs[mi] {
					mi = i
				}
			}
			start := s + engine.Cycle(c.g.cfg.L1Latency)
			if c.l1MSHRs[mi] > start {
				start = c.l1MSHRs[mi]
			}
			fin, _ = c.g.sys.Access(start, pa, mem.ClassData)
			c.l1MSHRs[mi] = fin
			st.L1MissLat.Observe(uint64(fin - start))
			c.sched.onL1Miss(w.slot, pa>>lineShift, !r.Hit)
		}
		if fin > done {
			done = fin
		}
	}

	w.readyAt = done
	c.advance(now, w, w.curPC()+1)
}

// coalesceMem groups the warp's active lanes into distinct cache lines and
// distinct pages — both in first-appearance order, as the hardware
// coalescer's comparator tree produces them — attributes each page to the
// original warps of its requesting threads (one entry per origWarp, via a
// per-page bitset), and performs the functional access for each lane.
// Results land in c.scratch: lines, and reqs whose Warps alias warpSets.
func (c *Core) coalesceMem(w *Warp, in *kernels.Instr, isStore bool) {
	b := w.block
	lineShift := c.g.sys.LineShift()
	pageShift := c.g.cfg.PageShift
	sc := &c.scratch
	sc.lines = sc.lines[:0]
	sc.reqs = sc.reqs[:0]
	for _, tid := range w.curLanes() {
		if tid == noLane {
			continue
		}
		t := &b.threads[tid]
		va := t.regs[in.A] + uint64(in.Imm)
		c.funcAccess(t, va, in, isStore)

		vpn := va >> pageShift
		pi := -1
		for i := range sc.reqs {
			if sc.reqs[i].VPN == vpn {
				pi = i
				break
			}
		}
		if pi < 0 {
			pi = len(sc.reqs)
			sc.reqs = append(sc.reqs, core.PageReq{VPN: vpn})
			if pi < len(sc.warpSets) {
				sc.warpSets[pi] = sc.warpSets[pi][:0]
			} else {
				sc.warpSets = append(sc.warpSets, nil)
			}
			for len(sc.warpBits) < (pi+1)*sc.words {
				sc.warpBits = append(sc.warpBits, 0)
			}
			clear(sc.warpBits[pi*sc.words : (pi+1)*sc.words])
		}

		lv := va >> lineShift
		seen := false
		for i := range sc.lines {
			if sc.lines[i].lineVA == lv {
				seen = true
				break
			}
		}
		if !seen {
			sc.lines = append(sc.lines, lineReq{lineVA: lv, pageIdx: pi})
		}

		word := pi*sc.words + t.origWarp>>6
		mask := uint64(1) << (uint(t.origWarp) & 63)
		if sc.warpBits[word]&mask == 0 {
			sc.warpBits[word] |= mask
			sc.warpSets[pi] = append(sc.warpSets[pi], t.origWarp)
		}
	}
	// Wire the Warps views only after all appends: an append may move a
	// warpSet's backing array.
	for i := range sc.reqs {
		sc.reqs[i].Warps = sc.warpSets[i]
	}
}

// funcAccess performs the functional load/store for one lane.
func (c *Core) funcAccess(t *Thread, va uint64, in *kernels.Instr, isStore bool) {
	pa := c.g.tr.Translate(va)
	m := c.g.as.Mem
	if isStore {
		v := t.regs[in.B]
		switch in.Size {
		case 1:
			m.WriteU8(pa, byte(v))
		case 4:
			m.Write32(pa, uint32(v))
		default:
			m.Write64(pa, v)
		}
		return
	}
	var v uint64
	switch in.Size {
	case 1:
		v = uint64(m.ReadU8(pa))
	case 4:
		v = uint64(m.Read32(pa))
	default:
		v = m.Read64(pa)
	}
	t.regs[in.Dst] = v
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
