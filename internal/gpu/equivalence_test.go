package gpu

import (
	"testing"

	"gpummu/internal/config"
	"gpummu/internal/stats"
	"gpummu/internal/workloads"
)

// snapshotOutputs reads back a deterministic slice of a workload's output
// region for comparison. We re-derive output locations per workload by
// re-running its checker, so here we instead hash all backed physical
// memory — identical final memory images mean identical results.
func memFingerprint(w *workloads.Workload) uint64 {
	// FNV-1a over the mapped heap, walked in VA order via the page table.
	// Reading via VA normalises away physical frame assignment.
	var h uint64 = 0xcbf29ce484222325
	base := uint64(0x0000_5C00_0000_0000)
	end := base + w.AS.MappedBytes() + (16 << 20) // mapped heap + guard slack
	for va := base; va < end; va += 64 {
		if _, ok := w.AS.PT.Translate(va); !ok {
			va += 4032 // skip the rest of an unmapped page
			continue
		}
		for off := uint64(0); off < 64; off += 8 {
			h ^= w.AS.Read64(va + off)
			h *= 0x100000001b3
		}
	}
	return h
}

// TestDivergenceModesFunctionallyEquivalent runs the divergent workloads
// under per-warp stacks, TBC, and TLB-aware TBC and demands bit-identical
// final memory: compaction must never change what a kernel computes.
func TestDivergenceModesFunctionallyEquivalent(t *testing.T) {
	for _, name := range []string{"bfs", "mummergpu", "memcached"} {
		var prints []uint64
		for _, mode := range []config.DivergenceMode{config.DivStack, config.DivTBC, config.DivTLBTBC} {
			cfg := config.SmallTest()
			cfg.MMU = config.AugmentedMMU()
			cfg.TBC.Mode = mode
			w, err := workloads.Build(name, workloads.SizeTiny, cfg.PageShift, 99)
			if err != nil {
				t.Fatal(err)
			}
			st := &stats.Sim{}
			g, err := New(cfg, w.AS, st)
			if err != nil {
				t.Fatal(err)
			}
			g.MaxCycles = 50_000_000
			if _, err := g.Run(w.Launch); err != nil {
				t.Fatalf("%s/%v: %v", name, mode, err)
			}
			prints = append(prints, memFingerprint(w))
		}
		if prints[0] != prints[1] || prints[1] != prints[2] {
			t.Fatalf("%s: divergence modes computed different results: %x", name, prints)
		}
	}
}

// TestMMUModesFunctionallyEquivalent: translation hardware must never
// change results either — no TLB, naive, augmented, shared-L2, software
// walks, and the ideal TLB all produce the same memory image.
func TestMMUModesFunctionallyEquivalent(t *testing.T) {
	shared := config.AugmentedMMU()
	shared.SharedTLBEntries = 1024
	pwc := config.AugmentedMMU()
	pwc.PWCEntries = 32
	sw := config.NaiveMMU(4)
	sw.SoftwareWalks = true
	sw.SoftwareWalkOverhead = 300

	var prints []uint64
	for _, m := range []config.MMU{
		{Enabled: false}, config.NaiveMMU(3), config.AugmentedMMU(),
		shared, pwc, sw, config.MMU{}.Ideal(),
	} {
		cfg := config.SmallTest()
		cfg.MMU = m
		w, err := workloads.Build("memcached", workloads.SizeTiny, cfg.PageShift, 5)
		if err != nil {
			t.Fatal(err)
		}
		st := &stats.Sim{}
		g, err := New(cfg, w.AS, st)
		if err != nil {
			t.Fatal(err)
		}
		g.MaxCycles = 50_000_000
		if _, err := g.Run(w.Launch); err != nil {
			t.Fatalf("%+v: %v", m, err)
		}
		prints = append(prints, memFingerprint(w))
	}
	for i := 1; i < len(prints); i++ {
		if prints[i] != prints[0] {
			t.Fatalf("MMU config %d changed results: %x vs %x", i, prints[i], prints[0])
		}
	}
}
