package gpu

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"gpummu/internal/config"
	"gpummu/internal/stats"
	"gpummu/internal/workloads"
)

// snapshotOutputs reads back a deterministic slice of a workload's output
// region for comparison. We re-derive output locations per workload by
// re-running its checker, so here we instead hash all backed physical
// memory — identical final memory images mean identical results.
func memFingerprint(w *workloads.Workload) uint64 {
	// FNV-1a over the mapped heap, walked in VA order via the page table.
	// Reading via VA normalises away physical frame assignment.
	var h uint64 = 0xcbf29ce484222325
	base := uint64(0x0000_5C00_0000_0000)
	end := base + w.AS.MappedBytes() + (16 << 20) // mapped heap + guard slack
	for va := base; va < end; va += 64 {
		if _, ok := w.AS.PT.Translate(va); !ok {
			va += 4032 // skip the rest of an unmapped page
			continue
		}
		for off := uint64(0); off < 64; off += 8 {
			h ^= w.AS.Read64(va + off)
			h *= 0x100000001b3
		}
	}
	return h
}

// TestDivergenceModesFunctionallyEquivalent runs the divergent workloads
// under per-warp stacks, TBC, and TLB-aware TBC and demands bit-identical
// final memory: compaction must never change what a kernel computes.
func TestDivergenceModesFunctionallyEquivalent(t *testing.T) {
	for _, name := range []string{"bfs", "mummergpu", "memcached"} {
		var prints []uint64
		for _, mode := range []config.DivergenceMode{config.DivStack, config.DivTBC, config.DivTLBTBC} {
			cfg := config.SmallTest()
			cfg.MMU = config.AugmentedMMU()
			cfg.TBC.Mode = mode
			w, err := workloads.Build(name, workloads.SizeTiny, cfg.PageShift, 99)
			if err != nil {
				t.Fatal(err)
			}
			st := &stats.Sim{}
			g, err := New(cfg, w.AS, st)
			if err != nil {
				t.Fatal(err)
			}
			g.MaxCycles = 50_000_000
			if _, err := g.Run(w.Launch); err != nil {
				t.Fatalf("%s/%v: %v", name, mode, err)
			}
			prints = append(prints, memFingerprint(w))
		}
		if prints[0] != prints[1] || prints[1] != prints[2] {
			t.Fatalf("%s: divergence modes computed different results: %x", name, prints)
		}
	}
}

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden stats snapshots in testdata/")

// TestGoldenStatsSnapshot pins the complete stats.Sim output — cycle counts,
// every counter, and full histogram contents — of representative tiny runs
// against committed golden files. Hot-path optimisations (event skipping,
// scratch buffers, allocation-free walks) must be cycle-exact: if any of
// them changes timing, this test fails byte-for-byte. Regenerate ONLY for
// intentional timing-model changes, with
//
//	go test ./internal/gpu -run TestGoldenStatsSnapshot -update-golden
func TestGoldenStatsSnapshot(t *testing.T) {
	cases := []struct {
		name     string
		workload string
		mutate   func(*config.Hardware)
	}{
		// Divergent workload through TBC compaction + the augmented
		// (non-blocking, PTW-scheduled) MMU: exercises multi-warp page
		// attribution and the cache-overlap path.
		{"bfs_tbc_augmented", "bfs", func(c *config.Hardware) {
			c.MMU = config.AugmentedMMU()
			c.TBC.Mode = config.DivTBC
		}},
		// Divergent workload on the blocking naive MMU: exercises the
		// memory-gate / MMU.NextEvent fast-forward horizon.
		{"bfs_naive_blocking", "bfs", func(c *config.Hardware) {
			c.MMU = config.NaiveMMU(3)
		}},
		// CCWS decay is tick-cadence sensitive, so CCWS cores are exempt
		// from event skipping; pin that path too.
		{"bfs_ccws_naive", "bfs", func(c *config.Hardware) {
			c.MMU = config.NaiveMMU(4)
			c.Sched.Policy = config.SchedCCWS
		}},
		// Regular (coalesced) workload under the paper's recommended design.
		{"kmeans_augmented", "kmeans", func(c *config.Hardware) {
			c.MMU = config.AugmentedMMU()
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := config.SmallTest()
			tc.mutate(&cfg)
			w, err := workloads.Build(tc.workload, workloads.SizeTiny, cfg.PageShift, 7)
			if err != nil {
				t.Fatal(err)
			}
			st := &stats.Sim{}
			g, err := New(cfg, w.AS, st)
			if err != nil {
				t.Fatal(err)
			}
			g.MaxCycles = 50_000_000
			if _, err := g.Run(w.Launch); err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(st, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", "golden_"+tc.name+".json")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update-golden): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: stats snapshot diverged from golden file %s —\n"+
					"an optimisation changed simulated timing.\ngot:\n%s\nwant:\n%s",
					tc.name, path, got, want)
			}
		})
	}
}

// TestParallelTickEquivalence pins the tentpole guarantee of the two-phase
// tick: running the same simulation with any number of core-tick workers
// (-par) produces byte-identical statistics and an identical final memory
// image. It covers every scheduler/MMU/TBC family the golden snapshots pin
// (whose par=1 output is in turn pinned against testdata/), plus a 16-core
// configuration so par=8 exercises genuinely concurrent compute phases
// rather than clamping to the core count.
func TestParallelTickEquivalence(t *testing.T) {
	cases := []struct {
		name     string
		workload string
		mutate   func(*config.Hardware)
	}{
		{"bfs_tbc_augmented", "bfs", func(c *config.Hardware) {
			c.MMU = config.AugmentedMMU()
			c.TBC.Mode = config.DivTBC
		}},
		{"bfs_naive_blocking", "bfs", func(c *config.Hardware) {
			c.MMU = config.NaiveMMU(3)
		}},
		{"bfs_ccws_naive", "bfs", func(c *config.Hardware) {
			c.MMU = config.NaiveMMU(4)
			c.Sched.Policy = config.SchedCCWS
		}},
		{"kmeans_augmented", "kmeans", func(c *config.Hardware) {
			c.MMU = config.AugmentedMMU()
		}},
		{"memcached_tcws_shared_16core", "memcached", func(c *config.Hardware) {
			c.NumCores = 16
			c.MMU = config.AugmentedMMU()
			c.MMU.SharedTLBEntries = 512
			c.Sched.Policy = config.SchedTCWS
		}},
	}
	run := func(t *testing.T, tc int, par int) ([]byte, uint64, uint64) {
		cfg := config.SmallTest()
		cases[tc].mutate(&cfg)
		w, err := workloads.Build(cases[tc].workload, workloads.SizeTiny, cfg.PageShift, 7)
		if err != nil {
			t.Fatal(err)
		}
		st := &stats.Sim{}
		g, err := New(cfg, w.AS, st)
		if err != nil {
			t.Fatal(err)
		}
		g.MaxCycles = 50_000_000
		g.Workers = par
		cycles, err := g.Run(w.Launch)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		js, err := json.MarshalIndent(st, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return js, memFingerprint(w), cycles
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base, basePrint, baseCycles := run(t, i, 1)
			for _, par := range []int{2, 8} {
				got, print, cycles := run(t, i, par)
				if cycles != baseCycles {
					t.Fatalf("par=%d: simulated %d cycles, par=1 simulated %d", par, cycles, baseCycles)
				}
				if !bytes.Equal(got, base) {
					t.Fatalf("par=%d stats diverged from par=1:\ngot:\n%s\nwant:\n%s", par, got, base)
				}
				if print != basePrint {
					t.Fatalf("par=%d final memory image diverged: %x vs %x", par, print, basePrint)
				}
			}
		})
	}
}

// TestMMUModesFunctionallyEquivalent: translation hardware must never
// change results either — no TLB, naive, augmented, shared-L2, software
// walks, and the ideal TLB all produce the same memory image.
func TestMMUModesFunctionallyEquivalent(t *testing.T) {
	shared := config.AugmentedMMU()
	shared.SharedTLBEntries = 1024
	pwc := config.AugmentedMMU()
	pwc.PWCEntries = 32
	sw := config.NaiveMMU(4)
	sw.SoftwareWalks = true
	sw.SoftwareWalkOverhead = 300

	var prints []uint64
	for _, m := range []config.MMU{
		{Enabled: false}, config.NaiveMMU(3), config.AugmentedMMU(),
		shared, pwc, sw, config.MMU{}.Ideal(),
	} {
		cfg := config.SmallTest()
		cfg.MMU = m
		w, err := workloads.Build("memcached", workloads.SizeTiny, cfg.PageShift, 5)
		if err != nil {
			t.Fatal(err)
		}
		st := &stats.Sim{}
		g, err := New(cfg, w.AS, st)
		if err != nil {
			t.Fatal(err)
		}
		g.MaxCycles = 50_000_000
		if _, err := g.Run(w.Launch); err != nil {
			t.Fatalf("%+v: %v", m, err)
		}
		prints = append(prints, memFingerprint(w))
	}
	for i := 1; i < len(prints); i++ {
		if prints[i] != prints[0] {
			t.Fatalf("MMU config %d changed results: %x vs %x", i, prints[i], prints[0])
		}
	}
}
