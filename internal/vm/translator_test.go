package vm_test

import (
	"testing"

	"gpummu/internal/ref"
	"gpummu/internal/vm"
)

func newSpace(t *testing.T, pageShift uint, pages int) *vm.AddressSpace {
	t.Helper()
	as := vm.NewAddressSpace(vm.NewPhysMem(), vm.NewFrameAllocator(1<<22), pageShift)
	as.Malloc(uint64(pages) << pageShift)
	return as
}

// TestLookupMemoisesWalks: one walk per page, reused for every address in
// the page, and Translate composes the page base with the offset exactly
// like a direct page table walk.
func TestLookupMemoisesWalks(t *testing.T) {
	as := newSpace(t, vm.PageShift4K, 4)
	tr := vm.NewTranslator(as.PT, vm.PageShift4K)
	if tr.MemoSize() != 0 {
		t.Fatalf("fresh translator memoised %d pages", tr.MemoSize())
	}
	base := as.HeapBase()
	tr.Lookup(base)
	tr.Lookup(base + 8)
	tr.Lookup(base + 4095)
	if tr.MemoSize() != 1 {
		t.Fatalf("three lookups in one page memoised %d entries, want 1", tr.MemoSize())
	}
	tr.Lookup(base + vm.PageSize4K)
	if tr.MemoSize() != 2 {
		t.Fatalf("second page lookup left memo at %d entries, want 2", tr.MemoSize())
	}
	for _, off := range []uint64{0, 1, 8, 4095, vm.PageSize4K + 123} {
		va := base + off
		want, ok := as.PT.Translate(va)
		if !ok {
			t.Fatalf("va %#x unexpectedly unmapped", va)
		}
		if got := tr.Translate(va); got != want {
			t.Fatalf("Translate(%#x) = %#x, page table says %#x", va, got, want)
		}
	}
}

// TestPrewarmFreezesMemo: Prewarm must memoise exactly the mapped pages, so
// the cache map is never written again during a run (the property that lets
// parallel compute phases read it unsynchronised).
func TestPrewarmFreezesMemo(t *testing.T) {
	for _, shift := range []uint{vm.PageShift4K, vm.PageShift2M} {
		const pages = 6
		as := newSpace(t, shift, pages)
		tr := vm.NewTranslator(as.PT, shift)
		tr.Prewarm()
		if tr.MemoSize() != pages {
			t.Fatalf("shift %d: Prewarm memoised %d pages, want %d", shift, tr.MemoSize(), pages)
		}
		// Touching every mapped byte range must not grow the memo.
		base := as.HeapBase()
		for p := uint64(0); p < pages; p++ {
			tr.Lookup(base + p<<shift)
			tr.Lookup(base + p<<shift + (1<<shift - 1))
		}
		if tr.MemoSize() != pages {
			t.Fatalf("shift %d: lookups after Prewarm grew memo to %d", shift, tr.MemoSize())
		}
	}
}

// TestWalkMatchesReferenceMixed: a page table holding both 4 KB and 2 MB
// mappings (disjoint VA ranges — the allocator never mixes them within one
// space, so build the table directly) must agree with the independent
// reference walker on every level of every walk.
func TestWalkMatchesReferenceMixed(t *testing.T) {
	pm := vm.NewPhysMem()
	alloc := vm.NewFrameAllocator(1 << 22)
	pt := vm.NewPageTable(pm, alloc)

	base4K := uint64(0x0000_5C00_0000_0000)
	base2M := uint64(0x0000_6000_0000_0000)
	var vas []uint64
	for i := uint64(0); i < 8; i++ {
		va := base4K + i*vm.PageSize4K
		if err := pt.Map4K(va, alloc.Alloc4K()); err != nil {
			t.Fatal(err)
		}
		vas = append(vas, va)
	}
	for i := uint64(0); i < 3; i++ {
		va := base2M + i*vm.PageSize2M
		if err := pt.Map2M(va, alloc.Alloc2M()); err != nil {
			t.Fatal(err)
		}
		vas = append(vas, va)
	}

	for _, va := range vas {
		for _, off := range []uint64{0, 7, 0xFFF} {
			got, err := pt.Walk(va + off)
			if err != nil {
				t.Fatalf("walk %#x: %v", va+off, err)
			}
			want := ref.WalkPage(pm, pt.CR3(), va+off)
			if want.Fault {
				t.Fatalf("reference faults on mapped va %#x", va+off)
			}
			if got.PA != want.PA || got.PageShift != want.PageShift || got.Levels != want.Levels {
				t.Fatalf("va %#x: walk (pa=%#x shift=%d levels=%d) vs reference (pa=%#x shift=%d levels=%d)",
					va+off, got.PA, got.PageShift, got.Levels, want.PA, want.PageShift, want.Levels)
			}
			for l := 0; l < got.Levels; l++ {
				if got.LevelPAs[l] != want.LevelPAs[l] {
					t.Fatalf("va %#x level %d: %#x vs %#x", va+off, l, got.LevelPAs[l], want.LevelPAs[l])
				}
			}
		}
	}

	// 2 MB walks are one level shorter than 4 KB walks.
	t4, _ := pt.Walk(base4K)
	t2, _ := pt.Walk(base2M)
	if t4.Levels != 4 || t2.Levels != 3 {
		t.Fatalf("walk levels 4K=%d 2M=%d, want 4 and 3", t4.Levels, t2.Levels)
	}
}

// TestFaultLevelAgreement: both walkers must agree on where a failing walk
// stops — at the PML4 for far-away addresses, at the leaf level for the
// guard page next to a mapped region.
func TestFaultLevelAgreement(t *testing.T) {
	as := newSpace(t, vm.PageShift4K, 2)
	pm, cr3 := as.Mem, as.PT.CR3()
	probes := []uint64{
		0x40_0000,                         // far below the heap: PML4 miss
		as.HeapBase() - vm.PageSize4K,     // below heap base
		as.HeapBase() + 2*vm.PageSize4K,   // the guard page: leaf-level miss
		as.HeapBase() + (uint64(1) << 39), // different PML4 subtree
	}
	for _, va := range probes {
		tr, err := as.PT.Walk(va)
		rw := ref.WalkPage(pm, cr3, va)
		if err == nil || !rw.Fault {
			t.Fatalf("probe %#x expected to fault in both walkers (err=%v, ref fault=%t)", va, err, rw.Fault)
		}
		if rw.FaultLevel != tr.Levels-1 {
			t.Fatalf("probe %#x: page table faults at level %d, reference at %d", va, tr.Levels-1, rw.FaultLevel)
		}
	}
}
