package vm

import (
	"testing"
	"testing/quick"
)

func TestPhysMemReadWrite64(t *testing.T) {
	m := NewPhysMem()
	m.Write64(0x1000, 0xDEADBEEFCAFEBABE)
	if got := m.Read64(0x1000); got != 0xDEADBEEFCAFEBABE {
		t.Fatalf("Read64 = %#x", got)
	}
	if got := m.Read64(0x2000); got != 0 {
		t.Fatalf("unwritten memory = %#x, want 0", got)
	}
}

func TestPhysMemLittleEndian(t *testing.T) {
	m := NewPhysMem()
	m.Write64(0x100, 0x0807060504030201)
	for i := uint64(0); i < 8; i++ {
		if got := m.ReadU8(0x100 + i); got != byte(i+1) {
			t.Fatalf("byte %d = %#x, want %#x", i, got, i+1)
		}
	}
	if got := m.Read32(0x100); got != 0x04030201 {
		t.Fatalf("Read32 = %#x", got)
	}
	if got := m.Read32(0x104); got != 0x08070605 {
		t.Fatalf("Read32 hi = %#x", got)
	}
}

func TestPhysMemWrite32Isolated(t *testing.T) {
	m := NewPhysMem()
	m.Write64(0x200, ^uint64(0))
	m.Write32(0x200, 0)
	if got := m.Read64(0x200); got != 0xFFFFFFFF00000000 {
		t.Fatalf("Read64 after Write32 = %#x", got)
	}
}

func TestPhysMemMisalignedPanics(t *testing.T) {
	m := NewPhysMem()
	defer func() {
		if recover() == nil {
			t.Fatal("misaligned Read64 did not panic")
		}
	}()
	m.Read64(0x1001)
}

func TestPhysMemSparseBacking(t *testing.T) {
	m := NewPhysMem()
	if m.BackedPages() != 0 {
		t.Fatalf("fresh memory backs %d pages", m.BackedPages())
	}
	// Reading does not materialise pages.
	_ = m.Read64(0x123000)
	if m.BackedPages() != 0 {
		t.Fatalf("read materialised a page")
	}
	m.Write64(0x123000, 1)
	m.Write64(0x123008, 1)
	if m.BackedPages() != 1 {
		t.Fatalf("two writes in one page back %d pages", m.BackedPages())
	}
}

// TestPhysMemRoundTripQuick property-tests: a 64-bit write to any aligned
// address reads back identically.
func TestPhysMemRoundTripQuick(t *testing.T) {
	m := NewPhysMem()
	f := func(page uint32, slot uint8, val uint64) bool {
		pa := uint64(page)<<PageShift4K | (uint64(slot)%512)*8
		m.Write64(pa, val)
		return m.Read64(pa) == val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFrameAllocatorUnique(t *testing.T) {
	a := NewFrameAllocator(1 << 16)
	seen := make(map[uint64]bool)
	for i := 0; i < 1<<15; i++ {
		pa := a.Alloc4K()
		if pa&(PageSize4K-1) != 0 {
			t.Fatalf("unaligned frame %#x", pa)
		}
		if seen[pa] {
			t.Fatalf("frame %#x handed out twice (iteration %d)", pa, i)
		}
		seen[pa] = true
	}
}

func TestFrameAllocatorScatters(t *testing.T) {
	a := NewFrameAllocator(1 << 16)
	// Consecutive allocations should not be physically consecutive —
	// scattered frames are what make walk locality realistic.
	adjacent := 0
	prev := a.Alloc4K()
	for i := 0; i < 1000; i++ {
		cur := a.Alloc4K()
		if cur == prev+PageSize4K {
			adjacent++
		}
		prev = cur
	}
	if adjacent > 10 {
		t.Fatalf("%d/1000 consecutive allocations were adjacent", adjacent)
	}
}

func TestFrameAllocator2MAlignmentAndDisjoint(t *testing.T) {
	a := NewFrameAllocator(1 << 16)
	small := make(map[uint64]bool)
	for i := 0; i < 512; i++ {
		small[a.Alloc4K()>>PageShift4K] = true
	}
	for i := 0; i < 16; i++ {
		pa := a.Alloc2M()
		if pa&(PageSize2M-1) != 0 {
			t.Fatalf("unaligned superframe %#x", pa)
		}
		for f := uint64(0); f < PageSize2M/PageSize4K; f++ {
			if small[(pa>>PageShift4K)+f] {
				t.Fatalf("superframe %#x overlaps a 4K frame", pa)
			}
		}
	}
}

func TestFrameAllocatorExhaustion(t *testing.T) {
	a := NewFrameAllocator(16)
	for i := 0; i < 8; i++ {
		a.Alloc4K()
	}
	defer func() {
		if recover() == nil {
			t.Fatal("exhausted allocator did not panic")
		}
	}()
	a.Alloc4K()
}
