// Package vm implements the unified-address-space substrate the paper
// assumes: a sparse simulated physical memory, a pseudo-random frame
// allocator, real x86-64 4-level page tables materialised inside that
// physical memory, and per-process address spaces with a malloc-style heap.
//
// Because the page tables live in simulated physical memory, the page table
// walkers in internal/core perform genuine loads of PTE bytes through the
// simulated cache hierarchy — walk locality, cache-line sharing between
// concurrent walks, and walk cache hits are all real, not modelled.
package vm

import (
	"encoding/binary"
	"fmt"
)

// PageShift4K and PageShift2M are the two translation granularities the
// paper studies (4 KB base pages, 2 MB large pages in section 9).
const (
	PageShift4K = 12
	PageShift2M = 21
	PageSize4K  = 1 << PageShift4K
	PageSize2M  = 1 << PageShift2M
)

// physPage is one materialised 4 KB frame plus a dirty bit. The dirty bit
// exists for snapshot restore (internal/snapshot): it is set on every write
// and cleared when a snapshot is taken, so RestorePages only rewrites the
// frames actually touched since the snapshot instead of the whole footprint.
type physPage struct {
	data  [PageSize4K]byte
	dirty bool
}

// PhysMem is a sparsely backed simulated physical memory. Pages materialise
// on first write; reads of never-written memory return zeroes, matching
// zero-filled DRAM. All addresses are byte addresses.
type PhysMem struct {
	pages map[uint64]*physPage
}

// NewPhysMem returns an empty physical memory.
func NewPhysMem() *PhysMem {
	return &PhysMem{pages: make(map[uint64]*physPage)}
}

// BackedPages reports how many 4 KB physical pages have been materialised.
func (m *PhysMem) BackedPages() int { return len(m.pages) }

func (m *PhysMem) page(pa uint64, create bool) *physPage {
	fn := pa >> PageShift4K
	p := m.pages[fn]
	if p == nil {
		if !create {
			return nil
		}
		p = new(physPage)
		m.pages[fn] = p
	}
	if create {
		// create is true exactly on the write paths; a snapshot restore only
		// needs to revisit frames written since the snapshot.
		p.dirty = true
	}
	return p
}

// Read64 loads a little-endian 64-bit value. The access must not cross a
// 4 KB page boundary (all simulator accesses are naturally aligned).
func (m *PhysMem) Read64(pa uint64) uint64 {
	if pa%8 != 0 {
		panic(fmt.Sprintf("vm: misaligned Read64 at %#x", pa))
	}
	p := m.page(pa, false)
	if p == nil {
		return 0
	}
	off := pa & (PageSize4K - 1)
	return binary.LittleEndian.Uint64(p.data[off : off+8])
}

// Write64 stores a little-endian 64-bit value.
func (m *PhysMem) Write64(pa, val uint64) {
	if pa%8 != 0 {
		panic(fmt.Sprintf("vm: misaligned Write64 at %#x", pa))
	}
	p := m.page(pa, true)
	off := pa & (PageSize4K - 1)
	binary.LittleEndian.PutUint64(p.data[off:off+8], val)
}

// Read32 loads a little-endian 32-bit value.
func (m *PhysMem) Read32(pa uint64) uint32 {
	if pa%4 != 0 {
		panic(fmt.Sprintf("vm: misaligned Read32 at %#x", pa))
	}
	p := m.page(pa, false)
	if p == nil {
		return 0
	}
	off := pa & (PageSize4K - 1)
	return binary.LittleEndian.Uint32(p.data[off : off+4])
}

// Write32 stores a little-endian 32-bit value.
func (m *PhysMem) Write32(pa uint64, val uint32) {
	if pa%4 != 0 {
		panic(fmt.Sprintf("vm: misaligned Write32 at %#x", pa))
	}
	p := m.page(pa, true)
	off := pa & (PageSize4K - 1)
	binary.LittleEndian.PutUint32(p.data[off:off+4], val)
}

// ReadU8 loads one byte.
func (m *PhysMem) ReadU8(pa uint64) byte {
	p := m.page(pa, false)
	if p == nil {
		return 0
	}
	return p.data[pa&(PageSize4K-1)]
}

// WriteU8 stores one byte.
func (m *PhysMem) WriteU8(pa uint64, val byte) {
	m.page(pa, true).data[pa&(PageSize4K-1)] = val
}

// PageBytes returns a read-only view of the materialised 4 KB page holding
// pa, or nil when the page has never been written (its contents read as
// zeroes). Digest and diff code uses it to hash pages without a map lookup
// per word; callers must not mutate the returned slice.
func (m *PhysMem) PageBytes(pa uint64) []byte {
	p := m.page(pa, false)
	if p == nil {
		return nil
	}
	return p.data[:]
}

// MutablePageBytes returns a writable view of the materialised 4 KB page
// holding pa, creating it (and setting its dirty bit) if absent. The
// functional interpreter caches these slices to avoid a map lookup per
// access; holders must drop cached slices before any snapshot operation,
// since writes through a cached slice do not re-set the dirty bit.
func (m *PhysMem) MutablePageBytes(pa uint64) []byte {
	return m.page(pa, true).data[:]
}

// FrameAllocator hands out 4 KB physical frames in a pseudo-random order so
// that consecutively mapped virtual pages land on scattered frames, as they
// would on a long-running machine with a fragmented free list. Large-page
// allocation hands out naturally aligned 512-frame runs.
type FrameAllocator struct {
	next      uint64 // next unscrambled frame index
	nextSuper uint64 // next 2 MB superframe index (separate region)
	limit     uint64 // total frames available
	scramble  uint64 // odd multiplier for index scrambling
}

// NewFrameAllocator creates an allocator over totalFrames 4 KB frames.
// totalFrames must be a power of two so index scrambling is a bijection.
func NewFrameAllocator(totalFrames uint64) *FrameAllocator {
	if totalFrames == 0 || totalFrames&(totalFrames-1) != 0 {
		panic("vm: totalFrames must be a nonzero power of two")
	}
	return &FrameAllocator{
		limit: totalFrames,
		// Odd multiplier => bijection mod any power of two.
		scramble: 0x9E3779B97F4A7C15 | 1,
	}
}

// Alloc4K returns the physical byte address of a fresh 4 KB frame.
func (a *FrameAllocator) Alloc4K() uint64 {
	if a.next >= a.limit/2 {
		panic("vm: out of 4K physical frames")
	}
	idx := a.next
	a.next++
	// Scramble within the lower half of the frame space; the upper half is
	// reserved for superframes so the two never collide.
	frame := (idx * a.scramble) % (a.limit / 2)
	return frame << PageShift4K
}

// Alloc2M returns the physical byte address of a fresh naturally aligned
// 2 MB superframe (512 consecutive 4 KB frames).
func (a *FrameAllocator) Alloc2M() uint64 {
	const framesPer2M = PageSize2M / PageSize4K
	superLimit := (a.limit / 2) / framesPer2M
	if a.nextSuper >= superLimit {
		panic("vm: out of 2M physical frames")
	}
	idx := a.nextSuper
	a.nextSuper++
	super := (idx * a.scramble) % superLimit
	return (a.limit/2 + super*framesPer2M) << PageShift4K
}

// Allocated reports how many 4 KB-frame allocations have been made (large
// pages count as 512).
func (a *FrameAllocator) Allocated() uint64 {
	return a.next + a.nextSuper*(PageSize2M/PageSize4K)
}
