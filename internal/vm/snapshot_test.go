package vm

import "testing"

// TestSnapshotRestoreRewindsWrites pins the dirty-page mechanics: after a
// snapshot, only written frames are restored, frames materialised later
// vanish, and the allocator/heap cursors rewind so a Malloc after restore
// reproduces the pre-mutation layout exactly.
func TestSnapshotRestoreRewindsWrites(t *testing.T) {
	mem := NewPhysMem()
	alloc := NewFrameAllocator(256 << 20)
	as := NewAddressSpace(mem, alloc, PageShift4K)

	base := as.Malloc(4 * PageSize4K)
	for i := uint64(0); i < 4; i++ {
		as.Write64(base+i*PageSize4K, 100+i)
	}

	img := mem.SnapshotPages()
	allocState := alloc.State()
	heapState := as.HeapSnapshot()
	pagesAtSnapshot := len(mem.pages)

	// Mutate snapshotted pages and grow past the snapshot.
	as.Write64(base, 0xBAD)
	as.Write64(base+3*PageSize4K, 0xBAD)
	extra := as.Malloc(2 * PageSize4K)
	as.Write64(extra, 0xBAD)
	if len(mem.pages) <= pagesAtSnapshot {
		t.Fatal("growth did not materialise new pages; test is vacuous")
	}

	mem.RestorePages(img)
	alloc.SetState(allocState)
	as.SetHeapState(heapState)

	for i := uint64(0); i < 4; i++ {
		if got := as.Read64(base + i*PageSize4K); got != 100+i {
			t.Fatalf("page %d: read %#x after restore, want %d", i, got, 100+i)
		}
	}
	if got := len(mem.pages); got > pagesAtSnapshot {
		t.Fatalf("%d pages after restore, want <= %d (post-snapshot pages must be discarded)", got, pagesAtSnapshot)
	}
	if got := as.MappedBytes(); got != heapState.Mapped {
		t.Fatalf("MappedBytes %d after restore, want %d", got, heapState.Mapped)
	}

	// The rewound allocator and heap must reproduce the discarded
	// allocation: same VA, same (reused) frames, reading as fresh zeroes.
	extra2 := as.Malloc(2 * PageSize4K)
	if extra2 != extra {
		t.Fatalf("post-restore Malloc returned %#x, pre-restore returned %#x", extra2, extra)
	}
	if got := as.Read64(extra2); got != 0 {
		t.Fatalf("recycled page reads %#x, want 0 (never-written DRAM)", got)
	}
}

// TestSnapshotCleanPagesSkipped: a second restore without intervening
// writes must find nothing dirty (SnapshotPages and RestorePages both
// clear dirty bits), and repeated snapshots see identical contents.
func TestSnapshotCleanPagesSkipped(t *testing.T) {
	mem := NewPhysMem()
	alloc := NewFrameAllocator(64 << 20)
	as := NewAddressSpace(mem, alloc, PageShift4K)

	base := as.Malloc(PageSize4K)
	as.Write64(base, 42)

	img := mem.SnapshotPages()
	for _, p := range mem.pages {
		if p.dirty {
			t.Fatal("SnapshotPages left a dirty page behind")
		}
	}

	as.Write64(base, 43)
	mem.RestorePages(img)
	for _, p := range mem.pages {
		if p.dirty {
			t.Fatal("RestorePages left a dirty page behind")
		}
	}
	if got := as.Read64(base); got != 42 {
		t.Fatalf("read %d after restore, want 42", got)
	}

	// Reads must not dirty pages: restore again and verify nothing moved.
	_ = as.Read64(base)
	mem.RestorePages(img)
	if got := as.Read64(base); got != 42 {
		t.Fatalf("read %d after second restore, want 42", got)
	}
}

// TestSnapshot2MSpaces: 2 MB-page spaces snapshot at the same 4 KB frame
// granularity (superframes are runs of 4 KB frames), and the superframe
// cursor rewinds with AllocState.
func TestSnapshot2MSpaces(t *testing.T) {
	mem := NewPhysMem()
	alloc := NewFrameAllocator(256 << 20)
	as := NewAddressSpace(mem, alloc, PageShift2M)

	base := as.Malloc(PageSize2M)
	as.Write64(base, 7)
	as.Write64(base+PageSize2M-8, 9)

	img := mem.SnapshotPages()
	st := alloc.State()
	hs := as.HeapSnapshot()

	as.Write64(base, 1000)
	extra := as.Malloc(PageSize2M)
	as.Write64(extra, 1001)

	mem.RestorePages(img)
	alloc.SetState(st)
	as.SetHeapState(hs)

	if got := as.Read64(base); got != 7 {
		t.Fatalf("read %d after restore, want 7", got)
	}
	if got := as.Read64(base + PageSize2M - 8); got != 9 {
		t.Fatalf("tail read %d after restore, want 9", got)
	}
	if got := as.Malloc(PageSize2M); got != extra {
		t.Fatalf("post-restore Malloc returned %#x, pre-restore returned %#x", got, extra)
	}
	if as.Alloc() != alloc {
		t.Fatal("Alloc() did not return the backing allocator")
	}
}
