package vm

import "fmt"

// x86-64 long-mode paging constants. A virtual address decomposes into four
// 9-bit indices (PML4, PDP, PD, PT) plus a 12-bit page offset; a 2 MB large
// page terminates the walk at the PD level with the PS bit set.
const (
	levelPML4 = 0
	levelPDP  = 1
	levelPD   = 2
	levelPT   = 3

	// NumLevels is the depth of an x86-64 walk for 4 KB pages.
	NumLevels = 4

	pteSize      = 8
	entriesPerPT = 512

	pteFlagPresent = 1 << 0
	pteFlagWrite   = 1 << 1
	pteFlagPS      = 1 << 7 // page size: entry maps a 2 MB page at PD level

	pteAddrMask = 0x000F_FFFF_FFFF_F000
)

// LevelName returns the conventional x86 name for walk level l (0..3).
func LevelName(l int) string {
	switch l {
	case levelPML4:
		return "PML4"
	case levelPDP:
		return "PDP"
	case levelPD:
		return "PD"
	case levelPT:
		return "PT"
	}
	return fmt.Sprintf("L%d", l)
}

// VPNIndex extracts the 9-bit page table index for walk level l from a
// virtual address, exactly as the hardware walker does (bits 47-39 for
// PML4 down to bits 20-12 for PT).
func VPNIndex(va uint64, l int) uint64 {
	shift := uint(39 - 9*l)
	return (va >> shift) & 0x1FF
}

// Translation is the result of a completed page table walk.
//
// LevelPAs is a value-embedded fixed array rather than a slice so that Walk
// never heap-allocates: translations are created on every functional walk
// and memoised by value in the Translator cache, and the timing-model
// walkers in internal/core replay them per TLB miss. Only the first Levels
// entries are meaningful — use PAs() to iterate.
type Translation struct {
	VA        uint64 // the translated virtual address
	PA        uint64 // full physical address (page base | offset)
	PageShift uint   // 12 for 4 KB, 21 for 2 MB
	Levels    int    // memory references the walk performed (4 or 3)
	LevelPAs  [NumLevels]uint64
}

// PAs returns the physical addresses of the PTEs the walk read, in walk
// order (PML4 first). The slice aliases the Translation's embedded array.
func (t *Translation) PAs() []uint64 { return t.LevelPAs[:t.Levels] }

// PageBase returns the physical base address of the containing page.
func (t Translation) PageBase() uint64 {
	return t.PA &^ ((1 << t.PageShift) - 1)
}

// PageTable is a real x86-64 4-level page table stored in simulated
// physical memory. The table root (CR3) and every intermediate table are
// ordinary physical pages obtained from the frame allocator, so page walks
// performed by the MMU touch the same cached physical memory as data
// accesses do.
type PageTable struct {
	mem   *PhysMem
	alloc *FrameAllocator
	cr3   uint64
}

// NewPageTable allocates an empty table rooted at a fresh frame.
func NewPageTable(mem *PhysMem, alloc *FrameAllocator) *PageTable {
	pt := &PageTable{mem: mem, alloc: alloc}
	pt.cr3 = alloc.Alloc4K()
	return pt
}

// CR3 returns the physical base address of the root (PML4) table.
func (pt *PageTable) CR3() uint64 { return pt.cr3 }

// entryPA returns the physical address of the level-l entry for va given the
// table base for that level.
func entryPA(tableBase, va uint64, l int) uint64 {
	return tableBase + VPNIndex(va, l)*pteSize
}

// ensureTable reads the entry at pa and returns the physical base of the
// next-level table, allocating and installing it if absent.
func (pt *PageTable) ensureTable(pa uint64) uint64 {
	e := pt.mem.Read64(pa)
	if e&pteFlagPresent != 0 {
		if e&pteFlagPS != 0 {
			panic("vm: remapping a large-page entry as a table")
		}
		return e & pteAddrMask
	}
	base := pt.alloc.Alloc4K()
	pt.mem.Write64(pa, base|pteFlagPresent|pteFlagWrite)
	return base
}

// Map4K installs a 4 KB translation va -> pa. Both must be 4 KB aligned.
func (pt *PageTable) Map4K(va, pa uint64) error {
	if va&(PageSize4K-1) != 0 || pa&(PageSize4K-1) != 0 {
		return fmt.Errorf("vm: Map4K alignment: va=%#x pa=%#x", va, pa)
	}
	base := pt.cr3
	for l := levelPML4; l < levelPT; l++ {
		base = pt.ensureTable(entryPA(base, va, l))
	}
	ep := entryPA(base, va, levelPT)
	if pt.mem.Read64(ep)&pteFlagPresent != 0 {
		return fmt.Errorf("vm: va %#x already mapped", va)
	}
	pt.mem.Write64(ep, pa|pteFlagPresent|pteFlagWrite)
	return nil
}

// Map2M installs a 2 MB translation va -> pa. Both must be 2 MB aligned.
func (pt *PageTable) Map2M(va, pa uint64) error {
	if va&(PageSize2M-1) != 0 || pa&(PageSize2M-1) != 0 {
		return fmt.Errorf("vm: Map2M alignment: va=%#x pa=%#x", va, pa)
	}
	base := pt.cr3
	for l := levelPML4; l < levelPD; l++ {
		base = pt.ensureTable(entryPA(base, va, l))
	}
	ep := entryPA(base, va, levelPD)
	if pt.mem.Read64(ep)&pteFlagPresent != 0 {
		return fmt.Errorf("vm: va %#x already mapped", va)
	}
	pt.mem.Write64(ep, pa|pteFlagPresent|pteFlagWrite|pteFlagPS)
	return nil
}

// Walk performs a full page table walk for va, returning the translation
// and the physical address of every PTE read. It mirrors exactly what the
// hardware walker does; internal/core issues the same loads through the
// timing model.
func (pt *PageTable) Walk(va uint64) (Translation, error) {
	t := Translation{VA: va}
	base := pt.cr3
	for l := levelPML4; l < NumLevels; l++ {
		ep := entryPA(base, va, l)
		t.LevelPAs[l] = ep
		t.Levels = l + 1
		e := pt.mem.Read64(ep)
		if e&pteFlagPresent == 0 {
			return t, fmt.Errorf("vm: page fault at va %#x (level %s)", va, LevelName(l))
		}
		if l == levelPD && e&pteFlagPS != 0 {
			t.PageShift = PageShift2M
			t.PA = (e & pteAddrMask &^ (PageSize2M - 1)) | (va & (PageSize2M - 1))
			return t, nil
		}
		base = e & pteAddrMask
		if l == levelPT {
			t.PageShift = PageShift4K
			t.PA = base | (va & (PageSize4K - 1))
			return t, nil
		}
	}
	panic("vm: unreachable walk state")
}

// Translate is a convenience wrapper returning only the physical address.
func (pt *PageTable) Translate(va uint64) (uint64, bool) {
	t, err := pt.Walk(va)
	if err != nil {
		return 0, false
	}
	return t.PA, true
}
