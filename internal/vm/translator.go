package vm

import "fmt"

// Translator memoises page table walks per virtual page so the simulator's
// functional path (instruction execution, workload setup) can translate at
// map-lookup speed. The timing path in internal/core uses the memoised
// Translation's LevelPAs to issue the walk's loads through the timing model;
// the translations themselves never change during a kernel (the paper's
// workloads take no page faults or shootdowns mid-run, section 6.2).
type Translator struct {
	pt    *PageTable
	shift uint
	cache map[uint64]Translation
}

// NewTranslator wraps pt, caching at the address space's page granularity.
func NewTranslator(pt *PageTable, pageShift uint) *Translator {
	return &Translator{pt: pt, shift: pageShift, cache: make(map[uint64]Translation)}
}

// PageShift returns the translation granularity.
func (t *Translator) PageShift() uint { return t.shift }

// VPN returns the virtual page number of va at this granularity.
func (t *Translator) VPN(va uint64) uint64 { return va >> t.shift }

// MemoSize reports how many page translations are currently memoised
// (tests observe walk caching and Prewarm coverage through it).
func (t *Translator) MemoSize() int { return len(t.cache) }

// Lookup returns the cached translation for the page containing va,
// walking the page table on first use.
func (t *Translator) Lookup(va uint64) Translation {
	vpn := t.VPN(va)
	if tr, ok := t.cache[vpn]; ok {
		return tr
	}
	tr, err := t.pt.Walk(va &^ ((1 << t.shift) - 1))
	if err != nil {
		panic(fmt.Sprintf("vm: translator: %v", err))
	}
	if tr.PageShift != t.shift {
		panic(fmt.Sprintf("vm: translator: page shift mismatch: got %d want %d", tr.PageShift, t.shift))
	}
	t.cache[vpn] = tr
	return tr
}

// Translate returns the physical address for va.
func (t *Translator) Translate(va uint64) uint64 {
	tr := t.Lookup(va)
	return tr.PageBase() | (va & ((1 << t.shift) - 1))
}

// Prewarm eagerly memoises the translation of every page mapped in the page
// table by enumerating the radix tree from CR3. Afterwards the cache map is
// never written again (the paper's workloads take no page faults or remaps
// mid-kernel), so concurrent readers — the parallel compute phase of a
// multi-worker simulation run — can call Lookup/Translate without
// synchronisation.
func (t *Translator) Prewarm() {
	t.prewarmTable(t.pt.CR3(), 0, levelPML4)
}

// prewarmTable walks one table page at walk level l; vaBase carries the
// virtual-address bits contributed by the indices of the levels above.
func (t *Translator) prewarmTable(tableBase, vaBase uint64, l int) {
	shift := uint(39 - 9*l)
	for i := uint64(0); i < entriesPerPT; i++ {
		e := t.pt.mem.Read64(tableBase + i*pteSize)
		if e&pteFlagPresent == 0 {
			continue
		}
		va := vaBase | i<<shift
		if (l == levelPD && e&pteFlagPS != 0) || l == levelPT {
			if va&(1<<47) != 0 {
				va |= 0xFFFF_0000_0000_0000 // canonical sign extension
			}
			t.Lookup(va)
			continue
		}
		t.prewarmTable(e&pteAddrMask, va, l+1)
	}
}
