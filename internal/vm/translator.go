package vm

import "fmt"

// Translator memoises page table walks per virtual page so the simulator's
// functional path (instruction execution, workload setup) can translate at
// map-lookup speed. The timing path in internal/core uses the memoised
// Translation's LevelPAs to issue the walk's loads through the timing model;
// the translations themselves never change during a kernel (the paper's
// workloads take no page faults or shootdowns mid-run, section 6.2).
type Translator struct {
	pt    *PageTable
	shift uint
	cache map[uint64]Translation
}

// NewTranslator wraps pt, caching at the address space's page granularity.
func NewTranslator(pt *PageTable, pageShift uint) *Translator {
	return &Translator{pt: pt, shift: pageShift, cache: make(map[uint64]Translation)}
}

// PageShift returns the translation granularity.
func (t *Translator) PageShift() uint { return t.shift }

// VPN returns the virtual page number of va at this granularity.
func (t *Translator) VPN(va uint64) uint64 { return va >> t.shift }

// Lookup returns the cached translation for the page containing va,
// walking the page table on first use.
func (t *Translator) Lookup(va uint64) Translation {
	vpn := t.VPN(va)
	if tr, ok := t.cache[vpn]; ok {
		return tr
	}
	tr, err := t.pt.Walk(va &^ ((1 << t.shift) - 1))
	if err != nil {
		panic(fmt.Sprintf("vm: translator: %v", err))
	}
	if tr.PageShift != t.shift {
		panic(fmt.Sprintf("vm: translator: page shift mismatch: got %d want %d", tr.PageShift, t.shift))
	}
	t.cache[vpn] = tr
	return tr
}

// Translate returns the physical address for va.
func (t *Translator) Translate(va uint64) uint64 {
	tr := t.Lookup(va)
	return tr.PageBase() | (va & ((1 << t.shift) - 1))
}
