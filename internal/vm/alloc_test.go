package vm

import "testing"

// TestWalkAllocFree pins the allocation-free functional walk: Walk fills a
// value-embedded LevelPAs array, so page table walks — executed once per
// TLB miss plus once per memoised functional translation — must not touch
// the heap.
func TestWalkAllocFree(t *testing.T) {
	mem := NewPhysMem()
	alloc := NewFrameAllocator(1 << 20)
	pt := NewPageTable(mem, alloc)
	va := uint64(0x5C00_0000_0000)
	if err := pt.Map4K(va, alloc.Alloc4K()); err != nil {
		t.Fatal(err)
	}
	// Warm: materialise any lazily created physical pages.
	if _, err := pt.Walk(va); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := pt.Walk(va); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("PageTable.Walk allocates %.1f objects per walk, want 0", avg)
	}
}

// TestTranslatorHitAllocFree pins the memoised translation hit path used by
// every functional load/store in the simulator.
func TestTranslatorHitAllocFree(t *testing.T) {
	mem := NewPhysMem()
	alloc := NewFrameAllocator(1 << 20)
	pt := NewPageTable(mem, alloc)
	va := uint64(0x5C00_0000_0000)
	if err := pt.Map4K(va, alloc.Alloc4K()); err != nil {
		t.Fatal(err)
	}
	tr := NewTranslator(pt, PageShift4K)
	tr.Lookup(va) // prime the cache
	avg := testing.AllocsPerRun(200, func() {
		if got := tr.Translate(va + 8); got == 0 {
			t.Fatal("unexpected zero translation")
		}
	})
	if avg != 0 {
		t.Fatalf("Translator hit allocates %.1f objects per lookup, want 0", avg)
	}
}
