package vm

import "testing"

func TestInventoryCountsMappings(t *testing.T) {
	m := NewPhysMem()
	a := NewFrameAllocator(1 << 20)
	as := NewAddressSpace(m, a, PageShift4K)
	as.Malloc(10 * PageSize4K)
	inv := as.PT.Inventory()
	if inv.Mappings4K != 10 || inv.Mappings2M != 0 {
		t.Fatalf("mappings = %d/%d, want 10/0", inv.Mappings4K, inv.Mappings2M)
	}
	if inv.TablePages[0] != 1 || inv.TablePages[1] != 1 || inv.TablePages[2] != 1 || inv.TablePages[3] < 1 {
		t.Fatalf("table pages = %v", inv.TablePages)
	}
	if inv.MappedBytes() != 10*PageSize4K {
		t.Fatalf("mapped bytes = %d", inv.MappedBytes())
	}
	if inv.TableBytes() != inv.TotalTablePages()*PageSize4K {
		t.Fatal("table bytes mismatch")
	}
}

func TestInventory2M(t *testing.T) {
	m := NewPhysMem()
	a := NewFrameAllocator(1 << 20)
	as := NewAddressSpace(m, a, PageShift2M)
	as.Malloc(4 << 20) // two large pages
	inv := as.PT.Inventory()
	if inv.Mappings2M != 2 || inv.Mappings4K != 0 {
		t.Fatalf("mappings = %d/%d, want 0/2", inv.Mappings4K, inv.Mappings2M)
	}
	if inv.TablePages[3] != 0 {
		t.Fatalf("2M-only table has %d PT pages", inv.TablePages[3])
	}
	if inv.MappedBytes() != 4<<20 {
		t.Fatalf("mapped bytes = %d", inv.MappedBytes())
	}
}

func TestInventorySpansUpperLevels(t *testing.T) {
	m := NewPhysMem()
	a := NewFrameAllocator(1 << 20)
	pt := NewPageTable(m, a)
	// Two VAs in different PML4 slots force two subtrees.
	if err := pt.Map4K(0x0000_0000_0000_0000, a.Alloc4K()); err != nil {
		t.Fatal(err)
	}
	if err := pt.Map4K(0x0000_7F00_0000_0000, a.Alloc4K()); err != nil {
		t.Fatal(err)
	}
	inv := pt.Inventory()
	if inv.TablePages[1] != 2 || inv.TablePages[2] != 2 || inv.TablePages[3] != 2 {
		t.Fatalf("table pages = %v, want two subtrees", inv.TablePages)
	}
	if inv.Mappings4K != 2 {
		t.Fatalf("mappings = %d", inv.Mappings4K)
	}
}
