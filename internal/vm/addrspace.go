package vm

import "fmt"

// AddressSpace is a process-like virtual address space: a page table plus a
// bump-allocated heap. Workloads build their data structures here before a
// kernel launches, and the GPU then accesses the same unified address space
// — the property the paper's MMU work exists to support.
type AddressSpace struct {
	Mem   *PhysMem
	PT    *PageTable
	alloc *FrameAllocator

	brk       uint64 // next unallocated virtual address
	pageShift uint   // mapping granularity: PageShift4K or PageShift2M
	mapped    uint64 // bytes of virtual memory mapped
}

// heapBase is where the simulated heap starts; it is far from zero so that
// high-order VA bits exercise all four page table levels realistically.
const heapBase = 0x0000_5C00_0000_0000

// NewAddressSpace creates a space backed by mem and alloc, mapping the heap
// with pages of 1<<pageShift bytes (PageShift4K or PageShift2M).
func NewAddressSpace(mem *PhysMem, alloc *FrameAllocator, pageShift uint) *AddressSpace {
	if pageShift != PageShift4K && pageShift != PageShift2M {
		panic("vm: unsupported page shift")
	}
	return &AddressSpace{
		Mem:       mem,
		PT:        NewPageTable(mem, alloc),
		alloc:     alloc,
		brk:       heapBase,
		pageShift: pageShift,
	}
}

// PageShift reports the mapping granularity of this space.
func (as *AddressSpace) PageShift() uint { return as.pageShift }

// Alloc returns the frame allocator backing this space (snapshot capture
// and restore need its cursors).
func (as *AddressSpace) Alloc() *FrameAllocator { return as.alloc }

// HeapBase returns the virtual address where the heap starts (the base of
// the first Malloc). Reference-model digests iterate mappings from here.
func (as *AddressSpace) HeapBase() uint64 { return heapBase }

// MappedBytes reports how much virtual memory has been mapped.
func (as *AddressSpace) MappedBytes() uint64 { return as.mapped }

// Malloc reserves size bytes of fresh, eagerly mapped virtual memory and
// returns its base address. Allocations are page-aligned and padded to a
// whole number of pages; an extra guard page of slack separates allocations
// so off-by-one kernels fault loudly instead of corrupting neighbours.
func (as *AddressSpace) Malloc(size uint64) uint64 {
	if size == 0 {
		size = 1
	}
	pageSize := uint64(1) << as.pageShift
	base := (as.brk + pageSize - 1) &^ (pageSize - 1)
	pages := (size + pageSize - 1) / pageSize
	for i := uint64(0); i < pages; i++ {
		va := base + i*pageSize
		var err error
		if as.pageShift == PageShift2M {
			err = as.PT.Map2M(va, as.alloc.Alloc2M())
		} else {
			err = as.PT.Map4K(va, as.alloc.Alloc4K())
		}
		if err != nil {
			panic(fmt.Sprintf("vm: Malloc mapping failed: %v", err))
		}
	}
	as.mapped += pages * pageSize
	as.brk = base + (pages+1)*pageSize // +1 page of guard slack
	return base
}

func (as *AddressSpace) translate(va uint64) uint64 {
	pa, ok := as.PT.Translate(va)
	if !ok {
		panic(fmt.Sprintf("vm: access to unmapped va %#x", va))
	}
	return pa
}

// Write64 stores a 64-bit value at virtual address va.
func (as *AddressSpace) Write64(va, val uint64) { as.Mem.Write64(as.translate(va), val) }

// Read64 loads a 64-bit value from virtual address va.
func (as *AddressSpace) Read64(va uint64) uint64 { return as.Mem.Read64(as.translate(va)) }

// Write32 stores a 32-bit value at virtual address va.
func (as *AddressSpace) Write32(va uint64, val uint32) { as.Mem.Write32(as.translate(va), val) }

// Read32 loads a 32-bit value from virtual address va.
func (as *AddressSpace) Read32(va uint64) uint32 { return as.Mem.Read32(as.translate(va)) }

// WriteU8 stores one byte at virtual address va.
func (as *AddressSpace) WriteU8(va uint64, val byte) { as.Mem.WriteU8(as.translate(va), val) }

// ReadU8 loads one byte from virtual address va.
func (as *AddressSpace) ReadU8(va uint64) byte { return as.Mem.ReadU8(as.translate(va)) }
