package vm

// Snapshot primitives for checkpointed warm-start simulation
// (internal/snapshot). A checkpoint of a built workload is, at the VM
// layer, three things: a deep copy of every materialised physical page
// (data pages and the page table pages that live among them), the frame
// allocator's cursors, and the address space's heap cursor. Everything
// else a run mutates lives in per-run structures (GPU, mem.System, stats)
// that are rebuilt from the hardware config, so restoring these three
// rewinds the machine to the exact post-build state.

// PageImage is a deep copy of a PhysMem's materialised pages, keyed by
// 4 KB frame number. It is immutable after capture; restores copy out of
// it, never alias it.
type PageImage map[uint64]*[PageSize4K]byte

// SnapshotPages deep-copies every materialised page and marks the current
// contents clean, so a later RestorePages only rewrites frames written
// after this call.
func (m *PhysMem) SnapshotPages() PageImage {
	img := make(PageImage, len(m.pages))
	for fn, p := range m.pages {
		cp := p.data
		img[fn] = &cp
		p.dirty = false
	}
	return img
}

// RestorePages rewinds memory contents to a snapshot previously taken on
// this PhysMem with SnapshotPages. Frames written since the snapshot are
// restored from the image; frames materialised since the snapshot are
// discarded (they read as zeroes again, like never-written DRAM). Frames
// are never unmapped by the simulator, so a clean page is already
// byte-identical to its image and is skipped.
func (m *PhysMem) RestorePages(img PageImage) {
	for fn, p := range m.pages {
		if !p.dirty {
			continue
		}
		if src, ok := img[fn]; ok {
			p.data = *src
			p.dirty = false
		} else {
			delete(m.pages, fn)
		}
	}
}

// AllocState is a FrameAllocator's mutable state, captured for snapshot
// restore.
type AllocState struct {
	Next      uint64
	NextSuper uint64
}

// State captures the allocator's cursors.
func (a *FrameAllocator) State() AllocState {
	return AllocState{Next: a.next, NextSuper: a.nextSuper}
}

// SetState rewinds the allocator's cursors to a captured state.
func (a *FrameAllocator) SetState(s AllocState) {
	a.next, a.nextSuper = s.Next, s.NextSuper
}

// HeapState is an AddressSpace's mutable state, captured for snapshot
// restore. The page table itself lives in simulated physical memory and is
// covered by the PhysMem page image.
type HeapState struct {
	Brk    uint64
	Mapped uint64
}

// HeapSnapshot captures the heap cursor.
func (as *AddressSpace) HeapSnapshot() HeapState {
	return HeapState{Brk: as.brk, Mapped: as.mapped}
}

// SetHeapState rewinds the heap cursor to a captured state.
func (as *AddressSpace) SetHeapState(s HeapState) {
	as.brk, as.mapped = s.Brk, s.Mapped
}
