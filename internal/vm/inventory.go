package vm

// Inventory summarises a page table's structure: how many table pages
// exist at each level and how many leaf mappings of each size are
// installed. The experiment tooling uses it to report the translation
// footprint a workload imposes (every table page is also a potential walk
// target in the simulated physical memory).
type Inventory struct {
	TablePages [NumLevels]int // PML4/PDP/PD/PT pages allocated
	Mappings4K int
	Mappings2M int
}

// TotalTablePages sums table pages across levels.
func (inv Inventory) TotalTablePages() int {
	n := 0
	for _, c := range inv.TablePages {
		n += c
	}
	return n
}

// TableBytes is the physical memory the page tables themselves occupy.
func (inv Inventory) TableBytes() int { return inv.TotalTablePages() * PageSize4K }

// MappedBytes is the virtual memory reachable through leaf entries.
func (inv Inventory) MappedBytes() uint64 {
	return uint64(inv.Mappings4K)*PageSize4K + uint64(inv.Mappings2M)*PageSize2M
}

// Inventory walks the whole radix tree and reports its shape.
func (pt *PageTable) Inventory() Inventory {
	var inv Inventory
	pt.scan(pt.cr3, levelPML4, &inv)
	return inv
}

func (pt *PageTable) scan(base uint64, level int, inv *Inventory) {
	inv.TablePages[level]++
	for i := uint64(0); i < entriesPerPT; i++ {
		e := pt.mem.Read64(base + i*pteSize)
		if e&pteFlagPresent == 0 {
			continue
		}
		switch {
		case level == levelPT:
			inv.Mappings4K++
		case level == levelPD && e&pteFlagPS != 0:
			inv.Mappings2M++
		default:
			pt.scan(e&pteAddrMask, level+1, inv)
		}
	}
}
