package vm

import (
	"testing"
	"testing/quick"
)

func newTestPT() (*PageTable, *PhysMem, *FrameAllocator) {
	m := NewPhysMem()
	a := NewFrameAllocator(1 << 20)
	return NewPageTable(m, a), m, a
}

func TestVPNIndex(t *testing.T) {
	// Bits 47-39, 38-30, 29-21, 20-12.
	va := uint64(0x5C00_1234_5000)
	want := []uint64{
		(va >> 39) & 0x1FF,
		(va >> 30) & 0x1FF,
		(va >> 21) & 0x1FF,
		(va >> 12) & 0x1FF,
	}
	for l, w := range want {
		if got := VPNIndex(va, l); got != w {
			t.Fatalf("level %s index = %#x, want %#x", LevelName(l), got, w)
		}
	}
}

func TestMapWalk4K(t *testing.T) {
	pt, _, a := newTestPT()
	va := uint64(0x5C00_0000_0000)
	pa := a.Alloc4K()
	if err := pt.Map4K(va, pa); err != nil {
		t.Fatal(err)
	}
	tr, err := pt.Walk(va + 0x123)
	if err != nil {
		t.Fatal(err)
	}
	if tr.PA != pa+0x123 {
		t.Fatalf("walk PA = %#x, want %#x", tr.PA, pa+0x123)
	}
	if tr.Levels != 4 || tr.PageShift != PageShift4K {
		t.Fatalf("walk meta = %d levels, shift %d", tr.Levels, tr.PageShift)
	}
	if len(tr.LevelPAs) != 4 {
		t.Fatalf("walk recorded %d PTE addresses", len(tr.LevelPAs))
	}
}

func TestMapWalk2M(t *testing.T) {
	pt, _, a := newTestPT()
	va := uint64(0x5C00_0020_0000)
	pa := a.Alloc2M()
	if err := pt.Map2M(va, pa); err != nil {
		t.Fatal(err)
	}
	tr, err := pt.Walk(va + 0x12345)
	if err != nil {
		t.Fatal(err)
	}
	if tr.PA != pa+0x12345 {
		t.Fatalf("walk PA = %#x, want %#x", tr.PA, pa+0x12345)
	}
	if tr.Levels != 3 || tr.PageShift != PageShift2M {
		t.Fatalf("walk meta = %d levels, shift %d", tr.Levels, tr.PageShift)
	}
}

func TestWalkUnmappedFaults(t *testing.T) {
	pt, _, _ := newTestPT()
	if _, err := pt.Walk(0x1234_5000); err == nil {
		t.Fatal("walk of unmapped address did not fault")
	}
	if _, ok := pt.Translate(0x1234_5000); ok {
		t.Fatal("translate of unmapped address succeeded")
	}
}

func TestDoubleMapRejected(t *testing.T) {
	pt, _, a := newTestPT()
	va := uint64(0x5C00_0000_0000)
	if err := pt.Map4K(va, a.Alloc4K()); err != nil {
		t.Fatal(err)
	}
	if err := pt.Map4K(va, a.Alloc4K()); err == nil {
		t.Fatal("remap did not error")
	}
}

func TestMapAlignmentRejected(t *testing.T) {
	pt, _, a := newTestPT()
	if err := pt.Map4K(0x1001, a.Alloc4K()); err == nil {
		t.Fatal("unaligned 4K va accepted")
	}
	if err := pt.Map2M(0x1000, a.Alloc2M()); err == nil {
		t.Fatal("unaligned 2M va accepted")
	}
}

// TestWalkSharesUpperLevels: two VAs within the same 2 MB region must share
// their PML4, PDP, and PD entry addresses and differ only at the PT level —
// the property the paper's PTW scheduler exploits (figure 8).
func TestWalkSharesUpperLevels(t *testing.T) {
	pt, _, a := newTestPT()
	va1 := uint64(0x5C00_0000_0000)
	va2 := va1 + PageSize4K
	if err := pt.Map4K(va1, a.Alloc4K()); err != nil {
		t.Fatal(err)
	}
	if err := pt.Map4K(va2, a.Alloc4K()); err != nil {
		t.Fatal(err)
	}
	t1, _ := pt.Walk(va1)
	t2, _ := pt.Walk(va2)
	for l := 0; l < 3; l++ {
		if t1.LevelPAs[l] != t2.LevelPAs[l] {
			t.Fatalf("level %s PTE addresses differ: %#x vs %#x", LevelName(l), t1.LevelPAs[l], t2.LevelPAs[l])
		}
	}
	if t1.LevelPAs[3] == t2.LevelPAs[3] {
		t.Fatal("PT-level entries should differ")
	}
	// Adjacent pages' PT entries share a cache line (16 PTEs per 128 B).
	if t1.LevelPAs[3]>>7 != t2.LevelPAs[3]>>7 {
		t.Fatal("adjacent PT entries not on the same 128-byte line")
	}
}

// TestWalkMatchesMapQuick property-tests Map4K/Walk agreement over random
// page-aligned virtual addresses in the canonical lower half.
func TestWalkMatchesMapQuick(t *testing.T) {
	pt, _, a := newTestPT()
	mapped := make(map[uint64]uint64)
	f := func(raw uint64) bool {
		va := (raw % (1 << 47)) &^ (PageSize4K - 1)
		if _, dup := mapped[va]; dup {
			pa, _ := pt.Translate(va)
			return pa == mapped[va]
		}
		pa := a.Alloc4K()
		if err := pt.Map4K(va, pa); err != nil {
			return false
		}
		mapped[va] = pa
		got, ok := pt.Translate(va)
		return ok && got == pa
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAddressSpaceMallocReadWrite(t *testing.T) {
	m := NewPhysMem()
	a := NewFrameAllocator(1 << 20)
	as := NewAddressSpace(m, a, PageShift4K)
	base := as.Malloc(64 << 10)
	for i := uint64(0); i < 64<<10; i += 8 {
		as.Write64(base+i, i*3)
	}
	for i := uint64(0); i < 64<<10; i += 8 {
		if got := as.Read64(base + i); got != i*3 {
			t.Fatalf("readback at +%d = %d, want %d", i, got, i*3)
		}
	}
}

func TestAddressSpaceAllocationsDisjoint(t *testing.T) {
	m := NewPhysMem()
	a := NewFrameAllocator(1 << 20)
	as := NewAddressSpace(m, a, PageShift4K)
	x := as.Malloc(100)
	y := as.Malloc(100)
	as.Write64(x, 111)
	as.Write64(y, 222)
	if as.Read64(x) != 111 || as.Read64(y) != 222 {
		t.Fatal("allocations alias")
	}
	if y < x+PageSize4K {
		t.Fatalf("allocations overlap: %#x then %#x", x, y)
	}
}

func TestAddressSpaceGuardPageUnmapped(t *testing.T) {
	m := NewPhysMem()
	a := NewFrameAllocator(1 << 20)
	as := NewAddressSpace(m, a, PageShift4K)
	x := as.Malloc(PageSize4K)
	defer func() {
		if recover() == nil {
			t.Fatal("guard page access did not panic")
		}
	}()
	as.Read64(x + PageSize4K) // one past the allocation: guard slack
}

func TestAddressSpace2M(t *testing.T) {
	m := NewPhysMem()
	a := NewFrameAllocator(1 << 20)
	as := NewAddressSpace(m, a, PageShift2M)
	base := as.Malloc(3 << 20) // 2 large pages
	as.Write64(base, 42)
	as.Write64(base+(2<<20), 43)
	if as.Read64(base) != 42 || as.Read64(base+(2<<20)) != 43 {
		t.Fatal("2M-backed readback failed")
	}
	tr, err := as.PT.Walk(base)
	if err != nil || tr.PageShift != PageShift2M {
		t.Fatalf("expected 2M mapping, got shift %d err %v", tr.PageShift, err)
	}
}

func TestTranslatorMemoises(t *testing.T) {
	m := NewPhysMem()
	a := NewFrameAllocator(1 << 20)
	as := NewAddressSpace(m, a, PageShift4K)
	base := as.Malloc(PageSize4K * 4)
	tr := NewTranslator(as.PT, PageShift4K)
	want, _ := as.PT.Translate(base + 8)
	if got := tr.Translate(base + 8); got != want {
		t.Fatalf("translator = %#x, want %#x", got, want)
	}
	// Second lookup hits the memo (same result).
	if got := tr.Translate(base + 16); got != want+8 {
		t.Fatalf("translator offset = %#x, want %#x", got, want+8)
	}
	lk := tr.Lookup(base)
	if len(lk.LevelPAs) != 4 {
		t.Fatalf("lookup carries %d level PAs", len(lk.LevelPAs))
	}
}
