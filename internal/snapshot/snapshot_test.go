package snapshot

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"gpummu/internal/config"
	"gpummu/internal/gpu"
	"gpummu/internal/stats"
	"gpummu/internal/workloads"
)

// memFingerprint hashes all mapped memory via the page table (FNV-1a over
// the heap walked in VA order), the same normalisation the gpu package's
// equivalence tests use: identical fingerprints mean identical results.
func memFingerprint(w *workloads.Workload) uint64 {
	var h uint64 = 0xcbf29ce484222325
	base := uint64(0x0000_5C00_0000_0000)
	end := base + w.AS.MappedBytes() + (16 << 20)
	for va := base; va < end; va += 64 {
		if _, ok := w.AS.PT.Translate(va); !ok {
			va += 4032
			continue
		}
		for off := uint64(0); off < 64; off += 8 {
			h ^= w.AS.Read64(va + off)
			h *= 0x100000001b3
		}
	}
	return h
}

// runOutput is everything observable from one simulation: the full stats
// JSON, the final memory image, the cycle count, and the Chrome trace
// bytes (event-by-event timing, so any restore-induced drift shows up).
type runOutput struct {
	stats  []byte
	mem    uint64
	cycles uint64
	trace  []byte
}

func runWorkload(t *testing.T, cfg config.Hardware, w *workloads.Workload, par int) runOutput {
	t.Helper()
	st := &stats.Sim{}
	g, err := gpu.New(cfg, w.AS, st)
	if err != nil {
		t.Fatal(err)
	}
	g.MaxCycles = 50_000_000
	g.Workers = par
	var traceBuf bytes.Buffer
	ct := gpu.NewChromeTracer(&traceBuf, cfg.NumCores)
	g.SetTracer(ct)
	cycles, err := g.Run(w.Launch)
	if err != nil {
		t.Fatalf("par=%d: %v", par, err)
	}
	if err := ct.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Check != nil {
		if err := w.Check(); err != nil {
			t.Fatalf("par=%d: functional check: %v", par, err)
		}
	}
	js, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return runOutput{stats: js, mem: memFingerprint(w), cycles: cycles, trace: traceBuf.Bytes()}
}

// TestRestoreRunByteIdentical is the round-trip contract: a run restored
// from a post-build checkpoint must be byte-identical to a cold run —
// stats JSON, final memory image, cycle count, and the full Chrome trace —
// for any -par worker count. The tiny bfs run lasts tens of thousands of
// cycles, well past the run loop's periodic prune cadence, so the restore
// also proves contention bookkeeping starts from a clean slate.
func TestRestoreRunByteIdentical(t *testing.T) {
	cfg := config.SmallTest()
	cfg.MMU = config.AugmentedMMU()

	for _, par := range []int{1, 2, 8} {
		cold, err := workloads.Build("bfs", workloads.SizeTiny, cfg.PageShift, 7)
		if err != nil {
			t.Fatal(err)
		}
		want := runWorkload(t, cfg, cold, par)

		warm, err := workloads.Build("bfs", workloads.SizeTiny, cfg.PageShift, 7)
		if err != nil {
			t.Fatal(err)
		}
		img := Capture(warm.AS)
		// Dirty the instance with a full run, then rewind and rerun.
		runWorkload(t, cfg, warm, par)
		img.Restore(warm.AS)
		got := runWorkload(t, cfg, warm, par)

		if got.cycles != want.cycles {
			t.Fatalf("par=%d: restored run simulated %d cycles, cold %d", par, got.cycles, want.cycles)
		}
		if !bytes.Equal(got.stats, want.stats) {
			t.Fatalf("par=%d: restored run stats diverged from cold:\ngot:\n%s\nwant:\n%s", par, got.stats, want.stats)
		}
		if got.mem != want.mem {
			t.Fatalf("par=%d: restored run memory image diverged: %x vs %x", par, got.mem, want.mem)
		}
		if !bytes.Equal(got.trace, want.trace) {
			t.Fatalf("par=%d: restored run Chrome trace diverged from cold (%d vs %d bytes)", par, len(got.trace), len(want.trace))
		}
	}
}

// TestRestoreUndoesMutation pins the restore mechanics directly: writes
// made after Capture — including to pages the snapshot never saw — vanish
// on Restore, and the allocator/heap rewind with them.
func TestRestoreUndoesMutation(t *testing.T) {
	w, err := workloads.Build("pointerchase", workloads.SizeTiny, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	before := memFingerprint(w)
	img := Capture(w.AS)

	// Scribble over the mapped heap (the layout may be sparse, so probe the
	// page table first).
	base := uint64(0x0000_5C00_0000_0000)
	for va := base; va < base+w.AS.MappedBytes(); va += 4096 {
		if _, ok := w.AS.PT.Translate(va); ok {
			w.AS.Write64(va, 0xDEAD_BEEF_DEAD_BEEF)
		}
	}
	if memFingerprint(w) == before {
		t.Fatal("mutation did not change the fingerprint; test is vacuous")
	}

	img.Restore(w.AS)
	if got := memFingerprint(w); got != before {
		t.Fatalf("restore did not rewind memory: %x vs %x", got, before)
	}
}

// TestPoolAccounting pins the build/restore bookkeeping: the first
// acquisition of a key builds, later ones restore, and a key held busy
// forces an extra cold build rather than blocking.
func TestPoolAccounting(t *testing.T) {
	p := NewPool()

	w1, rel1, err := p.Acquire("pointerchase", workloads.SizeTiny, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s := p.Stats(); s.Builds != 1 || s.Restores != 0 {
		t.Fatalf("first acquire: %+v, want 1 build 0 restores", s)
	}

	// Key busy: a second acquisition must build another instance.
	w2, rel2, err := p.Acquire("pointerchase", workloads.SizeTiny, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	if w1 == w2 {
		t.Fatal("busy key handed out the same instance twice")
	}
	if s := p.Stats(); s.Builds != 2 || s.Restores != 0 {
		t.Fatalf("busy acquire: %+v, want 2 builds 0 restores", s)
	}
	rel1()
	rel1() // release is idempotent
	rel2()

	// Both instances idle: the next two acquisitions restore.
	_, rel3, err := p.Acquire("pointerchase", workloads.SizeTiny, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer rel3()
	if s := p.Stats(); s.Builds != 2 || s.Restores != 1 {
		t.Fatalf("idle acquire: %+v, want 2 builds 1 restore", s)
	}

	// A different key never shares instances.
	_, rel4, err := p.Acquire("pointerchase", workloads.SizeTiny, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer rel4()
	if s := p.Stats(); s.Builds != 3 || s.Restores != 1 {
		t.Fatalf("new key: %+v, want 3 builds 1 restore", s)
	}
}

// TestPoolConcurrentAcquire hammers one key from many goroutines (the
// executor's -j worker pool does exactly this) — run under -race via
// tools/ci.sh. Every acquisition must be served, served instances must be
// disjoint while held, and every instance handed out must carry the
// byte-identical pristine memory image — each goroutine scribbles over its
// instance before releasing, so any restore shortfall (or cross-goroutine
// sharing) shows up as a fingerprint mismatch on a later acquisition.
func TestPoolConcurrentAcquire(t *testing.T) {
	// The oracle: a fresh build with the same identity. Builds are
	// deterministic, so every restored instance must fingerprint the same.
	pristine, err := workloads.Build("pointerchase", workloads.SizeTiny, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := memFingerprint(pristine)

	p := NewPool()
	const goroutines, rounds = 8, 5

	var mu sync.Mutex
	held := map[*workloads.Workload]bool{}

	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				w, release, err := p.Acquire("pointerchase", workloads.SizeTiny, 12, 3)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if held[w] {
					t.Error("pool handed one instance to two holders")
				}
				held[w] = true
				mu.Unlock()

				if got := memFingerprint(w); got != want {
					t.Errorf("acquired instance image %x, pristine %x", got, want)
				}
				// Dirty the instance so the next restore has work to do.
				w.AS.Write64(0x0000_5C00_0000_0000, uint64(r)+1)

				mu.Lock()
				held[w] = false
				mu.Unlock()
				release()
			}
		}()
	}
	wg.Wait()

	s := p.Stats()
	if got := s.Builds + s.Restores; got != goroutines*rounds {
		t.Fatalf("served %d acquisitions, want %d (%+v)", got, goroutines*rounds, s)
	}
	if s.Builds < 1 || s.Builds > goroutines {
		t.Fatalf("builds %d out of range [1,%d]", s.Builds, goroutines)
	}
}
