// Package snapshot implements checkpointed warm-start simulation: capture
// the full simulator state of a freshly built workload — physical memory
// (data pages and the page tables materialised inside it), the frame
// allocator, and the address-space heap cursor — and rewind a used
// instance back to that state in place, so the N hardware points of a
// sweep that share one workload restore from a checkpoint instead of
// rebuilding the dataset and page tables from scratch.
//
// Restoring in place (rather than cloning into a fresh AddressSpace) is
// forced by the workload contract: Workload.Check closures capture the
// original *vm.AddressSpace plus host-side expected data, so a warm run
// must reuse the same instance the builder produced. Everything a run
// mutates outside the captured state — GPU cores, warps, caches, TLBs,
// contention bookkeeping, statistics — lives in per-run structures that
// are rebuilt cheaply from the hardware config, and warp/core state at
// checkpoint time is exactly the reset state gpu.New + Run recreate, so a
// restored run is byte-identical to a cold one (pinned by the round-trip
// tests and the ci.sh checkpoint-equivalence gate; DESIGN.md §14).
package snapshot

import (
	"fmt"
	"sync"

	"gpummu/internal/vm"
	"gpummu/internal/workloads"
)

// Image is the pristine post-build state of one workload instance. It is
// immutable after Capture; restores copy out of it.
type Image struct {
	pages vm.PageImage
	alloc vm.AllocState
	heap  vm.HeapState
}

// Capture snapshots the address space of a just-built workload. It must be
// called before the first run (the image is the restore target, so a dirty
// capture would bake run effects into every warm start).
func Capture(as *vm.AddressSpace) *Image {
	return &Image{
		pages: as.Mem.SnapshotPages(),
		alloc: as.Alloc().State(),
		heap:  as.HeapSnapshot(),
	}
}

// Restore rewinds the address space to the captured state in place. Only
// pages written since the capture (or the previous restore) are rewritten,
// so a restore costs the run's write footprint, not the build footprint.
func (img *Image) Restore(as *vm.AddressSpace) {
	as.Mem.RestorePages(img.pages)
	as.Alloc().SetState(img.alloc)
	as.SetHeapState(img.heap)
}

// Pages reports how many physical pages the image holds (observability).
func (img *Image) Pages() int { return len(img.pages) }

// instance is one built workload plus its pristine image.
type instance struct {
	w   *workloads.Workload
	img *Image
}

// Stats counts pool activity: cold builds versus warm restores served.
type Stats struct {
	Builds   int // workload instances built from scratch
	Restores int // acquisitions served by rewinding an existing instance
}

// Pool hands out warm workload instances keyed by build identity
// (name, size, page shift, seed) — the same parameters workloads.Build
// consumes, and exactly the axes a hardware sweep holds fixed while
// config.Hardware.Key() varies. Concurrent acquirers of one key each get
// a private instance: a busy key builds an additional cold instance that
// joins the pool on release, so executor parallelism (-j) is preserved
// while warm reuse accumulates.
//
// Invalidation: a pool entry is valid as long as the build inputs in its
// key fully determine the build — which workloads.Build guarantees (its
// RNG is seeded from the key, trace workloads read an immutable file path
// baked into the name). There is no cross-process persistence; a pool
// dies with the process, so code changes invalidate trivially.
type Pool struct {
	mu     sync.Mutex
	idle   map[string][]*instance
	builds int
	reuses int
}

// NewPool returns an empty checkpoint pool.
func NewPool() *Pool {
	return &Pool{idle: make(map[string][]*instance)}
}

// Key returns the pool key for a build identity.
func Key(name string, size workloads.Size, pageShift uint, seed uint64) string {
	return fmt.Sprintf("%s|%d|%d|%d", name, size, pageShift, seed)
}

// Acquire returns a workload built with the given identity, restored to
// its pristine post-build state, plus a release function that returns the
// instance to the pool once the caller's run (including its functional
// Check) has finished. The first acquisition of a key builds cold and
// captures the checkpoint; later acquisitions rewind and reuse.
func (p *Pool) Acquire(name string, size workloads.Size, pageShift uint, seed uint64) (*workloads.Workload, func(), error) {
	key := Key(name, size, pageShift, seed)
	p.mu.Lock()
	if q := p.idle[key]; len(q) > 0 {
		in := q[len(q)-1]
		p.idle[key] = q[:len(q)-1]
		p.reuses++
		p.mu.Unlock()
		in.img.Restore(in.w.AS)
		return in.w, p.releaseFunc(key, in), nil
	}
	p.builds++
	p.mu.Unlock()

	// Build outside the lock: builds are the expensive path, and a second
	// acquirer of the same key should build its own instance rather than
	// wait (both join the pool afterwards).
	w, err := workloads.Build(name, size, pageShift, seed)
	if err != nil {
		p.mu.Lock()
		p.builds--
		p.mu.Unlock()
		return nil, nil, err
	}
	in := &instance{w: w, img: Capture(w.AS)}
	return w, p.releaseFunc(key, in), nil
}

func (p *Pool) releaseFunc(key string, in *instance) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			p.mu.Lock()
			p.idle[key] = append(p.idle[key], in)
			p.mu.Unlock()
		})
	}
}

// Stats reports pool activity so far.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{Builds: p.builds, Restores: p.reuses}
}
