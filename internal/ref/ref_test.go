package ref_test

import (
	"context"
	"strings"
	"testing"

	"gpummu"
	"gpummu/internal/kernels"
	"gpummu/internal/ref"
	"gpummu/internal/vm"
)

func newSpace(pageShift uint) *vm.AddressSpace {
	return vm.NewAddressSpace(vm.NewPhysMem(), vm.NewFrameAllocator(1<<22), pageShift)
}

// TestWalkPageAgreesWithPageTable cross-checks the independent reference
// walker against vm.PageTable.Walk for both granularities: same PA, same
// leaf size, same walk depth, same PTE addresses touched.
func TestWalkPageAgreesWithPageTable(t *testing.T) {
	for _, shift := range []uint{vm.PageShift4K, vm.PageShift2M} {
		as := newSpace(shift)
		base := as.Malloc(10 * (1 << shift))
		cr3 := as.PT.CR3()

		probes := []uint64{
			base, base + 8, base + (1 << shift) - 8,
			base + 3*(1<<shift) + 123*8,
			base + 9*(1<<shift) + (1 << shift) - 16,
		}
		for _, va := range probes {
			va &^= 7
			want, err := as.PT.Walk(va)
			if err != nil {
				t.Fatalf("shift %d: pt.Walk(%#x): %v", shift, va, err)
			}
			got := ref.WalkPage(as.Mem, cr3, va)
			if got.Fault {
				t.Fatalf("shift %d: WalkPage(%#x) faulted at level %d", shift, va, got.FaultLevel)
			}
			if got.PA != want.PA || got.PageShift != want.PageShift || got.Levels != want.Levels {
				t.Fatalf("shift %d va %#x: got (pa=%#x shift=%d levels=%d) want (pa=%#x shift=%d levels=%d)",
					shift, va, got.PA, got.PageShift, got.Levels, want.PA, want.PageShift, want.Levels)
			}
			for l := 0; l < want.Levels; l++ {
				if got.LevelPAs[l] != want.LevelPAs[l] {
					t.Fatalf("shift %d va %#x: level %d PTE at %#x, want %#x",
						shift, va, l, got.LevelPAs[l], want.LevelPAs[l])
				}
			}
		}
	}
}

// TestWalkPageFaultAgreement checks that faults surface identically: the
// reference walker's fault level must match the depth vm.PageTable.Walk
// reached before erroring (Translation.Levels counts the faulting entry).
func TestWalkPageFaultAgreement(t *testing.T) {
	as := newSpace(vm.PageShift4K)
	base := as.Malloc(4 * vm.PageSize4K)

	probes := []uint64{
		base + 5*vm.PageSize4K, // guard page: PT-level fault
		base + 1<<30,           // unmapped PDP subtree
		0x1234_5678_0000,       // far from the heap entirely
	}
	for _, va := range probes {
		tr, err := as.PT.Walk(va)
		if err == nil {
			t.Fatalf("pt.Walk(%#x) unexpectedly mapped", va)
		}
		got := ref.WalkPage(as.Mem, as.PT.CR3(), va)
		if !got.Fault {
			t.Fatalf("WalkPage(%#x) did not fault but pt.Walk did: %v", va, err)
		}
		if got.FaultLevel != tr.Levels-1 {
			t.Fatalf("WalkPage(%#x) fault level %d, pt.Walk stopped at level %d", va, got.FaultLevel, tr.Levels-1)
		}
	}
}

// TestForEachMappingEnumeratesHeap checks the mapping enumerator visits
// exactly the malloc'd pages, ascending, each agreeing with a direct walk.
func TestForEachMappingEnumeratesHeap(t *testing.T) {
	as := newSpace(vm.PageShift4K)
	as.Malloc(3 * vm.PageSize4K)
	as.Malloc(vm.PageSize4K)

	var seen []uint64
	ref.ForEachMapping(as.Mem, as.PT.CR3(), func(va uint64, shift uint, base uint64) {
		if shift != vm.PageShift4K {
			t.Fatalf("va %#x: unexpected shift %d", va, shift)
		}
		want, err := as.PT.Walk(va)
		if err != nil {
			t.Fatalf("enumerated va %#x does not walk: %v", va, err)
		}
		if base != want.PageBase() {
			t.Fatalf("va %#x: base %#x, walk says %#x", va, base, want.PageBase())
		}
		seen = append(seen, va)
	})
	if len(seen) != 4 {
		t.Fatalf("enumerated %d mappings, want 4", len(seen))
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] <= seen[i-1] {
			t.Fatalf("mappings out of order: %#x after %#x", seen[i], seen[i-1])
		}
	}
}

// TestMemDigestProperties: equal for identically built spaces, sensitive to
// a write anywhere in the mapped range (including never-touched page tails),
// and restored when the write is undone.
func TestMemDigestProperties(t *testing.T) {
	build := func() *vm.AddressSpace {
		as := newSpace(vm.PageShift4K)
		base := as.Malloc(8 * vm.PageSize4K)
		for i := uint64(0); i < 64; i++ {
			as.Write64(base+i*8, i*i+1)
		}
		return as
	}
	a, b := build(), build()
	if ref.MemDigest(a) != ref.MemDigest(b) {
		t.Fatal("identically built spaces digest differently")
	}
	if _, _, _, diff := ref.FirstMemDiff(a, b); diff {
		t.Fatal("FirstMemDiff reports a diff between identical spaces")
	}

	// A write into an untouched tail page must move the digest.
	tail := a.HeapBase() + 7*vm.PageSize4K + 8
	before := ref.MemDigest(a)
	a.Write64(tail, 0xDEAD)
	if ref.MemDigest(a) == before {
		t.Fatal("digest ignored a write to a mapped tail page")
	}
	va, av, bv, diff := ref.FirstMemDiff(a, b)
	if !diff || va != tail || av != 0xDEAD || bv != 0 {
		t.Fatalf("FirstMemDiff = (%#x, %#x, %#x, %v), want (%#x, 0xdead, 0, true)", va, av, bv, diff, tail)
	}
	a.Write64(tail, 0)
	if ref.MemDigest(a) != before {
		t.Fatal("digest did not return after undoing the write")
	}
}

// TestPageTableDigest: stable across rebuilds, changed by a new mapping.
func TestPageTableDigest(t *testing.T) {
	build := func() *vm.AddressSpace {
		as := newSpace(vm.PageShift2M)
		as.Malloc(3 * vm.PageSize2M)
		return as
	}
	a, b := build(), build()
	da := ref.PageTableDigest(a.Mem, a.PT.CR3())
	if db := ref.PageTableDigest(b.Mem, b.PT.CR3()); da != db {
		t.Fatalf("identically built tables digest differently: %#x vs %#x", da, db)
	}
	b.Malloc(vm.PageSize2M)
	if ref.PageTableDigest(b.Mem, b.PT.CR3()) == da {
		t.Fatal("digest ignored a new mapping")
	}
}

// divergentKernel builds a communication-free kernel exercising divergence,
// loops, mixed-size accesses, and data-dependent addressing. Each thread
// loads from a shared read-only table and stores into its own 64-byte slot.
// Params: 0 = data base, 1 = out base, 2 = thread count.
func divergentKernel() *kernels.Program {
	const (
		rTid  = kernels.Reg(0)
		rN    = kernels.Reg(1)
		rCond = kernels.Reg(2)
		rAddr = kernels.Reg(3)
		rV0   = kernels.Reg(4)
		rV1   = kernels.Reg(5)
		rData = kernels.Reg(6)
		rOut  = kernels.Reg(7)
		rCnt  = kernels.Reg(8)
	)
	b := kernels.NewBuilder("refdiv")
	b.Special(rTid, kernels.SpecGlobalTID)
	b.Special(rN, kernels.SpecParam2)
	b.Sltu(rCond, rTid, rN)
	b.Bz(rCond, "exit", "exit")
	b.Special(rData, kernels.SpecParam0)
	b.Special(rOut, kernels.SpecParam1)
	b.ShlImm(rAddr, rTid, 6)
	b.Add(rOut, rOut, rAddr)
	b.MulImm(rV0, rTid, 2497)
	b.Special(rV1, kernels.SpecLane)

	// Divergent if/else on tid parity.
	b.AndImm(rCond, rTid, 1)
	b.Bz(rCond, "else", "join")
	b.AndImm(rAddr, rV0, 63)
	b.ShlImm(rAddr, rAddr, 3)
	b.Add(rAddr, rAddr, rData)
	b.Ld(rV1, rAddr, 0, 8)
	b.Jmp("join")
	b.Label("else")
	b.AddImm(rV1, rV1, 1000)
	b.Label("join")

	// Thread-varying loop trip count: 1 + (tid & 3).
	b.AndImm(rCnt, rTid, 3)
	b.AddImm(rCnt, rCnt, 1)
	b.Label("loop")
	b.Add(rV0, rV0, rV1)
	b.AddImm(rCnt, rCnt, -1)
	b.Bnz(rCnt, "loop", "done")
	b.Label("done")

	b.St(rOut, 0, rV0, 8)
	b.St(rOut, 8, rV1, 4)
	b.St(rOut, 12, rTid, 1)
	b.Label("exit")
	b.Exit()
	return b.MustBuild()
}

// buildDivLaunch allocates the kernel's data in a fresh space; construction
// is deterministic, so two calls produce identical initial states.
func buildDivLaunch(pageShift uint, grid, blockDim int) (*vm.AddressSpace, *kernels.Launch) {
	as := newSpace(pageShift)
	data := as.Malloc(64 * 8)
	out := as.Malloc(uint64(grid*blockDim) * 64)
	for i := uint64(0); i < 64; i++ {
		as.Write64(data+i*8, i*0x9E37+5)
	}
	l := &kernels.Launch{Program: divergentKernel(), Grid: grid, BlockDim: blockDim}
	l.Params[0] = data
	l.Params[1] = out
	l.Params[2] = uint64(grid * blockDim)
	return as, l
}

// TestExecuteMatchesTimingSimulator is the core differential property on a
// hand-written kernel: the reference interpreter and the full timing
// simulator must produce identical final memory images.
func TestExecuteMatchesTimingSimulator(t *testing.T) {
	for _, shift := range []uint{vm.PageShift4K, vm.PageShift2M} {
		asRef, l := buildDivLaunch(shift, 2, 48)
		if _, err := ref.Execute(asRef, l, 32, 1<<20); err != nil {
			t.Fatalf("shift %d: ref.Execute: %v", shift, err)
		}

		asSim, lSim := buildDivLaunch(shift, 2, 48)
		cfg := gpummu.SmallConfig()
		cfg.PageShift = shift
		cfg.MMU = gpummu.AugmentedMMU()
		if _, err := gpummu.Run(context.Background(),
			gpummu.WithConfig(cfg),
			gpummu.WithKernel(asSim, lSim),
			gpummu.WithMaxCycles(50_000_000)); err != nil {
			t.Fatalf("shift %d: timing run: %v", shift, err)
		}

		if ref.MemDigest(asRef) != ref.MemDigest(asSim) {
			va, rv, sv, _ := ref.FirstMemDiff(asRef, asSim)
			t.Fatalf("shift %d: memory diverged at va %#x: ref=%#x sim=%#x", shift, va, rv, sv)
		}
	}
}

// TestExecuteOrderIndependence: interpreting threads in any order yields the
// same register digests and memory image. Exercised by comparing a normal
// run against one whose launch enumerates blocks in a different geometry
// mapping the same global tids — plus a direct double-run determinism check.
func TestExecuteOrderIndependence(t *testing.T) {
	as1, l1 := buildDivLaunch(vm.PageShift4K, 4, 16)
	r1, err := ref.Execute(as1, l1, 32, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	as2, l2 := buildDivLaunch(vm.PageShift4K, 4, 16)
	r2, err := ref.Execute(as2, l2, 32, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.RegDigests) != 64 || len(r2.RegDigests) != 64 {
		t.Fatalf("digest counts %d/%d, want 64", len(r1.RegDigests), len(r2.RegDigests))
	}
	for i := range r1.RegDigests {
		if r1.RegDigests[i] != r2.RegDigests[i] {
			t.Fatalf("thread %d digest differs across identical runs", i)
		}
	}
	if ref.MemDigest(as1) != ref.MemDigest(as2) {
		t.Fatal("memory images differ across identical runs")
	}
	if r1.Steps == 0 {
		t.Fatal("no steps recorded")
	}
}

// TestExecuteRunawayGuard: an infinite loop errors instead of hanging.
func TestExecuteRunawayGuard(t *testing.T) {
	b := kernels.NewBuilder("spin")
	b.Label("top")
	b.Jmp("top")
	p := b.MustBuild()
	as := newSpace(vm.PageShift4K)
	_, err := ref.Execute(as, &kernels.Launch{Program: p, Grid: 1, BlockDim: 1}, 32, 1000)
	if err == nil || !strings.Contains(err.Error(), "runaway") {
		t.Fatalf("want runaway error, got %v", err)
	}
}

// TestExecuteFaultReported: touching an unmapped address is an error naming
// the faulting VA, never a panic.
func TestExecuteFaultReported(t *testing.T) {
	b := kernels.NewBuilder("fault")
	b.MovImm(0, 0x40_0000)
	b.Ld(1, 0, 0, 8)
	b.Exit()
	p := b.MustBuild()
	as := newSpace(vm.PageShift4K)
	_, err := ref.Execute(as, &kernels.Launch{Program: p, Grid: 1, BlockDim: 1}, 32, 1000)
	if err == nil || !strings.Contains(err.Error(), "page fault") {
		t.Fatalf("want page fault error, got %v", err)
	}
}
