package ref

import (
	"fmt"

	"gpummu/internal/kernels"
	"gpummu/internal/vm"
)

// Touch records one distinct page a fast-forwarded block referenced: the
// virtual page number at the address space's page granularity and the
// physical base it translates to. The sampled simulator replays touches
// into the TLBs so a fast-forward window leaves the translation hierarchy
// warm, the way the skipped blocks would have.
type Touch struct {
	VPN   uint64
	PBase uint64
}

// BlockInterp executes individual thread blocks of one launch functionally,
// thread by thread, with no timing. It is the fast-forward engine of the
// sampled simulator (internal/gpu.RunSampled): architectural state — memory
// contents, page tables — advances exactly as the timing model would have
// advanced it, because the workload kernels are communication-free (loads
// from read-only data, stores to thread-exclusive slots), so any execution
// order of whole blocks yields the same memory image.
//
// The interpreter shares its per-4KB translation memo across blocks (the
// reference walker is pure, so caching walks cannot change results) and
// records the distinct pages each window touched for TLB warming.
type BlockInterp struct {
	x         *interp
	pageShift uint
	pageMask  uint64
	seen      map[uint64]struct{}
	touched   []Touch
}

// NewBlockInterp builds a block-level functional interpreter for l over as.
// warpWidth feeds the SpecLane/SpecWarp special registers; pageShift sets
// the granularity at which touches are recorded (the hardware page shift,
// so touches map 1:1 onto TLB entries).
func NewBlockInterp(as *vm.AddressSpace, l *kernels.Launch, warpWidth int, pageShift uint) (*BlockInterp, error) {
	if err := l.Validate(); err != nil {
		return nil, fmt.Errorf("ref: %w", err)
	}
	if warpWidth < 1 {
		return nil, fmt.Errorf("ref: warp width %d < 1", warpWidth)
	}
	if pageShift < refShift4K {
		return nil, fmt.Errorf("ref: page shift %d < %d", pageShift, refShift4K)
	}
	b := &BlockInterp{
		x: &interp{
			as:        as,
			cr3:       as.PT.CR3(),
			prog:      l.Program.Code,
			launch:    l,
			warpWidth: warpWidth,
			memo:      make(map[uint64]*memoPage),
			// Epoch 0 is the "never touched" marker on memo entries, so the
			// live window starts at 1.
			epoch: 1,
		},
		pageShift: pageShift,
		pageMask:  uint64(1)<<pageShift - 1,
		seen:      make(map[uint64]struct{}),
	}
	b.x.touch = b.recordTouch
	return b, nil
}

// DisableTouch turns off page-touch recording (used when the sampled run
// does not replay touches into the TLBs, saving the bookkeeping per access).
func (b *BlockInterp) DisableTouch() {
	b.x.touch = nil
}

func (b *BlockInterp) recordTouch(va, pa uint64) {
	vpn := va >> b.pageShift
	if _, ok := b.seen[vpn]; ok {
		return
	}
	b.seen[vpn] = struct{}{}
	b.touched = append(b.touched, Touch{VPN: vpn, PBase: pa &^ b.pageMask})
}

// ExecuteBlock runs every thread of block blockID sequentially to exit and
// returns the number of instructions interpreted. maxStepsPerThread bounds
// each thread so malformed programs error out instead of spinning.
func (b *BlockInterp) ExecuteBlock(blockID int, maxStepsPerThread uint64) (uint64, error) {
	l := b.x.launch
	if blockID < 0 || blockID >= l.Grid {
		return 0, fmt.Errorf("ref: block %d outside grid %d", blockID, l.Grid)
	}
	var steps uint64
	for btid := 0; btid < l.BlockDim; btid++ {
		_, n, err := b.x.runThread(blockID, btid, maxStepsPerThread)
		steps += n
		if err != nil {
			return steps, fmt.Errorf("ref: block %d btid %d: %w", blockID, btid, err)
		}
	}
	return steps, nil
}

// DrainTouched returns the pages touched since the last drain, in
// first-touch order, and resets the touch window. Order is deterministic:
// it depends only on block ids and thread order, never on host scheduling.
func (b *BlockInterp) DrainTouched() []Touch {
	t := b.touched
	b.touched = nil
	clear(b.seen)
	// Advancing the epoch invalidates the per-region "already reported"
	// marks without walking the memo.
	b.x.epoch++
	return t
}
