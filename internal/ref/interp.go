package ref

import (
	"fmt"

	"gpummu/internal/kernels"
	"gpummu/internal/vm"
)

// Result is the outcome of one reference execution.
type Result struct {
	// Steps is the total number of instructions interpreted across all
	// threads.
	Steps uint64
	// RegDigests holds one FNV digest of each thread's final register file,
	// indexed by global thread id. Because every thread runs independently,
	// the slice is invariant to execution order — the order-independence the
	// differential harness relies on.
	RegDigests []uint64
}

// interp is the per-launch interpreter state shared by all threads: the
// program, launch geometry, and a per-4KB-page translation memo (the
// reference walker is pure, so caching walks cannot change results).
type interp struct {
	as        *vm.AddressSpace
	cr3       uint64
	prog      []kernels.Instr
	launch    *kernels.Launch
	warpWidth int
	memo      map[uint64]memoPage
}

type memoPage struct {
	base  uint64 // physical base of the containing 4 KB region
	fault bool
}

// Execute runs the launch to completion in the reference model: each thread
// of the grid executes sequentially and independently, with no timing, no
// caches, and no warps. Barriers are no-ops — valid precisely because the
// differential generator only produces communication-free kernels (loads
// from read-only data, stores to thread-exclusive slots), for which any
// interleaving, including fully sequential, yields the same memory image.
// warpWidth is needed only for the SpecLane/SpecWarp special registers.
// maxStepsPerThread bounds each thread (malformed programs error out instead
// of spinning).
func Execute(as *vm.AddressSpace, l *kernels.Launch, warpWidth int, maxStepsPerThread uint64) (*Result, error) {
	if err := l.Validate(); err != nil {
		return nil, fmt.Errorf("ref: %w", err)
	}
	if warpWidth < 1 {
		return nil, fmt.Errorf("ref: warp width %d < 1", warpWidth)
	}
	x := &interp{
		as:        as,
		cr3:       as.PT.CR3(),
		prog:      l.Program.Code,
		launch:    l,
		warpWidth: warpWidth,
		memo:      make(map[uint64]memoPage),
	}
	res := &Result{RegDigests: make([]uint64, l.Grid*l.BlockDim)}
	for blockID := 0; blockID < l.Grid; blockID++ {
		for btid := 0; btid < l.BlockDim; btid++ {
			gtid := blockID*l.BlockDim + btid
			regs, steps, err := x.runThread(blockID, btid, maxStepsPerThread)
			if err != nil {
				return nil, fmt.Errorf("ref: thread %d (block %d, btid %d): %w", gtid, blockID, btid, err)
			}
			res.Steps += steps
			res.RegDigests[gtid] = regDigest(&regs)
		}
	}
	return res, nil
}

func regDigest(regs *[kernels.NumRegs]uint64) uint64 {
	h := fnvOffset
	for _, r := range regs {
		h = fnvWord(h, r)
	}
	return h
}

// translate resolves va through the reference walker, memoised per 4 KB
// region (which is exact for both 4 KB and 2 MB leaves: a 2 MB page's
// regions all land on the same physical offsets).
func (x *interp) translate(va uint64) (uint64, error) {
	key := va >> refShift4K
	m, cached := x.memo[key]
	if !cached {
		w := WalkPage(x.as.Mem, x.cr3, va)
		m = memoPage{fault: w.Fault}
		if !w.Fault {
			m.base = w.PA &^ (uint64(1)<<refShift4K - 1)
		}
		x.memo[key] = m
	}
	if m.fault {
		return 0, fmt.Errorf("page fault at va %#x", va)
	}
	return m.base | va&(uint64(1)<<refShift4K-1), nil
}

// special mirrors the special-register semantics of the timing simulator
// (internal/gpu exec.go) exactly.
func (x *interp) special(blockID, btid int, s kernels.Special) (uint64, error) {
	l := x.launch
	switch {
	case s == kernels.SpecGlobalTID:
		return uint64(blockID)*uint64(l.BlockDim) + uint64(btid), nil
	case s == kernels.SpecBlockTID:
		return uint64(btid), nil
	case s == kernels.SpecBlockID:
		return uint64(blockID), nil
	case s == kernels.SpecBlockDim:
		return uint64(l.BlockDim), nil
	case s == kernels.SpecGridDim:
		return uint64(l.Grid), nil
	case s == kernels.SpecLane:
		return uint64(btid % x.warpWidth), nil
	case s == kernels.SpecWarp:
		return uint64(btid / x.warpWidth), nil
	case s >= kernels.SpecParam0 && s < kernels.SpecParam0+kernels.NumParams:
		return l.Params[s-kernels.SpecParam0], nil
	}
	return 0, fmt.Errorf("unknown special %d", s)
}

// runThread interprets one thread start to exit.
func (x *interp) runThread(blockID, btid int, maxSteps uint64) ([kernels.NumRegs]uint64, uint64, error) {
	var regs [kernels.NumRegs]uint64
	pc := int32(0)
	n := int32(len(x.prog))
	steps := uint64(0)
	for {
		if pc < 0 || pc >= n {
			return regs, steps, fmt.Errorf("pc %d outside program (len %d)", pc, n)
		}
		if steps >= maxSteps {
			return regs, steps, fmt.Errorf("exceeded %d steps at pc %d (runaway program)", maxSteps, pc)
		}
		steps++
		in := &x.prog[pc]
		switch in.Kind {
		case kernels.KindALU:
			v, err := x.alu(blockID, btid, &regs, in)
			if err != nil {
				return regs, steps, err
			}
			regs[in.Dst] = v
			pc++
		case kernels.KindLoad, kernels.KindStore:
			if err := x.memAccess(&regs, in); err != nil {
				return regs, steps, fmt.Errorf("pc %d: %w", pc, err)
			}
			pc++
		case kernels.KindBranch:
			v := regs[in.A]
			taken := v != 0
			if in.Cond == kernels.CondZ {
				taken = v == 0
			}
			if taken {
				pc = in.Target
			} else {
				pc++
			}
		case kernels.KindJump:
			pc = in.Target
		case kernels.KindBarrier:
			// No-op: only valid for communication-free kernels (see Execute).
			pc++
		case kernels.KindExit:
			return regs, steps, nil
		default:
			return regs, steps, fmt.Errorf("pc %d: unknown instruction kind %d", pc, in.Kind)
		}
	}
}

// alu mirrors internal/gpu's aluEval: unsigned 64-bit wraparound arithmetic,
// shift amounts masked to 6 bits, division and remainder by zero yield zero.
func (x *interp) alu(blockID, btid int, regs *[kernels.NumRegs]uint64, in *kernels.Instr) (uint64, error) {
	a := regs[in.A]
	r := regs[in.B]
	imm := uint64(in.Imm)
	switch in.Op {
	case kernels.OpMov:
		return a, nil
	case kernels.OpMovImm:
		return imm, nil
	case kernels.OpAdd:
		return a + r, nil
	case kernels.OpAddImm:
		return a + imm, nil
	case kernels.OpSub:
		return a - r, nil
	case kernels.OpMul:
		return a * r, nil
	case kernels.OpMulImm:
		return a * imm, nil
	case kernels.OpDiv:
		if r == 0 {
			return 0, nil
		}
		return a / r, nil
	case kernels.OpRem:
		if r == 0 {
			return 0, nil
		}
		return a % r, nil
	case kernels.OpAnd:
		return a & r, nil
	case kernels.OpAndImm:
		return a & imm, nil
	case kernels.OpOr:
		return a | r, nil
	case kernels.OpXor:
		return a ^ r, nil
	case kernels.OpShlImm:
		return a << (imm & 63), nil
	case kernels.OpShrImm:
		return a >> (imm & 63), nil
	case kernels.OpMin:
		if a < r {
			return a, nil
		}
		return r, nil
	case kernels.OpSltu:
		if a < r {
			return 1, nil
		}
		return 0, nil
	case kernels.OpSltuImm:
		if a < imm {
			return 1, nil
		}
		return 0, nil
	case kernels.OpSeq:
		if a == r {
			return 1, nil
		}
		return 0, nil
	case kernels.OpSeqImm:
		if a == imm {
			return 1, nil
		}
		return 0, nil
	case kernels.OpSpecial:
		return x.special(blockID, btid, kernels.Special(in.Imm))
	}
	return 0, fmt.Errorf("unknown ALU op %d", in.Op)
}

// memAccess performs one functional load or store through the reference
// walker. Misaligned accesses are errors (the simulated physical memory
// would panic on them); faults are errors too, so the oracle never panics on
// adversarial programs.
func (x *interp) memAccess(regs *[kernels.NumRegs]uint64, in *kernels.Instr) error {
	va := regs[in.A] + uint64(in.Imm)
	if va%uint64(in.Size) != 0 {
		return fmt.Errorf("misaligned %d-byte access at va %#x", in.Size, va)
	}
	pa, err := x.translate(va)
	if err != nil {
		return err
	}
	m := x.as.Mem
	if in.Kind == kernels.KindStore {
		v := regs[in.B]
		switch in.Size {
		case 1:
			m.WriteU8(pa, byte(v))
		case 4:
			m.Write32(pa, uint32(v))
		default:
			m.Write64(pa, v)
		}
		return nil
	}
	var v uint64
	switch in.Size {
	case 1:
		v = uint64(m.ReadU8(pa))
	case 4:
		v = uint64(m.Read32(pa))
	default:
		v = m.Read64(pa)
	}
	regs[in.Dst] = v
	return nil
}
