package ref

import (
	"encoding/binary"
	"fmt"

	"gpummu/internal/kernels"
	"gpummu/internal/vm"
)

// Result is the outcome of one reference execution.
type Result struct {
	// Steps is the total number of instructions interpreted across all
	// threads.
	Steps uint64
	// RegDigests holds one FNV digest of each thread's final register file,
	// indexed by global thread id. Because every thread runs independently,
	// the slice is invariant to execution order — the order-independence the
	// differential harness relies on.
	RegDigests []uint64
}

// interp is the per-launch interpreter state shared by all threads: the
// program, launch geometry, and a per-4KB-page translation memo (the
// reference walker is pure, so caching walks cannot change results).
type interp struct {
	as        *vm.AddressSpace
	cr3       uint64
	prog      []kernels.Instr
	launch    *kernels.Launch
	warpWidth int
	memo      map[uint64]*memoPage
	// front is a small direct-mapped cache over memo, indexed by low bits of
	// the 4 KB virtual page number; most accesses hit here without touching
	// the map at all.
	front [frontEntries]frontSlot
	// touch, when non-nil, observes the first data access to each 4 KB
	// virtual region per epoch (the BlockInterp uses it to record which
	// pages a fast-forwarded window referenced, so the sampled simulator can
	// keep TLBs warm). epoch advances when the touch window is drained.
	touch func(va, pa uint64)
	epoch uint64
}

const frontEntries = 256

type frontSlot struct {
	key uint64
	p   *memoPage
}

// memoPage caches everything one 4 KB virtual region needs for functional
// access: its translation, a direct pointer into the backing physical page,
// and the touch epoch that last observed it. data is nil while the physical
// page has never been written — loads then read as zero without
// materialising it (materialising on a load would change BackedPages and
// the memory digest) — and is filled in by the first store through this
// region. A nil data can go stale if something else materialises the page
// mid-run; that is harmless for value correctness because the workload
// kernels are communication-free, so a region another block stores to is
// never a region this interpreter loads data from.
type memoPage struct {
	base     uint64 // physical base of the containing 4 KB region
	fault    bool
	data     []byte // backing page bytes, nil while unmaterialised
	writable bool   // data was obtained via MutablePageBytes (dirty bit set)
	epoch    uint64 // last touch epoch that reported this region
}

// Execute runs the launch to completion in the reference model: each thread
// of the grid executes sequentially and independently, with no timing, no
// caches, and no warps. Barriers are no-ops — valid precisely because the
// differential generator only produces communication-free kernels (loads
// from read-only data, stores to thread-exclusive slots), for which any
// interleaving, including fully sequential, yields the same memory image.
// warpWidth is needed only for the SpecLane/SpecWarp special registers.
// maxStepsPerThread bounds each thread (malformed programs error out instead
// of spinning).
func Execute(as *vm.AddressSpace, l *kernels.Launch, warpWidth int, maxStepsPerThread uint64) (*Result, error) {
	if err := l.Validate(); err != nil {
		return nil, fmt.Errorf("ref: %w", err)
	}
	if warpWidth < 1 {
		return nil, fmt.Errorf("ref: warp width %d < 1", warpWidth)
	}
	x := &interp{
		as:        as,
		cr3:       as.PT.CR3(),
		prog:      l.Program.Code,
		launch:    l,
		warpWidth: warpWidth,
		memo:      make(map[uint64]*memoPage),
	}
	res := &Result{RegDigests: make([]uint64, l.Grid*l.BlockDim)}
	for blockID := 0; blockID < l.Grid; blockID++ {
		for btid := 0; btid < l.BlockDim; btid++ {
			gtid := blockID*l.BlockDim + btid
			regs, steps, err := x.runThread(blockID, btid, maxStepsPerThread)
			if err != nil {
				return nil, fmt.Errorf("ref: thread %d (block %d, btid %d): %w", gtid, blockID, btid, err)
			}
			res.Steps += steps
			res.RegDigests[gtid] = regDigest(&regs)
		}
	}
	return res, nil
}

func regDigest(regs *[kernels.NumRegs]uint64) uint64 {
	h := fnvOffset
	for _, r := range regs {
		h = fnvWord(h, r)
	}
	return h
}

// region resolves the 4 KB virtual region holding va to its memo entry,
// walking the reference page table on first sight (memoising per 4 KB
// region is exact for both 4 KB and 2 MB leaves: a 2 MB page's regions all
// land on the same physical offsets). The direct-mapped front cache makes
// the common case — revisiting a recently used region — map-free.
func (x *interp) region(va uint64) *memoPage {
	key := va >> refShift4K
	slot := &x.front[key%frontEntries]
	if slot.p != nil && slot.key == key {
		return slot.p
	}
	m, cached := x.memo[key]
	if !cached {
		m = &memoPage{}
		w := WalkPage(x.as.Mem, x.cr3, va)
		m.fault = w.Fault
		if !w.Fault {
			m.base = w.PA &^ (uint64(1)<<refShift4K - 1)
			m.data = x.as.Mem.PageBytes(m.base)
		}
		x.memo[key] = m
	}
	slot.key, slot.p = key, m
	return m
}

// special mirrors the special-register semantics of the timing simulator
// (internal/gpu exec.go) exactly.
func (x *interp) special(blockID, btid int, s kernels.Special) (uint64, error) {
	l := x.launch
	switch {
	case s == kernels.SpecGlobalTID:
		return uint64(blockID)*uint64(l.BlockDim) + uint64(btid), nil
	case s == kernels.SpecBlockTID:
		return uint64(btid), nil
	case s == kernels.SpecBlockID:
		return uint64(blockID), nil
	case s == kernels.SpecBlockDim:
		return uint64(l.BlockDim), nil
	case s == kernels.SpecGridDim:
		return uint64(l.Grid), nil
	case s == kernels.SpecLane:
		return uint64(btid % x.warpWidth), nil
	case s == kernels.SpecWarp:
		return uint64(btid / x.warpWidth), nil
	case s >= kernels.SpecParam0 && s < kernels.SpecParam0+kernels.NumParams:
		return l.Params[s-kernels.SpecParam0], nil
	}
	return 0, fmt.Errorf("unknown special %d", s)
}

// runThread interprets one thread start to exit.
func (x *interp) runThread(blockID, btid int, maxSteps uint64) ([kernels.NumRegs]uint64, uint64, error) {
	var regs [kernels.NumRegs]uint64
	pc := int32(0)
	n := int32(len(x.prog))
	steps := uint64(0)
	for {
		if pc < 0 || pc >= n {
			return regs, steps, fmt.Errorf("pc %d outside program (len %d)", pc, n)
		}
		if steps >= maxSteps {
			return regs, steps, fmt.Errorf("exceeded %d steps at pc %d (runaway program)", maxSteps, pc)
		}
		steps++
		in := &x.prog[pc]
		switch in.Kind {
		case kernels.KindALU:
			v, err := x.alu(blockID, btid, &regs, in)
			if err != nil {
				return regs, steps, err
			}
			regs[in.Dst] = v
			pc++
		case kernels.KindLoad, kernels.KindStore:
			if err := x.memAccess(&regs, in); err != nil {
				return regs, steps, fmt.Errorf("pc %d: %w", pc, err)
			}
			pc++
		case kernels.KindBranch:
			v := regs[in.A]
			taken := v != 0
			if in.Cond == kernels.CondZ {
				taken = v == 0
			}
			if taken {
				pc = in.Target
			} else {
				pc++
			}
		case kernels.KindJump:
			pc = in.Target
		case kernels.KindBarrier:
			// No-op: only valid for communication-free kernels (see Execute).
			pc++
		case kernels.KindExit:
			return regs, steps, nil
		default:
			return regs, steps, fmt.Errorf("pc %d: unknown instruction kind %d", pc, in.Kind)
		}
	}
}

// alu mirrors internal/gpu's aluEval: unsigned 64-bit wraparound arithmetic,
// shift amounts masked to 6 bits, division and remainder by zero yield zero.
func (x *interp) alu(blockID, btid int, regs *[kernels.NumRegs]uint64, in *kernels.Instr) (uint64, error) {
	a := regs[in.A]
	r := regs[in.B]
	imm := uint64(in.Imm)
	switch in.Op {
	case kernels.OpMov:
		return a, nil
	case kernels.OpMovImm:
		return imm, nil
	case kernels.OpAdd:
		return a + r, nil
	case kernels.OpAddImm:
		return a + imm, nil
	case kernels.OpSub:
		return a - r, nil
	case kernels.OpMul:
		return a * r, nil
	case kernels.OpMulImm:
		return a * imm, nil
	case kernels.OpDiv:
		if r == 0 {
			return 0, nil
		}
		return a / r, nil
	case kernels.OpRem:
		if r == 0 {
			return 0, nil
		}
		return a % r, nil
	case kernels.OpAnd:
		return a & r, nil
	case kernels.OpAndImm:
		return a & imm, nil
	case kernels.OpOr:
		return a | r, nil
	case kernels.OpXor:
		return a ^ r, nil
	case kernels.OpShlImm:
		return a << (imm & 63), nil
	case kernels.OpShrImm:
		return a >> (imm & 63), nil
	case kernels.OpMin:
		if a < r {
			return a, nil
		}
		return r, nil
	case kernels.OpSltu:
		if a < r {
			return 1, nil
		}
		return 0, nil
	case kernels.OpSltuImm:
		if a < imm {
			return 1, nil
		}
		return 0, nil
	case kernels.OpSeq:
		if a == r {
			return 1, nil
		}
		return 0, nil
	case kernels.OpSeqImm:
		if a == imm {
			return 1, nil
		}
		return 0, nil
	case kernels.OpSpecial:
		return x.special(blockID, btid, kernels.Special(in.Imm))
	}
	return 0, fmt.Errorf("unknown ALU op %d", in.Op)
}

// memAccess performs one functional load or store through the memoised
// reference translation, reading and writing the backing page bytes
// directly. Misaligned accesses are errors (the simulated physical memory
// would panic on them); faults are errors too, so the oracle never panics on
// adversarial programs.
func (x *interp) memAccess(regs *[kernels.NumRegs]uint64, in *kernels.Instr) error {
	va := regs[in.A] + uint64(in.Imm)
	if va%uint64(in.Size) != 0 {
		return fmt.Errorf("misaligned %d-byte access at va %#x", in.Size, va)
	}
	p := x.region(va)
	if p.fault {
		return fmt.Errorf("page fault at va %#x", va)
	}
	off := va & (uint64(1)<<refShift4K - 1)
	if x.touch != nil && p.epoch != x.epoch {
		p.epoch = x.epoch
		x.touch(va, p.base|off)
	}
	if in.Kind == kernels.KindStore {
		if !p.writable {
			// First store through this region: re-fetch the page through
			// PhysMem so it is materialised and its dirty bit is set for
			// snapshot diffing (a cached read-only view skips both).
			p.data = x.as.Mem.MutablePageBytes(p.base)
			p.writable = true
		}
		v := regs[in.B]
		switch in.Size {
		case 1:
			p.data[off] = byte(v)
		case 4:
			binary.LittleEndian.PutUint32(p.data[off:off+4], uint32(v))
		default:
			binary.LittleEndian.PutUint64(p.data[off:off+8], v)
		}
		return nil
	}
	var v uint64
	if p.data != nil {
		switch in.Size {
		case 1:
			v = uint64(p.data[off])
		case 4:
			v = uint64(binary.LittleEndian.Uint32(p.data[off : off+4]))
		default:
			v = binary.LittleEndian.Uint64(p.data[off : off+8])
		}
	}
	regs[in.Dst] = v
	return nil
}
