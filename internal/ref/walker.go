// Package ref is the architecture-level reference functional model the
// differential tests diff the timing simulator against: a purely functional,
// order-independent per-thread interpreter for the internal/kernels ISA (no
// timing, no caches, no warps) and an independent software page-table walker
// over internal/vm state.
//
// Independence is the point. The walker re-derives the x86-64 long-mode walk
// from the architecture (its own constants, its own index arithmetic) rather
// than calling vm.PageTable.Walk, and the interpreter executes threads one at
// a time in program order rather than in warps — so a bug in the simulator's
// translation, coalescing, or reconvergence machinery cannot hide by being
// mirrored in the oracle.
package ref

import (
	"encoding/binary"

	"gpummu/internal/vm"
)

// x86-64 long-mode paging, re-derived from the architecture manual rather
// than shared with internal/vm: a 48-bit virtual address decomposes into
// four 9-bit table indices (bits 47-39, 38-30, 29-21, 20-12) plus a 12-bit
// page offset; a set PS bit at the page-directory level terminates the walk
// with a 2 MB page.
const (
	refLevels     = 4
	refEntryBytes = 8

	refPresentBit   = uint64(1) << 0
	refLargePageBit = uint64(1) << 7

	// Bits 51..12 of a PTE hold the next-level physical frame number.
	refFrameMask = uint64(0x000F_FFFF_FFFF_F000)

	refShift4K = 12
	refShift2M = 21
)

// Walk is the outcome of one reference page-table walk.
type Walk struct {
	VA         uint64
	PA         uint64    // physical address of VA (page base | offset); 0 on fault
	PageShift  uint      // 12 for a 4 KB leaf, 21 for a 2 MB leaf; 0 on fault
	Levels     int       // table entries the walk read (3 for 2 MB, 4 for 4 KB)
	LevelPAs   [4]uint64 // physical address of each entry read, walk order
	Fault      bool      // a non-present entry ended the walk
	FaultLevel int       // level of the faulting entry (0=PML4 .. 3=PT); -1 when !Fault
}

// WalkPage performs a full software page-table walk for va over the table
// rooted at cr3, reading entries from mem exactly as a hardware walker
// would. It never panics: a missing mapping is reported as a fault.
func WalkPage(mem *vm.PhysMem, cr3, va uint64) Walk {
	w := Walk{VA: va, FaultLevel: -1}
	table := cr3
	for level := 0; level < refLevels; level++ {
		shift := uint(39 - 9*level)
		idx := (va >> shift) & 0x1FF
		entryPA := table + idx*refEntryBytes
		w.LevelPAs[level] = entryPA
		w.Levels = level + 1
		e := mem.Read64(entryPA)
		if e&refPresentBit == 0 {
			w.Fault = true
			w.FaultLevel = level
			return w
		}
		if level == 2 && e&refLargePageBit != 0 {
			w.PageShift = refShift2M
			base := e & refFrameMask &^ (uint64(1)<<refShift2M - 1)
			w.PA = base | va&(uint64(1)<<refShift2M-1)
			return w
		}
		if level == 3 {
			w.PageShift = refShift4K
			w.PA = (e & refFrameMask) | va&(uint64(1)<<refShift4K-1)
			return w
		}
		table = e & refFrameMask
	}
	panic("ref: unreachable walk state")
}

// ForEachMapping enumerates every leaf mapping of the page table rooted at
// cr3 in ascending canonical virtual-address order, calling fn with the
// (sign-extended) virtual page base, the leaf granularity, and the physical
// page base.
func ForEachMapping(mem *vm.PhysMem, cr3 uint64, fn func(va uint64, pageShift uint, pageBase uint64)) {
	forEachEntry(mem, cr3, 0, 0, fn)
}

func forEachEntry(mem *vm.PhysMem, table, vaBase uint64, level int, fn func(uint64, uint, uint64)) {
	shift := uint(39 - 9*level)
	for i := uint64(0); i < 512; i++ {
		e := mem.Read64(table + i*refEntryBytes)
		if e&refPresentBit == 0 {
			continue
		}
		va := vaBase | i<<shift
		switch {
		case level == 2 && e&refLargePageBit != 0:
			fn(canonical(va), refShift2M, e&refFrameMask&^(uint64(1)<<refShift2M-1))
		case level == 3:
			fn(canonical(va), refShift4K, e&refFrameMask)
		default:
			forEachEntry(mem, e&refFrameMask, va, level+1, fn)
		}
	}
}

// canonical sign-extends bit 47 into the upper 16 bits.
func canonical(va uint64) uint64 {
	if va&(1<<47) != 0 {
		return va | 0xFFFF_0000_0000_0000
	}
	return va
}

// FNV-1a over 64-bit words.
const (
	fnvOffset = uint64(14695981039346656037)
	fnvPrime  = uint64(1099511628211)
)

func fnvWord(h, w uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= w & 0xFF
		h *= fnvPrime
		w >>= 8
	}
	return h
}

// MemDigest hashes the full contents of every mapped page of the address
// space, in canonical virtual-address order, tagged with its VA and leaf
// granularity. Two address spaces with identical mappings and identical
// memory contents — including untouched (all-zero) tails of mapped pages,
// so stray writes anywhere in the mapped range change the digest — produce
// equal digests.
func MemDigest(as *vm.AddressSpace) uint64 {
	h := fnvOffset
	ForEachMapping(as.Mem, as.PT.CR3(), func(va uint64, shift uint, base uint64) {
		h = fnvWord(h, va)
		h = fnvWord(h, uint64(shift))
		size := uint64(1) << shift
		for off := uint64(0); off < size; off += vm.PageSize4K {
			page := as.Mem.PageBytes(base + off)
			if page == nil {
				// Never-written physical page: reads as zeroes. Folding a
				// zero word is h ^= 0; h *= prime, so 512 multiplies.
				for w := 0; w < vm.PageSize4K/8; w++ {
					h *= fnvPrime // 8 zero bytes: ^0 is identity
					h *= fnvPrime
					h *= fnvPrime
					h *= fnvPrime
					h *= fnvPrime
					h *= fnvPrime
					h *= fnvPrime
					h *= fnvPrime
				}
				continue
			}
			for w := 0; w < len(page); w += 8 {
				h = fnvWord(h, binary.LittleEndian.Uint64(page[w:w+8]))
			}
		}
	})
	return h
}

// PageTableDigest hashes the structure and raw contents of the page table
// rooted at cr3: every present entry's (level, index, raw value) in a
// deterministic traversal order. Running a kernel must leave it unchanged —
// the paper's workloads take no page faults or remaps mid-run — so a digest
// that moves between "before" and "after" means the simulator corrupted
// translation state.
func PageTableDigest(mem *vm.PhysMem, cr3 uint64) uint64 {
	h := fnvOffset
	h = digestTable(mem, cr3, 0, h)
	return h
}

func digestTable(mem *vm.PhysMem, table uint64, level int, h uint64) uint64 {
	for i := uint64(0); i < 512; i++ {
		e := mem.Read64(table + i*refEntryBytes)
		if e&refPresentBit == 0 {
			continue
		}
		h = fnvWord(h, uint64(level))
		h = fnvWord(h, i)
		h = fnvWord(h, e)
		if level < 3 && !(level == 2 && e&refLargePageBit != 0) {
			h = digestTable(mem, e&refFrameMask, level+1, h)
		}
	}
	return h
}

// FirstMemDiff locates the first virtual address (in canonical VA order) at
// which the mapped contents of two identically laid-out address spaces
// differ, for failure diagnostics. It reports ok=false when the spaces'
// mapped words are all equal.
func FirstMemDiff(a, b *vm.AddressSpace) (va uint64, av, bv uint64, ok bool) {
	type mapping struct {
		va    uint64
		shift uint
		base  uint64
	}
	var am []mapping
	ForEachMapping(a.Mem, a.PT.CR3(), func(va uint64, shift uint, base uint64) {
		am = append(am, mapping{va, shift, base})
	})
	var bm []mapping
	ForEachMapping(b.Mem, b.PT.CR3(), func(va uint64, shift uint, base uint64) {
		bm = append(bm, mapping{va, shift, base})
	})
	for i, m := range am {
		if i >= len(bm) {
			return m.va, 0, 0, true
		}
		if bm[i].va != m.va || bm[i].shift != m.shift {
			return m.va, 0, 0, true
		}
		size := uint64(1) << m.shift
		for off := uint64(0); off < size; off += 8 {
			x := a.Mem.Read64(m.base + off)
			y := b.Mem.Read64(bm[i].base + off)
			if x != y {
				return m.va + off, x, y, true
			}
		}
	}
	if len(bm) > len(am) {
		return bm[len(am)].va, 0, 0, true
	}
	return 0, 0, 0, false
}
