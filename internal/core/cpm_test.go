package core

import "testing"

func TestNewCPMPanicsOnBadBits(t *testing.T) {
	for _, bits := range []int{0, 9, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCPM with %d bits did not panic", bits)
				}
			}()
			NewCPM(4, bits, 500)
		}()
	}
}

// TestCPMBumpSaturates: counters update symmetrically on TLB hits and
// saturate at 2^bits - 1; saturation is the compaction admission condition.
func TestCPMBumpSaturates(t *testing.T) {
	c := NewCPM(4, 2, 500) // max = 3
	for i := 0; i < 5; i++ {
		c.OnTLBHit(0, []int16{1})
	}
	if got := c.Counter(0, 1); got != 3 {
		t.Errorf("Counter(0,1) = %d, want saturated 3", got)
	}
	if got := c.Counter(1, 0); got != 3 {
		t.Errorf("Counter(1,0) = %d, want symmetric 3", got)
	}
	if !c.Saturated(0, 1) || !c.Saturated(1, 0) {
		t.Error("saturated pair not reported Saturated")
	}
	if c.Saturated(0, 2) {
		t.Error("untouched pair reported Saturated")
	}
}

// TestCPMIgnoresDiagonalAndOutOfRange: self-hits and bogus warp ids must
// not corrupt the matrix, and a warp is always compatible with itself.
func TestCPMIgnoresDiagonalAndOutOfRange(t *testing.T) {
	c := NewCPM(4, 2, 500)
	c.OnTLBHit(0, []int16{0})     // diagonal
	c.OnTLBHit(0, []int16{-1, 7}) // out of range
	c.OnTLBHit(9, []int16{1})     // warp itself out of range
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			if got := c.Counter(a, b); got != 0 {
				t.Fatalf("Counter(%d,%d) = %d after invalid updates, want 0", a, b, got)
			}
		}
	}
	if !c.Saturated(2, 2) {
		t.Error("warp not compatible with itself")
	}
	if c.Saturated(-1, 2) || c.Saturated(2, 9) {
		t.Error("out-of-range pair reported Saturated")
	}
	if c.Counter(1, 1) != 0 || c.Counter(-1, 0) != 0 {
		t.Error("diagonal/out-of-range Counter not zero")
	}
}

// TestCPMMaybeFlush: the matrix clears only once the flush period elapses,
// and a zero period disables flushing entirely.
func TestCPMMaybeFlush(t *testing.T) {
	c := NewCPM(4, 3, 500)
	c.OnTLBHit(0, []int16{1})
	c.MaybeFlush(100) // period not yet elapsed
	if c.Counter(0, 1) != 1 {
		t.Fatal("flushed before the period elapsed")
	}
	c.MaybeFlush(600) // elapsed: clears and restamps
	if c.Counter(0, 1) != 0 {
		t.Fatal("did not flush after the period elapsed")
	}
	c.OnTLBHit(0, []int16{1})
	c.MaybeFlush(700) // only 100 cycles since the last flush
	if c.Counter(0, 1) != 1 {
		t.Fatal("flush period not restarted after a flush")
	}

	never := NewCPM(2, 1, 0)
	never.OnTLBHit(0, []int16{1})
	never.MaybeFlush(1 << 30)
	if never.Counter(0, 1) != 1 {
		t.Fatal("zero flush period still flushed")
	}
}
