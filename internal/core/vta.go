package core

// VTA is a per-warp victim tag array: a small set-associative store of tags
// of recently evicted cache lines (CCWS, paper figure 12) or virtual pages
// (TCWS, figure 15). Hits in a warp's VTA indicate the warp's working set
// was displaced by other warps — lost intra-warp locality.
type VTA struct {
	sets    [][]vtag
	setMask uint64
	tick    uint64
}

type vtag struct {
	tag     uint64
	valid   bool
	lastUse uint64
}

// NewVTA builds a victim tag array with the given entries and associativity
// (paper: 16-entry 8-way per warp for CCWS; TCWS sweeps entries-per-warp).
// If entries < assoc the array degrades to a single set of `entries` ways.
func NewVTA(entries, assoc int) *VTA {
	if assoc < 1 {
		panic("core: VTA associativity must be >= 1")
	}
	if entries < assoc {
		assoc = entries
	}
	numSets := entries / assoc
	if numSets == 0 {
		numSets = 1
	}
	// Round set count down to a power of two to keep indexing trivial.
	for numSets&(numSets-1) != 0 {
		numSets--
	}
	sets := make([][]vtag, numSets)
	backing := make([]vtag, numSets*assoc)
	for i := range sets {
		sets[i] = backing[i*assoc : (i+1)*assoc]
	}
	return &VTA{sets: sets, setMask: uint64(numSets - 1)}
}

// Probe reports whether tag is present, refreshing its recency on a hit
// (the paper probes on misses in the corresponding structure).
func (v *VTA) Probe(tag uint64) bool {
	set := v.sets[tag&v.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			v.tick++
			set[i].lastUse = v.tick
			return true
		}
	}
	return false
}

// Insert records an evicted tag, displacing the set's LRU entry.
func (v *VTA) Insert(tag uint64) {
	set := v.sets[tag&v.setMask]
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			v.tick++
			set[i].lastUse = v.tick
			return
		}
		if !set[victim].valid {
			continue
		}
		if !set[i].valid || set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	v.tick++
	set[victim] = vtag{tag: tag, valid: true, lastUse: v.tick}
}

// Clear empties the array.
func (v *VTA) Clear() {
	for _, set := range v.sets {
		for i := range set {
			set[i] = vtag{}
		}
	}
}
