package core

import (
	"testing"

	"gpummu/internal/config"
	"gpummu/internal/engine"
)

func sharedCfg() config.MMU {
	m := config.AugmentedMMU()
	m.SharedTLBEntries = 512
	m.SharedTLBLatency = 20
	return m
}

func attachShared(h *mmuHarness, entries, latency int) *SharedTLB {
	s := NewSharedTLB(entries, 4, 4, latency, h.st)
	h.mmu.AttachSharedTLB(s)
	return s
}

func TestSharedTLBAvoidsSecondWalk(t *testing.T) {
	// Core A misses and walks; core B (sharing the structure) then misses
	// in its own TLB but hits the shared tier — no second walk.
	a := newHarness(t, config.AugmentedMMU(), 4)
	b := newHarness(t, config.AugmentedMMU(), 4)
	// Point B at A's address space so VPNs coincide.
	b.mmu.tr = a.mmu.tr
	shared := attachShared(a, 512, 20)
	b.mmu.AttachSharedTLB(shared)

	resA := a.mmu.Lookup(0, req(a.vpn(0)))
	if a.st.Walks != 1 {
		t.Fatalf("first miss walked %d times", a.st.Walks)
	}
	after := resA[0].ReadyAt + 1
	resB := b.mmu.Lookup(after, []PageReq{{VPN: a.vpn(0), Warps: []int{0}}})
	if resB[0].Hit {
		t.Fatal("core B's private TLB should miss")
	}
	// The shared tier serviced it: total walks still 1 (stats are shared
	// via harness A's sink; B has its own sink, so check B's).
	if b.st.Walks != 0 {
		t.Fatalf("core B walked %d times despite shared hit", b.st.Walks)
	}
	if resB[0].ReadyAt > after+30 {
		t.Fatalf("shared hit took %d cycles", resB[0].ReadyAt-after)
	}
	if a.st.SharedTLBHits == 0 && b.st.SharedTLBHits == 0 {
		t.Fatal("no shared TLB hit recorded")
	}
}

func TestSharedTLBMissStillWalks(t *testing.T) {
	h := newHarness(t, config.AugmentedMMU(), 4)
	attachShared(h, 512, 20)
	res := h.mmu.Lookup(0, req(h.vpn(1)))
	if h.st.Walks != 1 {
		t.Fatalf("walks = %d", h.st.Walks)
	}
	if h.st.SharedTLBMisses != 1 {
		t.Fatalf("shared misses = %d", h.st.SharedTLBMisses)
	}
	// The failed probe delays the walk, so completion includes latency.
	if res[0].ReadyAt < 20 {
		t.Fatalf("walk completed at %d, before probe round-trip", res[0].ReadyAt)
	}
}

func TestSharedTLBShootdownFlushesBothTiers(t *testing.T) {
	h := newHarness(t, config.AugmentedMMU(), 4)
	attachShared(h, 512, 20)
	r := h.mmu.Lookup(0, req(h.vpn(0)))
	h.mmu.Shootdown()
	h.mmu.Lookup(r[0].ReadyAt+100, req(h.vpn(0)))
	// Both tiers were flushed: a full walk must happen again.
	if h.st.Walks != 2 {
		t.Fatalf("walks after shootdown = %d, want 2", h.st.Walks)
	}
}

func TestSoftwareWalksSlowerAndBlocking(t *testing.T) {
	hw := config.NaiveMMU(4)
	hw.HitsUnderMiss = true
	sw := hw
	sw.SoftwareWalks = true
	sw.SoftwareWalkOverhead = 300

	a := newHarness(t, hw, 4)
	b := newHarness(t, sw, 4)

	ra := a.mmu.Lookup(0, req(a.vpn(0)))
	rb := b.mmu.Lookup(0, req(b.vpn(0)))
	if rb[0].ReadyAt <= ra[0].ReadyAt {
		t.Fatalf("software walk (%d) not slower than hardware (%d)", rb[0].ReadyAt, ra[0].ReadyAt)
	}
	// Software-managed TLBs block even with HitsUnderMiss set.
	if b.mmu.CanAcceptMemOp(1) {
		t.Fatal("software-walk MMU accepted a memory op mid-handler")
	}
	if a.mmu.CanAcceptMemOp(1) != true {
		t.Fatal("hardware non-blocking MMU refused a memory op")
	}
}

func TestSoftwareWalksSerialise(t *testing.T) {
	sw := config.NaiveMMU(4)
	sw.SoftwareWalks = true
	sw.SoftwareWalkOverhead = 300
	h := newHarness(t, sw, 8)
	res := h.mmu.Lookup(0, req(h.vpn(0), h.vpn(2)))
	// Two handlers cannot overlap: the second finishes at least one full
	// overhead after the first.
	gap := int64(res[1].ReadyAt) - int64(res[0].ReadyAt)
	if gap < 0 {
		gap = -gap
	}
	if gap < 300 {
		t.Fatalf("handlers overlapped: completions %d and %d", res[0].ReadyAt, res[1].ReadyAt)
	}
}

// TestSharedTLBEndToEnd runs a workload-free check through the gpu layer
// indirectly: a second round of per-core misses after a flush of only the
// private tier hits shared and completes much faster.
func TestSharedTLBSecondRoundFaster(t *testing.T) {
	h := newHarness(t, config.AugmentedMMU(), 16)
	attachShared(h, 512, 20)
	var vpns []uint64
	for i := 0; i < 16; i++ {
		vpns = append(vpns, h.vpn(i))
	}
	res := h.mmu.Lookup(0, req(vpns...))
	var warm engine.Cycle
	for _, r := range res {
		if r.ReadyAt > warm {
			warm = r.ReadyAt
		}
	}
	coldWalks := h.st.Walks.Value()
	// Flush only the private tier.
	h.mmu.tlb.Flush()
	res = h.mmu.Lookup(warm+1, req(vpns...))
	if h.st.Walks.Value() != coldWalks {
		t.Fatalf("second round walked (%d -> %d)", coldWalks, h.st.Walks.Value())
	}
	for _, r := range res {
		if r.Hit {
			t.Fatal("private tier hit after flush")
		}
		if r.ReadyAt > warm+1+100 {
			t.Fatalf("shared-tier refill took %d cycles", r.ReadyAt-warm-1)
		}
	}
}
