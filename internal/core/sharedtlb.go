package core

import (
	"gpummu/internal/engine"
	"gpummu/internal/stats"
)

// SharedTLB is a chip-level second-tier TLB shared by every shader core,
// probed on per-core TLB misses before starting a page table walk. The
// paper's section 10 anticipates follow-up work in this direction (its
// concurrent work, Power et al. HPCA 2014, shares walk hardware across
// compute units; shared last-level TLBs are Bhattacharjee et al. HPCA
// 2010). It is an extension beyond the paper's evaluated designs, off by
// default.
type SharedTLB struct {
	tlb     *TLB
	ports   *engine.Resource
	latency engine.Cycle // round-trip to the shared structure
	st      *stats.Sim
}

// NewSharedTLB builds a shared TLB with the given geometry. latency is the
// round-trip cost a core pays to probe it (interconnect + access).
func NewSharedTLB(entries, assoc int, ports int, latency int, st *stats.Sim) *SharedTLB {
	return &SharedTLB{
		tlb:     NewTLB(entries, assoc, 0),
		ports:   engine.NewResource(ports),
		latency: engine.Cycle(latency),
		st:      st,
	}
}

// Probe looks up vpn at cycle now. On a hit it returns the physical page
// base and the cycle the translation arrives back at the requesting core.
func (s *SharedTLB) Probe(now engine.Cycle, vpn uint64) (pbase uint64, readyAt engine.Cycle, hit bool) {
	start := s.ports.Acquire(now, 1)
	info, ok := s.tlb.Lookup(start, vpn, -1)
	s.st.SharedTLBAccesses.Inc()
	if !ok {
		s.st.SharedTLBMisses.Inc()
		return 0, start + s.latency, false
	}
	s.st.SharedTLBHits.Inc()
	return info.PBase, start + s.latency, true
}

// Fill installs a translation that becomes visible at readyAt (walk
// completions propagate to the shared tier as well as the requesting
// core's TLB).
func (s *SharedTLB) Fill(readyAt engine.Cycle, vpn, pbase uint64) {
	s.tlb.Fill(readyAt, vpn, pbase, -1)
}

// Flush empties the shared tier (shootdowns flush both levels).
func (s *SharedTLB) Flush() { s.tlb.Flush() }
