// Package core implements the paper's contribution: the per-shader-core GPU
// memory management unit. It contains the set-associative TLB with a
// CACTI-style size/latency trade-off, blocking and non-blocking miss
// handling, single and multiple hardware page table walkers, the coalescing
// page-table-walk scheduler of section 6.3, the victim tag arrays used by
// the CCWS scheduler family (section 7), and the Common Page Matrix used by
// TLB-aware thread block compaction (section 8).
package core

import (
	"gpummu/internal/engine"
)

// tlbEntry is one TLB way. validAt implements fills that complete in the
// future: a lookup at cycle c only sees entries with validAt <= c, which is
// how the analytic timing model represents in-flight fills.
type tlbEntry struct {
	vpn     uint64
	pbase   uint64
	valid   bool
	validAt engine.Cycle
	lastUse uint64
	// allocWarp is the warp whose miss filled this entry (victim
	// attribution for TCWS VTAs).
	allocWarp int
	// history holds the last warps to hit this entry (paper section 8.2:
	// 12 spare PTE bits hold two 6-bit warp IDs for CPM updates).
	history []int16
}

// TLB is a set-associative translation lookaside buffer with true LRU
// replacement within each set.
type TLB struct {
	sets    [][]tlbEntry
	setMask uint64
	tick    uint64
	histLen int

	// onEvict, when set, observes evicted entries (TCWS fills its
	// page-granular victim tag arrays from these).
	onEvict func(vpn uint64, allocWarp int)
}

// NewTLB builds a TLB with the given total entries and associativity. The
// set count must come out a power of two. histLen is the per-entry warp
// history length for CPM updates (0 disables history tracking).
func NewTLB(entries, assoc, histLen int) *TLB {
	if entries%assoc != 0 {
		panic("core: TLB entries must divide by associativity")
	}
	numSets := entries / assoc
	if numSets&(numSets-1) != 0 {
		panic("core: TLB set count must be a power of two")
	}
	sets := make([][]tlbEntry, numSets)
	backing := make([]tlbEntry, entries)
	for i := range sets {
		sets[i] = backing[i*assoc : (i+1)*assoc]
	}
	return &TLB{sets: sets, setMask: uint64(numSets - 1), histLen: histLen}
}

// SetOnEvict registers an eviction observer.
func (t *TLB) SetOnEvict(fn func(vpn uint64, allocWarp int)) { t.onEvict = fn }

func (t *TLB) set(vpn uint64) []tlbEntry { return t.sets[vpn&t.setMask] }

// HitInfo describes a TLB hit.
type HitInfo struct {
	PBase    uint64
	LRUDepth int     // 0 = MRU position within the set
	History  []int16 // warps that hit this entry before (CPM input)
}

// Lookup probes the TLB for vpn at cycle now, updating recency and the warp
// history on a hit. warp is the original warp ID of the requester.
func (t *TLB) Lookup(now engine.Cycle, vpn uint64, warp int) (HitInfo, bool) {
	set := t.set(vpn)
	for i := range set {
		e := &set[i]
		if e.valid && e.vpn == vpn && e.validAt <= now {
			depth := 0
			for j := range set {
				o := &set[j]
				if j != i && o.valid && o.validAt <= now && o.lastUse > e.lastUse {
					depth++
				}
			}
			t.tick++
			e.lastUse = t.tick
			info := HitInfo{PBase: e.pbase, LRUDepth: depth}
			if t.histLen > 0 {
				info.History = append(info.History, e.history...)
				e.history = append(e.history, int16(warp))
				if len(e.history) > t.histLen {
					e.history = e.history[len(e.history)-t.histLen:]
				}
			}
			return info, true
		}
	}
	return HitInfo{}, false
}

// Fill installs vpn -> pbase, becoming visible at cycle readyAt. warp is
// the allocating warp. The LRU entry of the set is evicted.
func (t *TLB) Fill(readyAt engine.Cycle, vpn, pbase uint64, warp int) {
	set := t.set(vpn)
	victim := 0
	for i := range set {
		e := &set[i]
		if e.valid && e.vpn == vpn {
			// Refill of an in-flight or stale entry: update in place.
			e.pbase = pbase
			e.validAt = readyAt
			return
		}
		if !set[victim].valid {
			continue
		}
		if !e.valid || e.lastUse < set[victim].lastUse {
			victim = i
		}
	}
	v := &set[victim]
	if v.valid && t.onEvict != nil {
		t.onEvict(v.vpn, v.allocWarp)
	}
	t.tick++
	*v = tlbEntry{vpn: vpn, pbase: pbase, valid: true, validAt: readyAt, lastUse: t.tick, allocWarp: warp}
	if t.histLen > 0 {
		v.history = make([]int16, 0, t.histLen)
	}
}

// Flush invalidates the whole TLB (shootdown semantics: the paper assumes
// CPU-initiated flushes of the GPU TLB, section 6.2).
func (t *TLB) Flush() {
	for _, set := range t.sets {
		for i := range set {
			set[i] = tlbEntry{}
		}
	}
}

// Occupancy returns the valid fraction of entries (diagnostics).
func (t *TLB) Occupancy() float64 {
	valid, total := 0, 0
	for _, set := range t.sets {
		for i := range set {
			total++
			if set[i].valid {
				valid++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(valid) / float64(total)
}
