package core

import "gpummu/internal/engine"

// CPM is the Common Page Matrix of TLB-aware thread block compaction
// (paper section 8.2): a table with one row per warp and, per row, a
// saturating counter for every other warp. A counter records how often the
// two warps have recently accessed the same PTEs; compaction only merges
// threads from warp pairs whose counters are saturated. The matrix is
// periodically flushed (paper: every 500 cycles) so it adapts to phase
// changes. All updates happen off the critical path of warp formation.
type CPM struct {
	n         int
	max       uint8
	counters  []uint8 // n*n, row-major; diagonal unused
	flushEach engine.Cycle
	lastFlush engine.Cycle
}

// NewCPM builds a matrix for n warps with bits-wide counters (1..3 in the
// paper's figure 22) flushed every flushPeriod cycles.
func NewCPM(n, bits int, flushPeriod int) *CPM {
	if bits < 1 || bits > 8 {
		panic("core: CPM counter bits out of range")
	}
	return &CPM{
		n:         n,
		max:       uint8(1<<bits - 1),
		counters:  make([]uint8, n*n),
		flushEach: engine.Cycle(flushPeriod),
	}
}

// MaybeFlush clears the matrix if the flush period has elapsed.
func (c *CPM) MaybeFlush(now engine.Cycle) {
	if c.flushEach == 0 || now-c.lastFlush < c.flushEach {
		return
	}
	for i := range c.counters {
		c.counters[i] = 0
	}
	c.lastFlush = now
}

func (c *CPM) bump(a, b int) {
	if a == b || a < 0 || b < 0 || a >= c.n || b >= c.n {
		return
	}
	i := a*c.n + b
	if c.counters[i] < c.max {
		c.counters[i]++
	}
}

// OnTLBHit records that warp hit a TLB entry previously touched by the
// warps in history (the per-entry history field maintained by the TLB).
// Counters are updated symmetrically.
func (c *CPM) OnTLBHit(warp int, history []int16) {
	for _, h := range history {
		c.bump(warp, int(h))
		c.bump(int(h), warp)
	}
}

// Saturated reports whether the counter between warps a and b is at
// maximum — the admission condition for compacting their threads together.
// A warp is always compatible with itself.
func (c *CPM) Saturated(a, b int) bool {
	if a == b {
		return true
	}
	if a < 0 || b < 0 || a >= c.n || b >= c.n {
		return false
	}
	return c.counters[a*c.n+b] == c.max
}

// Counter exposes the raw counter value (diagnostics and tests).
func (c *CPM) Counter(a, b int) uint8 {
	if a < 0 || b < 0 || a >= c.n || b >= c.n || a == b {
		return 0
	}
	return c.counters[a*c.n+b]
}
