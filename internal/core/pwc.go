package core

import (
	"gpummu/internal/engine"
	"gpummu/internal/mem"
	"gpummu/internal/vm"
)

// PWC is a page walk cache: a small fully-associative LRU cache over the
// physical addresses of upper-level page table entries (PML4, PDP, PD).
// A hit skips that level's memory reference entirely. This is the
// translation-caching idea of Barr et al. (ISCA 2010), which the paper
// cites but does not evaluate for GPUs — included here as an extension
// (config.MMU.PWCEntries), off by default.
//
// Unlike the PTW scheduler's reuse window (which only survives while walks
// are in flight), the PWC persists across quiet periods, so it also helps
// isolated misses.
type PWC struct {
	entries map[uint64]*pwcEntry
	order   uint64
	cap     int
}

type pwcEntry struct {
	lastUse uint64
}

// NewPWC builds a page walk cache with the given entry capacity.
func NewPWC(capacity int) *PWC {
	if capacity < 1 {
		panic("core: PWC capacity must be >= 1")
	}
	return &PWC{entries: make(map[uint64]*pwcEntry, capacity), cap: capacity}
}

// Lookup reports whether the PTE at pa is cached, refreshing recency.
func (p *PWC) Lookup(pa uint64) bool {
	e, ok := p.entries[pa]
	if !ok {
		return false
	}
	p.order++
	e.lastUse = p.order
	return true
}

// Insert caches the PTE at pa, evicting the LRU entry when full.
func (p *PWC) Insert(pa uint64) {
	if e, ok := p.entries[pa]; ok {
		p.order++
		e.lastUse = p.order
		return
	}
	if len(p.entries) >= p.cap {
		var victim uint64
		var oldest uint64 = ^uint64(0)
		for k, e := range p.entries {
			if e.lastUse < oldest {
				oldest = e.lastUse
				victim = k
			}
		}
		delete(p.entries, victim)
	}
	p.order++
	p.entries[pa] = &pwcEntry{lastUse: p.order}
}

// Flush empties the cache (TLB shootdowns invalidate cached PTEs too).
func (p *PWC) Flush() { clear(p.entries) }

// Len reports the number of cached entries.
func (p *PWC) Len() int { return len(p.entries) }

// walkPTEs issues the walk's PTE references, consulting the PWC first for
// upper-level references (all but the last) when one is configured. It is
// shared by the serial and scheduled walk paths; the two reference-issue
// strategies are inlined (rather than passed as a closure) so the per-walk
// hot path stays allocation-free.
func (m *MMU) walkPTEs(cur engine.Cycle, tr vm.Translation, scheduled bool) engine.Cycle {
	pas := tr.PAs()
	last := len(pas) - 1
	for i, pa := range pas {
		if m.pwc != nil && i < last {
			if m.pwc.Lookup(pa) {
				m.st.PWCHits.Inc()
				continue // upper-level PTE served from the walk cache
			}
			m.pwc.Insert(pa)
		}
		if scheduled {
			if avail, ok := m.reuse[pa]; ok {
				// An in-flight or just-completed walk already fetched this
				// exact PTE; the comparator tree forwards it.
				m.st.WalkRefsCoalesced.Inc()
				if avail > cur {
					cur = avail
				}
				continue
			}
			// One reference issues per cycle through the walker's port.
			if m.issuePort > cur {
				cur = m.issuePort
			}
			m.issuePort = cur + 1
			m.st.WalkRefs.Inc()
			done, _ := m.sys.Access(cur, pa, mem.ClassWalk)
			m.reuse[pa] = done
			cur = done
		} else {
			m.st.WalkRefs.Inc()
			done, _ := m.sys.Access(cur, pa, mem.ClassWalk)
			cur = done
		}
	}
	return cur
}
