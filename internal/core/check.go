package core

import (
	"fmt"

	"gpummu/internal/engine"
	"gpummu/internal/vm"
)

// This file is the MMU half of the debug-build invariant checker (DESIGN.md
// §12): read-only structural checks the timing simulator runs on a coarse
// cadence when invariant checking is enabled. Nothing here may mutate TLB
// recency, walker timing, or MSHR state — the checks must not perturb the
// simulation they are auditing.

// ForEachValid calls fn for every valid TLB entry, including entries whose
// fill is still in flight (validAt in the future). Unlike Lookup it touches
// no recency or history state.
func (t *TLB) ForEachValid(fn func(vpn, pbase uint64, validAt engine.Cycle)) {
	for _, set := range t.sets {
		for i := range set {
			if e := &set[i]; e.valid {
				fn(e.vpn, e.pbase, e.validAt)
			}
		}
	}
}

// checkTLBCoherence verifies that every entry of t is a subset of the page
// table: its cached physical page base must equal what a fresh walk of the
// entry's virtual page returns. label names the structure in errors.
func checkTLBCoherence(t *TLB, tr *vm.Translator, label string) error {
	var err error
	t.ForEachValid(func(vpn, pbase uint64, _ engine.Cycle) {
		if err != nil {
			return
		}
		want := tr.Lookup(vpn << tr.PageShift()).PageBase()
		if pbase != want {
			err = fmt.Errorf("core: %s entry vpn %#x caches pbase %#x, page table says %#x",
				label, vpn, pbase, want)
		}
	})
	return err
}

// CheckInvariants audits the MMU's structural state at cycle now:
//
//   - every valid TLB entry agrees with the page table (TLB ⊆ page table);
//   - the MSHR bookkeeping is consistent — outstanding walks and the pending
//     merge map track exactly the same set of (vpn, completion) pairs;
//   - in-flight walk occupancy is bounded. The bound is cfg.MSHRs plus
//     mshrSlack because MSHR exhaustion delays a new walk's start to the
//     earliest outstanding completion rather than stalling the requester, so
//     every translating warp of the core can transiently push one batch of
//     misses past the configured registers; the caller passes the structural
//     ceiling on that batch (warps per core x warp width).
//
// Read-only: no prune, no recency updates, no reuse-window clearing.
func (m *MMU) CheckInvariants(now engine.Cycle, mshrSlack int) error {
	if !m.cfg.Enabled {
		return nil
	}
	if err := checkTLBCoherence(m.tlb, m.tr, "TLB"); err != nil {
		return err
	}
	if len(m.outstanding) != len(m.pending) {
		return fmt.Errorf("core: %d outstanding walks but %d pending map entries",
			len(m.outstanding), len(m.pending))
	}
	inflight := 0
	for _, w := range m.outstanding {
		done, ok := m.pending[w.vpn]
		if !ok {
			return fmt.Errorf("core: outstanding walk for vpn %#x missing from pending map", w.vpn)
		}
		if done != w.done {
			return fmt.Errorf("core: walk for vpn %#x completes at %d outstanding vs %d pending",
				w.vpn, w.done, done)
		}
		if w.done > now {
			inflight++
		}
	}
	if limit := m.cfg.MSHRs + mshrSlack; inflight > limit {
		return fmt.Errorf("core: %d walks in flight at cycle %d exceeds MSHR bound %d (%d MSHRs + %d slack)",
			inflight, now, limit, m.cfg.MSHRs, mshrSlack)
	}
	return nil
}

// CheckInvariants verifies the shared second-tier TLB against the page
// table, exactly as the per-core check does.
func (s *SharedTLB) CheckInvariants(tr *vm.Translator) error {
	return checkTLBCoherence(s.tlb, tr, "shared TLB")
}
