package core

import (
	"testing"
	"testing/quick"
)

func TestTLBFillLookup(t *testing.T) {
	tlb := NewTLB(128, 4, 0)
	if _, ok := tlb.Lookup(0, 0x42, 1); ok {
		t.Fatal("cold lookup hit")
	}
	tlb.Fill(10, 0x42, 0xABC000, 1)
	if _, ok := tlb.Lookup(5, 0x42, 1); ok {
		t.Fatal("lookup before validAt hit")
	}
	info, ok := tlb.Lookup(10, 0x42, 1)
	if !ok || info.PBase != 0xABC000 {
		t.Fatalf("lookup = %+v, %v", info, ok)
	}
}

func TestTLBLRUWithinSet(t *testing.T) {
	tlb := NewTLB(8, 4, 0) // 2 sets, 4 ways
	// Four VPNs in set 0 (even VPNs land in set 0 for 2 sets).
	vpns := []uint64{0, 2, 4, 6}
	for i, v := range vpns {
		tlb.Fill(0, v, uint64(i)<<12, 0)
	}
	tlb.Lookup(1, 0, 0) // refresh vpn 0
	tlb.Fill(2, 8, 0x99000, 0)
	if _, ok := tlb.Lookup(3, 2, 0); ok {
		t.Fatal("LRU entry (vpn 2) survived")
	}
	if _, ok := tlb.Lookup(3, 0, 0); !ok {
		t.Fatal("MRU entry (vpn 0) evicted")
	}
}

func TestTLBLRUDepth(t *testing.T) {
	tlb := NewTLB(8, 4, 0)
	for i, v := range []uint64{0, 2, 4, 6} {
		tlb.Fill(0, v, uint64(i)<<12, 0)
	}
	// 6 was filled last => depth 0; 0 was first => depth 3.
	if info, _ := tlb.Lookup(1, 6, 0); info.LRUDepth != 0 {
		t.Fatalf("vpn 6 depth = %d, want 0", info.LRUDepth)
	}
	if info, _ := tlb.Lookup(2, 0, 0); info.LRUDepth != 3 {
		t.Fatalf("vpn 0 depth = %d, want 3", info.LRUDepth)
	}
	// 0 just became MRU.
	if info, _ := tlb.Lookup(3, 0, 0); info.LRUDepth != 0 {
		t.Fatalf("refreshed vpn 0 depth = %d, want 0", info.LRUDepth)
	}
}

func TestTLBWarpHistory(t *testing.T) {
	tlb := NewTLB(8, 4, 2)
	tlb.Fill(0, 0x10, 0x1000, 3)
	info, _ := tlb.Lookup(1, 0x10, 5)
	if len(info.History) != 0 {
		t.Fatalf("first hit sees history %v", info.History)
	}
	info, _ = tlb.Lookup(2, 0x10, 7)
	if len(info.History) != 1 || info.History[0] != 5 {
		t.Fatalf("second hit sees %v, want [5]", info.History)
	}
	info, _ = tlb.Lookup(3, 0x10, 9)
	if len(info.History) != 2 || info.History[0] != 5 || info.History[1] != 7 {
		t.Fatalf("third hit sees %v, want [5 7]", info.History)
	}
	tlb.Lookup(4, 0x10, 11)
	info, _ = tlb.Lookup(5, 0x10, 0)
	if len(info.History) != 2 || info.History[0] != 9 || info.History[1] != 11 {
		t.Fatalf("history not bounded to 2: %v", info.History)
	}
}

func TestTLBEvictionHook(t *testing.T) {
	tlb := NewTLB(4, 4, 0) // one set
	var evictedVPN uint64
	var evictedWarp int
	tlb.SetOnEvict(func(vpn uint64, w int) { evictedVPN, evictedWarp = vpn, w })
	for i := uint64(0); i < 4; i++ {
		tlb.Fill(0, i, i<<12, int(i))
	}
	tlb.Fill(1, 99, 0x9000, 9)
	if evictedVPN != 0 || evictedWarp != 0 {
		t.Fatalf("evicted (%d, warp %d), want (0, warp 0)", evictedVPN, evictedWarp)
	}
}

func TestTLBFlush(t *testing.T) {
	tlb := NewTLB(128, 4, 0)
	tlb.Fill(0, 1, 0x1000, 0)
	tlb.Flush()
	if _, ok := tlb.Lookup(1, 1, 0); ok {
		t.Fatal("entry survived flush")
	}
	if tlb.Occupancy() != 0 {
		t.Fatal("occupancy nonzero after flush")
	}
}

// TestTLBQuickFillThenHit: any fill is observable at its validAt cycle with
// the filled pbase.
func TestTLBQuickFillThenHit(t *testing.T) {
	tlb := NewTLB(256, 4, 0)
	f := func(vpn uint32, pb uint32) bool {
		v, p := uint64(vpn), uint64(pb)<<12
		tlb.Fill(0, v, p, 0)
		info, ok := tlb.Lookup(0, v, 0)
		return ok && info.PBase == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestVTAProbeInsert(t *testing.T) {
	v := NewVTA(16, 8)
	if v.Probe(0x123) {
		t.Fatal("cold probe hit")
	}
	v.Insert(0x123)
	if !v.Probe(0x123) {
		t.Fatal("inserted tag not found")
	}
	v.Clear()
	if v.Probe(0x123) {
		t.Fatal("tag survived clear")
	}
}

func TestVTACapacityEviction(t *testing.T) {
	v := NewVTA(4, 4) // one set of 4
	for i := uint64(0); i < 5; i++ {
		v.Insert(i)
	}
	if v.Probe(0) {
		t.Fatal("LRU tag survived over-capacity insert")
	}
	for i := uint64(1); i < 5; i++ {
		if !v.Probe(i) {
			t.Fatalf("tag %d lost", i)
		}
	}
}

func TestVTATinyGeometries(t *testing.T) {
	for _, epw := range []int{2, 4, 8, 16} {
		v := NewVTA(epw, 8)
		for i := uint64(0); i < uint64(epw); i++ {
			v.Insert(i)
		}
		hits := 0
		for i := uint64(0); i < uint64(epw); i++ {
			if v.Probe(i) {
				hits++
			}
		}
		if hits != epw {
			t.Fatalf("EPW %d retains %d/%d", epw, hits, epw)
		}
	}
}

func TestCPMSaturationAndFlush(t *testing.T) {
	c := NewCPM(8, 2, 500) // counters saturate at 3
	if c.Saturated(1, 2) {
		t.Fatal("fresh CPM saturated")
	}
	if !c.Saturated(3, 3) {
		t.Fatal("warp not compatible with itself")
	}
	for i := 0; i < 3; i++ {
		c.OnTLBHit(1, []int16{2})
	}
	if !c.Saturated(1, 2) || !c.Saturated(2, 1) {
		t.Fatal("counters not symmetric or not saturated after 3 hits")
	}
	c.MaybeFlush(100) // before period: no-op
	if !c.Saturated(1, 2) {
		t.Fatal("flushed early")
	}
	c.MaybeFlush(600)
	if c.Saturated(1, 2) {
		t.Fatal("flush did not clear counters")
	}
}

func TestCPMCounterBits(t *testing.T) {
	for _, bits := range []int{1, 2, 3} {
		c := NewCPM(4, bits, 0)
		max := 1<<bits - 1
		for i := 0; i < max-1; i++ {
			c.OnTLBHit(0, []int16{1})
		}
		if max > 1 && c.Saturated(0, 1) {
			t.Fatalf("bits=%d: saturated one hit early", bits)
		}
		c.OnTLBHit(0, []int16{1})
		if !c.Saturated(0, 1) {
			t.Fatalf("bits=%d: not saturated at max", bits)
		}
		if got := c.Counter(0, 1); int(got) != max {
			t.Fatalf("bits=%d: counter %d, want %d", bits, got, max)
		}
	}
}

func TestCPMIgnoresOutOfRange(t *testing.T) {
	c := NewCPM(4, 3, 0)
	c.OnTLBHit(-1, []int16{2})
	c.OnTLBHit(0, []int16{99})
	if c.Saturated(0, 99) || c.Saturated(-1, 2) {
		t.Fatal("out-of-range pairs reported saturated")
	}
}
