package core

import (
	"gpummu/internal/config"
	"gpummu/internal/engine"
	"gpummu/internal/mem"
	"gpummu/internal/stats"
	"gpummu/internal/vm"
)

// PageReq is one distinct virtual page referenced by a warp memory
// instruction after coalescing (the paper coalesces intra-warp requests to
// the same PTE into a single TLB lookup).
type PageReq struct {
	VPN uint64
	// Warps lists the original warp IDs of the requesting threads
	// (normally one; several after thread block compaction). They feed
	// the TLB entry history and the Common Page Matrix.
	Warps []int
}

// PageResult reports the outcome of translating one PageReq.
type PageResult struct {
	VPN      uint64
	PBase    uint64
	ReadyAt  engine.Cycle // cycle the translation is available to the LSU
	Hit      bool
	Merged   bool // miss merged into an already-outstanding walk
	LRUDepth int  // LRU stack depth of the hit (TCWS weighting); -1 on miss
}

type outWalk struct {
	vpn  uint64
	done engine.Cycle
}

// MMU is one shader core's memory management unit: TLB, MSHRs, and page
// table walker(s), in all the paper's configurations. A disabled MMU
// models the no-TLB baseline: translation is functionally exact and free.
type MMU struct {
	cfg config.MMU
	sys *mem.System
	tr  *vm.Translator
	st  *stats.Sim

	tlb   *TLB
	ports *engine.Resource

	// Serial walkers: next-free cycle per hardware PTW.
	walkers []engine.Cycle
	// Scheduled mode: the single walker's reference issue port and the
	// PTE reuse table (combinational MSHR scan in hardware).
	issuePort engine.Cycle
	reuse     map[uint64]engine.Cycle

	outstanding []outWalk
	pending     map[uint64]engine.Cycle // vpn -> walk completion

	// walkerWalks counts completed walks per walk-state slot (serial mode)
	// or on slot 0 (scheduled and software modes, which model one logical
	// walker). Cumulative over the MMU's lifetime; observability only.
	walkerWalks []uint64

	cpm      *CPM         // non-nil only under TLB-aware TBC
	shared   *SharedTLB   // non-nil only with the shared-L2-TLB extension
	pwc      *PWC         // non-nil only with the page-walk-cache extension
	swWalker engine.Cycle // software-walk serialisation (the core runs the handler)
}

// NewMMU builds the MMU for one core. tr must be the address space's
// translator; sys the shared memory system; st the run's statistics sink.
func NewMMU(cfg config.MMU, sys *mem.System, tr *vm.Translator, st *stats.Sim, histLen int) *MMU {
	m := &MMU{cfg: cfg, sys: sys, tr: tr, st: st}
	if cfg.Enabled {
		m.tlb = NewTLB(cfg.Entries, cfg.Assoc, histLen)
		m.ports = engine.NewResource(cfg.Ports)
		wc := cfg.WalkConcurrency
		if wc < 1 {
			wc = 1
		}
		// Each hardware walker pipelines wc outstanding walks; a walk
		// occupies one of its walk-state slots for its full duration.
		m.walkers = make([]engine.Cycle, cfg.NumPTWs*wc)
		m.walkerWalks = make([]uint64, len(m.walkers))
		m.reuse = make(map[uint64]engine.Cycle)
		m.pending = make(map[uint64]engine.Cycle)
		if cfg.PWCEntries > 0 {
			m.pwc = NewPWC(cfg.PWCEntries)
		}
	}
	return m
}

// Config returns the MMU configuration.
func (m *MMU) Config() config.MMU { return m.cfg }

// TLB exposes the TLB (nil when disabled) for eviction hooks and tests.
func (m *MMU) TLB() *TLB { return m.tlb }

// AttachCPM wires a Common Page Matrix so TLB hits update it.
func (m *MMU) AttachCPM(c *CPM) { m.cpm = c }

// AttachSharedTLB wires the chip-level shared TLB extension: per-core
// misses probe it before walking, and walks fill it.
func (m *MMU) AttachSharedTLB(s *SharedTLB) { m.shared = s }

// AccessPenalty returns the extra cycles this TLB adds to every L1 access.
func (m *MMU) AccessPenalty() engine.Cycle {
	return engine.Cycle(m.cfg.AccessPenalty())
}

// prune retires completed walks and, when the walker goes idle, clears the
// PTE reuse window (the batch has dispersed).
func (m *MMU) prune(now engine.Cycle) {
	live := m.outstanding[:0]
	for _, w := range m.outstanding {
		if w.done > now {
			live = append(live, w)
		} else {
			delete(m.pending, w.vpn)
		}
	}
	m.outstanding = live
	if len(m.outstanding) == 0 && len(m.reuse) > 0 {
		clear(m.reuse)
	}
}

// CanAcceptMemOp reports whether a memory instruction may begin address
// translation at cycle now. A blocking TLB (the naive design) refuses while
// any walk is outstanding; hits-under-miss lifts that restriction.
func (m *MMU) CanAcceptMemOp(now engine.Cycle) bool {
	if !m.cfg.Enabled {
		return true
	}
	m.prune(now)
	blocking := !m.cfg.HitsUnderMiss || m.cfg.SoftwareWalks
	if blocking && len(m.outstanding) > 0 {
		return false
	}
	return true
}

// NextEvent returns the earliest cycle at which an outstanding walk
// completes (and the blocking gate may open), or 0 when none are in flight.
func (m *MMU) NextEvent(now engine.Cycle) engine.Cycle {
	if !m.cfg.Enabled {
		return 0
	}
	m.prune(now)
	var earliest engine.Cycle
	for _, w := range m.outstanding {
		if earliest == 0 || w.done < earliest {
			earliest = w.done
		}
	}
	return earliest
}

// OutstandingWalks reports in-flight walk count (diagnostics and tests).
func (m *MMU) OutstandingWalks(now engine.Cycle) int {
	m.prune(now)
	return len(m.outstanding)
}

// WalkerWalks returns the cumulative completed-walk count per walk-state
// slot (nil when the MMU is disabled). The slice is live; callers must not
// mutate it.
func (m *MMU) WalkerWalks() []uint64 { return m.walkerWalks }

// Occupancy reports how many walk-state slots and miss-status registers are
// busy at cycle now. Unlike OutstandingWalks it mutates nothing — prune
// clears the PTE reuse window as a side effect, which would perturb walk
// timing — so the interval sampler may call it at any cycle boundary without
// changing simulation output.
func (m *MMU) Occupancy(now engine.Cycle) (walkersBusy, mshrsUsed int) {
	if !m.cfg.Enabled {
		return 0, 0
	}
	for _, free := range m.walkers {
		if free > now {
			walkersBusy++
		}
	}
	if (m.cfg.PTWSched && m.issuePort > now) || (m.cfg.SoftwareWalks && m.swWalker > now) {
		walkersBusy++
	}
	for _, w := range m.outstanding {
		if w.done > now {
			mshrsUsed++
		}
	}
	return walkersBusy, mshrsUsed
}

// Lookup translates a warp's distinct page requests at cycle now. Results
// carry the cycle each translation becomes available; the LSU overlaps or
// serialises cache access around them according to the non-blocking flags.
func (m *MMU) Lookup(now engine.Cycle, reqs []PageReq) []PageResult {
	return m.LookupInto(now, reqs, nil)
}

// LookupInto is Lookup writing into a caller-provided result buffer, which
// is grown if too small and returned resliced to len(reqs). The LSU passes
// its per-core scratch buffer so steady-state translation allocates nothing.
func (m *MMU) LookupInto(now engine.Cycle, reqs []PageReq, dst []PageResult) []PageResult {
	res, ls := m.LookupCompute(now, reqs, dst)
	m.LookupCommit(now, reqs, res, ls)
	return res
}

// LookupState records where a two-phase translation suspended: the index of
// the first request LookupCompute did not finish, plus the TLB port cycle it
// had already charged for that request. Resume == len(reqs) means the whole
// lookup completed during the compute phase.
type LookupState struct {
	Resume   int
	lookupAt engine.Cycle
}

// Done reports whether the lookup completed entirely in the compute phase.
func (ls LookupState) Done(reqs []PageReq) bool { return ls.Resume >= len(reqs) }

// LookupCompute runs the portion of a translation that touches only
// core-private state (TLB probe/recency, TLB ports, per-core stat shard,
// CPM) and therefore may execute concurrently with other cores' compute
// phases. It processes requests in order until the first TLB miss: the miss
// path walks the page table through the shared memory system and probes the
// shared L2 TLB, so everything from that request onward is left for
// LookupCommit. Suspending at the first miss (rather than recording
// placeholder work) is required for exactness — a later request's MSHR
// delay, merge, or even hit/LRU depth can depend on an earlier miss's fill.
//
// The decision "request i misses" is stable across the suspension: only this
// core fills its own TLB, and it is suspended until its commit turn.
func (m *MMU) LookupCompute(now engine.Cycle, reqs []PageReq, dst []PageResult) ([]PageResult, LookupState) {
	var res []PageResult
	if cap(dst) >= len(reqs) {
		res = dst[:len(reqs)]
	} else {
		res = make([]PageResult, len(reqs))
	}
	if !m.cfg.Enabled {
		// The functional translator's memo cache is read-only here: serial
		// runs are single-threaded, and parallel runs prewarm it at start.
		for i, r := range reqs {
			tr := m.tr.Lookup(r.VPN << m.tr.PageShift())
			res[i] = PageResult{VPN: r.VPN, PBase: tr.PageBase(), ReadyAt: now, Hit: true}
		}
		return res, LookupState{Resume: len(reqs)}
	}
	m.prune(now)
	if m.cpm != nil {
		m.cpm.MaybeFlush(now)
	}
	for i := range reqs {
		lookupAt, hit := m.lookupHit(now, reqs[i], &res[i])
		if !hit {
			return res, LookupState{Resume: i, lookupAt: lookupAt}
		}
	}
	return res, LookupState{Resume: len(reqs)}
}

// LookupCommit finishes a suspended translation during the core's serial
// commit turn: it services the miss LookupCompute stopped at (reusing the
// port cycle already charged) and then processes the remaining requests with
// the full hit-or-miss path, exactly as the serial LookupInto would have.
func (m *MMU) LookupCommit(now engine.Cycle, reqs []PageReq, res []PageResult, ls LookupState) {
	if ls.Resume >= len(reqs) {
		return
	}
	m.lookupMiss(ls.lookupAt, reqs[ls.Resume], &res[ls.Resume])
	for i := ls.Resume + 1; i < len(reqs); i++ {
		lookupAt, hit := m.lookupHit(now, reqs[i], &res[i])
		if !hit {
			m.lookupMiss(lookupAt, reqs[i], &res[i])
		}
	}
}

func reqWarp0(r PageReq) int {
	if len(r.Warps) > 0 {
		return r.Warps[0]
	}
	return -1
}

// lookupHit charges the TLB port and probes for r, filling *out on a hit.
// It returns the port cycle so a miss can resume from it. The miss path
// leaves the TLB untouched (Lookup mutates recency/history only on hits).
func (m *MMU) lookupHit(now engine.Cycle, r PageReq, out *PageResult) (engine.Cycle, bool) {
	m.st.TLBAccesses.Inc()
	lookupAt := m.ports.Acquire(now, 1)
	if info, ok := m.tlb.Lookup(lookupAt, r.VPN, reqWarp0(r)); ok {
		m.st.TLBHits.Inc()
		if len(m.outstanding) > 0 {
			m.st.TLBHitUnder.Inc()
		}
		if m.cpm != nil {
			for _, w := range r.Warps {
				m.cpm.OnTLBHit(w, info.History)
			}
		}
		*out = PageResult{VPN: r.VPN, PBase: info.PBase, ReadyAt: lookupAt, Hit: true, LRUDepth: info.LRUDepth}
		return lookupAt, true
	}
	return lookupAt, false
}

// lookupMiss services a TLB miss whose port cycle was already charged:
// merge into a pending walk, or start a new walk (MSHR exhaustion, shared
// L2 TLB probe, walker timing) and fill the TLB.
func (m *MMU) lookupMiss(lookupAt engine.Cycle, r PageReq, out *PageResult) {
	m.st.TLBMisses.Inc()
	tr := m.tr.Lookup(r.VPN << m.tr.PageShift())
	var done engine.Cycle
	merged := false
	if d, ok := m.pending[r.VPN]; ok {
		done = d
		merged = true
	} else {
		reqAt := lookupAt
		// MSHR exhaustion delays the walk until the oldest
		// outstanding miss retires.
		if len(m.outstanding) >= m.cfg.MSHRs {
			earliest := m.outstanding[0].done
			for _, w := range m.outstanding[1:] {
				if w.done < earliest {
					earliest = w.done
				}
			}
			if earliest > reqAt {
				reqAt = earliest
			}
		}
		walked := true
		if m.shared != nil {
			if pbase, at, hit := m.shared.Probe(reqAt, r.VPN); hit {
				if pbase != tr.PageBase() {
					panic("core: shared TLB returned a stale translation")
				}
				done = at
				walked = false
			} else {
				reqAt = at // walk starts after the failed probe returns
			}
		}
		if walked {
			done = m.walk(reqAt, tr)
			if m.shared != nil {
				m.shared.Fill(done, r.VPN, tr.PageBase())
			}
			m.st.Walks.Inc()
			m.st.WalkLat.Observe(uint64(done - reqAt))
		}
		m.tlb.Fill(done, r.VPN, tr.PageBase(), reqWarp0(r))
		m.pending[r.VPN] = done
		m.outstanding = append(m.outstanding, outWalk{vpn: r.VPN, done: done})
	}
	m.st.TLBMissLat.Observe(uint64(done - lookupAt))
	*out = PageResult{VPN: r.VPN, PBase: tr.PageBase(), ReadyAt: done, Merged: merged, LRUDepth: -1}
}

// walk models one page table walk beginning no earlier than reqAt and
// returns its completion cycle. In naive mode a hardware walker is occupied
// for the whole serial walk; in scheduled mode references from concurrent
// walks interleave through a single issue port, reusing identical PTE
// fetches (paper figure 9).
func (m *MMU) walk(reqAt engine.Cycle, tr vm.Translation) engine.Cycle {
	if m.cfg.SoftwareWalks {
		m.walkerWalks[0]++
		return m.walkSoftware(reqAt, tr)
	}
	if m.cfg.PTWSched {
		m.walkerWalks[0]++
		return m.walkScheduled(reqAt, tr)
	}
	// Pick the earliest-free walker.
	best := 0
	for i := 1; i < len(m.walkers); i++ {
		if m.walkers[i] < m.walkers[best] {
			best = i
		}
	}
	m.walkerWalks[best]++
	cur := m.walkers[best]
	if cur < reqAt {
		cur = reqAt
	}
	cur = m.walkPTEs(cur, tr, false)
	m.walkers[best] = cur
	return cur
}

func (m *MMU) walkScheduled(reqAt engine.Cycle, tr vm.Translation) engine.Cycle {
	return m.walkPTEs(reqAt, tr, true)
}

// walkSoftware services a miss by interrupting the core and running an OS
// handler: a fixed interrupt/return overhead plus the serial page table
// loads, fully serialised (the core can run one handler at a time). This
// is the section 6.1 design option the paper rejects as slower.
func (m *MMU) walkSoftware(reqAt engine.Cycle, tr vm.Translation) engine.Cycle {
	cur := m.swWalker
	if cur < reqAt {
		cur = reqAt
	}
	cur += engine.Cycle(m.cfg.SoftwareWalkOverhead)
	for _, pa := range tr.PAs() {
		m.st.WalkRefs.Inc()
		done, _ := m.sys.Access(cur, pa, mem.ClassWalk)
		cur = done
	}
	m.swWalker = cur
	return cur
}

// WarmFill installs vpn -> pbase into the per-core TLB without charging
// ports, starting walks, or touching statistics. The sampled simulator uses
// it to model the TLB residency a fast-forwarded window would have left
// behind (internal/gpu.RunSampled). The fill is attributed to no warp, so
// TCWS victim attribution ignores any eviction it causes. No-op when the
// MMU is disabled.
func (m *MMU) WarmFill(now engine.Cycle, vpn, pbase uint64) {
	if !m.cfg.Enabled {
		return
	}
	m.tlb.Fill(now, vpn, pbase, -1)
}

// Shootdown flushes the TLB (inter-processor-interrupt semantics). The
// paper notes shootdowns essentially never fire in these workloads; the
// mechanism exists for completeness and tests.
func (m *MMU) Shootdown() {
	if m.tlb != nil {
		m.tlb.Flush()
	}
	if m.shared != nil {
		m.shared.Flush()
	}
	if m.pwc != nil {
		m.pwc.Flush()
	}
}
