package core

import "testing"

// TestNewVTAClampsGeometry: entries below the associativity degrade to a
// single set of `entries` ways (the paper sweeps 2..16 entries against
// 8-way arrays), and non-power-of-two set counts round down.
func TestNewVTAClampsGeometry(t *testing.T) {
	v := NewVTA(2, 8) // 2 entries, nominal 8-way -> one set, 2 ways
	if len(v.sets) != 1 || len(v.sets[0]) != 2 {
		t.Fatalf("geometry = %d sets x %d ways, want 1x2", len(v.sets), len(v.sets[0]))
	}
	v = NewVTA(48, 8) // 6 sets rounds down to 4
	if len(v.sets) != 4 || len(v.sets[0]) != 8 {
		t.Fatalf("geometry = %d sets x %d ways, want 4x8", len(v.sets), len(v.sets[0]))
	}
}

func TestNewVTAPanicsOnBadAssoc(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewVTA(16, 0) did not panic")
		}
	}()
	NewVTA(16, 0)
}

// TestProbeRefreshesRecency: probing a tag must make it MRU, so the next
// insertion displaces the other way.
func TestProbeRefreshesRecency(t *testing.T) {
	v := NewVTA(2, 2) // one set, two ways
	v.Insert(10)
	v.Insert(20)
	if !v.Probe(10) { // 10 becomes MRU; 20 is now LRU
		t.Fatal("freshly inserted tag missing")
	}
	v.Insert(30) // displaces 20
	if !v.Probe(10) {
		t.Error("probed (MRU) tag displaced")
	}
	if v.Probe(20) {
		t.Error("LRU tag survived displacement")
	}
	if !v.Probe(30) {
		t.Error("new tag missing")
	}
}

// TestInsertDisplacesLRU: insertion order alone determines the victim when
// nothing is probed, and re-inserting an existing tag refreshes instead of
// duplicating.
func TestInsertDisplacesLRU(t *testing.T) {
	v := NewVTA(2, 2)
	v.Insert(1)
	v.Insert(2)
	v.Insert(1) // refresh, not duplicate: 2 is now LRU
	v.Insert(3) // displaces 2
	if !v.Probe(1) || v.Probe(2) || !v.Probe(3) {
		t.Fatalf("contents after displacement: 1=%t 2=%t 3=%t, want true/false/true",
			v.Probe(1), v.Probe(2), v.Probe(3))
	}
}

// TestVTASetSelection: tags landing in different sets must not displace
// each other.
func TestVTASetSelection(t *testing.T) {
	v := NewVTA(4, 2) // 2 sets x 2 ways, set = tag & 1
	v.Insert(0)       // set 0
	v.Insert(2)       // set 0
	v.Insert(1)       // set 1
	v.Insert(3)       // set 1
	v.Insert(4)       // set 0: displaces LRU of set 0 only
	if v.Probe(0) {
		t.Error("set-0 LRU tag survived")
	}
	if !v.Probe(1) || !v.Probe(3) {
		t.Error("set-1 tags disturbed by set-0 insertion")
	}
}

func TestVTAClear(t *testing.T) {
	v := NewVTA(16, 8)
	for tag := uint64(0); tag < 16; tag++ {
		v.Insert(tag)
	}
	v.Clear()
	for tag := uint64(0); tag < 16; tag++ {
		if v.Probe(tag) {
			t.Fatalf("tag %d survived Clear", tag)
		}
	}
}
