package core

import (
	"testing"

	"gpummu/internal/config"
	"gpummu/internal/engine"
	"gpummu/internal/mem"
	"gpummu/internal/stats"
	"gpummu/internal/vm"
)

// mmuHarness wires an MMU to a real page table with pages pages mapped.
type mmuHarness struct {
	mmu  *MMU
	st   *stats.Sim
	base uint64
	tr   *vm.Translator
}

func newHarness(t *testing.T, mcfg config.MMU, pages int) *mmuHarness {
	t.Helper()
	pm := vm.NewPhysMem()
	alloc := vm.NewFrameAllocator(1 << 20)
	as := vm.NewAddressSpace(pm, alloc, vm.PageShift4K)
	base := as.Malloc(uint64(pages) * vm.PageSize4K)
	st := &stats.Sim{}
	sys := mem.NewSystem(config.SmallTest(), st)
	tr := vm.NewTranslator(as.PT, vm.PageShift4K)
	return &mmuHarness{
		mmu:  NewMMU(mcfg, sys, tr, st, 2),
		st:   st,
		base: base,
		tr:   tr,
	}
}

func (h *mmuHarness) vpn(i int) uint64 { return (h.base >> vm.PageShift4K) + uint64(i) }

func req(vpns ...uint64) []PageReq {
	out := make([]PageReq, len(vpns))
	for i, v := range vpns {
		out[i] = PageReq{VPN: v, Warps: []int{0}}
	}
	return out
}

func TestMMUDisabledIsFree(t *testing.T) {
	h := newHarness(t, config.MMU{}, 4)
	res := h.mmu.Lookup(100, req(h.vpn(0), h.vpn(1)))
	for _, r := range res {
		if !r.Hit || r.ReadyAt != 100 {
			t.Fatalf("disabled MMU result %+v", r)
		}
		if want := h.tr.Translate(r.VPN << 12); r.PBase != want {
			t.Fatalf("wrong translation %#x, want %#x", r.PBase, want)
		}
	}
	if h.st.TLBAccesses != 0 {
		t.Fatal("disabled MMU counted TLB accesses")
	}
	if !h.mmu.CanAcceptMemOp(100) {
		t.Fatal("disabled MMU blocked a memory op")
	}
}

func TestMMUMissThenHit(t *testing.T) {
	h := newHarness(t, config.NaiveMMU(4), 4)
	res := h.mmu.Lookup(0, req(h.vpn(0)))
	if res[0].Hit {
		t.Fatal("cold lookup hit")
	}
	if res[0].ReadyAt == 0 {
		t.Fatal("walk completed instantly")
	}
	if h.st.Walks != 1 || h.st.WalkRefs != 4 {
		t.Fatalf("walk stats = %d walks, %d refs; want 1, 4", h.st.Walks, h.st.WalkRefs)
	}
	// After the walk completes the entry must hit.
	res2 := h.mmu.Lookup(res[0].ReadyAt, req(h.vpn(0)))
	if !res2[0].Hit {
		t.Fatal("post-walk lookup missed")
	}
	if res2[0].PBase != res[0].PBase {
		t.Fatal("hit returned different translation")
	}
}

func TestMMUBlockingGate(t *testing.T) {
	h := newHarness(t, config.NaiveMMU(4), 4)
	res := h.mmu.Lookup(0, req(h.vpn(0)))
	if h.mmu.CanAcceptMemOp(1) {
		t.Fatal("blocking TLB accepted a mem op with a walk outstanding")
	}
	if ev := h.mmu.NextEvent(1); ev != res[0].ReadyAt {
		t.Fatalf("NextEvent = %d, want %d", ev, res[0].ReadyAt)
	}
	if !h.mmu.CanAcceptMemOp(res[0].ReadyAt) {
		t.Fatal("gate still closed after walk completion")
	}
}

func TestMMUHitsUnderMiss(t *testing.T) {
	cfg := config.NaiveMMU(4)
	cfg.HitsUnderMiss = true
	h := newHarness(t, cfg, 4)
	// Warm vpn 1.
	r1 := h.mmu.Lookup(0, req(h.vpn(1)))
	warm := r1[0].ReadyAt
	// Start a miss on vpn 0, then a hit on vpn 1 while it is outstanding.
	h.mmu.Lookup(warm, req(h.vpn(0)))
	if !h.mmu.CanAcceptMemOp(warm + 1) {
		t.Fatal("non-blocking TLB closed the gate")
	}
	res := h.mmu.Lookup(warm+1, req(h.vpn(1)))
	if !res[0].Hit {
		t.Fatal("hit under miss missed")
	}
	if h.st.TLBHitUnder == 0 {
		t.Fatal("hit-under-miss not counted")
	}
}

func TestMMUMergedMiss(t *testing.T) {
	cfg := config.NaiveMMU(4)
	cfg.HitsUnderMiss = true
	h := newHarness(t, cfg, 4)
	a := h.mmu.Lookup(0, req(h.vpn(0)))
	b := h.mmu.Lookup(1, req(h.vpn(0)))
	if !b[0].Merged {
		t.Fatal("second miss on same VPN not merged")
	}
	if b[0].ReadyAt != a[0].ReadyAt {
		t.Fatalf("merged miss completes at %d, walk at %d", b[0].ReadyAt, a[0].ReadyAt)
	}
	if h.st.Walks != 1 {
		t.Fatalf("merged miss started a second walk (%d)", h.st.Walks)
	}
}

func TestMMUPTWSchedulingCoalesces(t *testing.T) {
	naive := newHarness(t, config.NaiveMMU(4), 8)
	vpnsN := req(naive.vpn(0), naive.vpn(1), naive.vpn(2), naive.vpn(3))
	naive.mmu.Lookup(0, vpnsN)

	cfg := config.AugmentedMMU()
	sched := newHarness(t, cfg, 8)
	vpnsS := req(sched.vpn(0), sched.vpn(1), sched.vpn(2), sched.vpn(3))
	sched.mmu.Lookup(0, vpnsS)

	if naive.st.WalkRefsCoalesced != 0 {
		t.Fatal("naive walker coalesced references")
	}
	if sched.st.WalkRefsCoalesced == 0 {
		t.Fatal("PTW scheduling coalesced nothing for adjacent pages")
	}
	// Adjacent pages share PML4/PDP/PD: 3 of 4 refs per extra walk vanish.
	if sched.st.WalkRefs >= naive.st.WalkRefs {
		t.Fatalf("scheduled refs %d not below naive %d", sched.st.WalkRefs, naive.st.WalkRefs)
	}
}

func TestMMUPTWSchedulingFasterOnBurst(t *testing.T) {
	// Warm the shared L2 with a first round of walks, flush the TLB, then
	// measure a 16-page burst: the coalescing scheduler must finish the
	// burst sooner in aggregate than serial walkers.
	mk := func(sched bool) (total engine.Cycle) {
		cfg := config.NaiveMMU(4)
		cfg.HitsUnderMiss = true
		cfg.PTWSched = sched
		h := newHarness(t, cfg, 16)
		var rs []uint64
		for i := 0; i < 16; i++ {
			rs = append(rs, h.vpn(i))
		}
		res := h.mmu.Lookup(0, req(rs...))
		var warm engine.Cycle
		for _, r := range res {
			if r.ReadyAt > warm {
				warm = r.ReadyAt
			}
		}
		h.mmu.Shootdown()
		res = h.mmu.Lookup(warm+1, req(rs...))
		for _, r := range res {
			total += r.ReadyAt - (warm + 1)
		}
		return total
	}
	serial, batched := mk(false), mk(true)
	if batched >= serial {
		t.Fatalf("PTW scheduling burst total %d not below serial %d", batched, serial)
	}
}

func TestMMUMultipleWalkersOverlap(t *testing.T) {
	// One walker pipelines WalkConcurrency walks; a burst wider than that
	// must finish sooner with more hardware walkers.
	mk := func(n int) engine.Cycle {
		cfg := config.NaiveMMU(4)
		cfg.HitsUnderMiss = true
		cfg.NumPTWs = n
		h := newHarness(t, cfg, 32)
		var vpns []uint64
		for i := 0; i < 24; i++ {
			vpns = append(vpns, h.vpn(i))
		}
		res := h.mmu.Lookup(0, req(vpns...))
		var worst engine.Cycle
		for _, r := range res {
			if r.ReadyAt > worst {
				worst = r.ReadyAt
			}
		}
		return worst
	}
	if one, four := mk(1), mk(4); four >= one {
		t.Fatalf("4 walkers (%d) not faster than 1 (%d)", four, one)
	}
}

func TestMMUWalkConcurrencyPipelines(t *testing.T) {
	// With concurrency 1 a second walk waits the full first walk; with 4
	// it overlaps.
	mk := func(wc int) engine.Cycle {
		cfg := config.NaiveMMU(4)
		cfg.HitsUnderMiss = true
		cfg.WalkConcurrency = wc
		h := newHarness(t, cfg, 8)
		res := h.mmu.Lookup(0, req(h.vpn(0), h.vpn(2), h.vpn(4), h.vpn(6)))
		var worst engine.Cycle
		for _, r := range res {
			if r.ReadyAt > worst {
				worst = r.ReadyAt
			}
		}
		return worst
	}
	if serial, piped := mk(1), mk(4); piped >= serial {
		t.Fatalf("pipelined walker (%d) not faster than serial (%d)", piped, serial)
	}
}

func TestMMUAccessPenaltyBySize(t *testing.T) {
	cases := []struct {
		entries int
		want    engine.Cycle
	}{{64, 0}, {128, 0}, {256, 4}, {512, 8}}
	for _, c := range cases {
		cfg := config.NaiveMMU(4)
		cfg.Entries = c.entries
		h := newHarness(t, cfg, 1)
		if got := h.mmu.AccessPenalty(); got != c.want {
			t.Fatalf("%d entries: penalty %d, want %d", c.entries, got, c.want)
		}
	}
	ideal := config.MMU{}.Ideal()
	h := newHarness(t, ideal, 1)
	if h.mmu.AccessPenalty() != 0 {
		t.Fatal("ideal TLB has a latency penalty")
	}
}

func TestMMUPortContention(t *testing.T) {
	mk := func(ports int) engine.Cycle {
		cfg := config.NaiveMMU(ports)
		h := newHarness(t, cfg, 32)
		// Warm all pages first.
		var rs []uint64
		for i := 0; i < 32; i++ {
			rs = append(rs, h.vpn(i))
		}
		res := h.mmu.Lookup(0, req(rs...))
		var warm engine.Cycle
		for _, r := range res {
			if r.ReadyAt > warm {
				warm = r.ReadyAt
			}
		}
		// Now measure a fully hitting 32-page lookup.
		res = h.mmu.Lookup(warm+1000, req(rs...))
		var worst engine.Cycle
		for _, r := range res {
			if !r.Hit {
				t.Fatal("warm page missed")
			}
			if r.ReadyAt > worst {
				worst = r.ReadyAt
			}
		}
		return worst - (warm + 1000)
	}
	few, many := mk(3), mk(32)
	if many >= few {
		t.Fatalf("32 ports (%d) not faster than 3 ports (%d)", many, few)
	}
}

func TestMMUShootdownFlushes(t *testing.T) {
	h := newHarness(t, config.NaiveMMU(4), 2)
	r := h.mmu.Lookup(0, req(h.vpn(0)))
	h.mmu.Shootdown()
	res := h.mmu.Lookup(r[0].ReadyAt+10, req(h.vpn(0)))
	if res[0].Hit {
		t.Fatal("entry survived shootdown")
	}
}

func TestMMUMSHRLimitDelaysWalks(t *testing.T) {
	worst := func(mshrs int) engine.Cycle { // returns summed ReadyAt
		cfg := config.NaiveMMU(4)
		cfg.HitsUnderMiss = true
		cfg.WalkConcurrency = 4
		cfg.MSHRs = mshrs
		h := newHarness(t, cfg, 8)
		res := h.mmu.Lookup(0, req(h.vpn(0), h.vpn(1), h.vpn(2), h.vpn(3)))
		var sum engine.Cycle
		for _, r := range res {
			sum += r.ReadyAt
		}
		return sum
	}
	// With 2 MSHRs the 3rd and 4th walks wait for earlier completions, so
	// the burst takes strictly longer in aggregate than with ample MSHRs.
	if ample, tight := worst(32), worst(2); tight <= ample {
		t.Fatalf("MSHR limit not enforced: tight %d vs ample %d", tight, ample)
	}
}
