package core

import (
	"testing"

	"gpummu/internal/config"
)

func TestPWCBasics(t *testing.T) {
	p := NewPWC(2)
	if p.Lookup(0x100) {
		t.Fatal("cold lookup hit")
	}
	p.Insert(0x100)
	p.Insert(0x200)
	if !p.Lookup(0x100) || !p.Lookup(0x200) {
		t.Fatal("resident entries missed")
	}
	// 0x100 is more recent now (looked up last? order: lookups refreshed
	// 0x100 then 0x200, so 0x100 is LRU).
	p.Insert(0x300)
	if p.Lookup(0x100) {
		t.Fatal("LRU entry survived")
	}
	if !p.Lookup(0x300) || !p.Lookup(0x200) {
		t.Fatal("wrong entry evicted")
	}
	p.Flush()
	if p.Len() != 0 {
		t.Fatal("flush left entries")
	}
}

func TestPWCSkipsUpperLevelRefs(t *testing.T) {
	plain := config.NaiveMMU(4)
	plain.HitsUnderMiss = true
	withPWC := plain
	withPWC.PWCEntries = 64

	a := newHarness(t, plain, 8)
	b := newHarness(t, withPWC, 8)

	// Two walks for adjacent pages: PML4/PDP/PD are shared.
	a.mmu.Lookup(0, req(a.vpn(0)))
	a.mmu.Lookup(5000, req(a.vpn(1)))
	b.mmu.Lookup(0, req(b.vpn(0)))
	b.mmu.Lookup(5000, req(b.vpn(1)))

	if a.st.WalkRefs != 8 {
		t.Fatalf("plain walker issued %d refs, want 8", a.st.WalkRefs)
	}
	// PWC: first walk 4 refs, second walk only the PT-level ref.
	if b.st.WalkRefs != 5 {
		t.Fatalf("PWC walker issued %d refs, want 5", b.st.WalkRefs)
	}
	if b.st.PWCHits != 3 {
		t.Fatalf("PWC hits = %d, want 3", b.st.PWCHits)
	}
}

func TestPWCNeverCachesLeafPTE(t *testing.T) {
	cfg := config.NaiveMMU(4)
	cfg.PWCEntries = 64
	h := newHarness(t, cfg, 4)
	// Walk the same page twice (flush TLB in between): the leaf PT entry
	// must be re-read both times; only 3 upper levels are cached.
	r := h.mmu.Lookup(0, req(h.vpn(0)))
	h.mmu.TLB().Flush()
	h.mmu.Lookup(r[0].ReadyAt+10, req(h.vpn(0)))
	if h.st.WalkRefs != 5 { // 4 + 1 (leaf only)
		t.Fatalf("refs = %d, want 5", h.st.WalkRefs)
	}
}

func TestPWCFlushedOnShootdown(t *testing.T) {
	cfg := config.NaiveMMU(4)
	cfg.PWCEntries = 64
	h := newHarness(t, cfg, 4)
	h.mmu.Lookup(0, req(h.vpn(0)))
	h.mmu.Shootdown()
	h.mmu.Lookup(100000, req(h.vpn(0)))
	if h.st.WalkRefs != 8 {
		t.Fatalf("refs after shootdown = %d, want 8 (no PWC reuse)", h.st.WalkRefs)
	}
}
