// Package difftest is the differential fuzzing harness (DESIGN.md §12): a
// seeded generator of well-formed random kernels and hardware
// configurations, an oracle that runs each sample through both the timing
// simulator and the order-independent reference interpreter (internal/ref)
// and diffs the outcomes, and a greedy minimiser that shrinks failures to a
// replayable test snippet.
//
// Generated programs are race-free by construction so the reference model's
// sequential thread order is a valid execution: loads read only the
// read-only data region, and every store lands in the storing thread's
// private 64-byte output record. Addresses are masked before scaling, so
// accesses are always in bounds and naturally aligned.
package difftest

import (
	"fmt"
	"sort"
	"strings"

	"gpummu/internal/config"
	"gpummu/internal/kernels"
)

// Register plan shared by every generated kernel. Random dataflow is
// confined to the value pool; everything else is structural scratch the
// generator owns.
const (
	rTid   = kernels.Reg(0)  // global thread id
	rN     = kernels.Reg(1)  // guard bound (Param2 = total threads)
	rCond  = kernels.Reg(2)  // branch condition scratch
	rAddr  = kernels.Reg(3)  // address scratch
	rVal0  = kernels.Reg(4)  // value pool r4..r11
	rLoop0 = kernels.Reg(12) // loop counters r12, r13 (one per nesting level)
	rData  = kernels.Reg(14) // read-only data region base (Param0)
	rOut   = kernels.Reg(15) // this thread's output record (Param1 + tid*64)
)

// valPool is the number of value-pool registers random ops read and write.
const valPool = 8

// outBytesPerThread is the size of each thread's private output record:
// four 8-byte store slots plus the epilogue's register fold at offset 32.
const outBytesPerThread = 64

type opKind uint8

const (
	opALU opKind = iota
	opLoad
	opStore
	opIf
	opLoop
	opBarrier
)

type aluOp uint8

const (
	aluAdd aluOp = iota
	aluSub
	aluMul
	aluAnd
	aluOr
	aluXor
	aluMin
	aluSltu
	aluSeq
	aluDiv
	aluRem
	aluAddImm
	aluMulImm
	aluAndImm
	aluShlImm
	aluShrImm
	aluSltuImm
	aluSeqImm
	numALUOps
)

type condKind uint8

const (
	condParity condKind = iota // rCond = v[a] & 1
	condBelow                  // rCond = v[a] < imm
	condEqual                  // rCond = v[a] == imm
	numCondKinds
)

// op is one node of the generated program tree. The tree is immutable after
// generation; Drop marks nodes excluded from emission, which is how the
// minimiser shrinks a sample without invalidating op ids.
type op struct {
	id        int
	kind      opKind
	alu       aluOp
	dst, a, b int // value-pool indices
	imm       int64
	size      uint8 // load/store access size (1, 4, or 8)
	slot      int   // store slot within the thread's output record (0..3)
	cond      condKind
	uniform   bool  // loop trip count independent of tid
	trips     int64 // uniform trip count (1..4)
	loopDepth int   // which loop counter register this loop owns
	body, els []*op
}

// valInit describes how one value-pool register is seeded in the prologue.
type valInit struct {
	kind int // 0 imm, 1 tid, 2 lane, 3 warp, 4 blockID, 5 blockDim, 6 tid*odd
	imm  int64
}

// Sample is one differential test case: a random program plus the machine
// configuration and launch geometry to run it under. Generate builds one
// deterministically from a seed; Diff is the oracle. The exported fields
// may be overridden before Diff (the minimiser shrinks them).
type Sample struct {
	Seed      uint64
	HW        config.Hardware
	Workers   int
	Grid      int
	BlockDim  int
	DataWords int // power of two: elements in the read-only data region

	init    [valPool]valInit
	ops     []*op
	nextID  int
	dropped map[int]bool
}

func valReg(i int) kernels.Reg { return rVal0 + kernels.Reg(i) }

// Drop excludes the ops with the given ids (and, for control ops, their
// whole subtrees) from emission.
func (s *Sample) Drop(ids ...int) {
	if s.dropped == nil {
		s.dropped = make(map[int]bool)
	}
	for _, id := range ids {
		s.dropped[id] = true
	}
}

// AllOpIDs returns every op id in the program tree, dropped or not, in
// emission order.
func (s *Sample) AllOpIDs() []int {
	var ids []int
	var walk func(seq []*op)
	walk = func(seq []*op) {
		for _, o := range seq {
			ids = append(ids, o.id)
			walk(o.body)
			walk(o.els)
		}
	}
	walk(s.ops)
	return ids
}

// AliveOpIDs returns the ids of ops that would actually be emitted: not
// dropped themselves and under no dropped ancestor.
func (s *Sample) AliveOpIDs() []int {
	var ids []int
	var walk func(seq []*op)
	walk = func(seq []*op) {
		for _, o := range seq {
			if s.dropped[o.id] {
				continue
			}
			ids = append(ids, o.id)
			walk(o.body)
			walk(o.els)
		}
	}
	walk(s.ops)
	return ids
}

// Alive reports whether the op with the given id would be emitted.
func (s *Sample) Alive(id int) bool {
	for _, a := range s.AliveOpIDs() {
		if a == id {
			return true
		}
	}
	return false
}

// Clone returns a sample sharing the immutable program tree but with its
// own drop set and geometry, so minimisation trials don't disturb the
// original.
func (s *Sample) Clone() *Sample {
	c := *s
	c.dropped = make(map[int]bool, len(s.dropped))
	for id := range s.dropped {
		c.dropped[id] = true
	}
	return &c
}

// Program assembles the sample's kernel, honouring drops. The emitted
// program is a pure function of the tree and the drop set, so a repro
// snippet replays exactly.
func (s *Sample) Program() (*kernels.Program, error) {
	b := kernels.NewBuilder(fmt.Sprintf("difftest-%d", s.Seed))

	// Prologue: guard (uniform — Param2 equals the launch's thread count,
	// so it exercises a uniform branch without ever firing), base pointers,
	// per-thread output record, value-pool seeding.
	b.Special(rTid, kernels.SpecGlobalTID)
	b.Special(rN, kernels.SpecParam2)
	b.Sltu(rCond, rTid, rN)
	b.Bz(rCond, "exit", "exit")
	b.Special(rData, kernels.SpecParam0)
	b.Special(rOut, kernels.SpecParam1)
	b.ShlImm(rAddr, rTid, 6)
	b.Add(rOut, rOut, rAddr)
	for i, vi := range s.init {
		v := valReg(i)
		switch vi.kind {
		case 0:
			b.MovImm(v, vi.imm)
		case 1:
			b.Mov(v, rTid)
		case 2:
			b.Special(v, kernels.SpecLane)
		case 3:
			b.Special(v, kernels.SpecWarp)
		case 4:
			b.Special(v, kernels.SpecBlockID)
		case 5:
			b.Special(v, kernels.SpecBlockDim)
		default:
			b.MulImm(v, rTid, vi.imm)
		}
	}

	for _, o := range s.ops {
		s.emitOp(b, o)
	}

	// Epilogue: fold the whole value pool into one word and store it in
	// slot 4, so the memory diff also covers final register state.
	b.Mov(rAddr, valReg(0))
	for i := 1; i < valPool; i++ {
		b.Xor(rAddr, rAddr, valReg(i))
	}
	b.St(rOut, 32, rAddr, 8)
	b.Label("exit")
	b.Exit()
	return b.Build()
}

func (s *Sample) emitOp(b *kernels.Builder, o *op) {
	if s.dropped[o.id] {
		return
	}
	switch o.kind {
	case opALU:
		s.emitALU(b, o)
	case opLoad:
		// Mask-then-scale keeps every load in bounds and 8-aligned, so any
		// access size is naturally aligned.
		b.AndImm(rAddr, valReg(o.a), int64(s.DataWords-1))
		b.ShlImm(rAddr, rAddr, 3)
		b.Add(rAddr, rData, rAddr)
		b.Ld(valReg(o.dst), rAddr, 0, o.size)
	case opStore:
		b.St(rOut, int64(o.slot*8), valReg(o.a), o.size)
	case opBarrier:
		b.Bar()
	case opIf:
		s.emitCond(b, o)
		join := fmt.Sprintf("j%d", o.id)
		if len(o.els) > 0 {
			els := fmt.Sprintf("e%d", o.id)
			b.Bz(rCond, els, join)
			for _, c := range o.body {
				s.emitOp(b, c)
			}
			b.Jmp(join)
			b.Label(els)
			for _, c := range o.els {
				s.emitOp(b, c)
			}
		} else {
			b.Bz(rCond, join, join)
			for _, c := range o.body {
				s.emitOp(b, c)
			}
		}
		b.Label(join)
	case opLoop:
		rc := rLoop0 + kernels.Reg(o.loopDepth)
		if o.uniform {
			b.MovImm(rc, o.trips)
		} else {
			b.AndImm(rc, rTid, 3)
			b.AddImm(rc, rc, 1)
		}
		head := fmt.Sprintf("l%d", o.id)
		end := fmt.Sprintf("d%d", o.id)
		b.Label(head)
		for _, c := range o.body {
			s.emitOp(b, c)
		}
		b.AddImm(rc, rc, -1)
		b.Bnz(rc, head, end)
		b.Label(end)
	}
}

func (s *Sample) emitCond(b *kernels.Builder, o *op) {
	switch o.cond {
	case condParity:
		b.AndImm(rCond, valReg(o.a), 1)
	case condBelow:
		b.SltuImm(rCond, valReg(o.a), o.imm)
	default:
		b.SeqImm(rCond, valReg(o.a), o.imm)
	}
}

func (s *Sample) emitALU(b *kernels.Builder, o *op) {
	d, a, r := valReg(o.dst), valReg(o.a), valReg(o.b)
	switch o.alu {
	case aluAdd:
		b.Add(d, a, r)
	case aluSub:
		b.Sub(d, a, r)
	case aluMul:
		b.Mul(d, a, r)
	case aluAnd:
		b.And(d, a, r)
	case aluOr:
		b.Or(d, a, r)
	case aluXor:
		b.Xor(d, a, r)
	case aluMin:
		b.Min(d, a, r)
	case aluSltu:
		b.Sltu(d, a, r)
	case aluSeq:
		b.Seq(d, a, r)
	case aluDiv:
		b.Div(d, a, r)
	case aluRem:
		b.Rem(d, a, r)
	case aluAddImm:
		b.AddImm(d, a, o.imm)
	case aluMulImm:
		b.MulImm(d, a, o.imm)
	case aluAndImm:
		b.AndImm(d, a, o.imm)
	case aluShlImm:
		b.ShlImm(d, a, o.imm)
	case aluShrImm:
		b.ShrImm(d, a, o.imm)
	case aluSltuImm:
		b.SltuImm(d, a, o.imm)
	default:
		b.SeqImm(d, a, o.imm)
	}
}

// Describe returns a one-line summary of the sample's configuration for
// soak-run progress output and failure reports.
func (s *Sample) Describe() string {
	return fmt.Sprintf("seed=%d sched=%s tbc=%s pshift=%d mmu=%s workers=%d launch=%dx%d data=%d ops=%d",
		s.Seed, s.HW.Sched.Policy, s.HW.TBC.Mode, s.HW.PageShift,
		mmuBrief(s.HW.MMU), s.Workers, s.Grid, s.BlockDim, s.DataWords,
		len(s.AliveOpIDs()))
}

func mmuBrief(m config.MMU) string {
	switch {
	case !m.Enabled:
		return "off"
	case m.IdealLatency:
		return "ideal"
	case m.SoftwareWalks:
		return fmt.Sprintf("sw/%de", m.Entries)
	case m.SharedTLBEntries > 0:
		return fmt.Sprintf("aug+stlb/%de", m.Entries)
	case m.PWCEntries > 0:
		return fmt.Sprintf("aug+pwc/%de", m.Entries)
	case m.HitsUnderMiss:
		return fmt.Sprintf("aug/%de", m.Entries)
	default:
		return fmt.Sprintf("naive/%de", m.Entries)
	}
}

// ReproSnippet returns a self-contained Go test replaying this sample,
// including any geometry overrides and dropped ops — what the minimiser
// and the soak CLI print on failure.
func (s *Sample) ReproSnippet() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func TestRepro%d(t *testing.T) {\n", s.Seed)
	fmt.Fprintf(&b, "\ts := difftest.Generate(%d)\n", s.Seed)
	fmt.Fprintf(&b, "\ts.Workers, s.Grid, s.BlockDim = %d, %d, %d\n", s.Workers, s.Grid, s.BlockDim)
	if len(s.dropped) > 0 {
		ids := make([]int, 0, len(s.dropped))
		for id := range s.dropped {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		parts := make([]string, len(ids))
		for i, id := range ids {
			parts[i] = fmt.Sprint(id)
		}
		fmt.Fprintf(&b, "\ts.Drop(%s)\n", strings.Join(parts, ", "))
	}
	b.WriteString("\tif err := s.Diff(context.Background()); err != nil {\n")
	b.WriteString("\t\tt.Fatal(err)\n\t}\n}\n")
	return b.String()
}
