package difftest_test

import (
	"context"
	"fmt"
	"testing"

	"gpummu/internal/config"
	"gpummu/internal/difftest"
	"gpummu/internal/engine"
)

// matrixSeedBase..matrixSeedBase+matrixSamples-1 are the seeds the
// differential matrix runs; TestGeneratorCoversMatrix asserts this same
// range spans every scheduler family, divergence mode, page size, worker
// count, and MMU class, so "the matrix passed" means "the design space was
// exercised".
const (
	matrixSeedBase = 1000
	matrixSamples  = 240
	matrixChunks   = 8
)

// TestDifferentialMatrix runs 240 seeded random samples through both the
// timing simulator and the reference model (ISSUE 5 acceptance: 200+
// samples across the scheduler/TLB/-par matrix). Chunked subtests run in
// parallel to keep wall-clock down.
func TestDifferentialMatrix(t *testing.T) {
	perChunk := matrixSamples / matrixChunks
	for chunk := 0; chunk < matrixChunks; chunk++ {
		t.Run(fmt.Sprintf("chunk%02d", chunk), func(t *testing.T) {
			t.Parallel()
			base := uint64(matrixSeedBase + chunk*perChunk)
			for i := 0; i < perChunk; i++ {
				seed := base + uint64(i)
				s := difftest.Generate(seed)
				if err := s.Diff(context.Background()); err != nil {
					t.Errorf("%s: %v\nrepro:\n%s", s.Describe(), err, s.ReproSnippet())
				}
			}
		})
	}
}

// TestGeneratorCoversMatrix asserts the matrix seed range actually spans
// the design space the acceptance criterion names: every scheduler family,
// every divergence mode, both page sizes, serial and parallel ticking, and
// every MMU class (disabled, blocking, non-blocking, shared-TLB, PWC,
// ideal, software walks).
func TestGeneratorCoversMatrix(t *testing.T) {
	scheds := map[config.SchedulerPolicy]int{}
	tbcs := map[config.DivergenceMode]int{}
	workers := map[int]int{}
	shifts := map[uint]int{}
	mmus := map[string]int{}
	for seed := uint64(matrixSeedBase); seed < matrixSeedBase+matrixSamples; seed++ {
		s := difftest.Generate(seed)
		scheds[s.HW.Sched.Policy]++
		tbcs[s.HW.TBC.Mode]++
		workers[s.Workers]++
		shifts[s.HW.PageShift]++
		m := s.HW.MMU
		switch {
		case !m.Enabled:
			mmus["off"]++
		case m.IdealLatency:
			mmus["ideal"]++
		case m.SoftwareWalks:
			mmus["software"]++
		case m.SharedTLBEntries > 0:
			mmus["shared-tlb"]++
		case m.PWCEntries > 0:
			mmus["pwc"]++
		case m.HitsUnderMiss:
			mmus["augmented"]++
		default:
			mmus["naive"]++
		}
	}
	for _, p := range []config.SchedulerPolicy{config.SchedLRR, config.SchedGTO,
		config.SchedCCWS, config.SchedTACCWS, config.SchedTCWS} {
		if scheds[p] == 0 {
			t.Errorf("scheduler %s never generated in the matrix range", p)
		}
	}
	for _, m := range []config.DivergenceMode{config.DivStack, config.DivTBC, config.DivTLBTBC} {
		if tbcs[m] == 0 {
			t.Errorf("divergence mode %s never generated", m)
		}
	}
	for _, w := range []int{1, 8} {
		if workers[w] == 0 {
			t.Errorf("workers=%d never generated", w)
		}
	}
	for _, sh := range []uint{12, 21} {
		if shifts[sh] == 0 {
			t.Errorf("page shift %d never generated", sh)
		}
	}
	for _, class := range []string{"off", "ideal", "software", "shared-tlb", "pwc", "augmented", "naive"} {
		if mmus[class] == 0 {
			t.Errorf("MMU class %q never generated", class)
		}
	}
}

// TestGenerateDeterministic: the same seed must yield byte-identical
// programs and configs — the property every repro snippet relies on.
func TestGenerateDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 16; seed++ {
		a, b := difftest.Generate(seed), difftest.Generate(seed)
		if a.HW.Key() != b.HW.Key() {
			t.Fatalf("seed %d: configs differ:\n%s\n%s", seed, a.HW.Key(), b.HW.Key())
		}
		pa, err := a.Program()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		pb, err := b.Program()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(pa.Code) != len(pb.Code) {
			t.Fatalf("seed %d: program lengths differ: %d vs %d", seed, len(pa.Code), len(pb.Code))
		}
		for i := range pa.Code {
			if pa.Code[i] != pb.Code[i] {
				t.Fatalf("seed %d: instr %d differs: %+v vs %+v", seed, i, pa.Code[i], pb.Code[i])
			}
		}
	}
}

// TestDropPreservesValidity: any random subset of dropped ops must still
// emit a well-formed program — the structural guarantee the minimiser
// leans on.
func TestDropPreservesValidity(t *testing.T) {
	for seed := uint64(1); seed <= 24; seed++ {
		s := difftest.Generate(seed)
		rng := engine.NewRNG(seed * 31)
		ids := s.AllOpIDs()
		for _, id := range ids {
			if rng.Intn(2) == 1 {
				s.Drop(id)
			}
		}
		if _, err := s.Program(); err != nil {
			t.Fatalf("seed %d with %d/%d ops dropped: %v", seed, len(ids)-len(s.AliveOpIDs()), len(ids), err)
		}
	}
}

// TestMinimiseGreedy drives the minimiser with a synthetic oracle that
// fails whenever one specific top-level op survives: the result must keep
// exactly that op, shrink the launch to a single tiny block, and drop host
// parallelism.
func TestMinimiseGreedy(t *testing.T) {
	s := difftest.Generate(42)
	s.Workers, s.Grid, s.BlockDim = 8, 4, 128
	ids := s.AllOpIDs()
	target := ids[0]
	fails := func(c *difftest.Sample) bool { return c.Alive(target) }

	min := difftest.Minimise(s, fails)
	if !fails(min) {
		t.Fatal("minimised sample no longer fails the oracle")
	}
	if min.Workers != 1 {
		t.Errorf("Workers = %d, want 1", min.Workers)
	}
	if min.Grid != 1 {
		t.Errorf("Grid = %d, want 1", min.Grid)
	}
	if min.BlockDim != 1 {
		t.Errorf("BlockDim = %d, want 1", min.BlockDim)
	}
	if alive := min.AliveOpIDs(); len(alive) != 1 || alive[0] != target {
		t.Errorf("alive ops = %v, want just [%d]", alive, target)
	}
	// The original sample must be untouched.
	if len(s.AliveOpIDs()) != len(ids) || s.Workers != 8 {
		t.Error("Minimise mutated its input sample")
	}
	// The minimised sample must still emit and replay.
	if _, err := min.Program(); err != nil {
		t.Fatalf("minimised sample does not emit: %v", err)
	}
	if err := min.Diff(context.Background()); err != nil {
		t.Fatalf("minimised sample fails the real oracle: %v", err)
	}
}
