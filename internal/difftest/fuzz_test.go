package difftest_test

import (
	"context"
	"testing"

	"gpummu/internal/config"
	"gpummu/internal/core"
	"gpummu/internal/difftest"
	"gpummu/internal/engine"
	"gpummu/internal/mem"
	"gpummu/internal/ref"
	"gpummu/internal/stats"
	"gpummu/internal/vm"
)

// FuzzDiffKernel is the end-to-end differential target: every input seed
// becomes a random kernel + config pair run through both the timing
// simulator and the reference model. The seed corpus under testdata/fuzz
// pins a spread of configurations; `go test -fuzz=FuzzDiffKernel` explores
// beyond it.
func FuzzDiffKernel(f *testing.F) {
	for _, seed := range []uint64{1, 7, 42, 1337, 90210, 123456789, 0xDEADBEEF, 0xFEEDFACE} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		s := difftest.Generate(seed)
		if err := s.Diff(context.Background()); err != nil {
			t.Fatalf("%s: %v\nrepro:\n%s", s.Describe(), err, s.ReproSnippet())
		}
	})
}

// Disjoint VA ranges for the page-table fuzzer: 4 KB mappings and 2 MB
// mappings must not collide, because remapping a 2 MB leaf as an interior
// table is a caller error the page table rejects by panicking.
const (
	fuzz4KBase = uint64(0x0000_5C00_0000_0000)
	fuzz2MBase = uint64(0x0000_6000_0000_0000)
)

// FuzzPageTable drives random Map4K/Map2M sequences into the hardware page
// table and checks the independent reference walker agrees with pt.Walk on
// every mapped page, every walk level, and every fault.
func FuzzPageTable(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x00})
	f.Add([]byte{0x01, 0x02, 0x00, 0x00, 0x03, 0x00})
	f.Add([]byte{0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x10, 0x00, 0x01, 0x20, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		pm := vm.NewPhysMem()
		alloc := vm.NewFrameAllocator(1 << 20)
		pt := vm.NewPageTable(pm, alloc)
		var mapped []uint64

		n := len(data) / 3
		if n > 256 {
			n = 256
		}
		for i := 0; i < n; i++ {
			opb := data[i*3]
			idx := uint64(data[i*3+1]) | uint64(data[i*3+2])<<8
			if opb&1 == 0 {
				va := fuzz4KBase + (idx%2048)*vm.PageSize4K
				if err := pt.Map4K(va, alloc.Alloc4K()); err == nil {
					mapped = append(mapped, va)
				}
			} else {
				va := fuzz2MBase + (idx%256)*vm.PageSize2M
				if err := pt.Map2M(va, alloc.Alloc2M()); err == nil {
					mapped = append(mapped, va)
				}
			}
		}

		cr3 := pt.CR3()
		check := func(va uint64) {
			tr, werr := pt.Walk(va)
			rw := ref.WalkPage(pm, cr3, va)
			if (werr != nil) != rw.Fault {
				t.Fatalf("va %#x: page table err=%v, reference fault=%t", va, werr, rw.Fault)
			}
			if werr != nil {
				if rw.FaultLevel != tr.Levels-1 {
					t.Fatalf("va %#x: fault level %d vs reference %d", va, tr.Levels-1, rw.FaultLevel)
				}
				return
			}
			if tr.PA != rw.PA || tr.PageShift != rw.PageShift || tr.Levels != rw.Levels {
				t.Fatalf("va %#x: walk (pa=%#x shift=%d levels=%d) vs reference (pa=%#x shift=%d levels=%d)",
					va, tr.PA, tr.PageShift, tr.Levels, rw.PA, rw.PageShift, rw.Levels)
			}
			for l := 0; l < tr.Levels; l++ {
				if tr.LevelPAs[l] != rw.LevelPAs[l] {
					t.Fatalf("va %#x level %d: PTE pa %#x vs reference %#x", va, l, tr.LevelPAs[l], rw.LevelPAs[l])
				}
			}
		}

		for _, va := range mapped {
			check(va)
			check(va + 0x777)         // interior offset
			check(va ^ (1 << 30))     // different PD subtree, usually unmapped
			check(va + vm.PageSize2M) // next 2M region
			check(va - vm.PageSize4K) // preceding page
		}
		check(fuzz4KBase)
		check(fuzz2MBase)
		check(0)
	})
}

// FuzzTLBVsWalk hammers one core MMU with random translation request
// streams and checks every result against the functional translator, plus
// the MMU's own structural invariants after each batch: the TLB may change
// *when* a translation is ready, never *what* it translates to.
func FuzzTLBVsWalk(f *testing.F) {
	f.Add(uint64(1), uint16(64))
	f.Add(uint64(99), uint16(300))
	f.Add(uint64(0xABCD), uint16(17))
	f.Fuzz(func(t *testing.T, seed uint64, n uint16) {
		cfg := config.SmallTest()
		cfg.MMU = config.AugmentedMMU()
		if seed&1 == 1 {
			cfg.MMU = config.NaiveMMU(4) // blocking variant half the time
		}
		st := &stats.Sim{}
		sys := mem.NewSystem(cfg, st)
		as := vm.NewAddressSpace(vm.NewPhysMem(), vm.NewFrameAllocator(1<<20), vm.PageShift4K)
		const pages = 16
		base := as.Malloc(pages * vm.PageSize4K)
		tr := vm.NewTranslator(as.PT, vm.PageShift4K)
		m := core.NewMMU(cfg.MMU, sys, tr, st, 2)
		slack := cfg.WarpsPerCore * cfg.WarpWidth

		rng := engine.NewRNG(seed)
		now := engine.Cycle(1)
		iters := int(n%512) + 16
		for i := 0; i < iters; i++ {
			now += engine.Cycle(rng.Uint64n(64))
			va := base + rng.Uint64n(pages)*vm.PageSize4K + (rng.Uint64n(vm.PageSize4K) &^ 7)
			vpn := tr.VPN(va)
			res := m.Lookup(now, []core.PageReq{{VPN: vpn, Warps: []int{rng.Intn(8)}}})
			want := tr.Lookup(va).PageBase()
			if res[0].VPN != vpn {
				t.Fatalf("iter %d: result VPN %#x for request %#x", i, res[0].VPN, vpn)
			}
			if res[0].PBase != want {
				t.Fatalf("iter %d: va %#x translated to pbase %#x, page table says %#x (hit=%t merged=%t)",
					i, va, res[0].PBase, want, res[0].Hit, res[0].Merged)
			}
			if res[0].ReadyAt < now {
				t.Fatalf("iter %d: translation ready at %d before request cycle %d", i, res[0].ReadyAt, now)
			}
			if err := m.CheckInvariants(now, slack); err != nil {
				t.Fatalf("iter %d: %v", i, err)
			}
		}
	})
}
