package difftest

import (
	"gpummu/internal/config"
	"gpummu/internal/engine"
)

// Generate builds the sample for a seed: hardware configuration, launch
// geometry, and program tree are all deterministic functions of the seed,
// so a failing seed replays exactly anywhere.
func Generate(seed uint64) *Sample {
	rng := engine.NewRNG(seed)
	s := &Sample{Seed: seed}

	hw := config.SmallTest()
	hw.NumCores = []int{1, 2, 4}[rng.Intn(3)]
	hw.WarpsPerCore = []int{4, 8}[rng.Intn(2)]
	if rng.Intn(2) == 1 {
		hw.PageShift = 21
	}
	hw.MMU = genMMU(rng)
	switch rng.Intn(5) {
	case 0:
		hw.Sched.Policy = config.SchedLRR
	case 1:
		hw.Sched.Policy = config.SchedGTO
	case 2:
		hw.Sched.Policy = config.SchedCCWS
	case 3:
		hw.Sched.Policy = config.SchedTACCWS
		hw.Sched.TLBMissWeight = 8
	default:
		hw.Sched.Policy = config.SchedTCWS
		hw.Sched.LRUDepthWeights = []int{1, 2, 4, 8}
	}
	hw.TBC.Mode = []config.DivergenceMode{
		config.DivStack, config.DivTBC, config.DivTLBTBC,
	}[rng.Intn(3)]
	s.HW = hw

	s.Workers = []int{1, 8}[rng.Intn(2)]
	s.Grid = 1 + rng.Intn(4)
	s.BlockDim = []int{8, 16, 32, 64, 128}[rng.Intn(5)]
	s.DataWords = []int{256, 1024, 4096}[rng.Intn(3)]

	for i := range s.init {
		vi := valInit{kind: rng.Intn(7)}
		switch vi.kind {
		case 0:
			vi.imm = int64(rng.Uint64n(1 << 32))
		case 6:
			vi.imm = int64(rng.Uint64n(1<<16))*2 + 1 // odd multiplier
		}
		s.init[i] = vi
	}

	budget := 12 + rng.Intn(28)
	s.ops = s.genSeq(rng, &budget, 0, 0)
	return s
}

// genMMU rolls one point in the paper's MMU design space, spanning the
// no-TLB baseline, the naive and augmented per-core designs, the shared-TLB
// and page-walk-cache extensions, the impractical ideal, and software walks.
func genMMU(rng *engine.RNG) config.MMU {
	var m config.MMU
	switch rng.Intn(8) {
	case 0:
		return config.MMU{} // disabled: zero-cost translation baseline
	case 1:
		m = config.NaiveMMU(3)
	case 2:
		m = config.NaiveMMU(4)
		m.NumPTWs = 2
	case 3:
		m = config.AugmentedMMU()
	case 4:
		m = config.AugmentedMMU()
		m.SharedTLBEntries = 256
		m.SharedTLBLatency = 8
	case 5:
		m = config.AugmentedMMU()
		m.PWCEntries = 16
	case 6:
		return config.MMU{}.Ideal()
	default:
		m = config.NaiveMMU(4)
		m.SoftwareWalks = true
		m.SoftwareWalkOverhead = 100
	}
	m.Entries = []int{16, 64, 128}[rng.Intn(3)]
	m.MSHRs = []int{2, 8, 32}[rng.Intn(3)]
	m.WalkConcurrency = []int{1, 4}[rng.Intn(2)]
	return m
}

// genSeq emits a short straight-line sequence of ops at one nesting level.
func (s *Sample) genSeq(rng *engine.RNG, budget *int, depth, loopDepth int) []*op {
	var seq []*op
	n := 1 + rng.Intn(6)
	for i := 0; i < n && *budget > 0; i++ {
		seq = append(seq, s.genOp(rng, budget, depth, loopDepth))
	}
	return seq
}

var accessSizes = [...]uint8{1, 4, 8}

func (s *Sample) genOp(rng *engine.RNG, budget *int, depth, loopDepth int) *op {
	*budget--
	o := &op{id: s.nextID}
	s.nextID++
	roll := rng.Intn(100)
	switch {
	case roll < 40:
		s.fillALU(rng, o)
	case roll < 60:
		o.kind = opLoad
		o.dst = rng.Intn(valPool)
		o.a = rng.Intn(valPool)
		o.size = accessSizes[rng.Intn(3)]
	case roll < 72:
		o.kind = opStore
		o.a = rng.Intn(valPool)
		o.size = accessSizes[rng.Intn(3)]
		o.slot = rng.Intn(4)
	case roll < 87 && depth < 2:
		o.kind = opIf
		o.cond = condKind(rng.Intn(int(numCondKinds)))
		o.a = rng.Intn(valPool)
		o.imm = int64(rng.Uint64n(64))
		o.body = s.genSeq(rng, budget, depth+1, loopDepth)
		if rng.Intn(2) == 1 {
			o.els = s.genSeq(rng, budget, depth+1, loopDepth)
		}
	case roll < 97 && depth < 2 && loopDepth < 2:
		o.kind = opLoop
		o.loopDepth = loopDepth
		o.uniform = rng.Intn(2) == 1
		o.trips = 1 + int64(rng.Intn(4))
		o.body = s.genSeq(rng, budget, depth+1, loopDepth+1)
	default:
		if depth == 0 && roll >= 87 {
			// Barriers only at top level, outside divergent control flow;
			// the reference model's no-op barrier is valid because generated
			// kernels never communicate through memory.
			o.kind = opBarrier
		} else {
			s.fillALU(rng, o)
		}
	}
	return o
}

func (s *Sample) fillALU(rng *engine.RNG, o *op) {
	o.kind = opALU
	o.alu = aluOp(rng.Intn(int(numALUOps)))
	o.dst = rng.Intn(valPool)
	o.a = rng.Intn(valPool)
	o.b = rng.Intn(valPool)
	switch o.alu {
	case aluShlImm, aluShrImm:
		o.imm = int64(rng.Intn(64))
	default:
		o.imm = int64(rng.Uint64n(1 << 20))
	}
}
