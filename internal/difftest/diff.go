package difftest

import (
	"context"
	"fmt"

	"gpummu"
	"gpummu/internal/engine"
	"gpummu/internal/kernels"
	"gpummu/internal/ref"
	"gpummu/internal/vm"
)

const (
	// maxRefSteps bounds one thread in the reference interpreter. Generated
	// programs run a few hundred dynamic instructions at most; hitting this
	// means the generator produced a runaway loop, which is itself a bug.
	maxRefSteps = 1 << 16
	// diffMaxCycles / diffWatchdog bound the timing run so a hung sample
	// surfaces as a typed abort instead of wedging the fuzzer.
	diffMaxCycles = 200_000_000
	diffWatchdog  = 10_000_000
)

// build constructs a fresh address space and launch for the sample. It is
// deterministic: two calls produce byte-identical initial memory images
// (Diff asserts this), which is what makes the reference and timing runs
// comparable.
func (s *Sample) build() (*vm.AddressSpace, *kernels.Launch, error) {
	prog, err := s.Program()
	if err != nil {
		return nil, nil, fmt.Errorf("emitting program: %w", err)
	}
	as := vm.NewAddressSpace(vm.NewPhysMem(), vm.NewFrameAllocator(1<<23), s.HW.PageShift)
	rng := engine.NewRNG(s.Seed ^ 0xD1F7_DA7A)
	data := as.Malloc(uint64(s.DataWords) * 8)
	for i := 0; i < s.DataWords; i++ {
		as.Write64(data+uint64(i)*8, rng.Uint64())
	}
	threads := s.Grid * s.BlockDim
	out := as.Malloc(uint64(threads) * outBytesPerThread)
	l := &kernels.Launch{Program: prog, Grid: s.Grid, BlockDim: s.BlockDim}
	l.Params[0] = data
	l.Params[1] = out
	l.Params[2] = uint64(threads)
	return as, l, nil
}

// Diff is the oracle: it runs the sample through the reference interpreter
// and the timing simulator on independently built but identical address
// spaces and compares final memory images (which, via the epilogue fold,
// also cover final register state), page-table digests (neither run may
// mutate translations), and fault behaviour of the two page walkers. A nil
// return means the sample agrees end to end; any divergence, abort, or
// invariant violation is an error.
func (s *Sample) Diff(ctx context.Context) error {
	if err := s.HW.Validate(); err != nil {
		return fmt.Errorf("generated config invalid: %w", err)
	}

	asRef, lRef, err := s.build()
	if err != nil {
		return err
	}
	preMem := ref.MemDigest(asRef)
	prePT := ref.PageTableDigest(asRef.Mem, asRef.PT.CR3())

	refRes, err := ref.Execute(asRef, lRef, s.HW.WarpWidth, maxRefSteps)
	if err != nil {
		return fmt.Errorf("reference model: %w", err)
	}
	if d := ref.PageTableDigest(asRef.Mem, asRef.PT.CR3()); d != prePT {
		return fmt.Errorf("reference run mutated the page table (digest %#x -> %#x)", prePT, d)
	}
	want := ref.MemDigest(asRef)

	asSim, lSim, err := s.build()
	if err != nil {
		return err
	}
	if d := ref.MemDigest(asSim); d != preMem {
		return fmt.Errorf("non-deterministic build: initial memory digest %#x then %#x", preMem, d)
	}
	if d := ref.PageTableDigest(asSim.Mem, asSim.PT.CR3()); d != prePT {
		return fmt.Errorf("non-deterministic build: page table digest %#x then %#x", prePT, d)
	}

	_, err = gpummu.Run(ctx,
		gpummu.WithConfig(s.HW),
		gpummu.WithKernel(asSim, lSim),
		gpummu.WithWorkers(s.Workers),
		gpummu.WithInvariants(),
		gpummu.WithMaxCycles(diffMaxCycles),
		gpummu.WithWatchdog(diffWatchdog))
	if err != nil {
		return fmt.Errorf("timing simulator: %w", err)
	}
	if d := ref.PageTableDigest(asSim.Mem, asSim.PT.CR3()); d != prePT {
		return fmt.Errorf("timing run mutated the page table (digest %#x -> %#x)", prePT, d)
	}

	if got := ref.MemDigest(asSim); got != want {
		if va, av, bv, ok := ref.FirstMemDiff(asRef, asSim); ok {
			return fmt.Errorf("memory image diverged (%d reference steps): first difference at va %#x: ref=%#x sim=%#x",
				refRes.Steps, va, av, bv)
		}
		return fmt.Errorf("memory digests diverged (%#x vs %#x) but the byte scan found no difference", want, got)
	}

	// Fault-agreement probe: the hardware walker and the reference walker
	// must also agree on an address the kernel never touches. The page below
	// the heap base is never mapped.
	probe := asSim.HeapBase() - (uint64(1) << s.HW.PageShift)
	tr, werr := asSim.PT.Walk(probe)
	rw := ref.WalkPage(asSim.Mem, asSim.PT.CR3(), probe)
	if (werr != nil) != rw.Fault {
		return fmt.Errorf("fault disagreement at va %#x: page table err=%v, reference fault=%t", probe, werr, rw.Fault)
	}
	if werr != nil && rw.FaultLevel != tr.Levels-1 {
		return fmt.Errorf("fault level disagreement at va %#x: page table level %d, reference level %d",
			probe, tr.Levels-1, rw.FaultLevel)
	}
	return nil
}

// Minimise greedily shrinks a failing sample while the fails oracle keeps
// returning true: host parallelism first (a failure surviving Workers=1
// replays single-threaded), then launch geometry, then individual ops. It
// iterates to a fixpoint (bounded) and returns the smallest failing clone;
// the input sample is not modified.
func Minimise(s *Sample, fails func(*Sample) bool) *Sample {
	cur := s.Clone()
	for pass := 0; pass < 4; pass++ {
		changed := false
		if cur.Workers != 1 {
			c := cur.Clone()
			c.Workers = 1
			if fails(c) {
				cur = c
				changed = true
			}
		}
		for _, g := range []int{1, cur.Grid / 2} {
			if g >= 1 && g < cur.Grid {
				c := cur.Clone()
				c.Grid = g
				if fails(c) {
					cur = c
					changed = true
					break
				}
			}
		}
		for _, bd := range []int{1, 8, cur.BlockDim / 2} {
			if bd >= 1 && bd < cur.BlockDim {
				c := cur.Clone()
				c.BlockDim = bd
				if fails(c) {
					cur = c
					changed = true
					break
				}
			}
		}
		for _, id := range cur.AliveOpIDs() {
			c := cur.Clone()
			c.Drop(id)
			if fails(c) {
				cur = c
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return cur
}
