package campaign

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gpummu/internal/config"
	"gpummu/internal/experiments"
	"gpummu/internal/gpu"
	"gpummu/internal/workloads"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGolden pins the canonical form: every testdata input parses, emits
// byte-identically to its golden file, and the golden file is a fixpoint
// (parsing it re-emits the same bytes).
func TestGolden(t *testing.T) {
	inputs, err := filepath.Glob("testdata/*.yaml")
	if err != nil {
		t.Fatal(err)
	}
	jsons, err := filepath.Glob("testdata/*.json")
	if err != nil {
		t.Fatal(err)
	}
	inputs = append(inputs, jsons...)
	if len(inputs) == 0 {
		t.Fatal("no testdata inputs")
	}
	for _, in := range inputs {
		if strings.HasSuffix(in, ".golden.yaml") {
			continue
		}
		t.Run(filepath.Base(in), func(t *testing.T) {
			c, err := Load(in)
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			got := c.Emit()
			golden := strings.TrimSuffix(in, filepath.Ext(in)) + ".golden.yaml"
			if *update {
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("golden: %v (rerun with -update)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("emit mismatch vs %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
			// Fixpoint: the canonical form re-parses and re-emits itself.
			c2, err := Parse(got)
			if err != nil {
				t.Fatalf("reparse canonical form: %v", err)
			}
			if again := c2.Emit(); !bytes.Equal(again, got) {
				t.Errorf("canonical form is not a fixpoint:\n--- first ---\n%s--- second ---\n%s", got, again)
			}
		})
	}
}

// TestValidationErrors pins the typed-error contract: every invalid
// campaign fails with a *config.FieldError naming the exact field.
func TestValidationErrors(t *testing.T) {
	// valid() builds a minimal valid document, which each case then breaks.
	valid := "apiVersion: gpummu/v1\nname: ok\nfigures: [fig2]\n"
	cases := []struct {
		name  string
		doc   string
		field string
	}{
		{"api version", "apiVersion: gpummu/v2\nname: ok\nfigures: [fig2]\n", "apiVersion"},
		{"missing api version", "name: ok\nfigures: [fig2]\n", "apiVersion"},
		{"bad name", "apiVersion: gpummu/v1\nname: \"Bad Name\"\nfigures: [fig2]\n", "name"},
		{"unknown top key", valid + "frobnicate: 1\n", "frobnicate"},
		{"bad preset", valid + "machine: huge\n", "machine.preset"},
		{"unknown machine key", valid + "machine:\n  cores: 4\n", "machine.cores"},
		{"unknown hardware field", valid + "machine:\n  set:\n    mmu.size: 12\n", "machine.set.mmu.size"},
		{"bad hardware value", valid + "machine:\n  set:\n    mmu.entries: lots\n", "machine.set.mmu.entries"},
		{"list on scalar field", valid + "machine:\n  set:\n    mmu.entries: [1, 2]\n", "machine.set.mmu.entries"},
		{"invalid machine", valid + "machine:\n  set:\n    mmu.enabled: true\n", "MMU.Assoc"},
		{"unknown workload", valid + "workloads: [bfs, nfs]\n", "workloads.names[1]"},
		{"missing trace file", valid + "workloads: [\"trace:testdata/nope.csv\"]\n", "workloads.names[0]"},
		{"bad size", valid + "workloads:\n  size: huge\n", "workloads.size"},
		{"bad seed", valid + "workloads:\n  seed: -3\n", "workloads.seed"},
		{"unknown figure", "apiVersion: gpummu/v1\nname: ok\nfigures: [fig99]\n", "figures[0]"},
		{"empty axis values", valid + "sweep:\n  axes:\n    - field: MMU.Entries\n      values: []\n", "sweep.axes[0].values"},
		{"missing axis field", valid + "sweep:\n  axes:\n    - values: [64]\n", "sweep.axes[0].field"},
		{"bad axis field", valid + "sweep:\n  axes:\n    - field: mmu.size\n      values: [64]\n", "sweep.axes[0]"},
		{"bad normalize", valid + "sweep:\n  normalize: maybe\n", "sweep.normalize"},
		{"bad workers", valid + "run:\n  workers: -1\n", "run.workers"},
		{"workers not int", valid + "run:\n  workers: many\n", "run.workers"},
		{"bad par", valid + "run:\n  par: -1\n", "run.par"},
		{"sampling no detail", valid + "run:\n  sampling:\n    warmup: 100\n    fastforward: 1000\n", "run.sampling"},
		{"sampling no fastforward", valid + "run:\n  sampling:\n    detail: 100\n", "run.sampling"},
		{"sampling bad shorthand", valid + "run:\n  sampling: fast\n", "run.sampling"},
		{"sampling bad warm token", valid + "run:\n  sampling: \"1,2,3,cold\"\n", "run.sampling"},
		{"sampling unknown key", valid + "run:\n  sampling:\n    detail: 100\n    cooldown: 5\n", "run.sampling.cooldown"},
		{"sampling bad warmtlb", valid + "run:\n  sampling:\n    detail: 1\n    fastforward: 1\n    warmtlb: maybe\n", "run.sampling.warmtlb"},
		{"sampleDir without sampleEvery", valid + "obs:\n  sampleDir: out\n", "obs.sampleDir"},
		{"bad deadline", valid + "obs:\n  deadline: soon\n", "obs.deadline"},
		{"negative deadline", valid + "obs:\n  deadline: -5m\n", "obs.deadline"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.doc))
			if err == nil {
				t.Fatalf("Parse accepted:\n%s", tc.doc)
			}
			var fe *config.FieldError
			if !errors.As(err, &fe) {
				t.Fatalf("error is not a *config.FieldError: %v", err)
			}
			if fe.Field != tc.field {
				t.Errorf("Field = %q, want %q (err: %v)", fe.Field, tc.field, err)
			}
		})
	}
}

// TestExpandFiguresRejectsEmpty pins that workload-only campaigns (valid
// for gpusim) are refused by the figure pipeline with a typed error.
func TestExpandFiguresRejectsEmpty(t *testing.T) {
	c, err := Parse([]byte("apiVersion: gpummu/v1\nname: ok\n"))
	if err != nil {
		t.Fatalf("workload-only campaign should validate: %v", err)
	}
	_, err = c.ExpandFigures()
	var fe *config.FieldError
	if !errors.As(err, &fe) || fe.Field != "figures" {
		t.Fatalf("ExpandFigures error = %v, want FieldError on figures", err)
	}
}

// TestParseErrors pins the YAML-subset parser's line-numbered diagnostics.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string // substring of the error
	}{
		{"empty", "", "empty document"},
		{"tabs", "\tname: x\n", "tabs"},
		{"duplicate key", "name: a\nname: b\n", "duplicate key"},
		{"missing space", "name:x\n", "missing space"},
		{"bad indent", "machine:\n  preset: small\n   set: {}\n", "indent"},
		{"unterminated list", "figures: [fig2\n", "unterminated flow list"},
		{"empty flow item", "figures: [fig2,, fig3]\n", "empty item"},
		{"flow mapping", "machine: {preset: small}\n", "flow mappings are not supported"},
		{"list in mapping", "machine:\n  preset: small\n- oops\n", "list item inside a mapping"},
		{"bad json", "{\"name\": }\n", "json"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.doc))
			if err == nil {
				t.Fatalf("Parse accepted:\n%s", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestNormaliseCanonicalises pins the override spelling rules: field paths
// fold to their Go names, enum values to their CLI spellings, and figure
// IDs gain the "fig" prefix.
func TestNormaliseCanonicalises(t *testing.T) {
	doc := "apiVersion: gpummu/v1\nname: canon\nfigures: [2, fig10]\n" +
		"machine:\n  preset: small\n  set:\n    SCHED.POLICY: gto\n    tbc.mode: tbc\n" +
		"sweep:\n  axes:\n    - field: sched.policy\n      values: [lrr, gto]\n"
	c, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Figures; got[0] != "fig2" || got[1] != "fig10" {
		t.Errorf("figures = %v, want [fig2 fig10]", got)
	}
	if v, ok := c.Machine.Set["Sched.Policy"]; !ok || v != "gto" {
		t.Errorf("Set[Sched.Policy] = %v (set: %v)", v, c.Machine.Set)
	}
	if v, ok := c.Machine.Set["TBC.Mode"]; !ok || v != "tbc" {
		t.Errorf("Set[TBC.Mode] = %v (set: %v)", v, c.Machine.Set)
	}
	if ax := c.Sweep.Axes[0]; ax.Field != "Sched.Policy" {
		t.Errorf("axis field = %q, want Sched.Policy", ax.Field)
	}
	hw, err := c.MachineConfig()
	if err != nil {
		t.Fatal(err)
	}
	if hw.Sched.Policy != config.SchedGTO || hw.TBC.Mode != config.DivTBC {
		t.Errorf("overrides not applied: policy=%v mode=%v", hw.Sched.Policy, hw.TBC.Mode)
	}
}

// TestSweepPoints pins the cross-product: first axis outermost, labels
// carrying canonical paths, every point validated.
func TestSweepPoints(t *testing.T) {
	doc := "apiVersion: gpummu/v1\nname: sweep\nmachine:\n  preset: small\n  set:\n" +
		"    mmu.enabled: true\n    mmu.assoc: 4\n    mmu.entries: 128\n    mmu.ports: 4\n" +
		"    mmu.numptws: 1\n    mmu.mshrs: 32\n    mmu.walkconcurrency: 4\n" +
		"sweep:\n  axes:\n    - field: mmu.entries\n      values: [64, 128]\n" +
		"    - field: mmu.ports\n      values: [2, 4]\n"
	c, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	pts, err := c.sweepPoints()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"MMU.Entries=64 MMU.Ports=2", "MMU.Entries=64 MMU.Ports=4",
		"MMU.Entries=128 MMU.Ports=2", "MMU.Entries=128 MMU.Ports=4",
	}
	if len(pts) != len(want) {
		t.Fatalf("%d points, want %d", len(pts), len(want))
	}
	for i, pt := range pts {
		if pt.label != want[i] {
			t.Errorf("point %d label = %q, want %q", i, pt.label, want[i])
		}
	}
	if pts[0].cfg.MMU.Entries != 64 || pts[0].cfg.MMU.Ports != 2 {
		t.Errorf("point 0 config not applied: %+v", pts[0].cfg.MMU)
	}
	// An axis value that breaks config validation is caught up front.
	bad := strings.Replace(doc, "values: [64, 128]", "values: [63]", 1)
	if _, err := Parse([]byte(bad)); err == nil {
		t.Error("sweep with invalid point accepted")
	}
}

// TestCampaignMatchesFlagHarness is the refactor's core guarantee: a
// campaign-driven report is byte-identical to the classic flag-style
// harness invocation it replaces, across differing worker counts.
func TestCampaignMatchesFlagHarness(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	doc := "apiVersion: gpummu/v1\nname: fig2-tiny\nmachine: small\n" +
		"workloads:\n  names: [bfs, memcached]\n  size: tiny\n" +
		"figures: [fig2]\nrun:\n  workers: 3\n  par: 2\n"
	c, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	opt, err := c.HarnessOptions()
	if err != nil {
		t.Fatal(err)
	}
	figs, err := c.ExpandFigures()
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := experiments.RunFigures(experiments.New(&got, opt), figs); err != nil {
		t.Fatalf("campaign run: %v", err)
	}

	fig2, err := experiments.ByID("fig2")
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	h := experiments.New(&want, experiments.Options{
		Size:     workloads.SizeTiny,
		Seed:     1,
		Machine:  config.SmallTest,
		Workload: []string{"bfs", "memcached"},
		Workers:  1,
	})
	if err := experiments.RunFigures(h, []experiments.Figure{fig2}); err != nil {
		t.Fatalf("flag-style run: %v", err)
	}
	if got.String() != want.String() {
		t.Errorf("campaign report differs from flag-style report:\n--- campaign ---\n%s--- flags ---\n%s",
			got.String(), want.String())
	}
}

// TestSweepFigureEndToEnd runs a small campaign sweep through the full
// pipeline and checks the rendered table carries the point labels.
func TestSweepFigureEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	doc := "apiVersion: gpummu/v1\nname: mini-sweep\nmachine:\n  preset: small\n  set:\n" +
		"    mmu.enabled: true\n    mmu.assoc: 4\n    mmu.entries: 128\n    mmu.ports: 4\n" +
		"    mmu.numptws: 1\n    mmu.mshrs: 32\n    mmu.walkconcurrency: 4\n" +
		"workloads:\n  names: [bfs]\n  size: tiny\n" +
		"sweep:\n  axes:\n    - field: mmu.entries\n      values: [64, 128]\n"
	c, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	opt, err := c.HarnessOptions()
	if err != nil {
		t.Fatal(err)
	}
	figs, err := c.ExpandFigures()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 1 || figs[0].ID != "sweep" {
		t.Fatalf("figures = %v, want one sweep figure", figs)
	}
	var out bytes.Buffer
	if err := experiments.RunFigures(experiments.New(&out, opt), figs); err != nil {
		t.Fatalf("sweep run: %v", err)
	}
	for _, want := range []string{"MMU.Entries=64", "MMU.Entries=128", "bfs"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("sweep report missing %q:\n%s", want, out.String())
		}
	}
}

// TestHarnessOptions pins the campaign → Options mapping.
func TestHarnessOptions(t *testing.T) {
	doc := "apiVersion: gpummu/v1\nname: opts\nfigures: [fig2]\n" +
		"workloads:\n  names: [kmeans]\n  size: medium\n  seed: 9\n" +
		"run:\n  workers: 5\n  par: 3\n  sampling:\n    warmup: 500\n    detail: 2000\n    fastforward: 20000\n" +
		"obs:\n  sampleEvery: 1000\n  watchdog: 2000\n  maxCycles: 3000\n  deadline: 1h\n"
	c, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	opt, err := c.HarnessOptions()
	if err != nil {
		t.Fatal(err)
	}
	if opt.Size != workloads.SizeMedium || opt.Seed != 9 || opt.Workers != 5 || opt.CoreWorkers != 3 {
		t.Errorf("options mapped wrong: %+v", opt)
	}
	if len(opt.Workload) != 1 || opt.Workload[0] != "kmeans" {
		t.Errorf("workloads = %v", opt.Workload)
	}
	if opt.Obs.SampleEvery != 1000 || opt.Obs.Watchdog != 2000 || opt.Obs.MaxCycles != 3000 {
		t.Errorf("obs mapped wrong: %+v", opt.Obs)
	}
	if want := (gpu.SamplePlan{Warmup: 500, Detail: 2000, FastForward: 20000}); opt.Sampling != want {
		t.Errorf("sampling mapped wrong: %+v", opt.Sampling)
	}
	if opt.Obs.Deadline.IsZero() {
		t.Error("deadline was not anchored")
	}
	if hw := opt.Machine(); hw.Key() != config.Baseline().Key() {
		t.Errorf("machine is not the baseline preset")
	}
}
