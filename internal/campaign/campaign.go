// Package campaign defines the versioned, declarative experiment-campaign
// format: one YAML (or JSON) document naming a hardware matrix, workload
// set, figure fragments, sweep axes, observability budgets and output
// artefacts, replacing ad-hoc CLI flag assemblies for unattended
// design-space sweeps (ROADMAP item 5; the configuration layer is modelled
// on cri-resource-manager's versioned/validated config system).
//
// The lifecycle is parse → validate → normalise → expand:
//
//   - Parse/Load read YAML or JSON (yaml.go) and decode it into a Campaign
//     (decode.go), applying documented defaults.
//   - Validation returns typed *config.FieldError values naming the exact
//     campaign field that is wrong, including every hardware configuration
//     the campaign expands to (config.Hardware.Validate runs on each sweep
//     point up front, before anything simulates).
//   - Normalisation is canonical: Emit renders a parsed campaign in one
//     fixed form — fields in schema order, defaults made explicit, machine
//     overrides sorted and renamed to their canonical Go field paths — and
//     re-parsing that form re-emits it byte-identically (campaign_test.go
//     pins the fixpoint against golden files).
//   - Expansion (figure.go) turns the campaign into the experiment
//     pipeline's existing currency: experiments.Options, named figures, and
//     a sweep Figure whose RunSpecs dedupe by config.Hardware.Key like
//     every other figure.
//
// DESIGN.md section 13 is the field-by-field reference.
package campaign

import (
	"fmt"
	"os"
	"regexp"
	"time"

	"gpummu/internal/config"
	"gpummu/internal/experiments"
	"gpummu/internal/gpu"
	"gpummu/internal/workloads"
)

// APIVersion is the campaign schema version this package reads and writes.
// Future incompatible revisions will bump the suffix and keep reading old
// versions explicitly; an unknown version is a validation error, not a
// guess.
const APIVersion = "gpummu/v1"

// Campaign is one declarative experiment campaign.
type Campaign struct {
	// APIVersion must be "gpummu/v1".
	APIVersion string
	// Name identifies the campaign (DNS-label-like: lowercase
	// alphanumerics and interior dashes).
	Name string
	// Description is free-form documentation.
	Description string

	// Machine is the base hardware every run derives from.
	Machine Machine
	// Workloads is the workload set every figure and sweep point runs.
	Workloads WorkloadSet
	// Figures names experiment-figure fragments to reproduce (experiments
	// package IDs; "2" normalises to "fig2").
	Figures []string
	// Sweep declares a custom hardware cross-product rendered as its own
	// figure.
	Sweep Sweep

	// Run controls execution parallelism.
	Run RunOptions
	// Obs attaches per-run observability (sampling, watchdog, budgets).
	Obs Obs
	// Output names report artefacts.
	Output Output
}

// Machine selects a hardware preset and field overrides on top of it.
type Machine struct {
	// Preset is "baseline" (the paper's 30-core section 5.2 machine) or
	// "small" (the scaled-down 4-core test machine).
	Preset string
	// Set maps dotted config.Hardware field paths (case-insensitive on
	// input, canonicalised on emit: "mmu.entries" → "MMU.Entries") to
	// values. Scalars are strings after parsing; Sched.LRUDepthWeights
	// takes a flow list of ints. Enum fields accept their CLI spellings
	// (Sched.Policy: lrr|gto|ccws|ta-ccws|tcws; TBC.Mode:
	// stack|tbc|tlb-tbc).
	Set map[string]any
}

// WorkloadSet names the workloads plus their scale and seed.
type WorkloadSet struct {
	// Names lists registered workloads and/or "trace:<path>" replays.
	// Default: the paper's six.
	Names []string
	// Size is tiny|small|medium|large. Default: small.
	Size string
	// Seed is the dataset construction seed. Default: 1.
	Seed uint64
}

// Sweep is a cross-product over hardware fields, first axis outermost.
type Sweep struct {
	// Normalize reports speedup over the campaign machine's no-TLB
	// baseline when true (the default), raw cycle counts when false.
	Normalize bool
	// Axes are swept in order; the expansion is their cross-product
	// applied on top of Machine.
	Axes []Axis
}

// Axis is one swept hardware field.
type Axis struct {
	// Field is a dotted config.Hardware path (same syntax as Machine.Set).
	Field string
	// Values are the points along the axis, in sweep order.
	Values []string
}

// RunOptions mirrors the executor flags.
type RunOptions struct {
	// Workers is the -j worker pool size; 0 means GOMAXPROCS.
	Workers int
	// Par is -par: goroutines ticking cores inside one simulation.
	// Default 1; output is byte-identical for any value.
	Par int
	// Checkpoint enables checkpointed warm starts: sweep points sharing a
	// workload restore from one post-build snapshot instead of rebuilding
	// (experiments.Executor.Checkpoint). Reports are byte-identical either
	// way; default false.
	Checkpoint bool
	// Sampling executes every run under SMARTS-style interval sampling
	// (experiments.Options.Sampling, the -sampleplan flag): per interval,
	// Warmup detailed-but-unmeasured cycles, Detail measured cycles, then a
	// fast-forward window worth FastForward cycles executed functionally.
	// Rendered Cycles/Instructions become extrapolated estimates; ratios
	// come from the measured windows. The zero value keeps runs exact.
	Sampling gpu.SamplePlan
}

// Obs mirrors experiments.ObsOptions with a relative deadline.
type Obs struct {
	SampleEvery uint64        // cycles between samples; 0 disables
	SampleDir   string        // per-run CSV artefact directory
	Watchdog    uint64        // no-retirement abort window; 0 disables
	MaxCycles   uint64        // per-run cycle budget; 0 unbounded
	Deadline    time.Duration // wall-clock budget for the whole campaign
}

// Output names campaign artefacts.
type Output struct {
	// Report is the rendered report's path; "" writes to stdout.
	Report string
}

// Load reads, parses, validates and normalises the campaign at path.
func Load(path string) (*Campaign, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	c, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("campaign: %s: %w", path, err)
	}
	return c, nil
}

// Parse parses a YAML or JSON campaign document, applies defaults, and
// validates. The returned campaign is normalised: Emit renders it
// canonically.
func Parse(data []byte) (*Campaign, error) {
	tree, err := parseTree(data)
	if err != nil {
		return nil, err
	}
	c, err := decodeCampaign(tree)
	if err != nil {
		return nil, err
	}
	c.applyDefaults()
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := c.normalise(); err != nil {
		return nil, err
	}
	return c, nil
}

// NewAdhoc builds a validated, normalised campaign from job-shaped
// submission fields — the form the job server's POST /v1/jobs accepts when
// a client submits (workloads, machine) directly instead of a campaign
// document. Zero-valued arguments take the documented campaign defaults
// (preset "baseline", the paper's six workloads, size "small", seed 1).
// The returned campaign declares no figures or sweep: it runs just its
// workload set, exactly like a gpusim invocation.
func NewAdhoc(name string, workloadNames []string, size string, seed uint64, preset string, set map[string]any, run RunOptions) (*Campaign, error) {
	if name == "" {
		name = "adhoc"
	}
	c := &Campaign{
		APIVersion: APIVersion,
		Name:       name,
		Machine:    Machine{Preset: preset, Set: set},
		Workloads:  WorkloadSet{Names: workloadNames, Size: size, Seed: seed},
		Run:        run,
	}
	c.applyDefaults()
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := c.normalise(); err != nil {
		return nil, err
	}
	return c, nil
}

// applyDefaults fills unset fields with their documented defaults.
func (c *Campaign) applyDefaults() {
	if c.Machine.Preset == "" {
		c.Machine.Preset = "baseline"
	}
	if c.Machine.Set == nil {
		c.Machine.Set = map[string]any{}
	}
	if len(c.Workloads.Names) == 0 {
		c.Workloads.Names = workloads.PaperSet()
	}
	if c.Workloads.Size == "" {
		c.Workloads.Size = "small"
	}
	if c.Workloads.Seed == 0 {
		c.Workloads.Seed = 1
	}
	if c.Run.Par == 0 {
		c.Run.Par = 1
	}
}

var nameRe = regexp.MustCompile(`^[a-z0-9]([a-z0-9-]*[a-z0-9])?$`)

// badField builds the typed validation failure every check returns.
func badField(field string, value any, msg string) error {
	return &config.FieldError{Field: field, Value: value, Msg: msg}
}

// Validate checks the whole campaign, including every hardware
// configuration it expands to. Every failure is a *config.FieldError whose
// Field names the campaign path ("machine.set.MMU.Entries",
// "sweep.axes[1].field", ...).
func (c *Campaign) Validate() error {
	if c.APIVersion != APIVersion {
		return badField("apiVersion", c.APIVersion, fmt.Sprintf("must be %q", APIVersion))
	}
	if !nameRe.MatchString(c.Name) {
		return badField("name", c.Name, "must be a lowercase alphanumeric-and-dashes label")
	}
	if _, err := presetFunc(c.Machine.Preset); err != nil {
		return badField("machine.preset", c.Machine.Preset, "must be \"baseline\" or \"small\"")
	}
	if _, err := c.MachineConfig(); err != nil {
		return err
	}
	for i, w := range c.Workloads.Names {
		if err := workloads.Resolve(w); err != nil {
			return badField(fmt.Sprintf("workloads.names[%d]", i), w, err.Error())
		}
	}
	if _, err := workloads.ParseSize(c.Workloads.Size); err != nil {
		return badField("workloads.size", c.Workloads.Size, "must be tiny, small, medium or large")
	}
	for i, id := range c.Figures {
		if _, err := experiments.ByID(normaliseFigureID(id)); err != nil {
			return badField(fmt.Sprintf("figures[%d]", i), id, err.Error())
		}
	}
	for i, ax := range c.Sweep.Axes {
		if len(ax.Values) == 0 {
			return badField(fmt.Sprintf("sweep.axes[%d].values", i), ax.Values, "must list at least one value")
		}
	}
	if _, err := c.sweepPoints(); err != nil {
		return err
	}
	// A campaign with neither figures nor sweep axes is still valid: gpusim
	// runs just its workload set. ExpandFigures rejects it instead, so only
	// the figure pipeline insists on having something to render.
	if c.Run.Workers < 0 {
		return badField("run.workers", c.Run.Workers, "must be >= 0 (0 = all host cores)")
	}
	if c.Run.Par < 0 {
		return badField("run.par", c.Run.Par, "must be >= 0 (0 and 1 tick cores serially)")
	}
	if err := c.Run.Sampling.Validate(); err != nil {
		return badField("run.sampling", c.Run.Sampling.String(),
			"enabled plans need detail > 0 and fastforward > 0")
	}
	if c.Obs.SampleDir != "" && c.Obs.SampleEvery == 0 {
		return badField("obs.sampleDir", c.Obs.SampleDir, "requires obs.sampleEvery > 0")
	}
	if c.Obs.Deadline < 0 {
		return badField("obs.deadline", c.Obs.Deadline.String(), "must be >= 0")
	}
	return nil
}

// normalise rewrites the campaign into its canonical spelling: figure IDs
// gain the "fig" prefix, machine-override and sweep-axis field paths take
// their canonical Go names, and override values are reformatted by the
// target field's type. Validate must have passed.
func (c *Campaign) normalise() error {
	for i, id := range c.Figures {
		c.Figures[i] = normaliseFigureID(id)
	}
	set := make(map[string]any, len(c.Machine.Set))
	base, err := presetFunc(c.Machine.Preset)
	if err != nil {
		return err
	}
	hw := base()
	for path, val := range c.Machine.Set {
		canon, canonVal, err := setField(&hw, path, val)
		if err != nil {
			return badField("machine.set."+path, val, err.Error())
		}
		set[canon] = canonVal
	}
	c.Machine.Set = set
	for i := range c.Sweep.Axes {
		ax := &c.Sweep.Axes[i]
		for j, v := range ax.Values {
			canon, canonVal, err := setField(&hw, ax.Field, v)
			if err != nil {
				return badField(fmt.Sprintf("sweep.axes[%d]", i), v, err.Error())
			}
			s, ok := canonVal.(string)
			if !ok {
				return badField(fmt.Sprintf("sweep.axes[%d].field", i), ax.Field, "list-valued fields cannot be sweep axes")
			}
			ax.Field = canon
			ax.Values[j] = s
		}
	}
	return nil
}

// normaliseFigureID maps accepted figure spellings ("2", "fig2") to the
// experiments package's canonical IDs.
func normaliseFigureID(id string) string {
	if _, err := experiments.ByID(id); err == nil {
		return id
	}
	return "fig" + id
}
