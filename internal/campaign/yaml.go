// A dependency-free parser for the YAML subset campaign files use, plus a
// JSON front end mapping onto the same generic tree.
//
// The repository deliberately carries no third-party modules, so instead of
// a full YAML implementation this file parses the block subset the
// canonical emitter (emit.go) produces — nested mappings by two-space
// indentation, "- " list items (scalar or mapping), flow lists "[a, b]",
// the empty flow mapping "{}", double-quoted strings with Go escapes, and
// "#" comments — which is also the subset every committed example sticks
// to. Anything outside the subset is a parse error with a line number, not
// a silent misread. Campaign files may equally be JSON: a document whose
// first non-space byte is '{' goes through encoding/json and is folded into
// the same tree.
package campaign

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// node is the generic parse tree: map[string]node, []node, or a string
// scalar. Scalars stay strings until the decode layer, which knows each
// field's type; JSON numbers and booleans are folded to their canonical
// string spellings so both front ends decode identically.
type node any

// yline is one significant line of a YAML document.
type yline struct {
	no     int // 1-based line number in the source
	indent int
	text   string // comment-stripped, trimmed
}

// yerrf builds a parse error carrying the line number.
func yerrf(no int, format string, args ...any) error {
	return fmt.Errorf("line %d: %s", no, fmt.Sprintf(format, args...))
}

// parseTree parses a YAML or JSON document into the generic tree.
func parseTree(data []byte) (node, error) {
	trimmed := strings.TrimLeft(string(data), " \t\r\n")
	if strings.HasPrefix(trimmed, "{") {
		var v any
		if err := json.Unmarshal(data, &v); err != nil {
			return nil, fmt.Errorf("json: %w", err)
		}
		return jsonNode(v), nil
	}
	lines, err := splitLines(data)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("empty document")
	}
	p := &yparser{lines: lines}
	root, err := p.parseBlock(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.i < len(p.lines) {
		return nil, yerrf(p.lines[p.i].no, "content outside the document root (bad indentation?)")
	}
	return root, nil
}

// jsonNode folds a decoded JSON value into the generic tree.
func jsonNode(v any) node {
	switch t := v.(type) {
	case map[string]any:
		m := make(map[string]node, len(t))
		for k, e := range t {
			m[k] = jsonNode(e)
		}
		return m
	case []any:
		l := make([]node, len(t))
		for i, e := range t {
			l[i] = jsonNode(e)
		}
		return l
	case string:
		return t
	case float64:
		return strconv.FormatFloat(t, 'g', -1, 64)
	case bool:
		return strconv.FormatBool(t)
	case nil:
		return ""
	}
	return fmt.Sprintf("%v", v)
}

// splitLines strips comments and blanks and records indentation.
func splitLines(data []byte) ([]yline, error) {
	var out []yline
	for no, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimRight(raw, "\r")
		if strings.ContainsRune(line, '\t') {
			return nil, yerrf(no+1, "tabs are not allowed for indentation")
		}
		line = stripComment(line)
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		out = append(out, yline{
			no:     no + 1,
			indent: len(line) - len(strings.TrimLeft(line, " ")),
			text:   trimmed,
		})
	}
	return out, nil
}

// stripComment removes a trailing "#" comment that is outside double quotes
// and preceded by start-of-line or whitespace.
func stripComment(line string) string {
	inQuote := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			if !inQuote {
				inQuote = true
			} else if i == 0 || line[i-1] != '\\' {
				inQuote = false
			}
		case '#':
			if !inQuote && (i == 0 || line[i-1] == ' ') {
				return line[:i]
			}
		}
	}
	return line
}

// yparser walks the significant lines recursively.
type yparser struct {
	lines []yline
	i     int
}

// parseBlock parses the mapping or list starting at the current line.
func (p *yparser) parseBlock(indent int) (node, error) {
	l := p.lines[p.i]
	if l.text == "-" || strings.HasPrefix(l.text, "- ") {
		return p.parseList(indent)
	}
	return p.parseMap(indent)
}

// parseMap parses "key: value" entries at exactly the given indent.
func (p *yparser) parseMap(indent int) (node, error) {
	m := map[string]node{}
	for p.i < len(p.lines) {
		l := p.lines[p.i]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, yerrf(l.no, "unexpected indent %d (mapping is at %d)", l.indent, indent)
		}
		if l.text == "-" || strings.HasPrefix(l.text, "- ") {
			return nil, yerrf(l.no, "list item inside a mapping")
		}
		key, rest, err := cutKey(l)
		if err != nil {
			return nil, err
		}
		if _, dup := m[key]; dup {
			return nil, yerrf(l.no, "duplicate key %q", key)
		}
		p.i++
		if rest == "" {
			// Either a nested block or an empty scalar.
			if p.i < len(p.lines) && p.lines[p.i].indent > indent {
				child, err := p.parseBlock(p.lines[p.i].indent)
				if err != nil {
					return nil, err
				}
				m[key] = child
			} else {
				m[key] = ""
			}
			continue
		}
		v, err := parseFlow(l.no, rest)
		if err != nil {
			return nil, err
		}
		m[key] = v
	}
	return m, nil
}

// parseList parses "- item" entries at exactly the given indent.
func (p *yparser) parseList(indent int) (node, error) {
	out := []node{}
	for p.i < len(p.lines) {
		l := p.lines[p.i]
		if l.indent < indent {
			break
		}
		if l.indent > indent || !(l.text == "-" || strings.HasPrefix(l.text, "- ")) {
			return nil, yerrf(l.no, "expected a %d-indented list item", indent)
		}
		rest := strings.TrimSpace(strings.TrimPrefix(l.text, "-"))
		switch {
		case rest == "":
			// Item body is the following deeper block.
			p.i++
			if p.i >= len(p.lines) || p.lines[p.i].indent <= indent {
				return nil, yerrf(l.no, "empty list item")
			}
			child, err := p.parseBlock(p.lines[p.i].indent)
			if err != nil {
				return nil, err
			}
			out = append(out, child)
		case isMapStart(rest):
			// Mapping whose first entry shares the dash line; its other
			// entries sit two columns past the dash.
			p.lines[p.i] = yline{no: l.no, indent: indent + 2, text: rest}
			child, err := p.parseMap(indent + 2)
			if err != nil {
				return nil, err
			}
			out = append(out, child)
		default:
			v, err := parseFlow(l.no, rest)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
			p.i++
		}
	}
	return out, nil
}

// cutKey splits "key: value" (or "key:") at the first colon.
func cutKey(l yline) (key, rest string, err error) {
	idx := strings.IndexByte(l.text, ':')
	if idx <= 0 {
		return "", "", yerrf(l.no, "expected \"key: value\", got %q", l.text)
	}
	key = l.text[:idx]
	if strings.ContainsAny(key, "\" []{}") {
		return "", "", yerrf(l.no, "bad mapping key %q", key)
	}
	rest = strings.TrimSpace(l.text[idx+1:])
	if rest != "" && l.text[idx+1] != ' ' {
		return "", "", yerrf(l.no, "missing space after %q:", key)
	}
	return key, rest, nil
}

// isMapStart reports whether a list-item body begins a mapping ("key: ..."),
// as opposed to a scalar that merely contains colons ("trace:foo.csv").
func isMapStart(s string) bool {
	idx := strings.IndexByte(s, ':')
	if idx <= 0 || strings.ContainsAny(s[:idx], "\" []{}") {
		return false
	}
	return idx == len(s)-1 || s[idx+1] == ' '
}

// parseFlow parses an inline value: a flow list, the empty flow mapping,
// a quoted string, or a bare scalar.
func parseFlow(no int, s string) (node, error) {
	switch {
	case s == "{}":
		return map[string]node{}, nil
	case strings.HasPrefix(s, "{"):
		return nil, yerrf(no, "flow mappings are not supported (only {})")
	case strings.HasPrefix(s, "["):
		if !strings.HasSuffix(s, "]") {
			return nil, yerrf(no, "unterminated flow list %q", s)
		}
		inner := strings.TrimSpace(s[1 : len(s)-1])
		if inner == "" {
			return []node{}, nil
		}
		items, err := splitFlowItems(no, inner)
		if err != nil {
			return nil, err
		}
		out := make([]node, 0, len(items))
		for _, it := range items {
			v, err := parseFlow(no, it)
			if err != nil {
				return nil, err
			}
			if _, ok := v.(string); !ok {
				return nil, yerrf(no, "nested flow collections are not supported")
			}
			out = append(out, v)
		}
		return out, nil
	case strings.HasPrefix(s, "\""):
		uq, err := strconv.Unquote(s)
		if err != nil {
			return nil, yerrf(no, "bad quoted string %s", s)
		}
		return uq, nil
	case strings.ContainsAny(s, "[]{}\""):
		return nil, yerrf(no, "bad scalar %q", s)
	}
	return s, nil
}

// splitFlowItems splits flow-list contents on top-level commas, respecting
// double quotes.
func splitFlowItems(no int, s string) ([]string, error) {
	var items []string
	start, inQuote := 0, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if !inQuote {
				inQuote = true
			} else if s[i-1] != '\\' {
				inQuote = false
			}
		case ',':
			if !inQuote {
				items = append(items, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if inQuote {
		return nil, yerrf(no, "unterminated string in flow list")
	}
	items = append(items, strings.TrimSpace(s[start:]))
	for _, it := range items {
		if it == "" {
			return nil, yerrf(no, "empty item in flow list")
		}
	}
	return items, nil
}
