// Expansion into the experiment pipeline's existing currency: a validated
// campaign becomes experiments.Options plus a figure list, so the plan →
// execute → render machinery (dedup by config.Hardware.Key, worker pools,
// byte-identical reports) runs campaigns and flag invocations identically.
package campaign

import (
	"fmt"
	"time"

	"gpummu/internal/config"
	"gpummu/internal/experiments"
	"gpummu/internal/stats"
	"gpummu/internal/workloads"
)

// HarnessOptions maps the campaign onto the harness options the experiment
// pipeline already consumes. Obs.Deadline, a relative budget in the file,
// is anchored at call time. Validate must have passed (Parse/Load ensure
// it).
func (c *Campaign) HarnessOptions() (experiments.Options, error) {
	size, err := workloads.ParseSize(c.Workloads.Size)
	if err != nil {
		return experiments.Options{}, badField("workloads.size", c.Workloads.Size, err.Error())
	}
	opt := experiments.Options{
		Size:        size,
		Seed:        c.Workloads.Seed,
		Machine:     c.MachineFunc(),
		Workload:    append([]string(nil), c.Workloads.Names...),
		Workers:     c.Run.Workers,
		CoreWorkers: c.Run.Par,
		Checkpoint:  c.Run.Checkpoint,
		Sampling:    c.Run.Sampling,
		Obs: experiments.ObsOptions{
			SampleEvery: c.Obs.SampleEvery,
			SampleDir:   c.Obs.SampleDir,
			Watchdog:    c.Obs.Watchdog,
			MaxCycles:   c.Obs.MaxCycles,
		},
	}
	if c.Obs.Deadline > 0 {
		opt.Obs.Deadline = time.Now().Add(c.Obs.Deadline)
	}
	return opt, nil
}

// ExpandFigures expands the campaign's figure list: the named paper
// figures in campaign order, then the sweep (if axes are declared)
// rendered as a figure of its own.
func (c *Campaign) ExpandFigures() ([]experiments.Figure, error) {
	if len(c.Figures) == 0 && len(c.Sweep.Axes) == 0 {
		return nil, badField("figures", c.Figures, "campaign declares neither figures nor sweep axes; nothing for the figure pipeline to run")
	}
	figs := make([]experiments.Figure, 0, len(c.Figures)+1)
	for i, id := range c.Figures {
		f, err := experiments.ByID(id)
		if err != nil {
			return nil, badField(fmt.Sprintf("figures[%d]", i), id, err.Error())
		}
		figs = append(figs, f)
	}
	if len(c.Sweep.Axes) > 0 {
		f, err := c.SweepFigure()
		if err != nil {
			return nil, err
		}
		figs = append(figs, f)
	}
	return figs, nil
}

// SweepFigure renders the campaign's hardware cross-product as one figure:
// a row per workload, a column per sweep point, cells either speedup over
// the campaign machine's no-TLB baseline (sweep.normalize, the default) or
// raw cycle counts. Its RunSpecs flow through the same planner as the paper
// figures, so shared configurations are simulated exactly once.
func (c *Campaign) SweepFigure() (experiments.Figure, error) {
	points, err := c.sweepPoints()
	if err != nil {
		return experiments.Figure{}, err
	}
	names := append([]string(nil), c.Workloads.Names...)
	normalize := c.Sweep.Normalize
	base, err := c.MachineConfig()
	if err != nil {
		return experiments.Figure{}, err
	}
	noTLB := base
	noTLB.MMU = config.MMU{Enabled: false}

	metric := "speedup vs no-TLB"
	if !normalize {
		metric = "cycles"
	}
	return experiments.Figure{
		ID:    "sweep",
		Title: fmt.Sprintf("campaign %s sweep (%s)", c.Name, metric),
		Paper: "Campaign-declared design-space sweep (not a paper figure).",
		Plan: func(h *experiments.Harness) []experiments.RunSpec {
			var specs []experiments.RunSpec
			for _, w := range names {
				if normalize {
					specs = append(specs, h.Spec(w, noTLB))
				}
				for _, pt := range points {
					specs = append(specs, h.Spec(w, pt.cfg))
				}
			}
			return specs
		},
		Run: func(h *experiments.Harness) (string, error) {
			header := []string{"workload"}
			for _, pt := range points {
				header = append(header, pt.label)
			}
			tbl := stats.NewTable(header...)
			for _, w := range names {
				row := []any{w}
				var baseCycles uint64
				if normalize {
					st, err := h.Run(w, noTLB)
					if err != nil {
						return "", err
					}
					baseCycles = st.Cycles
				}
				for _, pt := range points {
					st, err := h.Run(w, pt.cfg)
					if err != nil {
						return "", err
					}
					if normalize {
						if st.Cycles == 0 {
							return "", fmt.Errorf("%s [%s]: zero cycles", w, pt.label)
						}
						row = append(row, float64(baseCycles)/float64(st.Cycles))
					} else {
						row = append(row, st.Cycles)
					}
				}
				tbl.AddRow(row...)
			}
			return tbl.String(), nil
		},
	}, nil
}
