// Hardware expansion: dotted-path field overrides over config.Hardware and
// the sweep cross-product.
package campaign

import (
	"fmt"
	"reflect"
	"sort"
	"strconv"
	"strings"

	"gpummu/internal/config"
)

// presetFunc resolves a machine preset name.
func presetFunc(name string) (func() config.Hardware, error) {
	switch name {
	case "baseline":
		return config.Baseline, nil
	case "small":
		return config.SmallTest, nil
	}
	return nil, fmt.Errorf("unknown machine preset %q", name)
}

// schedPolicies and divModes map the CLI spellings (the enums' String()
// forms) back to their values, so campaigns sweep schedulers by name.
var schedPolicies = map[string]config.SchedulerPolicy{
	"lrr": config.SchedLRR, "gto": config.SchedGTO, "ccws": config.SchedCCWS,
	"ta-ccws": config.SchedTACCWS, "tcws": config.SchedTCWS,
}

var divModes = map[string]config.DivergenceMode{
	"stack": config.DivStack, "tbc": config.DivTBC, "tlb-tbc": config.DivTLBTBC,
}

// setField sets the dotted, case-insensitive field path of hw from a parsed
// scalar (string) or list ([]node or []string) and returns the canonical Go
// path plus the canonically formatted value (string, or []string for list
// fields). It is the single mechanism behind machine.set overrides and
// sweep axes, so both share spellings and error messages.
func setField(hw *config.Hardware, path string, val any) (canonPath string, canonVal any, err error) {
	v := reflect.ValueOf(hw).Elem()
	var canon []string
	segs := strings.Split(path, ".")
	for i, seg := range segs {
		if v.Kind() != reflect.Struct {
			return "", nil, fmt.Errorf("%s is not a struct", strings.Join(canon, "."))
		}
		f, ok := fieldByNameFold(v, seg)
		if !ok {
			return "", nil, fmt.Errorf("unknown hardware field %q under %q", seg, strings.Join(canon, "."))
		}
		canon = append(canon, v.Type().Field(f).Name)
		v = v.Field(f)
		if i == len(segs)-1 {
			canonVal, err = assign(v, val)
			if err != nil {
				return "", nil, fmt.Errorf("%s: %w", strings.Join(canon, "."), err)
			}
			return strings.Join(canon, "."), canonVal, nil
		}
	}
	return "", nil, fmt.Errorf("empty field path")
}

// fieldByNameFold finds a struct field case-insensitively.
func fieldByNameFold(v reflect.Value, name string) (int, bool) {
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		if strings.EqualFold(t.Field(i).Name, name) {
			return i, true
		}
	}
	return 0, false
}

// assign writes a parsed value into a leaf field and returns its canonical
// string form.
func assign(v reflect.Value, val any) (any, error) {
	if list, ok := asStringList(val); ok {
		if v.Kind() != reflect.Slice || v.Type().Elem().Kind() != reflect.Int {
			return nil, fmt.Errorf("a list is only valid for []int fields")
		}
		ints := make([]int, len(list))
		canon := make([]string, len(list))
		for i, s := range list {
			n, err := strconv.Atoi(s)
			if err != nil {
				return nil, fmt.Errorf("bad int %q in list", s)
			}
			ints[i] = n
			canon[i] = strconv.Itoa(n)
		}
		v.Set(reflect.ValueOf(ints))
		return canon, nil
	}
	s, ok := val.(string)
	if !ok {
		return nil, fmt.Errorf("expected a scalar")
	}
	switch v.Type() {
	case reflect.TypeOf(config.SchedulerPolicy(0)):
		p, ok := schedPolicies[s]
		if !ok {
			return nil, fmt.Errorf("unknown scheduler policy %q (have lrr, gto, ccws, ta-ccws, tcws)", s)
		}
		v.Set(reflect.ValueOf(p))
		return p.String(), nil
	case reflect.TypeOf(config.DivergenceMode(0)):
		m, ok := divModes[s]
		if !ok {
			return nil, fmt.Errorf("unknown divergence mode %q (have stack, tbc, tlb-tbc)", s)
		}
		v.Set(reflect.ValueOf(m))
		return m.String(), nil
	}
	switch v.Kind() {
	case reflect.Int:
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad int %q", s)
		}
		v.SetInt(n)
		return strconv.FormatInt(n, 10), nil
	case reflect.Uint:
		n, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad uint %q", s)
		}
		v.SetUint(n)
		return strconv.FormatUint(n, 10), nil
	case reflect.Bool:
		b, err := strconv.ParseBool(s)
		if err != nil {
			return nil, fmt.Errorf("bad bool %q", s)
		}
		v.SetBool(b)
		return strconv.FormatBool(b), nil
	case reflect.String:
		v.SetString(s)
		return s, nil
	}
	return nil, fmt.Errorf("unsupported field kind %s", v.Kind())
}

// asStringList folds the parser's list forms into []string.
func asStringList(val any) ([]string, bool) {
	switch t := val.(type) {
	case []string:
		return t, true
	case []node:
		out := make([]string, len(t))
		for i, n := range t {
			s, ok := n.(string)
			if !ok {
				return nil, false
			}
			out[i] = s
		}
		return out, true
	}
	return nil, false
}

// MachineConfig builds the campaign's base hardware: the preset with every
// machine.set override applied, in sorted path order (overrides are
// independent field writes, so order only matters for error reporting).
func (c *Campaign) MachineConfig() (config.Hardware, error) {
	base, err := presetFunc(c.Machine.Preset)
	if err != nil {
		return config.Hardware{}, badField("machine.preset", c.Machine.Preset, err.Error())
	}
	hw := base()
	paths := make([]string, 0, len(c.Machine.Set))
	for p := range c.Machine.Set {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if _, _, err := setField(&hw, p, c.Machine.Set[p]); err != nil {
			return config.Hardware{}, badField("machine.set."+p, c.Machine.Set[p], err.Error())
		}
	}
	if err := hw.Validate(); err != nil {
		return config.Hardware{}, fmt.Errorf("machine: %w", err)
	}
	return hw, nil
}

// MachineFunc returns the machine constructor the experiment harness
// expects; every call rebuilds the config so callers can mutate their copy
// freely. Validate must have passed.
func (c *Campaign) MachineFunc() func() config.Hardware {
	return func() config.Hardware {
		hw, err := c.MachineConfig()
		if err != nil {
			// Load validated the campaign; reaching this means the caller
			// bypassed Parse, which is a programming error.
			panic(fmt.Sprintf("campaign: invalid machine after validation: %v", err))
		}
		return hw
	}
}

// sweepPoint is one expanded configuration of the sweep cross-product.
type sweepPoint struct {
	label string // "MMU.Entries=64 MMU.Ports=3", column header material
	cfg   config.Hardware
}

// sweepPoints expands the cross-product of the sweep axes over the base
// machine, first axis outermost, validating every configuration up front.
func (c *Campaign) sweepPoints() ([]sweepPoint, error) {
	if len(c.Sweep.Axes) == 0 {
		return nil, nil
	}
	base, err := c.MachineConfig()
	if err != nil {
		return nil, err
	}
	points := []sweepPoint{{cfg: base}}
	for i, ax := range c.Sweep.Axes {
		next := make([]sweepPoint, 0, len(points)*len(ax.Values))
		for _, pt := range points {
			for _, val := range ax.Values {
				cfg := pt.cfg
				canon, _, err := setField(&cfg, ax.Field, val)
				if err != nil {
					return nil, badField(fmt.Sprintf("sweep.axes[%d]", i), val, err.Error())
				}
				label := fmt.Sprintf("%s=%s", canon, val)
				if pt.label != "" {
					label = pt.label + " " + label
				}
				next = append(next, sweepPoint{label: label, cfg: cfg})
			}
		}
		points = next
	}
	for _, pt := range points {
		if err := pt.cfg.Validate(); err != nil {
			return nil, fmt.Errorf("sweep point [%s]: %w", pt.label, err)
		}
	}
	return points, nil
}
