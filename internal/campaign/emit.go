// The canonical emitter: one fixed rendering for every campaign.
//
// Emit writes all fields explicitly, in schema order, with defaults spelled
// out, machine overrides sorted by canonical path, and one quoting rule —
// so Parse(Emit(c)) re-emits byte-identically (the normalisation fixpoint
// campaign_test.go pins with golden files).
package campaign

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// bareRe admits scalars that need no quoting. Anything else (empty strings,
// colons as in "trace:...", spaces, YAML punctuation) is double-quoted.
var bareRe = regexp.MustCompile(`^[A-Za-z0-9_./=-]+$`)

// scalar renders one scalar with the canonical quoting rule.
func scalar(s string) string {
	if bareRe.MatchString(s) {
		return s
	}
	return strconv.Quote(s)
}

// flowList renders a flow list of scalars.
func flowList(items []string) string {
	if len(items) == 0 {
		return "[]"
	}
	quoted := make([]string, len(items))
	for i, s := range items {
		quoted[i] = scalar(s)
	}
	return "[" + strings.Join(quoted, ", ") + "]"
}

// Emit renders the campaign canonically. The campaign must be normalised
// (which Parse and Load guarantee).
func (c *Campaign) Emit() []byte {
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format, args...) }

	w("apiVersion: %s\n", scalar(c.APIVersion))
	w("name: %s\n", scalar(c.Name))
	w("description: %s\n", scalar(c.Description))

	w("machine:\n")
	w("  preset: %s\n", scalar(c.Machine.Preset))
	if len(c.Machine.Set) == 0 {
		w("  set: {}\n")
	} else {
		w("  set:\n")
		paths := make([]string, 0, len(c.Machine.Set))
		for p := range c.Machine.Set {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		for _, p := range paths {
			switch v := c.Machine.Set[p].(type) {
			case []string:
				w("    %s: %s\n", p, flowList(v))
			default:
				w("    %s: %s\n", p, scalar(fmt.Sprintf("%v", v)))
			}
		}
	}

	w("workloads:\n")
	w("  names: %s\n", flowList(c.Workloads.Names))
	w("  size: %s\n", scalar(c.Workloads.Size))
	w("  seed: %d\n", c.Workloads.Seed)

	w("figures: %s\n", flowList(c.Figures))

	w("sweep:\n")
	w("  normalize: %v\n", c.Sweep.Normalize)
	if len(c.Sweep.Axes) == 0 {
		w("  axes: []\n")
	} else {
		w("  axes:\n")
		for _, ax := range c.Sweep.Axes {
			w("    - field: %s\n", scalar(ax.Field))
			w("      values: %s\n", flowList(ax.Values))
		}
	}

	w("run:\n")
	w("  workers: %d\n", c.Run.Workers)
	w("  par: %d\n", c.Run.Par)
	w("  checkpoint: %v\n", c.Run.Checkpoint)
	w("  sampling:\n")
	w("    warmup: %d\n", c.Run.Sampling.Warmup)
	w("    detail: %d\n", c.Run.Sampling.Detail)
	w("    fastforward: %d\n", c.Run.Sampling.FastForward)
	w("    warmtlb: %v\n", c.Run.Sampling.WarmTLB)

	w("obs:\n")
	w("  sampleEvery: %d\n", c.Obs.SampleEvery)
	w("  sampleDir: %s\n", scalar(c.Obs.SampleDir))
	w("  watchdog: %d\n", c.Obs.Watchdog)
	w("  maxCycles: %d\n", c.Obs.MaxCycles)
	w("  deadline: %s\n", scalar(c.Obs.Deadline.String()))

	w("output:\n")
	w("  report: %s\n", scalar(c.Output.Report))

	return []byte(b.String())
}
