// Decoding from the generic parse tree into Campaign, with typed
// *config.FieldError failures naming the offending campaign path.
package campaign

import (
	"fmt"
	"strconv"
	"time"

	"gpummu/internal/gpu"
)

// decodeCampaign walks the tree. Unknown keys are errors: a misspelled
// field must fail loudly, not silently fall back to a default.
func decodeCampaign(root node) (*Campaign, error) {
	m, err := wantMap(root, "")
	if err != nil {
		return nil, err
	}
	c := &Campaign{Sweep: Sweep{Normalize: true}}
	if err := checkKeys(m, "", "apiVersion", "name", "description", "machine",
		"workloads", "figures", "sweep", "run", "obs", "output"); err != nil {
		return nil, err
	}
	if c.APIVersion, err = optStr(m, "apiVersion", ""); err != nil {
		return nil, err
	}
	if c.Name, err = optStr(m, "name", ""); err != nil {
		return nil, err
	}
	if c.Description, err = optStr(m, "description", ""); err != nil {
		return nil, err
	}
	if err := decodeMachine(m["machine"], &c.Machine); err != nil {
		return nil, err
	}
	if err := decodeWorkloads(m["workloads"], &c.Workloads); err != nil {
		return nil, err
	}
	if c.Figures, err = optStrList(m, "figures", ""); err != nil {
		return nil, err
	}
	if err := decodeSweep(m["sweep"], &c.Sweep); err != nil {
		return nil, err
	}
	if err := decodeRun(m["run"], &c.Run); err != nil {
		return nil, err
	}
	if err := decodeObs(m["obs"], &c.Obs); err != nil {
		return nil, err
	}
	if err := decodeOutput(m["output"], &c.Output); err != nil {
		return nil, err
	}
	return c, nil
}

// decodeMachine accepts a {preset, set} mapping or a bare preset name.
func decodeMachine(n node, out *Machine) error {
	if n == nil {
		return nil
	}
	if s, ok := n.(string); ok { // shorthand: machine: small
		out.Preset = s
		return nil
	}
	m, err := wantMap(n, "machine")
	if err != nil {
		return err
	}
	if err := checkKeys(m, "machine.", "preset", "set"); err != nil {
		return err
	}
	if out.Preset, err = optStr(m, "preset", "machine."); err != nil {
		return err
	}
	if sn, ok := m["set"]; ok {
		sm, err := wantMap(sn, "machine.set")
		if err != nil {
			return err
		}
		out.Set = make(map[string]any, len(sm))
		for k, v := range sm {
			switch t := v.(type) {
			case string:
				out.Set[k] = t
			case []node:
				l, ok := asStringList(t)
				if !ok {
					return badField("machine.set."+k, v, "list values must be scalars")
				}
				out.Set[k] = l
			default:
				return badField("machine.set."+k, v, "must be a scalar or a list")
			}
		}
	}
	return nil
}

// decodeWorkloads accepts a {names, size, seed} mapping or the bare names
// list shorthand.
func decodeWorkloads(n node, out *WorkloadSet) error {
	if n == nil {
		return nil
	}
	if _, ok := n.([]node); ok { // shorthand: workloads: [bfs, kmeans]
		names, err := strList(n, "workloads")
		if err != nil {
			return err
		}
		out.Names = names
		return nil
	}
	m, err := wantMap(n, "workloads")
	if err != nil {
		return err
	}
	if err := checkKeys(m, "workloads.", "names", "size", "seed"); err != nil {
		return err
	}
	if out.Names, err = optStrList(m, "names", "workloads."); err != nil {
		return err
	}
	if out.Size, err = optStr(m, "size", "workloads."); err != nil {
		return err
	}
	if out.Seed, err = optUint(m, "seed", "workloads."); err != nil {
		return err
	}
	return nil
}

// decodeSweep fills {normalize, axes}.
func decodeSweep(n node, out *Sweep) error {
	if n == nil {
		return nil
	}
	if l, ok := n.([]node); ok { // shorthand: sweep is just the axes list
		return decodeAxes(l, out)
	}
	m, err := wantMap(n, "sweep")
	if err != nil {
		return err
	}
	if err := checkKeys(m, "sweep.", "normalize", "axes"); err != nil {
		return err
	}
	if v, ok := m["normalize"]; ok {
		b, err := wantBool(v, "sweep.normalize")
		if err != nil {
			return err
		}
		out.Normalize = b
	}
	if v, ok := m["axes"]; ok {
		l, err := wantList(v, "sweep.axes")
		if err != nil {
			return err
		}
		return decodeAxes(l, out)
	}
	return nil
}

// decodeAxes fills the axis list.
func decodeAxes(l []node, out *Sweep) error {
	for i, an := range l {
		path := fmt.Sprintf("sweep.axes[%d]", i)
		am, err := wantMap(an, path)
		if err != nil {
			return err
		}
		if err := checkKeys(am, path+".", "field", "values"); err != nil {
			return err
		}
		var ax Axis
		if ax.Field, err = optStr(am, "field", path+"."); err != nil {
			return err
		}
		if ax.Field == "" {
			return badField(path+".field", "", "must name a hardware field")
		}
		if vn, ok := am["values"]; ok {
			if ax.Values, err = strList(vn, path+".values"); err != nil {
				return err
			}
		}
		out.Axes = append(out.Axes, ax)
	}
	return nil
}

// decodeRun fills {workers, par, checkpoint, sampling}.
func decodeRun(n node, out *RunOptions) error {
	if n == nil {
		return nil
	}
	m, err := wantMap(n, "run")
	if err != nil {
		return err
	}
	if err := checkKeys(m, "run.", "workers", "par", "checkpoint", "sampling"); err != nil {
		return err
	}
	if out.Workers, err = optInt(m, "workers", "run."); err != nil {
		return err
	}
	if out.Par, err = optInt(m, "par", "run."); err != nil {
		return err
	}
	if out.Checkpoint, err = optBool(m, "checkpoint", "run."); err != nil {
		return err
	}
	if sn, ok := m["sampling"]; ok {
		if err := decodeSampling(sn, &out.Sampling); err != nil {
			return err
		}
	}
	return nil
}

// decodeSampling accepts a {warmup, detail, fastforward, warmtlb} mapping
// or the -sampleplan flag's scalar shorthand "warmup,detail,fastforward[,warm]".
func decodeSampling(n node, out *gpu.SamplePlan) error {
	if s, ok := n.(string); ok { // shorthand: sampling: "1000,5000,50000"
		p, err := gpu.ParseSamplePlan(s)
		if err != nil {
			return badField("run.sampling", s, "must be warmup,detail,fastforward[,warm]")
		}
		*out = p
		return nil
	}
	m, err := wantMap(n, "run.sampling")
	if err != nil {
		return err
	}
	if err := checkKeys(m, "run.sampling.", "warmup", "detail", "fastforward", "warmtlb"); err != nil {
		return err
	}
	if out.Warmup, err = optUint(m, "warmup", "run.sampling."); err != nil {
		return err
	}
	if out.Detail, err = optUint(m, "detail", "run.sampling."); err != nil {
		return err
	}
	if out.FastForward, err = optUint(m, "fastforward", "run.sampling."); err != nil {
		return err
	}
	if out.WarmTLB, err = optBool(m, "warmtlb", "run.sampling."); err != nil {
		return err
	}
	return nil
}

// decodeObs fills the observability block.
func decodeObs(n node, out *Obs) error {
	if n == nil {
		return nil
	}
	m, err := wantMap(n, "obs")
	if err != nil {
		return err
	}
	if err := checkKeys(m, "obs.", "sampleEvery", "sampleDir", "watchdog", "maxCycles", "deadline"); err != nil {
		return err
	}
	if out.SampleEvery, err = optUint(m, "sampleEvery", "obs."); err != nil {
		return err
	}
	if out.SampleDir, err = optStr(m, "sampleDir", "obs."); err != nil {
		return err
	}
	if out.Watchdog, err = optUint(m, "watchdog", "obs."); err != nil {
		return err
	}
	if out.MaxCycles, err = optUint(m, "maxCycles", "obs."); err != nil {
		return err
	}
	if v, ok := m["deadline"]; ok {
		s, err := wantStr(v, "obs.deadline")
		if err != nil {
			return err
		}
		d, err := time.ParseDuration(s)
		if err != nil {
			return badField("obs.deadline", s, "must be a duration like 10m or 1h30m")
		}
		out.Deadline = d
	}
	return nil
}

// decodeOutput fills {report}.
func decodeOutput(n node, out *Output) error {
	if n == nil {
		return nil
	}
	m, err := wantMap(n, "output")
	if err != nil {
		return err
	}
	if err := checkKeys(m, "output.", "report"); err != nil {
		return err
	}
	if out.Report, err = optStr(m, "report", "output."); err != nil {
		return err
	}
	return nil
}

// ---- generic tree accessors ----

func wantMap(n node, path string) (map[string]node, error) {
	m, ok := n.(map[string]node)
	if !ok {
		return nil, badField(orRoot(path), n, "must be a mapping")
	}
	return m, nil
}

func wantList(n node, path string) ([]node, error) {
	l, ok := n.([]node)
	if !ok {
		return nil, badField(orRoot(path), n, "must be a list")
	}
	return l, nil
}

func wantStr(n node, path string) (string, error) {
	s, ok := n.(string)
	if !ok {
		return "", badField(orRoot(path), n, "must be a scalar")
	}
	return s, nil
}

func wantBool(n node, path string) (bool, error) {
	s, err := wantStr(n, path)
	if err != nil {
		return false, err
	}
	b, err := strconv.ParseBool(s)
	if err != nil {
		return false, badField(path, s, "must be true or false")
	}
	return b, nil
}

func orRoot(path string) string {
	if path == "" {
		return "(document)"
	}
	return path
}

// checkKeys rejects keys outside the schema.
func checkKeys(m map[string]node, prefix string, allowed ...string) error {
	for k := range m {
		ok := false
		for _, a := range allowed {
			if k == a {
				ok = true
				break
			}
		}
		if !ok {
			return badField(prefix+k, nil, fmt.Sprintf("unknown field (have %v)", allowed))
		}
	}
	return nil
}

func optStr(m map[string]node, key, prefix string) (string, error) {
	v, ok := m[key]
	if !ok {
		return "", nil
	}
	return wantStr(v, prefix+key)
}

func optBool(m map[string]node, key, prefix string) (bool, error) {
	v, ok := m[key]
	if !ok {
		return false, nil
	}
	return wantBool(v, prefix+key)
}

func optInt(m map[string]node, key, prefix string) (int, error) {
	v, ok := m[key]
	if !ok {
		return 0, nil
	}
	s, err := wantStr(v, prefix+key)
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, badField(prefix+key, s, "must be an integer")
	}
	return n, nil
}

func optUint(m map[string]node, key, prefix string) (uint64, error) {
	v, ok := m[key]
	if !ok {
		return 0, nil
	}
	s, err := wantStr(v, prefix+key)
	if err != nil {
		return 0, err
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, badField(prefix+key, s, "must be a non-negative integer")
	}
	return n, nil
}

func strList(n node, path string) ([]string, error) {
	l, err := wantList(n, path)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(l))
	for i, e := range l {
		s, ok := e.(string)
		if !ok {
			return nil, badField(fmt.Sprintf("%s[%d]", path, i), e, "must be a scalar")
		}
		out[i] = s
	}
	return out, nil
}

func optStrList(m map[string]node, key, prefix string) ([]string, error) {
	v, ok := m[key]
	if !ok {
		return nil, nil
	}
	return strList(v, prefix+key)
}
