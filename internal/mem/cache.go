// Package mem models the GPU's physically addressed cache hierarchy: the
// set-associative cache structure shared by L1 and L2, the interconnect, and
// the DRAM channels behind each memory partition. Timing uses the analytic
// port model from internal/engine; tag state is exact (true LRU).
package mem

// Line identifies a cache line by physical line address (PA >> lineShift).
type Line = uint64

type way struct {
	tag   Line
	valid bool
	// allocWarp remembers which warp allocated the line; CCWS attributes
	// evictions to it when filling victim tag arrays (paper figure 12).
	allocWarp int
	lastUse   uint64
}

// Eviction describes a line displaced by a fill.
type Eviction struct {
	Tag       Line
	AllocWarp int
}

// Cache is an exact-state set-associative cache with true LRU replacement.
// It tracks tags only (data values live in vm.PhysMem); hit/miss decisions
// and victim attribution are exact.
type Cache struct {
	sets      [][]way
	setMask   uint64
	lineShift uint
	tick      uint64
}

// NewCache builds a cache of totalBytes capacity with the given line size
// and associativity. Geometry must divide evenly and the set count must be
// a power of two.
func NewCache(totalBytes, lineSize, assoc int) *Cache {
	if totalBytes%(lineSize*assoc) != 0 {
		panic("mem: cache geometry does not divide")
	}
	numSets := totalBytes / (lineSize * assoc)
	if numSets&(numSets-1) != 0 {
		panic("mem: set count must be a power of two")
	}
	shift := uint(0)
	for 1<<shift < lineSize {
		shift++
	}
	if 1<<shift != lineSize {
		panic("mem: line size must be a power of two")
	}
	sets := make([][]way, numSets)
	backing := make([]way, numSets*assoc)
	for i := range sets {
		sets[i] = backing[i*assoc : (i+1)*assoc]
	}
	return &Cache{sets: sets, setMask: uint64(numSets - 1), lineShift: shift}
}

// LineShift returns log2(line size).
func (c *Cache) LineShift() uint { return c.lineShift }

// LineOf maps a physical address to its line identifier.
func (c *Cache) LineOf(pa uint64) Line { return pa >> c.lineShift }

func (c *Cache) set(line Line) []way { return c.sets[line&c.setMask] }

// Probe reports whether the line holding pa is present, without changing
// replacement state.
func (c *Cache) Probe(pa uint64) bool {
	line := c.LineOf(pa)
	for i := range c.set(line) {
		if w := &c.set(line)[i]; w.valid && w.tag == line {
			return true
		}
	}
	return false
}

// Access looks up pa and, on a miss, fills the line (allocate-on-miss for
// loads and stores alike). warp attributes the fill for CCWS. It returns
// whether the access hit and, when a valid line was displaced, the eviction.
func (c *Cache) Access(pa uint64, warp int) (hit bool, ev Eviction, evicted bool) {
	line := c.LineOf(pa)
	c.tick++
	set := c.set(line)
	victim := 0
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == line {
			w.lastUse = c.tick
			return true, Eviction{}, false
		}
		if !set[victim].valid {
			continue // keep first invalid way as victim
		}
		if !w.valid || w.lastUse < set[victim].lastUse {
			victim = i
		}
	}
	v := &set[victim]
	if v.valid {
		ev = Eviction{Tag: v.tag, AllocWarp: v.allocWarp}
		evicted = true
	}
	*v = way{tag: line, valid: true, allocWarp: warp, lastUse: c.tick}
	return false, ev, evicted
}

// Flush invalidates every line (used on TLB shootdowns and between kernels
// when simulating context switches).
func (c *Cache) Flush() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = way{}
		}
	}
}

// Occupancy returns the fraction of ways currently valid.
func (c *Cache) Occupancy() float64 {
	valid, total := 0, 0
	for _, set := range c.sets {
		for i := range set {
			total++
			if set[i].valid {
				valid++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(valid) / float64(total)
}
