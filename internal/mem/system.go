package mem

import (
	"gpummu/internal/config"
	"gpummu/internal/engine"
	"gpummu/internal/stats"
)

// Class tags a memory request with its originator so statistics can separate
// ordinary data traffic from page table walks.
type Class uint8

const (
	// ClassData is a load/store issued by a shader core.
	ClassData Class = iota
	// ClassWalk is a page-table-walk reference issued by a PTW.
	ClassWalk
)

// System is the shared memory side of the machine: interconnect, sliced L2,
// and DRAM channels, one per memory partition (paper: 8 channels with
// 128 KB of L2 each). Shader cores call Access for every L1 miss; page
// table walkers call it for every walk reference (walks bypass the L1, as
// in the paper, but hit in the shared L2).
type System struct {
	cfg    config.Hardware
	l2     []*Cache
	l2Res  []*engine.SlottedResource
	dram   []*engine.SlottedResource
	icnt   *engine.SlottedResource
	st     *stats.Sim
	slices []SliceStat
}

// SliceStat is one L2 slice's traffic breakdown. The counters are plain
// field increments on the Access path (always on: the per-partition
// breakdown cannot be reconstructed from the flat aggregate afterwards) and
// are only written from serial commit phases, so they are exact for any
// -par worker count.
type SliceStat struct {
	Accesses uint64 `json:"accesses"`
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Walks    uint64 `json:"walks"` // page-table-walk references routed here
}

// NewSystem builds the memory system for the given machine configuration,
// recording statistics into st.
func NewSystem(cfg config.Hardware, st *stats.Sim) *System {
	s := &System{cfg: cfg, st: st}
	s.l2 = make([]*Cache, cfg.NumPartitions)
	s.l2Res = make([]*engine.SlottedResource, cfg.NumPartitions)
	s.dram = make([]*engine.SlottedResource, cfg.NumPartitions)
	const window = 32
	for i := 0; i < cfg.NumPartitions; i++ {
		s.l2[i] = NewCache(cfg.L2BytesPerPart, cfg.L1LineSize, cfg.L2Assoc)
		s.l2Res[i] = engine.NewSlottedResource(1, window)
		s.dram[i] = engine.NewSlottedResource(1, window)
	}
	// The interconnect has one port per core cluster in GPGPU-Sim; a port
	// per two cores approximates its aggregate bandwidth.
	ports := cfg.NumCores/2 + 1
	s.icnt = engine.NewSlottedResource(ports, window)
	s.slices = make([]SliceStat, cfg.NumPartitions)
	return s
}

// Partition maps a physical address to its memory partition, interleaving
// at cache-line granularity as GPGPU-Sim does.
func (s *System) Partition(pa uint64) int {
	line := pa >> s.l2[0].lineShift
	return int(line % uint64(len(s.l2)))
}

// Access sends one cache-line request (an L1 miss or a walk reference) into
// the memory system at cycle now and returns the cycle its data is back at
// the requester, plus whether it hit in the L2.
func (s *System) Access(now engine.Cycle, pa uint64, class Class) (done engine.Cycle, l2hit bool) {
	part := s.Partition(pa)

	// Request traverses the interconnect.
	reqStart := s.icnt.Acquire(now, 1)
	atL2 := reqStart + engine.Cycle(s.cfg.ICNTLatency)

	// L2 lookup.
	l2Start := s.l2Res[part].Acquire(atL2, 2)
	hit, _, _ := s.l2[part].Access(pa, -1)
	s.st.L2Accesses.Inc()
	sl := &s.slices[part]
	sl.Accesses++
	if hit {
		sl.Hits++
	} else {
		sl.Misses++
	}
	if class == ClassWalk {
		sl.Walks++
	}
	dataReady := l2Start + engine.Cycle(s.cfg.L2Latency)
	if hit {
		s.st.L2Hits.Inc()
	} else {
		s.st.L2Misses.Inc()
		// DRAM access behind the same partition.
		dramStart := s.dram[part].Acquire(dataReady, s.cfg.DRAMBusy)
		dataReady = dramStart + engine.Cycle(s.cfg.DRAMLatency)
	}

	// Response traverses the interconnect back.
	respStart := s.icnt.Acquire(dataReady, 1)
	done = respStart + engine.Cycle(s.cfg.ICNTLatency)

	if class == ClassWalk && hit {
		s.st.WalkCacheHits.Inc()
	}
	return done, hit
}

// L2Probe reports whether pa is currently present in its L2 slice, without
// updating replacement state or timing. The PTW scheduler uses it to order
// same-line walk references.
func (s *System) L2Probe(pa uint64) bool {
	return s.l2[s.Partition(pa)].Probe(pa)
}

// LineShift returns log2 of the machine's cache line size.
func (s *System) LineShift() uint { return s.l2[0].LineShift() }

// Prune discards contention bookkeeping for cycles before now (the global
// clock is monotonic, so no request will ever target them again).
func (s *System) Prune(now engine.Cycle) {
	s.icnt.PruneBefore(now)
	for i := range s.l2Res {
		s.l2Res[i].PruneBefore(now)
		s.dram[i].PruneBefore(now)
	}
}

// Reset returns the memory system to its post-construction state: L2
// slices flushed, contention bookkeeping and prune floors cleared, per-
// slice counters zeroed. Warm-start paths that rerun a kernel from cycle 0
// on an already-built system call this so the rerun observes exactly the
// free capacity a fresh system would (Prune/PruneBefore floors from the
// previous run would otherwise clamp early Acquires; see
// engine.SlottedResource.Reset).
func (s *System) Reset() {
	s.FlushL2()
	s.icnt.Reset()
	for i := range s.l2Res {
		s.l2Res[i].Reset()
		s.dram[i].Reset()
	}
	for i := range s.slices {
		s.slices[i] = SliceStat{}
	}
}

// SliceStats returns the per-L2-slice traffic counters, one per memory
// partition. The slice is live (counters keep advancing); callers must not
// mutate it.
func (s *System) SliceStats() []SliceStat { return s.slices }

// IcntUtilization reports interconnect port occupancy over cycles
// [from, to). Approximate for observability: windows already pruned read as
// idle.
func (s *System) IcntUtilization(from, to engine.Cycle) float64 {
	return s.icnt.Utilization(from, to)
}

// DRAMUtilization reports mean DRAM channel occupancy over cycles
// [from, to), averaged across partitions. Approximate like IcntUtilization.
func (s *System) DRAMUtilization(from, to engine.Cycle) float64 {
	var sum float64
	for _, d := range s.dram {
		sum += d.Utilization(from, to)
	}
	return sum / float64(len(s.dram))
}

// FlushL2 invalidates all L2 slices.
func (s *System) FlushL2() {
	for _, c := range s.l2 {
		c.Flush()
	}
}
