package mem

import (
	"testing"

	"gpummu/internal/config"
	"gpummu/internal/engine"
	"gpummu/internal/stats"
)

func newTestSystem() (*System, *stats.Sim) {
	st := &stats.Sim{}
	return NewSystem(config.SmallTest(), st), st
}

func TestSystemColdThenWarm(t *testing.T) {
	s, st := newTestSystem()
	cfg := config.SmallTest()

	done1, hit1 := s.Access(0, 0x10000, ClassData)
	if hit1 {
		t.Fatal("cold access hit L2")
	}
	minCold := engine.Cycle(2*cfg.ICNTLatency + cfg.L2Latency + cfg.DRAMLatency)
	if done1 < minCold {
		t.Fatalf("cold access done at %d, want >= %d", done1, minCold)
	}

	done2, hit2 := s.Access(done1, 0x10000, ClassData)
	if !hit2 {
		t.Fatal("warm access missed L2")
	}
	if done2-done1 >= done1 {
		t.Fatalf("warm access latency %d not below cold %d", done2-done1, done1)
	}
	if st.L2Accesses != 2 || st.L2Hits != 1 || st.L2Misses != 1 {
		t.Fatalf("L2 stats = %d/%d/%d", st.L2Accesses, st.L2Hits, st.L2Misses)
	}
}

func TestSystemPartitionInterleave(t *testing.T) {
	s, _ := newTestSystem()
	lineSize := uint64(1) << s.LineShift()
	p0 := s.Partition(0)
	p1 := s.Partition(lineSize)
	if p0 == p1 {
		t.Fatal("adjacent lines land on the same partition")
	}
	if s.Partition(0) != s.Partition(63) {
		t.Fatal("same line split across partitions")
	}
}

func TestSystemWalkClassCountsWalkCacheHits(t *testing.T) {
	s, st := newTestSystem()
	s.Access(0, 0x20000, ClassWalk) // cold: no walk$ hit
	if st.WalkCacheHits != 0 {
		t.Fatal("cold walk counted as walk cache hit")
	}
	s.Access(1000, 0x20000, ClassWalk)
	if st.WalkCacheHits != 1 {
		t.Fatalf("warm walk not counted: %d", st.WalkCacheHits)
	}
}

func TestSystemPartitionRoundRobin(t *testing.T) {
	s, _ := newTestSystem()
	cfg := config.SmallTest()
	lineSize := uint64(1) << s.LineShift()
	// Consecutive lines must cycle through every partition in order, and
	// every byte of a line must map with its line.
	for i := 0; i < 4*cfg.NumPartitions; i++ {
		pa := uint64(i) * lineSize
		if got, want := s.Partition(pa), i%cfg.NumPartitions; got != want {
			t.Fatalf("line %d: partition %d, want %d", i, got, want)
		}
		for _, off := range []uint64{1, lineSize / 2, lineSize - 1} {
			if s.Partition(pa+off) != s.Partition(pa) {
				t.Fatalf("line %d split across partitions at offset %d", i, off)
			}
		}
	}
}

func TestSystemDataClassNeverCountsWalkCacheHits(t *testing.T) {
	s, st := newTestSystem()
	s.Access(0, 0x40000, ClassData)
	done, hit := s.Access(1000, 0x40000, ClassData) // warm data hit
	if !hit {
		t.Fatal("warm access missed L2")
	}
	if st.WalkCacheHits != 0 {
		t.Fatalf("data-class hit counted as walk cache hit: %d", st.WalkCacheHits)
	}
	if st.L2Hits != 1 || st.L2Misses != 1 || st.L2Accesses != 2 {
		t.Fatalf("L2 stats = %d/%d/%d, want 1/1/2", st.L2Hits, st.L2Misses, st.L2Accesses)
	}
	if done <= 1000 {
		t.Fatalf("hit done at %d, want after issue cycle", done)
	}
}

// TestSystemPruneInvariant pins the contract Run's periodic Prune relies
// on: dropping contention bookkeeping for past cycles must never change
// the outcome of any subsequent Access. Two identical systems replay the
// same request stream; one prunes aggressively between requests.
func TestSystemPruneInvariant(t *testing.T) {
	st1, st2 := &stats.Sim{}, &stats.Sim{}
	s1 := NewSystem(config.SmallTest(), st1)
	s2 := NewSystem(config.SmallTest(), st2)
	cfg := config.SmallTest()
	lineSize := uint64(1) << s1.LineShift()

	now := engine.Cycle(0)
	for i := 0; i < 200; i++ {
		// A mix of reuse (hits), fresh lines (misses), and channel
		// conflicts, issued at a creeping clock like a real run.
		pa := uint64(0x50000) + uint64(i%17)*lineSize*uint64(cfg.NumPartitions) + uint64(i%3)*lineSize
		d1, h1 := s1.Access(now, pa, ClassData)
		d2, h2 := s2.Access(now, pa, ClassData)
		if d1 != d2 || h1 != h2 {
			t.Fatalf("req %d: pruned system diverged: done %d/%d hit %v/%v", i, d2, d1, h2, h1)
		}
		if i%5 == 0 {
			s2.Prune(now) // the global clock is monotonic: now is a safe bound
		}
		now += engine.Cycle(1 + i%7)
	}
	if st1.L2Accesses != st2.L2Accesses || st1.L2Hits != st2.L2Hits || st1.L2Misses != st2.L2Misses {
		t.Fatalf("L2 stats diverged after pruning: %d/%d/%d vs %d/%d/%d",
			st1.L2Accesses, st1.L2Hits, st1.L2Misses, st2.L2Accesses, st2.L2Hits, st2.L2Misses)
	}
}

func TestSystemDRAMContention(t *testing.T) {
	s, _ := newTestSystem()
	cfg := config.SmallTest()
	lineSize := uint64(1) << s.LineShift()
	stride := lineSize * uint64(cfg.NumPartitions) // all to one partition

	var last engine.Cycle
	for i := 0; i < 64; i++ {
		done, _ := s.Access(0, uint64(0x100000)+uint64(i)*stride, ClassData)
		if done > last {
			last = done
		}
	}
	// 64 misses through one DRAM channel must serialise at DRAMBusy each.
	minSerial := engine.Cycle(64 * cfg.DRAMBusy)
	if last < minSerial {
		t.Fatalf("64 same-channel misses finished by %d, want >= %d", last, minSerial)
	}
}

// TestSystemResetReproducesFreshTimeline pins the warm-reuse contract
// checkpoint restore depends on: after a run (including its periodic
// Prunes), Reset must return the system to a state indistinguishable from
// a freshly constructed one — the same request stream replays with
// identical completion times and hit/miss outcomes.
func TestSystemResetReproducesFreshTimeline(t *testing.T) {
	st1, st2 := &stats.Sim{}, &stats.Sim{}
	warm := NewSystem(config.SmallTest(), st1)
	fresh := NewSystem(config.SmallTest(), st2)
	cfg := config.SmallTest()
	lineSize := uint64(1) << warm.LineShift()

	// Dirty the warm system with a first "run": traffic plus aggressive
	// pruning, so both the L2 contents and the prune floors are nontrivial.
	now := engine.Cycle(0)
	for i := 0; i < 150; i++ {
		pa := uint64(0x90000) + uint64(i%13)*lineSize*uint64(cfg.NumPartitions) + uint64(i%2)*lineSize
		warm.Access(now, pa, ClassData)
		if i%4 == 0 {
			warm.Prune(now)
		}
		now += engine.Cycle(1 + i%5)
	}
	warm.Prune(now)
	warm.Reset()

	// Replay one identical stream on both; any divergence means Reset left
	// residue (a stale prune floor would delay early accesses, a surviving
	// L2 line would turn a miss into a hit).
	now = 0
	for i := 0; i < 200; i++ {
		pa := uint64(0x50000) + uint64(i%17)*lineSize*uint64(cfg.NumPartitions) + uint64(i%3)*lineSize
		d1, h1 := warm.Access(now, pa, ClassData)
		d2, h2 := fresh.Access(now, pa, ClassData)
		if d1 != d2 || h1 != h2 {
			t.Fatalf("req %d: reset system diverged from fresh: done %d/%d hit %v/%v", i, d1, d2, h1, h2)
		}
		now += engine.Cycle(1 + i%7)
	}
	for i, sl := range warm.SliceStats() {
		if f := fresh.SliceStats()[i]; sl != f {
			t.Fatalf("slice %d counters diverged after reset: %+v vs %+v", i, sl, f)
		}
	}
}

// TestSystemStalePruneFloorClampsAcquires documents the hazard Reset
// exists for: after Prune(N), an access issued at an earlier cycle is
// clamped to the floor rather than reproducing the fresh timeline. A
// warm-start path that skipped Reset would hit exactly this.
func TestSystemStalePruneFloorClampsAcquires(t *testing.T) {
	s, _ := newTestSystem()
	fresh, _ := newTestSystem()

	s.Prune(100_000)
	dStale, _ := s.Access(0, 0x70000, ClassData)
	dFresh, _ := fresh.Access(0, 0x70000, ClassData)
	if dStale < 100_000 {
		t.Fatalf("stale floor did not clamp: access done at %d, floor 100000", dStale)
	}
	if dStale == dFresh {
		t.Fatal("expected the stale floor to delay the access; test is vacuous")
	}

	s.Reset()
	dReset, _ := s.Access(0, 0x70000, ClassData)
	if dReset != dFresh {
		t.Fatalf("post-Reset access done at %d, fresh system at %d", dReset, dFresh)
	}
}

func TestSystemL2Probe(t *testing.T) {
	s, _ := newTestSystem()
	if s.L2Probe(0x30000) {
		t.Fatal("probe hit on cold L2")
	}
	s.Access(0, 0x30000, ClassData)
	if !s.L2Probe(0x30000) {
		t.Fatal("probe missed resident line")
	}
	s.FlushL2()
	if s.L2Probe(0x30000) {
		t.Fatal("line survived FlushL2")
	}
}
