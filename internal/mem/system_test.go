package mem

import (
	"testing"

	"gpummu/internal/config"
	"gpummu/internal/engine"
	"gpummu/internal/stats"
)

func newTestSystem() (*System, *stats.Sim) {
	st := &stats.Sim{}
	return NewSystem(config.SmallTest(), st), st
}

func TestSystemColdThenWarm(t *testing.T) {
	s, st := newTestSystem()
	cfg := config.SmallTest()

	done1, hit1 := s.Access(0, 0x10000, ClassData)
	if hit1 {
		t.Fatal("cold access hit L2")
	}
	minCold := engine.Cycle(2*cfg.ICNTLatency + cfg.L2Latency + cfg.DRAMLatency)
	if done1 < minCold {
		t.Fatalf("cold access done at %d, want >= %d", done1, minCold)
	}

	done2, hit2 := s.Access(done1, 0x10000, ClassData)
	if !hit2 {
		t.Fatal("warm access missed L2")
	}
	if done2-done1 >= done1 {
		t.Fatalf("warm access latency %d not below cold %d", done2-done1, done1)
	}
	if st.L2Accesses != 2 || st.L2Hits != 1 || st.L2Misses != 1 {
		t.Fatalf("L2 stats = %d/%d/%d", st.L2Accesses, st.L2Hits, st.L2Misses)
	}
}

func TestSystemPartitionInterleave(t *testing.T) {
	s, _ := newTestSystem()
	lineSize := uint64(1) << s.LineShift()
	p0 := s.Partition(0)
	p1 := s.Partition(lineSize)
	if p0 == p1 {
		t.Fatal("adjacent lines land on the same partition")
	}
	if s.Partition(0) != s.Partition(63) {
		t.Fatal("same line split across partitions")
	}
}

func TestSystemWalkClassCountsWalkCacheHits(t *testing.T) {
	s, st := newTestSystem()
	s.Access(0, 0x20000, ClassWalk) // cold: no walk$ hit
	if st.WalkCacheHits != 0 {
		t.Fatal("cold walk counted as walk cache hit")
	}
	s.Access(1000, 0x20000, ClassWalk)
	if st.WalkCacheHits != 1 {
		t.Fatalf("warm walk not counted: %d", st.WalkCacheHits)
	}
}

func TestSystemDRAMContention(t *testing.T) {
	s, _ := newTestSystem()
	cfg := config.SmallTest()
	lineSize := uint64(1) << s.LineShift()
	stride := lineSize * uint64(cfg.NumPartitions) // all to one partition

	var last engine.Cycle
	for i := 0; i < 64; i++ {
		done, _ := s.Access(0, uint64(0x100000)+uint64(i)*stride, ClassData)
		if done > last {
			last = done
		}
	}
	// 64 misses through one DRAM channel must serialise at DRAMBusy each.
	minSerial := engine.Cycle(64 * cfg.DRAMBusy)
	if last < minSerial {
		t.Fatalf("64 same-channel misses finished by %d, want >= %d", last, minSerial)
	}
}

func TestSystemL2Probe(t *testing.T) {
	s, _ := newTestSystem()
	if s.L2Probe(0x30000) {
		t.Fatal("probe hit on cold L2")
	}
	s.Access(0, 0x30000, ClassData)
	if !s.L2Probe(0x30000) {
		t.Fatal("probe missed resident line")
	}
	s.FlushL2()
	if s.L2Probe(0x30000) {
		t.Fatal("line survived FlushL2")
	}
}
