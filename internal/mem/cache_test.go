package mem

import (
	"testing"
	"testing/quick"
)

func TestCacheHitAfterFill(t *testing.T) {
	c := NewCache(8<<10, 128, 8)
	if hit, _, _ := c.Access(0x1000, 1); hit {
		t.Fatal("cold access hit")
	}
	if hit, _, _ := c.Access(0x1000, 1); !hit {
		t.Fatal("second access missed")
	}
	// Same line, different offset.
	if hit, _, _ := c.Access(0x1040, 1); !hit {
		t.Fatal("same-line access missed")
	}
	// Next line.
	if hit, _, _ := c.Access(0x1080, 1); hit {
		t.Fatal("next-line access hit")
	}
}

func TestCacheLRUReplacement(t *testing.T) {
	// 2-way cache with 2 sets: lines mapping to set 0 are multiples of
	// 2*lineSize.
	c := NewCache(4*128, 128, 2)
	a, b, d := uint64(0), uint64(2*128), uint64(4*128) // all set 0
	c.Access(a, 0)
	c.Access(b, 0)
	c.Access(a, 0) // a is MRU, b is LRU
	hit, ev, evicted := c.Access(d, 0)
	if hit || !evicted {
		t.Fatalf("expected miss+eviction, hit=%v evicted=%v", hit, evicted)
	}
	if ev.Tag != c.LineOf(b) {
		t.Fatalf("evicted %#x, want %#x (LRU)", ev.Tag, c.LineOf(b))
	}
	if hit, _, _ := c.Access(a, 0); !hit {
		t.Fatal("a should have survived")
	}
}

func TestCacheEvictionAttribution(t *testing.T) {
	c := NewCache(2*128, 128, 2) // 1 set, 2 ways
	c.Access(0, 7)
	c.Access(128, 8)
	_, ev, evicted := c.Access(256, 9)
	if !evicted || ev.AllocWarp != 7 {
		t.Fatalf("eviction attribution = %+v (evicted=%v), want warp 7", ev, evicted)
	}
}

func TestCacheProbeDoesNotTouch(t *testing.T) {
	c := NewCache(2*128, 128, 2)
	c.Access(0, 0)   // way A
	c.Access(128, 0) // way B; A is LRU
	if !c.Probe(0) {
		t.Fatal("probe missed resident line")
	}
	// Probe must not refresh recency: filling a third line still evicts A.
	_, ev, _ := c.Access(256, 0)
	if ev.Tag != 0 {
		t.Fatalf("probe refreshed recency; evicted %#x", ev.Tag)
	}
}

func TestCacheFlush(t *testing.T) {
	c := NewCache(8<<10, 128, 8)
	c.Access(0x4000, 0)
	c.Flush()
	if c.Probe(0x4000) {
		t.Fatal("line survived flush")
	}
	if c.Occupancy() != 0 {
		t.Fatal("occupancy nonzero after flush")
	}
}

// TestCacheInclusionQuick: after any access the line is present; capacity
// never exceeds ways*sets.
func TestCacheInclusionQuick(t *testing.T) {
	c := NewCache(4<<10, 128, 4)
	f := func(addr uint32, warp uint8) bool {
		pa := uint64(addr)
		c.Access(pa, int(warp))
		return c.Probe(pa) && c.Occupancy() <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheGeometryPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewCache(1000, 128, 8) }, // doesn't divide
		func() { NewCache(3*128, 128, 1) },
		func() { NewCache(8<<10, 100, 8) }, // line not power of two
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad geometry accepted")
				}
			}()
			fn()
		}()
	}
}
