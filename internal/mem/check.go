package mem

import "fmt"

// CheckInvariants verifies address-home agreement across the sliced L2:
// every valid line cached in slice i must map back to partition i under the
// line-interleaved address hash, or a request for that address would probe a
// different slice and never see the cached copy. Read-only (no replacement
// or timing state is touched); intended for the debug-build invariant
// checker, not the hot path.
func (s *System) CheckInvariants() error {
	n := uint64(len(s.l2))
	for si, c := range s.l2 {
		for _, set := range c.sets {
			for i := range set {
				w := &set[i]
				if w.valid && w.tag%n != uint64(si) {
					return fmt.Errorf("mem: line %#x cached in L2 slice %d but homes at slice %d",
						w.tag, si, w.tag%n)
				}
			}
		}
	}
	return nil
}
