package mem

import (
	"strings"
	"testing"

	"gpummu/internal/config"
	"gpummu/internal/stats"
)

// TestCheckInvariantsSliceHoming: a freshly exercised system passes; a line
// planted in a slice that is not its home is flagged.
func TestCheckInvariantsSliceHoming(t *testing.T) {
	cfg := config.SmallTest()
	st := &stats.Sim{}
	s := NewSystem(cfg, st)
	if len(s.l2) < 2 {
		t.Fatalf("SmallTest has %d partitions, need >= 2", len(s.l2))
	}

	// Legitimate traffic across both slices must audit clean.
	line := uint64(cfg.L1LineSize)
	for i := uint64(0); i < 64; i++ {
		s.Access(0, i*line, ClassData)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("clean system fails audit: %v", err)
	}

	// Plant the line for pa=lineSize (homes at slice 1) into slice 0.
	s.l2[0].Access(line, -1)
	err := s.CheckInvariants()
	if err == nil {
		t.Fatal("audit missed a line cached in the wrong slice")
	}
	if !strings.Contains(err.Error(), "slice") {
		t.Fatalf("unhelpful audit error: %v", err)
	}
}
