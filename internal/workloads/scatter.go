package workloads

import (
	"fmt"

	"gpummu/internal/kernels"
)

// warpScramble is the odd multiplier used to scatter warp base indices.
// Multiplication by an odd constant is a bijection modulo any power of two,
// so every element is still covered exactly once.
const warpScramble = 0x9E3779B1

// emitScatteredIndex emits code computing a scattered element index into
// dst: consecutive lanes stay consecutive (so warp accesses remain
// coalesced, keeping page divergence low like the paper's regular
// workloads), but warp *groups* land far apart in the element space.
//
// This reproduces, at simulable footprints, the paper's key property that
// a core's 48 resident warps touch far more distinct pages than a
// 128-entry TLB holds: with linear indexing a resident thread block covers
// a handful of pages, which no >1 GB-footprint GPGPU run ever does.
// DESIGN.md section 4 documents this substitution.
//
// group warps stay contiguous (group must be a power of two); a larger
// group softens TLB pressure, modelling workloads with more spatial reuse.
//
//	g    = (tid >> 5) / group
//	off  = (tid >> 5) % group
//	base = (((g * scramble) % (nwarps/group)) * group + off) * 32
//	dst  = base + lane
//
// nelems must be a power of two multiple of 32*group.
func emitScatteredIndex(b *kernels.Builder, dst, tmp kernels.Reg, nelems, group int) {
	nwarps := nelems / 32
	if group < 1 {
		group = 1
	}
	groups := nwarps / group
	if groups <= 0 || groups&(groups-1) != 0 || group&(group-1) != 0 {
		panic(fmt.Sprintf("workloads: scattered index needs power-of-two geometry (nelems=%d group=%d)", nelems, group))
	}
	gShift := int64(0)
	for 1<<gShift < group {
		gShift++
	}
	b.Special(dst, kernels.SpecGlobalTID)
	b.ShrImm(dst, dst, 5)
	// tmp = warp % group (offset inside the contiguous run)
	b.AndImm(tmp, dst, int64(group-1))
	// dst = scrambled group id
	b.ShrImm(dst, dst, gShift)
	b.MulImm(dst, dst, warpScramble)
	b.AndImm(dst, dst, int64(groups-1))
	// dst = (dst*group + tmp) * 32
	b.ShlImm(dst, dst, gShift)
	b.Add(dst, dst, tmp)
	b.ShlImm(dst, dst, 5)
	// + lane
	b.Special(tmp, kernels.SpecLane)
	b.Add(dst, dst, tmp)
}

// scatteredIndex is the host-side mirror of emitScatteredIndex, used by
// functional checks.
func scatteredIndex(tid, nelems, group int) int {
	if group < 1 {
		group = 1
	}
	nwarps := nelems / 32
	groups := nwarps / group
	w := tid >> 5
	g := ((w / group * warpScramble) & (groups - 1)) * group
	return (g+w%group)*32 + tid&31
}
