package workloads

import (
	"fmt"

	"gpummu/internal/kernels"
)

// buildKMeans reproduces the Rodinia kmeans assignment kernel: each thread
// computes the squared distance of its point to every centroid and records
// the closest. Like Rodinia, features are stored feature-major (column
// arrays of all points), so a thread's features sit megabytes apart; with
// warp-scattered point assignment the per-core page working set cycles far
// beyond a 128-entry TLB each pass — the moderate-miss-rate streaming
// profile the paper reports for kmeans.
func init() { Register("kmeans", buildKMeans) }

func buildKMeans(env *Env) (*Workload, error) {
	p := env.scale(4<<10, 256<<10, 1<<20, 4<<20)
	f := env.scale(4, 4, 4, 8)
	k := env.scale(3, 4, 4, 8)

	// Feature-major: column c holds feature c of every point.
	points := make([]uint32, p*f)
	for i := range points {
		points[i] = uint32(env.RNG.Uint64n(1 << 16))
	}
	cents := make([]uint32, k*f) // centroid-major (small, cached)
	for i := range cents {
		cents[i] = uint32(env.RNG.Uint64n(1 << 16))
	}

	as := env.AS
	ptsVA := as.Malloc(uint64(len(points)) * 4)
	cenVA := as.Malloc(uint64(len(cents)) * 4)
	asgVA := as.Malloc(uint64(p) * 8)
	for i, v := range points {
		as.Write32(ptsVA+uint64(i)*4, v)
	}
	for i, v := range cents {
		as.Write32(cenVA+uint64(i)*4, v)
	}

	prog := kmeansKernel(p, f, k)
	blockDim := 256
	l := &kernels.Launch{Program: prog, Grid: gridFor(p, blockDim), BlockDim: blockDim}
	l.Params[0] = ptsVA
	l.Params[1] = cenVA
	l.Params[2] = asgVA

	check := func() error {
		// Spot-check assignments against a host-side computation.
		for _, pi := range []int{0, p / 3, p - 1} {
			best, bestK := ^uint64(0), 0
			for ki := 0; ki < k; ki++ {
				var acc uint64
				for fi := 0; fi < f; fi++ {
					a := uint64(points[fi*p+pi])
					b := uint64(cents[ki*f+fi])
					d := a - b
					acc += d * d
				}
				if acc < best {
					best, bestK = acc, ki
				}
			}
			got := as.Read64(asgVA + uint64(pi)*8)
			if got != uint64(bestK) {
				return fmt.Errorf("kmeans: point %d assigned %d, want %d", pi, got, bestK)
			}
		}
		return nil
	}
	return &Workload{AS: as, Launch: l, Check: check}, nil
}

// kmeansKernel assembles the assignment kernel over feature-major data.
func kmeansKernel(p, f, k int) *kernels.Program {
	const (
		rTid  kernels.Reg = 0
		rCond kernels.Reg = 2
		rKi   kernels.Reg = 5
		rFi   kernels.Reg = 6
		rAcc  kernels.Reg = 7
		rBest kernels.Reg = 8
		rBK   kernels.Reg = 9
		rPtA  kernels.Reg = 10 // running point feature address (stride P*4)
		rCnA  kernels.Reg = 11 // running centroid feature address
		rA    kernels.Reg = 12
		rB    kernels.Reg = 13
		rD    kernels.Reg = 14
		rTmp  kernels.Reg = 15
		rBase kernels.Reg = 16
		rPt   kernels.Reg = 17 // scattered point index
	)
	b := kernels.NewBuilder("kmeans")
	b.Special(rTid, kernels.SpecGlobalTID)
	b.SltuImm(rCond, rTid, int64(p))
	b.Bz(rCond, "done", "done")
	emitScatteredIndex(b, rPt, rTmp, p, 2)

	b.MovImm(rBest, -1) // max uint64
	b.MovImm(rBK, 0)
	b.MovImm(rKi, 0)

	b.Label("kloop")
	b.MovImm(rAcc, 0)
	b.MovImm(rFi, 0)
	// centroid cursor = cen + ki*F*4
	b.MulImm(rTmp, rKi, int64(f)*4)
	b.Special(rBase, kernels.SpecParam1)
	b.Add(rCnA, rTmp, rBase)
	// point cursor = pts + p*4 (column 0); advances by P*4 per feature
	b.ShlImm(rTmp, rPt, 2)
	b.Special(rBase, kernels.SpecParam0)
	b.Add(rPtA, rTmp, rBase)

	b.Label("floop")
	b.Ld(rA, rPtA, 0, 4)
	b.Ld(rB, rCnA, 0, 4)
	b.Sub(rD, rA, rB)
	b.Mul(rD, rD, rD)
	b.Add(rAcc, rAcc, rD)
	b.AddImm(rPtA, rPtA, int64(p)*4)
	b.AddImm(rCnA, rCnA, 4)
	b.AddImm(rFi, rFi, 1)
	b.SltuImm(rCond, rFi, int64(f))
	b.Bnz(rCond, "floop", "fend")
	b.Label("fend")

	// best update
	b.Sltu(rCond, rAcc, rBest)
	b.Bz(rCond, "kNext", "kNext")
	b.Mov(rBest, rAcc)
	b.Mov(rBK, rKi)
	b.Label("kNext")
	b.AddImm(rKi, rKi, 1)
	b.SltuImm(rCond, rKi, int64(k))
	b.Bnz(rCond, "kloop", "kend")
	b.Label("kend")

	// assign[p] = bestK
	b.ShlImm(rTmp, rPt, 3)
	b.Special(rBase, kernels.SpecParam2)
	b.Add(rTmp, rTmp, rBase)
	b.St(rTmp, 0, rBK, 8)

	b.Label("done")
	b.Exit()
	return b.MustBuild()
}
