package workloads

import (
	"fmt"

	"gpummu/internal/kernels"
)

// buildMummer reproduces the mummergpu access pattern: every thread matches
// a DNA read against a suffix trie, chasing child pointers from node to
// node. Each step is a data-dependent load at an essentially random
// location, which is why mummergpu has the worst page divergence in the
// paper (average above 8, maximum 32 — warp lanes walk unrelated subtrees).
func init() { Register("mummergpu", buildMummer) }

func buildMummer(env *Env) (*Workload, error) {
	queries := env.scale(2<<10, 64<<10, 256<<10, 1<<20)
	qlen := env.scale(8, 12, 14, 16)
	nodes := env.scale(8<<10, 128<<10, 512<<10, 2<<20)

	// Build a random 4-ary trie by inserting random strings until the node
	// budget is exhausted. Node layout: 4 children × 8 bytes.
	type trieNode struct{ kids [4]int64 }
	trie := make([]trieNode, 1, nodes)
	for len(trie) < nodes {
		cur := 0
		for d := 0; d < qlen && len(trie) < nodes; d++ {
			c := env.RNG.Intn(4)
			if trie[cur].kids[c] == 0 {
				trie = append(trie, trieNode{})
				trie[cur].kids[c] = int64(len(trie) - 1)
			}
			cur = int(trie[cur].kids[c])
		}
	}

	qs := make([]byte, queries*qlen)
	for i := range qs {
		qs[i] = byte(env.RNG.Intn(4))
	}

	as := env.AS
	trieVA := as.Malloc(uint64(len(trie)) * 32)
	qVA := as.Malloc(uint64(len(qs)))
	outVA := as.Malloc(uint64(queries) * 8)
	for i, n := range trie {
		for c := 0; c < 4; c++ {
			as.Write64(trieVA+uint64(i)*32+uint64(c)*8, uint64(n.kids[c]))
		}
	}
	for i, v := range qs {
		as.WriteU8(qVA+uint64(i), v)
	}

	blockDim := 256
	l := &kernels.Launch{Program: mummerKernel(queries, qlen), Grid: gridFor(queries, blockDim), BlockDim: blockDim}
	l.Params[0] = trieVA
	l.Params[1] = qVA
	l.Params[2] = outVA

	match := func(q int) uint64 {
		cur := int64(0)
		for d := 0; d < qlen; d++ {
			c := qs[q*qlen+d]
			next := trie[cur].kids[c]
			if next == 0 {
				break
			}
			cur = next
		}
		return uint64(cur)
	}
	check := func() error {
		for _, t := range []int{0, queries / 2, queries - 1} {
			q := scatteredIndex(t, queries, 1)
			if got, want := as.Read64(outVA+uint64(q)*8), match(q); got != want {
				return fmt.Errorf("mummergpu: query %d reached node %d, want %d", q, got, want)
			}
		}
		return nil
	}
	return &Workload{AS: as, Launch: l, Check: check}, nil
}

// mummerKernel walks the trie:
//
//	q = scatter(tid)
//	node = 0
//	for d in 0..qlen:
//	    c = query[q*qlen+d]
//	    next = trie[node*32 + c*8]
//	    if next == 0: break
//	    node = next
//	out[q] = node
func mummerKernel(queries, qlen int) *kernels.Program {
	const (
		rTid  kernels.Reg = 0
		rQIdx kernels.Reg = 1
		rCond kernels.Reg = 2
		rD    kernels.Reg = 4
		rNode kernels.Reg = 5
		rCh   kernels.Reg = 6
		rNext kernels.Reg = 7
		rQA   kernels.Reg = 8 // running query cursor
		rTmp  kernels.Reg = 9
		rBase kernels.Reg = 10
	)
	b := kernels.NewBuilder("mummergpu")
	b.Special(rTid, kernels.SpecGlobalTID)
	b.SltuImm(rCond, rTid, int64(queries))
	b.Bz(rCond, "done", "done")
	emitScatteredIndex(b, rQIdx, rTmp, queries, 1)

	b.MulImm(rQA, rQIdx, int64(qlen))
	b.Special(rBase, kernels.SpecParam1)
	b.Add(rQA, rQA, rBase)
	b.MovImm(rNode, 0)
	b.MovImm(rD, 0)

	b.Label("loop")
	b.Ld(rCh, rQA, 0, 1)
	// next = trie[node*32 + ch*8]
	b.ShlImm(rTmp, rNode, 5)
	b.Special(rBase, kernels.SpecParam0)
	b.Add(rTmp, rTmp, rBase)
	b.ShlImm(rCh, rCh, 3)
	b.Add(rTmp, rTmp, rCh)
	b.Ld(rNext, rTmp, 0, 8)
	b.Bz(rNext, "store", "store")
	b.Mov(rNode, rNext)
	b.AddImm(rQA, rQA, 1)
	b.AddImm(rD, rD, 1)
	b.SltuImm(rCond, rD, int64(qlen))
	b.Bnz(rCond, "loop", "store")

	b.Label("store")
	b.ShlImm(rTmp, rQIdx, 3)
	b.Special(rBase, kernels.SpecParam2)
	b.Add(rTmp, rTmp, rBase)
	b.St(rTmp, 0, rNode, 8)

	b.Label("done")
	b.Exit()
	return b.MustBuild()
}
