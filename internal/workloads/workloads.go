// Package workloads re-implements the paper's six evaluation workloads —
// bfs, kmeans, streamcluster, mummergpu, pathfinder (Rodinia) and memcached
// (Wikipedia-trace key-value store) — as kernels in the simulator's SIMT
// ISA over synthetic datasets. The datasets are substitutions (we cannot
// run CUDA binaries; see DESIGN.md section 4): each preserves the address-
// stream property the paper keys on, e.g. bfs's data-dependent gathers,
// mummergpu's far-flung pointer chases, memcached's Zipf-skewed hash
// probes.
package workloads

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"gpummu/internal/engine"
	"gpummu/internal/kernels"
	"gpummu/internal/vm"
)

// Size selects the dataset scale.
type Size int

// Dataset scales. Tiny exists for unit tests; Small for benchmarks and quick
// sweeps; Medium for the figure reproductions; Large approaches the paper's
// >1 GB footprints (slow: minutes per simulation).
const (
	SizeTiny Size = iota
	SizeSmall
	SizeMedium
	SizeLarge
)

// String implements fmt.Stringer.
func (s Size) String() string {
	switch s {
	case SizeTiny:
		return "tiny"
	case SizeSmall:
		return "small"
	case SizeMedium:
		return "medium"
	case SizeLarge:
		return "large"
	}
	return fmt.Sprintf("size(%d)", int(s))
}

// Workload is a ready-to-run benchmark: an address space populated with its
// dataset and a kernel launch over it.
type Workload struct {
	Name   string
	AS     *vm.AddressSpace
	Launch *kernels.Launch

	// Check, when non-nil, validates functional results after a run
	// (used by tests to prove kernels compute what they claim).
	Check func() error
}

// Builder constructs one workload at a given scale.
type Builder func(env *Env) (*Workload, error)

// Env carries the common construction context.
type Env struct {
	Size      Size
	PageShift uint
	Seed      uint64

	AS  *vm.AddressSpace
	RNG *engine.RNG
}

// scale interpolates a per-size value.
func (e *Env) scale(tiny, small, medium, large int) int {
	switch e.Size {
	case SizeTiny:
		return tiny
	case SizeSmall:
		return small
	case SizeMedium:
		return medium
	default:
		return large
	}
}

// registry maps workload names to their constructors. Workload files
// self-register from init; Register keeps it open for extension (trace
// replays register dynamically, tests can inject synthetic workloads).
var registry = map[string]Builder{}

// Register adds a named workload constructor. Registering an empty name, a
// nil builder, a name containing the trace scheme separator, or a duplicate
// panics: registration happens at init time, where a bad entry is a
// programming error, not a runtime condition.
func Register(name string, b Builder) {
	switch {
	case name == "" || b == nil:
		panic("workloads: Register needs a name and a builder")
	case strings.Contains(name, ":"):
		panic(fmt.Sprintf("workloads: name %q: colons are reserved for the trace: scheme", name))
	case registry[name] != nil:
		panic(fmt.Sprintf("workloads: %q registered twice", name))
	}
	registry[name] = b
}

// Names returns the registered workload names, sorted. The paper's six
// evaluation workloads are always among them; pointerchase is an extra
// microbenchmark. Trace replays (see TracePrefix) are named by their file
// and therefore not listed.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// PaperSet returns the paper's six workloads in the order its figures list
// them.
func PaperSet() []string {
	return []string{"bfs", "kmeans", "streamcluster", "mummergpu", "pathfinder", "memcached"}
}

// ParseSize parses a dataset-scale name ("tiny", "small", "medium",
// "large"), the single spelling the CLIs and campaign files share.
func ParseSize(s string) (Size, error) {
	switch s {
	case "tiny":
		return SizeTiny, nil
	case "small":
		return SizeSmall, nil
	case "medium":
		return SizeMedium, nil
	case "large":
		return SizeLarge, nil
	}
	return 0, fmt.Errorf("workloads: unknown size %q (have tiny, small, medium, large)", s)
}

// errUnknown builds the canonical unknown-workload error, listing every
// valid name so CLIs and campaign validation report the same message.
func errUnknown(name string) error {
	return fmt.Errorf("workloads: unknown workload %q (have %v, or %s<file.csv|file.jsonl>)",
		name, Names(), TracePrefix)
}

// Resolve checks that name denotes a buildable workload without building
// it: a registered name, or a trace: reference whose file exists. CLIs call
// it up front so a typo fails before any simulation runs.
func Resolve(name string) error {
	if path, ok := strings.CutPrefix(name, TracePrefix); ok {
		if path == "" {
			return fmt.Errorf("workloads: %q: empty trace path", name)
		}
		if _, err := os.Stat(path); err != nil {
			return fmt.Errorf("workloads: %s: %w", name, err)
		}
		return nil
	}
	if _, ok := registry[name]; !ok {
		return errUnknown(name)
	}
	return nil
}

// lookup resolves a name to its builder, dispatching trace: references to
// the trace-ingestion builder.
func lookup(name string) (Builder, error) {
	if path, ok := strings.CutPrefix(name, TracePrefix); ok {
		if path == "" {
			return nil, fmt.Errorf("workloads: %q: empty trace path", name)
		}
		return buildTraceFile(path), nil
	}
	b, ok := registry[name]
	if !ok {
		return nil, errUnknown(name)
	}
	return b, nil
}

// Build constructs the named workload at the given scale and page size.
// Each workload gets its own simulated physical memory and page table.
// Besides registered names, Build accepts "trace:<path>" references, which
// replay a CSV/JSONL request trace through the key-value probe kernel (see
// trace.go).
func Build(name string, size Size, pageShift uint, seed uint64) (*Workload, error) {
	b, err := lookup(name)
	if err != nil {
		return nil, err
	}
	pm := vm.NewPhysMem()
	// 1<<23 frames = 32 GB of physical address space; backing is sparse.
	alloc := vm.NewFrameAllocator(1 << 23)
	env := &Env{
		Size:      size,
		PageShift: pageShift,
		Seed:      seed,
		AS:        vm.NewAddressSpace(pm, alloc, pageShift),
		RNG:       engine.NewRNG(seed ^ 0xA5A5_5A5A),
	}
	w, err := b(env)
	if err != nil {
		return nil, fmt.Errorf("workloads: building %s: %w", name, err)
	}
	w.Name = name
	if err := w.Launch.Validate(); err != nil {
		return nil, fmt.Errorf("workloads: %s: %w", name, err)
	}
	return w, nil
}

// gridFor computes a launch geometry covering threads with blockDim-sized
// blocks.
func gridFor(threads, blockDim int) (grid int) {
	return (threads + blockDim - 1) / blockDim
}
