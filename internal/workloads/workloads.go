// Package workloads re-implements the paper's six evaluation workloads —
// bfs, kmeans, streamcluster, mummergpu, pathfinder (Rodinia) and memcached
// (Wikipedia-trace key-value store) — as kernels in the simulator's SIMT
// ISA over synthetic datasets. The datasets are substitutions (we cannot
// run CUDA binaries; see DESIGN.md section 4): each preserves the address-
// stream property the paper keys on, e.g. bfs's data-dependent gathers,
// mummergpu's far-flung pointer chases, memcached's Zipf-skewed hash
// probes.
package workloads

import (
	"fmt"
	"sort"

	"gpummu/internal/engine"
	"gpummu/internal/kernels"
	"gpummu/internal/vm"
)

// Size selects the dataset scale.
type Size int

// Dataset scales. Tiny exists for unit tests; Small for benchmarks and quick
// sweeps; Medium for the figure reproductions; Large approaches the paper's
// >1 GB footprints (slow: minutes per simulation).
const (
	SizeTiny Size = iota
	SizeSmall
	SizeMedium
	SizeLarge
)

// String implements fmt.Stringer.
func (s Size) String() string {
	switch s {
	case SizeTiny:
		return "tiny"
	case SizeSmall:
		return "small"
	case SizeMedium:
		return "medium"
	case SizeLarge:
		return "large"
	}
	return fmt.Sprintf("size(%d)", int(s))
}

// Workload is a ready-to-run benchmark: an address space populated with its
// dataset and a kernel launch over it.
type Workload struct {
	Name   string
	AS     *vm.AddressSpace
	Launch *kernels.Launch

	// Check, when non-nil, validates functional results after a run
	// (used by tests to prove kernels compute what they claim).
	Check func() error
}

// builder constructs one workload at a given scale.
type builder func(env *Env) (*Workload, error)

// Env carries the common construction context.
type Env struct {
	Size      Size
	PageShift uint
	Seed      uint64

	AS  *vm.AddressSpace
	RNG *engine.RNG
}

// scale interpolates a per-size value.
func (e *Env) scale(tiny, small, medium, large int) int {
	switch e.Size {
	case SizeTiny:
		return tiny
	case SizeSmall:
		return small
	case SizeMedium:
		return medium
	default:
		return large
	}
}

var registry = map[string]builder{
	"bfs":           buildBFS,
	"kmeans":        buildKMeans,
	"streamcluster": buildStreamcluster,
	"mummergpu":     buildMummer,
	"pathfinder":    buildPathfinder,
	"memcached":     buildMemcached,
	"pointerchase":  buildPointerChase,
}

// Names returns the registered workload names, sorted. The first six are
// the paper's evaluation set; pointerchase is an extra microbenchmark.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// PaperSet returns the paper's six workloads in the order its figures list
// them.
func PaperSet() []string {
	return []string{"bfs", "kmeans", "streamcluster", "mummergpu", "pathfinder", "memcached"}
}

// Build constructs the named workload at the given scale and page size.
// Each workload gets its own simulated physical memory and page table.
func Build(name string, size Size, pageShift uint, seed uint64) (*Workload, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown workload %q (have %v)", name, Names())
	}
	pm := vm.NewPhysMem()
	// 1<<23 frames = 32 GB of physical address space; backing is sparse.
	alloc := vm.NewFrameAllocator(1 << 23)
	env := &Env{
		Size:      size,
		PageShift: pageShift,
		Seed:      seed,
		AS:        vm.NewAddressSpace(pm, alloc, pageShift),
		RNG:       engine.NewRNG(seed ^ 0xA5A5_5A5A),
	}
	w, err := b(env)
	if err != nil {
		return nil, fmt.Errorf("workloads: building %s: %w", name, err)
	}
	w.Name = name
	if err := w.Launch.Validate(); err != nil {
		return nil, fmt.Errorf("workloads: %s: %w", name, err)
	}
	return w, nil
}

// gridFor computes a launch geometry covering threads with blockDim-sized
// blocks.
func gridFor(threads, blockDim int) (grid int) {
	return (threads + blockDim - 1) / blockDim
}
