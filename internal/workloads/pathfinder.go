package workloads

import (
	"fmt"

	"gpummu/internal/kernels"
)

// buildPathfinder reproduces the Rodinia pathfinder grid dynamic program:
// each thread owns a column and relaxes it row by row against the three
// neighbours of the previous row, with a block barrier between rows. The
// access pattern is fully coalesced streaming, which is why pathfinder has
// the lowest TLB overheads in the paper.
func init() { Register("pathfinder", buildPathfinder) }

func buildPathfinder(env *Env) (*Workload, error) {
	cols := env.scale(2<<10, 256<<10, 1<<20, 2<<20)
	rows := env.scale(6, 8, 10, 14)

	data := make([]uint32, rows*cols)
	for i := range data {
		data[i] = uint32(env.RNG.Uint64n(64))
	}

	as := env.AS
	dataVA := as.Malloc(uint64(len(data)) * 4)
	// Two cost buffers, alternating per row.
	costVA := [2]uint64{as.Malloc(uint64(cols) * 4), as.Malloc(uint64(cols) * 4)}
	for i, v := range data {
		as.Write32(dataVA+uint64(i)*4, v)
	}
	for c := 0; c < cols; c++ {
		as.Write32(costVA[0]+uint64(c)*4, data[c])
	}

	blockDim := 256
	l := &kernels.Launch{Program: pathfinderKernel(cols, rows), Grid: gridFor(cols, blockDim), BlockDim: blockDim}
	l.Params[0] = dataVA
	l.Params[1] = costVA[0]
	l.Params[2] = costVA[1]

	check := func() error {
		// Recompute on the host. Warps own 32-column stripes and only
		// synchronise per block, so stripe-edge columns can read a
		// neighbouring stripe's rows with skew (the same boundary race the
		// real pathfinder kernel has across thread blocks). A column's
		// value depends on initial columns within ±(rows-1), so only
		// columns whose stripe offset keeps that cone inside one warp are
		// deterministic; we check those.
		prev := make([]uint64, cols)
		cur := make([]uint64, cols)
		for c := 0; c < cols; c++ {
			prev[c] = uint64(data[c])
		}
		for r := 1; r < rows; r++ {
			for c := 0; c < cols; c++ {
				best := prev[c]
				if c > 0 && prev[c-1] < best {
					best = prev[c-1]
				}
				if c+1 < cols && prev[c+1] < best {
					best = prev[c+1]
				}
				cur[c] = best + uint64(data[r*cols+c])
			}
			prev, cur = cur, prev
		}
		final := costVA[(rows-1)%2]
		// Stripe offset 16 is at least rows-1 (max 14) from both stripe
		// edges, so the dependence cone stays within one warp's columns.
		for _, c := range []int{16, 2064, 100016} {
			if c >= cols-1 {
				continue
			}
			if got := uint64(as.Read32(final + uint64(c)*4)); got != prev[c] {
				return fmt.Errorf("pathfinder: col %d = %d, want %d", c, got, prev[c])
			}
		}
		return nil
	}
	return &Workload{AS: as, Launch: l, Check: check}, nil
}

// pathfinderKernel relaxes rows 1..rows-1 with a barrier between rows.
// Buffers alternate: src = P1 on even r-1, P2 on odd.
func pathfinderKernel(cols, rows int) *kernels.Program {
	const (
		rTid  kernels.Reg = 0
		rCol  kernels.Reg = 1
		rCond kernels.Reg = 2
		rR    kernels.Reg = 4
		rSrc  kernels.Reg = 5
		rDst  kernels.Reg = 6
		rBest kernels.Reg = 7
		rV    kernels.Reg = 8
		rTmp  kernels.Reg = 9
		rAddr kernels.Reg = 10
		rData kernels.Reg = 11
		rPar  kernels.Reg = 13 // parity
		rB0   kernels.Reg = 14
		rB1   kernels.Reg = 15
	)
	b := kernels.NewBuilder("pathfinder")
	b.Special(rTid, kernels.SpecGlobalTID)
	b.Special(rB0, kernels.SpecParam1)
	b.Special(rB1, kernels.SpecParam2)
	emitScatteredIndex(b, rCol, rTmp, cols, 2)
	b.MovImm(rR, 1)

	b.Label("rowloop")
	// Pick src/dst by parity of r-1.
	b.AddImm(rPar, rR, -1)
	b.AndImm(rPar, rPar, 1)
	b.Bnz(rPar, "odd", "picked")
	b.Mov(rSrc, rB0)
	b.Mov(rDst, rB1)
	b.Jmp("picked")
	b.Label("odd")
	b.Mov(rSrc, rB1)
	b.Mov(rDst, rB0)
	b.Label("picked")

	// In-range threads do the relaxation; all threads hit the barrier.
	b.SltuImm(rCond, rTid, int64(cols))
	b.Bz(rCond, "sync", "sync")

	// best = src[col]
	b.ShlImm(rAddr, rCol, 2)
	b.Add(rAddr, rAddr, rSrc)
	b.Ld(rBest, rAddr, 0, 4)
	// left neighbour
	b.Bz(rCol, "noleft", "noleft")
	b.Ld(rV, rAddr, -4, 4)
	b.Min(rBest, rBest, rV)
	b.Label("noleft")
	// right neighbour
	b.SeqImm(rCond, rCol, int64(cols-1))
	b.Bnz(rCond, "noright", "noright")
	b.Ld(rV, rAddr, 4, 4)
	b.Min(rBest, rBest, rV)
	b.Label("noright")
	// data[r*cols+col]
	b.MulImm(rTmp, rR, int64(cols))
	b.Add(rTmp, rTmp, rCol)
	b.ShlImm(rTmp, rTmp, 2)
	b.Special(rAddr, kernels.SpecParam0)
	b.Add(rTmp, rTmp, rAddr)
	b.Ld(rData, rTmp, 0, 4)
	b.Add(rBest, rBest, rData)
	// dst[col] = best
	b.ShlImm(rAddr, rCol, 2)
	b.Add(rAddr, rAddr, rDst)
	b.St(rAddr, 0, rBest, 4)

	b.Label("sync")
	b.Bar()
	b.AddImm(rR, rR, 1)
	b.SltuImm(rCond, rR, int64(rows))
	b.Bnz(rCond, "rowloop", "end")
	b.Label("end")
	b.Exit()
	return b.MustBuild()
}
