package workloads

import (
	"testing"

	"gpummu/internal/vm"
)

func TestNamesIncludePaperSet(t *testing.T) {
	names := map[string]bool{}
	for _, n := range Names() {
		names[n] = true
	}
	for _, n := range PaperSet() {
		if !names[n] {
			t.Errorf("paper workload %q not registered", n)
		}
	}
	if len(PaperSet()) != 6 {
		t.Fatalf("paper set has %d entries", len(PaperSet()))
	}
}

func TestBuildUnknownErrors(t *testing.T) {
	if _, err := Build("nope", SizeTiny, vm.PageShift4K, 1); err == nil {
		t.Fatal("unknown workload built")
	}
}

func TestBuildAllTiny(t *testing.T) {
	for _, n := range Names() {
		w, err := Build(n, SizeTiny, vm.PageShift4K, 1)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if w.Name != n {
			t.Errorf("%s: name = %q", n, w.Name)
		}
		if w.AS.MappedBytes() == 0 {
			t.Errorf("%s: no memory mapped", n)
		}
		if w.Check == nil {
			t.Errorf("%s: no functional check", n)
		}
	}
}

func TestBuildLargePages(t *testing.T) {
	w, err := Build("pointerchase", SizeTiny, vm.PageShift2M, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.AS.PageShift(); got != vm.PageShift2M {
		t.Fatalf("page shift %d", got)
	}
}

func TestBuildDeterministicAcrossSeeds(t *testing.T) {
	a, err := Build("bfs", SizeTiny, vm.PageShift4K, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build("bfs", SizeTiny, vm.PageShift4K, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.Launch.Grid != b.Launch.Grid || a.Launch.Params != b.Launch.Params {
		t.Fatal("same seed produced different launches")
	}
	c, err := Build("bfs", SizeTiny, vm.PageShift4K, 43)
	if err != nil {
		t.Fatal(err)
	}
	// Different seed should change at least the frontier level or graph.
	if a.Launch.Params == c.Launch.Params {
		t.Log("note: different seeds produced identical params (possible but unlikely)")
	}
}

func TestScaleMonotonic(t *testing.T) {
	small, err := Build("kmeans", SizeTiny, vm.PageShift4K, 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Build("kmeans", SizeSmall, vm.PageShift4K, 1)
	if err != nil {
		t.Fatal(err)
	}
	if big.AS.MappedBytes() <= small.AS.MappedBytes() {
		t.Fatalf("small scale (%d bytes) not above tiny (%d)", big.AS.MappedBytes(), small.AS.MappedBytes())
	}
	if big.Launch.Grid <= small.Launch.Grid {
		t.Fatal("grid did not grow with scale")
	}
}
