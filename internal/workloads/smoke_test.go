package workloads_test

import (
	"context"
	"testing"

	"gpummu"
	"gpummu/internal/workloads"
)

// TestEveryWorkloadSmoke runs each registered workload at the tiny scale
// with the invariant checker on and requires the functional check to pass
// (Verified): the simulator must compute real results, not just traffic,
// under a full MMU.
func TestEveryWorkloadSmoke(t *testing.T) {
	names := workloads.Names()
	want := map[string]bool{
		"bfs": true, "kmeans": true, "memcached": true, "mummergpu": true,
		"pathfinder": true, "pointerchase": true, "streamcluster": true,
	}
	for w := range want {
		found := false
		for _, n := range names {
			if n == w {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("workload %q missing from registry %v", w, names)
		}
	}

	// The trace-ingestion path (DESIGN.md section 13) gets the same
	// end-to-end treatment as the registered workloads.
	names = append(names, workloads.TracePrefix+"testdata/wiki_requests.csv")

	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := gpummu.SmallConfig()
			cfg.MMU = gpummu.AugmentedMMU()
			rep, err := gpummu.Run(context.Background(),
				gpummu.WithConfig(cfg),
				gpummu.WithWorkload(name, gpummu.SizeTiny),
				gpummu.WithSeed(7),
				gpummu.WithInvariants(),
				gpummu.WithMaxCycles(500_000_000),
				gpummu.WithWatchdog(20_000_000))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !rep.Verified {
				t.Fatalf("%s: functional check did not run", name)
			}
			if rep.Cycles == 0 || rep.Instructions.Value() == 0 {
				t.Fatalf("%s: empty run (cycles=%d)", name, rep.Cycles)
			}
		})
	}
}
