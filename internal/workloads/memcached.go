package workloads

import (
	"fmt"

	"gpummu/internal/engine"
	"gpummu/internal/kernels"
)

// buildMemcached reproduces the paper's key-value store workload: GET
// requests with Zipf-skewed keys (standing in for the Wikipedia trace of
// Hetherington et al.) probing an open-chaining hash table. Each probe
// hashes the key and chases a bucket chain — scattered reads over a large
// table with hot-key reuse, the signature memcached pattern.
func init() { Register("memcached", buildMemcached) }

func buildMemcached(env *Env) (*Workload, error) {
	requests := env.scale(2<<10, 64<<10, 256<<10, 1<<20)
	perThread := 2
	keys := env.scale(8<<10, 128<<10, 512<<10, 2<<20)
	buckets := nextPow2(keys / 2)

	// Entry layout: key(8) | next(8) | value(8) | pad(8) = 32 bytes.
	const entrySize = 32
	heads := make([]uint64, buckets)
	type ent struct{ key, next, value uint64 }
	entries := make([]ent, 1, keys+1) // entry 0 = nil sentinel
	for k := 0; k < keys; k++ {
		key := env.RNG.Uint64() | 1
		h := mixHash(key) & uint64(buckets-1)
		entries = append(entries, ent{key: key, next: heads[h], value: key ^ 0xDEAD})
		heads[h] = uint64(len(entries) - 1)
	}

	// Zipf-skewed request stream over the inserted keys.
	zipf := engine.NewZipf(env.RNG, len(entries)-1, 1.1)
	reqs := make([]uint64, requests*perThread)
	for i := range reqs {
		reqs[i] = entries[1+zipf.Draw()].key
	}

	as := env.AS
	headsVA := as.Malloc(uint64(buckets) * 8)
	entVA := as.Malloc(uint64(len(entries)) * entrySize)
	reqVA := as.Malloc(uint64(len(reqs)) * 8)
	outVA := as.Malloc(uint64(requests) * 8)
	for i, h := range heads {
		as.Write64(headsVA+uint64(i)*8, h)
	}
	for i, e := range entries {
		base := entVA + uint64(i)*entrySize
		as.Write64(base, e.key)
		as.Write64(base+8, e.next)
		as.Write64(base+16, e.value)
	}
	for i, k := range reqs {
		as.Write64(reqVA+uint64(i)*8, k)
	}

	blockDim := 256
	l := &kernels.Launch{Program: memcachedKernel(requests, perThread), Grid: gridFor(requests, blockDim), BlockDim: blockDim}
	l.Params[0] = headsVA
	l.Params[1] = entVA
	l.Params[2] = reqVA
	l.Params[3] = outVA
	l.Params[4] = uint64(buckets - 1) // mask

	lookup := func(key uint64) uint64 {
		h := mixHash(key) & uint64(buckets-1)
		for e := heads[h]; e != 0; e = entries[e].next {
			if entries[e].key == key {
				return entries[e].value
			}
		}
		return 0
	}
	check := func() error {
		for _, t := range []int{0, requests / 2, requests - 1} {
			r := scatteredIndex(t, requests, 1)
			var want uint64
			for g := 0; g < perThread; g++ {
				want += lookup(reqs[r+g*requests])
			}
			if got := as.Read64(outVA + uint64(r)*8); got != want {
				return fmt.Errorf("memcached: slot %d sum %d, want %d", r, got, want)
			}
		}
		return nil
	}
	return &Workload{AS: as, Launch: l, Check: check}, nil
}

// mixHash is the integer hash the kernel implements (xorshift-multiply).
func mixHash(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 29
	return x
}

// memcachedKernel: for g in 0..perThread: key = reqs[tid + g*requests];
// h = mix(key) & mask; walk the chain; accumulate found values.
func memcachedKernel(requests, perThread int) *kernels.Program {
	const (
		rTid  kernels.Reg = 0
		rReq  kernels.Reg = 1
		rCond kernels.Reg = 2
		rG    kernels.Reg = 3
		rKey  kernels.Reg = 5
		rH    kernels.Reg = 6
		rE    kernels.Reg = 7
		rEK   kernels.Reg = 8
		rSum  kernels.Reg = 9
		rTmp  kernels.Reg = 10
		rBase kernels.Reg = 11
		rMask kernels.Reg = 12
		rIdx  kernels.Reg = 13
		rV    kernels.Reg = 14
	)
	b := kernels.NewBuilder("memcached")
	b.Special(rTid, kernels.SpecGlobalTID)
	b.SltuImm(rCond, rTid, int64(requests))
	b.Bz(rCond, "done", "done")
	emitScatteredIndex(b, rReq, rTmp, requests, 1)

	b.Special(rMask, kernels.SpecParam4)
	b.MovImm(rSum, 0)
	b.MovImm(rG, 0)

	b.Label("gloop")
	// key = reqs[req + g*N]
	b.MulImm(rIdx, rG, int64(requests))
	b.Add(rIdx, rIdx, rReq)
	b.ShlImm(rIdx, rIdx, 3)
	b.Special(rBase, kernels.SpecParam2)
	b.Add(rIdx, rIdx, rBase)
	b.Ld(rKey, rIdx, 0, 8)

	// h = mix(key) & mask  (xorshift-multiply inline)
	b.ShrImm(rTmp, rKey, 33)
	b.Xor(rH, rKey, rTmp)
	b.MovImm(rTmp, -49064778989728563) // 0xFF51AFD7ED558CCD as int64
	b.Mul(rH, rH, rTmp)
	b.ShrImm(rTmp, rH, 29)
	b.Xor(rH, rH, rTmp)
	b.And(rH, rH, rMask)

	// e = heads[h]
	b.ShlImm(rTmp, rH, 3)
	b.Special(rBase, kernels.SpecParam0)
	b.Add(rTmp, rTmp, rBase)
	b.Ld(rE, rTmp, 0, 8)

	b.Label("chain")
	b.Bz(rE, "gnext", "gnext")
	// entry base = ents + e*32
	b.ShlImm(rTmp, rE, 5)
	b.Special(rBase, kernels.SpecParam1)
	b.Add(rTmp, rTmp, rBase)
	b.Ld(rEK, rTmp, 0, 8)
	b.Seq(rCond, rEK, rKey)
	// Both sides of the hit/miss split rejoin at the chain loop head.
	b.Bnz(rCond, "found", "chain")
	b.Label("cnext")
	b.Ld(rE, rTmp, 8, 8) // next
	b.Jmp("chain")
	b.Label("found")
	b.Ld(rV, rTmp, 16, 8)
	b.Add(rSum, rSum, rV)
	b.MovImm(rE, 0)
	b.Jmp("chain")

	b.Label("gnext")
	b.AddImm(rG, rG, 1)
	b.SltuImm(rCond, rG, int64(perThread))
	b.Bnz(rCond, "gloop", "gend")
	b.Label("gend")

	// out[req] = sum
	b.ShlImm(rTmp, rReq, 3)
	b.Special(rBase, kernels.SpecParam3)
	b.Add(rTmp, rTmp, rBase)
	b.St(rTmp, 0, rSum, 8)

	b.Label("done")
	b.Exit()
	return b.MustBuild()
}

func nextPow2(x int) int {
	n := 1
	for n < x {
		n <<= 1
	}
	return n
}
