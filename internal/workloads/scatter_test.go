package workloads

import (
	"testing"
	"testing/quick"
)

// TestScatteredIndexBijection: for every supported geometry, the scatter is
// a bijection over [0, nelems) — every element owned by exactly one thread.
func TestScatteredIndexBijection(t *testing.T) {
	for _, tc := range []struct{ nelems, group int }{
		{1 << 10, 1}, {1 << 10, 2}, {1 << 10, 4},
		{1 << 12, 1}, {1 << 12, 8},
	} {
		seen := make([]bool, tc.nelems)
		for tid := 0; tid < tc.nelems; tid++ {
			idx := scatteredIndex(tid, tc.nelems, tc.group)
			if idx < 0 || idx >= tc.nelems {
				t.Fatalf("nelems=%d group=%d tid=%d: out of range %d", tc.nelems, tc.group, tid, idx)
			}
			if seen[idx] {
				t.Fatalf("nelems=%d group=%d: element %d covered twice", tc.nelems, tc.group, idx)
			}
			seen[idx] = true
		}
	}
}

// TestScatteredIndexLanePreserving: lanes within a warp stay consecutive,
// so coalescing (and the paper's low page divergence for regular
// workloads) is preserved.
func TestScatteredIndexLanePreserving(t *testing.T) {
	const nelems = 1 << 12
	f := func(warpRaw uint16, laneRaw uint8) bool {
		warp := int(warpRaw) % (nelems / 32)
		lane := int(laneRaw) % 32
		base := scatteredIndex(warp*32, nelems, 1)
		return scatteredIndex(warp*32+lane, nelems, 1) == base+lane
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestScatteredIndexGroupContiguity: within a group of warps, warp bases
// are consecutive 32-element runs.
func TestScatteredIndexGroupContiguity(t *testing.T) {
	const nelems, group = 1 << 12, 4
	for w := 0; w+group <= nelems/32; w += group {
		base := scatteredIndex(w*32, nelems, group)
		for o := 1; o < group; o++ {
			got := scatteredIndex((w+o)*32, nelems, group)
			if got != base+o*32 {
				t.Fatalf("warp %d+%d base %d, want %d", w, o, got, base+o*32)
			}
		}
	}
}

// TestScatteredIndexScatters: consecutive warp groups must not be adjacent
// in element space (that is the entire point).
func TestScatteredIndexScatters(t *testing.T) {
	const nelems = 1 << 14
	adjacent := 0
	for w := 0; w+1 < nelems/32; w++ {
		a := scatteredIndex(w*32, nelems, 1)
		b := scatteredIndex((w+1)*32, nelems, 1)
		if b == a+32 {
			adjacent++
		}
	}
	if adjacent > nelems/32/16 {
		t.Fatalf("%d of %d consecutive warps adjacent", adjacent, nelems/32)
	}
}
