package workloads

import (
	"fmt"

	"gpummu/internal/kernels"
)

// buildPointerChase is a microbenchmark (not in the paper's set): every
// thread chases a random permutation ring for a fixed number of hops. It
// produces maximal page divergence and near-zero locality — a worst-case
// probe for TLB designs, used by examples and tests.
func init() { Register("pointerchase", buildPointerChase) }

func buildPointerChase(env *Env) (*Workload, error) {
	nodes := env.scale(4<<10, 1<<20, 4<<20, 16<<20)
	threads := env.scale(1<<10, 32<<10, 64<<10, 128<<10)
	hops := env.scale(8, 16, 24, 32)

	// Random permutation ring: ring[i] = successor of i.
	perm := make([]uint64, nodes)
	for i := range perm {
		perm[i] = uint64(i)
	}
	env.RNG.Shuffle(nodes, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	ring := make([]uint64, nodes)
	for i := 0; i < nodes; i++ {
		ring[perm[i]] = perm[(i+1)%nodes]
	}

	as := env.AS
	ringVA := as.Malloc(uint64(nodes) * 8)
	outVA := as.Malloc(uint64(threads) * 8)
	for i, v := range ring {
		as.Write64(ringVA+uint64(i)*8, v)
	}

	blockDim := 256
	l := &kernels.Launch{Program: chaseKernel(), Grid: gridFor(threads, blockDim), BlockDim: blockDim}
	l.Params[0] = ringVA
	l.Params[1] = outVA
	l.Params[2] = uint64(threads)
	l.Params[3] = uint64(hops)
	l.Params[4] = uint64(nodes)

	check := func() error {
		for _, t := range []int{0, threads - 1} {
			cur := uint64(t*2497) % uint64(nodes)
			for h := 0; h < hops; h++ {
				cur = ring[cur]
			}
			if got := as.Read64(outVA + uint64(t)*8); got != cur {
				return fmt.Errorf("pointerchase: thread %d landed on %d, want %d", t, got, cur)
			}
		}
		return nil
	}
	return &Workload{AS: as, Launch: l, Check: check}, nil
}

func chaseKernel() *kernels.Program {
	const (
		rTid  kernels.Reg = 0
		rN    kernels.Reg = 1
		rCond kernels.Reg = 2
		rCur  kernels.Reg = 3
		rHops kernels.Reg = 4
		rH    kernels.Reg = 5
		rTmp  kernels.Reg = 6
		rBase kernels.Reg = 7
		rNode kernels.Reg = 8
	)
	b := kernels.NewBuilder("pointerchase")
	b.Special(rTid, kernels.SpecGlobalTID)
	b.Special(rN, kernels.SpecParam2)
	b.Sltu(rCond, rTid, rN)
	b.Bz(rCond, "done", "done")

	// cur = (tid*2497) % nodes
	b.MulImm(rCur, rTid, 2497)
	b.Special(rNode, kernels.SpecParam4)
	b.Rem(rCur, rCur, rNode)
	b.Special(rHops, kernels.SpecParam3)
	b.MovImm(rH, 0)

	b.Label("loop")
	b.ShlImm(rTmp, rCur, 3)
	b.Special(rBase, kernels.SpecParam0)
	b.Add(rTmp, rTmp, rBase)
	b.Ld(rCur, rTmp, 0, 8)
	b.AddImm(rH, rH, 1)
	b.Sltu(rCond, rH, rHops)
	b.Bnz(rCond, "loop", "end")
	b.Label("end")

	b.ShlImm(rTmp, rTid, 3)
	b.Special(rBase, kernels.SpecParam1)
	b.Add(rTmp, rTmp, rBase)
	b.St(rTmp, 0, rCur, 8)

	b.Label("done")
	b.Exit()
	return b.MustBuild()
}
