package workloads

import (
	"fmt"

	"gpummu/internal/kernels"
)

// buildStreamcluster reproduces the Rodinia streamcluster distance kernel:
// every thread computes the cost of assigning its point to each of a small
// set of candidate centres. Unlike kmeans, the centres are *point indices*,
// so centre features are gathered through an indirection. Data is
// feature-major with warp-scattered point assignment (see scatter.go),
// giving the large streaming footprint the paper reports.
func init() { Register("streamcluster", buildStreamcluster) }

func buildStreamcluster(env *Env) (*Workload, error) {
	p := env.scale(4<<10, 256<<10, 1<<20, 4<<20)
	f := env.scale(4, 4, 4, 8)
	k := 4

	points := make([]uint32, p*f) // feature-major
	for i := range points {
		points[i] = uint32(env.RNG.Uint64n(1 << 16))
	}
	cidx := make([]uint64, k)
	for i := range cidx {
		cidx[i] = env.RNG.Uint64n(uint64(p))
	}

	as := env.AS
	ptsVA := as.Malloc(uint64(len(points)) * 4)
	cidxVA := as.Malloc(uint64(k) * 8)
	costVA := as.Malloc(uint64(p) * 8)
	for i, v := range points {
		as.Write32(ptsVA+uint64(i)*4, v)
	}
	for i, v := range cidx {
		as.Write64(cidxVA+uint64(i)*8, v)
	}

	blockDim := 256
	l := &kernels.Launch{Program: streamclusterKernel(p, f, k), Grid: gridFor(p, blockDim), BlockDim: blockDim}
	l.Params[0] = ptsVA
	l.Params[1] = cidxVA
	l.Params[2] = costVA

	check := func() error {
		for _, pi := range []int{1, p / 2, p - 2} {
			best := ^uint64(0)
			for ki := 0; ki < k; ki++ {
				var acc uint64
				ci := int(cidx[ki])
				for fi := 0; fi < f; fi++ {
					d := uint64(points[fi*p+pi]) - uint64(points[fi*p+ci])
					acc += d * d
				}
				if acc < best {
					best = acc
				}
			}
			if got := as.Read64(costVA + uint64(pi)*8); got != best {
				return fmt.Errorf("streamcluster: point %d cost %d, want %d", pi, got, best)
			}
		}
		return nil
	}
	return &Workload{AS: as, Launch: l, Check: check}, nil
}

func streamclusterKernel(p, f, k int) *kernels.Program {
	const (
		rTid  kernels.Reg = 0
		rCond kernels.Reg = 2
		rKi   kernels.Reg = 5
		rFi   kernels.Reg = 6
		rAcc  kernels.Reg = 7
		rBest kernels.Reg = 8
		rPtA  kernels.Reg = 9
		rCnA  kernels.Reg = 10
		rA    kernels.Reg = 11
		rB    kernels.Reg = 12
		rD    kernels.Reg = 13
		rTmp  kernels.Reg = 14
		rBase kernels.Reg = 15
		rCi   kernels.Reg = 16
		rPt   kernels.Reg = 17
	)
	b := kernels.NewBuilder("streamcluster")
	b.Special(rTid, kernels.SpecGlobalTID)
	b.SltuImm(rCond, rTid, int64(p))
	b.Bz(rCond, "done", "done")
	emitScatteredIndex(b, rPt, rTmp, p, 2)

	b.MovImm(rBest, -1)
	b.MovImm(rKi, 0)

	b.Label("kloop")
	// centre index = cidx[ki]; centre features live in the points array.
	b.ShlImm(rTmp, rKi, 3)
	b.Special(rBase, kernels.SpecParam1)
	b.Add(rTmp, rTmp, rBase)
	b.Ld(rCi, rTmp, 0, 8)
	b.ShlImm(rCnA, rCi, 2)
	b.Special(rBase, kernels.SpecParam0)
	b.Add(rCnA, rCnA, rBase)
	// point cursor (feature-major: advance by P*4 per feature)
	b.ShlImm(rTmp, rPt, 2)
	b.Add(rPtA, rTmp, rBase)
	b.MovImm(rAcc, 0)
	b.MovImm(rFi, 0)

	b.Label("floop")
	b.Ld(rA, rPtA, 0, 4)
	b.Ld(rB, rCnA, 0, 4)
	b.Sub(rD, rA, rB)
	b.Mul(rD, rD, rD)
	b.Add(rAcc, rAcc, rD)
	b.AddImm(rPtA, rPtA, int64(p)*4)
	b.AddImm(rCnA, rCnA, int64(p)*4)
	b.AddImm(rFi, rFi, 1)
	b.SltuImm(rCond, rFi, int64(f))
	b.Bnz(rCond, "floop", "fend")
	b.Label("fend")

	b.Min(rBest, rBest, rAcc)
	b.AddImm(rKi, rKi, 1)
	b.SltuImm(rCond, rKi, int64(k))
	b.Bnz(rCond, "kloop", "kend")
	b.Label("kend")

	b.ShlImm(rTmp, rPt, 3)
	b.Special(rBase, kernels.SpecParam2)
	b.Add(rTmp, rTmp, rBase)
	b.St(rTmp, 0, rBest, 8)

	b.Label("done")
	b.Exit()
	return b.MustBuild()
}
