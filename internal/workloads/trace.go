package workloads

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"gpummu/internal/kernels"
)

// TracePrefix is the workload-name scheme for request-trace replays:
// "trace:<path>" builds a workload that replays the CSV or JSONL request
// trace at <path> (relative to the process working directory) through the
// memcached-style key-value probe kernel. Campaign files and both CLIs
// accept trace references anywhere a workload name is expected.
const TracePrefix = "trace:"

// traceRecord is one request from a trace file.
//
// CSV traces have columns key,op,size (a header row with those names is
// skipped; op and size may be omitted). JSONL traces (.jsonl/.ndjson) hold
// one {"key": ..., "op": ..., "size": ...} object per line. op defaults to
// "get"; size (the stored value size in bytes) defaults to 0 and only
// matters for "set" records, where it perturbs the stored value so the
// functional check covers it.
type traceRecord struct {
	Key  string `json:"key"`
	Op   string `json:"op"`
	Size int    `json:"size"`
}

// maxTraceRecords bounds how much of a trace is ingested, so pointing a
// campaign at a multi-gigabyte production trace cannot exhaust host memory:
// the replay cycles through the ingested window anyway.
const maxTraceRecords = 4 << 20

// parseTrace reads a request trace. The format is chosen by extension:
// .jsonl/.ndjson parse as JSON lines, everything else as CSV.
func parseTrace(path string) ([]traceRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var recs []traceRecord
	switch strings.ToLower(filepath.Ext(path)) {
	case ".jsonl", ".ndjson":
		recs, err = parseTraceJSONL(f)
	default:
		recs, err = parseTraceCSV(f)
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("%s: empty trace", path)
	}
	return recs, nil
}

// parseTraceCSV parses key[,op[,size]] rows, skipping a key/op/size header.
func parseTraceCSV(r io.Reader) ([]traceRecord, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // op and size are optional per row
	cr.TrimLeadingSpace = true
	cr.Comment = '#'
	var recs []traceRecord
	for line := 1; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return nil, err
		}
		if line == 1 && len(row) > 0 && strings.EqualFold(strings.TrimSpace(row[0]), "key") {
			continue // header row
		}
		rec, err := recordFromRow(row)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		recs = append(recs, rec)
		if len(recs) >= maxTraceRecords {
			return recs, nil
		}
	}
}

// recordFromRow validates one CSV row.
func recordFromRow(row []string) (traceRecord, error) {
	rec := traceRecord{Op: "get"}
	if len(row) == 0 || strings.TrimSpace(row[0]) == "" {
		return rec, fmt.Errorf("empty key")
	}
	rec.Key = strings.TrimSpace(row[0])
	if len(row) > 1 && strings.TrimSpace(row[1]) != "" {
		rec.Op = strings.ToLower(strings.TrimSpace(row[1]))
	}
	if len(row) > 2 && strings.TrimSpace(row[2]) != "" {
		n, err := strconv.Atoi(strings.TrimSpace(row[2]))
		if err != nil || n < 0 {
			return rec, fmt.Errorf("bad size %q", row[2])
		}
		rec.Size = n
	}
	if err := checkOp(rec.Op); err != nil {
		return rec, err
	}
	return rec, nil
}

// parseTraceJSONL parses one JSON object per non-blank line.
func parseTraceJSONL(r io.Reader) ([]traceRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	var recs []traceRecord
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		rec := traceRecord{Op: "get"}
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		rec.Op = strings.ToLower(rec.Op)
		if rec.Key == "" {
			return nil, fmt.Errorf("line %d: empty key", line)
		}
		if rec.Size < 0 {
			return nil, fmt.Errorf("line %d: negative size", line)
		}
		if err := checkOp(rec.Op); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		recs = append(recs, rec)
		if len(recs) >= maxTraceRecords {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// checkOp admits the memcached verbs the replay models.
func checkOp(op string) error {
	switch op {
	case "get", "set", "delete":
		return nil
	}
	return fmt.Errorf("unknown op %q (have get, set, delete)", op)
}

// hashKey folds a trace key into the nonzero 64-bit key the probe kernel
// stores and compares.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64() | 1
}

// buildTraceFile returns a Builder replaying the trace at path.
//
// The replay reproduces the paper's memcached methodology with the trace's
// own key popularity instead of a synthetic Zipf draw: "set" records
// populate an open-chaining hash table (a later set or delete of the same
// key rewrites or removes it, last writer wins), and then every record —
// get, set and delete alike touch the table on the real server — probes its
// chain in trace order. Keys that were never stored walk their whole bucket
// chain and miss, exactly like a real cache miss. The request stream cycles
// through the trace until it fills the per-Size request budget, so small
// traces still generate enough traffic to pressure the TLB while the
// relative key frequencies stay production-shaped.
func buildTraceFile(path string) Builder {
	return func(env *Env) (*Workload, error) {
		recs, err := parseTrace(path)
		if err != nil {
			return nil, err
		}
		return buildTraceReplay(env, recs)
	}
}

// buildTraceReplay constructs the replay workload from parsed records.
func buildTraceReplay(env *Env, recs []traceRecord) (*Workload, error) {
	// Population: apply sets and deletes in trace order, last writer wins.
	// The stored value folds the key hash with the set's value size so the
	// functional check proves the kernel returned this set's payload.
	values := make(map[uint64]uint64)
	var order []uint64 // first-set order, for deterministic table layout
	for _, r := range recs {
		k := hashKey(r.Key)
		switch r.Op {
		case "set":
			if _, ok := values[k]; !ok {
				order = append(order, k)
			}
			values[k] = k ^ (uint64(r.Size) * 0x9E3779B97F4A7C15) ^ 0xC0FFEE
		case "delete":
			delete(values, k)
		}
	}

	// Probe stream: every record in trace order, cycled to the size budget
	// (power-of-two counts keep the scattered warp indexing exact).
	requests := env.scale(1<<10, 32<<10, 128<<10, 1<<20)
	probes := make([]uint64, requests)
	for i := range probes {
		probes[i] = hashKey(recs[i%len(recs)].Key)
	}

	// Bucket chains sized like the synthetic memcached table: about two
	// entries per bucket keeps chains short but non-trivial.
	nb := len(order) / 2
	if nb < 2 {
		nb = 2
	}
	buckets := nextPow2(nb)

	const entrySize = 32 // key(8) | next(8) | value(8) | pad(8)
	heads := make([]uint64, buckets)
	type ent struct{ key, next, value uint64 }
	entries := make([]ent, 1, len(order)+1) // entry 0 = nil sentinel
	for _, k := range order {
		v, ok := values[k]
		if !ok {
			continue // set then deleted
		}
		h := mixHash(k) & uint64(buckets-1)
		entries = append(entries, ent{key: k, next: heads[h], value: v})
		heads[h] = uint64(len(entries) - 1)
	}

	as := env.AS
	headsVA := as.Malloc(uint64(buckets) * 8)
	entVA := as.Malloc(uint64(len(entries)) * entrySize)
	reqVA := as.Malloc(uint64(len(probes)) * 8)
	outVA := as.Malloc(uint64(requests) * 8)
	for i, h := range heads {
		as.Write64(headsVA+uint64(i)*8, h)
	}
	for i, e := range entries {
		base := entVA + uint64(i)*entrySize
		as.Write64(base, e.key)
		as.Write64(base+8, e.next)
		as.Write64(base+16, e.value)
	}
	for i, k := range probes {
		as.Write64(reqVA+uint64(i)*8, k)
	}

	blockDim := 256
	const perThread = 1 // the trace already fixes each request's key
	l := &kernels.Launch{
		Program:  memcachedKernel(requests, perThread),
		Grid:     gridFor(requests, blockDim),
		BlockDim: blockDim,
	}
	l.Params[0] = headsVA
	l.Params[1] = entVA
	l.Params[2] = reqVA
	l.Params[3] = outVA
	l.Params[4] = uint64(buckets - 1) // mask

	lookup := func(key uint64) uint64 {
		h := mixHash(key) & uint64(buckets-1)
		for e := heads[h]; e != 0; e = entries[e].next {
			if entries[e].key == key {
				return entries[e].value
			}
		}
		return 0
	}
	check := func() error {
		for _, t := range []int{0, requests / 2, requests - 1} {
			r := scatteredIndex(t, requests, 1)
			if got, want := as.Read64(outVA+uint64(r)*8), lookup(probes[r]); got != want {
				return fmt.Errorf("trace replay: slot %d got %d, want %d", r, got, want)
			}
		}
		return nil
	}
	return &Workload{AS: as, Launch: l, Check: check}, nil
}
