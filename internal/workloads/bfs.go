package workloads

import (
	"fmt"

	"gpummu/internal/kernels"
)

// levelINF marks an unvisited node in the bfs level array.
const levelINF = int64(1) << 40

// buildBFS reproduces Rodinia bfs: level-synchronous breadth-first search
// over a CSR graph. One thread owns one node (warp-scattered, see
// scatter.go); frontier membership is a divergent branch; neighbour gathers
// are data-dependent scatters across the level array — the access pattern
// behind bfs's high page divergence and TLB miss rate in the paper's
// figure 3.
func init() { Register("bfs", buildBFS) }

func buildBFS(env *Env) (*Workload, error) {
	n := env.scale(2<<10, 64<<10, 256<<10, 1<<20)
	avgDeg := env.scale(4, 8, 12, 16)

	// Power-law-ish degree sequence: a few hubs, many low-degree nodes.
	deg := make([]int, n)
	total := 0
	for i := range deg {
		d := 1 + env.RNG.Intn(2*avgDeg)
		if env.RNG.Intn(64) == 0 {
			d *= 8 // hub
		}
		deg[i] = d
		total += d
	}

	rowPtr := make([]uint64, n+1)
	adj := make([]uint64, total)
	for i, d := range deg {
		rowPtr[i+1] = rowPtr[i] + uint64(d)
		for j := 0; j < d; j++ {
			adj[rowPtr[i]+uint64(j)] = env.RNG.Uint64n(uint64(n))
		}
	}

	// Host-side BFS from node 0 to find a level with a large frontier.
	level := make([]int64, n)
	for i := range level {
		level[i] = levelINF
	}
	level[0] = 0
	frontier := []int{0}
	curLevel := int64(0)
	bestLevel, bestSize := int64(0), 1
	for len(frontier) > 0 {
		var next []int
		for _, u := range frontier {
			for e := rowPtr[u]; e < rowPtr[u+1]; e++ {
				v := int(adj[e])
				if level[v] == levelINF {
					level[v] = curLevel + 1
					next = append(next, v)
				}
			}
		}
		curLevel++
		if len(next) > bestSize {
			bestSize = len(next)
			bestLevel = curLevel
		}
		frontier = next
	}
	// Reset levels beyond the chosen frontier so the kernel has work.
	for i := range level {
		if level[i] > bestLevel {
			level[i] = levelINF
		}
	}

	as := env.AS
	rowPtrVA := as.Malloc(uint64(len(rowPtr)) * 8)
	adjVA := as.Malloc(uint64(len(adj)) * 8)
	levelVA := as.Malloc(uint64(n) * 8)
	for i, v := range rowPtr {
		as.Write64(rowPtrVA+uint64(i)*8, v)
	}
	for i, v := range adj {
		as.Write64(adjVA+uint64(i)*8, v)
	}
	for i, v := range level {
		as.Write64(levelVA+uint64(i)*8, uint64(v))
	}

	prog := bfsKernel(n)
	blockDim := 256
	l := &kernels.Launch{
		Program:  prog,
		Grid:     gridFor(n, blockDim),
		BlockDim: blockDim,
	}
	l.Params[0] = rowPtrVA
	l.Params[1] = adjVA
	l.Params[2] = levelVA
	l.Params[3] = uint64(bestLevel)

	check := func() error {
		// Every neighbour of a frontier node must now be visited.
		for u := 0; u < n; u++ {
			lu := int64(as.Read64(levelVA + uint64(u)*8))
			if lu != bestLevel {
				continue
			}
			for e := rowPtr[u]; e < rowPtr[u+1]; e++ {
				v := adj[e]
				if int64(as.Read64(levelVA+v*8)) == levelINF {
					return fmt.Errorf("bfs: neighbour %d of frontier node %d left unvisited", v, u)
				}
			}
		}
		return nil
	}
	return &Workload{AS: as, Launch: l, Check: check}, nil
}

// bfsKernel assembles the level-expansion kernel.
//
//	node = scatter(tid)
//	if level[node] != L: exit
//	for e in rowPtr[node]..rowPtr[node+1]:
//	    nb = adj[e]
//	    if level[nb] == INF: level[nb] = L+1
func bfsKernel(n int) *kernels.Program {
	const (
		rTid   kernels.Reg = 0
		rCond  kernels.Reg = 2
		rAddr  kernels.Reg = 3
		rBase  kernels.Reg = 4
		rMyLvl kernels.Reg = 5
		rL     kernels.Reg = 6
		rEdge  kernels.Reg = 7
		rEnd   kernels.Reg = 8
		rNb    kernels.Reg = 9
		rNbLvl kernels.Reg = 10
		rNewL  kernels.Reg = 11
		rNode  kernels.Reg = 12
		rTmp   kernels.Reg = 13
	)
	b := kernels.NewBuilder("bfs")
	b.Special(rTid, kernels.SpecGlobalTID)
	b.SltuImm(rCond, rTid, int64(n))
	b.Bz(rCond, "done", "done")
	emitScatteredIndex(b, rNode, rTmp, n, 1)

	// myLevel = level[node]
	b.Special(rBase, kernels.SpecParam2)
	b.ShlImm(rAddr, rNode, 3)
	b.Add(rAddr, rAddr, rBase)
	b.Ld(rMyLvl, rAddr, 0, 8)
	b.Special(rL, kernels.SpecParam3)
	b.Seq(rCond, rMyLvl, rL)
	b.Bz(rCond, "done", "done")

	// edge range
	b.Special(rBase, kernels.SpecParam0)
	b.ShlImm(rAddr, rNode, 3)
	b.Add(rAddr, rAddr, rBase)
	b.Ld(rEdge, rAddr, 0, 8)
	b.Ld(rEnd, rAddr, 8, 8)

	b.Label("loop")
	b.Sltu(rCond, rEdge, rEnd)
	b.Bz(rCond, "done", "done")
	// nb = adj[edge]
	b.Special(rBase, kernels.SpecParam1)
	b.ShlImm(rAddr, rEdge, 3)
	b.Add(rAddr, rAddr, rBase)
	b.Ld(rNb, rAddr, 0, 8)
	// level[nb]
	b.Special(rBase, kernels.SpecParam2)
	b.ShlImm(rAddr, rNb, 3)
	b.Add(rAddr, rAddr, rBase)
	b.Ld(rNbLvl, rAddr, 0, 8)
	b.SeqImm(rCond, rNbLvl, levelINF)
	b.Bz(rCond, "next", "next")
	b.AddImm(rNewL, rL, 1)
	b.St(rAddr, 0, rNewL, 8)
	b.Label("next")
	b.AddImm(rEdge, rEdge, 1)
	b.Jmp("loop")

	b.Label("done")
	b.Exit()
	return b.MustBuild()
}
