package workloads

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gpummu/internal/vm"
)

const (
	sampleCSV   = "testdata/wiki_requests.csv"
	sampleJSONL = "testdata/wiki_requests.jsonl"
)

func TestParseTraceCSV(t *testing.T) {
	recs, err := parseTrace(sampleCSV)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 40 {
		t.Fatalf("parsed %d records, want the full sample", len(recs))
	}
	if recs[0].Key != "enwiki:page:Main_Page" || recs[0].Op != "set" || recs[0].Size != 4821 {
		t.Fatalf("first record = %+v", recs[0])
	}
	sets, gets, dels := 0, 0, 0
	for _, r := range recs {
		switch r.Op {
		case "set":
			sets++
		case "get":
			gets++
		case "delete":
			dels++
		default:
			t.Fatalf("record with op %q", r.Op)
		}
	}
	if sets == 0 || gets == 0 || dels == 0 {
		t.Fatalf("sample trace lost an op class: sets=%d gets=%d dels=%d", sets, gets, dels)
	}
}

func TestParseTraceJSONL(t *testing.T) {
	recs, err := parseTrace(sampleJSONL)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 11 {
		t.Fatalf("parsed %d records, want 11", len(recs))
	}
	if recs[4].Op != "get" { // op omitted defaults to get
		t.Fatalf("defaulted op = %q", recs[4].Op)
	}
}

func TestParseTraceErrors(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		path string
		want string
	}{
		{write("empty.csv", "key,op,size\n"), "empty trace"},
		{write("badop.csv", "a,frob,1\n"), "unknown op"},
		{write("badsize.csv", "a,set,notanum\n"), "bad size"},
		{write("nokey.csv", ",get,\n"), "empty key"},
		{write("bad.jsonl", "{nope\n"), "line 1"},
		{filepath.Join(dir, "missing.csv"), "no such file"},
	}
	for _, c := range cases {
		if _, err := parseTrace(c.path); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("parseTrace(%s) err = %v, want %q", c.path, err, c.want)
		}
	}
}

// TestTraceWorkloadBuilds proves the trace: scheme produces a complete,
// checkable workload: the population reflects sets minus deletes, and the
// functional check verifies kernel output against the host-side table.
func TestTraceWorkloadBuilds(t *testing.T) {
	for _, path := range []string{sampleCSV, sampleJSONL} {
		name := TracePrefix + path
		w, err := Build(name, SizeTiny, vm.PageShift4K, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if w.Name != name {
			t.Errorf("%s: workload named %q", path, w.Name)
		}
		if w.AS.MappedBytes() == 0 {
			t.Errorf("%s: no memory mapped", path)
		}
		if w.Check == nil {
			t.Errorf("%s: no functional check", path)
		}
	}
}

// TestTraceDeterministic pins the replay contract: the same trace builds
// byte-identical request streams regardless of seed (the trace, not the
// RNG, is the source of truth).
func TestTraceDeterministic(t *testing.T) {
	a, err := Build(TracePrefix+sampleCSV, SizeTiny, vm.PageShift4K, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(TracePrefix+sampleCSV, SizeTiny, vm.PageShift4K, 99)
	if err != nil {
		t.Fatal(err)
	}
	if a.AS.MappedBytes() != b.AS.MappedBytes() {
		t.Fatalf("seed changed trace footprint: %d vs %d", a.AS.MappedBytes(), b.AS.MappedBytes())
	}
}

func TestResolve(t *testing.T) {
	if err := Resolve("bfs"); err != nil {
		t.Errorf("bfs: %v", err)
	}
	if err := Resolve(TracePrefix + sampleCSV); err != nil {
		t.Errorf("trace sample: %v", err)
	}
	if err := Resolve(TracePrefix); err == nil {
		t.Error("empty trace path resolved")
	}
	if err := Resolve(TracePrefix + "no/such/file.csv"); err == nil {
		t.Error("missing trace file resolved")
	}
	err := Resolve("nope")
	if err == nil {
		t.Fatal("unknown workload resolved")
	}
	for _, n := range Names() {
		if !strings.Contains(err.Error(), n) {
			t.Errorf("unknown-workload error does not list %q: %v", n, err)
		}
	}
	if !strings.Contains(err.Error(), TracePrefix) {
		t.Errorf("unknown-workload error does not mention the trace scheme: %v", err)
	}
}

func TestParseSize(t *testing.T) {
	for s, want := range map[string]Size{
		"tiny": SizeTiny, "small": SizeSmall, "medium": SizeMedium, "large": SizeLarge,
	} {
		got, err := ParseSize(s)
		if err != nil || got != want {
			t.Errorf("ParseSize(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseSize("huge"); err == nil || !strings.Contains(err.Error(), "tiny") {
		t.Errorf("ParseSize(huge) err = %v, want the valid sizes listed", err)
	}
}

func TestRegisterGuards(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty name": func() { Register("", func(*Env) (*Workload, error) { return nil, nil }) },
		"nil":        func() { Register("x", nil) },
		"colon":      func() { Register("a:b", func(*Env) (*Workload, error) { return nil, nil }) },
		"duplicate":  func() { Register("bfs", func(*Env) (*Workload, error) { return nil, nil }) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register %s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestPaperSetStable pins the paper ordering the figures rely on and that
// every paper workload is registered, sorted stably inside Names().
func TestPaperSetStable(t *testing.T) {
	want := []string{"bfs", "kmeans", "streamcluster", "mummergpu", "pathfinder", "memcached"}
	got := PaperSet()
	if len(got) != len(want) {
		t.Fatalf("paper set = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("paper set order changed: %v", got)
		}
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not in sorted order: %v", names)
		}
	}
}
