package obs

import (
	"sync"
	"testing"
)

// TestFunnelFanOut: every live subscriber with buffer room receives each
// published tick, labelled with its source.
func TestFunnelFanOut(t *testing.T) {
	f := NewFunnel()
	a, cancelA := f.Subscribe(4)
	b, cancelB := f.Subscribe(4)
	defer cancelA()
	defer cancelB()

	f.Publish("job1|bfs", Progress{Cycle: 100})
	f.Publish("job1|bfs", Progress{Cycle: 200})

	for name, ch := range map[string]<-chan Tick{"a": a, "b": b} {
		for i, want := range []uint64{100, 200} {
			tick := <-ch
			if tick.Source != "job1|bfs" || tick.Progress.Cycle != want {
				t.Fatalf("sub %s tick %d = %+v, want source job1|bfs cycle %d", name, i, tick, want)
			}
		}
	}
	if n := f.Subscribers(); n != 2 {
		t.Fatalf("Subscribers() = %d, want 2", n)
	}
}

// TestFunnelDropsWhenFull: a lagging subscriber misses ticks instead of
// blocking the publisher — the contract that keeps a slow SSE client out
// of the simulation hot loop.
func TestFunnelDropsWhenFull(t *testing.T) {
	f := NewFunnel()
	ch, cancel := f.Subscribe(1)
	defer cancel()

	// Nobody draining: the second publish must drop, not block.
	f.Publish("s", Progress{Cycle: 1})
	f.Publish("s", Progress{Cycle: 2})

	if tick := <-ch; tick.Progress.Cycle != 1 {
		t.Fatalf("buffered tick cycle = %d, want 1", tick.Progress.Cycle)
	}
	select {
	case tick := <-ch:
		t.Fatalf("dropped tick delivered: %+v", tick)
	default:
	}
}

// TestFunnelCancel: cancel closes the channel (so ranging consumers
// terminate), removes the subscription, and is idempotent; publishing
// after cancel reaches nobody and never sends on a closed channel.
func TestFunnelCancel(t *testing.T) {
	f := NewFunnel()
	ch, cancel := f.Subscribe(1)
	cancel()
	cancel() // idempotent

	if n := f.Subscribers(); n != 0 {
		t.Fatalf("Subscribers() after cancel = %d, want 0", n)
	}
	f.Publish("s", Progress{Cycle: 1}) // must not panic on the closed channel
	if _, ok := <-ch; ok {
		t.Fatal("cancelled channel still delivers")
	}
}

// TestFunnelMultiJobFanOut models the concurrent job server: many
// producers (one per in-flight job, each with its own source label)
// publishing into one funnel that several SSE subscribers drain. Roomy
// subscribers must receive every tick exactly once with per-source
// monotonic progress; a never-drained buffer-1 subscriber must end up
// with exactly one buffered tick and zero publisher stalls; subscriber
// churn during the storm must not disturb either. All under -race.
func TestFunnelMultiJobFanOut(t *testing.T) {
	const producers, ticksPer, subscribers = 8, 200, 4
	f := NewFunnel()

	// Roomy subscribers: buffers sized for the whole storm, so the
	// never-block contract implies zero drops and exact delivery.
	chans := make([]<-chan Tick, subscribers)
	for i := range chans {
		ch, cancel := f.Subscribe(producers * ticksPer)
		defer cancel()
		chans[i] = ch
	}
	// The laggard: buffer 1, never drained while producers run.
	slow, cancelSlow := f.Subscribe(1)
	defer cancelSlow()

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			src := sourceName(p)
			for i := 1; i <= ticksPer; i++ {
				f.Publish(src, Progress{Cycle: uint64(i)})
			}
		}(p)
	}
	// Churners: subscribers connecting and disconnecting mid-storm, the
	// way SSE clients come and go while jobs run.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ch, cancel := f.Subscribe(2)
				select {
				case <-ch:
				default:
				}
				cancel()
			}
		}()
	}
	wg.Wait()

	for si, ch := range chans {
		last := make(map[string]uint64, producers)
		count := 0
	drain:
		for {
			select {
			case tick := <-ch:
				count++
				if tick.Progress.Cycle <= last[tick.Source] {
					t.Fatalf("sub %d: source %s went backwards: %d after %d",
						si, tick.Source, tick.Progress.Cycle, last[tick.Source])
				}
				last[tick.Source] = tick.Progress.Cycle
			default:
				break drain
			}
		}
		if count != producers*ticksPer {
			t.Fatalf("sub %d received %d ticks, want %d", si, count, producers*ticksPer)
		}
		for p := 0; p < producers; p++ {
			if last[sourceName(p)] != ticksPer {
				t.Fatalf("sub %d: source %s ended at %d, want %d",
					si, sourceName(p), last[sourceName(p)], ticksPer)
			}
		}
	}
	// The laggard holds exactly its buffer: one tick, the rest dropped.
	if tick, ok := <-slow; !ok || tick.Progress.Cycle == 0 {
		t.Fatalf("slow subscriber's buffered tick: %+v ok=%v", tick, ok)
	}
	select {
	case tick := <-slow:
		t.Fatalf("slow subscriber got a second tick: %+v", tick)
	default:
	}
	// Only the test's own subscriptions remain; churners all cancelled.
	if n := f.Subscribers(); n != subscribers+1 {
		t.Fatalf("Subscribers() = %d, want %d", n, subscribers+1)
	}
}

func sourceName(p int) string { return "job" + string(rune('A'+p)) + "|wl" }

// TestFunnelConcurrent: one publisher against subscribers that churn
// (subscribe, drain a little, cancel) from several goroutines — the
// sends-only-under-lock design must survive -race with closes in flight.
func TestFunnelConcurrent(t *testing.T) {
	f := NewFunnel()
	stop := make(chan struct{})
	pubDone := make(chan struct{})
	go func() {
		defer close(pubDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				f.Publish("s", Progress{Cycle: uint64(i)})
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ch, cancel := f.Subscribe(2)
				select {
				case <-ch:
				default:
				}
				cancel()
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-pubDone
	if n := f.Subscribers(); n != 0 {
		t.Fatalf("Subscribers() after churn = %d, want 0", n)
	}
}
