package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Sample is one row of a run's time series: cumulative counters folded from
// every statistics shard at a cycle boundary, plus instantaneous occupancy
// readings. Rates (IPC, miss rates) are derived at export time from the
// cumulative columns so that the final sample's aggregates equal the
// end-of-run report exactly.
type Sample struct {
	Cycle uint64 `json:"cycle"`

	// Cumulative counters (match stats.Sim fields at this cycle).
	Instructions uint64 `json:"instructions"`
	MemInstrs    uint64 `json:"memInstrs"`
	TLBAccesses  uint64 `json:"tlbAccesses"`
	TLBHits      uint64 `json:"tlbHits"`
	TLBMisses    uint64 `json:"tlbMisses"`
	L1Accesses   uint64 `json:"l1Accesses"`
	L1Misses     uint64 `json:"l1Misses"`
	L2Accesses   uint64 `json:"l2Accesses"`
	L2Misses     uint64 `json:"l2Misses"`
	Walks        uint64 `json:"walks"`

	// Instantaneous occupancy at this cycle.
	LiveBlocks  int `json:"liveBlocks"`  // resident thread blocks
	ActiveWarps int `json:"activeWarps"` // warps not yet retired
	WalkersBusy int `json:"walkersBusy"` // walk-state slots in flight
	MSHRsUsed   int `json:"mshrsUsed"`   // outstanding TLB misses

	// Interconnect / DRAM channel utilisation over the last sample
	// interval (approximate: pruned contention windows read as idle).
	IcntUtil float64 `json:"icntUtil"`
	DRAMUtil float64 `json:"dramUtil"`
}

// IPCSince returns instructions-per-cycle over the interval since prev.
func (s Sample) IPCSince(prev Sample) float64 {
	dc := s.Cycle - prev.Cycle
	if s.Cycle <= prev.Cycle {
		return 0
	}
	return float64(s.Instructions-prev.Instructions) / float64(dc)
}

// TLBMissRate returns cumulative misses/accesses at this sample.
func (s Sample) TLBMissRate() float64 {
	if s.TLBAccesses == 0 {
		return 0
	}
	return float64(s.TLBMisses) / float64(s.TLBAccesses)
}

// Sampler records interval samples into a bounded ring buffer. The
// simulator asks NextAt for the next due cycle and Records a sample when the
// clock reaches it; because the clock fast-forwards over idle stretches, at
// most one sample lands per crossing (intervals the clock jumped over are
// not back-filled). A final sample is always recorded at end of run, so the
// last row's cumulative columns equal the run's report.
type Sampler struct {
	every  uint64
	nextAt uint64
	buf    []Sample
	next   int // ring write position once full
	total  uint64
}

// DefaultSamplerCapacity bounds a sampler's memory when the caller does not
// choose: 1<<14 samples ≈ 1.8 MB, enough for a 1.6M-cycle run at -sample 100
// with no overwrite.
const DefaultSamplerCapacity = 1 << 14

// NewSampler creates a sampler recording every `every` cycles, retaining the
// most recent capacity samples (capacity <= 0 selects
// DefaultSamplerCapacity).
func NewSampler(every uint64, capacity int) *Sampler {
	if every == 0 {
		panic("obs: sampler interval must be >= 1 cycle")
	}
	if capacity <= 0 {
		capacity = DefaultSamplerCapacity
	}
	return &Sampler{every: every, nextAt: every, buf: make([]Sample, 0, capacity)}
}

// Every returns the sampling interval in cycles.
func (s *Sampler) Every() uint64 { return s.every }

// NextAt returns the next cycle at which a sample is due.
func (s *Sampler) NextAt() uint64 { return s.nextAt }

// Reset clears recorded samples; a run calls it on start so a reused
// sampler never mixes series from two runs.
func (s *Sampler) Reset() {
	s.buf = s.buf[:0]
	s.next = 0
	s.total = 0
	s.nextAt = s.every
}

// Record appends one sample and advances the due cycle past smp.Cycle. A
// sample for the cycle already recorded last replaces it (the forced
// end-of-run sample may coincide with an interval boundary).
func (s *Sampler) Record(smp Sample) {
	if last, ok := s.Last(); ok && last.Cycle == smp.Cycle {
		s.setLast(smp)
		return
	}
	s.total++
	if len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, smp)
	} else {
		s.buf[s.next] = smp
		s.next = (s.next + 1) % cap(s.buf)
	}
	if smp.Cycle >= s.nextAt {
		s.nextAt = (smp.Cycle/s.every + 1) * s.every
	}
}

// setLast overwrites the most recently recorded sample.
func (s *Sampler) setLast(smp Sample) {
	if len(s.buf) < cap(s.buf) {
		s.buf[len(s.buf)-1] = smp
		return
	}
	i := s.next - 1
	if i < 0 {
		i = cap(s.buf) - 1
	}
	s.buf[i] = smp
}

// Total reports how many samples were recorded, including overwritten ones.
func (s *Sampler) Total() uint64 { return s.total }

// Samples returns the retained samples in arrival order.
func (s *Sampler) Samples() []Sample {
	out := make([]Sample, 0, len(s.buf))
	out = append(out, s.buf[s.next:]...)
	out = append(out, s.buf[:s.next]...)
	return out
}

// Last returns the most recent sample, if any.
func (s *Sampler) Last() (Sample, bool) {
	if len(s.buf) == 0 {
		return Sample{}, false
	}
	if len(s.buf) < cap(s.buf) {
		return s.buf[len(s.buf)-1], true
	}
	i := s.next - 1
	if i < 0 {
		i = cap(s.buf) - 1
	}
	return s.buf[i], true
}

// csvHeader lists the exported columns in order. ipc and tlb_missrate are
// derived per row; everything else mirrors Sample.
var csvHeader = []string{
	"cycle", "instructions", "mem_instrs", "ipc",
	"tlb_accesses", "tlb_hits", "tlb_misses", "tlb_missrate",
	"l1_accesses", "l1_misses", "l2_accesses", "l2_misses", "walks",
	"live_blocks", "active_warps", "walkers_busy", "mshrs_used",
	"icnt_util", "dram_util",
}

// WriteCSV renders the retained series as CSV with a fixed header. IPC is
// computed over each row's interval since the previous retained row.
func (s *Sampler) WriteCSV(w io.Writer) error {
	for i, col := range csvHeader {
		sep := ","
		if i == len(csvHeader)-1 {
			sep = "\n"
		}
		if _, err := fmt.Fprintf(w, "%s%s", col, sep); err != nil {
			return err
		}
	}
	prev := Sample{}
	for _, smp := range s.Samples() {
		_, err := fmt.Fprintf(w, "%d,%d,%d,%.6f,%d,%d,%d,%.6f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.6f,%.6f\n",
			smp.Cycle, smp.Instructions, smp.MemInstrs, smp.IPCSince(prev),
			smp.TLBAccesses, smp.TLBHits, smp.TLBMisses, smp.TLBMissRate(),
			smp.L1Accesses, smp.L1Misses, smp.L2Accesses, smp.L2Misses, smp.Walks,
			smp.LiveBlocks, smp.ActiveWarps, smp.WalkersBusy, smp.MSHRsUsed,
			smp.IcntUtil, smp.DRAMUtil)
		if err != nil {
			return err
		}
		prev = smp
	}
	return nil
}

// WriteJSON renders the retained series as a JSON array.
func (s *Sampler) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.Samples())
}
