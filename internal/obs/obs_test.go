package obs

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestNameCanonical(t *testing.T) {
	if got := Name("tlb.misses"); got != "tlb.misses" {
		t.Fatalf("bare name = %q", got)
	}
	got := Name("walker.walks", LabelInt("core", 3), LabelInt("walker", 1))
	if got != "walker.walks{core=3,walker=1}" {
		t.Fatalf("labelled name = %q", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Add(2)
	c.Inc()
	if r.Counter("a") != c || c.Value() != 3 {
		t.Fatalf("counter identity/value broken: %v", c)
	}
	g := r.Gauge("b")
	g.SetFloat(1.5)
	if m, ok := r.Lookup("b"); !ok || m.Float() != 1.5 {
		t.Fatalf("gauge lookup = %v %v", m, ok)
	}
	if _, ok := r.Lookup("missing"); ok {
		t.Fatal("lookup invented a metric")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("a")
}

// TestRegistryMergeExact pins the par-sharding contract: merging shard
// registries in any order reproduces exactly what one registry accumulating
// everything would hold.
func TestRegistryMergeExact(t *testing.T) {
	mk := func(vals map[string]uint64) *Registry {
		r := NewRegistry()
		// Insertion order must be deterministic for the text compare below.
		for _, k := range []string{"x", "y", "z"} {
			if v, ok := vals[k]; ok {
				r.Counter(k).Add(v)
			}
		}
		return r
	}
	a := mk(map[string]uint64{"x": 1, "y": 10})
	b := mk(map[string]uint64{"x": 2, "z": 5})
	direct := mk(map[string]uint64{"x": 3, "y": 10})
	direct.Counter("z").Add(5)

	a.Merge(b)
	var got, want strings.Builder
	if err := a.WriteText(&got); err != nil {
		t.Fatal(err)
	}
	if err := direct.WriteText(&want); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("merge not exact:\n%s--- want\n%s", got.String(), want.String())
	}
}

func TestRegistryExportDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.second").Add(2)
	r.Counter("a.first").Add(1)
	r.Gauge("c.third").SetFloat(0.5)
	var txt strings.Builder
	if err := r.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	want := "b.second counter 2\na.first counter 1\nc.third gauge 0.5\n"
	if txt.String() != want {
		t.Fatalf("text export:\n%q\nwant\n%q", txt.String(), want)
	}
	var js strings.Builder
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal([]byte(js.String()), &decoded); err != nil {
		t.Fatalf("JSON export invalid: %v", err)
	}
	if len(decoded) != 3 || decoded[0]["name"] != "b.second" {
		t.Fatalf("JSON export order/shape: %v", decoded)
	}
}

func TestSamplerRingAndDueCycles(t *testing.T) {
	s := NewSampler(100, 3)
	if s.NextAt() != 100 {
		t.Fatalf("initial nextAt = %d", s.NextAt())
	}
	for _, cyc := range []uint64{100, 200, 350, 400, 512} {
		s.Record(Sample{Cycle: cyc, Instructions: cyc * 2})
	}
	// Recording at 350 (a skipped boundary crossing) must schedule 400 next.
	if s.NextAt() != 600 {
		t.Fatalf("nextAt after 512 = %d", s.NextAt())
	}
	if s.Total() != 5 {
		t.Fatalf("total = %d", s.Total())
	}
	got := s.Samples()
	if len(got) != 3 || got[0].Cycle != 350 || got[2].Cycle != 512 {
		t.Fatalf("ring contents = %+v", got)
	}
	// A forced end-of-run sample at the same cycle replaces, not appends.
	s.Record(Sample{Cycle: 512, Instructions: 9999})
	if last, _ := s.Last(); last.Instructions != 9999 {
		t.Fatalf("same-cycle record did not replace: %+v", last)
	}
	if len(s.Samples()) != 3 {
		t.Fatal("same-cycle record grew the ring")
	}
	s.Reset()
	if len(s.Samples()) != 0 || s.NextAt() != 100 || s.Total() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestSamplerCSVAndJSON(t *testing.T) {
	s := NewSampler(10, 0)
	s.Record(Sample{Cycle: 10, Instructions: 40, TLBAccesses: 10, TLBMisses: 5})
	s.Record(Sample{Cycle: 20, Instructions: 60})
	var csv strings.Builder
	if err := s.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), csv.String())
	}
	if !strings.HasPrefix(lines[0], "cycle,instructions,") {
		t.Fatalf("header = %q", lines[0])
	}
	// Row 1: ipc = 40/10, missrate = 0.5. Row 2: ipc = 20/10.
	if !strings.HasPrefix(lines[1], "10,40,0,4.000000,10,0,5,0.500000,") {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "20,60,0,2.000000,") {
		t.Fatalf("row 2 = %q", lines[2])
	}
	var js strings.Builder
	if err := s.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var rows []Sample
	if err := json.Unmarshal([]byte(js.String()), &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[1].Cycle != 20 {
		t.Fatalf("json rows = %+v", rows)
	}
}

func TestTraceWriterEmitsValidChromeJSON(t *testing.T) {
	var b strings.Builder
	tw := NewTraceWriter(&b)
	tw.Meta(0, 0, "process_name", "gpummu")
	tw.Meta(0, 2, "thread_name", `core "1"`) // quote-escaping path
	tw.Instant(0, 2, 42, "issue", `"pc":7,"lanes":32`)
	tw.Complete(0, 3, 100, 250, "walk", `"vpn":12345`)
	tw.Counter(0, 400, "ipc", 1.25)
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   *float64       `json:"ts"`
			Dur  *float64       `json:"dur"`
			Pid  *int           `json:"pid"`
			Tid  *int           `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("events = %d", len(doc.TraceEvents))
	}
	for i, e := range doc.TraceEvents {
		if e.Name == "" || e.Ph == "" || e.Pid == nil || e.Tid == nil {
			t.Fatalf("event %d missing required fields: %+v", i, e)
		}
		if e.Ph != "M" && e.TS == nil {
			t.Fatalf("event %d (%s) missing ts", i, e.Ph)
		}
	}
	x := doc.TraceEvents[3]
	if x.Ph != "X" || x.Dur == nil || *x.Dur != 250 {
		t.Fatalf("complete event = %+v", x)
	}
}

func TestAbortErrorWrapsSentinels(t *testing.T) {
	err := error(&AbortError{Cause: ErrLivelock, Cycle: 9000, Msg: "window=4096", Dump: "core 0 ..."})
	if !errors.Is(err, ErrLivelock) {
		t.Fatal("errors.Is missed the sentinel")
	}
	var ae *AbortError
	if !errors.As(err, &ae) || ae.Cycle != 9000 {
		t.Fatalf("errors.As = %v", ae)
	}
	msg := err.Error()
	for _, want := range []string{"livelock", "9000", "window=4096", "core 0"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("message %q missing %q", msg, want)
		}
	}
}
