package obs

import (
	"errors"
	"fmt"
)

// Sentinel causes for a simulation abort. Callers classify an abort with
// errors.Is against these; the AbortError wrapping them carries the cycle
// and the diagnostic state dump.
var (
	// ErrLivelock fires when the forward-progress watchdog sees no thread
	// block retire within its window: warps may still be issuing (a spin
	// loop retires instructions forever) but the kernel is not finishing
	// work, which a plain cycle limit only catches much later.
	ErrLivelock = errors.New("livelock: no forward progress within watchdog window")
	// ErrDeadlock fires when no core has any runnable event — the classic
	// malformed-kernel state (e.g. a barrier inside divergent control flow).
	ErrDeadlock = errors.New("deadlock: no core has a runnable event")
	// ErrMaxCycles fires when the simulated clock exceeds the configured
	// cycle budget.
	ErrMaxCycles = errors.New("cycle budget exceeded")
	// ErrDeadline fires when the wall-clock run deadline passes.
	ErrDeadline = errors.New("run deadline exceeded")
	// ErrInvariant fires when the debug-build invariant checker (enabled via
	// the WithInvariants run option) finds corrupted microarchitectural
	// state: a malformed SIMT stack, a TLB entry disagreeing with the page
	// table, MSHR bookkeeping out of sync, or an L2 line cached in the wrong
	// slice. Msg names the violated invariant.
	ErrInvariant = errors.New("simulator invariant violated")
)

// AbortError is the typed error a simulation returns when it stops before
// kernel completion. Cause is one of the sentinels above (or a context
// error for cancellation), Cycle is the simulated time of the abort, and
// Dump is the diagnostic state bundle (per-core warp states) captured at
// that instant.
type AbortError struct {
	Cause error  // sentinel or context error; exposed via Unwrap
	Cycle uint64 // simulated cycle at abort
	Msg   string // one-line context (limit values, window size)
	Dump  string // dumpState diagnostic bundle
}

// Error renders the abort with its diagnostic bundle attached.
func (e *AbortError) Error() string {
	s := fmt.Sprintf("gpu: %v at cycle %d", e.Cause, e.Cycle)
	if e.Msg != "" {
		s += " (" + e.Msg + ")"
	}
	if e.Dump != "" {
		s += "\n" + e.Dump
	}
	return s
}

// Unwrap exposes the sentinel cause to errors.Is / errors.As.
func (e *AbortError) Unwrap() error { return e.Cause }
