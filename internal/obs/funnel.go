package obs

import "sync"

// Tick is one labelled Progress snapshot flowing through a Funnel: the
// Source names the run that produced it (the job server uses
// "<job>|<workload>" labels), Progress is the heartbeat itself.
type Tick struct {
	Source   string   `json:"source"`
	Progress Progress `json:"progress"`
}

// Funnel fans labelled Progress heartbeats out to any number of
// subscribers — the bridge between a simulation's WithProgress callback
// (one producer, called on the run's goroutine) and streaming consumers
// such as the job server's SSE event feeds (many consumers, each on its
// own connection goroutine).
//
// Publish never blocks: a subscriber whose buffer is full simply misses
// that tick. Progress heartbeats are periodic snapshots of monotonic
// counters, so a dropped tick costs resolution, not correctness — the next
// tick carries strictly newer cumulative values. This keeps a slow SSE
// client from ever stalling the simulation hot loop.
type Funnel struct {
	mu   sync.Mutex
	subs map[int]chan Tick
	next int
}

// NewFunnel returns an empty funnel.
func NewFunnel() *Funnel {
	return &Funnel{subs: make(map[int]chan Tick)}
}

// Publish broadcasts one tick to every subscriber, dropping it for
// subscribers whose buffers are full.
func (f *Funnel) Publish(source string, p Progress) {
	f.mu.Lock()
	defer f.mu.Unlock()
	t := Tick{Source: source, Progress: p}
	for _, ch := range f.subs {
		select {
		case ch <- t:
		default: // lagging subscriber: drop, never block the simulation
		}
	}
}

// Subscribe registers a new subscriber with the given buffer size
// (minimum 1) and returns its channel plus a cancel function. Cancel is
// idempotent and closes the channel, so ranging consumers terminate.
func (f *Funnel) Subscribe(buf int) (<-chan Tick, func()) {
	if buf < 1 {
		buf = 1
	}
	ch := make(chan Tick, buf)
	f.mu.Lock()
	id := f.next
	f.next++
	f.subs[id] = ch
	f.mu.Unlock()

	var once sync.Once
	cancel := func() {
		once.Do(func() {
			// Close under the lock: Publish sends only while holding it, so
			// no send can race the close.
			f.mu.Lock()
			delete(f.subs, id)
			close(ch)
			f.mu.Unlock()
		})
	}
	return ch, cancel
}

// Subscribers reports how many subscribers are currently registered.
func (f *Funnel) Subscribers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.subs)
}
