// Package obs is the simulator's observability layer: a typed metrics
// registry with hierarchical labels (per-core, per-L2-slice, per-walker), a
// cycle-driven interval sampler recording time series into a ring buffer, a
// Chrome trace-event JSON writer (loadable in Perfetto / chrome://tracing),
// and the typed abort errors the forward-progress watchdog and run deadline
// raise.
//
// The package deliberately has no dependency on the simulator packages: the
// GPU imports obs, feeds it, and stays the only place that knows how to map
// simulator state onto metrics, samples, and trace tracks. Everything here
// is deterministic — export order is insertion order, JSON is emitted with a
// fixed field order, and no map iteration reaches an output — so observing a
// run never perturbs the byte-identical-across-workers guarantees the
// simulator maintains.
package obs

// Progress is a periodic heartbeat handed to a run's progress callback.
type Progress struct {
	Cycle        uint64 // current simulated cycle
	Instructions uint64 // warp instructions issued so far
	LiveBlocks   int    // thread blocks currently resident on cores
}
