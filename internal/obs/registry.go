package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// MetricKind distinguishes the registry's metric types.
type MetricKind uint8

const (
	// KindCounter is a monotonically increasing count; Merge sums it.
	KindCounter MetricKind = iota
	// KindGauge is a point-in-time measurement; Merge sums it too (per-core
	// gauges use disjoint names, so summing is the identity in practice and
	// keeps the merge rule uniform and commutative).
	KindGauge
)

// String implements fmt.Stringer.
func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	}
	return fmt.Sprintf("kind(%d)", k)
}

// Label is one key=value dimension of a metric name.
type Label struct {
	Key   string
	Value string
}

// LabelInt builds an integer-valued label (the common case: core, slice,
// walker indices).
func LabelInt(key string, v int) Label {
	return Label{Key: key, Value: fmt.Sprintf("%d", v)}
}

// Name renders the canonical metric name: base{k1=v1,k2=v2}. Labels keep
// the order given — callers pass them hierarchically (core before walker) so
// the canonical name doubles as a stable sort key.
func Name(base string, labels ...Label) string {
	if len(labels) == 0 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Metric is one named value in a registry. Counters carry uint64 counts;
// gauges carry float64 measurements.
type Metric struct {
	Name string
	Kind MetricKind
	U    uint64  // counter value
	F    float64 // gauge value
}

// Add increments a counter by n.
func (m *Metric) Add(n uint64) { m.U += n }

// Inc increments a counter by one.
func (m *Metric) Inc() { m.U++ }

// Set overwrites a counter's value (snapshot-style collection).
func (m *Metric) Set(n uint64) { m.U = n }

// SetFloat overwrites a gauge's value.
func (m *Metric) SetFloat(f float64) { m.F = f }

// Value returns the counter value.
func (m *Metric) Value() uint64 { return m.U }

// Float returns the gauge value.
func (m *Metric) Float() float64 { return m.F }

// Registry is an insertion-ordered collection of named metrics. It replaces
// ad-hoc struct-field plumbing for the hierarchically labelled breakdowns
// (per-core, per-L2-slice, per-walker) that the flat stats.Sim aggregate
// cannot express. It is not safe for concurrent use; the simulator touches
// it only from serial phases, which is also what keeps exports
// byte-identical for any -par worker count.
type Registry struct {
	order []string
	m     map[string]*Metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[string]*Metric)}
}

// get returns the named metric, creating it with the given kind on first
// use. Asking for an existing name with a different kind panics: that is a
// wiring bug, not a runtime condition.
func (r *Registry) get(name string, kind MetricKind) *Metric {
	if m, ok := r.m[name]; ok {
		if m.Kind != kind {
			panic(fmt.Sprintf("obs: metric %q registered as %v, requested as %v", name, m.Kind, kind))
		}
		return m
	}
	m := &Metric{Name: name, Kind: kind}
	r.m[name] = m
	r.order = append(r.order, name)
	return m
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Metric { return r.get(name, KindCounter) }

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Metric { return r.get(name, KindGauge) }

// Lookup returns the named metric without creating it.
func (r *Registry) Lookup(name string) (*Metric, bool) {
	m, ok := r.m[name]
	return m, ok
}

// Len returns the number of registered metrics.
func (r *Registry) Len() int { return len(r.order) }

// Each visits every metric in registration order.
func (r *Registry) Each(fn func(*Metric)) {
	for _, name := range r.order {
		fn(r.m[name])
	}
}

// Merge folds another registry into r: counters and gauges sum name-wise,
// and names unknown to r are appended in o's registration order. Summation
// is commutative and exact (uint64 counter arithmetic), so merging the
// registries parallel shards collected — in any order — reproduces exactly
// what a single registry would have accumulated; this is the same contract
// stats.Sim.Merge gives the -par equivalence suites.
func (r *Registry) Merge(o *Registry) {
	for _, name := range o.order {
		om := o.m[name]
		m := r.get(name, om.Kind)
		m.U += om.U
		m.F += om.F
	}
}

// WriteText renders one "name kind value" line per metric in registration
// order — a stable, diffable dump for CLIs and tests.
func (r *Registry) WriteText(w io.Writer) error {
	for _, name := range r.order {
		m := r.m[name]
		var err error
		switch m.Kind {
		case KindGauge:
			_, err = fmt.Fprintf(w, "%s gauge %g\n", m.Name, m.F)
		default:
			_, err = fmt.Fprintf(w, "%s counter %d\n", m.Name, m.U)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// metricJSON is the wire form of one metric.
type metricJSON struct {
	Name    string   `json:"name"`
	Kind    string   `json:"kind"`
	Counter *uint64  `json:"counter,omitempty"`
	Gauge   *float64 `json:"gauge,omitempty"`
}

// WriteJSON renders the registry as a JSON array in registration order.
func (r *Registry) WriteJSON(w io.Writer) error {
	out := make([]metricJSON, 0, len(r.order))
	for _, name := range r.order {
		m := r.m[name]
		mj := metricJSON{Name: m.Name, Kind: m.Kind.String()}
		switch m.Kind {
		case KindGauge:
			f := m.F
			mj.Gauge = &f
		default:
			u := m.U
			mj.Counter = &u
		}
		out = append(out, mj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
