package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// TraceWriter emits Chrome trace-event JSON (the "JSON object format":
// {"traceEvents":[...]}) streamingly, loadable in Perfetto and
// chrome://tracing. Field order is fixed and no Go map is ever iterated, so
// the bytes produced for a given call sequence are always identical — the
// property the trace golden tests pin across -par worker counts.
//
// Timestamps are simulated cycles written as the ts microsecond field
// one-to-one (1 cycle renders as 1 µs), the convention cycle-accurate
// simulators use so trace viewers show cycle counts directly.
type TraceWriter struct {
	w     *bufio.Writer
	first bool
	done  bool
	err   error
}

// NewTraceWriter starts a trace on w. Call Close to finish the JSON.
func NewTraceWriter(w io.Writer) *TraceWriter {
	t := &TraceWriter{w: bufio.NewWriter(w), first: true}
	_, t.err = t.w.WriteString("{\"traceEvents\":[\n")
	return t
}

// sep writes the inter-event separator.
func (t *TraceWriter) sep() {
	if t.first {
		t.first = false
		return
	}
	_, t.err = t.w.WriteString(",\n")
}

// event writes one record. args must already be a JSON object body (without
// braces) or empty.
func (t *TraceWriter) event(ph string, pid, tid int, hasTS bool, ts, dur uint64, name, args string) {
	if t.err != nil || t.done {
		return
	}
	t.sep()
	if t.err != nil {
		return
	}
	b := make([]byte, 0, 96)
	b = append(b, `{"name":`...)
	b = strconv.AppendQuote(b, name)
	b = append(b, `,"ph":"`...)
	b = append(b, ph...)
	b = append(b, `","pid":`...)
	b = strconv.AppendInt(b, int64(pid), 10)
	b = append(b, `,"tid":`...)
	b = strconv.AppendInt(b, int64(tid), 10)
	if hasTS {
		b = append(b, `,"ts":`...)
		b = strconv.AppendUint(b, ts, 10)
	}
	if ph == "X" {
		b = append(b, `,"dur":`...)
		b = strconv.AppendUint(b, dur, 10)
	}
	if ph == "i" {
		b = append(b, `,"s":"t"`...)
	}
	if args != "" {
		b = append(b, `,"args":{`...)
		b = append(b, args...)
		b = append(b, '}')
	}
	b = append(b, '}')
	_, t.err = t.w.Write(b)
}

// Meta emits a metadata record (process_name / thread_name / …).
func (t *TraceWriter) Meta(pid, tid int, key, name string) {
	t.event("M", pid, tid, false, 0, 0, key, fmt.Sprintf(`"name":%q`, name))
}

// Instant emits a thread-scoped instant event at cycle ts.
func (t *TraceWriter) Instant(pid, tid int, ts uint64, name, args string) {
	t.event("i", pid, tid, true, ts, 0, name, args)
}

// Complete emits a complete ("X") duration event covering [ts, ts+dur).
func (t *TraceWriter) Complete(pid, tid int, ts, dur uint64, name, args string) {
	t.event("X", pid, tid, true, ts, dur, name, args)
}

// Counter emits a counter sample; viewers render one track per counter
// name, plotted over time.
func (t *TraceWriter) Counter(pid int, ts uint64, name string, value float64) {
	t.event("C", pid, 0, true, ts, 0, name, fmt.Sprintf(`"value":%g`, value))
}

// Err reports the first underlying write error, if any.
func (t *TraceWriter) Err() error { return t.err }

// Close terminates the JSON document and flushes. Further calls are no-ops.
func (t *TraceWriter) Close() error {
	if t.done {
		return t.err
	}
	t.done = true
	if t.err == nil {
		_, t.err = t.w.WriteString("\n]}\n")
	}
	if ferr := t.w.Flush(); t.err == nil {
		t.err = ferr
	}
	return t.err
}
